(* Full benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section V) plus the DESIGN.md ablations, then runs
   Bechamel micro-benchmarks of the core computational kernels (one
   Test.make per reproduced artefact family).

   Run with: dune exec bench/main.exe
   A single experiment: dune exec bin/cosa_cli.exe -- exp fig6 *)

let run_experiments () =
  List.iter
    (fun (e : Registry.t) ->
      let t0 = Unix.gettimeofday () in
      let report = e.Registry.run () in
      print_string report;
      Printf.printf "[%s completed in %.1f s]\n" e.Registry.id (Unix.gettimeofday () -. t0);
      flush stdout)
    Registry.all

(* Bechamel micro-benchmarks: the kernels whose cost dominates each
   artefact family. *)
let micro_benchmarks () =
  let open Bechamel in
  let arch = Spec.baseline in
  let layer = Zoo.find "3_14_256_256_1" in
  let mapping = (Cosa.schedule arch layer).Cosa.mapping in
  let formulation = Cosa_formulation.build arch layer in
  let relaxed = Milp.Bb.relax formulation.Cosa_formulation.lp in
  let rng = Prim.Rng.create 99 in
  let tests =
    [
      (* figs 1/3/4, 6-9: every data point is one analytical-model call *)
      Test.make ~name:"model_evaluate(fig1,3,4,6-9)"
        (Staged.stage (fun () -> ignore (Model.evaluate arch mapping)));
      (* tab6 + all CoSA rows: LP relaxation solve inside branch-and-bound *)
      Test.make ~name:"simplex_solve(tab6,cosa)"
        (Staged.stage (fun () -> ignore (Milp.Simplex.solve relaxed)));
      (* fig1: one valid-schedule sample *)
      Test.make ~name:"sampler_valid(fig1)"
        (Staged.stage (fun () -> ignore (Sampler.valid rng arch layer)));
      (* fig10: one NoC-simulator cycle on a loaded mesh *)
      Test.make ~name:"mesh_cycle(fig10)"
        (Staged.stage
           (let mesh = Mesh.create arch.Spec.noc in
            let pkt =
              Packet.make ~id:0 ~src:(-1) ~dests:[ 0; 5; 10; 15 ] ~flits:8
                ~tensor:Dims.W ~step:0
            in
            fun () ->
              if Mesh.idle mesh then Mesh.inject mesh Mesh.Gb pkt;
              Mesh.step mesh));
      (* fig11: one CoSA-GPU one-shot schedule *)
      Test.make ~name:"gpu_cosa_schedule(fig11)"
        (Staged.stage (fun () ->
             ignore (Gpu.cosa_schedule Gpu.k80 (Gpu.gemm_of_layer layer))));
    ]
  in
  print_newline ();
  print_endline "Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "============================================";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None ())
          [ instance ] test
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-32s %12.1f ns/run\n" name ns
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
        analyzed)
    tests;
  flush stdout

let () =
  let t0 = Unix.gettimeofday () in
  print_endline "CoSA reproduction: full experiment harness";
  print_endline "==========================================";
  run_experiments ();
  micro_benchmarks ();
  Printf.printf "\nTotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0)
