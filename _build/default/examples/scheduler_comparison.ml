(* End-to-end network scheduling: run CoSA, Random search, and the
   Timeloop-Hybrid baseline over every distinct ResNet-50 layer and
   compare whole-network latency and energy.

   Run with: dune exec examples/scheduler_comparison.exe *)

let () =
  let arch = Spec.baseline in
  let layers = Zoo.resnet50 in
  Printf.printf "Scheduling %d distinct ResNet-50 layers on %s\n\n" (List.length layers)
    arch.Spec.aname;
  let tab =
    Prim.Texttab.create [ "layer"; "CoSA"; "Random"; "TL-Hybrid"; "CoSA speedup" ]
  in
  let totals = Hashtbl.create 4 in
  let add name v =
    Hashtbl.replace totals name ((try Hashtbl.find totals name with Not_found -> 0.) +. v)
  in
  List.iter
    (fun layer ->
      let cosa = (Cosa.schedule arch layer).Cosa.mapping in
      let rng = Prim.Rng.create (Hashtbl.hash layer.Layer.name) in
      let random =
        match (Random_mapper.search rng arch layer).Baseline.best with
        | Some m -> m
        | None -> Cosa.trivial_mapping arch layer
      in
      let hybrid =
        match (Hybrid_mapper.search rng arch layer).Baseline.best with
        | Some m -> m
        | None -> Cosa.trivial_mapping arch layer
      in
      let lat m = (Model.evaluate arch m).Model.latency in
      let c = lat cosa and r = lat random and h = lat hybrid in
      add "cosa" c;
      add "random" r;
      add "hybrid" h;
      Prim.Texttab.add_row tab
        [ layer.Layer.name; Prim.Texttab.cell_f c; Prim.Texttab.cell_f r;
          Prim.Texttab.cell_f h; Prim.Texttab.cell_fx (r /. c) ])
    layers;
  print_string (Prim.Texttab.render tab);
  let get k = Hashtbl.find totals k in
  Printf.printf
    "\nWhole-network latency (cycles): CoSA %.3g | Random %.3g | Hybrid %.3g\n"
    (get "cosa") (get "random") (get "hybrid");
  Printf.printf "CoSA end-to-end speedup over Random: %.2fx, over Hybrid: %.2fx\n"
    (get "random" /. get "cosa")
    (get "hybrid" /. get "cosa")
