(* NoC deep dive: what the cycle-level simulator sees that the analytical
   model does not. Runs one layer's CoSA schedule with hardware multicast
   on and off, and prints the per-tensor NoC traffic decomposition
   (multicast / unicast / reduction patterns of the paper's Fig. 5).

   Run with: dune exec examples/noc_deep_dive.exe *)

let () =
  let layer = Zoo.find "3_7_512_512_1" in
  let arch = Spec.baseline in
  let mapping = (Cosa.schedule arch layer).Cosa.mapping in
  Printf.printf "Layer %s on %s\n\n" layer.Layer.name arch.Spec.aname;
  print_string (Mapping.to_loop_nest arch mapping);

  (* Traffic decomposition at the NoC boundary (analytical). *)
  let eval = Model.evaluate arch mapping in
  Printf.printf "\nPer-tensor NoC traffic (per paper Fig. 5 semantics):\n";
  List.iter
    (fun (v, tr) ->
      Printf.printf
        "  %-3s tile=%6.0f words  rounds=%6.0f  distinct tiles=%2d  multicast width=%2d\n"
        (Dims.tensor_name v) tr.Model.tile_words tr.Model.steps tr.Model.distinct
        tr.Model.multicast)
    eval.Model.traffic;

  (* Cycle-level comparison: analytical vs simulated, multicast on/off. *)
  let no_mc =
    { arch with Spec.noc = { arch.Spec.noc with Spec.multicast = false } }
  in
  let sim_on = Noc_sim.simulate arch mapping in
  let sim_off = Noc_sim.simulate no_mc mapping in
  Printf.printf "\nLatency:\n";
  Printf.printf "  analytical model        : %10.0f cycles\n" eval.Model.latency;
  Printf.printf "  NoC sim, multicast on   : %10.0f cycles (%d flit-hops)\n"
    sim_on.Noc_sim.latency sim_on.Noc_sim.flit_hops;
  Printf.printf "  NoC sim, multicast off  : %10.0f cycles (%d flit-hops)\n"
    sim_off.Noc_sim.latency sim_off.Noc_sim.flit_hops;
  Printf.printf
    "\nWithout hardware multicast every shared tile is replicated per\n\
     destination, so link traffic and latency rise by %.2fx / %.2fx.\n"
    (float_of_int sim_off.Noc_sim.flit_hops /. float_of_int sim_on.Noc_sim.flit_hops)
    (sim_off.Noc_sim.latency /. sim_on.Noc_sim.latency)
