(* Objective-weight tuning (the paper's Section III-E extension): when the
   target hardware's behaviour is unknown or nondeterministic, wrap the
   one-shot solver in a small hyperparameter sweep scored by whatever
   oracle is available (here: the analytical model; on silicon it would be
   a measurement), then persist the winning schedule to disk.

   Run with: dune exec examples/weight_tuning.exe *)

let () =
  let arch = Spec.edge in
  let layer = Zoo.find "3_14_256_256_1" in
  Printf.printf "Tuning objective weights for %s on %s\n\n" layer.Layer.name arch.Spec.aname;

  let plain = Cosa.schedule arch layer in
  let plain_latency = (Model.evaluate arch plain.Cosa.mapping).Model.latency in
  Printf.printf "calibrated weights: latency %.0f cycles\n" plain_latency;

  let tuned = Cosa_tuner.tune arch layer in
  let best = tuned.Cosa_tuner.best in
  let tuned_latency = (Model.evaluate arch best.Cosa.mapping).Model.latency in
  Printf.printf "after %d one-shot solves: latency %.0f cycles (%.2fx)\n\n"
    tuned.Cosa_tuner.tried tuned_latency (plain_latency /. tuned_latency);

  Printf.printf "per-point sweep results (w_util, w_comp, w_traf -> cycles):\n";
  List.iter
    (fun (w, score) ->
      Printf.printf "  (%.2f, %.2f, %.2f) -> %.0f\n" w.Cosa.w_util w.Cosa.w_comp
        w.Cosa.w_traf score)
    tuned.Cosa_tuner.scores;

  (* persist the winner for later `cosa_cli evaluate` runs *)
  let path = Filename.temp_file "tuned_schedule" ".txt" in
  Mapping_io.save path best.Cosa.mapping;
  Printf.printf "\nwinning schedule saved to %s\n" path;
  print_string (Mapping.to_loop_nest arch best.Cosa.mapping)
