(* Architecture design-space exploration: because CoSA schedules in one
   shot, it can be used inside a hardware DSE loop — here we compare three
   accelerator configurations on a mixed workload bundle, re-scheduling
   each layer for each candidate architecture.

   Run with: dune exec examples/design_space_exploration.exe *)

let workload =
  List.map Zoo.find
    [ "3_14_256_256_1"; "1_14_256_1024_1"; "3_7_512_512_1"; "ocr_35_700_2048";
      "face_3_14_128_256_2" ]

let () =
  Printf.printf "Design-space exploration over %d layers\n\n" (List.length workload);
  let tab =
    Prim.Texttab.create
      [ "arch"; "total latency"; "total energy (uJ)"; "avg PE util"; "avg solve (s)" ]
  in
  List.iter
    (fun (name, arch) ->
      let lat = ref 0. and en = ref 0. and util = ref 0. and time = ref 0. in
      List.iter
        (fun layer ->
          let r = Cosa.schedule arch layer in
          let e = Model.evaluate arch r.Cosa.mapping in
          lat := !lat +. e.Model.latency;
          en := !en +. e.Model.energy_pj;
          util := !util +. e.Model.pe_utilization;
          time := !time +. r.Cosa.solve_time)
        workload;
      let n = float_of_int (List.length workload) in
      Prim.Texttab.add_row tab
        [ name;
          Prim.Texttab.cell_f !lat;
          Printf.sprintf "%.1f" (!en /. 1e6);
          Printf.sprintf "%.1f%%" (100. *. !util /. n);
          Printf.sprintf "%.2f" (!time /. n) ])
    Spec.variants;
  print_string (Prim.Texttab.render tab);
  print_endline
    "\nReading the table: the 8x8 array cuts latency when layers have enough\n\
     parallelism to fill it; the large-SRAM variant instead wins on energy by\n\
     cutting DRAM traffic. CoSA re-derives a tailored schedule for each point."
