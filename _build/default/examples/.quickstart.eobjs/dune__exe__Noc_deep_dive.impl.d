examples/noc_deep_dive.ml: Cosa Dims Layer List Mapping Model Noc_sim Printf Spec Zoo
