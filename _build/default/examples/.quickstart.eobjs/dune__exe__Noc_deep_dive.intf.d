examples/noc_deep_dive.mli:
