examples/scheduler_comparison.mli:
