examples/quickstart.ml: Cosa Layer Mapping Model Noc_sim Printf Spec Zoo
