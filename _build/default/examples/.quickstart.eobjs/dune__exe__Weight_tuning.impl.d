examples/weight_tuning.ml: Cosa Cosa_tuner Filename Layer List Mapping Mapping_io Model Printf Spec Zoo
