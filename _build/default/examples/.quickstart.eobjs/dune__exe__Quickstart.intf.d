examples/quickstart.mli:
