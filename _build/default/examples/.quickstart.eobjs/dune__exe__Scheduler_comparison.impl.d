examples/scheduler_comparison.ml: Baseline Cosa Hashtbl Hybrid_mapper Layer List Model Prim Printf Random_mapper Spec Zoo
