examples/weight_tuning.mli:
