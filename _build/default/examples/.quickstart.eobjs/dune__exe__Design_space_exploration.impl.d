examples/design_space_exploration.ml: Cosa List Model Prim Printf Spec Zoo
