(* Tests for the experiment harness plumbing (the heavy experiments
   themselves run from bench/main.exe). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registry_ids_unique () =
  let ids = Registry.ids () in
  check_int "unique" (List.length ids) (List.length (List.sort_uniq compare ids));
  check_bool "paper artefacts present" true
    (List.for_all (fun id -> List.mem id ids)
       [ "fig1"; "fig3"; "fig4"; "tab6"; "fig6"; "fig7"; "fig8"; "fig9a"; "fig9b";
         "fig10"; "fig11" ])

let test_registry_find () =
  let e = Registry.find "fig8" in
  check_bool "title" true (String.length e.Registry.title > 0);
  check_bool "missing raises" true
    (match Registry.find "nope" with exception Not_found -> true | _ -> false)

let test_schedule_cache () =
  let layer = Zoo.find "g3_56_4_4_1" in
  let t0 = Unix.gettimeofday () in
  let a = Common.schedule Spec.baseline layer Common.Cosa_s in
  let t1 = Unix.gettimeofday () in
  let b = Common.schedule Spec.baseline layer Common.Cosa_s in
  let t2 = Unix.gettimeofday () in
  check_bool "same mapping" true
    (Mapping.fingerprint a.Common.mapping = Mapping.fingerprint b.Common.mapping);
  (* the second call must be a cache hit: at least 100x faster *)
  check_bool "cache hit" true (t2 -. t1 < Float.max 1e-4 ((t1 -. t0) /. 100.))

let test_scheduler_names () =
  Alcotest.(check string) "cosa" "CoSA" (Common.scheduler_name Common.Cosa_s);
  Alcotest.(check string) "random" "Random" (Common.scheduler_name Common.Random_s);
  Alcotest.(check string) "hybrid" "TL-Hybrid" (Common.scheduler_name Common.Hybrid_s)

let test_suite_layers () =
  let layers = Common.suite_layers () in
  check_bool "covers all suites" true
    (List.length (List.sort_uniq compare (List.map fst layers)) = 4);
  check_bool "dozens of layers" true (List.length layers >= 40)

let test_baseline_schedulers_cached () =
  let layer = Zoo.find "g3_56_4_4_1" in
  List.iter
    (fun s ->
      let r = Common.schedule Spec.baseline layer s in
      check_bool "valid mapping" true (Mapping.is_valid Spec.baseline r.Common.mapping);
      check_bool "sane runtime" true (r.Common.runtime >= 0.))
    Common.[ Cosa_s; Random_s; Hybrid_s ]

let test_fig8_runs () =
  (* fig8 is the cheapest full experiment: run it end to end *)
  let report = (Registry.find "fig8").Registry.run () in
  let contains sub =
    let n = String.length report and m = String.length sub in
    let rec go i = i + m <= n && (String.sub report i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "mentions CoSA row" true (contains "CoSA");
  check_bool "mentions objective" true (contains "Eq.12")

let suite =
  ( "exp",
    [
      Alcotest.test_case "registry ids" `Quick test_registry_ids_unique;
      Alcotest.test_case "registry find" `Quick test_registry_find;
      Alcotest.test_case "schedule cache" `Slow test_schedule_cache;
      Alcotest.test_case "scheduler names" `Quick test_scheduler_names;
      Alcotest.test_case "suite layers" `Quick test_suite_layers;
      Alcotest.test_case "baselines cached" `Slow test_baseline_schedulers_cached;
      Alcotest.test_case "fig8 end-to-end" `Slow test_fig8_runs;
    ] )
