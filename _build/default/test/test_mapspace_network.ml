(* Tests for the mapspace-size calculator and whole-network workloads. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arch = Spec.baseline

let test_mapspace_small_exact () =
  (* C = 4 = 2^2 only: multiset(2 factors, 6 levels) = C(7,5) = 21 tilings *)
  let l = Layer.create ~name:"ms" ~r:1 ~s:1 ~p:1 ~q:1 ~c:4 ~k:1 ~n:1 () in
  Alcotest.(check (float 1e-9)) "tilings" 21. (Mapspace.tilings arch l);
  let c = Mapspace.count arch l in
  Alcotest.(check (float 1e-9)) "spatial axis" 4. c.Mapspace.spatial_choices;
  Alcotest.(check (float 1e-9)) "orderings" 2. c.Mapspace.permutations;
  Alcotest.(check (float 1e-9)) "configurations" (21. *. 4. *. 2.)
    c.Mapspace.configurations

let test_mapspace_unit_layer () =
  let l = Layer.create ~name:"msu" ~r:1 ~s:1 ~p:1 ~q:1 ~c:1 ~k:1 ~n:1 () in
  Alcotest.(check (float 1e-9)) "one tiling" 1. (Mapspace.tilings arch l);
  Alcotest.(check (float 1e-9)) "one configuration" 1. (Mapspace.configurations arch l)

let test_mapspace_paper_scale () =
  (* the Section II-A layer: the space must be in the billions or beyond *)
  let l = Zoo.find "3_14_256_256_1" in
  check_bool "billions of configurations" true
    (Mapspace.log10_configurations arch l > 9.);
  check_bool "report mentions magnitude" true
    (String.length (Mapspace.report arch l) > 20)

let test_mapspace_monotone () =
  (* more factors, more schedules *)
  let small = Layer.create ~name:"s" ~r:1 ~s:1 ~p:4 ~q:4 ~c:16 ~k:16 ~n:1 () in
  let big = Layer.create ~name:"b" ~r:3 ~s:3 ~p:16 ~q:16 ~c:64 ~k:64 ~n:1 () in
  check_bool "bigger layer, bigger space" true
    (Mapspace.configurations arch big > Mapspace.configurations arch small)

let test_network_counts () =
  (* ResNet-50 has 53 convolutions + 1 FC *)
  check_int "resnet50 layer instances" 54 (Network.layer_count Network.resnet50);
  check_bool "macs ~ 4 GMACs (batch 1)" true
    (let m = Network.total_macs Network.resnet50 in
     m > 3.5e9 && m < 4.5e9)

let test_network_entries_resolve () =
  List.iter
    (fun (net : Network.t) ->
      List.iter
        (fun (e : Network.entry) ->
          check_bool
            (net.Network.nname ^ "/" ^ e.Network.layer.Layer.name)
            true (e.Network.repeats >= 1))
        net.Network.entries)
    Network.networks

let test_network_schedulable () =
  (* every distinct shape in both networks must already be in the zoo and
     be schedulable with a quick two-stage solve *)
  List.iter
    (fun (e : Network.entry) ->
      let r = Cosa.schedule ~strategy:Cosa.Two_stage ~time_limit:1. arch e.Network.layer in
      check_bool (e.Network.layer.Layer.name ^ " valid") true
        (Mapping.is_valid arch r.Cosa.mapping))
    (List.filteri (fun i _ -> i mod 5 = 0) Network.resnet50.Network.entries)

let suite =
  ( "mapspace_network",
    [
      Alcotest.test_case "mapspace exact small" `Quick test_mapspace_small_exact;
      Alcotest.test_case "mapspace unit" `Quick test_mapspace_unit_layer;
      Alcotest.test_case "mapspace paper scale" `Quick test_mapspace_paper_scale;
      Alcotest.test_case "mapspace monotone" `Quick test_mapspace_monotone;
      Alcotest.test_case "network counts" `Quick test_network_counts;
      Alcotest.test_case "network entries" `Quick test_network_entries_resolve;
      Alcotest.test_case "network schedulable" `Slow test_network_schedulable;
    ] )
