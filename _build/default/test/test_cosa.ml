(* Tests for the CoSA core: formulation, decode, repair, objective, and
   end-to-end scheduling. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arch = Spec.baseline
let tiny = Layer.create ~name:"cosa_tiny" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 ()

let test_formulation_shape () =
  let f = Cosa_formulation.build arch tiny in
  check_bool "has variables" true (Milp.Lp.num_vars f.Cosa_formulation.lp > 0);
  check_bool "has constraints" true (Milp.Lp.num_constrs f.Cosa_formulation.lp > 0);
  (* groups: P=4 -> (P,2,2); Q likewise; C=8 -> (C,2,3); K likewise *)
  check_int "group count" 4 (Array.length f.Cosa_formulation.groups);
  (* active dims: P, Q, C, K *)
  check_int "active dims" 4 (Array.length f.Cosa_formulation.active);
  (* rank matrix rows only for active dims, sized by slot count *)
  check_int "rank slots" 4
    (Array.length f.Cosa_formulation.rank.(Dims.dim_index Dims.P));
  check_int "inactive dim has no slots" 0
    (Array.length f.Cosa_formulation.rank.(Dims.dim_index Dims.R))

let test_formulation_two_stage_smaller () =
  let joint = Cosa_formulation.build arch tiny in
  let two = Cosa_formulation.build ~joint_permutation:false arch tiny in
  check_bool "two-stage has fewer vars" true
    (Milp.Lp.num_vars two.Cosa_formulation.lp < Milp.Lp.num_vars joint.Cosa_formulation.lp)

let test_per_factor_encoding_bigger () =
  let grouped = Cosa_formulation.build ~joint_permutation:false arch tiny in
  let per_factor =
    Cosa_formulation.build ~joint_permutation:false ~symmetry_grouping:false arch tiny
  in
  check_bool "per-factor encoding has more vars" true
    (Milp.Lp.num_vars per_factor.Cosa_formulation.lp
     > Milp.Lp.num_vars grouped.Cosa_formulation.lp)

let test_mip_start_feasible () =
  (* a mapping decoded from the MIP's own solution must encode back into a
     feasible assignment: this round-trips the formulation, the decoder,
     and the warm-start encoder (including the DRAM-boundary indicator
     variables) against each other *)
  let f = Cosa_formulation.build arch tiny in
  let res =
    Milp.Bb.solve ~node_limit:20_000 ~time_limit:5. ~priority:f.Cosa_formulation.priority
      f.Cosa_formulation.lp
  in
  (match res.Milp.Bb.status with
   | Milp.Bb.Optimal | Milp.Bb.Feasible -> ()
   | _ -> Alcotest.fail "tiny MIP should solve");
  let m = Cosa_decode.decode f res in
  (match Cosa_formulation.mip_start f m with
   | None -> Alcotest.fail "mip_start failed on a decoded mapping"
   | Some x ->
     check_bool "round-trip warm start feasible" true
       (Milp.Bb.check_feasible f.Cosa_formulation.lp x));
  (* sampler-produced valid mappings encode too; they may violate only the
     (deliberately conservative) IA capacity rows *)
  let rng = Prim.Rng.create 77 in
  let encoded = ref 0 in
  for _ = 1 to 10 do
    match Sampler.valid rng arch tiny with
    | Some m -> (match Cosa_formulation.mip_start f m with Some _ -> incr encoded | None -> ())
    | None -> ()
  done;
  check_bool "sampled mappings encodable" true (!encoded >= 5)

let test_schedule_valid_everywhere () =
  List.iter
    (fun name ->
      let layer = Zoo.find name in
      let r = Cosa.schedule ~time_limit:2. arch layer in
      check_bool (name ^ " valid") true (Mapping.is_valid arch r.Cosa.mapping))
    [ "g3_56_4_4_1"; "fc1000"; "3_56_64_64_1" ]

let test_schedule_one_dimensional_layer () =
  (* degenerate layer: every bound 1 except C *)
  let l = Layer.create ~name:"deg" ~r:1 ~s:1 ~p:1 ~q:1 ~c:64 ~k:1 ~n:1 () in
  let r = Cosa.schedule ~time_limit:2. arch l in
  check_bool "valid" true (Mapping.is_valid arch r.Cosa.mapping)

let test_schedule_unit_layer () =
  let l = Layer.create ~name:"unit" ~r:1 ~s:1 ~p:1 ~q:1 ~c:1 ~k:1 ~n:1 () in
  let r = Cosa.schedule ~time_limit:2. arch l in
  check_bool "valid" true (Mapping.is_valid arch r.Cosa.mapping)

let test_schedule_beats_trivial () =
  let layer = Zoo.find "g3_28_8_8_1" in
  let r = Cosa.schedule ~time_limit:2. arch layer in
  let cosa_lat = (Model.evaluate arch r.Cosa.mapping).Model.latency in
  let trivial_lat =
    (Model.evaluate arch (Cosa.trivial_mapping arch layer)).Model.latency
  in
  check_bool "beats the all-DRAM schedule" true (cosa_lat < trivial_lat)

let test_strategies_all_valid () =
  let layer = Zoo.find "g3_14_16_16_1" in
  List.iter
    (fun s ->
      let r = Cosa.schedule ~strategy:s ~time_limit:2. arch layer in
      check_bool "valid" true (Mapping.is_valid arch r.Cosa.mapping))
    [ Cosa.Auto; Cosa.Joint; Cosa.Two_stage ]

let test_trivial_mapping_valid () =
  List.iter
    (fun (_, layer) ->
      check_bool (layer.Layer.name ^ " trivial valid") true
        (Mapping.is_valid arch (Cosa.trivial_mapping arch layer)))
    (List.filteri (fun i _ -> i < 8) (List.concat_map (fun (s, ls) -> List.map (fun l -> (s, l)) ls) Zoo.suites))

let test_repair_fixes_overflow () =
  let lp dim bound = { Mapping.dim; bound } in
  let l = Layer.create ~name:"rep" ~r:3 ~s:3 ~p:1 ~q:1 ~c:256 ~k:256 ~n:1 () in
  let broken =
    Mapping.make l
      [|
        { Mapping.temporal = [ lp Dims.R 3; lp Dims.S 3; lp Dims.C 256; lp Dims.K 256 ];
          spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  check_bool "broken before" false (Mapping.is_valid arch broken);
  let fixed, changed = Cosa_decode.repair arch broken in
  check_bool "repair changed it" true changed;
  check_bool "valid after repair" true (Mapping.is_valid arch fixed);
  (* factorisation must be preserved *)
  List.iter
    (fun d ->
      check_int (Dims.dim_name d)
        (Layer.padded_bound l d)
        (Mapping.dim_product fixed ~upto:(Spec.level_count arch) d))
    Dims.all_dims

let test_repair_noop_on_valid () =
  let rng = Prim.Rng.create 31 in
  match Sampler.valid rng arch tiny with
  | None -> Alcotest.fail "sampler failed"
  | Some m ->
    let _, changed = Cosa_decode.repair arch m in
    check_bool "no change needed" false changed

let test_objective_breakdown () =
  let r = Cosa.schedule ~time_limit:2. arch tiny in
  let o = r.Cosa.objective in
  check_bool "util positive" true (o.Cosa.util > 0.);
  check_bool "comp consistent" true
    (Float.abs (o.Cosa.comp -. log (float_of_int (Mapping.total_temporal r.Cosa.mapping)))
     < 1e-6);
  check_bool "traf nonnegative" true (o.Cosa.traf >= 0.);
  let w = Cosa.calibrate arch in
  check_bool "total = weighted sum" true
    (Float.abs
       (o.Cosa.total
        -. ((-.w.Cosa.w_util *. o.Cosa.util) +. (w.Cosa.w_comp *. o.Cosa.comp)
            +. (w.Cosa.w_traf *. o.Cosa.traf)))
     < 1e-6)

let test_breakdown_ranks_mappings () =
  (* the Eq.12 objective should prefer the CoSA schedule over the trivial
     all-DRAM one *)
  let layer = Zoo.find "g3_28_8_8_1" in
  let r = Cosa.schedule ~time_limit:2. arch layer in
  let trivial = Cosa.trivial_mapping arch layer in
  let w = Cosa.calibrate arch in
  let o_cosa = Cosa.breakdown_of_mapping ~weights:w arch r.Cosa.mapping in
  let o_triv = Cosa.breakdown_of_mapping ~weights:w arch trivial in
  check_bool "cosa objective lower" true (o_cosa.Cosa.total < o_triv.Cosa.total)

let test_calibrate_weights () =
  let w = Cosa.calibrate arch in
  check_bool "positive weights" true
    (w.Cosa.w_util > 0. && w.Cosa.w_comp > 0. && w.Cosa.w_traf > 0.);
  let w64 = Cosa.calibrate Spec.pe64 in
  check_bool "more PEs -> traffic at least as important" true
    (w64.Cosa.w_traf >= w.Cosa.w_traf)

let test_decode_respects_rank () =
  (* in joint mode, if the MIP is solved to optimality, the decoded NoC
     order must be a permutation of the active dims *)
  let f = Cosa_formulation.build arch tiny in
  let res =
    Milp.Bb.solve ~node_limit:20_000 ~time_limit:5. ~priority:f.Cosa_formulation.priority
      f.Cosa_formulation.lp
  in
  match res.Milp.Bb.status with
  | Milp.Bb.Optimal | Milp.Bb.Feasible ->
    let m = Cosa_decode.decode f res in
    (* every dim appears at most once per level *)
    Array.iter
      (fun lm ->
        let dims = List.map (fun (l : Mapping.loop) -> l.Mapping.dim) lm.Mapping.temporal in
        check_int "no dup dims in level" (List.length dims)
          (List.length (List.sort_uniq compare dims)))
      m.Mapping.levels
  | _ -> Alcotest.fail "tiny MIP should solve"

let test_noc_spatial_pinning () =
  let f =
    Cosa_formulation.build ~joint_permutation:false ~noc_spatial:[ (Dims.K, 8) ] arch tiny
  in
  let res =
    Milp.Bb.solve ~node_limit:20_000 ~time_limit:5. ~priority:f.Cosa_formulation.priority
      f.Cosa_formulation.lp
  in
  (match res.Milp.Bb.status with
   | Milp.Bb.Optimal | Milp.Bb.Feasible ->
     let m = Cosa_decode.decode f res in
     let k_spatial =
       List.fold_left
         (fun acc (l : Mapping.loop) ->
           if l.Mapping.dim = Dims.K then acc * l.Mapping.bound else acc)
         1
         m.Mapping.levels.(arch.Spec.noc_level).Mapping.spatial
     in
     check_int "K pinned to 8 PEs" 8 k_spatial
   | _ -> Alcotest.fail "pinned MIP should solve")

let test_tuner () =
  let layer = Zoo.find "g3_28_8_8_1" in
  let plain = Cosa.schedule ~time_limit:1.5 arch layer in
  let plain_lat = (Model.evaluate arch plain.Cosa.mapping).Model.latency in
  let grid = [ Cosa.calibrate arch; { (Cosa.calibrate arch) with Cosa.w_traf = 2. } ] in
  let tuned = Cosa_tuner.tune ~grid ~time_limit:1.5 arch layer in
  check_int "tried both" 2 tuned.Cosa_tuner.tried;
  check_bool "valid" true (Mapping.is_valid arch tuned.Cosa_tuner.best.Cosa.mapping);
  let tuned_lat = (Model.evaluate arch tuned.Cosa_tuner.best.Cosa.mapping).Model.latency in
  (* the grid contains the calibrated point, so tuning can't lose *)
  check_bool "no regression" true (tuned_lat <= plain_lat +. 1e-6);
  Alcotest.check_raises "empty grid" (Invalid_argument "Cosa_tuner.tune: empty grid")
    (fun () -> ignore (Cosa_tuner.tune ~grid:[] arch layer))

let prop_schedule_always_valid =
  QCheck.Test.make ~name:"schedule is valid on random layers" ~count:10
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (r, (p, (c, k))) -> Layer.create ~r ~s:r ~p ~q:p ~c ~k ~n:1 ())
           (pair (int_range 1 3) (pair (int_range 1 16) (pair (int_range 1 32) (int_range 1 32))))))
    (fun layer ->
      let r = Cosa.schedule ~time_limit:1. arch layer in
      Mapping.is_valid arch r.Cosa.mapping)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "cosa",
    [
      Alcotest.test_case "formulation shape" `Quick test_formulation_shape;
      Alcotest.test_case "two-stage smaller" `Quick test_formulation_two_stage_smaller;
      Alcotest.test_case "per-factor bigger" `Quick test_per_factor_encoding_bigger;
      Alcotest.test_case "mip_start feasible" `Quick test_mip_start_feasible;
      Alcotest.test_case "schedule valid" `Slow test_schedule_valid_everywhere;
      Alcotest.test_case "degenerate layer" `Quick test_schedule_one_dimensional_layer;
      Alcotest.test_case "unit layer" `Quick test_schedule_unit_layer;
      Alcotest.test_case "beats trivial" `Quick test_schedule_beats_trivial;
      Alcotest.test_case "all strategies" `Slow test_strategies_all_valid;
      Alcotest.test_case "trivial valid" `Quick test_trivial_mapping_valid;
      Alcotest.test_case "repair fixes overflow" `Quick test_repair_fixes_overflow;
      Alcotest.test_case "repair noop" `Quick test_repair_noop_on_valid;
      Alcotest.test_case "objective breakdown" `Quick test_objective_breakdown;
      Alcotest.test_case "breakdown ranks" `Quick test_breakdown_ranks_mappings;
      Alcotest.test_case "calibrate" `Quick test_calibrate_weights;
      Alcotest.test_case "decode rank sanity" `Quick test_decode_respects_rank;
      Alcotest.test_case "noc spatial pinning" `Quick test_noc_spatial_pinning;
      Alcotest.test_case "tuner extension" `Slow test_tuner;
      qc prop_schedule_always_valid;
    ] )

