(* Wormhole-protocol tests: channel locking, flit ordering, backpressure,
   and hop-count accounting of the mesh. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let noc_spec = Spec.baseline.Spec.noc

let run_until_idle ?(cap = 200_000) mesh =
  let deliveries = ref [] in
  let n = ref 0 in
  while (not (Mesh.idle mesh)) && !n < cap do
    incr n;
    Mesh.step mesh;
    deliveries := !deliveries @ Mesh.delivered mesh
  done;
  check_bool "drained" true (Mesh.idle mesh);
  !deliveries

let test_one_hop_per_cycle () =
  (* a single 1-flit packet to the far corner takes at least the Manhattan
     distance plus injection/ejection in cycles *)
  let mesh = Mesh.create noc_spec in
  Mesh.inject mesh Mesh.Gb
    (Packet.make ~id:0 ~src:(-1) ~dests:[ 15 ] ~flits:1 ~tensor:Dims.W ~step:0);
  ignore (run_until_idle mesh);
  (* (0,0) -> (3,3): 6 links + inject + eject = 8 moves minimum *)
  check_bool "cycle lower bound" true (Mesh.cycles mesh >= 8);
  check_int "hop count exact" 8 (Mesh.flit_hops mesh)

let test_hops_scale_with_flits () =
  let hops n_flits =
    let mesh = Mesh.create noc_spec in
    Mesh.inject mesh Mesh.Gb
      (Packet.make ~id:0 ~src:(-1) ~dests:[ 5 ] ~flits:n_flits ~tensor:Dims.W ~step:0);
    ignore (run_until_idle mesh);
    Mesh.flit_hops mesh
  in
  let h1 = hops 1 and h4 = hops 4 in
  check_int "4 flits, 4x the hops" (4 * h1) h4

let test_pipeline_throughput () =
  (* a long packet pipelines: latency ~ path + flits, not path * flits *)
  let mesh = Mesh.create noc_spec in
  let flits = 32 in
  Mesh.inject mesh Mesh.Gb
    (Packet.make ~id:0 ~src:(-1) ~dests:[ 15 ] ~flits ~tensor:Dims.IA ~step:0);
  ignore (run_until_idle mesh);
  let path = 8 in
  check_bool "pipelined latency" true
    (Mesh.cycles mesh < path * flits && Mesh.cycles mesh >= path + flits - 1)

let test_wormhole_no_interleaving () =
  (* two multi-flit packets to the same destination share channels; wormhole
     locking must keep each packet's flits contiguous so both still arrive
     complete (delivery only fires when all flits arrived) *)
  let mesh = Mesh.create noc_spec in
  for i = 0 to 7 do
    Mesh.inject mesh Mesh.Gb
      (Packet.make ~id:i ~src:(-1) ~dests:[ 10 ] ~flits:7 ~tensor:Dims.W ~step:0)
  done;
  let delivered = run_until_idle mesh in
  check_int "all packets arrive complete" 8 (List.length delivered)

let test_backpressure_tiny_queues () =
  (* queue depth 1 forces heavy backpressure; traffic must still drain *)
  let spec = { noc_spec with Spec.queue_depth = 1 } in
  let mesh = Mesh.create spec in
  for i = 0 to 15 do
    Mesh.inject mesh Mesh.Gb
      (Packet.make ~id:i ~src:(-1) ~dests:[ i ] ~flits:4 ~tensor:Dims.IA ~step:0)
  done;
  let delivered = run_until_idle ~cap:500_000 mesh in
  check_int "all drained under backpressure" 16 (List.length delivered)

let test_multicast_tree_hop_count () =
  (* multicast to a full row: trunk shared, one branch per column *)
  let mesh = Mesh.create noc_spec in
  Mesh.inject mesh Mesh.Gb
    (Packet.make ~id:0 ~src:(-1) ~dests:[ 0; 1; 2; 3 ] ~flits:1 ~tensor:Dims.W ~step:0);
  ignore (run_until_idle mesh);
  (* inject + 3 east links + 4 ejections = 8 moves for the X-Y tree *)
  check_int "tree hops" 8 (Mesh.flit_hops mesh)

let test_bidirectional_fairness () =
  (* opposite-direction streams share routers without starvation *)
  let mesh = Mesh.create noc_spec in
  for i = 0 to 30 do
    Mesh.inject mesh (Mesh.Node 3)
      (Packet.make ~id:i ~src:3 ~dests:[ 12 ] ~flits:3 ~tensor:Dims.OA ~step:0);
    Mesh.inject mesh (Mesh.Node 12)
      (Packet.make ~id:(100 + i) ~src:12 ~dests:[ 3 ] ~flits:3 ~tensor:Dims.OA ~step:0)
  done;
  let delivered = run_until_idle ~cap:500_000 mesh in
  check_int "both streams complete" 62 (List.length delivered)

let suite =
  ( "mesh_wormhole",
    [
      Alcotest.test_case "one hop per cycle" `Quick test_one_hop_per_cycle;
      Alcotest.test_case "hops scale with flits" `Quick test_hops_scale_with_flits;
      Alcotest.test_case "pipeline throughput" `Quick test_pipeline_throughput;
      Alcotest.test_case "no interleaving" `Quick test_wormhole_no_interleaving;
      Alcotest.test_case "backpressure depth 1" `Quick test_backpressure_tiny_queues;
      Alcotest.test_case "multicast tree hops" `Quick test_multicast_tree_hop_count;
      Alcotest.test_case "bidirectional fairness" `Quick test_bidirectional_fairness;
    ] )
