(* Tests for architecture specifications. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_baseline_table5 () =
  let a = Spec.baseline in
  check_int "six levels" 6 (Spec.level_count a);
  check_int "dram level" 5 (Spec.dram_level a);
  check_int "16 PEs" 16 (Spec.num_pes a);
  check_int "64 MACs" 64 a.Spec.levels.(a.Spec.mac_level).Spec.fanout;
  check_int "4x4 mesh" 4 a.Spec.noc.Spec.mesh_x;
  check_int "flit 64b" 64 a.Spec.noc.Spec.flit_bits;
  check_bool "multicast" true a.Spec.noc.Spec.multicast;
  check_int "wbuf 32KB" (32 * 1024) a.Spec.levels.(2).Spec.capacity_bytes;
  check_int "inputbuf 8KB" (8 * 1024) a.Spec.levels.(3).Spec.capacity_bytes;
  check_int "accbuf 3KB" (3 * 1024) a.Spec.levels.(1).Spec.capacity_bytes;
  check_int "gb 128KB" (128 * 1024) a.Spec.levels.(4).Spec.capacity_bytes;
  check_int "w precision" 8 (a.Spec.precision_bits Dims.W);
  check_int "psum precision" 24 (a.Spec.precision_bits Dims.OA)

let test_b_matrix () =
  let a = Spec.baseline in
  (* Table IV B matrix *)
  check_bool "wbuf stores W" true (Spec.stores a 2 Dims.W);
  check_bool "wbuf not IA" false (Spec.stores a 2 Dims.IA);
  check_bool "accbuf OA only" true
    (Spec.stores a 1 Dims.OA && not (Spec.stores a 1 Dims.W));
  check_bool "gb IA+OA" true (Spec.stores a 4 Dims.IA && Spec.stores a 4 Dims.OA);
  check_bool "gb not W" false (Spec.stores a 4 Dims.W);
  check_bool "dram all" true
    (List.for_all (fun v -> Spec.stores a 5 v) Dims.all_tensors)

let test_capacity_words () =
  let a = Spec.baseline in
  (* WBuf: 32KB dedicated to 8-bit weights -> 32768 words *)
  Alcotest.(check (float 0.5)) "wbuf words" 32768. (Spec.capacity_words a 2 Dims.W);
  (* GB shared by IA + OA: each gets 64KB; IA 8-bit -> 65536 words *)
  Alcotest.(check (float 0.5)) "gb IA words" 65536. (Spec.capacity_words a 4 Dims.IA);
  (* OA is 24-bit: 64KB * 8 / 24 words *)
  Alcotest.(check (float 1.)) "gb OA words" (64. *. 1024. *. 8. /. 24.)
    (Spec.capacity_words a 4 Dims.OA);
  check_bool "dram unlimited" true (Spec.capacity_words a 5 Dims.W = infinity);
  Alcotest.(check (float 0.)) "not stored = 0" 0. (Spec.capacity_words a 2 Dims.IA)

let test_variants () =
  let pe64 = Spec.pe64 in
  check_int "pe64 has 64 PEs" 64 (Spec.num_pes pe64);
  check_int "8x8 mesh" 8 pe64.Spec.noc.Spec.mesh_x;
  check_bool "bandwidth doubled" true
    (pe64.Spec.levels.(4).Spec.bandwidth_words
     = 2. *. Spec.baseline.Spec.levels.(4).Spec.bandwidth_words);
  let big = Spec.big_sram in
  check_int "local x2" (64 * 1024) big.Spec.levels.(2).Spec.capacity_bytes;
  check_int "gb x8" (1024 * 1024) big.Spec.levels.(4).Spec.capacity_bytes;
  check_int "same PEs" 16 (Spec.num_pes big);
  let edge = Spec.edge in
  check_int "edge has 4 PEs" 4 (Spec.num_pes edge);
  check_int "edge gb quarter" (32 * 1024) edge.Spec.levels.(4).Spec.capacity_bytes;
  check_int "four variants" 4 (List.length Spec.variants)

let test_to_string () =
  let s = Spec.to_string Spec.baseline in
  check_bool "mentions GlobalBuf" true
    (let contains sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains "GlobalBuf" && contains "DRAM")

let suite =
  ( "arch",
    [
      Alcotest.test_case "Table V baseline" `Quick test_baseline_table5;
      Alcotest.test_case "B matrix" `Quick test_b_matrix;
      Alcotest.test_case "capacity words" `Quick test_capacity_words;
      Alcotest.test_case "variants" `Quick test_variants;
      Alcotest.test_case "to_string" `Quick test_to_string;
    ] )
