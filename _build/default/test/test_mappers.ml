(* Tests for the baseline schedulers. *)

let check_bool = Alcotest.(check bool)

let arch = Spec.baseline
let layer = Layer.create ~name:"map_t" ~r:1 ~s:1 ~p:8 ~q:8 ~c:16 ~k:16 ~n:1 ()

let test_random_search () =
  let rng = Prim.Rng.create 1 in
  let o = Random_mapper.search ~max_samples:2_000 rng arch layer in
  check_bool "found something" true (o.Baseline.best <> None);
  (match o.Baseline.best with
   | Some m -> check_bool "best is valid" true (Mapping.is_valid arch m)
   | None -> ());
  check_bool "counted samples" true (o.Baseline.samples > 0);
  check_bool "metric recorded" true (o.Baseline.best_metric < infinity)

let test_random_stops_at_target () =
  let rng = Prim.Rng.create 2 in
  let o = Random_mapper.search ~target_valid:1 rng arch layer in
  check_bool "stops after first valid" true (o.Baseline.valid <= 2)

let test_random_deterministic () =
  let run seed =
    let rng = Prim.Rng.create seed in
    (Random_mapper.search ~max_samples:1_000 rng arch layer).Baseline.best_metric
  in
  Alcotest.(check (float 0.)) "same seed same result" (run 7) (run 7);
  ignore (run 8)

let test_hybrid_search () =
  let rng = Prim.Rng.create 3 in
  let o = Hybrid_mapper.search ~threads:4 ~termination:100 rng arch layer in
  check_bool "found something" true (o.Baseline.best <> None);
  (match o.Baseline.best with
   | Some m -> check_bool "valid" true (Mapping.is_valid arch m)
   | None -> ());
  check_bool "evaluated many" true (o.Baseline.valid > 50)

let test_hybrid_beats_random () =
  (* with its permutation scan and self-termination, Hybrid should not lose
     to best-of-5 random on a non-trivial layer *)
  let l = Zoo.find "3_28_128_128_1" in
  let r = Random_mapper.search (Prim.Rng.create 4) arch l in
  let h = Hybrid_mapper.search ~threads:8 (Prim.Rng.create 4) arch l in
  check_bool "hybrid <= random latency" true
    (h.Baseline.best_metric <= r.Baseline.best_metric +. 1e-9)

let test_energy_metric_changes_choice () =
  let l = Zoo.find "3_28_128_128_1" in
  let by_lat =
    Hybrid_mapper.search ~threads:4 ~termination:100 ~metric:Baseline.latency_metric
      (Prim.Rng.create 5) arch l
  in
  let by_en =
    Hybrid_mapper.search ~threads:4 ~termination:100 ~metric:Baseline.energy_metric
      (Prim.Rng.create 5) arch l
  in
  (* the energy-optimised run must have energy no worse than the
     latency-optimised run's energy *)
  match (by_en.Baseline.best, by_lat.Baseline.best) with
  | Some me, Some ml ->
    check_bool "energy metric optimises energy" true
      (Baseline.energy_metric arch me <= Baseline.energy_metric arch ml +. 1e-6)
  | _ -> Alcotest.fail "both searches should find mappings"

let test_metrics_positive () =
  let rng = Prim.Rng.create 6 in
  match Sampler.valid rng arch layer with
  | None -> Alcotest.fail "sampler failed"
  | Some m ->
    check_bool "latency > 0" true (Baseline.latency_metric arch m > 0.);
    check_bool "energy > 0" true (Baseline.energy_metric arch m > 0.);
    Alcotest.(check (float 1.)) "edp = product"
      (Baseline.latency_metric arch m *. Baseline.energy_metric arch m)
      (Baseline.edp_metric arch m)

let suite =
  ( "mappers",
    [
      Alcotest.test_case "random search" `Quick test_random_search;
      Alcotest.test_case "random early stop" `Quick test_random_stops_at_target;
      Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
      Alcotest.test_case "hybrid search" `Quick test_hybrid_search;
      Alcotest.test_case "hybrid beats random" `Slow test_hybrid_beats_random;
      Alcotest.test_case "energy metric" `Slow test_energy_metric_changes_choice;
      Alcotest.test_case "metrics positive" `Quick test_metrics_positive;
    ] )
