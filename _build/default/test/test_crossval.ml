(* Cross-validation of the two evaluation platforms: the analytical model
   and the cycle-level simulator must broadly agree on how schedules rank
   (the paper's Figs. 6 and 10 rely on both telling a consistent story). *)

let check_bool = Alcotest.(check bool)

let arch = Spec.baseline
let layer = Layer.create ~name:"xv" ~r:1 ~s:1 ~p:8 ~q:8 ~c:16 ~k:16 ~n:1 ()

let sample_pairs n =
  let rng = Prim.Rng.create 0xCAFE in
  let rec go acc k =
    if k = 0 then acc
    else
      match Sampler.valid rng arch layer with
      | Some m ->
        let model = (Model.evaluate arch m).Model.latency in
        let sim = (Noc_sim.simulate ~max_steps:16 arch m).Noc_sim.latency in
        go ((model, sim) :: acc) (k - 1)
      | None -> go acc k
  in
  go [] n

let test_rank_agreement () =
  let pairs = sample_pairs 8 in
  (* Kendall-style concordance: over all pairs of schedules, the two
     platforms order them the same way more often than not *)
  let concordant = ref 0 and discordant = ref 0 in
  List.iteri
    (fun i (m1, s1) ->
      List.iteri
        (fun j (m2, s2) ->
          if j > i then begin
            let dm = compare m1 m2 and ds = compare s1 s2 in
            if dm * ds > 0 then incr concordant
            else if dm * ds < 0 then incr discordant
          end)
        pairs)
    pairs;
  check_bool
    (Printf.sprintf "concordant %d > discordant %d" !concordant !discordant)
    true
    (!concordant > !discordant)

let test_sim_never_beats_compute_floor () =
  List.iter
    (fun (model, sim) ->
      ignore model;
      check_bool "sim above zero" true (sim > 0.))
    (sample_pairs 4)

let test_extremes_agree_strongly () =
  let pairs = sample_pairs 8 in
  let by_model = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  match (by_model, List.rev by_model) with
  | (_, sim_best) :: _, (_, sim_worst) :: _ ->
    (* the model's best schedule should simulate at most half as slow as
       the model's worst schedule simulates *)
    check_bool "extremes ordered" true (sim_best < sim_worst)
  | _ -> Alcotest.fail "need samples"

let suite =
  ( "crossval",
    [
      Alcotest.test_case "rank agreement" `Slow test_rank_agreement;
      Alcotest.test_case "sim sanity" `Slow test_sim_never_beats_compute_floor;
      Alcotest.test_case "extremes agree" `Slow test_extremes_agree_strongly;
    ] )
