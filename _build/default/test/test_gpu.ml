(* Tests for the GPU case-study library. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spec = Gpu.k80

let tiling ~bm ~bn ~bk ~tm ~tn =
  { Gpu.block_m = bm; block_n = bn; block_k = bk; thread_m = tm; thread_n = tn }

let g = { Gpu.m = 256; n = 256; k = 256 }

let test_gemm_of_layer () =
  let l = Layer.create ~r:3 ~s:3 ~p:14 ~q:14 ~c:256 ~k:512 ~n:2 () in
  let gg = Gpu.gemm_of_layer l in
  check_int "m = output channels" 512 gg.Gpu.m;
  check_int "n = spatial x batch" (14 * 14 * 2) gg.Gpu.n;
  check_int "k = reduction" (256 * 3 * 3) gg.Gpu.k

let test_valid () =
  check_bool "reasonable tiling" true
    (Gpu.valid spec g (tiling ~bm:64 ~bn:64 ~bk:16 ~tm:4 ~tn:4));
  (* too many threads per block: 128*128 / 1 = 16384 *)
  check_bool "thread overflow" false
    (Gpu.valid spec g (tiling ~bm:128 ~bn:128 ~bk:8 ~tm:1 ~tn:1));
  (* shared memory overflow: (256*64 + 64*256)*4 = 128KB > 48KB *)
  check_bool "smem overflow" false
    (Gpu.valid spec g (tiling ~bm:256 ~bn:256 ~bk:64 ~tm:16 ~tn:16));
  (* register overflow: 16*16 + 32 > 32 *)
  check_bool "register overflow" false
    (Gpu.valid spec g (tiling ~bm:64 ~bn:64 ~bk:8 ~tm:16 ~tn:16));
  (* misaligned thread tile *)
  check_bool "divisibility" false
    (Gpu.valid spec g (tiling ~bm:64 ~bn:64 ~bk:8 ~tm:3 ~tn:4));
  (* block larger than the problem *)
  check_bool "block exceeds problem" false
    (Gpu.valid spec g (tiling ~bm:512 ~bn:64 ~bk:8 ~tm:4 ~tn:4))

let test_latency () =
  let t = tiling ~bm:64 ~bn:64 ~bk:16 ~tm:4 ~tn:4 in
  let l = Gpu.latency spec g t in
  check_bool "positive" true (l > 0. && l < infinity);
  check_bool "invalid is infinite" true
    (Gpu.latency spec g (tiling ~bm:512 ~bn:64 ~bk:8 ~tm:4 ~tn:4) = infinity);
  (* compute lower bound: mnk / cores *)
  let floor_cycles =
    float_of_int g.Gpu.m *. float_of_int g.Gpu.n *. float_of_int g.Gpu.k
    /. float_of_int spec.Gpu.cores
  in
  check_bool "above compute floor" true (l >= floor_cycles -. 1e-6)

let test_cosa_schedule_valid () =
  List.iter
    (fun (m, n, k) ->
      let g = { Gpu.m; n; k } in
      let r = Gpu.cosa_schedule spec g in
      check_bool
        (Printf.sprintf "valid for %dx%dx%d" m n k)
        true (Gpu.valid spec g r.Gpu.tiling);
      check_bool "finite latency" true (r.Gpu.latency < infinity);
      check_int "one-shot" 1 r.Gpu.evaluations)
    [ (256, 256, 256); (512, 49, 4608); (64, 3136, 256); (1000, 1, 2048); (1, 1, 1) ]

let test_tvm_search_valid () =
  let rng = Prim.Rng.create 12 in
  let r = Gpu.tvm_search ~trials:30 rng spec g in
  check_bool "valid" true (Gpu.valid spec g r.Gpu.tiling);
  check_bool "counts evaluations" true (r.Gpu.evaluations >= 30)

let test_cosa_competitive () =
  (* on a square compute-bound GEMM, one-shot CoSA should be within 2x of a
     50-trial search *)
  let rng = Prim.Rng.create 13 in
  let c = Gpu.cosa_schedule spec g in
  let t = Gpu.tvm_search rng spec g in
  check_bool "within 2x of TVM" true (c.Gpu.latency <= 2. *. t.Gpu.latency)

let prop_tvm_results_valid =
  QCheck.Test.make ~name:"tvm search always returns valid tilings" ~count:25
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (m, (n, k)) -> { Gpu.m; n; k })
           (pair (int_range 1 1024) (pair (int_range 1 1024) (int_range 1 2048)))))
    (fun g ->
      let rng = Prim.Rng.create 14 in
      let r = Gpu.tvm_search ~trials:10 rng spec g in
      Gpu.valid spec g r.Gpu.tiling)

let prop_cosa_results_valid =
  QCheck.Test.make ~name:"cosa-gpu always returns valid tilings" ~count:20
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (m, (n, k)) -> { Gpu.m; n; k })
           (pair (int_range 1 1024) (pair (int_range 1 1024) (int_range 1 2048)))))
    (fun g ->
      let r = Gpu.cosa_schedule spec g in
      Gpu.valid spec g r.Gpu.tiling)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "gpu",
    [
      Alcotest.test_case "gemm_of_layer" `Quick test_gemm_of_layer;
      Alcotest.test_case "validity rules" `Quick test_valid;
      Alcotest.test_case "latency model" `Quick test_latency;
      Alcotest.test_case "cosa schedule valid" `Quick test_cosa_schedule_valid;
      Alcotest.test_case "tvm search valid" `Quick test_tvm_search_valid;
      Alcotest.test_case "cosa competitive" `Quick test_cosa_competitive;
      qc prop_tvm_results_valid;
      qc prop_cosa_results_valid;
    ] )
