test/test_prim.ml: Alcotest Array Float Fun Gen List Prim Printf QCheck QCheck_alcotest String
