test/test_mapspace_network.ml: Alcotest Cosa Layer List Mapping Mapspace Network Spec String Zoo
