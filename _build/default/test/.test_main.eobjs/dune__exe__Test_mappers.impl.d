test/test_mappers.ml: Alcotest Baseline Hybrid_mapper Layer Mapping Prim Random_mapper Sampler Spec Zoo
