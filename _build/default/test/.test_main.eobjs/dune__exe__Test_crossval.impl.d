test/test_crossval.ml: Alcotest Layer List Model Noc_sim Prim Printf Sampler Spec
