test/test_model.ml: Alcotest Array Dims Float Layer List Mapping Model Prim QCheck QCheck_alcotest Sampler Spec String
