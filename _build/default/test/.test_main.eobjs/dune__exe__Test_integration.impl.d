test/test_integration.ml: Alcotest Baseline Cosa Hybrid_mapper Layer List Mapping Model Noc_sim Prim Random_mapper Spec Zoo
