test/test_noc.ml: Alcotest Cosa Dims Dram_model Layer List Mesh Model Noc_sim Packet Prim Printf Sampler Spec Zoo
