test/test_search_mappers.ml: Alcotest Anneal_mapper Baseline Dims Genetic_mapper Hybrid_mapper Layer List Mapping Prim Random_mapper Sampler Spec
