test/test_mesh_wormhole.ml: Alcotest Dims List Mesh Packet Spec
