test/test_workload.ml: Alcotest Dims Layer List Printf QCheck QCheck_alcotest Zoo
