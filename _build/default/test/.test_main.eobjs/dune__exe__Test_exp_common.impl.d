test/test_exp_common.ml: Alcotest Buffer Common Cosa Layer List Model Spec String
