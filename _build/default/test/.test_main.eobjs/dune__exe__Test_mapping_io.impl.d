test/test_mapping_io.ml: Alcotest Array Cosa Filename Fun Layer Mapping Mapping_io Prim QCheck QCheck_alcotest Sampler Spec Sys Zoo
