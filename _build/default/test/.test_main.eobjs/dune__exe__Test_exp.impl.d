test/test_exp.ml: Alcotest Common Float List Mapping Registry Spec String Unix Zoo
