test/test_presolve.ml: Alcotest Array Bb Lp Milp Presolve QCheck QCheck_alcotest Simplex
