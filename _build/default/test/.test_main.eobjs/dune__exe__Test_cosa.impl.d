test/test_cosa.ml: Alcotest Array Cosa Cosa_decode Cosa_formulation Cosa_tuner Dims Float Layer List Mapping Milp Model Prim QCheck QCheck_alcotest Sampler Spec Zoo
