test/test_objective.ml: Alcotest Cosa Dims Float Layer Mapping Spec
