test/test_arch.ml: Alcotest Array Dims List Spec String
