test/test_model_counts.ml: Alcotest Array Dims Layer Lazy Mapping Model Spec
