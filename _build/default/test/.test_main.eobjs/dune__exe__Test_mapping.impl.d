test/test_mapping.ml: Alcotest Array Dims Layer List Mapping Prim QCheck QCheck_alcotest Sampler Spec String
