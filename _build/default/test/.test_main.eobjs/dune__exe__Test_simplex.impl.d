test/test_simplex.ml: Alcotest Array List Milp Prim Simplex
