test/test_decode.ml: Alcotest Array Cosa_decode Cosa_formulation Cosa_objective Dims Layer List Mapping Milp Prim Printf Sampler Spec
