test/test_gpu.ml: Alcotest Gpu Layer List Prim Printf QCheck QCheck_alcotest
