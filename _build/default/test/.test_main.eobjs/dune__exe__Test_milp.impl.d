test/test_milp.ml: Alcotest Array Bb Float List Lp Milp Printf QCheck QCheck_alcotest Simplex String
