(* Tests for the annealing and genetic schedulers. *)

let check_bool = Alcotest.(check bool)

let arch = Spec.baseline
let layer = Layer.create ~name:"sm_t" ~r:1 ~s:1 ~p:8 ~q:8 ~c:16 ~k:16 ~n:1 ()

let test_anneal_finds_valid () =
  let rng = Prim.Rng.create 1 in
  let o = Anneal_mapper.search ~iterations:400 rng arch layer in
  (match o.Baseline.best with
   | Some m -> check_bool "valid" true (Mapping.is_valid arch m)
   | None -> Alcotest.fail "annealing found nothing");
  check_bool "metric finite" true (o.Baseline.best_metric < infinity);
  check_bool "counted" true (o.Baseline.samples > 100)

let test_anneal_improves_over_start () =
  (* the best must be no worse than a fresh constructive sample under the
     same seed stream *)
  let rng = Prim.Rng.create 2 in
  let start = Sampler.valid (Prim.Rng.copy rng) arch layer in
  let o = Anneal_mapper.search ~iterations:800 rng arch layer in
  match (start, o.Baseline.best) with
  | Some s, Some _ ->
    check_bool "no worse than its own start" true
      (o.Baseline.best_metric <= Baseline.latency_metric arch s +. 1e-9)
  | _ -> Alcotest.fail "both should exist"

let test_perturb_preserves_factorization () =
  let rng = Prim.Rng.create 3 in
  match Sampler.valid rng arch layer with
  | None -> Alcotest.fail "sampler failed"
  | Some m ->
    for _ = 1 to 200 do
      let m' = Anneal_mapper.perturb rng arch m in
      List.iter
        (fun d ->
          Alcotest.(check int)
            (Dims.dim_name d)
            (Mapping.dim_product m ~upto:6 d)
            (Mapping.dim_product m' ~upto:6 d))
        Dims.all_dims
    done

let test_genetic_finds_valid () =
  let rng = Prim.Rng.create 4 in
  let o = Genetic_mapper.search ~population:12 ~generations:8 rng arch layer in
  (match o.Baseline.best with
   | Some m -> check_bool "valid" true (Mapping.is_valid arch m)
   | None -> Alcotest.fail "GA found nothing");
  check_bool "evaluated population" true (o.Baseline.valid >= 12)

let test_genetic_elitism () =
  (* the reported best must be at least as good as any seed individual:
     run with zero generations worth of improvement pressure *)
  let rng = Prim.Rng.create 5 in
  let o1 = Genetic_mapper.search ~population:10 ~generations:1 rng arch layer in
  let o2 = Genetic_mapper.search ~population:10 ~generations:12 (Prim.Rng.create 5) arch layer in
  check_bool "more generations no worse" true
    (o2.Baseline.best_metric <= o1.Baseline.best_metric +. 1e-9)

let test_all_searchers_comparable () =
  (* on a simple layer all four search baselines should land within an
     order of magnitude of each other *)
  let metrics =
    [
      (Random_mapper.search (Prim.Rng.create 6) arch layer).Baseline.best_metric;
      (Hybrid_mapper.search ~threads:4 ~termination:100 (Prim.Rng.create 6) arch layer)
        .Baseline.best_metric;
      (Anneal_mapper.search ~iterations:500 (Prim.Rng.create 6) arch layer)
        .Baseline.best_metric;
      (Genetic_mapper.search ~population:12 ~generations:10 (Prim.Rng.create 6) arch layer)
        .Baseline.best_metric;
    ]
  in
  let lo = List.fold_left min infinity metrics in
  let hi = List.fold_left max 0. metrics in
  check_bool "all found something" true (hi < infinity);
  check_bool "within 20x of each other" true (hi /. lo < 20.)

let suite =
  ( "search_mappers",
    [
      Alcotest.test_case "anneal valid" `Quick test_anneal_finds_valid;
      Alcotest.test_case "anneal improves" `Quick test_anneal_improves_over_start;
      Alcotest.test_case "perturb factorization" `Quick test_perturb_preserves_factorization;
      Alcotest.test_case "genetic valid" `Quick test_genetic_finds_valid;
      Alcotest.test_case "genetic elitism" `Quick test_genetic_elitism;
      Alcotest.test_case "searchers comparable" `Slow test_all_searchers_comparable;
    ] )
