(* Tests for interval-propagation bound tightening. *)

open Milp

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let problem_of_model m = Bb.relax m

let test_equality_fixes_sibling () =
  (* x + y = 5 with x fixed to 2 must force y = 3 *)
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~lb:2. ~ub:2. "x" in
  let y = Lp.add_var m ~integer:true ~ub:10. "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Eq 5.;
  let p = problem_of_model m in
  let rows = Presolve.rows_of p in
  let lb = Array.copy p.Simplex.lb and ub = Array.copy p.Simplex.ub in
  let r = Presolve.tighten ~integer:[| true; true |] p rows lb ub in
  check_bool "feasible" true r.Presolve.feasible;
  check_float "y lower" 3. lb.(1);
  check_float "y upper" 3. ub.(1);
  check_bool "tightened something" true (r.Presolve.tightened > 0)

let test_detects_infeasible () =
  (* x + y = 10 with x,y <= 4 is impossible *)
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:4. "x" and y = Lp.add_var m ~ub:4. "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Eq 10.;
  let p = problem_of_model m in
  let rows = Presolve.rows_of p in
  let lb = Array.copy p.Simplex.lb and ub = Array.copy p.Simplex.ub in
  let r = Presolve.tighten p rows lb ub in
  check_bool "infeasible detected" false r.Presolve.feasible

let test_le_slack_handling () =
  (* 2x <= 6 (slacked) should tighten x <= 3 *)
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~ub:100. "x" in
  Lp.add_constr m [ (2., x) ] Lp.Le 6.;
  let p = problem_of_model m in
  let rows = Presolve.rows_of p in
  let lb = Array.copy p.Simplex.lb and ub = Array.copy p.Simplex.ub in
  let r = Presolve.tighten ~integer:[| true; false |] p rows lb ub in
  check_bool "feasible" true r.Presolve.feasible;
  check_float "x upper" 3. ub.(0)

let test_integer_rounding () =
  (* 2x + s = 7, s in [0, inf): x <= 3.5, integer rounding gives x <= 3 *)
  let m = Lp.create () in
  let x = Lp.add_var m ~integer:true ~ub:100. "x" in
  Lp.add_constr m [ (2., x) ] Lp.Le 7.;
  let p = problem_of_model m in
  let rows = Presolve.rows_of p in
  let lb = Array.copy p.Simplex.lb and ub = Array.copy p.Simplex.ub in
  ignore (Presolve.tighten ~integer:[| true; false |] p rows lb ub);
  check_float "x upper rounded" 3. ub.(0)

let test_no_change_when_loose () =
  let m = Lp.create () in
  let x = Lp.add_var m ~ub:1. "x" and y = Lp.add_var m ~ub:1. "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 5.;
  let p = problem_of_model m in
  let rows = Presolve.rows_of p in
  let lb = Array.copy p.Simplex.lb and ub = Array.copy p.Simplex.ub in
  let r = Presolve.tighten p rows lb ub in
  check_bool "feasible" true r.Presolve.feasible;
  check_float "x unchanged" 1. ub.(0);
  check_float "y unchanged" 1. ub.(1)

let test_bb_agrees_with_and_without () =
  (* end-to-end consistency: the MILP optimum is presolve-invariant (checked
     against brute force values computed by hand) *)
  let m = Lp.create () in
  let a = Lp.add_var m ~integer:true ~ub:4. "a" in
  let b = Lp.add_var m ~integer:true ~ub:4. "b" in
  let c = Lp.add_var m ~integer:true ~ub:4. "c" in
  Lp.add_constr m [ (1., a); (1., b); (1., c) ] Lp.Eq 6.;
  Lp.add_constr m [ (2., a); (1., b) ] Lp.Le 7.;
  Lp.set_objective m `Maximize [ (3., a); (2., b); (1., c) ];
  let r = Bb.solve m in
  (* optimum: a=2,b=3,c=1 -> 13? check a=1,b=4? b<=4: 3+8+1=12; a=2,b=3,c=1: 6+6+1=13;
     a=3,b=1,c=2: 9+2+2=13 but 2a+b=7<=7 ok -> 13 *)
  check_float "objective" 13. r.Bb.obj

let prop_tighten_preserves_integer_solutions =
  (* any integer point feasible before tightening stays within the
     tightened box *)
  QCheck.Test.make ~name:"tighten never cuts off feasible integer points" ~count:80
    QCheck.(pair (pair (int_range 0 4) (int_range 0 4)) (int_range 0 8))
    (fun ((xv, yv), rhs) ->
      let m = Lp.create () in
      let x = Lp.add_var m ~integer:true ~ub:4. "x" in
      let y = Lp.add_var m ~integer:true ~ub:4. "y" in
      Lp.add_constr m [ (1., x); (2., y) ] Lp.Le (float_of_int rhs);
      let p = problem_of_model m in
      let feasible_point = xv + (2 * yv) <= rhs in
      let rows = Presolve.rows_of p in
      let lb = Array.copy p.Simplex.lb and ub = Array.copy p.Simplex.ub in
      let r = Presolve.tighten ~integer:[| true; true; false |] p rows lb ub in
      if not feasible_point then true
      else
        r.Presolve.feasible
        && float_of_int xv >= lb.(0) -. 1e-9
        && float_of_int xv <= ub.(0) +. 1e-9
        && float_of_int yv >= lb.(1) -. 1e-9
        && float_of_int yv <= ub.(1) +. 1e-9)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "presolve",
    [
      Alcotest.test_case "equality fixes sibling" `Quick test_equality_fixes_sibling;
      Alcotest.test_case "detects infeasible" `Quick test_detects_infeasible;
      Alcotest.test_case "le slack" `Quick test_le_slack_handling;
      Alcotest.test_case "integer rounding" `Quick test_integer_rounding;
      Alcotest.test_case "loose rows untouched" `Quick test_no_change_when_loose;
      Alcotest.test_case "bb end-to-end" `Quick test_bb_agrees_with_and_without;
      qc prop_tighten_preserves_integer_solutions;
    ] )
