(* Tests for the experiment-harness helpers in Common. *)

let check_bool = Alcotest.(check bool)

let test_geomean_speedups_pairs () =
  let base = [ ("a", 10.); ("b", 20.); ("c", 5.) ] in
  let other = [ ("a", 5.); ("b", 10.); ("d", 1.) ] in
  let r = Common.geomean_speedups base other in
  Alcotest.(check (list (pair string (float 1e-9)))) "paired ratios"
    [ ("a", 2.); ("b", 2.) ] r

let test_geomean_speedups_zero_guard () =
  let r = Common.geomean_speedups [ ("a", 1.) ] [ ("a", 0.) ] in
  Alcotest.(check int) "zero denominators dropped" 0 (List.length r)

let test_section_heading () =
  let buf = Buffer.create 64 in
  Common.section buf "Hello";
  let s = Buffer.contents buf in
  check_bool "title present" true (String.length s > 6);
  check_bool "underline matches" true
    (let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
     match lines with
     | [ title; rule ] -> String.length title = String.length rule
     | _ -> false)

let test_metrics_monotone () =
  (* the three Common metric accessors must agree with Model.evaluate *)
  let arch = Spec.baseline in
  let layer = Layer.create ~name:"cm" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 () in
  let m = Cosa.trivial_mapping arch layer in
  let e = Model.evaluate arch m in
  Alcotest.(check (float 1e-6)) "latency" e.Model.latency (Common.latency arch m);
  Alcotest.(check (float 1e-6)) "energy" e.Model.energy_pj (Common.energy arch m);
  Alcotest.(check (float 1e-6)) "noc energy" e.Model.noc_energy_pj (Common.noc_energy arch m)

let test_cache_key_isolation () =
  (* the same layer under different metrics must be cached separately for
     the search-based schedulers *)
  let arch = Spec.baseline in
  let layer = Layer.create ~name:"iso_t" ~r:1 ~s:1 ~p:8 ~q:8 ~c:16 ~k:16 ~n:1 () in
  let by_lat = Common.schedule ~metric:`Latency arch layer Common.Hybrid_s in
  let by_en = Common.schedule ~metric:`Energy arch layer Common.Hybrid_s in
  (* energy-optimised pick has energy no worse than the latency-optimised *)
  check_bool "energy cache not clobbered" true
    (Common.energy arch by_en.Common.mapping
     <= Common.energy arch by_lat.Common.mapping +. 1e-6)

let suite =
  ( "exp_common",
    [
      Alcotest.test_case "geomean pairs" `Quick test_geomean_speedups_pairs;
      Alcotest.test_case "zero guard" `Quick test_geomean_speedups_zero_guard;
      Alcotest.test_case "section heading" `Quick test_section_heading;
      Alcotest.test_case "metric accessors" `Quick test_metrics_monotone;
      Alcotest.test_case "cache key isolation" `Slow test_cache_key_isolation;
    ] )
