(* Hand-computed access counts for the analytical model on a fully
   explicit mapping (no spatial loops, so every count is a small integer).

   Layer: 1x1 conv, P=Q=2, C=4, K=4.
   Mapping: L0 temporal [P2; Q2], L2 temporal [C4], L4 temporal [K4].
   Flattened nest, outermost first: K4 (GB) . C4 (WBuf) . P2 . Q2 (Reg).

   Derived by hand:
     refills(W,0)  = K4*C4 = 16 (innermost W-relevant loop is C)
     refills(IA,0) = 64 (Q innermost is IA-relevant: no register reuse)
     refills(IA,3) = refills(IA,4) = 1 (only K remains above: full reuse)
     refills(OA,1) = 4 (innermost OA-relevant above AccBuf is K)
     tile(IA,3) = P2*Q2*C4 = 16;  tile(OA,1) = 4;  tile(W,2) = 1 *)

let check = Alcotest.(check (float 1e-6))

let arch = Spec.baseline

let layer = Layer.create ~name:"cnt_t" ~r:1 ~s:1 ~p:2 ~q:2 ~c:4 ~k:4 ~n:1 ()

let lp dim bound = { Mapping.dim; bound }

let mapping =
  Mapping.make layer
    [|
      { Mapping.temporal = [ lp Dims.P 2; lp Dims.Q 2 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = [ lp Dims.C 4 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = [ lp Dims.K 4 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
    |]

let eval = lazy (Model.evaluate arch mapping)

let c level v field =
  let e = Lazy.force eval in
  let cnt = e.Model.counts.(level).(Dims.tensor_index v) in
  match field with
  | `Fills -> cnt.Model.fills
  | `Reads -> cnt.Model.reads
  | `Updates -> cnt.Model.updates

let test_weight_path () =
  (* registers refetch W once per (K, C) iteration; P, Q reuse in place *)
  check "reg W fills" 16. (c 0 Dims.W `Fills);
  check "wbuf W reads" 16. (c 2 Dims.W `Reads);
  (* the WBuf tile is a single weight here; 16 fills of 1 word *)
  check "wbuf W fills" 16. (c 2 Dims.W `Fills);
  check "dram W reads" 16. (c 5 Dims.W `Reads)

let test_input_path () =
  check "reg IA fills (one per MAC)" 64. (c 0 Dims.IA `Fills);
  check "inputbuf IA reads" 64. (c 3 Dims.IA `Reads);
  (* the whole 16-word input loads into InputBuf exactly once *)
  check "inputbuf IA fills" 16. (c 3 Dims.IA `Fills);
  check "gb IA reads" 16. (c 4 Dims.IA `Reads);
  check "gb IA fills" 16. (c 4 Dims.IA `Fills);
  check "dram IA reads" 16. (c 5 Dims.IA `Reads)

let test_output_path () =
  (* every MAC result drains through the register *)
  check "reg OA reads (drains)" 64. (c 0 Dims.OA `Reads);
  check "accbuf OA updates" 64. (c 1 Dims.OA `Updates);
  (* C iterations above force read-modify-write accumulation at AccBuf,
     plus the drain reads toward the GB: 64 + 16 *)
  check "accbuf OA reads" 80. (c 1 Dims.OA `Reads);
  check "gb OA updates" 16. (c 4 Dims.OA `Updates);
  (* K above the GB is OA-relevant: no reduction left, no accum reads *)
  check "gb OA reads (drains only)" 16. (c 4 Dims.OA `Reads);
  (* each output word reaches DRAM exactly once *)
  check "dram OA updates" 16. (c 5 Dims.OA `Updates)

let test_compute_and_tiles () =
  let e = Lazy.force eval in
  check "compute = 64" 64. e.Model.compute_cycles;
  check "macs = 64" 64. e.Model.macs;
  check "IA tile at InputBuf" 16.
    (Lazy.force eval).Model.counts.(3).(Dims.tensor_index Dims.IA).Model.tile;
  check "OA tile at AccBuf" 4.
    (Lazy.force eval).Model.counts.(1).(Dims.tensor_index Dims.OA).Model.tile

let suite =
  ( "model_counts",
    [
      Alcotest.test_case "weight path" `Quick test_weight_path;
      Alcotest.test_case "input path" `Quick test_input_path;
      Alcotest.test_case "output path" `Quick test_output_path;
      Alcotest.test_case "compute and tiles" `Quick test_compute_and_tiles;
    ] )
