(* Tests for the mapping representation, validation, and samplers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let arch = Spec.baseline

let lp dim bound = { Mapping.dim; bound }

let small_layer = Layer.create ~name:"tiny" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 ()

(* a straightforward valid mapping for [small_layer] *)
let small_mapping =
  Mapping.make small_layer
    [|
      { Mapping.temporal = [ lp Dims.P 4; lp Dims.Q 4 ]; spatial = [ lp Dims.K 8 ] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = [ lp Dims.C 2 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [ lp Dims.C 4 ] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
    |]

let test_dim_product () =
  check_int "P below dram" 4 (Mapping.dim_product small_mapping ~upto:6 Dims.P);
  check_int "C below L3" 2 (Mapping.dim_product small_mapping ~upto:3 Dims.C);
  check_int "C total" 8 (Mapping.dim_product small_mapping ~upto:6 Dims.C);
  check_int "K spatial counts" 8 (Mapping.dim_product small_mapping ~upto:6 Dims.K);
  check_int "upto 0 is 1" 1 (Mapping.dim_product small_mapping ~upto:0 Dims.P)

let test_products () =
  check_int "spatial L0" 8 (Mapping.spatial_product small_mapping 0);
  check_int "spatial L3" 4 (Mapping.spatial_product small_mapping 3);
  check_int "temporal L0" 16 (Mapping.temporal_product small_mapping 0);
  check_int "total temporal" 32 (Mapping.total_temporal small_mapping);
  check_int "PEs used" 4 (Mapping.pe_count_used arch small_mapping)

let test_tile_words_halo () =
  let l = Layer.create ~name:"halo" ~r:3 ~s:3 ~p:8 ~q:8 ~c:4 ~k:4 ~n:1 ~stride:2 () in
  let m =
    Mapping.make l
      [|
        { Mapping.temporal = [ lp Dims.P 8; lp Dims.Q 8; lp Dims.R 3; lp Dims.S 3 ];
          spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = [ lp Dims.C 4; lp Dims.K 4 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  (* IA tile at level 1 spans the level-0 loops only: full P, Q, R, S with
     the sliding-window halo ((8-1)*2+3 = 17 per axis), but C sits at L2 *)
  Alcotest.(check (float 0.)) "IA halo" (17. *. 17.)
    (Mapping.tile_words arch m 1 Dims.IA);
  Alcotest.(check (float 0.)) "W tile" (3. *. 3. *. 4. *. 4.)
    (Mapping.tile_words arch m 3 Dims.W);
  Alcotest.(check (float 0.)) "OA tile" (8. *. 8. *. 4.)
    (Mapping.tile_words arch m 3 Dims.OA)

let test_validate_ok () =
  Alcotest.(check (list string)) "no violations" []
    (List.map Mapping.violation_to_string (Mapping.validate arch small_mapping))

let test_validate_bad_factorization () =
  let m =
    Mapping.make small_layer
      [|
        { Mapping.temporal = [ lp Dims.P 2 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = [ lp Dims.Q 4; lp Dims.C 8; lp Dims.K 8 ]; spatial = [] };
      |]
  in
  check_bool "invalid" false (Mapping.is_valid arch m);
  check_bool "reports P" true
    (List.exists
       (function Mapping.Bad_factorization (Dims.P, 2, 4) -> true | _ -> false)
       (Mapping.validate arch m))

let test_validate_spatial_overflow () =
  let m =
    Mapping.make small_layer
      [|
        { Mapping.temporal = [ lp Dims.P 4; lp Dims.Q 4; lp Dims.C 8 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        (* 32 > 16 PEs *)
        { Mapping.temporal = []; spatial = [ lp Dims.K 8; lp Dims.C 1 ] };
        { Mapping.temporal = []; spatial = [ lp Dims.K 1 ] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  ignore m;
  let m2 =
    Mapping.make small_layer
      [|
        { Mapping.temporal = [ lp Dims.P 4; lp Dims.Q 4 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [ lp Dims.K 8; lp Dims.C 8 ] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  check_bool "spatial overflow detected" true
    (List.exists
       (function Mapping.Spatial_overflow (3, 64, 16) -> true | _ -> false)
       (Mapping.validate arch m2))

let test_validate_buffer_overflow () =
  (* put the whole layer below the register level's capacity scope: a big C
     tile below WBuf won't fit the weight buffer for a fat layer *)
  let l = Layer.create ~name:"fat" ~r:3 ~s:3 ~p:1 ~q:1 ~c:256 ~k:256 ~n:1 () in
  let m =
    Mapping.make l
      [|
        { Mapping.temporal = [ lp Dims.R 3; lp Dims.S 3; lp Dims.C 256; lp Dims.K 256 ];
          spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  check_bool "buffer overflow detected" true
    (List.exists
       (function Mapping.Buffer_overflow (_, Dims.W, _, _) -> true | _ -> false)
       (Mapping.validate arch m))

let test_loop_nest_rendering () =
  let s = Mapping.to_loop_nest arch small_mapping in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "spatial_for" true (contains "spatial_for K in [0:8)");
  check_bool "temporal for" true (contains "for P in [0:4)");
  check_bool "level names" true (contains "GlobalBuf")

let test_fingerprint () =
  check_bool "same mapping same print" true
    (Mapping.fingerprint small_mapping = Mapping.fingerprint small_mapping);
  let other =
    Mapping.make small_layer
      (Array.map
         (fun lm -> { lm with Mapping.temporal = List.rev lm.Mapping.temporal })
         small_mapping.Mapping.levels)
  in
  check_bool "order changes print" true
    (Mapping.fingerprint small_mapping <> Mapping.fingerprint other)

let layer_gen =
  QCheck.Gen.(
    map
      (fun (r, (p, (c, k))) -> Layer.create ~r ~s:r ~p ~q:p ~c ~k ~n:1 ())
      (pair (int_range 1 3) (pair (int_range 1 28) (pair (int_range 1 128) (int_range 1 128)))))

let prop_raw_sampler_factorizes =
  QCheck.Test.make ~name:"raw samples factorise every dim correctly" ~count:60
    (QCheck.make layer_gen)
    (fun layer ->
      let rng = Prim.Rng.create 11 in
      let m = Sampler.raw rng arch layer in
      List.for_all
        (fun d ->
          Mapping.dim_product m ~upto:(Spec.level_count arch) d = Layer.padded_bound layer d)
        Dims.all_dims)

let prop_valid_sampler_validates =
  QCheck.Test.make ~name:"constructive sampler returns valid mappings" ~count:40
    (QCheck.make layer_gen)
    (fun layer ->
      let rng = Prim.Rng.create 13 in
      match Sampler.valid rng arch layer with
      | Some m -> Mapping.is_valid arch m
      | None -> true)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "mapping",
    [
      Alcotest.test_case "dim_product" `Quick test_dim_product;
      Alcotest.test_case "products" `Quick test_products;
      Alcotest.test_case "tile words halo" `Quick test_tile_words_halo;
      Alcotest.test_case "validate ok" `Quick test_validate_ok;
      Alcotest.test_case "bad factorization" `Quick test_validate_bad_factorization;
      Alcotest.test_case "spatial overflow" `Quick test_validate_spatial_overflow;
      Alcotest.test_case "buffer overflow" `Quick test_validate_buffer_overflow;
      Alcotest.test_case "loop nest rendering" `Quick test_loop_nest_rendering;
      Alcotest.test_case "fingerprint" `Quick test_fingerprint;
      qc prop_raw_sampler_factorizes;
      qc prop_valid_sampler_validates;
    ] )
