(* Tests for the Timeloop-class analytical model: reuse analysis, access
   counts, latency, and energy. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let arch = Spec.baseline

let lp dim bound = { Mapping.dim; bound }

(* Layer: 1x1 conv, P=Q=4, C=8, K=8, all temporal at chosen levels. *)
let layer = Layer.create ~name:"model_t" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 ()

let mapping_with_inner inner_order =
  Mapping.make layer
    [|
      { Mapping.temporal = inner_order; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = [ lp Dims.C 8 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = [ lp Dims.K 8 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
    |]

let test_storage_chain () =
  Alcotest.(check (list int)) "W chain" [ 0; 2; 5 ] (Model.storage_chain arch Dims.W);
  Alcotest.(check (list int)) "IA chain" [ 0; 3; 4; 5 ] (Model.storage_chain arch Dims.IA);
  Alcotest.(check (list int)) "OA chain" [ 0; 1; 4; 5 ] (Model.storage_chain arch Dims.OA)

let test_refills_reuse () =
  (* weight-stationary inner order: P,Q innermost means the W word in the
     register is reused across 16 iterations *)
  let ws = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  (* register-level W refills: innermost W-relevant loop is C (level 2);
     loops outside-and-including it: K8 * C8 = 64 *)
  check_float "W reuse across P,Q" 64. (Model.refills ws Dims.W ~lo:0);
  (* IA has no reuse at the register: innermost relevant loop is Q *)
  check_float "IA refills everywhere" (4. *. 4. *. 8. *. 8.)
    (Model.refills ws Dims.IA ~lo:0);
  (* at the WBuf, refills count only loops at levels >= 2 *)
  check_float "WBuf refills" 64. (Model.refills ws Dims.W ~lo:2);
  (* the only loop above the GB is K, irrelevant to IA: the GB-resident
     input tile is loaded exactly once *)
  check_float "GB refills for IA" 1. (Model.refills ws Dims.IA ~lo:4)

let test_refills_monotone () =
  let m = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  List.iter
    (fun v ->
      let prev = ref infinity in
      for lo = 0 to 5 do
        let r = Model.refills m v ~lo in
        check_bool "refills decrease outward" true (r <= !prev +. 1e-9);
        prev := r
      done)
    Dims.all_tensors

let test_macs_and_compute () =
  let m = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  let e = Model.evaluate arch m in
  check_float "macs = padded volume" (float_of_int (Layer.macs layer)) e.Model.macs;
  check_float "compute = total temporal (no spatial)"
    (float_of_int (Mapping.total_temporal m))
    e.Model.compute_cycles;
  check_bool "latency >= compute" true (e.Model.latency >= e.Model.compute_cycles -. 1e-9)

let test_spatial_reduces_compute () =
  let spatial =
    Mapping.make layer
      [|
        { Mapping.temporal = [ lp Dims.P 4; lp Dims.Q 4 ]; spatial = [ lp Dims.C 8 ] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [ lp Dims.K 8 ] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  let e = Model.evaluate arch spatial in
  check_float "compute shrinks by 64x" (float_of_int (Layer.macs layer) /. 64.)
    e.Model.compute_cycles;
  check_float "macs unchanged" (float_of_int (Layer.macs layer)) e.Model.macs;
  check_bool "utilization counted" true (e.Model.pe_utilization > 0.)

let test_dram_reads_cover_tensors () =
  (* whatever the schedule, DRAM must be read at least once per live word *)
  let m = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  let e = Model.evaluate arch m in
  let dram = Spec.dram_level arch in
  let reads v = e.Model.counts.(dram).(Dims.tensor_index v).Model.reads in
  check_bool "W read fully" true
    (reads Dims.W >= float_of_int (Layer.tensor_words layer Dims.W));
  check_bool "IA read fully" true
    (reads Dims.IA >= float_of_int (Layer.tensor_words layer Dims.IA))

let test_oa_drains () =
  let m = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  let e = Model.evaluate arch m in
  let dram = Spec.dram_level arch in
  let upd = e.Model.counts.(dram).(Dims.tensor_index Dims.OA).Model.updates in
  check_bool "OA written at least once" true
    (upd >= float_of_int (Layer.tensor_words layer Dims.OA))

let test_permutation_changes_traffic () =
  (* C8 at GB level vs K8 at GB level flips which tensor gets outer reuse *)
  let a = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  let swap =
    Mapping.make layer
      [|
        { Mapping.temporal = [ lp Dims.P 4; lp Dims.Q 4 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = [ lp Dims.K 8 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = [ lp Dims.C 8 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  let ea = Model.evaluate arch a and eb = Model.evaluate arch swap in
  check_bool "energy differs with loop structure" true
    (Float.abs (ea.Model.energy_pj -. eb.Model.energy_pj) > 1.)

let test_energy_breakdown_sums () =
  let m = mapping_with_inner [ lp Dims.Q 4; lp Dims.P 4 ] in
  let e = Model.evaluate arch m in
  let sum = List.fold_left (fun a (_, x) -> a +. x) 0. e.Model.energy_breakdown in
  check_float "breakdown sums to total" e.Model.energy_pj sum;
  check_bool "every component nonnegative" true
    (List.for_all (fun (_, x) -> x >= 0.) e.Model.energy_breakdown)

let test_multicast_noc_traffic () =
  (* P spatial at the NoC: weights are multicast (irrelevant), inputs are
     distinct per PE *)
  let m =
    Mapping.make layer
      [|
        { Mapping.temporal = [ lp Dims.C 8; lp Dims.K 8 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = [ lp Dims.Q 4 ]; spatial = [ lp Dims.P 4 ] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  let e = Model.evaluate arch m in
  let tr v = List.assoc v e.Model.traffic in
  Alcotest.(check int) "W multicast width" 4 (tr Dims.W).Model.multicast;
  Alcotest.(check int) "W distinct tiles" 1 (tr Dims.W).Model.distinct;
  Alcotest.(check int) "IA distinct tiles" 4 (tr Dims.IA).Model.distinct;
  Alcotest.(check int) "OA distinct tiles" 4 (tr Dims.OA).Model.distinct

let test_summary_prints () =
  let m = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  let s = Model.summary arch (Model.evaluate arch m) in
  check_bool "summary non-empty" true (String.length s > 100)

let test_edp () =
  let m = mapping_with_inner [ lp Dims.P 4; lp Dims.Q 4 ] in
  let e = Model.evaluate arch m in
  check_float "edp" (e.Model.energy_pj *. e.Model.latency) (Model.edp e)

let layer_gen =
  QCheck.Gen.(
    map
      (fun (r, (p, (c, k))) -> Layer.create ~r ~s:r ~p ~q:p ~c ~k ~n:1 ())
      (pair (int_range 1 3) (pair (int_range 1 16) (pair (int_range 1 64) (int_range 1 64)))))

let prop_model_sane_on_valid_mappings =
  QCheck.Test.make ~name:"model invariants on random valid mappings" ~count:40
    (QCheck.make layer_gen)
    (fun layer ->
      let rng = Prim.Rng.create 5 in
      match Sampler.valid rng arch layer with
      | None -> true
      | Some m ->
        let e = Model.evaluate arch m in
        e.Model.latency >= e.Model.compute_cycles -. 1e-6
        && e.Model.energy_pj > 0.
        && e.Model.macs >= float_of_int (Layer.macs layer) -. 1e-6
        && e.Model.pe_utilization > 0.
        && e.Model.pe_utilization <= 1. +. 1e-9)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "model",
    [
      Alcotest.test_case "storage chains" `Quick test_storage_chain;
      Alcotest.test_case "refills / reuse" `Quick test_refills_reuse;
      Alcotest.test_case "refills monotone" `Quick test_refills_monotone;
      Alcotest.test_case "macs and compute" `Quick test_macs_and_compute;
      Alcotest.test_case "spatial reduces compute" `Quick test_spatial_reduces_compute;
      Alcotest.test_case "dram covers tensors" `Quick test_dram_reads_cover_tensors;
      Alcotest.test_case "oa drains" `Quick test_oa_drains;
      Alcotest.test_case "permutation changes traffic" `Quick test_permutation_changes_traffic;
      Alcotest.test_case "energy breakdown sums" `Quick test_energy_breakdown_sums;
      Alcotest.test_case "multicast traffic split" `Quick test_multicast_noc_traffic;
      Alcotest.test_case "summary prints" `Quick test_summary_prints;
      Alcotest.test_case "edp" `Quick test_edp;
      qc prop_model_sane_on_valid_mappings;
    ] )
