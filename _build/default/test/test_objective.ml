(* Hand-computed checks of the Eq. 5 / 6 / 11 evaluator (Cosa_objective)
   on a small, fully explicit mapping. *)

let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

let arch = Spec.baseline

(* Layer: 1x1 conv, P=4, Q=1, C=8, K=8.
   Mapping:
     L0 (Register) : temporal P4
     L2 (WBuf)     : temporal C8
     L3 (InputBuf) : spatial K2
     L4 (GlobalBuf): temporal K4  (NoC-boundary loops)
     L5 (DRAM)     : (empty)
   All other levels empty. *)
let layer = Layer.create ~name:"obj_t" ~r:1 ~s:1 ~p:4 ~q:1 ~c:8 ~k:8 ~n:1 ()

let lp dim bound = { Mapping.dim; bound }

let mapping =
  Mapping.make layer
    [|
      { Mapping.temporal = [ lp Dims.P 4 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = [ lp Dims.C 8 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [ lp Dims.K 2 ] };
      { Mapping.temporal = [ lp Dims.K 4 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
    |]

let unit_weights = { Cosa.w_util = 1.; w_comp = 1.; w_traf = 1. }

let ln = log

(* Expected Eq. 5 utilisation: sum over buffer levels I < DRAM, tensors v
   stored at I, of log(product of A-relevant dim products below I).

   Dim products below each level:
     below L1/L2: P=4 (from L0)
     below L3:    P=4, C=8
     below L4:    P=4, C=8, K=2
   Stored tensors: L0 {W,IA,OA} (tiles below L0 = 1 -> log 1 = 0),
     L1 {OA}: OA ~ P,Q,K,N -> P4 -> ln 4
     L2 {W}:  W ~ R,S,C,K  -> nothing below L2 except P (irrelevant) -> 0
     L3 {IA}: IA ~ P,Q,C,N -> 4*8 = 32 -> ln 32
     L4 {IA}: 4*8 -> ln 32;  {OA}: P4*K2 -> ln 8 *)
let expected_util = ln 4. +. ln 32. +. ln 32. +. ln 8.

(* Eq. 6 compute: log of total temporal product = 4 * 8 * 4 = 128 *)
let expected_comp = ln 128.

(* Eq. 11 traffic with unit weights.
   D_v = log tile below the NoC level (L3): W: C8 -> ln 8; IA: P4*C8 -> ln 32;
     OA: P4 -> ln 4.
   L_v = relevant spatial at L3 (K2): W: ln 2; IA: 0; OA: ln 2.
   T_v over NoC-boundary temporal loops (L4..L5 flattened: [K4]):
     W: K relevant -> ln 4; IA: K irrelevant -> 0; OA: K relevant -> ln 4.
   DRAM mirror (tensors staged through L4 = GB: IA and OA):
     scale = max 1 (bw_GB / bw_DRAM) = 16/8 = 2.
     D2_v = log tile below L4: IA: 4*8 -> ln 32; OA: 4*2 -> ln 8.
     T2_v over DRAM-level loops (none) = 0.
   traf = (ln 8 + ln 2 + ln 4)            (* W *)
        + (ln 32 + 0 + 0) + 2 * ln 32     (* IA + mirror *)
        + (ln 4 + ln 2 + ln 4) + 2 * ln 8 (* OA + mirror *) *)
let expected_traf =
  (ln 8. +. ln 2. +. ln 4.)
  +. (ln 32. +. (2. *. ln 32.))
  +. (ln 4. +. ln 2. +. ln 4. +. (2. *. ln 8.))

let test_components () =
  let o = Cosa.breakdown_of_mapping ~weights:unit_weights arch mapping in
  check_float "Eq. 5 utilisation" expected_util o.Cosa.util;
  check_float "Eq. 6 compute" expected_comp o.Cosa.comp;
  check_float "Eq. 11 traffic" expected_traf o.Cosa.traf;
  check_float "Eq. 12 composite"
    ((-1. *. expected_util) +. expected_comp +. expected_traf)
    o.Cosa.total

let test_weights_scale_linearly () =
  let w2 = { Cosa.w_util = 2.; w_comp = 3.; w_traf = 0.5 } in
  let o = Cosa.breakdown_of_mapping ~weights:w2 arch mapping in
  (* components are weight-independent; only total changes *)
  check_float "util unweighted" expected_util o.Cosa.util;
  check_float "total reweighted"
    ((-2. *. expected_util) +. (3. *. expected_comp) +. (0.5 *. expected_traf))
    o.Cosa.total

let test_order_dependence () =
  (* swapping the NoC-boundary loop set changes T_v: put C at GB instead of
     K; now IA pays the iteration term and W keeps it *)
  let swapped =
    Mapping.make layer
      [|
        { Mapping.temporal = [ lp Dims.P 4 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = [ lp Dims.K 4 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [ lp Dims.K 2 ] };
        { Mapping.temporal = [ lp Dims.C 8 ]; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  let a = Cosa.breakdown_of_mapping ~weights:unit_weights arch mapping in
  let b = Cosa.breakdown_of_mapping ~weights:unit_weights arch swapped in
  check_bool "different loop structure, different traffic" true
    (Float.abs (a.Cosa.traf -. b.Cosa.traf) > 0.01);
  (* compute is invariant to where temporal loops sit *)
  check_float "compute invariant" a.Cosa.comp b.Cosa.comp

let test_trivial_mapping_objective () =
  (* all-DRAM schedule: zero buffer utilisation, maximal traffic iterations *)
  let trivial = Cosa.trivial_mapping arch layer in
  let o = Cosa.breakdown_of_mapping ~weights:unit_weights arch trivial in
  check_float "no utilisation" 0. o.Cosa.util;
  (* everything temporal: 4 * 8 * 8 = 256 *)
  check_float "all-temporal compute" (ln 256.) o.Cosa.comp;
  let best = Cosa.breakdown_of_mapping ~weights:unit_weights arch mapping in
  check_bool "trivial scores worse" true (o.Cosa.total > best.Cosa.total)

let suite =
  ( "objective",
    [
      Alcotest.test_case "hand-computed components" `Quick test_components;
      Alcotest.test_case "weights scale linearly" `Quick test_weights_scale_linearly;
      Alcotest.test_case "order dependence" `Quick test_order_dependence;
      Alcotest.test_case "trivial mapping" `Quick test_trivial_mapping_objective;
    ] )
