(* Cross-module integration tests: the end-to-end behaviours the paper's
   evaluation depends on. *)

let check_bool = Alcotest.(check bool)

let arch = Spec.baseline

(* The headline ordering: CoSA <= Hybrid <= Random (latency), allowing
   small tolerances since Hybrid is stochastic. *)
let test_scheduler_ordering () =
  List.iter
    (fun name ->
      let layer = Zoo.find name in
      let cosa =
        (Model.evaluate arch (Cosa.schedule ~time_limit:3. arch layer).Cosa.mapping)
          .Model.latency
      in
      let rng = Prim.Rng.create 17 in
      let random =
        match (Random_mapper.search rng arch layer).Baseline.best with
        | Some m -> (Model.evaluate arch m).Model.latency
        | None -> infinity
      in
      let hybrid =
        match (Hybrid_mapper.search ~threads:8 rng arch layer).Baseline.best with
        | Some m -> (Model.evaluate arch m).Model.latency
        | None -> infinity
      in
      check_bool (name ^ ": cosa beats random") true (cosa <= random *. 1.05);
      check_bool (name ^ ": hybrid beats random") true (hybrid <= random *. 1.05);
      check_bool (name ^ ": cosa competitive with hybrid") true (cosa <= hybrid *. 1.6))
    [ "3_14_256_256_1"; "g3_28_8_8_1" ]

(* The analytical model and the NoC simulator must agree on ordering for
   clearly-separated schedules. *)
let test_platforms_agree_on_extremes () =
  let layer = Zoo.find "g3_14_16_16_1" in
  let good = (Cosa.schedule ~time_limit:3. arch layer).Cosa.mapping in
  let bad = Cosa.trivial_mapping arch layer in
  let model_good = (Model.evaluate arch good).Model.latency in
  let model_bad = (Model.evaluate arch bad).Model.latency in
  let sim_good = (Noc_sim.simulate ~max_steps:16 arch good).Noc_sim.latency in
  let sim_bad = (Noc_sim.simulate ~max_steps:16 arch bad).Noc_sim.latency in
  check_bool "model orders them" true (model_good < model_bad);
  check_bool "sim orders them" true (sim_good < sim_bad)

(* Scheduling must work on all three shipped architectures. *)
let test_all_architectures () =
  let layer = Zoo.find "g3_28_8_8_1" in
  List.iter
    (fun (name, a) ->
      let r = Cosa.schedule ~time_limit:3. a layer in
      check_bool (name ^ " valid") true (Mapping.is_valid a r.Cosa.mapping);
      let e = Model.evaluate a r.Cosa.mapping in
      check_bool (name ^ " evaluates") true (e.Model.latency > 0.))
    Spec.variants

(* More parallel hardware should never make CoSA's schedule slower on the
   same layer (it can always fall back to not using the extra PEs). *)
let test_bigger_array_not_slower () =
  let layer = Zoo.find "3_14_256_256_1" in
  let lat a = (Model.evaluate a (Cosa.schedule ~time_limit:3. a layer).Cosa.mapping).Model.latency in
  check_bool "64 PEs <= 16 PEs latency" true (lat Spec.pe64 <= lat Spec.baseline *. 1.1)

(* NoC-level energy should track the flit-hop count of the simulator in
   direction (more hops, more energy) across multicast on/off. *)
let test_energy_hops_direction () =
  let layer = Zoo.find "g3_28_8_8_1" in
  let m = (Cosa.schedule ~time_limit:3. arch layer).Cosa.mapping in
  let no_mc = { arch with Spec.noc = { arch.Spec.noc with Spec.multicast = false } } in
  let e_mc = (Model.evaluate arch m).Model.noc_energy_pj in
  let e_no = (Model.evaluate no_mc m).Model.noc_energy_pj in
  let h_mc = (Noc_sim.simulate ~max_steps:16 arch m).Noc_sim.flit_hops in
  let h_no = (Noc_sim.simulate ~max_steps:16 no_mc m).Noc_sim.flit_hops in
  check_bool "model energy rises without multicast" true (e_no >= e_mc);
  check_bool "sim hops rise without multicast" true (h_no >= h_mc)

(* The full-network example path: schedule a whole suite quickly and keep
   every mapping valid. *)
let test_whole_suite_schedulable () =
  List.iter
    (fun (layer : Layer.t) ->
      let r = Cosa.schedule ~strategy:Cosa.Two_stage ~time_limit:1.5 arch layer in
      check_bool (layer.Layer.name ^ " valid") true (Mapping.is_valid arch r.Cosa.mapping))
    Zoo.deepbench_face

let suite =
  ( "integration",
    [
      Alcotest.test_case "scheduler ordering" `Slow test_scheduler_ordering;
      Alcotest.test_case "platforms agree" `Slow test_platforms_agree_on_extremes;
      Alcotest.test_case "all architectures" `Slow test_all_architectures;
      Alcotest.test_case "bigger array" `Slow test_bigger_array_not_slower;
      Alcotest.test_case "energy vs hops" `Slow test_energy_hops_direction;
      Alcotest.test_case "whole suite" `Slow test_whole_suite_schedulable;
    ] )
