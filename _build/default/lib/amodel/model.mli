(** Timeloop-class analytical performance and energy model.

    Given an architecture and a concrete mapping, computes per-level
    per-tensor access counts with permutation-aware reuse analysis,
    compute cycles, the double-buffered latency estimate (max of compute
    and per-boundary transfer cycles, as Timeloop assumes perfect latency
    hiding), and energy (access counts x per-level energy table + MAC +
    NoC hop energy). *)

type tensor_counts = {
  tile : float;  (** resident tile, words *)
  fills : float;  (** words written into this level from its parent *)
  reads : float;  (** words read from this level by its child / compute *)
  updates : float;  (** partial-sum words written back into this level *)
}

type tensor_traffic = {
  tile_words : float;  (** per-PE tile crossing the NoC per transfer *)
  steps : float;  (** number of transfer rounds over the execution *)
  distinct : int;  (** distinct tiles per round (unicast groups) *)
  multicast : int;  (** destinations sharing each distinct tile *)
}

type t = {
  counts : tensor_counts array array;  (** [level][tensor] *)
  compute_cycles : float;
  transfer_cycles : float array;  (** per level: words through it / bandwidth *)
  latency : float;  (** max(compute, transfers): cycles *)
  energy_pj : float;
  energy_breakdown : (string * float) list;  (** per level + "MAC" + "NoC" *)
  noc_energy_pj : float;
  macs : float;
  pe_utilization : float;  (** used spatial / available spatial, in [0,1] *)
  traffic : (Dims.tensor * tensor_traffic) list;  (** at the NoC boundary *)
}

val evaluate : Spec.t -> Mapping.t -> t

val storage_chain : Spec.t -> Dims.tensor -> int list
(** Ascending level indices where a tensor is buffered (the B matrix). *)

val refills : Mapping.t -> Dims.tensor -> lo:int -> float
(** Number of times the tensor tile held at level [lo] is replaced over the
    whole execution (the permutation-aware reuse analysis; exposed for the
    NoC simulator's transaction generator and for tests). *)

val edp : t -> float
(** Energy-delay product, a common composite metric. *)

val summary : Spec.t -> t -> string
(** Multi-line human-readable report. *)
