(** Section II motivation figures. *)

val fig1 : ?samples:int -> unit -> string
(** Latency histogram of valid schedules for ResNet-50 layer
    3_14_256_256_1 plus the uniform-draw validity rate. Default 4000 valid
    samples (the paper uses 40K; pass [samples] to match). *)

val fig3 : unit -> string
(** Loop-permutation sweep (six orders of P, C, K at the global buffer) on
    a weight-heavy layer, evaluated on the NoC simulator and the energy
    model. *)

val fig4 : unit -> string
(** Spatial-mapping sweep: eight ways to split the 16 PEs across P, C, K,
    each solved with the spatial assignment pinned in the MIP. *)
