(* Timeloop-model experiments: Table VI and Figs. 6-9. *)

let schedulers = Common.[ Cosa_s; Random_s; Hybrid_s ]

(* Table VI: time-to-solution. *)
let tab6 () =
  let arch = Spec.baseline in
  let layers = Common.suite_layers () in
  let buf = Buffer.create 1024 in
  Common.section buf "Table VI: time-to-solution (averages per layer, all four suites)";
  let tab =
    Prim.Texttab.create
      [ "scheduler"; "avg runtime/layer (s)"; "avg samples/layer"; "avg evals/layer" ]
  in
  List.iter
    (fun sched ->
      let runs = List.map (fun (_, l) -> Common.schedule arch l sched) layers in
      let n = float_of_int (List.length runs) in
      let avg f = List.fold_left (fun a r -> a +. f r) 0. runs /. n in
      Prim.Texttab.add_row tab
        [ Common.scheduler_name sched;
          Printf.sprintf "%.2f" (avg (fun r -> r.Common.runtime));
          Printf.sprintf "%.0f" (avg (fun r -> float_of_int r.Common.samples));
          Printf.sprintf "%.0f" (avg (fun r -> float_of_int r.Common.evaluations)) ])
    schedulers;
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.add_string buf
    "note: the paper's Timeloop-Hybrid spends ~380s/layer because each of its\n\
     16K+ evaluations runs the real Timeloop model; our analytical model\n\
     evaluates in microseconds, so Hybrid's wall-clock here is small while\n\
     its sample/evaluation counts match the paper's regime. CoSA remains\n\
     one-shot: a single schedule, no search.\n";
  Buffer.contents buf

(* Fig. 6 engine, reused for Fig. 9's architecture variants and Fig. 7's
   energy target. *)
let speedup_table ?(metric = `Latency) arch =
  let measure m =
    match metric with
    | `Latency -> Common.latency arch m
    | `Energy -> Common.noc_energy arch m
  in
  let per_layer =
    List.map
      (fun (suite, layer) ->
        let values =
          List.map
            (fun s -> (s, measure (Common.schedule ~metric arch layer s).Common.mapping))
            schedulers
        in
        (suite, layer, values))
      (Common.suite_layers ())
  in
  let buf = Buffer.create 8192 in
  let tab =
    Prim.Texttab.create [ "suite"; "layer"; "CoSA/Random"; "Hybrid/Random"; "CoSA/Hybrid" ]
  in
  let ratios = ref [] in
  List.iter
    (fun (suite, layer, values) ->
      let v s = List.assoc s values in
      let cosa = v Common.Cosa_s and rand = v Common.Random_s and hyb = v Common.Hybrid_s in
      ratios := (suite, (rand /. cosa, rand /. hyb, hyb /. cosa)) :: !ratios;
      Prim.Texttab.add_row tab
        [ suite; layer.Layer.name;
          Prim.Texttab.cell_fx (rand /. cosa);
          Prim.Texttab.cell_fx (rand /. hyb);
          Prim.Texttab.cell_fx (hyb /. cosa) ])
    per_layer;
  Buffer.add_string buf (Prim.Texttab.render tab);
  let all = List.rev !ratios in
  let geo f rows = Prim.Stats.geomean (List.map f rows) in
  let by_suite =
    List.sort_uniq compare (List.map fst all)
  in
  let gtab = Prim.Texttab.create [ "scope"; "CoSA vs Random"; "Hybrid vs Random"; "CoSA vs Hybrid" ] in
  List.iter
    (fun suite ->
      let rows = List.filter (fun (s, _) -> s = suite) all in
      Prim.Texttab.add_row gtab
        [ suite;
          Prim.Texttab.cell_fx (geo (fun (_, (a, _, _)) -> a) rows);
          Prim.Texttab.cell_fx (geo (fun (_, (_, b, _)) -> b) rows);
          Prim.Texttab.cell_fx (geo (fun (_, (_, _, c)) -> c) rows) ])
    by_suite;
  Prim.Texttab.add_row gtab
    [ "ALL";
      Prim.Texttab.cell_fx (geo (fun (_, (a, _, _)) -> a) all);
      Prim.Texttab.cell_fx (geo (fun (_, (_, b, _)) -> b) all);
      Prim.Texttab.cell_fx (geo (fun (_, (_, _, c)) -> c) all) ];
  Buffer.add_string buf "\nGeomean speedups:\n";
  Buffer.add_string buf (Prim.Texttab.render gtab);
  Buffer.contents buf

let fig6 () =
  let buf = Buffer.create 8192 in
  Common.section buf
    "Fig. 6: Timeloop-model speedup vs Random search (baseline 4x4 arch)";
  Buffer.add_string buf (speedup_table Spec.baseline);
  Buffer.contents buf

let fig7 () =
  let buf = Buffer.create 8192 in
  Common.section buf
    "Fig. 7: network energy vs Random search (baseline 4x4 arch; lower metric wins, shown as ratio)";
  Buffer.add_string buf (speedup_table ~metric:`Energy Spec.baseline);
  Buffer.contents buf

(* Fig. 8: objective-function breakdown on ResNet-50 layer 3_7_512_512_1. *)
let fig8 () =
  let arch = Spec.baseline in
  let layer = Zoo.find "3_7_512_512_1" in
  let weights = Cosa.calibrate arch in
  let buf = Buffer.create 1024 in
  Common.section buf "Fig. 8: objective breakdown on ResNet-50 layer 3_7_512_512_1";
  let tab =
    Prim.Texttab.create
      [ "scheduler"; "-wU*Util"; "wC*Comp"; "wT*Traf"; "total (Eq.12)"; "model latency" ]
  in
  List.iter
    (fun sched ->
      let m = (Common.schedule arch layer sched).Common.mapping in
      let o = Cosa.breakdown_of_mapping ~weights arch m in
      Prim.Texttab.add_row tab
        [ Common.scheduler_name sched;
          Printf.sprintf "%.1f" (-.weights.Cosa.w_util *. o.Cosa.util);
          Printf.sprintf "%.1f" (weights.Cosa.w_comp *. o.Cosa.comp);
          Printf.sprintf "%.1f" (weights.Cosa.w_traf *. o.Cosa.traf);
          Printf.sprintf "%.1f" o.Cosa.total;
          Prim.Texttab.cell_f (Common.latency arch m) ])
    schedulers;
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.contents buf

let fig9a () =
  let buf = Buffer.create 8192 in
  Common.section buf "Fig. 9a: speedup vs Random on the 8x8-PE architecture";
  Buffer.add_string buf (speedup_table Spec.pe64);
  Buffer.contents buf

let fig9b () =
  let buf = Buffer.create 8192 in
  Common.section buf "Fig. 9b: speedup vs Random on the large-SRAM architecture";
  Buffer.add_string buf (speedup_table Spec.big_sram);
  Buffer.contents buf
