lib/exp/exp_nocsim.ml: Buffer Common Layer List Noc_sim Prim Spec
