lib/exp/registry.ml: Exp_ablation Exp_gpu Exp_motivation Exp_nocsim Exp_timeloop List
