lib/exp/exp_gpu.mli:
