lib/exp/exp_motivation.ml: Array Buffer Common Cosa_decode Cosa_formulation Dims Float Layer List Mapping Mapspace Milp Model Noc_sim Prim Printf Sampler Spec Zoo
