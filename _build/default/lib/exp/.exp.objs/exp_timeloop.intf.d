lib/exp/exp_timeloop.mli:
