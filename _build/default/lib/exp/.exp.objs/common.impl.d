lib/exp/common.ml: Baseline Buffer Cosa Hashtbl Hybrid_mapper Layer List Mapping Model Prim Printf Random_mapper Spec String Zoo
