lib/exp/registry.mli:
