lib/exp/common.mli: Buffer Layer Mapping Spec
