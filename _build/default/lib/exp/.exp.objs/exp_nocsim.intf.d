lib/exp/exp_nocsim.mli:
