lib/exp/exp_gpu.ml: Buffer Common Gpu Layer List Prim Printf Zoo
