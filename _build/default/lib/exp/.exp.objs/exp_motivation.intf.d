lib/exp/exp_motivation.mli:
