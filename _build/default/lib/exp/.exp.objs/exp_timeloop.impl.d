lib/exp/exp_timeloop.ml: Buffer Common Cosa Layer List Prim Printf Spec Zoo
