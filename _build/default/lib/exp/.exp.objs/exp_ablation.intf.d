lib/exp/exp_ablation.mli: Layer
