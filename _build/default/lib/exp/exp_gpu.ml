(* Fig. 11: GPU scheduling case study (Section V-D). *)

let fig11 () =
  let spec = Gpu.k80 in
  let rng = Prim.Rng.create 0xF1611 in
  let buf = Buffer.create 4096 in
  Common.section buf "Fig. 11: GPU (K80 model) — CoSA-GPU vs simulated TVM tuner, ResNet-50";
  let tab =
    Prim.Texttab.create
      [ "layer"; "CoSA lat"; "TVM lat"; "speedup"; "CoSA tts (s)"; "TVM tts (s)" ]
  in
  let speedups = ref [] and cosa_t = ref [] and tvm_t = ref [] in
  List.iter
    (fun (layer : Layer.t) ->
      let g = Gpu.gemm_of_layer layer in
      let c = Gpu.cosa_schedule spec g in
      let t = Gpu.tvm_search rng spec g in
      let s = t.Gpu.latency /. c.Gpu.latency in
      speedups := s :: !speedups;
      cosa_t := c.Gpu.solve_time :: !cosa_t;
      tvm_t := t.Gpu.solve_time :: !tvm_t;
      Prim.Texttab.add_row tab
        [ layer.Layer.name;
          Prim.Texttab.cell_f c.Gpu.latency;
          Prim.Texttab.cell_f t.Gpu.latency;
          Prim.Texttab.cell_fx s;
          Printf.sprintf "%.4f" c.Gpu.solve_time;
          Printf.sprintf "%.4f" t.Gpu.solve_time ])
    Zoo.resnet50;
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.add_string buf
    (Printf.sprintf "\ngeomean speedup CoSA vs TVM: %.2fx (paper: 1.10x)\n"
       (Prim.Stats.geomean !speedups));
  Buffer.add_string buf
    "note: both schedulers are evaluated on the same analytical K80 model\n\
     (no GPU hardware in this environment; see DESIGN.md substitutions).\n\
     The paper's 2500x time-to-solution gap comes from TVM's on-device\n\
     measurements (~1s/trial), which the model evaluation here replaces.\n";
  Buffer.contents buf
