(** DESIGN.md §4 ablations and the Section III-E extension, each over a
    representative six-layer slice of the suites. *)

val subset : unit -> Layer.t list
(** The shared ablation slice: heavy 3x3, pointwise, grouped, and GEMM
    layers. *)

val strategy : unit -> string
(** Joint MIP vs two-stage decomposition vs auto arbitration. *)

val weights : unit -> string
(** Each Eq.-12 weight zeroed in turn vs the calibrated setting. *)

val node_budget : unit -> string
(** Schedule quality as the branch-and-bound node limit grows (anytime
    behaviour of the joint MIP). *)

val grouping : unit -> string
(** Grouped-count encoding vs the paper's per-factor binaries: MIP size
    and solve time. *)

val multicast : unit -> string
(** Cycle-level cost of disabling hardware multicast. *)

val tuner : unit -> string
(** Section III-E: objective-weight hyperparameter search around the
    one-shot solver. *)

val searchers : unit -> string
(** Five-scheduler comparison: CoSA vs Random, Timeloop-Hybrid, simulated
    annealing, and the GAMMA-style genetic mapper. *)

val network : unit -> string
(** End-to-end ResNet-50 / ResNeXt-50 latency and energy, weighting each
    distinct layer shape by its repetition count. *)
