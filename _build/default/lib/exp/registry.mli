(** Registry mapping experiment ids (DESIGN.md §3) to runnable generators.
    Each run returns the full plain-text report that `bench/main.exe` and
    `bin/cosa_cli.exe exp <id>` print. *)

type t = {
  id : string;
  title : string;
  run : unit -> string;
}

val all : t list
(** Paper artefacts first (fig1 .. fig11, tab6), then ablations. *)

val find : string -> t
(** Raises [Not_found]. *)

val ids : unit -> string list
