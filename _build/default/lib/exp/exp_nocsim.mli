(** Fig. 10: the cycle-level NoC-simulator comparison. *)

val fig10 : unit -> string
(** Per-layer simulated-latency speedups vs Random search on the baseline
    architecture; layers whose simulation exceeds the cycle budget are
    reported as "-" and excluded from the geomeans. *)
