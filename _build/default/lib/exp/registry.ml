type t = { id : string; title : string; run : unit -> string }

let all =
  [
    { id = "fig1"; title = "Latency histogram of valid schedules";
      run = (fun () -> Exp_motivation.fig1 ()) };
    { id = "fig3"; title = "Loop permutation sweep"; run = Exp_motivation.fig3 };
    { id = "fig4"; title = "Spatial mapping sweep"; run = Exp_motivation.fig4 };
    { id = "tab6"; title = "Time-to-solution comparison"; run = Exp_timeloop.tab6 };
    { id = "fig6"; title = "Timeloop-model speedups, baseline arch"; run = Exp_timeloop.fig6 };
    { id = "fig7"; title = "Network energy comparison"; run = Exp_timeloop.fig7 };
    { id = "fig8"; title = "Objective breakdown"; run = Exp_timeloop.fig8 };
    { id = "fig9a"; title = "Speedups on 8x8-PE arch"; run = Exp_timeloop.fig9a };
    { id = "fig9b"; title = "Speedups on large-SRAM arch"; run = Exp_timeloop.fig9b };
    { id = "fig10"; title = "NoC-simulator speedups"; run = Exp_nocsim.fig10 };
    { id = "fig11"; title = "GPU case study vs TVM"; run = Exp_gpu.fig11 };
    { id = "abl_strategy"; title = "Ablation: joint vs two-stage";
      run = Exp_ablation.strategy };
    { id = "abl_weights"; title = "Ablation: objective weights"; run = Exp_ablation.weights };
    { id = "abl_nodes"; title = "Ablation: node budget"; run = Exp_ablation.node_budget };
    { id = "abl_grouping"; title = "Ablation: factor grouping"; run = Exp_ablation.grouping };
    { id = "abl_multicast"; title = "Ablation: NoC multicast"; run = Exp_ablation.multicast };
    { id = "ext_tuner"; title = "Extension: objective-weight tuning (Sec. III-E)";
      run = Exp_ablation.tuner };
    { id = "ext_searchers"; title = "Extension: five-scheduler comparison";
      run = Exp_ablation.searchers };
    { id = "ext_network"; title = "Extension: end-to-end network totals";
      run = Exp_ablation.network };
  ]

let find id = List.find (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
