(** Analytical-model (Timeloop-platform) experiments: Table VI, Figs 6-9. *)

val tab6 : unit -> string
(** Time-to-solution: average runtime, samples, and cost-model evaluations
    per layer for CoSA / Random / Timeloop-Hybrid over all four suites. *)

val fig6 : unit -> string
(** Per-layer latency speedups vs Random search on the baseline 4x4
    architecture, with per-suite and overall geomeans. *)

val fig7 : unit -> string
(** Same comparison with network energy as the target metric (the search
    baselines re-optimise for energy). *)

val fig8 : unit -> string
(** Eq.-12 objective breakdown (weighted Util / Comp / Traf) of each
    scheduler's mapping for ResNet-50 layer 3_7_512_512_1. *)

val fig9a : unit -> string
(** Fig-6-style table on the 8x8-PE architecture variant. *)

val fig9b : unit -> string
(** Fig-6-style table on the large-SRAM architecture variant. *)
