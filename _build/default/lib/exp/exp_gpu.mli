(** Fig. 11: the GPU case study (Section V-D). *)

val fig11 : unit -> string
(** CoSA-GPU (one-shot MIP) vs a simulated 50-trial TVM tuner on every
    ResNet-50 layer, both evaluated on the analytical K80 model; reports
    per-layer latencies, speedups, and time-to-solution. *)
