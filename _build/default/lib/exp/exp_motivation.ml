(* Motivation figures: the scheduling-space statistics of Section II. *)

let fig1_layer = Zoo.find "3_14_256_256_1"

(* Fig. 1: latency histogram of valid schedules for one ResNet-50 layer.
   The paper samples 40K valid schedules; the default here is smaller so
   the full harness stays fast — pass [samples] to match the paper. *)
let fig1 ?(samples = 4000) () =
  let arch = Spec.baseline in
  let rng = Prim.Rng.create 0xF161 in
  let latencies = ref [] in
  let raw_draws = ref 0 and raw_valid = ref 0 in
  (* validity-rate measurement on uniform draws over the full X space (the
     paper's Table VI observes ~5 valid in 20K draws) *)
  for _ = 1 to 20_000 do
    incr raw_draws;
    let m = Sampler.raw rng arch fig1_layer in
    if Mapping.is_valid arch m then incr raw_valid
  done;
  let found = ref 0 in
  while !found < samples do
    match Sampler.valid rng arch fig1_layer with
    | Some m ->
      incr found;
      latencies := (Model.evaluate arch m).Model.latency :: !latencies
    | None -> ()
  done;
  let l = !latencies in
  let buf = Buffer.create 4096 in
  Common.section buf "Fig. 1: latency distribution of valid schedules (3_14_256_256_1)";
  Buffer.add_string buf (Mapspace.report arch fig1_layer ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf
       "valid schedules sampled: %d (uniform draws: %d valid in %d = %.3f%%)\n" samples
       !raw_valid !raw_draws
       (100. *. float_of_int !raw_valid /. float_of_int !raw_draws));
  Buffer.add_string buf
    (Printf.sprintf "best %.3g / median %.3g / worst %.3g cycles — worst/best = %.1fx\n\n"
       (Prim.Stats.minimum l) (Prim.Stats.median l) (Prim.Stats.maximum l)
       (Prim.Stats.maximum l /. Prim.Stats.minimum l));
  let log_l = List.map log10 l in
  Buffer.add_string buf "log10(latency) histogram:\n";
  Buffer.add_string buf
    (Prim.Stats.render_histogram (Prim.Stats.histogram ~bins:18 log_l));
  Buffer.contents buf

(* Fig. 3: loop-permutation sweep at the global-buffer level for a
   weight-heavy layer. All six orders of {P, C, K} share one fixed tiling
   that leaves one loop of each of P, C, K at the global-buffer level, as
   in the paper's setup. *)
let fig3_base layer =
  let lp dim bound = { Mapping.dim; bound } in
  Mapping.make layer
    [|
      { Mapping.temporal = [ lp Dims.P 4; lp Dims.Q 8 ]; spatial = [] };
      { Mapping.temporal = []; spatial = [] };
      { Mapping.temporal = [ lp Dims.R 3; lp Dims.S 3; lp Dims.C 4 ]; spatial = [] };
      { Mapping.temporal = [ lp Dims.C 2 ]; spatial = [ lp Dims.K 16 ] };
      { Mapping.temporal = [ lp Dims.P 2; lp Dims.C 4; lp Dims.K 8 ]; spatial = [] };
      { Mapping.temporal = [ lp Dims.K 8 ]; spatial = [] };
    |]

let fig3 () =
  let arch = Spec.baseline in
  let layer = Layer.create ~name:"fig3" ~r:3 ~s:3 ~p:8 ~q:8 ~c:32 ~k:1024 ~n:1 () in
  let base = fig3_base layer in
  assert (Mapping.is_valid arch base);
  let gb = Spec.level_count arch - 2 in
  let orders =
    [ ("CKP", Dims.[ C; K; P ]); ("CPK", Dims.[ C; P; K ]); ("KCP", Dims.[ K; C; P ]);
      ("KPC", Dims.[ K; P; C ]); ("PCK", Dims.[ P; C; K ]); ("PKC", Dims.[ P; K; C ]) ]
  in
  let with_order order =
    let levels = Array.copy base.Mapping.levels in
    levels.(gb) <-
      { levels.(gb) with
        Mapping.temporal =
          List.filter_map
            (fun d ->
              List.find_opt (fun (l : Mapping.loop) -> l.Mapping.dim = d)
                levels.(gb).Mapping.temporal)
            order };
    Mapping.make layer levels
  in
  let buf = Buffer.create 1024 in
  Common.section buf "Fig. 3: impact of loop permutation (R=S=3, P=Q=8, C=32, K=1024)";
  let tab =
    Prim.Texttab.create
      [ "order"; "NoC-sim latency"; "model energy (uJ)"; "sim speedup vs worst" ]
  in
  let rows =
    List.map
      (fun (name, order) ->
        let m = with_order order in
        let sim = (Noc_sim.simulate ~max_steps:32 arch m).Noc_sim.latency in
        let e = (Model.evaluate arch m).Model.energy_pj /. 1e6 in
        (name, sim, e))
      orders
  in
  let worst = List.fold_left (fun a (_, v, _) -> Float.max a v) 0. rows in
  List.iter
    (fun (name, v, e) ->
      Prim.Texttab.add_row tab
        [ name; Prim.Texttab.cell_f v; Printf.sprintf "%.2f" e;
          Prim.Texttab.cell_fx (worst /. v) ])
    rows;
  Buffer.add_string buf (Prim.Texttab.render tab);
  let best = List.fold_left (fun a (_, v, _) -> Float.min a v) infinity rows in
  Buffer.add_string buf
    (Printf.sprintf
       "best order is %.2fx faster than the worst (paper: 1.7x, P-outermost wins)\n"
       (worst /. best));
  Buffer.contents buf

(* Fig. 4: spatial-mapping sweep on a 1x1 layer; each point pins a
   different split of the 16 PEs across P, C, K. *)
let fig4 () =
  let arch = Spec.baseline in
  let layer = Layer.create ~name:"fig4" ~r:1 ~s:1 ~p:16 ~q:16 ~c:256 ~k:1024 ~n:1 () in
  let splits =
    [ ("s:K16", [ (Dims.K, 16) ]);
      ("s:C16", [ (Dims.C, 16) ]);
      ("s:P16", [ (Dims.P, 16) ]);
      ("s:P4C4", [ (Dims.P, 4); (Dims.C, 4) ]);
      ("s:C4K4", [ (Dims.C, 4); (Dims.K, 4) ]);
      ("s:P4K4", [ (Dims.P, 4); (Dims.K, 4) ]);
      ("s:P2C4K2", [ (Dims.P, 2); (Dims.C, 4); (Dims.K, 2) ]);
      ("s:P2C2K4", [ (Dims.P, 2); (Dims.C, 2); (Dims.K, 4) ]) ]
  in
  let buf = Buffer.create 1024 in
  Common.section buf "Fig. 4: impact of spatial mapping (R=S=1, P=Q=16, C=256, K=1024)";
  let tab =
    Prim.Texttab.create [ "spatial"; "model latency"; "NoC-sim latency"; "sim vs worst" ]
  in
  let rows =
    List.filter_map
      (fun (name, pins) ->
        let f = Cosa_formulation.build ~joint_permutation:false ~noc_spatial:pins arch layer in
        let res =
          Milp.Bb.solve ~node_limit:50_000 ~time_limit:4. ~priority:f.Cosa_formulation.priority
            f.Cosa_formulation.lp
        in
        match res.Milp.Bb.status with
        | Milp.Bb.Optimal | Milp.Bb.Feasible ->
          let m = Cosa_decode.decode f res in
          let m = Cosa_decode.best_noc_order arch m in
          let m, _ = Cosa_decode.repair arch m in
          if Mapping.is_valid arch m then
            let sim = (Noc_sim.simulate ~max_steps:32 arch m).Noc_sim.latency in
            Some (name, Common.latency arch m, sim)
          else None
        | _ -> None)
      splits
  in
  let worst = List.fold_left (fun a (_, _, v) -> Float.max a v) 0. rows in
  List.iter
    (fun (name, lat, sim) ->
      Prim.Texttab.add_row tab
        [ name; Prim.Texttab.cell_f lat; Prim.Texttab.cell_f sim;
          Prim.Texttab.cell_fx (worst /. sim) ])
    rows;
  Buffer.add_string buf (Prim.Texttab.render tab);
  let best = List.fold_left (fun a (_, _, v) -> Float.min a v) infinity rows in
  Buffer.add_string buf
    (Printf.sprintf
       "best spatial mapping is %.2fx faster than the worst (paper: 4.3x on its NoC sim)\n"
       (worst /. best));
  Buffer.contents buf
