let conv ?name ?stride ~r ~p ~c ~k () =
  Layer.create ?name ?stride ~r ~s:r ~p ~q:p ~c ~k ~n:1 ()

let resnet50 =
  [
    conv ~r:7 ~p:112 ~c:3 ~k:64 ~stride:2 ();
    conv ~r:1 ~p:56 ~c:64 ~k:64 ();
    conv ~r:3 ~p:56 ~c:64 ~k:64 ();
    conv ~r:1 ~p:56 ~c:64 ~k:256 ();
    conv ~r:1 ~p:56 ~c:256 ~k:64 ();
    conv ~r:1 ~p:56 ~c:256 ~k:128 ();
    conv ~r:3 ~p:28 ~c:128 ~k:128 ~stride:2 ();
    conv ~r:1 ~p:28 ~c:128 ~k:512 ();
    conv ~r:1 ~p:28 ~c:256 ~k:512 ~stride:2 ();
    conv ~r:1 ~p:28 ~c:512 ~k:128 ();
    conv ~r:3 ~p:28 ~c:128 ~k:128 ();
    conv ~r:1 ~p:28 ~c:512 ~k:256 ();
    conv ~r:3 ~p:14 ~c:256 ~k:256 ~stride:2 ();
    conv ~r:1 ~p:14 ~c:256 ~k:1024 ();
    conv ~r:1 ~p:14 ~c:512 ~k:1024 ~stride:2 ();
    conv ~r:1 ~p:14 ~c:1024 ~k:256 ();
    conv ~r:3 ~p:14 ~c:256 ~k:256 ();
    conv ~r:1 ~p:14 ~c:1024 ~k:512 ();
    conv ~r:3 ~p:7 ~c:512 ~k:512 ~stride:2 ();
    conv ~r:1 ~p:7 ~c:512 ~k:2048 ();
    conv ~r:1 ~p:7 ~c:1024 ~k:2048 ~stride:2 ();
    conv ~r:1 ~p:7 ~c:2048 ~k:512 ();
    conv ~r:3 ~p:7 ~c:512 ~k:512 ();
    Layer.gemm ~name:"fc1000" ~m:1000 ~n:1 ~k:2048 ();
  ]

(* ResNeXt-50 (32x4d): grouped 3x3 convs are scheduled per group (the
   per-group channel count is what the accelerator sees). *)
let resnext50 =
  [
    conv ~name:"x7_112_3_64_2" ~r:7 ~p:112 ~c:3 ~k:64 ~stride:2 ();
    conv ~r:1 ~p:56 ~c:64 ~k:128 ();
    conv ~name:"g3_56_4_4_1" ~r:3 ~p:56 ~c:4 ~k:4 ();
    conv ~r:1 ~p:56 ~c:128 ~k:256 ();
    conv ~name:"x1_56_256_128_1" ~r:1 ~p:56 ~c:256 ~k:128 ();
    conv ~r:1 ~p:56 ~c:256 ~k:256 ();
    conv ~name:"g3_28_8_8_2" ~r:3 ~p:28 ~c:8 ~k:8 ~stride:2 ();
    conv ~r:1 ~p:28 ~c:256 ~k:512 ();
    conv ~name:"x1_28_512_256_1" ~r:1 ~p:28 ~c:512 ~k:256 ();
    conv ~name:"g3_28_8_8_1" ~r:3 ~p:28 ~c:8 ~k:8 ();
    conv ~r:1 ~p:28 ~c:512 ~k:512 ();
    conv ~name:"g3_14_16_16_2" ~r:3 ~p:14 ~c:16 ~k:16 ~stride:2 ();
    conv ~r:1 ~p:14 ~c:512 ~k:1024 ();
    conv ~name:"x1_14_1024_512_1" ~r:1 ~p:14 ~c:1024 ~k:512 ();
    conv ~name:"g3_14_16_16_1" ~r:3 ~p:14 ~c:16 ~k:16 ();
    conv ~r:1 ~p:14 ~c:1024 ~k:1024 ();
    conv ~name:"g3_7_32_32_2" ~r:3 ~p:7 ~c:32 ~k:32 ~stride:2 ();
    conv ~r:1 ~p:7 ~c:1024 ~k:2048 ();
    conv ~r:1 ~p:7 ~c:2048 ~k:1024 ();
    conv ~name:"g3_7_32_32_1" ~r:3 ~p:7 ~c:32 ~k:32 ();
    Layer.gemm ~name:"fc1000x" ~m:1000 ~n:1 ~k:2048 ();
  ]

(* DeepBench OCR inference GEMMs (M, N, K) from the DeepBench suite. *)
let deepbench_ocr =
  [
    Layer.gemm ~name:"ocr_5124_700_2048" ~m:5124 ~n:700 ~k:2048 ();
    Layer.gemm ~name:"ocr_35_700_2048" ~m:35 ~n:700 ~k:2048 ();
    Layer.gemm ~name:"ocr_5124_700_2560" ~m:5124 ~n:700 ~k:2560 ();
    Layer.gemm ~name:"ocr_35_700_2560" ~m:35 ~n:700 ~k:2560 ();
    Layer.gemm ~name:"ocr_3072_1500_1024" ~m:3072 ~n:1500 ~k:1024 ();
    Layer.gemm ~name:"ocr_512_1500_2816" ~m:512 ~n:1500 ~k:2816 ();
  ]

(* Face-recognition-style conv pyramid (DeepBench-scale stand-ins). *)
let deepbench_face =
  [
    conv ~name:"face_3_54_3_64_2" ~r:3 ~p:54 ~c:3 ~k:64 ~stride:2 ();
    conv ~name:"face_3_27_64_128_2" ~r:3 ~p:27 ~c:64 ~k:128 ~stride:2 ();
    conv ~name:"face_3_14_128_256_2" ~r:3 ~p:14 ~c:128 ~k:256 ~stride:2 ();
    conv ~name:"face_3_7_256_512_2" ~r:3 ~p:7 ~c:256 ~k:512 ~stride:2 ();
    conv ~name:"face_1_7_512_512_1" ~r:1 ~p:7 ~c:512 ~k:512 ();
    Layer.gemm ~name:"face_fc_512_512" ~m:512 ~n:1 ~k:512 ();
  ]

let suites =
  [
    ("ResNet-50", resnet50);
    ("ResNeXt-50", resnext50);
    ("DeepBench-OCR", deepbench_ocr);
    ("DeepBench-Face", deepbench_face);
  ]

let find name =
  let all = List.concat_map snd suites in
  List.find (fun (l : Layer.t) -> l.Layer.name = name) all
