(** The seven loop dimensions of a DNN operator and the three data tensors.

    [R]/[S]: filter width/height; [P]/[Q]: output width/height; [C]: input
    channels; [K]: output channels; [N]: batch. Tensors: weights [W], input
    activations [IA], output activations [OA]. *)

type dim = R | S | P | Q | C | K | N
type tensor = W | IA | OA

val all_dims : dim list
val all_tensors : tensor list

val dim_index : dim -> int
(** Stable index in [0..6], ordered R, S, P, Q, C, K, N. *)

val dim_of_index : int -> dim

val tensor_index : tensor -> int
(** Stable index in [0..2], ordered W, IA, OA. *)

val tensor_of_index : int -> tensor

val dim_name : dim -> string
val tensor_name : tensor -> string

val relevant : dim -> tensor -> bool
(** The paper's constant matrix [A] (Table IV): which loop dimensions index
    which tensor. [W]: R, S, C, K; [IA]: P, Q, C, N; [OA]: P, Q, K, N.
    Note IA's dependence on R and S via the sliding window is deliberately
    dropped here, as in the paper's formulation; the analytical model uses
    {!model_relevant} and an exact halo computation instead. *)

val model_relevant : dim -> tensor -> bool
(** Relevance used by the Timeloop-class analytical model, which does track
    the sliding window: identical to {!relevant} except [IA] also depends on
    R and S. *)
