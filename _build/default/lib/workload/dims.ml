type dim = R | S | P | Q | C | K | N
type tensor = W | IA | OA

let all_dims = [ R; S; P; Q; C; K; N ]
let all_tensors = [ W; IA; OA ]

let dim_index = function R -> 0 | S -> 1 | P -> 2 | Q -> 3 | C -> 4 | K -> 5 | N -> 6

let dim_of_index = function
  | 0 -> R | 1 -> S | 2 -> P | 3 -> Q | 4 -> C | 5 -> K | 6 -> N
  | i -> invalid_arg (Printf.sprintf "Dims.dim_of_index: %d" i)

let tensor_index = function W -> 0 | IA -> 1 | OA -> 2

let tensor_of_index = function
  | 0 -> W | 1 -> IA | 2 -> OA
  | i -> invalid_arg (Printf.sprintf "Dims.tensor_of_index: %d" i)

let dim_name = function R -> "R" | S -> "S" | P -> "P" | Q -> "Q" | C -> "C" | K -> "K" | N -> "N"
let tensor_name = function W -> "W" | IA -> "IA" | OA -> "OA"

let relevant d t =
  match t, d with
  | W, (R | S | C | K) -> true
  | W, (P | Q | N) -> false
  | IA, (P | Q | C | N) -> true
  | IA, (R | S | K) -> false
  | OA, (P | Q | K | N) -> true
  | OA, (R | S | C) -> false

let model_relevant d t =
  match t, d with
  | IA, (R | S) -> true
  | _ -> relevant d t
