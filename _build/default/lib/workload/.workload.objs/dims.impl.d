lib/workload/dims.ml: Printf
