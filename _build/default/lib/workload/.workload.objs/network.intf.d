lib/workload/network.mli: Layer
