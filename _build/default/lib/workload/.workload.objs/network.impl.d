lib/workload/network.ml: Layer List Zoo
