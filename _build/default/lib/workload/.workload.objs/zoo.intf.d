lib/workload/zoo.mli: Layer
