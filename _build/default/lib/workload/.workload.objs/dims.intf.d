lib/workload/dims.mli:
