lib/workload/layer.ml: Dims List Prim Printf
