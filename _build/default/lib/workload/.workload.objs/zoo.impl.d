lib/workload/zoo.ml: Layer List
