lib/workload/layer.mli: Dims
