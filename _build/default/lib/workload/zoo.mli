(** The four DNN workload suites evaluated in the paper.

    Each suite is the list of a network's distinct convolution / GEMM layer
    shapes (as in the paper's figures, whose x-axes enumerate unique
    [R_P_C_K_Stride] shapes), at batch size 1. *)

val resnet50 : Layer.t list
(** ResNet-50 [He et al. 2016]: the 21 distinct conv shapes (stride on the
    3x3 of each downsampling bottleneck) plus the final FC as a GEMM. *)

val resnext50 : Layer.t list
(** ResNeXt-50 (32x4d) [Xie et al. 2017]: pointwise convs plus the 32-group
    3x3 convs represented by their per-group shape. *)

val deepbench_ocr : Layer.t list
(** DeepBench OCR inference GEMMs expressed as layers. *)

val deepbench_face : Layer.t list
(** DeepBench-style face-recognition convolution shapes. The exact vendor
    shapes are not redistributable; these are equivalent-scale stand-ins
    (see DESIGN.md substitutions). *)

val suites : (string * Layer.t list) list
(** All four suites with their display names, in the paper's order. *)

val find : string -> Layer.t
(** Look up any layer across all suites by name. Raises [Not_found]. *)
