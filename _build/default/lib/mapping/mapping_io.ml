let dim_of_name = function
  | "R" -> Some Dims.R
  | "S" -> Some Dims.S
  | "P" -> Some Dims.P
  | "Q" -> Some Dims.Q
  | "C" -> Some Dims.C
  | "K" -> Some Dims.K
  | "N" -> Some Dims.N
  | _ -> None

let loops_to_string loops =
  String.concat ","
    (List.map
       (fun (l : Mapping.loop) ->
         Printf.sprintf "%s:%d" (Dims.dim_name l.Mapping.dim) l.Mapping.bound)
       loops)

let to_string (m : Mapping.t) =
  let buf = Buffer.create 512 in
  let l = m.Mapping.layer in
  Buffer.add_string buf
    (Printf.sprintf "layer %s r=%d s=%d p=%d q=%d c=%d k=%d n=%d stride=%d\n"
       l.Layer.name l.Layer.r l.Layer.s l.Layer.p l.Layer.q l.Layer.c l.Layer.k l.Layer.n
       l.Layer.stride);
  Array.iteri
    (fun i lm ->
      Buffer.add_string buf (Printf.sprintf "level %d" i);
      if lm.Mapping.temporal <> [] then
        Buffer.add_string buf (" temporal " ^ loops_to_string lm.Mapping.temporal);
      if lm.Mapping.spatial <> [] then
        Buffer.add_string buf (" spatial " ^ loops_to_string lm.Mapping.spatial);
      Buffer.add_char buf '\n')
    m.Mapping.levels;
  Buffer.contents buf

let parse_loops s =
  if String.trim s = "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest ->
        (match String.split_on_char ':' (String.trim part) with
         | [ dname; bound ] ->
           (match (dim_of_name dname, int_of_string_opt bound) with
            | Some dim, Some b when b > 0 ->
              go ({ Mapping.dim; bound = b } :: acc) rest
            | Some _, Some b -> Error (Printf.sprintf "non-positive bound %d" b)
            | None, _ -> Error (Printf.sprintf "unknown dimension %S" dname)
            | Some _, None -> Error (Printf.sprintf "bad bound in %S" part))
         | _ -> Error (Printf.sprintf "malformed loop %S" part))
    in
    go [] parts

let parse_kv key s =
  let prefix = key ^ "=" in
  if String.length s > String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then int_of_string_opt (String.sub s (String.length prefix)
                            (String.length s - String.length prefix))
  else None

let ( let* ) r f = Result.bind r f

let parse_layer_line line =
  match String.split_on_char ' ' line with
  | "layer" :: name :: kvs ->
    let find key =
      match List.find_map (parse_kv key) kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing %s= in layer line" key)
    in
    let* r = find "r" in
    let* s = find "s" in
    let* p = find "p" in
    let* q = find "q" in
    let* c = find "c" in
    let* k = find "k" in
    let* n = find "n" in
    let* stride = find "stride" in
    (try Ok (Layer.create ~name ~stride ~r ~s ~p ~q ~c ~k ~n ())
     with Invalid_argument msg -> Error msg)
  | _ -> Error "first line must start with 'layer <name> ...'"

(* split "temporal A spatial B" into its two optional clauses *)
let parse_level_clauses rest =
  let words = List.filter (( <> ) "") (String.split_on_char ' ' rest) in
  let rec go mode t sp = function
    | [] -> Ok (String.concat " " (List.rev t), String.concat " " (List.rev sp))
    | "temporal" :: more -> go `T t sp more
    | "spatial" :: more -> go `S t sp more
    | w :: more ->
      (match mode with
       | `T -> go mode (w :: t) sp more
       | `S -> go mode t (w :: sp) more
       | `None -> Error (Printf.sprintf "unexpected token %S in level line" w))
  in
  go `None [] [] words

let of_string text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty input"
  | layer_line :: level_lines ->
    let* layer = parse_layer_line (String.trim layer_line) in
    let rec parse_levels idx acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let line = String.trim line in
        (match String.split_on_char ' ' line with
         | "level" :: num :: _ ->
           (match int_of_string_opt num with
            | Some i when i = idx ->
              let prefix = Printf.sprintf "level %d" i in
              let clause =
                String.sub line (String.length prefix)
                  (String.length line - String.length prefix)
              in
              let* t_str, s_str = parse_level_clauses clause in
              let* temporal = parse_loops t_str in
              let* spatial = parse_loops s_str in
              parse_levels (idx + 1) ({ Mapping.temporal; spatial } :: acc) rest
            | Some i -> Error (Printf.sprintf "level %d out of order (expected %d)" i idx)
            | None -> Error (Printf.sprintf "bad level number in %S" line))
         | _ -> Error (Printf.sprintf "expected 'level <n> ...', got %S" line))
    in
    let* levels = parse_levels 0 [] level_lines in
    if levels = [] then Error "no levels"
    else Ok (Mapping.make layer (Array.of_list levels))

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))

let load path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  | exception Sys_error e -> Error e
