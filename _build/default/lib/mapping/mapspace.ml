type count = {
  tilings : float;
  spatial_choices : float;
  permutations : float;
  configurations : float;
}

let fi = float_of_int

(* C(n + k - 1, k - 1): ways to drop n identical balls into k bins *)
let multiset n k =
  let rec go acc i =
    if i > n then acc else go (acc *. fi (k - 1 + i) /. fi i) (i + 1)
  in
  if k <= 0 then 0. else go 1. 1

let factorial n =
  let rec go acc i = if i > n then acc else go (acc *. fi i) (i + 1) in
  go 1. 1

let count arch layer =
  let levels = Spec.level_count arch in
  let groups = Layer.factor_groups layer in
  (* tilings: per distinct (dim, prime), allocate its multiplicity across
     levels; independent across groups *)
  let tilings =
    List.fold_left (fun acc (_, _, mult) -> acc *. multiset mult levels) 1. groups
  in
  let total_factors = List.length (Layer.factors layer) in
  let spatial_choices = Float.pow 2. (fi total_factors) in
  (* permutation upper bound: in the worst case all factors land in one
     level and can be fully ordered *)
  let permutations = factorial total_factors in
  {
    tilings;
    spatial_choices;
    permutations;
    configurations = tilings *. spatial_choices *. permutations;
  }

let tilings arch layer = (count arch layer).tilings
let configurations arch layer = (count arch layer).configurations
let log10_configurations arch layer = log10 (configurations arch layer)

let report arch layer =
  let c = count arch layer in
  Printf.sprintf
    "%s: %.3g tilings x %.3g spatial/temporal choices x <= %.3g orderings ~ 10^%.1f configurations"
    layer.Layer.name c.tilings c.spatial_choices c.permutations
    (log10 c.configurations)
