(** Analytic size of the scheduling space (Section II-A).

    The paper motivates CoSA by the sheer size of the space: "there could
    be millions, or even billions, of valid schedules" for one layer.
    This module counts it exactly (as floats, since the counts overflow
    63-bit integers for large layers):

    - {!tilings}: ways to assign every prime factor of every loop bound to
      a memory level — the multiset-allocation count
      [prod_d C(n_d(p) + L - 1, L - 1)] over distinct primes per dim;
    - {!configurations}: the full X-space the paper's encoding covers —
      each factor additionally picks spatial/temporal, and each level's
      loops can be permuted (bounded by per-level factor counts);
    - {!log10_configurations}: the headline magnitude. *)

type count = {
  tilings : float;
  spatial_choices : float;  (** 2^factors: the s/t axis *)
  permutations : float;  (** upper bound: per-level orderings *)
  configurations : float;  (** product of the three *)
}

val count : Spec.t -> Layer.t -> count

val tilings : Spec.t -> Layer.t -> float
val configurations : Spec.t -> Layer.t -> float
val log10_configurations : Spec.t -> Layer.t -> float

val report : Spec.t -> Layer.t -> string
(** One-line human-readable summary. *)
