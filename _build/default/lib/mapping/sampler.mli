(** Random schedule generation.

    Two samplers with different purposes:
    - {!raw} draws uniformly from the full (mostly invalid) configuration
      space — this is what the paper's Random-search baseline samples, where
      only ~0.03% of 20K draws are valid;
    - {!valid} constructs a random {e valid} mapping by incremental
      placement with rejection-and-repair, used to enumerate the valid-
      schedule population for Fig. 1. *)

val raw : Prim.Rng.t -> Spec.t -> Layer.t -> Mapping.t
(** A uniformly random assignment of every prime factor to a (level,
    spatial/temporal) slot with random per-level loop orders. Usually
    violates buffer or fanout constraints; callers must validate. *)

val valid : ?max_attempts:int -> Prim.Rng.t -> Spec.t -> Layer.t -> Mapping.t option
(** A random valid mapping, or [None] if construction failed
    [max_attempts] (default 50) times. *)
