(** Plain-text serialisation of schedules, so mappings can be saved from
    one run (e.g. `cosa_cli schedule --save`) and re-evaluated or compared
    later without re-solving.

    Format (one record per file, line-oriented):
    {v
    layer <name> r=3 s=3 p=14 q=14 c=256 k=256 n=1 stride=1
    level 0 temporal P:4,Q:4 spatial K:8
    level 1
    ...
    v} *)

val to_string : Mapping.t -> string

val of_string : string -> (Mapping.t, string) result
(** Parses {!to_string} output. Returns [Error reason] on malformed input;
    the parsed mapping is structurally checked (level indices contiguous
    from 0, bounds positive) but not validated against any architecture —
    use {!Mapping.validate} for that. *)

val save : string -> Mapping.t -> unit
(** Write to a file. Raises [Sys_error] on I/O failure. *)

val load : string -> (Mapping.t, string) result
