lib/mapping/mapping_io.mli: Mapping
