lib/mapping/mapping_io.ml: Array Buffer Dims Fun Layer List Mapping Printf Result String
