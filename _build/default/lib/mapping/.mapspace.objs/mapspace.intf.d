lib/mapping/mapspace.mli: Layer Spec
