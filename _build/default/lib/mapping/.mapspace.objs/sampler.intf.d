lib/mapping/sampler.mli: Layer Mapping Prim Spec
