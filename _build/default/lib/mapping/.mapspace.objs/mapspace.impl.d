lib/mapping/mapspace.ml: Float Layer List Printf Spec
