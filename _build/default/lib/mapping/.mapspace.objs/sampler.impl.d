lib/mapping/sampler.ml: Array Dims Fun Layer List Mapping Prim Spec
