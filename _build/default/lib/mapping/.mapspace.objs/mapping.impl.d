lib/mapping/mapping.ml: Array Buffer Dims Layer List Printf Spec String
