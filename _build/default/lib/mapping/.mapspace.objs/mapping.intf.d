lib/mapping/mapping.mli: Dims Layer Spec
