type t = {
  id : int;
  src : int;
  dests : int list;
  flits : int;
  tensor : Dims.tensor;
  step : int;
}

let make ~id ~src ~dests ~flits ~tensor ~step =
  if dests = [] then invalid_arg "Packet.make: empty destination list";
  if flits < 1 then invalid_arg "Packet.make: flits < 1";
  { id; src; dests; flits; tensor; step }
