lib/noc/noc_sim.mli: Mapping Spec
