lib/noc/dram_model.mli: Spec
