lib/noc/dram_model.ml: Array List Spec
