lib/noc/packet.mli: Dims
