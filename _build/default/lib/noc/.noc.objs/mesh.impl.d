lib/noc/mesh.ml: Array Hashtbl List Packet Queue Spec
