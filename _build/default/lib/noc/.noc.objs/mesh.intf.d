lib/noc/mesh.mli: Packet Spec
