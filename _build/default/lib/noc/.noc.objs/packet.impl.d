lib/noc/packet.ml: Dims
