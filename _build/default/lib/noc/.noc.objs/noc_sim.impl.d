lib/noc/noc_sim.ml: Array Dims Dram_model Float Hashtbl List Mapping Mesh Model Packet Printf Spec
