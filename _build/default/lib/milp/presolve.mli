(** Bound tightening by interval propagation over equality rows.

    Given a problem in equality standard form and working copies of the
    variable bounds, repeatedly derives implied bounds for every variable
    from each row's residual activity range, rounding integer variables'
    bounds inward. Used by {!Bb} at every node: after a branch fixes part
    of a conservation row (e.g. CoSA's Eq. 3 equalities), propagation
    fixes or tightens the siblings, shrinking the LP and often proving
    infeasibility without a simplex call. *)

type result = {
  feasible : bool;  (** false if some bound interval became empty *)
  tightened : int;  (** number of individual bound changes applied *)
  rounds : int;  (** propagation sweeps executed *)
}

val rows_of : Simplex.problem -> (int * float) array array
(** Row-major view of the constraint matrix (built once, reusable across
    nodes of the same problem). *)

val tighten :
  ?max_rounds:int ->
  ?integer:bool array ->
  Simplex.problem ->
  (int * float) array array ->
  float array ->
  float array ->
  result
(** [tighten p rows lb ub] mutates [lb]/[ub] in place. [integer.(j)] marks
    columns whose bounds may be rounded inward (default: none).
    [max_rounds] defaults to 4. *)
