type result = { feasible : bool; tightened : int; rounds : int }

let tol = 1e-7

let rows_of (p : Simplex.problem) =
  let rows = Array.make p.Simplex.nrows [] in
  Array.iteri
    (fun j (ridx, coeffs) ->
      Array.iteri (fun k r -> rows.(r) <- (j, coeffs.(k)) :: rows.(r)) ridx)
    p.Simplex.cols;
  Array.map Array.of_list rows

let tighten ?(max_rounds = 4) ?integer (p : Simplex.problem) rows lb ub =
  let is_int j = match integer with Some a -> a.(j) | None -> false in
  let tightened = ref 0 in
  let feasible = ref true in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds && !feasible do
    changed := false;
    incr rounds;
    Array.iteri
      (fun i row ->
        if !feasible then begin
          let b = p.Simplex.rhs.(i) in
          (* activity range of the row *)
          let minact = ref 0. and maxact = ref 0. in
          Array.iter
            (fun (j, a) ->
              if a > 0. then begin
                minact := !minact +. (a *. lb.(j));
                maxact := !maxact +. (a *. ub.(j))
              end
              else begin
                minact := !minact +. (a *. ub.(j));
                maxact := !maxact +. (a *. lb.(j))
              end)
            row;
          if !minact > b +. tol || !maxact < b -. tol then feasible := false
          else
            Array.iter
              (fun (j, a) ->
                (* residual activity without column j's extreme contribution *)
                let contrib_min = if a > 0. then a *. lb.(j) else a *. ub.(j) in
                let contrib_max = if a > 0. then a *. ub.(j) else a *. lb.(j) in
                let rest_min = !minact -. contrib_min in
                let rest_max = !maxact -. contrib_max in
                (* a * x_j = b - rest, rest in [rest_min, rest_max] *)
                let x_hi = (b -. rest_min) /. a and x_lo = (b -. rest_max) /. a in
                let new_lo = Float.min x_lo x_hi and new_hi = Float.max x_lo x_hi in
                let new_lo = if is_int j then Float.round (ceil (new_lo -. tol)) else new_lo in
                let new_hi = if is_int j then Float.round (floor (new_hi +. tol)) else new_hi in
                if Float.is_nan new_lo || Float.is_nan new_hi then ()
                else begin
                  if new_lo > lb.(j) +. tol && new_lo <> neg_infinity then begin
                    (* keep activities consistent with the updated bound *)
                    if a > 0. then minact := !minact +. (a *. (new_lo -. lb.(j)))
                    else maxact := !maxact +. (a *. (new_lo -. lb.(j)));
                    lb.(j) <- new_lo;
                    incr tightened;
                    changed := true
                  end;
                  if new_hi < ub.(j) -. tol && new_hi <> infinity then begin
                    if a > 0. then maxact := !maxact +. (a *. (new_hi -. ub.(j)))
                    else minact := !minact +. (a *. (new_hi -. ub.(j)));
                    ub.(j) <- new_hi;
                    incr tightened;
                    changed := true
                  end;
                  if lb.(j) > ub.(j) +. tol then feasible := false
                end)
              row
        end)
      rows
  done;
  { feasible = !feasible; tightened = !tightened; rounds = !rounds }
