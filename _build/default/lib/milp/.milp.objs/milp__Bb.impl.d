lib/milp/bb.ml: Array Float Fun List Lp Presolve Simplex Unix
