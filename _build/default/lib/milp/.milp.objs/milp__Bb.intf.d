lib/milp/bb.mli: Lp Simplex
