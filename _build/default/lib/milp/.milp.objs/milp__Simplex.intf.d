lib/milp/simplex.mli:
