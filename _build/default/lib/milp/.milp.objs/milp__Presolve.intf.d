lib/milp/presolve.mli: Simplex
