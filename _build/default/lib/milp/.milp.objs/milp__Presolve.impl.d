lib/milp/presolve.ml: Array Float Simplex
