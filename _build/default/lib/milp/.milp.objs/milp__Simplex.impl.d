lib/milp/simplex.ml: Array Float
