lib/milp/lp.mli:
