lib/milp/lp.ml: Array Buffer Hashtbl List Printf
