type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = pad t.headers :: List.map pad rows in
  let widths = Array.make ncols 0 in
  List.iter (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c))) all;
  let render_row r =
    String.concat "  " (List.mapi (fun i c -> Printf.sprintf "%-*s" widths.(i) c) r)
  in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  match all with
  | header :: body ->
    String.concat "\n" ((render_row header :: rule :: List.map render_row body) @ [ "" ])
  | [] -> ""

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 1000. then Printf.sprintf "%.4g" x
  else Printf.sprintf "%.3f" x

let cell_fx x = Printf.sprintf "%.2fx" x
