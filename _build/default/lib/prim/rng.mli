(** Deterministic SplitMix64 pseudo-random generator.

    Every stochastic component (random mapper, Timeloop-Hybrid baseline, NoC
    arbitration tie-breaking in tests) draws from an explicit [Rng.t] so runs
    are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for per-"thread" seeding). *)
