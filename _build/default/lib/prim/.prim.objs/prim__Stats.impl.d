lib/prim/stats.ml: Array Buffer List Printf String
