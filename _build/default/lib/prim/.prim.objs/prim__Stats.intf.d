lib/prim/stats.mli:
