lib/prim/texttab.ml: Array Float List Printf String
