lib/prim/rng.ml: Array Int64 List
