lib/prim/factorize.mli:
