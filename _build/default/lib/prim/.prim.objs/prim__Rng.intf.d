lib/prim/rng.mli:
