lib/prim/texttab.mli:
