lib/prim/factorize.ml: Int List
