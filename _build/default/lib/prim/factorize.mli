(** Prime factorisation utilities.

    CoSA formulates scheduling as a prime-factor allocation problem: every
    loop bound is decomposed into its prime factors, and each factor is
    assigned a scheduling configuration. *)

val is_prime : int -> bool
(** [is_prime n] is [true] iff [n] is prime. [n <= 1] is not prime. *)

val prime_factors : int -> int list
(** [prime_factors n] is the non-decreasing list of prime factors of [n].
    [prime_factors 1 = []]. Raises [Invalid_argument] when [n < 1]. *)

val grouped_factors : int -> (int * int) list
(** [grouped_factors n] is [prime_factors n] grouped as
    [(prime, multiplicity)] pairs, primes increasing.
    E.g. [grouped_factors 12 = [(2, 2); (3, 1)]]. *)

val pad_to_factorable : ?max_prime:int -> int -> int
(** [pad_to_factorable n] is the smallest [m >= n] all of whose prime factors
    are [<= max_prime] (default 7). The paper pads large-prime loop bounds
    before factorising so the allocation space is non-trivial. *)

val divisors : int -> int list
(** All positive divisors of [n], increasing. *)

val product : int list -> int
(** Product of a list of ints ([1] for the empty list). *)
