(** Small statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values (the paper reports geomean speedups). *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation. *)

val stddev : float list -> float

val minimum : float list -> float
val maximum : float list -> float

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> float list -> histogram
(** Equal-width histogram over the data range. *)

val render_histogram : ?width:int -> histogram -> string
(** ASCII rendering, one row per bin. *)
