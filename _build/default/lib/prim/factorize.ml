let is_prime n =
  if n <= 1 then false
  else if n <= 3 then true
  else if n mod 2 = 0 || n mod 3 = 0 then false
  else
    let rec loop i =
      if i * i > n then true
      else if n mod i = 0 || n mod (i + 2) = 0 then false
      else loop (i + 6)
    in
    loop 5

let prime_factors n =
  if n < 1 then invalid_arg "Factorize.prime_factors: n < 1";
  let rec strip n p acc = if n mod p = 0 then strip (n / p) p (p :: acc) else (n, acc) in
  let rec loop n p acc =
    if n = 1 then List.rev acc
    else if p * p > n then List.rev (n :: acc)
    else
      let n', acc' = strip n p acc in
      loop n' (if p = 2 then 3 else p + 2) acc'
  in
  loop n 2 []

let grouped_factors n =
  let fs = prime_factors n in
  let rec group = function
    | [] -> []
    | p :: rest ->
      let same, others = List.partition (Int.equal p) rest in
      (p, 1 + List.length same) :: group others
  in
  group fs

let smooth max_prime n = List.for_all (fun p -> p <= max_prime) (prime_factors n)

let pad_to_factorable ?(max_prime = 7) n =
  if n < 1 then invalid_arg "Factorize.pad_to_factorable: n < 1";
  let rec loop m = if smooth max_prime m then m else loop (m + 1) in
  loop n

let divisors n =
  if n < 1 then invalid_arg "Factorize.divisors: n < 1";
  let rec loop i acc_lo acc_hi =
    if i * i > n then List.rev_append acc_lo acc_hi
    else if n mod i = 0 then
      let acc_hi = if i * i = n then acc_hi else (n / i) :: acc_hi in
      loop (i + 1) (i :: acc_lo) acc_hi
    else loop (i + 1) acc_lo acc_hi
  in
  loop 1 [] []

let product = List.fold_left ( * ) 1
