type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 (Steele et al.): state += golden; mix with xor-shifts. *)
let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = int64 t }
