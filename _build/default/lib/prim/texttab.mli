(** Plain-text table rendering for experiment output. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val render : t -> string
(** Render with aligned columns and a header rule. *)

val cell_f : float -> string
(** Format a float compactly for a table cell. *)

val cell_fx : float -> string
(** Format a speedup-style float as e.g. ["2.51x"]. *)
