let search ?(max_samples = 20_000) ?(target_valid = 5) ?(metric = Baseline.latency_metric)
    rng arch layer =
  let t0 = Unix.gettimeofday () in
  let best = ref None and best_metric = ref infinity in
  let valid = ref 0 and samples = ref 0 in
  let consider m =
    incr valid;
    let v = metric arch m in
    if v < !best_metric then begin
      best_metric := v;
      best := Some m
    end
  in
  while !samples < max_samples && !valid < target_valid do
    incr samples;
    let m = Sampler.raw rng arch layer in
    if Mapping.is_valid arch m then consider m
  done;
  if !valid = 0 then begin
    match Sampler.valid rng arch layer with
    | Some m -> consider m
    | None -> ()
  end;
  {
    Baseline.best = !best;
    best_metric = !best_metric;
    samples = !samples;
    valid = !valid;
    elapsed = Unix.gettimeofday () -. t0;
  }
