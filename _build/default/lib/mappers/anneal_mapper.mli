(** Simulated-annealing scheduler, a classic black-box baseline in the
    style of the feedback-driven approaches of the paper's Table I.

    The state is a valid mapping; moves perturb it (move one prime factor
    between levels, toggle a factor spatial/temporal, swap two loops in a
    level's order); a move to a worse mapping is accepted with probability
    [exp (-delta / temperature)] under a geometric cooling schedule. *)

val search :
  ?iterations:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?metric:Baseline.metric ->
  Prim.Rng.t ->
  Spec.t ->
  Layer.t ->
  Baseline.outcome
(** Defaults: [iterations = 2000], [initial_temperature] = 20% of the
    starting metric, [cooling = 0.995] per accepted step,
    [metric = latency]. *)

val perturb : Prim.Rng.t -> Spec.t -> Mapping.t -> Mapping.t
(** One random move (factor relocation, spatial/temporal toggle, or loop
    reorder). The result may be invalid; callers re-validate. Exposed for
    reuse as {!Genetic_mapper}'s mutation operator. *)
