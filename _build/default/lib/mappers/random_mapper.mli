(** The paper's Random-search baseline (Section IV-B).

    Draws uniformly random scheduling configurations, keeps those that
    validate, and returns the best valid one under the metric. The paper's
    setting draws up to 20K samples and stops after five valid schedules —
    matching its Table VI observation that random sampling finds only ~5
    valid schedules in 20K draws. *)

val search :
  ?max_samples:int ->
  ?target_valid:int ->
  ?metric:Baseline.metric ->
  Prim.Rng.t ->
  Spec.t ->
  Layer.t ->
  Baseline.outcome
(** Defaults: [max_samples = 20_000], [target_valid = 5],
    [metric = latency]. If no raw draw validates, one constructive valid
    sample ({!Sampler.valid}) is used so a baseline schedule always
    exists. *)
