(* Distinct orders of the dims present at the NoC-boundary temporal levels;
   the same order is applied at every boundary level (Timeloop's pruning
   collapses permutations that only reorder unit loops). *)
let noc_orders arch (m : Mapping.t) ~cap rng =
  let noc = arch.Spec.noc_level in
  let lvls =
    List.init (Spec.level_count arch - noc) (fun k -> noc + k)
  in
  let present =
    List.sort_uniq compare
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun (l : Mapping.loop) ->
               if l.Mapping.bound > 1 then Some l.Mapping.dim else None)
             m.Mapping.levels.(i).Mapping.temporal)
         lvls)
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))
        l
  in
  let all = Array.of_list (permutations present) in
  Prim.Rng.shuffle rng all;
  let n = min cap (Array.length all) in
  (lvls, Array.to_list (Array.sub all 0 n))

let with_order (m : Mapping.t) lvls order =
  let levels =
    Array.mapi
      (fun i lm ->
        if List.mem i lvls then
          { lm with
            Mapping.temporal =
              List.filter_map
                (fun d ->
                  List.find_opt (fun (l : Mapping.loop) -> l.Mapping.dim = d)
                    lm.Mapping.temporal)
                order }
        else lm)
      m.Mapping.levels
  in
  Mapping.make m.Mapping.layer levels

let search ?(threads = 32) ?(termination = 500) ?(perms_per_factorization = 24)
    ?(metric = Baseline.latency_metric) rng arch layer =
  let t0 = Unix.gettimeofday () in
  let best = ref None and best_metric = ref infinity in
  let valid = ref 0 and samples = ref 0 in
  for _thread = 1 to threads do
    let trng = Prim.Rng.split rng in
    let non_improving = ref 0 in
    while !non_improving < termination do
      incr samples;
      match Sampler.valid ~max_attempts:3 trng arch layer with
      | None -> non_improving := !non_improving + 1
      | Some base ->
        let lvls, orders = noc_orders arch base ~cap:perms_per_factorization trng in
        List.iter
          (fun order ->
            if !non_improving < termination then begin
              let m = with_order base lvls order in
              incr samples;
              if Mapping.is_valid arch m then begin
                incr valid;
                let v = metric arch m in
                if v < !best_metric -. 1e-9 then begin
                  best_metric := v;
                  best := Some m;
                  non_improving := 0
                end
                else incr non_improving
              end
            end)
          orders
    done
  done;
  {
    Baseline.best = !best;
    best_metric = !best_metric;
    samples = !samples;
    valid = !valid;
    elapsed = Unix.gettimeofday () -. t0;
  }
