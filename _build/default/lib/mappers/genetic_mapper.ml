(* Crossover: for each loop dimension, take the whole per-level placement
   of that dimension's factors from one parent or the other. The child's
   factorisation is correct by construction (each dim comes wholly from
   one parent); capacity validity is re-checked. *)
let crossover rng arch (a : Mapping.t) (b : Mapping.t) =
  let nlev = Spec.level_count arch in
  let pick_of = List.map (fun d -> (d, Prim.Rng.bool rng)) Dims.all_dims in
  let from_parent d = if List.assoc d pick_of then a else b in
  let levels =
    Array.init nlev (fun i ->
        let gather proj =
          List.concat_map
            (fun d ->
              let parent = from_parent d in
              List.filter
                (fun (l : Mapping.loop) -> l.Mapping.dim = d)
                (proj parent.Mapping.levels.(i)))
            Dims.all_dims
        in
        {
          Mapping.temporal = gather (fun lm -> lm.Mapping.temporal);
          spatial = gather (fun lm -> lm.Mapping.spatial);
        })
  in
  Mapping.make a.Mapping.layer levels

let tournament rng scored =
  let n = Array.length scored in
  let i = Prim.Rng.int rng n and j = Prim.Rng.int rng n in
  let (_, si) = scored.(i) and (_, sj) = scored.(j) in
  if si <= sj then fst scored.(i) else fst scored.(j)

let search ?(population = 24) ?(generations = 30) ?(mutation_rate = 0.4)
    ?(metric = Baseline.latency_metric) rng arch layer =
  let t0 = Unix.gettimeofday () in
  let samples = ref 0 and valid = ref 0 in
  let eval m =
    incr valid;
    metric arch m
  in
  (* seed population *)
  let seed = ref [] in
  let attempts = ref 0 in
  while List.length !seed < population && !attempts < population * 10 do
    incr attempts;
    incr samples;
    match Sampler.valid rng arch layer with
    | Some m -> seed := m :: !seed
    | None -> ()
  done;
  match !seed with
  | [] ->
    { Baseline.best = None; best_metric = infinity; samples = !samples; valid = 0;
      elapsed = Unix.gettimeofday () -. t0 }
  | seed ->
    let scored = ref (Array.of_list (List.map (fun m -> (m, eval m)) seed)) in
    let best = ref (fst !scored.(0)) and best_metric = ref (snd !scored.(0)) in
    let note (m, s) =
      if s < !best_metric then begin
        best := m;
        best_metric := s
      end
    in
    Array.iter note !scored;
    for _gen = 1 to generations do
      let next = ref [ (!best, !best_metric) ] in
      let fuel = ref (population * 20) in
      while List.length !next < population && !fuel > 0 do
        decr fuel;
        let p1 = tournament rng !scored and p2 = tournament rng !scored in
        incr samples;
        let child = crossover rng arch p1 p2 in
        let child =
          if Prim.Rng.float rng 1. < mutation_rate then
            Anneal_mapper.perturb rng arch child
          else child
        in
        if Mapping.is_valid arch child then begin
          let s = eval child in
          note (child, s);
          next := (child, s) :: !next
        end
      done;
      (* top up from the current population if crossover kept failing *)
      while List.length !next < population do
        let p = tournament rng !scored in
        next := (p, metric arch p) :: !next
      done;
      scored := Array.of_list !next
    done;
    {
      Baseline.best = Some !best;
      best_metric = !best_metric;
      samples = !samples;
      valid = !valid;
      elapsed = Unix.gettimeofday () -. t0;
    }
