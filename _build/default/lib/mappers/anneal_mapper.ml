(* Move kinds: factor relocation, spatial/temporal toggle, loop reorder. *)

let strip_prime rng loops =
  (* pick a loop, strip one prime off it; None if no loop has bound > 1 *)
  let candidates =
    List.filteri (fun _ (l : Mapping.loop) -> l.Mapping.bound > 1) loops
  in
  match candidates with
  | [] -> None
  | _ ->
    let target = Prim.Rng.pick rng candidates in
    let primes = Prim.Factorize.prime_factors target.Mapping.bound in
    let p = Prim.Rng.pick rng primes in
    let rest =
      List.filter_map
        (fun (l : Mapping.loop) ->
          if l == target then
            if l.Mapping.bound / p > 1 then Some { l with Mapping.bound = l.Mapping.bound / p }
            else None
          else Some l)
        loops
    in
    Some (target.Mapping.dim, p, rest)

let add_factor loops d p =
  let rec go = function
    | [] -> [ { Mapping.dim = d; bound = p } ]
    | (l : Mapping.loop) :: rest when l.Mapping.dim = d ->
      { l with Mapping.bound = l.Mapping.bound * p } :: rest
    | l :: rest -> l :: go rest
  in
  go loops

let perturb rng arch (m : Mapping.t) =
  let nlev = Spec.level_count arch in
  let levels = Array.copy m.Mapping.levels in
  let kind = Prim.Rng.int rng 3 in
  (match kind with
   | 0 ->
     (* relocate one temporal factor to another level *)
     let from = Prim.Rng.int rng nlev in
     (match strip_prime rng levels.(from).Mapping.temporal with
      | Some (d, p, rest) ->
        let dst = Prim.Rng.int rng nlev in
        levels.(from) <- { (levels.(from)) with Mapping.temporal = rest };
        levels.(dst) <-
          { (levels.(dst)) with
            Mapping.temporal = add_factor levels.(dst).Mapping.temporal d p }
      | None -> ())
   | 1 ->
     (* toggle a factor between spatial and temporal at a spatial level *)
     let spatial_levels =
       List.filter
         (fun i -> arch.Spec.levels.(i).Spec.fanout > 1)
         (List.init nlev Fun.id)
     in
     let i = Prim.Rng.pick rng spatial_levels in
     if Prim.Rng.bool rng then (
       match strip_prime rng levels.(i).Mapping.temporal with
       | Some (d, p, rest) ->
         levels.(i) <-
           { Mapping.temporal = rest; spatial = add_factor levels.(i).Mapping.spatial d p }
       | None -> ())
     else (
       match strip_prime rng levels.(i).Mapping.spatial with
       | Some (d, p, rest) ->
         levels.(i) <-
           { Mapping.spatial = rest; temporal = add_factor levels.(i).Mapping.temporal d p }
       | None -> ())
   | _ ->
     (* swap two adjacent loops in a level's temporal order *)
     let i = Prim.Rng.int rng nlev in
     (match levels.(i).Mapping.temporal with
      | a :: b :: rest when rest = [] || Prim.Rng.bool rng ->
        levels.(i) <- { (levels.(i)) with Mapping.temporal = b :: a :: rest }
      | a :: b :: c :: rest ->
        levels.(i) <- { (levels.(i)) with Mapping.temporal = a :: c :: b :: rest }
      | _ -> ()));
  Mapping.make m.Mapping.layer levels

let search ?(iterations = 2000) ?initial_temperature ?(cooling = 0.995)
    ?(metric = Baseline.latency_metric) rng arch layer =
  let t0 = Unix.gettimeofday () in
  match Sampler.valid rng arch layer with
  | None ->
    { Baseline.best = None; best_metric = infinity; samples = 0; valid = 0; elapsed = 0. }
  | Some start ->
    let current = ref start in
    let current_metric = ref (metric arch start) in
    let best = ref start and best_metric = ref !current_metric in
    let temperature =
      ref (match initial_temperature with Some t -> t | None -> 0.2 *. !current_metric)
    in
    let samples = ref 1 and valid = ref 1 in
    for _ = 1 to iterations do
      incr samples;
      let cand = perturb rng arch !current in
      if Mapping.is_valid arch cand then begin
        incr valid;
        let v = metric arch cand in
        let accept =
          v <= !current_metric
          || Prim.Rng.float rng 1. < exp ((!current_metric -. v) /. Float.max 1e-9 !temperature)
        in
        if accept then begin
          current := cand;
          current_metric := v;
          temperature := !temperature *. cooling;
          if v < !best_metric then begin
            best := cand;
            best_metric := v
          end
        end
      end
    done;
    {
      Baseline.best = Some !best;
      best_metric = !best_metric;
      samples = !samples;
      valid = !valid;
      elapsed = Unix.gettimeofday () -. t0;
    }
