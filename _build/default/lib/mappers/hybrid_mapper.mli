(** Emulation of the Timeloop Hybrid mapper (Section IV-B).

    Each of [threads] independent searchers repeatedly picks a random
    tiling factorisation, prunes superfluous permutations, and linearly
    scans the pruned permutation subspace, evaluating every valid mapping
    with the analytical model. A searcher self-terminates after
    [termination] consecutive valid-but-not-better mappings (Timeloop's
    default of 500); the best mapping over all searchers is returned. *)

val search :
  ?threads:int ->
  ?termination:int ->
  ?perms_per_factorization:int ->
  ?metric:Baseline.metric ->
  Prim.Rng.t ->
  Spec.t ->
  Layer.t ->
  Baseline.outcome
(** Defaults: [threads = 32], [termination = 500],
    [perms_per_factorization = 24], [metric = latency]. *)
