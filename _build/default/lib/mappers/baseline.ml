type outcome = {
  best : Mapping.t option;
  best_metric : float;
  samples : int;
  valid : int;
  elapsed : float;
}

type metric = Spec.t -> Mapping.t -> float

let latency_metric arch m = (Model.evaluate arch m).Model.latency
let energy_metric arch m = (Model.evaluate arch m).Model.energy_pj
let edp_metric arch m = Model.edp (Model.evaluate arch m)
