lib/mappers/anneal_mapper.ml: Array Baseline Float Fun List Mapping Prim Sampler Spec Unix
