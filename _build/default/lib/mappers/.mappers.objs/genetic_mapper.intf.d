lib/mappers/genetic_mapper.mli: Baseline Layer Prim Spec
