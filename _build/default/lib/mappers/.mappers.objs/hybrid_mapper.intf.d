lib/mappers/hybrid_mapper.mli: Baseline Layer Prim Spec
