lib/mappers/baseline.mli: Mapping Spec
