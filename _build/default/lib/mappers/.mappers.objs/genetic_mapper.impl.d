lib/mappers/genetic_mapper.ml: Anneal_mapper Array Baseline Dims List Mapping Prim Sampler Spec Unix
