lib/mappers/random_mapper.mli: Baseline Layer Prim Spec
