lib/mappers/hybrid_mapper.ml: Array Baseline List Mapping Prim Sampler Spec Unix
