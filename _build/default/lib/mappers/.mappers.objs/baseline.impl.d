lib/mappers/baseline.ml: Mapping Model Spec
