lib/mappers/anneal_mapper.mli: Baseline Layer Mapping Prim Spec
