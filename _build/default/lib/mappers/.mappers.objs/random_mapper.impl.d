lib/mappers/random_mapper.ml: Baseline Mapping Sampler Unix
