(** Genetic-algorithm scheduler in the style of GAMMA [Kao & Krishna,
    ICCAD 2020], one of the feedback-driven baselines in the paper's
    Table I.

    Individuals are valid mappings. Selection is tournament-based;
    crossover splices the per-level allocations of two parents dimension
    by dimension (repairing the factorisation); mutation reuses the
    annealer's perturbation moves. Elitism keeps the best individual. *)

val search :
  ?population:int ->
  ?generations:int ->
  ?mutation_rate:float ->
  ?metric:Baseline.metric ->
  Prim.Rng.t ->
  Spec.t ->
  Layer.t ->
  Baseline.outcome
(** Defaults: [population = 24], [generations = 30],
    [mutation_rate = 0.4], [metric = latency]. *)
