(** Shared types for the search-based baseline schedulers. *)

type outcome = {
  best : Mapping.t option;  (** best valid mapping found (by the metric) *)
  best_metric : float;  (** metric value of [best]; [infinity] if none *)
  samples : int;  (** configurations drawn *)
  valid : int;  (** valid mappings evaluated *)
  elapsed : float;  (** wall-clock seconds *)
}

type metric = Spec.t -> Mapping.t -> float
(** Lower is better. *)

val latency_metric : metric
(** Timeloop-model latency (cycles). *)

val energy_metric : metric
(** Timeloop-model energy (pJ). *)

val edp_metric : metric
