type t = { util : float; comp : float; traf : float; total : float }

let log_prod x = if x <= 0 then 0. else log (float_of_int x)

let of_mapping ?(weights = Cosa_formulation.default_weights) arch (m : Mapping.t) =
  let nlev = Spec.level_count arch in
  let tile_log level v =
    List.fold_left
      (fun acc d ->
        if Dims.relevant d v then acc +. log_prod (Mapping.dim_product m ~upto:level d)
        else acc)
      0. Dims.all_dims
  in
  let util = ref 0. in
  for i = 0 to nlev - 2 do
    List.iter
      (fun v -> if Spec.stores arch i v then util := !util +. tile_log i v)
      Dims.all_tensors
  done;
  let comp = log (float_of_int (Mapping.total_temporal m)) in
  let noc = arch.Spec.noc_level in
  let noc_lvls = Cosa_formulation.noc_temporal_levels arch in
  let traf = ref 0. in
  List.iter
    (fun v ->
      (* D_v: per-PE transfer size *)
      let d_v = tile_log noc v in
      (* L_v: relevant spatial factors at the NoC boundary *)
      let l_v =
        List.fold_left
          (fun acc (l : Mapping.loop) ->
            if Dims.relevant l.Mapping.dim v then acc +. log_prod l.Mapping.bound else acc)
          0. m.Mapping.levels.(noc).Mapping.spatial
      in
      (* T_v: NoC-boundary temporal iterations outside (and including) the
         innermost v-relevant loop — Eqs. 9-10 on the concrete loop nest. *)
      let loops =
        List.concat_map
          (fun i -> m.Mapping.levels.(i).Mapping.temporal)
          (List.rev noc_lvls)
      in
      let rec innermost idx best = function
        | [] -> best
        | (l : Mapping.loop) :: rest ->
          let best =
            if l.Mapping.bound > 1 && Dims.relevant l.Mapping.dim v then idx else best
          in
          innermost (idx + 1) best rest
      in
      let cut = innermost 0 (-1) loops in
      let t_v = ref 0. in
      List.iteri
        (fun idx (l : Mapping.loop) ->
          if idx <= cut then t_v := !t_v +. log_prod l.Mapping.bound)
        loops;
      (* DRAM-boundary mirror of the formulation's extra traffic term:
         tensors staged through the level below DRAM pay their staged-tile
         size plus DRAM-level iterations (with the same reuse rule),
         scaled by the staging/DRAM bandwidth ratio. *)
      let dram = Spec.dram_level arch in
      let staging = dram - 1 in
      let dram_term =
        if Spec.stores arch staging v then begin
          let scale =
            Float.max 1.
              (arch.Spec.levels.(staging).Spec.bandwidth_words
               /. arch.Spec.dram.Spec.dram_bandwidth_words)
          in
          let d2 = tile_log staging v in
          let dram_loops = m.Mapping.levels.(dram).Mapping.temporal in
          let cut = innermost 0 (-1) dram_loops in
          let t2 = ref 0. in
          List.iteri
            (fun idx (l : Mapping.loop) ->
              if idx <= cut then t2 := !t2 +. log_prod l.Mapping.bound)
            dram_loops;
          scale *. (d2 +. !t2)
        end
        else 0.
      in
      traf := !traf +. d_v +. l_v +. !t_v +. dram_term)
    Dims.all_tensors;
  let total =
    (-.weights.Cosa_formulation.w_util *. !util)
    +. (weights.Cosa_formulation.w_comp *. comp)
    +. (weights.Cosa_formulation.w_traf *. !traf)
  in
  { util = !util; comp; traf = !traf; total }
