lib/core/cosa_formulation.mli: Dims Layer Mapping Milp Spec
