lib/core/cosa.mli: Cosa_formulation Cosa_objective Layer Mapping Milp Spec
