lib/core/cosa_decode.ml: Array Cosa_formulation Cosa_objective Dims Float List Mapping Milp Prim Spec
