lib/core/cosa_tuner.ml: Cosa List Model
