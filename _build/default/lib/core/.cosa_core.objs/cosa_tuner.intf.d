lib/core/cosa_tuner.mli: Cosa Layer Mapping Spec
