lib/core/cosa.ml: Array Cosa_decode Cosa_formulation Cosa_objective Float Fun Layer List Mapping Milp Model Prim Sampler Spec Unix
