lib/core/cosa_objective.ml: Array Cosa_formulation Dims Float List Mapping Spec
