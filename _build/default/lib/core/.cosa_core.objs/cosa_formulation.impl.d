lib/core/cosa_formulation.ml: Array Dims Float Hashtbl Layer List Mapping Milp Prim Printf Spec
