lib/core/cosa_objective.mli: Cosa_formulation Mapping Spec
