lib/core/cosa_decode.mli: Cosa_formulation Dims Mapping Milp Spec
