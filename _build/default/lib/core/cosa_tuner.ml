type result = {
  best : Cosa.result;
  weights : Cosa.weights;
  tried : int;
  scores : (Cosa.weights * float) list;
}

let default_grid arch =
  let base = Cosa.calibrate arch in
  let scale w f = { w with Cosa.w_traf = w.Cosa.w_traf *. f } in
  let with_util w u = { w with Cosa.w_util = u } in
  [
    base;
    scale base 0.5;
    scale base 2.;
    scale base 4.;
    with_util base 0.5;
    with_util base 2.;
    with_util (scale base 2.) 2.;
    { base with Cosa.w_comp = 2. };
    { base with Cosa.w_comp = 0.5 };
  ]

let tune ?grid ?score ?time_limit arch layer =
  let grid = match grid with Some g -> g | None -> default_grid arch in
  let score =
    match score with
    | Some s -> s
    | None -> fun a m -> (Model.evaluate a m).Model.latency
  in
  if grid = [] then invalid_arg "Cosa_tuner.tune: empty grid";
  let evaluated =
    List.map
      (fun weights ->
        let r = Cosa.schedule ~weights ?time_limit arch layer in
        (weights, r, score arch r.Cosa.mapping))
      grid
  in
  let best_w, best_r, _ =
    List.fold_left
      (fun (bw, br, bs) (w, r, s) -> if s < bs then (w, r, s) else (bw, br, bs))
      (match evaluated with e :: _ -> e | [] -> assert false)
      evaluated
  in
  {
    best = best_r;
    weights = best_w;
    tried = List.length grid;
    scores = List.map (fun (w, _, s) -> (w, s)) evaluated;
  }
