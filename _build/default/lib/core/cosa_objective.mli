(** Evaluate the paper's objective terms (Eqs. 5, 6, 11, 12) on a concrete
    mapping, using the A-matrix relevance semantics of the MIP. Shared by
    the decoder (two-stage permutation selection), the top-level scheduler
    (joint-vs-two-stage arbitration), and the Fig. 8 experiment. *)

type t = {
  util : float;  (** Eq. 5 value (to be maximised) *)
  comp : float;  (** Eq. 6 value *)
  traf : float;  (** Eq. 11 value *)
  total : float;  (** Eq. 12 composite *)
}

val of_mapping : ?weights:Cosa_formulation.weights -> Spec.t -> Mapping.t -> t
