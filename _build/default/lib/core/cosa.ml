type weights = Cosa_formulation.weights = { w_util : float; w_comp : float; w_traf : float }

let default_weights = Cosa_formulation.default_weights

(* Weight the traffic term by the architecture's NoC cycles-per-word so
   that traffic and compute are commensurable; the compute and utilisation
   weights come from a micro-benchmark sweep on the baseline architecture
   (Section III-D4's procedure; see the abl_weights bench). Double
   buffering hides transfers behind compute in this substrate, so compute
   cycles carry the larger weight. *)
let calibrate arch =
  let gb = arch.Spec.levels.(Spec.level_count arch - 2) in
  let words_per_cycle = gb.Spec.bandwidth_words /. float_of_int (Spec.num_pes arch) in
  let cycles_per_word = 1. /. Float.max 1e-9 words_per_cycle in
  { w_util = 0.5; w_comp = 4.; w_traf = Float.max 0.5 (Float.min 4. cycles_per_word) }

type objective_breakdown = Cosa_objective.t = {
  util : float;
  comp : float;
  traf : float;
  total : float;
}

type strategy = Auto | Joint | Two_stage

type result = {
  mapping : Mapping.t;
  objective : objective_breakdown;
  solver_status : Milp.Bb.status;
  solve_time : float;
  nodes : int;
  repaired : bool;
  used_joint : bool;
}

let breakdown_of_mapping ?weights arch m = Cosa_objective.of_mapping ?weights arch m

let trivial_mapping arch layer =
  let nlev = Spec.level_count arch in
  let dram = Spec.dram_level arch in
  let levels =
    Array.init nlev (fun i ->
        if i = dram then
          { Mapping.temporal =
              List.filter_map
                (fun d ->
                  let b = Layer.padded_bound layer d in
                  if b > 1 then Some { Mapping.dim = d; bound = b } else None)
                Cosa_decode.canonical_inner_order;
            spatial = [] }
        else { Mapping.temporal = []; spatial = [] })
  in
  Mapping.make layer levels

let schedule ?weights ?(strategy = Auto) ?(node_limit = 50_000) ?(time_limit = 4.) arch layer =
  let weights = match weights with Some w -> w | None -> calibrate arch in
  let t0 = Unix.gettimeofday () in
  (* A cheap deterministic heuristic mapping seeds the branch-and-bound with
     an incumbent (MIP start), so the search begins with an upper bound. *)
  let heuristic_mapping () =
    let rng = Prim.Rng.create 0x5eed in
    let candidates =
      List.filter_map (fun _ -> Sampler.valid rng arch layer) (List.init 8 Fun.id)
    in
    match candidates with
    | [] -> None
    | first :: rest ->
      let score c = (Cosa_objective.of_mapping ~weights arch c).Cosa_objective.total in
      Some
        (List.fold_left
           (fun best c -> if score c < score best then c else best)
           first rest)
  in
  let warm = heuristic_mapping () in
  let attempt joint =
    let f = Cosa_formulation.build ~weights ~joint_permutation:joint arch layer in
    let warm_start =
      match warm with
      | Some wm -> Cosa_formulation.mip_start f wm
      | None -> None
    in
    let res =
      Milp.Bb.solve ~node_limit ~time_limit ~priority:f.Cosa_formulation.priority ~gap:0.05
        ?warm_start f.Cosa_formulation.lp
    in
    match res.Milp.Bb.status with
    | Milp.Bb.Optimal | Milp.Bb.Feasible ->
      let m = Cosa_decode.decode f res in
      let m = if joint then m else Cosa_decode.best_noc_order ~weights arch m in
      let m, repaired = Cosa_decode.repair arch m in
      if Mapping.is_valid arch m then Some (m, res, repaired) else None
    | Milp.Bb.Infeasible | Milp.Bb.Unbounded | Milp.Bb.No_solution -> None
  in
  let candidates =
    match strategy with
    | Joint -> [ (true, attempt true) ]
    | Two_stage -> [ (false, attempt false) ]
    | Auto -> [ (true, attempt true); (false, attempt false) ]
  in
  (* Arbitrate between the (at most two) one-shot candidates with a single
     analytical-model evaluation each — deterministic and closed-form, not
     iterative search (see DESIGN.md fidelity notes). *)
  let scored =
    List.filter_map
      (fun (joint, outcome) ->
        match outcome with
        | Some (m, res, repaired) ->
          Some ((Model.evaluate arch m).Model.latency, (m, res, repaired, joint))
        | None -> None)
      candidates
  in
  let solve_time () = Unix.gettimeofday () -. t0 in
  match List.sort (fun (a, _) (b, _) -> compare a b) scored with
  | (_, (mapping, res, repaired, used_joint)) :: _ ->
    {
      mapping;
      objective = Cosa_objective.of_mapping ~weights arch mapping;
      solver_status = res.Milp.Bb.status;
      solve_time = solve_time ();
      nodes = res.Milp.Bb.nodes;
      repaired;
      used_joint;
    }
  | [] ->
    let mapping = trivial_mapping arch layer in
    {
      mapping;
      objective = Cosa_objective.of_mapping ~weights arch mapping;
      solver_status = Milp.Bb.No_solution;
      solve_time = solve_time ();
      nodes = 0;
      repaired = false;
      used_joint = false;
    }
