(** CoSA: one-shot DNN scheduling by constrained optimization.

    The public entry point of the library. {!schedule} formulates the
    layer/architecture pair as a MIP (Section III of the paper), solves it
    with the bundled branch-and-bound solver, and decodes the solution into
    a valid {!Mapping.t} — no iterative search, no simulation feedback. *)

type weights = Cosa_formulation.weights = { w_util : float; w_comp : float; w_traf : float }

val default_weights : weights

val calibrate : Spec.t -> weights
(** The paper's micro-benchmark procedure: weight the traffic objective by
    the architecture's cycles-per-word to cycles-per-MAC ratio so that
    [w_T * Traf] and [w_C * Comp] are commensurable (Section III-D4). *)

type objective_breakdown = Cosa_objective.t = {
  util : float;  (** Eq. 5 value (to be maximised) *)
  comp : float;  (** Eq. 6 value *)
  traf : float;  (** Eq. 11 value *)
  total : float;  (** Eq. 12 composite *)
}

type strategy =
  | Auto  (** joint MIP and two-stage decomposition, best Eq.-12 value wins *)
  | Joint  (** the paper's single joint MIP only *)
  | Two_stage  (** tiling/spatial MIP, then exact permutation sub-solve *)

type result = {
  mapping : Mapping.t;
  objective : objective_breakdown;
  solver_status : Milp.Bb.status;
  solve_time : float;  (** seconds, formulation + solve + decode *)
  nodes : int;
  repaired : bool;  (** decode needed the capacity repair pass *)
  used_joint : bool;  (** the returned mapping came from the joint MIP *)
}

val schedule :
  ?weights:weights ->
  ?strategy:strategy ->
  ?node_limit:int ->
  ?time_limit:float ->
  Spec.t ->
  Layer.t ->
  result
(** Produce a schedule in one shot. The returned mapping is always valid on
    the architecture (an all-DRAM schedule is the final fallback). Default
    [time_limit] (per MIP attempt) is 4 seconds; [Auto] runs at most two
    attempts. *)

val breakdown_of_mapping : ?weights:weights -> Spec.t -> Mapping.t -> objective_breakdown
(** Evaluate the paper's three objective terms on {e any} concrete mapping
    (used by the Fig. 8 experiment to compare schedulers in objective
    space). *)

val trivial_mapping : Spec.t -> Layer.t -> Mapping.t
(** The always-valid schedule that keeps every loop temporal at DRAM. *)
