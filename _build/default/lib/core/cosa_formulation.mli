(** The CoSA mixed-integer program (paper Section III).

    Encodes loop tiling, loop permutation, and spatial mapping of one DNN
    layer onto one architecture as a single MIP over the {!Milp} solver:

    - prime-factor allocation variables [X] (grouped by (dim, prime) —
      identical primes of a dimension are interchangeable, so we allocate
      integer {e counts} instead of one binary per occurrence; a pure
      symmetry reduction over the paper's encoding);
    - mapping-uniqueness (Eq. 3), buffer-capacity (Eq. 2) and
      spatial-resource (Eq. 4) constraints;
    - permutation-rank binaries at the NoC boundary with the traffic
      iteration indicator [Y] (Eq. 9) and its product with [X] linearised
      by McCormick inequalities (Eq. 10);
    - the utilisation (Eq. 5), compute (Eq. 6) and traffic (Eq. 11)
      objectives combined per Eq. 12. *)

type weights = { w_util : float; w_comp : float; w_traf : float }

val default_weights : weights

type group = { gdim : Dims.dim; prime : int; mult : int; logp : float }

type t = {
  lp : Milp.Lp.model;
  priority : float array;  (** branching priorities for {!Milp.Bb.solve} *)
  arch : Spec.t;
  layer : Layer.t;
  weights : weights;
  groups : group array;
  x_t : Milp.Lp.var array array;  (** [group][level]: temporal allocation count *)
  x_s : Milp.Lp.var option array array;  (** [group][level]: spatial count; [None] off spatial levels *)
  rank : Milp.Lp.var array array;  (** [dim][slot]: NoC-boundary permutation matrix *)
  y : Milp.Lp.var array array;  (** [tensor][slot]: Eq. 9 traffic-iteration indicator *)
  presence : Milp.Lp.var array;  (** [dim]: has temporal factors at the NoC boundary *)
  active : Dims.dim array;  (** dims with padded bound > 1 (rank slots exist only for these) *)
  q : Milp.Lp.var option array array;  (** [tensor][slot * 7 + dim_index]: Eq. 10 products *)
  dram_presence : Milp.Lp.var option array array;  (** [tensor][dim]: DRAM-level presence *)
  dram_y : Milp.Lp.var array array;  (** [tensor][slot]: DRAM-boundary Y' indicator *)
  dram_q : Milp.Lp.var option array array;  (** [tensor][slot * 7 + dim]: DRAM products *)
  util_expr : (float * Milp.Lp.var) list;  (** Eq. 5 *)
  comp_expr : (float * Milp.Lp.var) list;  (** Eq. 6 *)
  traf_expr : (float * Milp.Lp.var) list;  (** Eq. 11 *)
}

val noc_temporal_levels : Spec.t -> int list
(** The levels whose temporal loops drive NoC traffic iterations (between
    the PE buffers and DRAM, inclusive of the NoC boundary level). *)

val build :
  ?weights:weights ->
  ?joint_permutation:bool ->
  ?noc_spatial:(Dims.dim * int) list ->
  ?symmetry_grouping:bool ->
  Spec.t ->
  Layer.t ->
  t
(** [joint_permutation] (default [true]) includes the rank / Y / traffic-
    iteration machinery in the MIP; with [false] the traffic objective
    keeps only its D and L terms and loop order is decided at decode time
    (the two-stage ablation of DESIGN.md). [noc_spatial] pins the spatial
    bound of given dims at the NoC boundary (Fig. 4 sweep). With
    [symmetry_grouping = false] the encoding reverts to one variable per
    prime-factor occurrence, as in the paper (timing ablation). *)

val mip_start : t -> Mapping.t -> float array option
(** Encode a concrete valid mapping as an assignment of every MIP variable,
    for use as {!Milp.Bb.solve}'s [warm_start]. Returns [None] when the
    mapping cannot be expressed (e.g. a spatial factor at a level whose
    fanout the formulation excluded). *)
