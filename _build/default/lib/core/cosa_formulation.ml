type weights = { w_util : float; w_comp : float; w_traf : float }

let default_weights = { w_util = 1.; w_comp = 1.; w_traf = 1. }

type group = { gdim : Dims.dim; prime : int; mult : int; logp : float }

type t = {
  lp : Milp.Lp.model;
  priority : float array;
  arch : Spec.t;
  layer : Layer.t;
  weights : weights;
  groups : group array;
  x_t : Milp.Lp.var array array;
  x_s : Milp.Lp.var option array array;
  rank : Milp.Lp.var array array;
  y : Milp.Lp.var array array;
  presence : Milp.Lp.var array;
  active : Dims.dim array;
  q : Milp.Lp.var option array array;  (* [tensor][slot * 7 + dim_index] *)
  dram_presence : Milp.Lp.var option array array;  (* [tensor][dim_index] *)
  dram_y : Milp.Lp.var array array;  (* [tensor][slot]; [||] when unused *)
  dram_q : Milp.Lp.var option array array;  (* [tensor][slot * 7 + dim_index] *)
  util_expr : (float * Milp.Lp.var) list;
  comp_expr : (float * Milp.Lp.var) list;
  traf_expr : (float * Milp.Lp.var) list;
}

let noc_temporal_levels arch =
  let lo = arch.Spec.noc_level and hi = Spec.dram_level arch in
  List.init (hi - lo + 1) (fun k -> lo + k)

let build ?(weights = default_weights) ?(joint_permutation = true) ?noc_spatial
    ?(symmetry_grouping = true) arch layer =
  let lp = Milp.Lp.create ~name:(Printf.sprintf "cosa_%s" layer.Layer.name) () in
  let nlev = Spec.level_count arch in
  let groups =
    let gs = Layer.factor_groups layer in
    let gs =
      if symmetry_grouping then gs
      else
        (* ablation: one unit-multiplicity group per prime occurrence, as in
           the paper's per-factor binary encoding *)
        List.concat_map (fun (d, p, m) -> List.init m (fun _ -> (d, p, 1))) gs
    in
    Array.of_list
      (List.map
         (fun (d, p, m) -> { gdim = d; prime = p; mult = m; logp = log (float_of_int p) })
         gs)
  in
  let ng = Array.length groups in
  let mult_f g = float_of_int g.mult in
  (* X variables: per-group per-level temporal and (on spatial levels) spatial
     allocation counts. *)
  let x_t =
    Array.init ng (fun gi ->
        Array.init nlev (fun i ->
            Milp.Lp.add_var lp ~integer:true ~lb:0. ~ub:(mult_f groups.(gi))
              (Printf.sprintf "xt_%s%d_%d" (Dims.dim_name groups.(gi).gdim) gi i)))
  in
  let x_s =
    Array.init ng (fun gi ->
        Array.init nlev (fun i ->
            if arch.Spec.levels.(i).Spec.fanout > 1
               && groups.(gi).prime <= arch.Spec.levels.(i).Spec.fanout
            then
              Some
                (Milp.Lp.add_var lp ~integer:true ~lb:0. ~ub:(mult_f groups.(gi))
                   (Printf.sprintf "xs_%s%d_%d" (Dims.dim_name groups.(gi).gdim) gi i))
            else None))
  in
  (* Eq. 3: every prime factor gets exactly one scheduling configuration. *)
  Array.iteri
    (fun gi g ->
      let terms =
        List.concat
          (List.init nlev (fun i ->
               let t = [ (1., x_t.(gi).(i)) ] in
               match x_s.(gi).(i) with Some v -> (1., v) :: t | None -> t))
      in
      Milp.Lp.add_constr lp ~name:(Printf.sprintf "conserve_g%d" gi) terms Milp.Lp.Eq
        (mult_f g))
    groups;
  (* Eq. 4: spatial resource limits. *)
  for i = 0 to nlev - 1 do
    if arch.Spec.levels.(i).Spec.fanout > 1 then begin
      let terms =
        List.concat
          (List.init ng (fun gi ->
               match x_s.(gi).(i) with
               | Some v -> [ (groups.(gi).logp, v) ]
               | None -> []))
      in
      if terms <> [] then
        Milp.Lp.add_constr lp ~name:(Printf.sprintf "spatial_l%d" i) terms Milp.Lp.Le
          (log (float_of_int arch.Spec.levels.(i).Spec.fanout))
    end
  done;
  (* optional pinning of the NoC-boundary spatial mapping (used by the
     Fig. 4 spatial-mapping sweep) *)
  (match noc_spatial with
   | None -> ()
   | Some pins ->
     let noc = arch.Spec.noc_level in
     List.iter
       (fun d ->
         let target = try List.assoc d pins with Not_found -> 1 in
         let counts = Prim.Factorize.grouped_factors target in
         Array.iteri
           (fun gi g ->
             if g.gdim = d then begin
               let want =
                 try List.assoc g.prime counts with Not_found -> 0
               in
               match x_s.(gi).(noc) with
               | Some v ->
                 Milp.Lp.add_constr lp [ (1., v) ]
                   Milp.Lp.Eq (float_of_int (min want g.mult))
               | None -> ()
             end)
           groups)
       Dims.all_dims);
  (* Eq. 2: buffer capacity per (level, tensor); B picks the stored
     tensors. The paper's A matrix drops IA's dependence on R, S, and the
     stride; our validator checks the exact sliding-window halo, so the
     capacity rows here use the model relevance (IA also depends on R, S)
     plus a log(stride^2) constant for IA — still log-linear, and decoded
     schedules then validate without needing the repair pass. The Eq. 5
     utilisation objective keeps the paper's A-matrix terms untouched. *)
  let util_expr = ref [] in
  (* IA tiles carry a sliding-window halo the A matrix ignores; charge a
     per-axis constant calibrated at a 4-wide tile: (3*stride + r) / 4.
     Exact at tile width 4, conservative for wider tiles; the rare narrow
     tiles that still overflow are caught by the decode-time repair. *)
  let halo_log filter =
    let t = 4. in
    log ((((t -. 1.) *. float_of_int layer.Layer.stride) +. float_of_int filter) /. t)
  in
  let ia_halo = Float.max 0. (halo_log layer.Layer.r) +. Float.max 0. (halo_log layer.Layer.s) in
  for cap_level = 0 to nlev - 2 do
    List.iter
      (fun v ->
        if Spec.stores arch cap_level v then begin
          let cap = Spec.capacity_words arch cap_level v in
          let terms = ref [] in
          for i = 0 to cap_level - 1 do
            Array.iteri
              (fun gi g ->
                if Dims.relevant g.gdim v then begin
                  terms := (g.logp, x_t.(gi).(i)) :: !terms;
                  match x_s.(gi).(i) with
                  | Some sv -> terms := (g.logp, sv) :: !terms
                  | None -> ()
                end)
              groups
          done;
          if !terms <> [] && cap > 0. then begin
            let rhs = log cap -. (if v = Dims.IA then ia_halo else 0.) in
            Milp.Lp.add_constr lp
              ~name:(Printf.sprintf "cap_l%d_%s" cap_level (Dims.tensor_name v))
              !terms Milp.Lp.Le (Float.max 0. rhs);
            util_expr := !terms @ !util_expr
          end
        end)
      Dims.all_tensors
  done;
  (* Eq. 6: compute objective = log of the product of all temporal factors. *)
  let comp_expr =
    List.concat
      (List.init ng (fun gi ->
           List.init nlev (fun i -> (groups.(gi).logp, x_t.(gi).(i)))))
  in
  (* Traffic objective, Eqs. 7-11. D_v: per-PE transfer size; L_v: spatial
     unicast multiplier at the NoC boundary; T_v: temporal iterations at the
     NoC boundary gated by the permutation-aware indicator Y. *)
  let noc = arch.Spec.noc_level in
  let noc_lvls = noc_temporal_levels arch in
  let traf_expr = ref [] in
  List.iter
    (fun v ->
      (* D_v (Eq. 7) *)
      for i = 0 to noc - 1 do
        Array.iteri
          (fun gi g ->
            if Dims.relevant g.gdim v then begin
              traf_expr := (g.logp, x_t.(gi).(i)) :: !traf_expr;
              match x_s.(gi).(i) with
              | Some s -> traf_expr := (g.logp, s) :: !traf_expr
              | None -> ()
            end)
          groups
      done;
      (* L_v (Eq. 8) *)
      Array.iteri
        (fun gi g ->
          if Dims.relevant g.gdim v then
            match x_s.(gi).(noc) with
            | Some s -> traf_expr := (g.logp, s) :: !traf_expr
            | None -> ())
        groups)
    Dims.all_tensors;
  (* Permutation machinery for T_v. Rank slots only cover the dimensions
     whose padded loop bound exceeds 1 (inactive dims never carry loops,
     so giving them slots would only inflate the search tree). *)
  let ndims = 7 and ntens = 3 in
  let active =
    Array.of_list (List.filter (fun d -> Layer.padded_bound layer d > 1) Dims.all_dims)
  in
  let nslots = Array.length active in
  let rank = Array.init ndims (fun _ -> [||]) in
  let y = Array.init ntens (fun _ -> [||]) in
  let presence = Array.make ndims (Milp.Lp.add_var lp ~ub:0. "presence_unused") in
  let q = Array.init ntens (fun _ -> Array.make (nslots * ndims) None) in
  let dram_presence = Array.init ntens (fun _ -> Array.make ndims None) in
  let dram_y = Array.init ntens (fun _ -> [||]) in
  let dram_q = Array.init ntens (fun _ -> Array.make (nslots * ndims) None) in
  if joint_permutation && nslots > 0 then begin
    let smax d = log (float_of_int (Layer.padded_bound layer d)) in
    (* per-dim temporal log-size at the NoC boundary levels *)
    let s_terms d =
      List.concat
        (List.init ng (fun gi ->
             if groups.(gi).gdim = d then
               List.map (fun i -> (groups.(gi).logp, x_t.(gi).(i))) noc_lvls
             else []))
    in
    Array.iter
      (fun d ->
        rank.(Dims.dim_index d) <-
          Array.init nslots (fun z ->
              Milp.Lp.add_var lp ~integer:true ~ub:1.
                (Printf.sprintf "rank_%s_%d" (Dims.dim_name d) z)))
      active;
    (* permutation matrix over active dims: one dim per slot, one slot per dim *)
    Array.iter
      (fun d ->
        Milp.Lp.add_constr lp
          (List.init nslots (fun z -> (1., rank.(Dims.dim_index d).(z))))
          Milp.Lp.Eq 1.)
      active;
    for z = 0 to nslots - 1 do
      Milp.Lp.add_constr lp
        (Array.to_list (Array.map (fun d -> (1., rank.(Dims.dim_index d).(z))) active))
        Milp.Lp.Eq 1.
    done;
    (* presence of temporal factors per dim at the NoC boundary *)
    Array.iter
      (fun d ->
        let di = Dims.dim_index d in
        presence.(di) <-
          Milp.Lp.add_var lp ~integer:true ~ub:1.
            (Printf.sprintf "pres_%s" (Dims.dim_name d));
        let count_terms =
          List.concat
            (List.init ng (fun gi ->
                 if groups.(gi).gdim = d then
                   List.map (fun i -> (1., x_t.(gi).(i))) noc_lvls
                 else []))
        in
        let total_mult =
          Array.fold_left (fun acc g -> if g.gdim = d then acc + g.mult else acc) 0 groups
        in
        if count_terms = [] || total_mult = 0 then
          Milp.Lp.add_constr lp [ (1., presence.(di)) ] Milp.Lp.Eq 0.
        else begin
          (* mult * P_d >= sum(counts): forces P_d = 1 when any factor present *)
          Milp.Lp.add_constr lp
            (((-.float_of_int total_mult), presence.(di)) :: count_terms)
            Milp.Lp.Le 0.;
          (* P_d <= sum(counts): no phantom presence *)
          Milp.Lp.add_constr lp
            ((1., presence.(di)) :: List.map (fun (c, v) -> (-.c, v)) count_terms)
            Milp.Lp.Le 0.
        end)
      active;
    (* Y (Eq. 9): slot z sees tensor-v-relevant factors at or inside z *)
    for vi = 0 to ntens - 1 do
      let v = Dims.tensor_of_index vi in
      y.(vi) <-
        Array.init nslots (fun z ->
            Milp.Lp.add_var lp ~integer:true ~ub:1.
              (Printf.sprintf "y_%s_%d" (Dims.tensor_name v) z));
      for z = 0 to nslots - 1 do
        Array.iter
          (fun d ->
            if Dims.relevant d v then
              (* Y_vz >= R_dz + P_d - 1 *)
              Milp.Lp.add_constr lp
                [ (1., y.(vi).(z));
                  (-1., rank.(Dims.dim_index d).(z));
                  (-1., presence.(Dims.dim_index d)) ]
                Milp.Lp.Ge (-1.))
          active;
        if z > 0 then
          Milp.Lp.add_constr lp
            [ (1., y.(vi).(z)); (-1., y.(vi).(z - 1)) ]
            Milp.Lp.Ge 0.
      done
    done;
    (* T_v (Eq. 10) via McCormick: Q_vzd >= S_d - Smax_d (2 - R_dz - Y_vz) *)
    for vi = 0 to ntens - 1 do
      for z = 0 to nslots - 1 do
        Array.iter
          (fun d ->
            let sm = smax d in
            let qv =
              Milp.Lp.add_var lp ~lb:0. ~ub:sm
                (Printf.sprintf "q_%d_%d_%s" vi z (Dims.dim_name d))
            in
            let terms =
              ((1., qv) :: List.map (fun (c, v') -> (-.c, v')) (s_terms d))
              @ [ ((-.sm), rank.(Dims.dim_index d).(z)); ((-.sm), y.(vi).(z)) ]
            in
            Milp.Lp.add_constr lp terms Milp.Lp.Ge (-2. *. sm);
            q.(vi).((z * ndims) + Dims.dim_index d) <- Some qv;
            traf_expr := (1., qv) :: !traf_expr)
          active
      done
    done;
    (* DRAM-boundary traffic: tensors staged through the level just below
       DRAM (the global buffer) also pay per-DRAM-refill transfers of their
       much larger staged tile. Same rank order, a second indicator set Y'
       restricted to the DRAM level, and the transfer volume scaled by the
       bandwidth ratio between the staging level and DRAM. *)
    let dram = Spec.dram_level arch in
    let staging = dram - 1 in
    let dram_scale =
      Float.max 1.
        (arch.Spec.levels.(staging).Spec.bandwidth_words
         /. arch.Spec.dram.Spec.dram_bandwidth_words)
    in
    let s_dram_terms d =
      List.concat
        (List.init ng (fun gi ->
             if groups.(gi).gdim = d then [ (groups.(gi).logp, x_t.(gi).(dram)) ] else []))
    in
    List.iter
      (fun v ->
        if Spec.stores arch staging v then begin
          let vi = Dims.tensor_index v in
          (* staged-tile size: relevant factors below the staging level *)
          for i = 0 to staging - 1 do
            Array.iteri
              (fun gi g ->
                if Dims.relevant g.gdim v then begin
                  traf_expr := (dram_scale *. g.logp, x_t.(gi).(i)) :: !traf_expr;
                  match x_s.(gi).(i) with
                  | Some sv -> traf_expr := (dram_scale *. g.logp, sv) :: !traf_expr
                  | None -> ()
                end)
              groups
          done;
          (* presence of temporal factors per dim at the DRAM level *)
          let presence_d = Array.make ndims None in
          Array.iter
            (fun d ->
              let di = Dims.dim_index d in
              let pv =
                Milp.Lp.add_var lp ~integer:true ~ub:1.
                  (Printf.sprintf "presd_%s_%d" (Dims.dim_name d) vi)
              in
              presence_d.(di) <- Some pv;
              dram_presence.(vi).(di) <- Some pv;
              let count_terms =
                List.concat
                  (List.init ng (fun gi ->
                       if groups.(gi).gdim = d then [ (1., x_t.(gi).(dram)) ] else []))
              in
              let total_mult =
                Array.fold_left
                  (fun acc g -> if g.gdim = d then acc + g.mult else acc)
                  0 groups
              in
              if count_terms = [] || total_mult = 0 then
                Milp.Lp.add_constr lp [ (1., pv) ] Milp.Lp.Eq 0.
              else begin
                Milp.Lp.add_constr lp
                  (((-.float_of_int total_mult), pv) :: count_terms)
                  Milp.Lp.Le 0.;
                Milp.Lp.add_constr lp
                  ((1., pv) :: List.map (fun (c, v') -> (-.c, v')) count_terms)
                  Milp.Lp.Le 0.
              end)
            active;
          (* Y' over the shared rank order, DRAM level only *)
          let y' =
            Array.init nslots (fun z ->
                Milp.Lp.add_var lp ~integer:true ~ub:1.
                  (Printf.sprintf "yd_%s_%d" (Dims.tensor_name v) z))
          in
          dram_y.(vi) <- y';
          for z = 0 to nslots - 1 do
            Array.iter
              (fun d ->
                if Dims.relevant d v then
                  match presence_d.(Dims.dim_index d) with
                  | Some pv ->
                    Milp.Lp.add_constr lp
                      [ (1., y'.(z)); (-1., rank.(Dims.dim_index d).(z)); (-1., pv) ]
                      Milp.Lp.Ge (-1.)
                  | None -> ())
              active;
            if z > 0 then
              Milp.Lp.add_constr lp
                [ (1., y'.(z)); (-1., y'.(z - 1)) ]
                Milp.Lp.Ge 0.
          done;
          (* McCormick products against the DRAM-level per-dim sizes *)
          for z = 0 to nslots - 1 do
            Array.iter
              (fun d ->
                let sm = smax d in
                let qv =
                  Milp.Lp.add_var lp ~lb:0. ~ub:sm
                    (Printf.sprintf "qd_%d_%d_%s" vi z (Dims.dim_name d))
                in
                let terms =
                  ((1., qv) :: List.map (fun (c, v') -> (-.c, v')) (s_dram_terms d))
                  @ [ ((-.sm), rank.(Dims.dim_index d).(z)); ((-.sm), y'.(z)) ]
                in
                Milp.Lp.add_constr lp terms Milp.Lp.Ge (-2. *. sm);
                dram_q.(vi).((z * ndims) + Dims.dim_index d) <- Some qv;
                traf_expr := (dram_scale, qv) :: !traf_expr)
              active
          done
        end)
      Dims.all_tensors
  end
  else begin
    (* two-stage ablation: traffic iterations approximated by all NoC-level
       temporal factors; permutation (and hence the DRAM reuse term) is
       decided at decode time against the full Eq.-12 evaluator. *)
    List.iter
      (fun _v ->
        List.iter
          (fun i ->
            Array.iteri (fun gi g -> traf_expr := (g.logp, x_t.(gi).(i)) :: !traf_expr) groups)
          noc_lvls)
      Dims.all_tensors
  end;
  (* Eq. 12: the composite objective. *)
  let objective =
    List.map (fun (c, v) -> (-.weights.w_util *. c, v)) !util_expr
    @ List.map (fun (c, v) -> (weights.w_comp *. c, v)) comp_expr
    @ List.map (fun (c, v) -> (weights.w_traf *. c, v)) !traf_expr
  in
  Milp.Lp.set_objective lp `Minimize objective;
  (* branching priorities: allocation counts first, then presence, then the
     permutation machinery *)
  let priority = Array.make (Milp.Lp.num_vars lp) 0. in
  let set p v = priority.(Milp.Lp.var_index v) <- p in
  Array.iter (fun row -> Array.iter (set 10.) row) x_t;
  Array.iter (fun row -> Array.iter (function Some v -> set 10. v | None -> ()) row) x_s;
  Array.iter (set 5.) presence;
  Array.iter (fun row -> Array.iter (set 2.) row) rank;
  Array.iter (fun row -> Array.iter (set 1.) row) y;
  {
    lp;
    priority;
    active;
    q;
    dram_presence;
    dram_y;
    dram_q;
    arch;
    layer;
    weights;
    groups;
    x_t;
    x_s;
    rank;
    y;
    presence;
    util_expr = !util_expr;
    comp_expr;
    traf_expr = !traf_expr;
  }

(* Encode a concrete mapping into the variable space, for MIP warm starts. *)
let mip_start (f : t) (m : Mapping.t) =
  let nv = Milp.Lp.num_vars f.lp in
  let x = Array.make nv 0. in
  let set var v = x.(Milp.Lp.var_index var) <- v in
  let ok = ref true in
  let nlev = Spec.level_count f.arch in
  let ng = Array.length f.groups in
  (* prime multiplicity of p in n *)
  let mult_of p n =
    let rec go n acc = if n mod p = 0 then go (n / p) (acc + 1) else acc in
    go n 0
  in
  for i = 0 to nlev - 1 do
    let lm = m.Mapping.levels.(i) in
    let bound_of loops d =
      List.fold_left
        (fun acc (l : Mapping.loop) -> if l.Mapping.dim = d then acc * l.Mapping.bound else acc)
        1 loops
    in
    for gi = 0 to ng - 1 do
      let g = f.groups.(gi) in
      let tb = bound_of lm.Mapping.temporal g.gdim in
      set f.x_t.(gi).(i) (float_of_int (mult_of g.prime tb));
      let sb = bound_of lm.Mapping.spatial g.gdim in
      let sc = mult_of g.prime sb in
      (match f.x_s.(gi).(i) with
       | Some v -> set v (float_of_int sc)
       | None -> if sc > 0 then ok := false)
    done
  done;
  (* permutation-side variables (joint mode only) *)
  let nslots = if Array.length f.active = 0 then 0 else Array.length f.rank.(Dims.dim_index f.active.(0)) in
  if nslots > 0 then begin
    let noc_lvls = noc_temporal_levels f.arch in
    let present d =
      List.exists
        (fun i ->
          List.exists
            (fun (l : Mapping.loop) -> l.Mapping.dim = d && l.Mapping.bound > 1)
            m.Mapping.levels.(i).Mapping.temporal)
        noc_lvls
    in
    Array.iter
      (fun d -> if present d then set f.presence.(Dims.dim_index d) 1.)
      f.active;
    (* dim order at the NoC boundary, outermost first (levels high to low) *)
    let order =
      let seen = Hashtbl.create 8 in
      List.concat_map
        (fun i ->
          List.filter_map
            (fun (l : Mapping.loop) ->
              if Hashtbl.mem seen l.Mapping.dim then None
              else begin
                Hashtbl.add seen l.Mapping.dim ();
                Some l.Mapping.dim
              end)
            m.Mapping.levels.(i).Mapping.temporal)
        (List.rev noc_lvls)
    in
    (* outermost dim gets the highest slot; absent active dims fill the rest *)
    let absent = List.filter (fun d -> not (List.mem d order)) (Array.to_list f.active) in
    let order = List.filter (fun d -> Array.mem d f.active) order in
    let full = order @ absent in
    let slot_of = Hashtbl.create 8 in
    List.iteri (fun k d -> Hashtbl.replace slot_of d (nslots - 1 - k)) full;
    Array.iter
      (fun d ->
        match Hashtbl.find_opt slot_of d with
        | Some z when z >= 0 && z < nslots -> set f.rank.(Dims.dim_index d).(z) 1.
        | Some _ | None -> ok := false)
      f.active;
    (* Y per Eq. 9, then Q at its lower envelope *)
    let dim_at_slot z =
      Array.fold_left
        (fun acc d -> match Hashtbl.find_opt slot_of d with
           | Some z' when z' = z -> Some d
           | _ -> acc)
        None f.active
    in
    let s_value d =
      List.fold_left
        (fun acc i ->
          List.fold_left
            (fun a (l : Mapping.loop) ->
              if l.Mapping.dim = d then a +. log (float_of_int l.Mapping.bound) else a)
            acc m.Mapping.levels.(i).Mapping.temporal)
        0. noc_lvls
    in
    List.iteri
      (fun vi v ->
        let seen_rel = ref false in
        for z = 0 to nslots - 1 do
          (match dim_at_slot z with
           | Some d when present d && Dims.relevant d v -> seen_rel := true
           | Some _ | None -> ());
          if !seen_rel then set f.y.(vi).(z) 1.;
          (match dim_at_slot z with
           | Some d ->
             (match f.q.(vi).((z * 7) + Dims.dim_index d) with
              | Some qv -> if !seen_rel then set qv (s_value d)
              | None -> ())
           | None -> ())
        done)
      Dims.all_tensors;
    (* DRAM-boundary indicator set, mirroring the Y/Q fill above but
       restricted to the DRAM level *)
    let dram = Spec.dram_level f.arch in
    let present_dram d =
      List.exists
        (fun (l : Mapping.loop) -> l.Mapping.dim = d && l.Mapping.bound > 1)
        m.Mapping.levels.(dram).Mapping.temporal
    in
    let s_dram_value d =
      List.fold_left
        (fun a (l : Mapping.loop) ->
          if l.Mapping.dim = d then a +. log (float_of_int l.Mapping.bound) else a)
        0. m.Mapping.levels.(dram).Mapping.temporal
    in
    List.iteri
      (fun vi v ->
        if Array.length f.dram_y.(vi) > 0 then begin
          Array.iter
            (fun d ->
              match f.dram_presence.(vi).(Dims.dim_index d) with
              | Some pv -> if present_dram d then set pv 1.
              | None -> ())
            f.active;
          let seen_rel = ref false in
          for z = 0 to nslots - 1 do
            (match dim_at_slot z with
             | Some d when present_dram d && Dims.relevant d v -> seen_rel := true
             | Some _ | None -> ());
            if !seen_rel then set f.dram_y.(vi).(z) 1.;
            (match dim_at_slot z with
             | Some d ->
               (match f.dram_q.(vi).((z * 7) + Dims.dim_index d) with
                | Some qv -> if !seen_rel then set qv (s_dram_value d)
                | None -> ())
             | None -> ())
          done
        end)
      Dims.all_tensors
  end;
  if !ok then Some x else None
