(** Section III-E extension: hyperparameter search over objective weights.

    The paper notes CoSA "can be augmented with an iterative search on the
    objective functions and their corresponding hyperparameters to
    approximate the unknown hardware performance model". This module
    implements that augmentation: a small sweep over Eq.-12 weight
    settings, each solved one-shot and scored by a user-supplied cost
    function (typically {!Model.evaluate} latency, or a measurement on real
    hardware). The inner scheduling stays deterministic and search-free;
    only a handful of weight vectors are tried. *)

type result = {
  best : Cosa.result;
  weights : Cosa.weights;  (** the winning weight vector *)
  tried : int;  (** weight vectors evaluated *)
  scores : (Cosa.weights * float) list;  (** every (weights, score) pair *)
}

val default_grid : Spec.t -> Cosa.weights list
(** The calibrated weights plus a small log-spaced sweep of the traffic and
    utilisation weights around them (9 points). *)

val tune :
  ?grid:Cosa.weights list ->
  ?score:(Spec.t -> Mapping.t -> float) ->
  ?time_limit:float ->
  Spec.t ->
  Layer.t ->
  result
(** Defaults: [grid = default_grid arch], [score] = analytical-model
    latency, [time_limit] per solve as in {!Cosa.schedule}. Lower score
    wins. *)
