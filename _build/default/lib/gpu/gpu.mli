(** The paper's Section V-D case study: CoSA's constrained-optimization
    formulation retargeted at GPU GEMM scheduling, compared against a
    TVM-style iterative tuner.

    Substitution (DESIGN.md): no physical K80 is available, so both CoSA-GPU
    and the simulated TVM tuner are evaluated against the same analytical
    GPU latency model — preserving the experiment's point: one-shot
    constrained optimization vs. 50-trial feedback search over an identical
    cost ground truth. *)

type spec = {
  gname : string;
  cores : int;  (** CUDA cores *)
  sm_count : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  shared_bytes : int;  (** shared memory per block *)
  reg_words_per_thread : int;
  gmem_words_per_cycle : float;  (** global-memory bandwidth *)
  l2_bytes : int;
}

val k80 : spec

type gemm = { m : int; n : int; k : int }

val gemm_of_layer : Layer.t -> gemm
(** im2col lowering: [m = K_out], [n = P*Q*N], [k = C*R*S]. *)

type tiling = {
  block_m : int;  (** thread-block tile *)
  block_n : int;
  block_k : int;  (** shared-memory K chunk *)
  thread_m : int;  (** per-thread register tile *)
  thread_n : int;
}

val valid : spec -> gemm -> tiling -> bool
(** Thread-count, shared-memory, and register-file constraints; the paper
    notes violating these yields invalid CUDA kernels. *)

val latency : spec -> gemm -> tiling -> float
(** Analytical latency (cycles): max of compute (occupancy-scaled core
    throughput) and global-memory traffic time. [infinity] for invalid
    tilings. *)

type result = { tiling : tiling; latency : float; solve_time : float; evaluations : int }

val cosa_schedule : spec -> gemm -> result
(** One-shot MIP: prime factors of M and N split across register, block,
    and grid levels; K split into the shared-memory chunk; log-linear
    objective maximising thread parallelism and block-tile reuse under the
    hardware constraints. *)

val tvm_search : ?trials:int -> Prim.Rng.t -> spec -> gemm -> result
(** TVM XGBoost-tuner stand-in: [trials] (default 50) iterations of
    divisor-sampled candidates with greedy neighbourhood refinement around
    the incumbent, each "measured" on the analytical model. *)
