(** Spatial-accelerator architecture description.

    An architecture is a linear hierarchy of memory levels, innermost
    (level 0) to outermost (DRAM), as in Timeloop. Sibling per-PE buffers
    (accumulation / weight / input) occupy consecutive levels and bypass
    the tensors they do not store — the paper's constant matrix [B]
    (Table IV). Levels with [fanout > 1] are spatial levels: loop factors
    mapped spatially there run on parallel instances (MACs within a PE,
    PEs across the NoC). *)

type level = {
  lname : string;
  capacity_bytes : int;  (** per instance; [max_int] for DRAM *)
  stores : Dims.tensor list;  (** row of the constant matrix B *)
  fanout : int;  (** spatial resources S_I available at this level *)
  bandwidth_words : float;  (** words/cycle between this level and its child *)
  energy_pj : float;  (** energy per word access *)
}

type noc = {
  mesh_x : int;
  mesh_y : int;
  flit_bits : int;
  router_latency : int;  (** cycles per hop through a router *)
  link_latency : int;  (** cycles per inter-router link *)
  multicast : bool;
  queue_depth : int;  (** wormhole input-queue depth in flits *)
  hop_energy_pj : float;  (** per flit per hop *)
}

type dram = {
  banks : int;
  row_bytes : int;
  t_row_hit : int;  (** cycles for a burst hitting the open row *)
  t_row_miss : int;  (** cycles including precharge + activate *)
  burst_bytes : int;
  dram_bandwidth_words : float;  (** words/cycle toward the global buffer *)
}

type t = {
  aname : string;
  levels : level array;  (** index 0 = innermost *)
  noc_level : int;  (** level whose fanout is the PE array (NoC boundary) *)
  mac_level : int;  (** level whose fanout is the per-PE MAC array *)
  noc : noc;
  dram : dram;
  mac_energy_pj : float;
  precision_bits : Dims.tensor -> int;
}

val level_count : t -> int
val dram_level : t -> int
(** Index of the outermost (DRAM) level. *)

val stores : t -> int -> Dims.tensor -> bool
(** [stores arch i v]: the B matrix. *)

val capacity_words : t -> int -> Dims.tensor -> float
(** Capacity of level [i] in elements of tensor [v], after dividing shared
    buffers evenly among the tensors they store. [infinity] for DRAM. *)

val num_pes : t -> int

val key : t -> string
(** Canonical single-line content key over every scheduling-relevant field
    (levels, NoC, DRAM, energies, precisions — floats in hex), with the
    display [aname] excluded. Equal keys mean interchangeable architectures;
    used for schedule-cache fingerprints. *)

val baseline : t
(** Table V: 4x4 mesh of PEs; 64 MACs, 64 B registers, 3 KB accumulation
    buffer, 32 KB weight buffer, 8 KB input buffer per PE; 128 KB global
    buffer; wormhole X-Y mesh with multicast; 8-bit weights/inputs, 24-bit
    partial sums. *)

val pe64 : t
(** Fig 9a variant: 8x8 PE array with doubled on-chip and DRAM bandwidth. *)

val big_sram : t
(** Fig 9b variant: local buffers doubled, global buffer x8. *)

val edge : t
(** Edge-class variant: 2x2 PE array, halved local buffers, quarter global
    buffer, half DRAM bandwidth. *)

val variants : (string * t) list

val to_string : t -> string
