type level = {
  lname : string;
  capacity_bytes : int;
  stores : Dims.tensor list;
  fanout : int;
  bandwidth_words : float;
  energy_pj : float;
}

type noc = {
  mesh_x : int;
  mesh_y : int;
  flit_bits : int;
  router_latency : int;
  link_latency : int;
  multicast : bool;
  queue_depth : int;
  hop_energy_pj : float;
}

type dram = {
  banks : int;
  row_bytes : int;
  t_row_hit : int;
  t_row_miss : int;
  burst_bytes : int;
  dram_bandwidth_words : float;
}

type t = {
  aname : string;
  levels : level array;
  noc_level : int;
  mac_level : int;
  noc : noc;
  dram : dram;
  mac_energy_pj : float;
  precision_bits : Dims.tensor -> int;
}

let level_count t = Array.length t.levels
let dram_level t = Array.length t.levels - 1

let stores t i v = List.mem v t.levels.(i).stores

let capacity_words t i v =
  if i = dram_level t then infinity
  else if not (stores t i v) then 0.
  else
    let lvl = t.levels.(i) in
    let share = float_of_int lvl.capacity_bytes /. float_of_int (List.length lvl.stores) in
    share *. 8. /. float_of_int (t.precision_bits v)

let num_pes t = t.levels.(t.noc_level).fanout

(* Canonical content key: every field that influences scheduling decisions,
   rendered on a single line with hex floats so the key is bit-stable. The
   display [aname] is deliberately excluded — two specs with equal keys
   produce identical schedules, so the key (not the name) is the
   architecture's contribution to schedule-cache fingerprints. *)
let key t =
  let fl = Printf.sprintf "%h" in
  let level l =
    Printf.sprintf "%s,%d,%s,%d,%s,%s" l.lname l.capacity_bytes
      (String.concat "+" (List.map Dims.tensor_name l.stores))
      l.fanout (fl l.bandwidth_words) (fl l.energy_pj)
  in
  let noc n =
    Printf.sprintf "%dx%d,%d,%d,%d,%b,%d,%s" n.mesh_x n.mesh_y n.flit_bits
      n.router_latency n.link_latency n.multicast n.queue_depth (fl n.hop_energy_pj)
  in
  let dram d =
    Printf.sprintf "%d,%d,%d,%d,%d,%s" d.banks d.row_bytes d.t_row_hit d.t_row_miss
      d.burst_bytes (fl d.dram_bandwidth_words)
  in
  Printf.sprintf "levels=%s;noc_level=%d;mac_level=%d;noc=%s;dram=%s;mac=%s;bits=%s"
    (String.concat "/" (Array.to_list (Array.map level t.levels)))
    t.noc_level t.mac_level (noc t.noc) (dram t.dram) (fl t.mac_energy_pj)
    (String.concat ","
       (List.map
          (fun v -> Printf.sprintf "%s:%d" (Dims.tensor_name v) (t.precision_bits v))
          Dims.all_tensors))

let simba_precision = function Dims.W | Dims.IA -> 8 | Dims.OA -> 24

(* Energy-per-access values follow the relative ordering of Timeloop's
   45 nm reference table (registers << local SRAM << global SRAM << DRAM). *)
let baseline_levels =
  [|
    { lname = "Register"; capacity_bytes = 64; stores = [ Dims.W; Dims.IA; Dims.OA ];
      fanout = 64; bandwidth_words = 64.; energy_pj = 0.06 };
    { lname = "AccBuf"; capacity_bytes = 3 * 1024; stores = [ Dims.OA ];
      fanout = 1; bandwidth_words = 64.; energy_pj = 1.2 };
    { lname = "WBuf"; capacity_bytes = 32 * 1024; stores = [ Dims.W ];
      fanout = 1; bandwidth_words = 64.; energy_pj = 2.2 };
    { lname = "InputBuf"; capacity_bytes = 8 * 1024; stores = [ Dims.IA ];
      fanout = 16; bandwidth_words = 64.; energy_pj = 1.5 };
    { lname = "GlobalBuf"; capacity_bytes = 128 * 1024; stores = [ Dims.IA; Dims.OA ];
      fanout = 1; bandwidth_words = 16.; energy_pj = 6.0 };
    { lname = "DRAM"; capacity_bytes = max_int; stores = [ Dims.W; Dims.IA; Dims.OA ];
      fanout = 1; bandwidth_words = 8.; energy_pj = 200.0 };
  |]

let baseline_noc =
  { mesh_x = 4; mesh_y = 4; flit_bits = 64; router_latency = 1; link_latency = 1;
    multicast = true; queue_depth = 4; hop_energy_pj = 0.8 }

let baseline_dram =
  { banks = 8; row_bytes = 1024; t_row_hit = 20; t_row_miss = 50; burst_bytes = 64;
    dram_bandwidth_words = 8. }

let baseline =
  { aname = "simba-4x4"; levels = baseline_levels; noc_level = 3; mac_level = 0;
    noc = baseline_noc; dram = baseline_dram; mac_energy_pj = 0.3;
    precision_bits = simba_precision }

let scale_level lvl ~capacity ~bandwidth =
  { lvl with
    capacity_bytes =
      (if lvl.capacity_bytes = max_int then max_int else lvl.capacity_bytes * capacity);
    bandwidth_words = lvl.bandwidth_words *. bandwidth }

let pe64 =
  let levels = Array.map (fun l -> scale_level l ~capacity:1 ~bandwidth:2.) baseline_levels in
  levels.(3) <- { levels.(3) with fanout = 64 };
  { baseline with
    aname = "simba-8x8";
    levels;
    noc = { baseline_noc with mesh_x = 8; mesh_y = 8 };
    dram = { baseline_dram with dram_bandwidth_words = baseline_dram.dram_bandwidth_words *. 2. } }

let big_sram =
  let levels = Array.copy baseline_levels in
  levels.(1) <- scale_level levels.(1) ~capacity:2 ~bandwidth:1.;
  levels.(2) <- scale_level levels.(2) ~capacity:2 ~bandwidth:1.;
  levels.(3) <- scale_level levels.(3) ~capacity:2 ~bandwidth:1.;
  levels.(4) <- scale_level levels.(4) ~capacity:8 ~bandwidth:1.;
  { baseline with aname = "simba-bigsram"; levels }

(* Edge-class variant: a 2x2 array with halved buffers — the regime the
   paper's edge-accelerator citations target; exercises scheduling under
   tight capacity. *)
let edge =
  let levels = Array.map (fun l -> scale_level l ~capacity:1 ~bandwidth:1.) baseline_levels in
  levels.(1) <- { levels.(1) with capacity_bytes = levels.(1).capacity_bytes / 2 };
  levels.(2) <- { levels.(2) with capacity_bytes = levels.(2).capacity_bytes / 2 };
  levels.(3) <- { levels.(3) with capacity_bytes = levels.(3).capacity_bytes / 2; fanout = 4 };
  levels.(4) <- { levels.(4) with capacity_bytes = levels.(4).capacity_bytes / 4 };
  { baseline with
    aname = "simba-edge-2x2";
    levels;
    noc = { baseline_noc with mesh_x = 2; mesh_y = 2 };
    dram = { baseline_dram with dram_bandwidth_words = baseline_dram.dram_bandwidth_words /. 2. } }

let variants =
  [ ("baseline", baseline); ("pe64", pe64); ("big_sram", big_sram); ("edge", edge) ]

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s (%dx%d mesh, %d PEs)\n" t.aname t.noc.mesh_x t.noc.mesh_y (num_pes t));
  Array.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "  L%d %-10s cap=%s stores={%s} fanout=%d bw=%.0f\n" i l.lname
           (if l.capacity_bytes = max_int then "inf"
            else Printf.sprintf "%dB" l.capacity_bytes)
           (String.concat "," (List.map Dims.tensor_name l.stores))
           l.fanout l.bandwidth_words))
    t.levels;
  Buffer.contents buf
