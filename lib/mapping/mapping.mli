(** Concrete schedules: the object every scheduler produces and every
    evaluation platform consumes.

    A mapping assigns, for each memory level of an architecture, an ordered
    list of temporal loops (outermost first) and a set of spatial loops.
    The product of a dimension's bounds across all levels equals the
    layer's padded loop bound. *)

type loop = { dim : Dims.dim; bound : int }

type level_map = {
  temporal : loop list;  (** outermost first *)
  spatial : loop list;
}

type t = {
  layer : Layer.t;
  levels : level_map array;  (** one entry per architecture level, 0 = innermost *)
}

val make : Layer.t -> level_map array -> t

val dim_product : t -> upto:int -> Dims.dim -> int
(** Product of all (temporal and spatial) bounds of [dim] at levels
    strictly below [upto]. This is the tile extent of that dimension as
    seen by buffer level [upto] (Eq. 2's inner product). *)

val spatial_product : t -> int -> int
(** Product of all spatial bounds at a level. *)

val temporal_product : t -> int -> int

val tile_words : Spec.t -> t -> int -> Dims.tensor -> float
(** Exact tile footprint (elements) of a tensor held at a buffer level,
    including the input-activation sliding-window halo and stride. *)

type violation =
  | Bad_factorization of Dims.dim * int * int  (** dim, product, padded bound *)
  | Spatial_overflow of int * int * int  (** level, used, fanout *)
  | Buffer_overflow of int * Dims.tensor * float * float  (** level, tensor, words, cap *)

val validate : Spec.t -> t -> violation list
(** Empty list iff the mapping is valid on the architecture. Raises
    [Robust.Failure.Error (Invalid_input _)] when the mapping's level count
    does not match the architecture's. *)

val is_valid : Spec.t -> t -> bool

val violation_to_string : violation -> string

val total_temporal : t -> int
(** Product of every temporal bound across all levels: the per-MAC compute
    cycle count under a perfectly-utilised pipeline. *)

val pe_count_used : Spec.t -> t -> int
(** Spatial product at the NoC level (PEs actually occupied). *)

val to_loop_nest : Spec.t -> t -> string
(** Listing-1-style rendering of the schedule. *)

val fingerprint : t -> string
(** Canonical string for deduplication in search-based mappers. *)
