let dim_of_name = function
  | "R" -> Some Dims.R
  | "S" -> Some Dims.S
  | "P" -> Some Dims.P
  | "Q" -> Some Dims.Q
  | "C" -> Some Dims.C
  | "K" -> Some Dims.K
  | "N" -> Some Dims.N
  | _ -> None

let loops_to_string loops =
  String.concat ","
    (List.map
       (fun (l : Mapping.loop) ->
         Printf.sprintf "%s:%d" (Dims.dim_name l.Mapping.dim) l.Mapping.bound)
       loops)

let to_string (m : Mapping.t) =
  let buf = Buffer.create 512 in
  let l = m.Mapping.layer in
  Buffer.add_string buf
    (Printf.sprintf "layer %s r=%d s=%d p=%d q=%d c=%d k=%d n=%d stride=%d\n"
       l.Layer.name l.Layer.r l.Layer.s l.Layer.p l.Layer.q l.Layer.c l.Layer.k l.Layer.n
       l.Layer.stride);
  Array.iteri
    (fun i lm ->
      Buffer.add_string buf (Printf.sprintf "level %d" i);
      if lm.Mapping.temporal <> [] then
        Buffer.add_string buf (" temporal " ^ loops_to_string lm.Mapping.temporal);
      if lm.Mapping.spatial <> [] then
        Buffer.add_string buf (" spatial " ^ loops_to_string lm.Mapping.spatial);
      Buffer.add_char buf '\n')
    m.Mapping.levels;
  Buffer.contents buf

let parse_loops s =
  if String.trim s = "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest ->
        (match String.split_on_char ':' (String.trim part) with
         | [ dname; bound ] ->
           (match (dim_of_name dname, int_of_string_opt bound) with
            | Some dim, Some b when b > 0 ->
              go ({ Mapping.dim; bound = b } :: acc) rest
            | Some _, Some b -> Error (Printf.sprintf "non-positive bound %d" b)
            | None, _ -> Error (Printf.sprintf "unknown dimension %S" dname)
            | Some _, None -> Error (Printf.sprintf "bad bound in %S" part))
         | _ -> Error (Printf.sprintf "malformed loop %S" part))
    in
    go [] parts

let parse_kv key s =
  let prefix = key ^ "=" in
  if String.length s > String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then int_of_string_opt (String.sub s (String.length prefix)
                            (String.length s - String.length prefix))
  else None

let ( let* ) r f = Result.bind r f

let parse_layer_line line =
  match String.split_on_char ' ' line with
  | "layer" :: name :: kvs ->
    let find key =
      match List.find_map (parse_kv key) kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing %s= in layer line" key)
    in
    let* r = find "r" in
    let* s = find "s" in
    let* p = find "p" in
    let* q = find "q" in
    let* c = find "c" in
    let* k = find "k" in
    let* n = find "n" in
    let* stride = find "stride" in
    (try Ok (Layer.create ~name ~stride ~r ~s ~p ~q ~c ~k ~n ())
     with Invalid_argument msg -> Error msg)
  | _ -> Error "first line must start with 'layer <name> ...'"

(* split "temporal A spatial B" into its two optional clauses *)
let parse_level_clauses rest =
  let words = List.filter (( <> ) "") (String.split_on_char ' ' rest) in
  let rec go mode t sp = function
    | [] -> Ok (String.concat " " (List.rev t), String.concat " " (List.rev sp))
    | "temporal" :: more -> go `T t sp more
    | "spatial" :: more -> go `S t sp more
    | w :: more ->
      (match mode with
       | `T -> go mode (w :: t) sp more
       | `S -> go mode t (w :: sp) more
       | `None -> Error (Printf.sprintf "unexpected token %S in level line" w))
  in
  go `None [] [] words

let of_string text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty input"
  | layer_line :: level_lines ->
    let* layer = parse_layer_line (String.trim layer_line) in
    let rec parse_levels idx acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let line = String.trim line in
        (match String.split_on_char ' ' line with
         | "level" :: num :: _ ->
           (match int_of_string_opt num with
            | Some i when i = idx ->
              let prefix = Printf.sprintf "level %d" i in
              let clause =
                String.sub line (String.length prefix)
                  (String.length line - String.length prefix)
              in
              let* t_str, s_str = parse_level_clauses clause in
              let* temporal = parse_loops t_str in
              let* spatial = parse_loops s_str in
              parse_levels (idx + 1) ({ Mapping.temporal; spatial } :: acc) rest
            | Some i -> Error (Printf.sprintf "level %d out of order (expected %d)" i idx)
            | None -> Error (Printf.sprintf "bad level number in %S" line))
         | _ -> Error (Printf.sprintf "expected 'level <n> ...', got %S" line))
    in
    let* levels = parse_levels 0 [] level_lines in
    if levels = [] then Error "no levels"
    else Ok (Mapping.make layer (Array.of_list levels))

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))

let load path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  | exception Sys_error e -> Error e

(* ---- provenance-carrying records ------------------------------------- *)

type meta = {
  weights : (float * float * float) option;
  strategy : string;
  source : string;
  verdict : string;
  objective : (float * float * float * float) option;
  solve_time : float;
}

let default_meta =
  { weights = None; strategy = ""; source = ""; verdict = ""; objective = None;
    solve_time = 0. }

(* Floats are rendered in C99 hex notation ("%h") and parsed back with
   [float_of_string], which round-trips every finite double bit-exactly —
   a schedule cache must reproduce objective values, not approximate
   them. *)
let fl = Printf.sprintf "%h"

let meta_to_string m =
  let buf = Buffer.create 256 in
  (match m.weights with
   | Some (u, c, t) ->
     Buffer.add_string buf (Printf.sprintf "@weights %s %s %s\n" (fl u) (fl c) (fl t))
   | None -> ());
  if m.strategy <> "" then Buffer.add_string buf ("@strategy " ^ m.strategy ^ "\n");
  if m.source <> "" then Buffer.add_string buf ("@source " ^ m.source ^ "\n");
  if m.verdict <> "" then Buffer.add_string buf ("@certification " ^ m.verdict ^ "\n");
  (match m.objective with
   | Some (u, c, t, total) ->
     Buffer.add_string buf
       (Printf.sprintf "@objective %s %s %s %s\n" (fl u) (fl c) (fl t) (fl total))
   | None -> ());
  if m.solve_time <> 0. then
    Buffer.add_string buf ("@solve-time " ^ fl m.solve_time ^ "\n");
  Buffer.contents buf

let record_to_string meta m = meta_to_string meta ^ to_string m

let parse_floats what s k =
  let parts = List.filter (( <> ) "") (String.split_on_char ' ' s) in
  match List.map float_of_string_opt parts with
  | fs when List.for_all Option.is_some fs -> k (List.map Option.get fs)
  | _ -> Error (Printf.sprintf "bad float in @%s line" what)

let parse_meta_line meta line =
  match String.index_opt line ' ' with
  | None -> Error (Printf.sprintf "malformed metadata line %S" line)
  | Some i ->
    let key = String.sub line 1 (i - 1) in
    let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    (match key with
     | "weights" ->
       parse_floats key rest (function
         | [ u; c; t ] -> Ok { meta with weights = Some (u, c, t) }
         | _ -> Error "@weights needs three values")
     | "strategy" -> Ok { meta with strategy = rest }
     | "source" -> Ok { meta with source = rest }
     | "certification" -> Ok { meta with verdict = rest }
     | "objective" ->
       parse_floats key rest (function
         | [ u; c; t; total ] -> Ok { meta with objective = Some (u, c, t, total) }
         | _ -> Error "@objective needs four values")
     | "solve-time" ->
       parse_floats key rest (function
         | [ t ] -> Ok { meta with solve_time = t }
         | _ -> Error "@solve-time needs one value")
     | k -> Error (Printf.sprintf "unknown metadata key @%s" k))

let record_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec peel meta = function
    | line :: rest when String.trim line = "" -> peel meta rest
    | line :: rest when String.length (String.trim line) > 0 && (String.trim line).[0] = '@'
      ->
      let* meta = parse_meta_line meta (String.trim line) in
      peel meta rest
    | body ->
      let* m = of_string (String.concat "\n" body) in
      Ok (meta, m)
  in
  peel default_meta lines

let save_record path meta m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (record_to_string meta m))

let load_record path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> record_of_string (really_input_string ic (in_channel_length ic)))
  | exception Sys_error e -> Error e
