type loop = { dim : Dims.dim; bound : int }

type level_map = { temporal : loop list; spatial : loop list }

type t = { layer : Layer.t; levels : level_map array }

let make layer levels = { layer; levels }

let loops_product loops d =
  List.fold_left (fun acc l -> if l.dim = d then acc * l.bound else acc) 1 loops

let dim_product t ~upto d =
  let acc = ref 1 in
  for i = 0 to min (upto - 1) (Array.length t.levels - 1) do
    let lm = t.levels.(i) in
    acc := !acc * loops_product lm.temporal d * loops_product lm.spatial d
  done;
  !acc

let spatial_product t i =
  List.fold_left (fun acc l -> acc * l.bound) 1 t.levels.(i).spatial

let temporal_product t i =
  List.fold_left (fun acc l -> acc * l.bound) 1 t.levels.(i).temporal

(* Tile extent of tensor [v] as held by buffer level [i]: the product of its
   relevant dimension tiles below [i]. IA gets the exact sliding-window
   extent ((p-1)*stride + r per axis). *)
let tile_words arch t i v =
  let d = dim_product t ~upto:i in
  let stride = t.layer.Layer.stride in
  ignore arch;
  match v with
  | Dims.W -> float_of_int (d Dims.R * d Dims.S * d Dims.C * d Dims.K)
  | Dims.OA -> float_of_int (d Dims.P * d Dims.Q * d Dims.K * d Dims.N)
  | Dims.IA ->
    let w = ((d Dims.P - 1) * stride) + d Dims.R in
    let h = ((d Dims.Q - 1) * stride) + d Dims.S in
    float_of_int (w * h * d Dims.C * d Dims.N)

type violation =
  | Bad_factorization of Dims.dim * int * int
  | Spatial_overflow of int * int * int
  | Buffer_overflow of int * Dims.tensor * float * float

let validate arch t =
  let nlev = Array.length t.levels in
  let violations = ref [] in
  if nlev <> Spec.level_count arch then
    (* typed, not [Invalid_argument]: validate runs inside the scheduling
       pipeline, which surfaces every failure as a [Robust.Failure.t] *)
    raise
      (Robust.Failure.Error
         (Robust.Failure.Invalid_input
            "Mapping.validate: level count mismatch with architecture"));
  List.iter
    (fun d ->
      let prod = dim_product t ~upto:nlev d in
      let expect = Layer.padded_bound t.layer d in
      if prod <> expect then violations := Bad_factorization (d, prod, expect) :: !violations)
    Dims.all_dims;
  for i = 0 to nlev - 1 do
    let used = spatial_product t i in
    let fanout = arch.Spec.levels.(i).Spec.fanout in
    if used > fanout then violations := Spatial_overflow (i, used, fanout) :: !violations
  done;
  for i = 0 to nlev - 1 do
    if i <> Spec.dram_level arch then
      List.iter
        (fun v ->
          if Spec.stores arch i v then begin
            let words = tile_words arch t i v in
            let cap = Spec.capacity_words arch i v in
            if words > cap then violations := Buffer_overflow (i, v, words, cap) :: !violations
          end)
        Dims.all_tensors
  done;
  List.rev !violations

let is_valid arch t = validate arch t = []

let violation_to_string = function
  | Bad_factorization (d, prod, expect) ->
    Printf.sprintf "dim %s factors to %d, expected %d" (Dims.dim_name d) prod expect
  | Spatial_overflow (i, used, fanout) ->
    Printf.sprintf "level %d spatial %d exceeds fanout %d" i used fanout
  | Buffer_overflow (i, v, words, cap) ->
    Printf.sprintf "level %d tensor %s tile %.0f words exceeds capacity %.0f" i
      (Dims.tensor_name v) words cap

let total_temporal t =
  let acc = ref 1 in
  Array.iter (fun lm -> List.iter (fun l -> acc := !acc * l.bound) lm.temporal) t.levels;
  !acc

let pe_count_used arch t = spatial_product t arch.Spec.noc_level

let to_loop_nest arch t =
  let buf = Buffer.create 512 in
  let indent = ref 0 in
  let pad () = String.make (2 * !indent) ' ' in
  for i = Array.length t.levels - 1 downto 0 do
    let lm = t.levels.(i) in
    Buffer.add_string buf
      (Printf.sprintf "%s// %s\n" (pad ()) arch.Spec.levels.(i).Spec.lname);
    List.iter
      (fun l ->
        if l.bound > 1 then begin
          Buffer.add_string buf
            (Printf.sprintf "%sfor %s in [0:%d)\n" (pad ()) (Dims.dim_name l.dim) l.bound);
          incr indent
        end)
      lm.temporal;
    List.iter
      (fun l ->
        if l.bound > 1 then begin
          Buffer.add_string buf
            (Printf.sprintf "%sspatial_for %s in [0:%d)\n" (pad ()) (Dims.dim_name l.dim)
               l.bound);
          incr indent
        end)
      lm.spatial
  done;
  Buffer.add_string buf (Printf.sprintf "%sO[n,k,p,q] += W[k,c,r,s] * I[n,c,..]\n" (pad ()));
  Buffer.contents buf

let fingerprint t =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun i lm ->
      Buffer.add_string buf (Printf.sprintf "L%d[" i);
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf "%s%d " (Dims.dim_name l.dim) l.bound))
        lm.temporal;
      Buffer.add_string buf "|";
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf "%s%d " (Dims.dim_name l.dim) l.bound))
        lm.spatial;
      Buffer.add_string buf "]")
    t.levels;
  Buffer.contents buf
