(** Plain-text serialisation of schedules, so mappings can be saved from
    one run (e.g. `cosa_cli schedule --save`) and re-evaluated or compared
    later without re-solving.

    Format (one record per file, line-oriented):
    {v
    layer <name> r=3 s=3 p=14 q=14 c=256 k=256 n=1 stride=1
    level 0 temporal P:4,Q:4 spatial K:8
    level 1
    ...
    v} *)

val to_string : Mapping.t -> string

val of_string : string -> (Mapping.t, string) result
(** Parses {!to_string} output. Returns [Error reason] on malformed input;
    the parsed mapping is structurally checked (level indices contiguous
    from 0, bounds positive) but not validated against any architecture —
    use {!Mapping.validate} for that. *)

val save : string -> Mapping.t -> unit
(** Write to a file. Raises [Sys_error] on I/O failure. *)

val load : string -> (Mapping.t, string) result

(** {2 Provenance-carrying records}

    A record is a mapping preceded by optional [@key value] metadata lines
    describing where the schedule came from: the objective weights and
    strategy it was solved under, the degradation-ladder rung
    ([Cosa.source] rendered as text), the certification verdict, the
    objective breakdown, and the solve time. Floats are serialised as C99
    hex literals, so every finite value round-trips bit-exactly — the
    property safe cache persistence depends on.

    {v
    @weights 0x1p-1 0x1p+2 0x1.8p+1
    @strategy auto
    @source joint MIP
    @certification ok
    @objective 0x1.4p+3 0x1.1p+5 0x1.8p+4 0x1.9p+5
    @solve-time 0x1.2p-3
    layer <name> r=3 s=3 ...
    level 0 ...
    v} *)

type meta = {
  weights : (float * float * float) option;  (** w_util, w_comp, w_traf *)
  strategy : string;  (** e.g. ["auto"], ["joint"], ["two-stage"] *)
  source : string;  (** degradation-ladder rung, e.g. ["joint MIP"] *)
  verdict : string;  (** certification verdict, e.g. ["ok"] / ["failed"] *)
  objective : (float * float * float * float) option;
      (** util, comp, traf, total (Eq. 12 breakdown) *)
  solve_time : float;  (** seconds; 0 when unknown *)
}

val default_meta : meta
(** All-absent metadata ([None]/[""]/[0.]); what a bare mapping file (the
    pre-record format) parses to, so old files stay loadable. *)

val record_to_string : meta -> Mapping.t -> string

val record_of_string : string -> (meta * Mapping.t, string) result
(** Absent metadata lines leave the corresponding {!default_meta} field;
    malformed or unknown [@] lines are an [Error] (corruption must be
    detected, not silently dropped). *)

val save_record : string -> meta -> Mapping.t -> unit
val load_record : string -> (meta * Mapping.t, string) result
