type placement = { level : int; spatial : bool }

(* Build a Mapping.t from per-factor placements, with the given per-level
   dimension order (a permutation of dims; dims absent at a level are
   skipped). *)
let build arch layer placements order_of_level =
  let nlev = Spec.level_count arch in
  let temporal = Array.make nlev [] and spatial = Array.make nlev [] in
  (* accumulate per (level, dim) products *)
  let tacc = Array.init nlev (fun _ -> Array.make 7 1) in
  let sacc = Array.init nlev (fun _ -> Array.make 7 1) in
  List.iter
    (fun ((d, prime), pl) ->
      let di = Dims.dim_index d in
      if pl.spatial then sacc.(pl.level).(di) <- sacc.(pl.level).(di) * prime
      else tacc.(pl.level).(di) <- tacc.(pl.level).(di) * prime)
    placements;
  for i = 0 to nlev - 1 do
    let order = order_of_level i in
    temporal.(i) <-
      List.filter_map
        (fun d ->
          let b = tacc.(i).(Dims.dim_index d) in
          if b > 1 then Some { Mapping.dim = d; bound = b } else None)
        order;
    spatial.(i) <-
      List.filter_map
        (fun d ->
          let b = sacc.(i).(Dims.dim_index d) in
          if b > 1 then Some { Mapping.dim = d; bound = b } else None)
        Dims.all_dims
  done;
  Mapping.make layer
    (Array.init nlev (fun i -> { Mapping.temporal = temporal.(i); spatial = spatial.(i) }))

let random_order rng =
  let a = Array.of_list Dims.all_dims in
  Prim.Rng.shuffle rng a;
  Array.to_list a

let raw rng arch layer =
  let nlev = Spec.level_count arch in
  (* Uniform over the paper's full configuration space: every prime factor
     independently picks a level and a spatial/temporal column — including
     spatial columns at levels with no spatial resources, which Eq. 4 then
     rejects. This is what makes uniform sampling find so few valid
     schedules (Table VI). *)
  let placements =
    List.map
      (fun (d, prime) ->
        let level = Prim.Rng.int rng nlev in
        let spatial = Prim.Rng.bool rng in
        ((d, prime), { level; spatial }))
      (Layer.factors layer)
  in
  let orders = Array.init nlev (fun _ -> random_order rng) in
  build arch layer placements (fun i -> orders.(i))

let valid ?(max_attempts = 50) rng arch layer =
  if Robust.Fault.fire "sampler.valid" then None
  else
  let nlev = Spec.level_count arch in
  let dram = Spec.dram_level arch in
  let try_once () =
    let factors = Array.of_list (Layer.factors layer) in
    Prim.Rng.shuffle rng factors;
    let placements = ref [] in
    let spatial_room = Array.map (fun l -> l.Spec.fanout) arch.Spec.levels in
    let ok = ref true in
    Array.iter
      (fun (d, prime) ->
        if !ok then begin
          (* candidate slots, tried in random order; DRAM-temporal always fits *)
          let slots =
            List.concat_map
              (fun level ->
                let t = [ { level; spatial = false } ] in
                if arch.Spec.levels.(level).Spec.fanout >= prime * 1
                   && spatial_room.(level) >= prime
                then { level; spatial = true } :: t
                else t)
              (List.init nlev Fun.id)
          in
          let slots = Array.of_list slots in
          Prim.Rng.shuffle rng slots;
          let placed = ref false in
          Array.iter
            (fun slot ->
              if not !placed then begin
                let candidate = ((d, prime), slot) :: !placements in
                let m = build arch layer candidate (fun _ -> Dims.all_dims) in
                (* partial mapping: only capacity/fanout checks are meaningful *)
                let feasible =
                  List.for_all
                    (function
                      | Mapping.Bad_factorization _ -> true
                      | Mapping.Spatial_overflow _ | Mapping.Buffer_overflow _ -> false)
                    (Mapping.validate arch m)
                in
                if feasible then begin
                  placements := candidate;
                  if slot.spatial then
                    spatial_room.(slot.level) <- spatial_room.(slot.level) / prime;
                  placed := true
                end
              end)
            slots;
          if not !placed then
            (* capacity exhausted everywhere below: fall back to DRAM *)
            placements := ((d, prime), { level = dram; spatial = false }) :: !placements
        end)
      factors;
    let orders = Array.init nlev (fun _ -> random_order rng) in
    let m = build arch layer !placements (fun i -> orders.(i)) in
    if Mapping.is_valid arch m then Some m else None
  in
  let rec loop k = if k = 0 then None else match try_once () with Some m -> Some m | None -> loop (k - 1) in
  loop max_attempts
