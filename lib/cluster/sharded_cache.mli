(** {!Serve.Schedule_cache} sharded by fingerprint across N partitions,
    one lock per shard — thread-safe, so connection threads probe the
    cache directly instead of serializing through the solver thread.

    Placement is deterministic and content-addressed (high 32 bits of the
    fingerprint hash mod shard count): the same request always lands on
    the same shard, on every host. Persistence is per-shard into
    [dir/shard-NN] subdirectories with the usual crash-safe write
    discipline, and each shard recovers independently — a corrupted shard
    directory costs re-solves for that shard's keys only. Per-shard
    hit-rate windows are exported both as [cluster.shard.NN.hit_rate]
    gauges and through {!tier}'s per-fingerprint hit-rate hook, which is
    how admission learns per-shard rates. *)

type t

val create :
  ?dir:string -> ?tmp_sweep_age_s:float -> capacity:int -> shards:int -> unit -> t
(** Total [capacity] is split evenly (rounded up) across [shards].
    Raises [Robust.Failure.Error (Invalid_input _)] when [shards < 1] or
    [capacity < shards]. *)

val shard_count : t -> int

val shard_index : t -> Serve.Fingerprint.t -> int
(** Deterministic owner shard of a fingerprint. *)

val find :
  ?count_miss:bool ->
  t ->
  arch:Spec.t ->
  layer:Layer.t ->
  Serve.Fingerprint.t ->
  (Serve.Schedule_cache.entry * Serve.Schedule_cache.tier) option
(** Probe the owning shard under its lock. [count_miss:false] (default
    [true]) suppresses miss accounting in the shard's hit-rate window —
    for peek-style probes re-probed by an authoritative path. *)

val store : t -> Serve.Fingerprint.t -> Serve.Schedule_cache.entry -> unit

val persist : t -> int
(** Persist every shard (each under its own lock); total records written. *)

val stats : t -> Serve.Schedule_cache.stats
(** Aggregated across shards (a fresh record, not shared state). *)

val shard_stats : t -> int -> Serve.Schedule_cache.stats
(** Snapshot of one shard's counters. *)

val hit_rate : t -> float
val shard_hit_rate : t -> int -> float

val stats_json : t -> string
(** Per-shard counters and hit rates as a JSON array ([shard], [hits],
    [disk_hits], [misses], [disk_rejects], [evictions], [stores],
    [hit_rate]) — the ["shards"] section the cluster CLI wiring injects
    into the daemon's Stats frame. Read-only: books no misses. *)

val tier : t -> Serve.Service.cache_tier
(** The service-facing view; safe to probe from any thread. Per-
    fingerprint hit-rate queries answer from the owning shard's window. *)
