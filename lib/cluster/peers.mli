(** Health-checked warm-peer tier: a static list of peer daemons probed
    on local cache misses.

    Peers are never trusted: every returned record is re-parsed, its
    provenance meta is matched against the local request fingerprint
    (weights and strategy must name the key it will be stored under),
    it is shape-checked against the requested layer, and re-certified
    in exact arithmetic ({!Certify.Mapping_cert}) before it is served
    or stored — a lying, corrupt, or differently-configured peer
    degrades to a counted miss ([cluster.peer_rejects_cert]), never a
    wrong serve or a poisoned cache entry.

    Health: {!tick} (driven from the daemon accept loop) probes each
    peer on a fixed cadence; [eject_after] consecutive failures eject
    it, and ejected peers are re-probed under exponential backoff and
    re-admitted on the first success. Probe traffic is [cache_only], so
    peers answer from their own tier and never cascade — probe cycles
    are impossible by construction. *)

type config = {
  probe_interval_s : float;  (** health-check cadence per healthy peer *)
  probe_timeout_s : float;  (** connect + exchange budget per probe *)
  probe_budget_s : float;  (** SLO budget carried by cache probes *)
  eject_after : int;  (** consecutive failures before ejection *)
  readmit_backoff_s : float;  (** initial re-admission backoff *)
  readmit_backoff_max_s : float;
}

val default_config :
  ?probe_interval_s:float ->
  ?probe_timeout_s:float ->
  ?probe_budget_s:float ->
  ?eject_after:int ->
  ?readmit_backoff_s:float ->
  ?readmit_backoff_max_s:float ->
  unit ->
  config
(** Defaults: 2s interval, 0.5s timeout, 1s budget, eject after 3,
    backoff 1s doubling to 30s. *)

type t

val create : ?config:config -> Daemon.Client.endpoint list -> t
(** All peers start healthy and are probed on the first {!tick}. *)

val tick : t -> unit
(** Probe every peer whose next-probe time has passed (network I/O
    happens outside the internal lock). Call from the daemon's
    [housekeeping] hook. *)

val probe :
  t ->
  arch:Spec.t ->
  layer:Layer.t ->
  Serve.Fingerprint.t ->
  Serve.Schedule_cache.entry option
(** Ask healthy peers, in list order, for this layer via a [cache_only]
    request; verify any answer before returning it. Matches the daemon's
    [remote_probe] signature. Transport failures feed the health state;
    typed rejections are honest misses. *)

val healthy_endpoints : t -> Daemon.Client.endpoint list

val stats_json : t -> string
(** Per-peer health/backoff state as a JSON array
    ([endpoint], [healthy], [consec_fails], [backoff_s], [probes],
    [hits], [rejects]) — the ["peers"] section the cluster CLI wiring
    injects into the daemon's Stats frame. Read-only. *)

type stats = {
  peers : int;
  healthy : int;
  probes : int;
  hits : int;
  rejects_cert : int;
  ejections : int;
}

val stats : t -> stats
