(* The warm-peer tier: a static list of peer daemons whose caches are
   worth probing before paying for a live solve.

   Health: each peer is probed periodically (a cheap connect — a peer
   that accepts connections can answer cache probes; protocol-level
   failures are caught and counted per request). A peer failing
   [eject_after] consecutive times is ejected; ejected peers are re-
   probed under exponential backoff and re-admitted on the first success.
   [tick] drives all of this and is called from the daemon's accept loop,
   so health costs no extra thread.

   Trust: a peer's answer is *evidence, never authority* — exactly the
   discipline the disk tier applies to cache files. Before a returned
   record is served or stored back, [probe] re-parses it, checks its
   provenance meta against the local request fingerprint (a peer running
   a different objective config is rejected, not stored under our key),
   re-checks the layer shape, and re-certifies the mapping in exact
   arithmetic via [Certify.Mapping_cert]. A lying, corrupt, stale, or
   differently-configured peer therefore costs a counted reject
   ([cluster.peer_rejects_cert]) and degrades to an ordinary miss — it
   can never place a wrong schedule in the local cache or in a
   response.

   Probes send [cache_only] requests, which a peer answers from its own
   local tier or rejects — it never solves on our behalf and never
   cascades to *its* peers, so a probe is cheap and cycles are
   impossible. *)

let m_probes = Telemetry.Metrics.counter "cluster.peer_probes"
let m_hits = Telemetry.Metrics.counter "cluster.peer_hits"
let m_misses = Telemetry.Metrics.counter "cluster.peer_misses"
let m_rejects = Telemetry.Metrics.counter "cluster.peer_rejects_cert"
let m_ejections = Telemetry.Metrics.counter "cluster.peer_ejections"

type config = {
  probe_interval_s : float;  (* health-check cadence per healthy peer *)
  probe_timeout_s : float;  (* connect + exchange budget per probe *)
  probe_budget_s : float;  (* SLO budget carried by cache probes *)
  eject_after : int;  (* consecutive failures before ejection *)
  readmit_backoff_s : float;  (* initial re-admission backoff *)
  readmit_backoff_max_s : float;
}

let default_config ?(probe_interval_s = 2.) ?(probe_timeout_s = 0.5)
    ?(probe_budget_s = 1.) ?(eject_after = 3) ?(readmit_backoff_s = 1.)
    ?(readmit_backoff_max_s = 30.) () =
  {
    probe_interval_s;
    probe_timeout_s;
    probe_budget_s;
    eject_after;
    readmit_backoff_s;
    readmit_backoff_max_s;
  }

type peer = {
  ep : Daemon.Client.endpoint;
  mutable healthy : bool;
  mutable consec_fails : int;
  mutable next_probe : float;  (* absolute Robust.Deadline.now time *)
  mutable backoff : float;
  mutable probes : int;
  mutable hits : int;
  mutable rejects : int;
}

type stats = {
  peers : int;
  healthy : int;
  probes : int;
  hits : int;
  rejects_cert : int;
  ejections : int;
}

type t = {
  cfg : config;
  all : peer list;
  lock : Mutex.t;
  mutable ejections : int;
}

let create ?(config = default_config ()) endpoints =
  {
    cfg = config;
    all =
      List.map
        (fun ep ->
          {
            ep;
            healthy = true;
            consec_fails = 0;
            next_probe = 0.;  (* probe on the first tick *)
            backoff = config.readmit_backoff_s;
            probes = 0;
            hits = 0;
            rejects = 0;
          })
        endpoints;
    lock = Mutex.create ();
    ejections = 0;
  }

let healthy_endpoints t =
  Mutex.protect t.lock (fun () ->
      List.filter_map (fun (p : peer) -> if p.healthy then Some p.ep else None) t.all)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        peers = List.length t.all;
        healthy = List.length (List.filter (fun (p : peer) -> p.healthy) t.all);
        probes = List.fold_left (fun a (p : peer) -> a + p.probes) 0 t.all;
        hits = List.fold_left (fun a (p : peer) -> a + p.hits) 0 t.all;
        rejects_cert = List.fold_left (fun a (p : peer) -> a + p.rejects) 0 t.all;
        ejections = t.ejections;
      })

(* Per-peer health/backoff state as a JSON array — the "peers" section
   of the daemon's Stats frame. Read-only under the lock. *)
let stats_json t =
  Mutex.protect t.lock (fun () ->
      let buf = Buffer.create 256 in
      Buffer.add_char buf '[';
      List.iteri
        (fun i (p : peer) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "{\"endpoint\":\"%s\",\"healthy\":%b,\"consec_fails\":%d,\
                \"backoff_s\":%.3f,\"probes\":%d,\"hits\":%d,\"rejects\":%d}"
               (Telemetry.Trace.json_escape
                  (Daemon.Client.endpoint_to_string p.ep))
               p.healthy p.consec_fails p.backoff p.probes p.hits p.rejects))
        t.all;
      Buffer.add_char buf ']';
      Buffer.contents buf)

(* Callers hold [t.lock]. *)
let note_failure t (p : peer) now =
  p.consec_fails <- p.consec_fails + 1;
  if p.healthy && p.consec_fails >= t.cfg.eject_after then begin
    p.healthy <- false;
    p.backoff <- t.cfg.readmit_backoff_s;
    t.ejections <- t.ejections + 1;
    Telemetry.Metrics.incr m_ejections;
    Telemetry.Log.warn "cluster.peer_eject"
      [ ("endpoint", Daemon.Client.endpoint_to_string p.ep);
        ("consec_fails", string_of_int p.consec_fails) ]
  end;
  if p.healthy then p.next_probe <- now +. t.cfg.probe_interval_s
  else begin
    p.next_probe <- now +. p.backoff;
    p.backoff <- Float.min t.cfg.readmit_backoff_max_s (p.backoff *. 2.)
  end

let note_success t (p : peer) now =
  if not p.healthy then begin
    p.healthy <- true;
    Telemetry.Log.info "cluster.peer_readmit"
      [ ("endpoint", Daemon.Client.endpoint_to_string p.ep) ]
  end;
  p.consec_fails <- 0;
  p.backoff <- t.cfg.readmit_backoff_s;
  p.next_probe <- now +. t.cfg.probe_interval_s

(* Cheap liveness check: can we open a connection? *)
let check_ep cfg ep =
  match Daemon.Client.connect_ep ~timeout_s:cfg.probe_timeout_s ep with
  | Ok c ->
    Daemon.Client.close c;
    true
  | Error _ -> false

(* Health tick — called from the daemon's accept loop. Collects due
   peers under the lock, probes them outside it (network I/O must not
   hold the lock), then records outcomes. *)
let tick t =
  let now = Robust.Deadline.now () in
  let due =
    Mutex.protect t.lock (fun () -> List.filter (fun (p : peer) -> p.next_probe <= now) t.all)
  in
  List.iter
    (fun p ->
      let ok = check_ep t.cfg p.ep in
      Mutex.protect t.lock (fun () ->
          let now = Robust.Deadline.now () in
          if ok then note_success t p now else note_failure t p now))
    due

(* Verify a peer's scheduled response for [layer] against [arch] and the
   local request fingerprint [fp]. The record round-trips through
   [Mapping_io] (the peer's bytes are not trusted to parse), its
   provenance meta must name the weights/strategy of the key it will be
   stored under, the layer shape must match, and the mapping must
   re-certify in exact arithmetic.

   The meta check closes a config-skew hole: the wire request carries no
   objective config (a peer answers under its own), and the verified
   entry is stored into the local tier under [fp] — whose canonical form
   covers weights/strategy/certify. A peer calibrated differently would
   otherwise poison the local memory tier (served as-is, meta and all)
   with schedules whose meta contradicts their cache key. The record
   does not carry a certify mode, but that dimension is established
   locally: the mapping is re-certified here in exact arithmetic, which
   is at least as strong as any requested mode. *)
let meta_matches_fp fp (meta : Mapping_io.meta) =
  match meta.Mapping_io.weights with
  | None -> false  (* no provenance: cannot tie the record to our key *)
  | Some w ->
    Serve.Fingerprint.covers fp ~weights:w ~strategy:meta.Mapping_io.strategy

let verify_response ~arch ~layer ~fp (s : Daemon.Protocol.scheduled) =
  match s.Daemon.Protocol.layers with
  | [ l ] ->
    (match Mapping_io.record_of_string l.Daemon.Protocol.record with
     | Error _ -> `Reject
     | Ok (meta, mapping) ->
       if not (meta_matches_fp fp meta) then `Reject
       else if Layer.key mapping.Mapping.layer <> Layer.key layer then `Reject
       else (
         match Certify.Mapping_cert.check arch mapping with
         | Certify.Certificate.Certified ->
           (* we just certified it ourselves: the verdict is ours now *)
           `Entry
             {
               Serve.Schedule_cache.meta = { meta with Mapping_io.verdict = "ok" };
               mapping;
             }
         | Certify.Certificate.Violated _ -> `Reject
         | exception Robust.Failure.Error _ -> `Reject))
  | _ -> `Reject  (* a single-layer probe answered with anything else *)

(* The wire protocol names architectures by their [Spec.variants] key
   (what servers resolve), not the display name — recover it from the
   spec's canonical contents. *)
let variant_name arch =
  match
    List.find_opt (fun (_, a) -> Spec.key a = Spec.key arch) Spec.variants
  with
  | Some (name, _) -> name
  | None -> arch.Spec.aname

(* The daemon's [remote_probe] hook: ask healthy peers (in order) for
   this fingerprint's layer, verify, and hand back a servable entry.
   Transport failures feed the health state; typed rejections are honest
   misses. *)
let probe t ~arch ~layer (fp : Serve.Fingerprint.t) =
  let eps =
    Mutex.protect t.lock (fun () -> List.filter (fun (p : peer) -> p.healthy) t.all)
  in
  (* Propagate the originating request's trace id (hop + 1): the peer
     records the probe in its own trace/log/flight recorder under the
     same id, stitching the cross-host causal chain. Outside a request
     context (warm-up, tests) the id is 0 and the peer mints its own. *)
  let req_id, hop =
    match Telemetry.Trace.current_request () with
    | Some (id, h) -> (id, min 255 (h + 1))
    | None -> (0L, 1)
  in
  let req =
    {
      Daemon.Protocol.client = "peer";
      budget_s = t.cfg.probe_budget_s;
      arch = variant_name arch;
      target = Daemon.Protocol.Layer layer.Layer.name;
      cache_only = true;
      req_id;
      hop;
    }
  in
  let rec ask = function
    | [] -> None
    | (p : peer) :: rest ->
      Telemetry.Metrics.incr m_probes;
      Mutex.protect t.lock (fun () -> p.probes <- p.probes + 1);
      (match Daemon.Client.one_shot_ep ~timeout_s:t.cfg.probe_timeout_s p.ep req with
       | Error _ ->
         Mutex.protect t.lock (fun () ->
             note_failure t p (Robust.Deadline.now ()));
         ask rest
       | Ok (Daemon.Protocol.Rejected _) | Ok (Daemon.Protocol.Failed _)
       | Ok (Daemon.Protocol.Stats _) ->
         (* a live peer without the record: honest miss (an out-of-band
            Stats frame here would be a confused peer — same treatment) *)
         Telemetry.Metrics.incr m_misses;
         ask rest
       | Ok (Daemon.Protocol.Scheduled s) ->
         (match verify_response ~arch ~layer ~fp s with
          | `Entry entry ->
            Telemetry.Metrics.incr m_hits;
            Mutex.protect t.lock (fun () -> p.hits <- p.hits + 1);
            Some entry
          | `Reject ->
            Telemetry.Metrics.incr m_rejects;
            Mutex.protect t.lock (fun () -> p.rejects <- p.rejects + 1);
            Telemetry.Log.warn "cluster.peer_reject_cert"
              [ ("endpoint", Daemon.Client.endpoint_to_string p.ep);
                ("layer", layer.Layer.name) ];
            ask rest))
  in
  (* The span carries the ambient request id, so a cross-host probe shows
     up in the originating request's causal chain. *)
  Telemetry.Trace.with_span ~cat:"cluster" "cluster.peer_probe" (fun () -> ask eps)
