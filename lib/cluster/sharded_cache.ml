(* The schedule cache, sharded by fingerprint across N partitions with a
   lock per shard.

   The single-box daemon confines its (not thread-safe) [Schedule_cache]
   to one solver thread, which makes the cache itself the serialization
   point once traffic is mostly hits. Sharding fixes both problems at
   once: each shard is an independent [Schedule_cache] behind its own
   mutex, so (1) any thread — in particular every connection thread — may
   probe concurrently, and (2) two probes for different shards never
   contend at all.

   Placement is content-addressed and deterministic: the first 8 hex
   characters of the request fingerprint's FNV-1a hash, mod the shard
   count. The same fingerprint always lands on the same shard, on every
   host, for the life of the deployment — which is what lets tests (and
   peers) predict placement, and lets per-shard hit-rate windows feed
   admission with the rate of the partition a request will actually hit.

   Persistence is per-shard and independent: each shard owns a
   [dir/shard-NN] subdirectory with the usual crash-safe write discipline
   (pid.seq.tmp + fsync + rename) and recovers on its own at create time.
   A corrupted shard directory costs re-solves for that shard's keys
   only. *)

type shard = {
  lock : Mutex.t;
  cache : Serve.Schedule_cache.t;
  g_rate : Telemetry.Metrics.gauge;  (* cluster.shard.NN.hit_rate *)
}

type t = { shards : shard array }

let shard_dir base i = Filename.concat base (Printf.sprintf "shard-%02d" i)

let create ?dir ?tmp_sweep_age_s ~capacity ~shards () =
  if shards < 1 then
    raise (Robust.Failure.Error (Invalid_input "Sharded_cache.create: shards < 1"));
  if capacity < shards then
    raise (Robust.Failure.Error (Invalid_input "Sharded_cache.create: capacity < shards"));
  (* the shard subdirectories need the base directory to exist first *)
  (match dir with
   | Some d when not (Sys.file_exists d) ->
     (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ())
   | _ -> ());
  let per_shard = (capacity + shards - 1) / shards in
  {
    shards =
      Array.init shards (fun i ->
          {
            lock = Mutex.create ();
            cache =
              Serve.Schedule_cache.create
                ?dir:(Option.map (fun d -> shard_dir d i) dir)
                ?tmp_sweep_age_s ~capacity:per_shard ();
            g_rate =
              Telemetry.Metrics.gauge (Printf.sprintf "cluster.shard.%02d.hit_rate" i);
          });
  }

let shard_count t = Array.length t.shards

(* Deterministic content-addressed placement: high 32 bits of the
   fingerprint hash, mod shard count. *)
let shard_index t fp =
  let h = Serve.Fingerprint.hash fp in
  let v = int_of_string ("0x" ^ String.sub h 0 8) in
  v mod Array.length t.shards

let with_shard t fp f =
  let s = t.shards.(shard_index t fp) in
  Mutex.protect s.lock (fun () ->
      let r = f s.cache in
      Telemetry.Metrics.set_gauge s.g_rate (Serve.Schedule_cache.hit_rate s.cache);
      r)

let find ?(count_miss = true) t ~arch ~layer fp =
  with_shard t fp (fun c -> Serve.Schedule_cache.find ~count_miss c ~arch ~layer fp)

let store t fp entry = with_shard t fp (fun c -> Serve.Schedule_cache.store c fp entry)

let persist t =
  Array.fold_left
    (fun acc s ->
      acc + Mutex.protect s.lock (fun () -> Serve.Schedule_cache.persist s.cache))
    0 t.shards

(* Aggregated counters across shards, as a fresh (non-shared) record. *)
let stats t =
  let agg =
    {
      Serve.Schedule_cache.hits = 0;
      disk_hits = 0;
      misses = 0;
      disk_rejects = 0;
      evictions = 0;
      stores = 0;
    }
  in
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          let st = Serve.Schedule_cache.stats s.cache in
          agg.Serve.Schedule_cache.hits <-
            agg.Serve.Schedule_cache.hits + st.Serve.Schedule_cache.hits;
          agg.Serve.Schedule_cache.disk_hits <-
            agg.Serve.Schedule_cache.disk_hits + st.Serve.Schedule_cache.disk_hits;
          agg.Serve.Schedule_cache.misses <-
            agg.Serve.Schedule_cache.misses + st.Serve.Schedule_cache.misses;
          agg.Serve.Schedule_cache.disk_rejects <-
            agg.Serve.Schedule_cache.disk_rejects + st.Serve.Schedule_cache.disk_rejects;
          agg.Serve.Schedule_cache.evictions <-
            agg.Serve.Schedule_cache.evictions + st.Serve.Schedule_cache.evictions;
          agg.Serve.Schedule_cache.stores <-
            agg.Serve.Schedule_cache.stores + st.Serve.Schedule_cache.stores))
    t.shards;
  agg

let shard_stats t i =
  let s = t.shards.(i) in
  Mutex.protect s.lock (fun () ->
      let st = Serve.Schedule_cache.stats s.cache in
      { st with Serve.Schedule_cache.hits = st.Serve.Schedule_cache.hits })

let rate_of (st : Serve.Schedule_cache.stats) =
  let served = st.Serve.Schedule_cache.hits + st.Serve.Schedule_cache.disk_hits in
  let total = served + st.Serve.Schedule_cache.misses in
  if total = 0 then 0. else float_of_int served /. float_of_int total

let hit_rate t = rate_of (stats t)

let shard_hit_rate t i =
  let s = t.shards.(i) in
  Mutex.protect s.lock (fun () -> Serve.Schedule_cache.hit_rate s.cache)

(* Per-shard counters as a JSON array — the ["shards"] section the
   cluster CLI wiring injects into the daemon's Stats frame. Read-only:
   copies each shard's counters under its own lock, books nothing. *)
let stats_json t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      let st, rate =
        Mutex.protect s.lock (fun () ->
            (Serve.Schedule_cache.stats s.cache, Serve.Schedule_cache.hit_rate s.cache))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"shard\":%d,\"hits\":%d,\"disk_hits\":%d,\"misses\":%d,\"disk_rejects\":%d,\"evictions\":%d,\"stores\":%d,\"hit_rate\":%.4f}"
           i st.Serve.Schedule_cache.hits st.Serve.Schedule_cache.disk_hits
           st.Serve.Schedule_cache.misses st.Serve.Schedule_cache.disk_rejects
           st.Serve.Schedule_cache.evictions st.Serve.Schedule_cache.stores rate))
    t.shards;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* The service-facing view. Per-fingerprint hit rates come from the
   owning shard's window, so admission prices a request against the
   partition it will actually probe. *)
let tier t =
  let probe ~count_miss ~arch ~layer fp =
    match find ~count_miss t ~arch ~layer fp with
    | Some (e, Serve.Schedule_cache.Memory) -> Some (e, Serve.Service.Cache_memory)
    | Some (e, Serve.Schedule_cache.Disk) -> Some (e, Serve.Service.Cache_disk)
    | None -> None
  in
  {
    Serve.Service.tier_find = probe ~count_miss:true;
    tier_peek = probe ~count_miss:false;
    tier_store = (fun fp e -> store t fp e);
    tier_hit_rate =
      (function
       | None -> hit_rate t
       | Some fp -> shard_hit_rate t (shard_index t fp));
    tier_persist = (fun () -> persist t);
    tier_stats = (fun () -> Some (stats t));
  }
