(** Bounded LRU of schedules with optional on-disk persistence.

    The memory tier is an exact least-recently-used cache (capacity counts
    entries). The disk tier, enabled by [create ~dir], is trust-but-verify:
    a disk record is served only after its framed canonical fingerprint
    matches the request, its layer shape matches, and the mapping passes
    {!Certify.Mapping_cert} against the requested architecture in exact
    arithmetic. Unreadable, stale, colliding or uncertifiable records count
    as [disk_rejects] and behave as misses — a corrupted cache directory
    can cost a re-solve, never a crash or an invalid schedule.

    Not domain-safe: callers must confine cache traffic to one domain (the
    batch service probes before, and stores after, its solve fan-out). *)

type entry = { meta : Mapping_io.meta; mapping : Mapping.t }

type stats = {
  mutable hits : int;  (** memory hits *)
  mutable disk_hits : int;  (** verified disk records, promoted to memory *)
  mutable misses : int;  (** full misses (after any disk probe) *)
  mutable disk_rejects : int;  (** disk records rejected by framing/certification *)
  mutable evictions : int;
  mutable stores : int;
}

type t

type tier = Memory | Disk

val create : ?dir:string -> ?tmp_sweep_age_s:float -> capacity:int -> unit -> t
(** Raises [Robust.Failure.Error (Invalid_input _)] when [capacity < 1].
    [dir] is created if missing; persistence failures are silent
    (best-effort disk tier). [tmp_sweep_age_s] bounds the stale-temp-file
    sweep performed on creation: temp files younger than the threshold are
    spared (they may belong to a live writer sharing the directory). The
    default [0.] sweeps every temp file, matching historical behavior. *)

val find :
  ?count_miss:bool ->
  t ->
  arch:Spec.t ->
  layer:Layer.t ->
  Fingerprint.t ->
  (entry * tier) option
(** Memory first (promotes to most-recent), then disk with verification
    (promotes into memory). Updates {!stats}. [count_miss:false] (default
    [true]) suppresses miss accounting — for peek-style probes that will
    be re-probed on the authoritative path, so hit-rate windows see one
    miss per request, not one per probe. Hits and disk rejects always
    count. *)

val store : t -> Fingerprint.t -> entry -> unit
(** Insert as most-recent, evicting the LRU entry at capacity, and persist
    to [dir] when configured. Disk writes are crash-safe: the framed record
    goes to a writer-unique temp file, is fsynced, and is renamed into
    place, so a crash at any instant leaves either the previous record or
    the complete new one — never a truncated frame. Stale temp files from
    crashed writers are swept on {!create}. *)

val persist : t -> int
(** Rewrite every in-memory entry to [dir] (each write individually
    crash-safe) and return the number of records written; 0 without a
    [dir]. The daemon's graceful-drain hook. *)

val length : t -> int
val capacity : t -> int
val stats : t -> stats

val hit_rate : t -> float
(** Served-from-cache fraction of all {!find} calls so far, in [0;1]. *)

val lru_keys : t -> string list
(** File stems (fingerprint hashes), most recently used first — exposed for
    tests asserting eviction order. *)
