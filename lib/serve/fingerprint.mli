(** Content-addressed keys for scheduling requests.

    A fingerprint canonically identifies one [(layer shape, architecture
    contents, weights, strategy, certify mode)] request — everything
    {!Cosa.schedule}'s answer is a function of, built on the name-blind
    canonical forms {!Layer.key} and {!Spec.key}. It carries both a stable
    64-bit hash (for file names and buckets; FNV-1a, identical across OCaml
    versions and machines) and the full canonical string; {!equal} compares
    the string, so hash collisions cost a compare, never a wrong answer. *)

type t

val make :
  weights:Cosa.weights ->
  strategy:Cosa.strategy ->
  certify:Cosa.certify_mode ->
  Spec.t ->
  Layer.t ->
  t

val hash : t -> string
(** 16 hex characters; the cache's on-disk file stem. *)

val canon : t -> string
(** The full canonical request string (single line). *)

val equal : t -> t -> bool
(** Full structural equality on {!canon}. *)

val covers : t -> weights:float * float * float -> strategy:string -> bool
(** Does this fingerprint's canonical form carry exactly these objective
    weights ([w_util, w_comp, w_traf], matched bit-exactly) and this
    strategy token (as {!Cosa.strategy_to_string} renders it)? Used to
    check a record's provenance meta against the cache key it would be
    served from: a record solved under a different objective config must
    not be stored under this key. *)

val to_string : t -> string
