(** Domain-parallel batch scheduling with a certified schedule cache.

    [schedule_network] serves a whole network in one call: entries are
    deduplicated by content fingerprint (shape-equal layers share one
    solve), the {!Schedule_cache} is probed per distinct shape, misses are
    solved concurrently on a {!Pool} of OCaml 5 domains, and results are
    expanded by each shape's summed repeat count into repetition-weighted
    network totals. Per-layer failures are typed and isolated: one layer
    blowing its budget degrades that layer (or marks it failed), never the
    batch. *)

type config = {
  arch : Spec.t;
  weights : Cosa.weights;
  strategy : Cosa.strategy;
  certify : Cosa.certify_mode;
  node_limit : int;  (** per-attempt branch-and-bound node budget *)
  time_limit : float;  (** per-layer budget (seconds) *)
  deadline : Robust.Deadline.t;  (** batch-wide absolute deadline *)
  jobs : int;  (** domain-pool width; 1 = inline *)
  warm_start : bool;
      (** LP warm starting inside branch-and-bound (parent-basis dual
          simplex); on by default, off is an escape hatch for bisection *)
}

val config :
  ?weights:Cosa.weights ->
  ?strategy:Cosa.strategy ->
  ?certify:Cosa.certify_mode ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?deadline:Robust.Deadline.t ->
  ?jobs:int ->
  ?warm_start:bool ->
  Spec.t ->
  config
(** Defaults mirror {!Cosa.schedule} ([strategy Auto], [certify Warn],
    [node_limit 50_000], [time_limit 4.], no deadline, [jobs 1]); absent
    [weights] are calibrated from the architecture.

    Determinism note: results are bit-deterministic across [jobs] counts
    and runs whenever solves terminate on optimality or the node budget
    rather than a wall-clock cutoff — choose [node_limit] (deterministic)
    as the binding budget and keep [time_limit]/[deadline] as safety nets
    when reproducibility matters. *)

type origin = Cache_memory | Cache_disk | Cache_peer | Solved of Cosa.source

val origin_to_string : origin -> string

type cache_tier = {
  tier_find :
    arch:Spec.t -> layer:Layer.t -> Fingerprint.t -> (Schedule_cache.entry * origin) option;
  tier_peek :
    arch:Spec.t -> layer:Layer.t -> Fingerprint.t -> (Schedule_cache.entry * origin) option;
      (** like [tier_find], but a miss is not booked in hit-rate accounting
          (hits always are) and warm peers are never consulted — for
          speculative probes (the daemon's connection-thread fast path)
          whose misses are re-probed by the authoritative solver path *)
  tier_store : Fingerprint.t -> Schedule_cache.entry -> unit;
  tier_hit_rate : Fingerprint.t option -> float;
      (** [None] = aggregate hit rate across the tier; [Some fp] = hit rate
          of whatever partition serves this fingerprint (per-shard
          admission windows) *)
  tier_persist : unit -> int;
  tier_stats : unit -> Schedule_cache.stats option;
}
(** The service's pluggable view of where certified schedules might already
    live: a plain {!Schedule_cache}, a sharded cache with per-shard locks,
    or a composition falling through to a warm peer. Implementations own
    their locking and (for remote records) re-certification; the service
    only probes, stores, and reads stats. *)

val tier_of_cache : Schedule_cache.t -> cache_tier
(** The trivial tier over a single (not domain-safe) {!Schedule_cache}. *)

val request_fingerprint : config -> Layer.t -> Fingerprint.t
(** The base-strategy content fingerprint a request for this layer resolves
    to under this config — the key full-quality solves are stored under.
    Used to route per-shard admission statistics and to predict shard
    placement in tests. *)

type served = {
  mapping : Mapping.t;
  objective : Cosa.objective_breakdown;
  origin : origin;
  verdict : string;  (** certification verdict token: ok / skipped / failed *)
  solve_time : float;  (** this request's wall time for the shape; ~0 on hits *)
  fallback_chain : Robust.Failure.t list;  (** empty for cache hits *)
}

type layer_report = {
  layer : Layer.t;
  repeats : int;  (** summed over shape-equal entries *)
  served : (served, Robust.Failure.t) result;
  latency : float;  (** per instance, model cycles; 0 when failed *)
  energy_pj : float;
}

type report = {
  network_name : string;
  layers : layer_report list;  (** one per distinct shape, network order *)
  instances : int;
  distinct : int;
  served_from_cache : int;
  failed : int;
  total_latency : float;  (** repetition-weighted cycles *)
  total_energy_pj : float;
  solve_p50 : float;  (** per-shape serve-time percentiles (seconds) *)
  solve_p95 : float;
  warm_solves : int;
      (** LP solves served by warm-started dual simplex during this request
          (delta of the process-global [simplex.warm_solves] counter) *)
  cold_solves : int;  (** LP solves that took the cold two-phase path *)
  cache_stats : Schedule_cache.stats option;
  wall_time : float;
}

val schedule_network :
  ?cache:Schedule_cache.t ->
  ?tier:cache_tier ->
  ?rung:Robust.Ladder.rung ->
  config ->
  Network.t ->
  report
(** Never raises. With a plain [?cache], cache traffic runs on the calling
    domain only; a [?tier] (which wins over [?cache]) may be domain-safe
    and probed from any thread. The pool runs nothing but [Cosa.schedule].
    Freshly solved schedules are stored back unless their certificate
    failed.

    [rung] is the per-request degradation override used by the daemon's
    SLO-aware admission controller: it pins this request's solve strategy
    to the given ladder rung ([Joint]/[Two_stage]/[Heuristic]), leaving the
    config — and therefore the base cache key — untouched. Under any
    override the base-strategy cache key is probed first (a cached
    full-quality schedule beats a degraded solve), then the rung's own key;
    fresh degraded results are stored under the rung's key only.
    [Cache_probe] never solves: misses come back as typed
    [Robust.Failure.Deadline_exceeded] layer failures. *)

val report_to_string : report -> string

(** {2 Fused (cross-layer) network mode} *)

type fuse_mode = Fuse_off | Fuse_chains | Fuse_auto

val fuse_mode_to_string : fuse_mode -> string

type fused_report = {
  base : report;
      (** the per-layer batch report — with [Fuse_off] this is exactly what
          {!schedule_network} returns (same path, same telemetry), so
          [--fuse=off] is byte-identical to the non-fused service *)
  fusion : Fuse.Plan.network_plan option;  (** [None] iff [Fuse_off] *)
}

val schedule_network_fused :
  ?cache:Schedule_cache.t ->
  ?tier:cache_tier ->
  ?rung:Robust.Ladder.rung ->
  ?max_group:int ->
  fuse:fuse_mode ->
  config ->
  Network.t ->
  fused_report
(** Per-layer scheduling first (the unchanged {!schedule_network} path —
    per-layer cache keys and cluster content addressing are untouched),
    then the fusion planner as a purely additive second stage over the
    derived chains. [Fuse_chains] serves every certified fused group;
    [Fuse_auto] additionally demotes fusions that do not beat the
    independent baseline. Fused groups are content-addressed by
    {!Fuse.Chain.group_hash} (architecture + member shape keys). Never
    raises; a group that cannot be fused — injected fault, MIP failure, or
    certification failure — degrades to the certified per-layer answer
    with typed provenance. *)

val fused_report_to_string : fused_report -> string
