(* Fixed pool of OCaml 5 domains for solving independent layers.

   Work-stealing is a shared atomic index over an immutable item array;
   each worker claims the next unclaimed index and writes its result into
   that slot, so results always come back in input order no matter which
   domain ran what or in which order they finished — the property the
   batch determinism tests (`--jobs 1` vs `--jobs 4`) rely on.

   One task failing must not sink the batch: every task runs under a typed
   harness that converts a raised [Robust.Failure.Error] into that slot's
   [Error] (and any other exception into [Invalid_input]), leaving the
   remaining slots to complete normally. The scheduling pipeline below this
   layer keeps per-task state local (solver state, RNGs, certificates), so
   tasks are domain-safe as long as the fault-injection harness is not
   armed (its plan is process-global). *)

(* Telemetry: a tick per executed task and a queue-wait sample (batch
   start -> task claim). Recording is atomic, so the jobs=4 totals match
   the jobs=1 totals exactly — the race-freedom the telemetry tests
   assert. Each task also gets a "serve.task" span; spans carry the
   recording domain's id, so a trace shows the pool's domains side by
   side. *)
let m_tasks = Telemetry.Metrics.counter "serve.pool.tasks"

let h_queue_wait =
  Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.duration_buckets
    "serve.pool.queue_wait_s"

let wrap f x =
  match f x with
  | v -> Ok v
  | exception Robust.Failure.Error fl -> Error fl
  | exception e ->
    Error (Robust.Failure.Invalid_input ("pool task raised: " ^ Printexc.to_string e))

let run ~jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let t_batch = Robust.Deadline.now () in
    let run_task x =
      Telemetry.Metrics.incr m_tasks;
      Telemetry.Metrics.observe h_queue_wait (Robust.Deadline.now () -. t_batch);
      Telemetry.Trace.with_span ~cat:"serve" "serve.task" (fun () -> wrap f x)
    in
    let results =
      Array.make n (Error (Robust.Failure.Invalid_input "pool: task never ran"))
    in
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then
      (* inline: zero domain overhead, and the determinism baseline *)
      Array.iteri (fun i x -> results.(i) <- run_task x) items
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- run_task items.(i);
            loop ()
          end
        in
        loop ()
      in
      (* the calling domain is worker number [jobs] *)
      let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned
    end;
    Array.to_list results
  end
