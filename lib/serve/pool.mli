(** Fixed domain pool with deterministic result ordering.

    [run ~jobs f items] applies [f] to every item, using up to [jobs]
    domains (the calling domain counts as one; [jobs <= 1] runs inline).
    Results come back in input order regardless of completion order, and
    each slot is independently typed: a task that raises
    [Robust.Failure.Error f] yields [Error f] in its slot (any other
    exception becomes [Invalid_input]) without affecting sibling tasks —
    one layer blowing its deadline cannot sink the batch.

    Deadlines propagate through the closure: callers capture the
    per-request {!Robust.Deadline.t} in [f]; {!Robust.Deadline.now} and
    deadline trips are domain-safe. Do not arm the process-global
    fault-injection harness around a multi-domain run. *)

val run : jobs:int -> ('a -> 'b) -> 'a list -> ('b, Robust.Failure.t) result list
