(* Content-addressed request keys for the schedule cache.

   A fingerprint covers everything [Cosa.schedule] is a pure function of:
   the layer shape, the architecture contents, the objective weights, the
   solver strategy, and the certification mode. Time budgets are
   deliberately excluded — a cached schedule is served regardless of how
   much time the original solve was allowed, because the cached artefact is
   (re-)certified, not trusted.

   Two parts: a canonical string (the ground truth, built from
   [Layer.key]/[Spec.key] so workload and arch own their own canonical
   forms) and a stable 64-bit FNV-1a hash of it used for file names and
   table buckets. Equality always compares the full canonical string, so a
   hash collision degrades to a harmless extra compare, never to serving
   the wrong schedule. *)

type t = { hash : string; canon : string }

(* FNV-1a, fixed offset basis and prime: stable across OCaml versions and
   architectures (unlike [Hashtbl.hash]), which an on-disk cache needs. *)
let fnv1a_64 s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    s;
  Printf.sprintf "%016Lx" !h

let make ~weights ~strategy ~certify arch layer =
  let fl = Printf.sprintf "%h" in
  let canon =
    String.concat "|"
      [ "layer=" ^ Layer.key layer;
        "arch=" ^ Spec.key arch;
        Printf.sprintf "weights=%s,%s,%s" (fl weights.Cosa.w_util) (fl weights.Cosa.w_comp)
          (fl weights.Cosa.w_traf);
        "strategy=" ^ Cosa.strategy_to_string strategy;
        "certify=" ^ Cosa.certify_mode_to_string certify ]
  in
  { hash = fnv1a_64 canon; canon }

let hash t = t.hash
let canon t = t.canon
let equal a b = String.equal a.canon b.canon
let to_string t = t.hash

(* Does this fingerprint's canonical form carry exactly these objective
   weights and this strategy token? The check renders the
   "weights=…|strategy=…" segment exactly as [make] renders it (C99 hex
   floats, bit-exact) and matches it as a substring, anchored by the
   trailing "|certify=" field. Used by the warm-peer tier: a remote
   record's provenance meta must name the weights/strategy of the cache
   key it is about to be served from and stored under — a peer running a
   different objective config must not poison the local tier with
   schedules whose meta contradicts their key. *)
let covers t ~weights:(wu, wc, wt) ~strategy =
  let fl = Printf.sprintf "%h" in
  let needle =
    Printf.sprintf "|weights=%s,%s,%s|strategy=%s|certify=" (fl wu) (fl wc) (fl wt)
      strategy
  in
  let n = String.length t.canon and m = String.length needle in
  let rec at i = i + m <= n && (String.sub t.canon i m = needle || at (i + 1)) in
  at 0
