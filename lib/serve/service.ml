(* The batch scheduling service.

   [schedule_network] turns a whole-network request into the minimum amount
   of solver work: entries are deduplicated by fingerprint (via
   [Network.distinct] — shape-equal layers share one solve), the cache is
   probed for each distinct shape, and only the misses go to the domain
   pool. Cache traffic stays on the coordinating domain (the cache is not
   domain-safe); the pool only ever runs [Cosa.schedule], whose state is
   all request-local. Results are expanded by each shape's summed repeat
   count into repetition-weighted network latency/energy totals. *)

(* Telemetry: one counter tick and a solve-time sample per pool solve
   (cache hits are free and deliberately not sampled), and a "serve.batch"
   span bracketing the whole request so traces show probe / fan-out /
   store as one region per network. *)
let m_solves = Telemetry.Metrics.counter "serve.solves"

let h_solve_time =
  Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.duration_buckets
    "serve.solve_time_s"

type config = {
  arch : Spec.t;
  weights : Cosa.weights;
  strategy : Cosa.strategy;
  certify : Cosa.certify_mode;
  node_limit : int;  (* per-attempt branch-and-bound node budget *)
  time_limit : float;  (* per-layer budget, as in [Cosa.schedule] *)
  deadline : Robust.Deadline.t;  (* batch-wide absolute deadline *)
  jobs : int;
  warm_start : bool;  (* LP warm starting inside B&B (parent-basis reuse) *)
}

let config ?weights ?(strategy = Cosa.Auto) ?(certify = Cosa.Warn) ?(node_limit = 50_000)
    ?(time_limit = 4.) ?(deadline = Robust.Deadline.none) ?(jobs = 1)
    ?(warm_start = true) arch =
  {
    arch;
    weights = (match weights with Some w -> w | None -> Cosa.calibrate arch);
    strategy;
    certify;
    node_limit;
    time_limit;
    deadline;
    jobs = max 1 jobs;
    warm_start;
  }

type origin = Cache_memory | Cache_disk | Cache_peer | Solved of Cosa.source

let origin_to_string = function
  | Cache_memory -> "cache(mem)"
  | Cache_disk -> "cache(disk)"
  | Cache_peer -> "cache(peer)"
  | Solved s -> Cosa.source_to_string s

(* A cache tier is the service's pluggable view of "somewhere certified
   schedules might already live": the plain single-domain [Schedule_cache],
   a sharded cache with per-shard locks, or a composition that falls
   through to a warm peer over the network. The service only ever probes,
   stores, and reads aggregate stats — everything else (locking, sharding,
   peer health, re-certification of remote records) is the tier's
   business. *)
type cache_tier = {
  tier_find :
    arch:Spec.t -> layer:Layer.t -> Fingerprint.t -> (Schedule_cache.entry * origin) option;
  tier_peek :
    arch:Spec.t -> layer:Layer.t -> Fingerprint.t -> (Schedule_cache.entry * origin) option;
      (* like [tier_find], but a miss is not booked in the tier's hit-rate
         accounting (hits always are). For speculative probes — the
         daemon's connection-thread fast path — whose misses are re-probed
         by the authoritative solver path: counting both would deflate the
         hit rate admission prices against. Never consults warm peers. *)
  tier_store : Fingerprint.t -> Schedule_cache.entry -> unit;
  tier_hit_rate : Fingerprint.t option -> float;
      (* [None] = aggregate across the tier; [Some fp] = the hit rate of
         whatever partition serves this fingerprint (per-shard windows) *)
  tier_persist : unit -> int;
  tier_stats : unit -> Schedule_cache.stats option;
}

let tier_of_cache c =
  let probe ~count_miss ~arch ~layer fp =
    match Schedule_cache.find ~count_miss c ~arch ~layer fp with
    | Some (e, Schedule_cache.Memory) -> Some (e, Cache_memory)
    | Some (e, Schedule_cache.Disk) -> Some (e, Cache_disk)
    | None -> None
  in
  {
    tier_find = probe ~count_miss:true;
    tier_peek = probe ~count_miss:false;
    tier_store = (fun fp e -> Schedule_cache.store c fp e);
    tier_hit_rate = (fun _ -> Schedule_cache.hit_rate c);
    tier_persist = (fun () -> Schedule_cache.persist c);
    tier_stats = (fun () -> Some (Schedule_cache.stats c));
  }

type served = {
  mapping : Mapping.t;
  objective : Cosa.objective_breakdown;
  origin : origin;
  verdict : string;  (* certification verdict token: ok / skipped / failed *)
  solve_time : float;  (* this request's wall time for the shape; ~0 on hits *)
  fallback_chain : Robust.Failure.t list;  (* empty for cache hits *)
}

type layer_report = {
  layer : Layer.t;
  repeats : int;
  served : (served, Robust.Failure.t) result;
  latency : float;  (* per instance, model cycles; 0 when failed *)
  energy_pj : float;
}

type report = {
  network_name : string;
  layers : layer_report list;  (* one per distinct shape, network order *)
  instances : int;
  distinct : int;
  served_from_cache : int;
  failed : int;
  total_latency : float;  (* repetition-weighted cycles *)
  total_energy_pj : float;
  solve_p50 : float;
  solve_p95 : float;
  warm_solves : int;  (* LP solves served by dual reoptimization this request *)
  cold_solves : int;  (* LP solves that went through the cold two-phase path *)
  cache_stats : Schedule_cache.stats option;
  wall_time : float;
}

let verdict_token = function
  | Cosa.Cert_skipped -> "skipped"
  | Cosa.Cert_ok -> "ok"
  | Cosa.Cert_failed _ -> "failed"

let meta_of_result cfg (r : Cosa.result) =
  {
    Mapping_io.weights =
      Some (cfg.weights.Cosa.w_util, cfg.weights.Cosa.w_comp, cfg.weights.Cosa.w_traf);
    strategy = Cosa.strategy_to_string cfg.strategy;
    source = Cosa.source_to_string r.Cosa.source;
    verdict = verdict_token r.Cosa.certification;
    objective =
      Some
        ( r.Cosa.objective.Cosa.util, r.Cosa.objective.Cosa.comp,
          r.Cosa.objective.Cosa.traf, r.Cosa.objective.Cosa.total );
    solve_time = r.Cosa.solve_time;
  }

(* The content fingerprint a request for [layer] resolves to under this
   config's base strategy — the key full-quality solves are stored under.
   Exposed so the daemon can route per-shard admission statistics and the
   harnesses can predict shard placement. *)
let request_fingerprint cfg layer =
  Fingerprint.make ~weights:cfg.weights ~strategy:cfg.strategy ~certify:cfg.certify
    cfg.arch layer

let schedule_network_impl ?cache ?tier ?rung cfg (net : Network.t) =
  let t0 = Robust.Deadline.now () in
  let tier =
    match (tier, cache) with
    | Some t, _ -> Some t
    | None, Some c -> Some (tier_of_cache c)
    | None, None -> None
  in
  (* Per-request rung override (the daemon's admission controller): the
     selected ladder rung pins the solve strategy for this request only.
     [Cache_probe] never solves — misses come back as typed
     [Deadline_exceeded] failures, the "certified answer or nothing"
     contract a nearly-expired SLO budget buys. *)
  let strategy_eff =
    match rung with
    | None | Some Robust.Ladder.Cache_probe -> cfg.strategy
    | Some Robust.Ladder.Joint -> Cosa.Joint
    | Some Robust.Ladder.Two_stage -> Cosa.Two_stage
    | Some Robust.Ladder.Heuristic -> Cosa.Heuristic
  in
  let cache_only = rung = Some Robust.Ladder.Cache_probe in
  (* per-request warm/cold split: counters are process-global, so report
     the delta across this request (pool domains tick the same counters) *)
  let snap0 = Telemetry.Metrics.snapshot () in
  let dedup = Network.distinct net in
  (* 1. probe the cache for every distinct shape (coordinator domain).
     Under a rung override probe the base-strategy key first: serving a
     cached full-quality schedule to a degraded request is always
     acceptable (it is the same request, answered better). *)
  let probed =
    List.map
      (fun ((e : Network.entry), reps) ->
        let fp_of strategy =
          Fingerprint.make ~weights:cfg.weights ~strategy ~certify:cfg.certify
            cfg.arch e.Network.layer
        in
        let fp_base = fp_of cfg.strategy in
        let fp = if strategy_eff = cfg.strategy then fp_base else fp_of strategy_eff in
        let hit =
          Option.bind tier (fun t ->
              let find fp = t.tier_find ~arch:cfg.arch ~layer:e.Network.layer fp in
              match find fp_base with
              | Some h -> Some h
              | None when cache_only ->
                (* entries live under the key of the strategy that solved
                   them; a cache-only probe accepts an answer from any
                   rung, best first *)
                List.fold_left
                  (fun acc s ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                      let fp' = fp_of s in
                      if Fingerprint.equal fp' fp_base then None else find fp')
                  None
                  [ Cosa.Joint; Cosa.Two_stage; Cosa.Heuristic ]
              | None when not (Fingerprint.equal fp fp_base) -> find fp
              | None -> None)
        in
        (e, reps, fp, hit))
      dedup
  in
  (* 2. fan the misses out over the domain pool *)
  let misses =
    List.filter_map
      (fun (e, _, fp, hit) -> if Option.is_none hit then Some (e, fp) else None)
      probed
  in
  let solve ((e : Network.entry), _fp) =
    let t = Robust.Deadline.now () in
    let r =
      Cosa.schedule ~weights:cfg.weights ~strategy:strategy_eff
        ~node_limit:cfg.node_limit ~time_limit:cfg.time_limit ~deadline:cfg.deadline
        ~certify:cfg.certify ~warm_start:cfg.warm_start cfg.arch e.Network.layer
    in
    let dt = Robust.Deadline.now () -. t in
    Telemetry.Metrics.incr m_solves;
    Telemetry.Metrics.observe h_solve_time dt;
    (r, dt)
  in
  let solved =
    if cache_only then
      (* a cache-only probe answers from the cache or not at all *)
      List.map (fun _ -> Error Robust.Failure.Deadline_exceeded) misses
    else Pool.run ~jobs:cfg.jobs solve misses
  in
  (* 3. store fresh certified results and index them (coordinator domain) *)
  let by_canon = Hashtbl.create 32 in
  List.iter2
    (fun (_, fp) res ->
      Hashtbl.replace by_canon (Fingerprint.canon fp) res;
      match (tier, res) with
      | Some t, Ok ((r : Cosa.result), _) ->
        (* don't persist a schedule known to have failed certification *)
        (match r.Cosa.certification with
         | Cosa.Cert_failed _ -> ()
         | Cosa.Cert_skipped | Cosa.Cert_ok ->
           t.tier_store fp
             { Schedule_cache.meta = meta_of_result cfg r; mapping = r.Cosa.mapping })
      | _ -> ())
    misses solved;
  (* 4. expand by repeats into the weighted report *)
  let layers =
    List.map
      (fun ((e : Network.entry), reps, fp, hit) ->
        let served =
          match hit with
          | Some ((entry : Schedule_cache.entry), origin) ->
            Ok
              {
                mapping = entry.Schedule_cache.mapping;
                objective =
                  Cosa.breakdown_of_mapping ~weights:cfg.weights cfg.arch
                    entry.Schedule_cache.mapping;
                origin;
                verdict = entry.Schedule_cache.meta.Mapping_io.verdict;
                solve_time = 0.;
                fallback_chain = [];
              }
          | None ->
            (match Hashtbl.find_opt by_canon (Fingerprint.canon fp) with
             | Some (Ok ((r : Cosa.result), dt)) ->
               Ok
                 {
                   mapping = r.Cosa.mapping;
                   objective = r.Cosa.objective;
                   origin = Solved r.Cosa.source;
                   verdict = verdict_token r.Cosa.certification;
                   solve_time = dt;
                   fallback_chain = r.Cosa.fallback_chain;
                 }
             | Some (Error f) -> Error f
             | None -> Error (Robust.Failure.Invalid_input "service: lost solve result"))
        in
        let latency, energy_pj =
          match served with
          | Ok s ->
            let ev = Model.evaluate cfg.arch s.mapping in
            (ev.Model.latency, ev.Model.energy_pj)
          | Error _ -> (0., 0.)
        in
        { layer = e.Network.layer; repeats = reps; served; latency; energy_pj })
      probed
  in
  let sum f = List.fold_left (fun acc lr -> acc +. f lr) 0. layers in
  (* Solve-time percentiles cover live solves only: cache hits cost ~0 and
     would otherwise dilute the distribution. An all-cache-hit (or empty,
     or all-failed) request has no solve-time distribution at all, so its
     percentiles are defined as exactly 0.0 rather than left to
     quantile-of-empty behavior. *)
  let solve_times =
    List.filter_map
      (fun lr ->
        match lr.served with
        | Ok ({ origin = Solved _; _ } as s) -> Some s.solve_time
        | Ok _ | Error _ -> None)
      layers
  in
  let p50, p95 =
    match solve_times with
    | [] -> (0., 0.)
    | ts ->
      (match Prim.Stats.quantiles [ 50.; 95. ] ts with
       | [ a; b ] -> (a, b)
       | _ -> (0., 0.))
  in
  let counter_delta name =
    let snap1 = Telemetry.Metrics.snapshot () in
    max 0
      (Telemetry.Metrics.counter_value snap1 name
      - Telemetry.Metrics.counter_value snap0 name)
  in
  {
    network_name = net.Network.nname;
    layers;
    instances = Network.layer_count net;
    distinct = List.length dedup;
    served_from_cache =
      List.length (List.filter (fun (_, _, _, h) -> Option.is_some h) probed);
    failed = List.length (List.filter (fun lr -> Result.is_error lr.served) layers);
    total_latency = sum (fun lr -> float_of_int lr.repeats *. lr.latency);
    total_energy_pj = sum (fun lr -> float_of_int lr.repeats *. lr.energy_pj);
    solve_p50 = p50;
    solve_p95 = p95;
    warm_solves = counter_delta "simplex.warm_solves";
    cold_solves = counter_delta "simplex.cold_solves";
    cache_stats = Option.bind tier (fun t -> t.tier_stats ());
    wall_time = Robust.Deadline.now () -. t0;
  }

let schedule_network ?cache ?tier ?rung cfg (net : Network.t) =
  let sp = Telemetry.Trace.begin_span ~cat:"serve" "serve.batch" in
  let r = schedule_network_impl ?cache ?tier ?rung cfg net in
  Telemetry.Trace.end_span
    ~args:
      ([ ("network", net.Network.nname); ("distinct", string_of_int r.distinct);
         ("cached", string_of_int r.served_from_cache) ]
      @ match rung with
        | None -> []
        | Some ru -> [ ("rung", Robust.Ladder.to_string ru) ])
    sp;
  r

(* ---- fused (cross-layer) mode ----------------------------------------

   The fused entry point runs the unchanged per-layer path first and adds
   the fusion planner as a second stage. Nothing about stage one depends on
   the fuse mode: same cache keys, same pool fan-out, same telemetry — so
   Fuse_off is byte-identical to [schedule_network] by construction, not by
   testing discipline alone. *)

type fuse_mode = Fuse_off | Fuse_chains | Fuse_auto

let fuse_mode_to_string = function
  | Fuse_off -> "off"
  | Fuse_chains -> "chains"
  | Fuse_auto -> "auto"

type fused_report = {
  base : report;
  fusion : Fuse.Plan.network_plan option;
}

let schedule_network_fused ?cache ?tier ?rung ?max_group ~fuse cfg (net : Network.t) =
  let base = schedule_network ?cache ?tier ?rung cfg net in
  let fusion =
    match fuse with
    | Fuse_off -> None
    | Fuse_chains | Fuse_auto ->
      let mode =
        match fuse with Fuse_auto -> Fuse.Plan.Auto | _ -> Fuse.Plan.Chains
      in
      Some
        (Fuse.Plan.plan_network ~mode ?max_group ~node_limit:cfg.node_limit
           ~time_limit:cfg.time_limit ~deadline:cfg.deadline cfg.arch net)
  in
  { base; fusion }

let report_to_string r =
  let buf = Buffer.create 2048 in
  let tab =
    Prim.Texttab.create
      [ "layer"; "x"; "served by"; "cert"; "solve (s)"; "latency (cyc)"; "energy (pJ)" ]
  in
  List.iter
    (fun lr ->
      match lr.served with
      | Ok s ->
        Prim.Texttab.add_row tab
          [ lr.layer.Layer.name; string_of_int lr.repeats; origin_to_string s.origin;
            s.verdict; Printf.sprintf "%.3f" s.solve_time;
            Printf.sprintf "%.0f" lr.latency; Printf.sprintf "%.3g" lr.energy_pj ]
      | Error f ->
        Prim.Texttab.add_row tab
          [ lr.layer.Layer.name; string_of_int lr.repeats;
            "FAILED: " ^ Robust.Failure.to_string f; "-"; "-"; "-"; "-" ])
    r.layers;
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.add_string buf
    (Printf.sprintf "\nbatch %s: %d instances, %d distinct shapes, %d served from cache, %d failed\n"
       r.network_name r.instances r.distinct r.served_from_cache r.failed);
  Buffer.add_string buf
    (Printf.sprintf "total network latency: %.0f cycles\ntotal network energy: %.6g pJ\n"
       r.total_latency r.total_energy_pj);
  Buffer.add_string buf
    (Printf.sprintf "solve time p50/p95: %.3f/%.3f s\n" r.solve_p50 r.solve_p95);
  if r.warm_solves + r.cold_solves > 0 then
    Buffer.add_string buf
      (Printf.sprintf "LP solves: %d warm (dual reopt), %d cold\n" r.warm_solves
         r.cold_solves);
  (match r.cache_stats with
   | Some s ->
     Buffer.add_string buf
       (Printf.sprintf
          "cache: hits=%d disk_hits=%d misses=%d disk_rejects=%d evictions=%d stores=%d\n"
          s.Schedule_cache.hits s.Schedule_cache.disk_hits s.Schedule_cache.misses
          s.Schedule_cache.disk_rejects s.Schedule_cache.evictions s.Schedule_cache.stores)
   | None -> ());
  Buffer.add_string buf (Printf.sprintf "wall time: %.3f s\n" r.wall_time);
  Buffer.contents buf

let fused_report_to_string fr =
  match fr.fusion with
  | None -> report_to_string fr.base
  | Some plan ->
    report_to_string fr.base ^ "\n" ^ Fuse.Plan.network_plan_to_string plan
