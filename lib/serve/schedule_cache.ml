(* Bounded LRU of certified schedules, with optional on-disk persistence.

   The memory tier is an exact LRU: a hash table from canonical fingerprint
   to an intrusive doubly-linked node, list head = most recently used.
   Everything this process solved or verified lives here and is served
   as-is.

   The disk tier is trust-but-verify. A file is only evidence, never
   authority: on a disk probe the record must (1) carry the exact canonical
   fingerprint of the request — the file name is just a hash, and hashes
   can collide or files can be stale; (2) describe the same layer shape;
   and (3) pass the exact-arithmetic mapping certificate against the
   requested architecture. Anything else — unreadable file, parse error,
   key mismatch, failed certificate — counts as [disk_rejects] and falls
   through to a miss, so a corrupted cache directory can cost a re-solve
   but can never crash the service or serve an invalid schedule.

   Not domain-safe: the service performs all cache traffic on the
   coordinating domain, before and after the solve fan-out. *)

type entry = { meta : Mapping_io.meta; mapping : Mapping.t }

(* Telemetry mirrors of the per-cache [stats] record, aggregated across
   every cache instance in the process so `--metrics` sees one table. *)
let m_hit_mem = Telemetry.Metrics.counter "serve.cache.hit_mem"
let m_hit_disk = Telemetry.Metrics.counter "serve.cache.hit_disk"
let m_miss = Telemetry.Metrics.counter "serve.cache.miss"
let m_disk_reject = Telemetry.Metrics.counter "serve.cache.disk_reject"
let m_eviction = Telemetry.Metrics.counter "serve.cache.eviction"
let m_store = Telemetry.Metrics.counter "serve.cache.store"

type stats = {
  mutable hits : int;  (* memory hits *)
  mutable disk_hits : int;  (* disk probes that verified and were promoted *)
  mutable misses : int;  (* full misses, after any disk probe *)
  mutable disk_rejects : int;  (* unreadable/stale/uncertified disk records *)
  mutable evictions : int;
  mutable stores : int;
}

type node = {
  key : string;  (* Fingerprint.canon *)
  file_stem : string;  (* Fingerprint.hash *)
  mutable value : entry;
  mutable prev : node option;  (* toward head (more recent) *)
  mutable next : node option;  (* toward tail (less recent) *)
}

type t = {
  capacity : int;
  dir : string option;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  stats : stats;
}

(* Orphaned temp files are the droppings of a writer that crashed between
   opening its temp file and renaming it into place. They are never read
   back (loads go by the ".cosa" name), but a restart sweeps them so a
   crash loop cannot fill the directory. [max_age_s <= 0.] sweeps every
   temp file; a positive threshold spares young ones, protecting the
   in-flight writes of a live writer sharing the directory (two daemons,
   or a writer racing a restart). *)
let sweep_stale_tmp ?(max_age_s = 0.) dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    let now = Unix.gettimeofday () in
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".tmp" then begin
          let path = Filename.concat dir name in
          let stale =
            max_age_s <= 0.
            ||
            match Unix.stat path with
            | st -> now -. st.Unix.st_mtime >= max_age_s
            | exception Unix.Unix_error _ -> false
          in
          if stale then try Sys.remove path with Sys_error _ -> ()
        end)
      names

let create ?dir ?(tmp_sweep_age_s = 0.) ~capacity () =
  if capacity < 1 then
    raise (Robust.Failure.Error (Invalid_input "Schedule_cache.create: capacity < 1"));
  (match dir with
   | Some d ->
     if not (Sys.file_exists d) then
       (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ());
     sweep_stale_tmp ~max_age_s:tmp_sweep_age_s d
   | None -> ());
  {
    capacity;
    dir;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    stats =
      { hits = 0; disk_hits = 0; misses = 0; disk_rejects = 0; evictions = 0; stores = 0 };
  }

let length t = Hashtbl.length t.tbl
let capacity t = t.capacity
let stats t = t.stats

let hit_rate t =
  let served = t.stats.hits + t.stats.disk_hits in
  let total = served + t.stats.misses in
  if total = 0 then 0. else float_of_int served /. float_of_int total

(* ---- intrusive LRU list ---------------------------------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key;
    t.stats.evictions <- t.stats.evictions + 1;
    Telemetry.Metrics.incr m_eviction

(* Insert or refresh a memory entry (no disk traffic, no stats). *)
let insert t fp entry =
  let key = Fingerprint.canon fp in
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    n.value <- entry;
    touch t n
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    let n =
      { key; file_stem = Fingerprint.hash fp; value = entry; prev = None; next = None }
    in
    Hashtbl.add t.tbl key n;
    push_front t n

(* ---- disk tier -------------------------------------------------------- *)

let file_path dir fp = Filename.concat dir (Fingerprint.hash fp ^ ".cosa")

(* First line frames the record with the full canonical fingerprint; the
   rest is a [Mapping_io] provenance record. *)
let key_prefix = "key "

(* Crash-safe record write: the full frame goes to a writer-unique temp
   file, is flushed and fsynced, and only then renamed into place. A crash
   at any instant leaves either the old record or the new one — never a
   truncated frame for trust-but-verify to burn a reject on. The temp name
   carries the pid and a process-local sequence number so concurrent
   writers (two daemons sharing a cache directory, a writer racing a
   drain-time [persist]) can never interleave bytes in one temp file. *)
let tmp_seq = Atomic.make 0

let disk_write_raw t ~stem ~canon entry =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (stem ^ ".cosa") in
    let tmp =
      Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_seq 1)
    in
    (try
       let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
       let oc = Unix.out_channel_of_descr fd in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () ->
           output_string oc (key_prefix ^ canon ^ "\n");
           output_string oc (Mapping_io.record_to_string entry.meta entry.mapping);
           flush oc;
           Unix.fsync fd);
       Sys.rename tmp path
     with Sys_error _ | Unix.Unix_error _ ->
       (try Sys.remove tmp with Sys_error _ -> ()))

let disk_write t fp entry =
  disk_write_raw t ~stem:(Fingerprint.hash fp) ~canon:(Fingerprint.canon fp) entry

(* A disk probe that verifies before serving; any failure is a reject. *)
let disk_load t ~arch ~layer fp =
  match t.dir with
  | None -> None
  | Some dir ->
    let path = file_path dir fp in
    if not (Sys.file_exists path) then None
    else begin
      let reject () =
        t.stats.disk_rejects <- t.stats.disk_rejects + 1;
        Telemetry.Metrics.incr m_disk_reject;
        None
      in
      let parsed =
        try
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let text = really_input_string ic (in_channel_length ic) in
              match String.index_opt text '\n' with
              | Some i
                when String.length text > String.length key_prefix
                     && String.sub text 0 (String.length key_prefix) = key_prefix ->
                let canon = String.sub text (String.length key_prefix)
                    (i - String.length key_prefix)
                in
                let rest = String.sub text (i + 1) (String.length text - i - 1) in
                Some (canon, Mapping_io.record_of_string rest)
              | _ -> None)
        with _ -> None (* unreadable or truncated: reject, never crash *)
      in
      match parsed with
      | None | Some (_, Error _) -> reject ()
      | Some (canon, Ok (meta, mapping)) ->
        if canon <> Fingerprint.canon fp then reject () (* collision or stale *)
        else if Layer.key mapping.Mapping.layer <> Layer.key layer then reject ()
        else begin
          (* trust-but-verify: re-certify against the *requested*
             architecture in exact arithmetic before serving *)
          match Certify.Mapping_cert.check arch mapping with
          | Certify.Certificate.Certified ->
            t.stats.disk_hits <- t.stats.disk_hits + 1;
            Telemetry.Metrics.incr m_hit_disk;
            insert t fp { meta; mapping };
            Some { meta; mapping }
          | Certify.Certificate.Violated _ | (exception Robust.Failure.Error _) ->
            reject ()
        end
    end

(* ---- public API ------------------------------------------------------- *)

type tier = Memory | Disk

(* [count_miss:false] is the fast-path/peek probe: a daemon connection
   thread peeks the tier before queueing, and the solver path re-probes
   on a miss — counting both would book two misses per request, deflating
   the hit-rate windows admission prices against. Hits (and disk rejects,
   which are real evidence of corruption) always count. *)
let find ?(count_miss = true) t ~arch ~layer fp =
  match Hashtbl.find_opt t.tbl (Fingerprint.canon fp) with
  | Some n ->
    t.stats.hits <- t.stats.hits + 1;
    Telemetry.Metrics.incr m_hit_mem;
    touch t n;
    Some (n.value, Memory)
  | None ->
    (match disk_load t ~arch ~layer fp with
     | Some entry -> Some (entry, Disk)
     | None ->
       if count_miss then begin
         t.stats.misses <- t.stats.misses + 1;
         Telemetry.Metrics.incr m_miss
       end;
       None)

let store t fp entry =
  t.stats.stores <- t.stats.stores + 1;
  Telemetry.Metrics.incr m_store;
  insert t fp entry;
  disk_write t fp entry

let lru_keys t =
  (* head (most recent) first *)
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.file_stem :: acc) n.next
  in
  go [] t.head

(* Drain hook: rewrite every in-memory entry to disk (each write is
   individually crash-safe), so a graceful shutdown leaves the directory
   holding everything this process learned — including entries stored
   before a crash of a *previous* incarnation that this one re-verified
   and promoted. Returns the number of records written. *)
let persist t =
  match t.dir with
  | None -> 0
  | Some _ ->
    let rec go n = function
      | None -> n
      | Some node ->
        (* reconstruct the fingerprint frame from the stored canon/stem *)
        disk_write_raw t ~stem:node.file_stem ~canon:node.key node.value;
        go (n + 1) node.next
    in
    go 0 t.head
