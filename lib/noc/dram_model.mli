(** DRAMSim2-lite: a banked DRAM model with FR-FCFS scheduling.

    Requests wait in a bounded reorder window; each issue picks the oldest
    row-hit request (open-row-first) and otherwise the oldest overall.
    Row activations (hit vs. miss latency) proceed per bank and may
    overlap in-flight transfers; the data bus serialises transfers at the
    configured bandwidth. *)

type t

val create : Spec.dram -> t

val request : t -> bytes:int -> row:int -> int
(** Enqueue a request and return its id. [row] identifies the DRAM row
    (callers typically derive it from the tile address); its bank is
    [row mod banks]. *)

val step : t -> unit
(** Advance one cycle. *)

val completed : t -> int list
(** Request ids that finished during the last {!step}. *)

val busy : t -> bool

val total_busy_cycles : t -> int
(** Cycles during which the DRAM was servicing or holding requests. *)

val row_hit_count : t -> int
val row_miss_count : t -> int
(** Row-buffer locality counters (reported by the NoC deep-dive example
    and checked by tests). *)

val queue_length : t -> int
(** Waiting plus in-service requests (sampled into the telemetry
    queue-depth histogram by the NoC simulator). *)
