(** Cycle-level 2-D wormhole mesh with X-Y routing and tree multicast.

    One router per PE; the global buffer has a dedicated injection/ejection
    port on router 0 (the mesh corner, as in Simba's package organisation).
    Routers are input-queued with credit-based backpressure (a flit moves
    only when the downstream queue has space) and round-robin output
    arbitration; a packet's flits hold their output port(s) from head to
    tail (wormhole). Multicast replicates a flit to every branch port in
    the X-Y tree in the same cycle, stalling until all branches can accept
    it. *)

type t

type source = Gb | Node of int

val create : Spec.noc -> t

val inject : t -> source -> Packet.t -> unit
(** Queue a packet for injection (source queues are unbounded; the mesh
    drains them one flit per cycle per source). Multicast packets are
    split into unicasts automatically when the NoC was configured without
    multicast support. *)

val step : t -> unit
(** Advance one cycle. *)

val delivered : t -> (source * Packet.t) list
(** Packets fully delivered during the last {!step}, as
    [(destination, packet)]; a multicast packet appears once per
    destination reached. *)

val idle : t -> bool
(** No queued, in-flight, or partially delivered traffic remains. *)

val cycles : t -> int
val flit_hops : t -> int
(** Total link traversals so far (energy proxy, cross-checked against the
    analytical model in tests). *)

(** {2 Flit conservation ledger}

    Checked by the certification layer ([Certify.Noc_cert]): once {!idle}
    holds, [flits_injected + flits_forked = flits_ejected] must hold
    exactly — every flit that entered the mesh (plus every multicast-tree
    copy) left through an ejection port. *)

val flits_injected : t -> int
(** Flits moved from a source queue into a router. *)

val flits_ejected : t -> int
(** Flits that left through a local or global-buffer ejection port. *)

val flits_forked : t -> int
(** Extra flit copies created at multicast branch points. *)

val queued_flits : t -> int
(** Flits currently waiting in router input queues (sampled into the
    telemetry queue-depth histogram by the NoC simulator). *)
