type t = {
  id : int;
  src : int;
  dests : int list;
  flits : int;
  tensor : Dims.tensor;
  step : int;
}

(* Typed, not [Invalid_argument]: packets are built inside the NoC
   simulation loop, whose Result entry point catches [Robust.Failure.Error]
   instead of letting argument errors escape untyped. *)
let reject msg = raise (Robust.Failure.Error (Robust.Failure.Invalid_input msg))

let make ~id ~src ~dests ~flits ~tensor ~step =
  if dests = [] then reject "Packet.make: empty destination list";
  if flits < 1 then reject "Packet.make: flits < 1";
  { id; src; dests; flits; tensor; step }
