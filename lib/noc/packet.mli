(** Packets and flits for the wormhole mesh. *)

type t = {
  id : int;
  src : int;  (** node index; the global-buffer port is node [-1] *)
  dests : int list;  (** destination node indices (multicast when > 1) *)
  flits : int;  (** packet length including head flit *)
  tensor : Dims.tensor;
  step : int;  (** NoC iteration this payload belongs to *)
}

val make :
  id:int -> src:int -> dests:int list -> flits:int -> tensor:Dims.tensor -> step:int -> t
(** Raises [Robust.Failure.Error (Invalid_input _)] on an empty destination
    list or [flits < 1], so the simulation's Result pipeline can surface it
    as a typed failure. *)
