(** Transaction-level, cycle-exact execution of a mapping on the mesh.

    The driver derives the NoC transaction schedule from the mapping's
    reuse analysis: one "NoC step" is one iteration of the flattened
    temporal loops at and above the NoC boundary. Per step, the global
    buffer multicasts weight and input tiles to the PE groups that share
    them (gated by DRAM fetches), PEs compute with double buffering
    (receive step s+1 while computing step s), and output tiles drain back
    to the global buffer and DRAM. Long executions are sampled: the first
    [max_steps] steps are simulated cycle-by-cycle and total latency is
    extrapolated linearly (reported via [sampled]).

    This platform exposes congestion, serialisation, and DRAM contention
    that the analytical model's perfect-overlap assumption hides — the
    paper's Fig. 10 platform. *)

type stats = {
  latency : float;  (** total cycles (extrapolated when [sampled]) *)
  simulated_cycles : int;
  simulated_steps : int;
  total_steps : int;
  sampled : bool;
  flit_hops : int;
  dram_busy_cycles : int;
  packets : int;
  compute_cycles_per_step : int;
  flits_injected : int;  (** {!Mesh.flits_injected} at completion *)
  flits_ejected : int;  (** {!Mesh.flits_ejected} at completion *)
  flits_forked : int;
      (** {!Mesh.flits_forked} at completion. Conservation — certified by
          [Certify.Noc_cert] — requires
          [flits_injected + flits_forked = flits_ejected]. *)
}

val simulate_r :
  ?max_steps:int ->
  ?max_cycles:int ->
  ?deadline:Robust.Deadline.t ->
  Spec.t ->
  Mapping.t ->
  (stats, Robust.Failure.t) Stdlib.result
(** Defaults: [max_steps = 48], [max_cycles = 20_000_000], no deadline.
    [Error Iteration_limit] when the cycle budget is exhausted without the
    run converging (a deadlock, or an invalid mapping's feed schedule —
    neither occurs for valid mappings on the shipped architectures);
    [Error Deadline_exceeded] when the wall-clock deadline expires mid-run
    (polled every 256 simulated cycles); [Error (Injected _)] when the
    ["noc.step"] fault site fires. *)

val simulate : ?max_steps:int -> ?max_cycles:int -> Spec.t -> Mapping.t -> stats
(** Legacy wrapper around {!simulate_r} without a deadline; raises
    [Robust.Failure.Error] where [simulate_r] would return [Error]. *)
