type stats = {
  latency : float;
  simulated_cycles : int;
  simulated_steps : int;
  total_steps : int;
  sampled : bool;
  flit_hops : int;
  dram_busy_cycles : int;
  packets : int;
  compute_cycles_per_step : int;
  flits_injected : int;
  flits_ejected : int;
  flits_forked : int;
}

let fi = float_of_int

type feed = {
  tensor : Dims.tensor;
  flits : int;  (** per distinct-tile packet *)
  sends : int;  (** scaled transfer rounds *)
  groups : int list array;  (** distinct tile -> destination nodes *)
  direct_dram_bytes : int;  (** per-send DRAM fetch when the tensor bypasses the GB *)
  gb_fetches : int;  (** scaled GB fill count when staged through the GB *)
  gb_tile_bytes : int;
  mutable injected : int;
  mutable completed : int;  (** sends fully delivered *)
  mutable deliveries_open : int;  (** outstanding (packet, dest) deliveries of in-flight sends *)
  mutable gb_fetched : int;
  mutable gb_requested : int;
  mutable pending_fetch : bool;  (** a direct DRAM fetch for the next send is in flight *)
  mutable fetch_ready : bool;  (** the next send's direct fetch completed *)
}

(* Partition the used PEs into groups that share the same tile of [v]:
   decompose the PE index into mixed-radix digits of the NoC-level spatial
   loops and key on the digits of loops relevant to [v]. *)
let tile_groups arch (m : Mapping.t) v =
  let noc = arch.Spec.noc_level in
  let loops = m.Mapping.levels.(noc).Mapping.spatial in
  let used = List.fold_left (fun a (l : Mapping.loop) -> a * l.Mapping.bound) 1 loops in
  let key_of pe =
    let rec digits i = function
      | [] -> []
      | (l : Mapping.loop) :: rest ->
        let d = i mod l.Mapping.bound in
        let keep = Dims.model_relevant l.Mapping.dim v in
        (if keep then [ d ] else []) @ digits (i / l.Mapping.bound) rest
    in
    digits pe loops
  in
  let tbl = Hashtbl.create 16 in
  for pe = 0 to used - 1 do
    let k = key_of pe in
    let cur = try Hashtbl.find tbl k with Not_found -> [] in
    Hashtbl.replace tbl k (pe :: cur)
  done;
  (used, Array.of_list (Hashtbl.fold (fun _ pes acc -> List.rev pes :: acc) tbl []))

let word_bytes arch v = max 1 ((arch.Spec.precision_bits v + 7) / 8)

(* Internal abort used for deadline expiry and injected faults mid-run;
   never escapes [simulate_r]. *)
exception Sim_abort of Robust.Failure.t

(* Telemetry: utilisation/occupancy histograms sampled every 256 cycles
   (piggybacking on the existing budget-poll stride, so the disabled path
   costs one flag load per poll), plus per-request DRAM counters recorded
   by [Dram_model] itself. *)
let h_link_util =
  Telemetry.Metrics.histogram
    ~buckets:(Telemetry.Metrics.linear_buckets ~lo:0. ~step:0.05 ~count:21)
    "noc.link_utilization"

let h_queue_depth =
  Telemetry.Metrics.histogram
    ~buckets:(Telemetry.Metrics.exponential_buckets ~lo:1. ~ratio:2. ~count:10)
    "noc.queue_depth"

let h_dram_queue =
  Telemetry.Metrics.histogram
    ~buckets:(Telemetry.Metrics.exponential_buckets ~lo:1. ~ratio:2. ~count:8)
    "dram.queue_depth"

let simulate_impl ?(max_steps = 48) ?(max_cycles = 20_000_000)
    ?(deadline = Robust.Deadline.none) arch (m : Mapping.t) =
  let noc = arch.Spec.noc_level in
  let dram_lvl = Spec.dram_level arch in
  let total_steps =
    let acc = ref 1 in
    for i = noc to dram_lvl do
      acc := !acc * Mapping.temporal_product m i
    done;
    !acc
  in
  let steps = min total_steps max_steps in
  let ratio = fi steps /. fi total_steps in
  let scale r = max 1 (int_of_float (Float.round (r *. ratio))) in
  let cycles_per_step =
    let acc = ref 1 in
    for i = 0 to noc - 1 do
      acc := !acc * Mapping.temporal_product m i
    done;
    max 1 !acc
  in
  let used = ref 1 in
  let mk_feed v =
    let chain = Model.storage_chain arch v in
    let pe_level = List.fold_left (fun acc l -> if l <= noc then max acc l else acc) 0 chain in
    let parent = List.fold_left (fun acc l -> if l > noc then min acc l else acc) max_int chain in
    let tile = Mapping.tile_words arch m pe_level v in
    let bits = arch.Spec.precision_bits v in
    let flits =
      max 1 (int_of_float (ceil (tile *. fi bits /. fi arch.Spec.noc.Spec.flit_bits)))
    in
    let u, groups = tile_groups arch m v in
    used := max !used u;
    let sends = scale (Model.refills m v ~lo:pe_level) in
    let direct_dram_bytes, gb_fetches, gb_tile_bytes =
      if parent >= dram_lvl then
        (int_of_float tile * word_bytes arch v * Array.length groups, 0, 0)
      else
        ( 0,
          scale (Model.refills m v ~lo:parent),
          int_of_float (Mapping.tile_words arch m parent v) * word_bytes arch v )
    in
    {
      tensor = v;
      flits;
      sends;
      groups;
      direct_dram_bytes;
      gb_fetches;
      gb_tile_bytes;
      injected = 0;
      completed = 0;
      deliveries_open = 0;
      gb_fetched = 0;
      gb_requested = 0;
      pending_fetch = false;
      fetch_ready = false;
    }
  in
  let w_feed = mk_feed Dims.W and ia_feed = mk_feed Dims.IA in
  let oa = mk_feed Dims.OA in
  let used = !used in
  let mesh = Mesh.create arch.Spec.noc in
  let dram = Dram_model.create arch.Spec.dram in
  (* PE state *)
  let pe_step = Array.make used 0 in
  let pe_compute = Array.make used 0 in
  let arrived = Array.make_matrix used 3 0 in
  (* packet bookkeeping *)
  let next_pkt = ref 0 in
  let packets = ref 0 in
  let pkt_feed : (int, feed) Hashtbl.t = Hashtbl.create 64 in
  let dram_fetch_tag : (int, [ `Gb of feed | `Direct of feed ]) Hashtbl.t =
    Hashtbl.create 64
  in
  let min_pe_step () = min steps (Array.fold_left min max_int pe_step) in
  let needed (f : feed) s =
    max 1 (int_of_float (ceil (fi ((s + 1) * f.sends) /. fi steps)))
  in
  let step_of_send (f : feed) e = e * steps / f.sends in
  let oa_sends_at s =
    (* drains scheduled when the cumulative quota crosses an integer *)
    let q k = k * oa.sends / steps in
    q (s + 1) - q s
  in
  let oa_expected =
    (* every used PE drains once per send round *)
    oa.sends * used
  in
  let oa_delivered = ref 0 in
  let oa_dram_every =
    if oa.gb_fetches > 0 then max 1 (oa_expected / oa.gb_fetches) else 0
  in
  let inject_send (f : feed) =
    let e = f.injected in
    Array.iter
      (fun dests ->
        let id = !next_pkt in
        incr next_pkt;
        incr packets;
        let pkt =
          Packet.make ~id ~src:(-1) ~dests ~flits:f.flits ~tensor:f.tensor ~step:e
        in
        Hashtbl.replace pkt_feed id f;
        f.deliveries_open <- f.deliveries_open + List.length dests;
        Mesh.inject mesh Mesh.Gb pkt)
      f.groups;
    f.injected <- e + 1
  in
  let row_counter = ref 0 in
  let issue_dram_fetch tag bytes =
    incr row_counter;
    let id = Dram_model.request dram ~bytes ~row:!row_counter in
    match tag with None -> () | Some tg -> Hashtbl.replace dram_fetch_tag id tg
  in
  let feed_logic (f : feed) =
    if f.sends > 0 && f.injected < f.sends then begin
      let e = f.injected in
      let window_ok = step_of_send f e <= min (min_pe_step () + 1) (steps - 1) in
      let inflight_ok = f.injected - f.completed < 2 in
      if window_ok && inflight_ok then begin
        if f.direct_dram_bytes > 0 then begin
          (* fetch straight from DRAM, one request per send *)
          if f.fetch_ready then begin
            f.fetch_ready <- false;
            inject_send f
          end
          else if not f.pending_fetch then begin
            f.pending_fetch <- true;
            issue_dram_fetch (Some (`Direct f)) f.direct_dram_bytes
          end
        end
        else begin
          let gate = if f.gb_fetches = 0 then 0 else e * f.gb_fetches / f.sends in
          if f.gb_fetched > gate || f.gb_fetches = 0 then inject_send f
          else if f.gb_requested <= gate && f.gb_requested < f.gb_fetches then begin
            f.gb_requested <- f.gb_requested + 1;
            issue_dram_fetch (Some (`Gb f)) f.gb_tile_bytes
          end
        end
      end
    end
  in
  let cycle = ref 0 in
  let finished () =
    Array.for_all (fun s -> s >= steps) pe_step
    && !oa_delivered >= oa_expected
    && not (Dram_model.busy dram)
    && Mesh.idle mesh
  in
  let abort = ref None in
  (* one utilisation sample = flit-hops accumulated over the last 256-cycle
     window, normalised by the mesh's directed link count *)
  let nlinks =
    let mx = arch.Spec.noc.Spec.mesh_x and my = arch.Spec.noc.Spec.mesh_y in
    max 1 (2 * (((mx - 1) * my) + (mx * (my - 1))))
  in
  let last_hops = ref 0 in
  (try
  while (not (finished ())) && !cycle < max_cycles do
    incr cycle;
    (* budget/fault poll: cheap enough at this stride to be free, frequent
       enough that an expired deadline stops the run within ~256 cycles *)
    if !cycle land 255 = 0 then begin
      (match Robust.Fault.check "noc.step" with
       | Ok () -> ()
       | Error f -> raise (Sim_abort f));
      if Robust.Deadline.expired deadline then
        raise (Sim_abort Robust.Failure.Deadline_exceeded);
      if Telemetry.Sink.enabled () then begin
        let hops = Mesh.flit_hops mesh in
        Telemetry.Metrics.observe h_link_util
          (float_of_int (hops - !last_hops) /. (256. *. float_of_int nlinks));
        last_hops := hops;
        Telemetry.Metrics.observe h_queue_depth (fi (Mesh.queued_flits mesh));
        Telemetry.Metrics.observe h_dram_queue (fi (Dram_model.queue_length dram))
      end
    end;
    (* DRAM *)
    Dram_model.step dram;
    List.iter
      (fun id ->
        match Hashtbl.find_opt dram_fetch_tag id with
        | Some (`Gb f) ->
          f.gb_fetched <- f.gb_fetched + 1;
          Hashtbl.remove dram_fetch_tag id
        | Some (`Direct f) ->
          f.pending_fetch <- false;
          f.fetch_ready <- true;
          Hashtbl.remove dram_fetch_tag id
        | None -> ())
      (Dram_model.completed dram);
    (* global buffer: issue fetches and sends *)
    feed_logic w_feed;
    feed_logic ia_feed;
    (* network *)
    Mesh.step mesh;
    List.iter
      (fun (dst, (pkt : Packet.t)) ->
        match dst with
        | Mesh.Node node ->
          let f = Hashtbl.find pkt_feed pkt.Packet.id in
          let vi = Dims.tensor_index f.tensor in
          if node < used then arrived.(node).(vi) <- arrived.(node).(vi) + 1;
          f.deliveries_open <- f.deliveries_open - 1;
          (* a send completes when all its packets reached all destinations *)
          if f.deliveries_open = 0 then f.completed <- f.injected
        | Mesh.Gb ->
          incr oa_delivered;
          if oa_dram_every > 0 && !oa_delivered mod oa_dram_every = 0 then
            issue_dram_fetch None (max 1 oa.gb_tile_bytes))
      (Mesh.delivered mesh);
    (* PEs *)
    for pe = 0 to used - 1 do
      if pe_compute.(pe) > 0 then begin
        pe_compute.(pe) <- pe_compute.(pe) - 1;
        if pe_compute.(pe) = 0 then begin
          let s = pe_step.(pe) in
          let drains = oa_sends_at s in
          for _ = 1 to drains do
            let id = !next_pkt in
            incr next_pkt;
            incr packets;
            let pkt =
              Packet.make ~id ~src:pe ~dests:[ -1 ] ~flits:oa.flits ~tensor:Dims.OA ~step:s
            in
            Mesh.inject mesh (Mesh.Node pe) pkt
          done;
          pe_step.(pe) <- s + 1
        end
      end
      else if pe_step.(pe) < steps then begin
        let s = pe_step.(pe) in
        let ready =
          arrived.(pe).(Dims.tensor_index Dims.W) >= needed w_feed s
          && arrived.(pe).(Dims.tensor_index Dims.IA) >= needed ia_feed s
        in
        if ready then pe_compute.(pe) <- cycles_per_step
      end
    done
  done
  with
  | Sim_abort f -> abort := Some f
  | Robust.Failure.Error f ->
    (* typed argument errors from packet construction etc. *)
    abort := Some f);
  match !abort with
  | Some f -> Error f
  | None ->
  if !cycle >= max_cycles then
    (* exhausting the cycle budget without converging (a deadlock or an
       invalid mapping's feed schedule) is the simulator's iteration limit *)
    Error Robust.Failure.Iteration_limit
  else
    Ok
      {
        latency = fi !cycle /. ratio;
        simulated_cycles = !cycle;
        simulated_steps = steps;
        total_steps;
        sampled = steps < total_steps;
        flit_hops = Mesh.flit_hops mesh;
        dram_busy_cycles = Dram_model.total_busy_cycles dram;
        packets = !packets;
        compute_cycles_per_step = cycles_per_step;
        flits_injected = Mesh.flits_injected mesh;
        flits_ejected = Mesh.flits_ejected mesh;
        flits_forked = Mesh.flits_forked mesh;
      }

(* Public entry point: one "noc.simulate" span per run. *)
let simulate_r ?max_steps ?max_cycles ?deadline arch m =
  Telemetry.Trace.with_span ~cat:"noc" "noc.simulate" (fun () ->
      simulate_impl ?max_steps ?max_cycles ?deadline arch m)

(* Legacy wrapper: raises [Robust.Failure.Error] where [simulate_r] returns
   [Error]. Prefer [simulate_r] in new code. *)
let simulate ?max_steps ?max_cycles arch m =
  match simulate_r ?max_steps ?max_cycles arch m with
  | Ok s -> s
  | Error f -> raise (Robust.Failure.Error f)
