(* DRAMSim2-lite with FR-FCFS scheduling: requests wait in a bounded
   reorder window; each scheduling decision prefers the oldest row-hit
   request (open-row first), falling back to the oldest request. Row
   activations proceed per bank and may overlap the data bus, which
   serialises transfers. *)

type req = { id : int; bytes : int; row : int; arrival : int }

type in_service = { r : req; finish : int }

let m_requests = Telemetry.Metrics.counter "dram.requests"
let m_row_hits = Telemetry.Metrics.counter "dram.row_hits"
let m_row_misses = Telemetry.Metrics.counter "dram.row_misses"

type t = {
  spec : Spec.dram;
  mutable queue : req list;  (** oldest first *)
  window : int;
  open_rows : int array;  (** per bank; -1 = closed *)
  bank_ready : int array;  (** cycle at which each bank can start a new activation *)
  mutable bus_free : int;  (** cycle at which the data bus frees up *)
  mutable in_service : in_service list;
  mutable next_id : int;
  mutable now : int;
  mutable done_now : int list;
  mutable busy_cycles : int;
  mutable row_hits : int;
  mutable row_misses : int;
}

let create spec =
  {
    spec;
    queue = [];
    window = 16;
    open_rows = Array.make spec.Spec.banks (-1);
    bank_ready = Array.make spec.Spec.banks 0;
    bus_free = 0;
    in_service = [];
    next_id = 0;
    now = 0;
    done_now = [];
    busy_cycles = 0;
    row_hits = 0;
    row_misses = 0;
  }

let request t ~bytes ~row =
  Telemetry.Metrics.incr m_requests;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.queue <- t.queue @ [ { id; bytes; row; arrival = t.now } ];
  id

let bank_of t r = r.row mod t.spec.Spec.banks

(* FR-FCFS pick within the reorder window: oldest row hit, else oldest. *)
let pick t =
  let window = List.filteri (fun i _ -> i < t.window) t.queue in
  let is_hit r = t.open_rows.(bank_of t r) = r.row in
  match List.find_opt is_hit window with
  | Some r -> Some r
  | None -> (match window with r :: _ -> Some r | [] -> None)

let schedule t =
  (* issue as long as the bus can accept another transfer decision; one
     issue per cycle keeps the model simple and slightly conservative *)
  if t.bus_free <= t.now then
    match pick t with
    | None -> ()
    | Some r ->
      t.queue <- List.filter (fun q -> q.id <> r.id) t.queue;
      let bank = bank_of t r in
      let hit = t.open_rows.(bank) = r.row in
      if hit then begin
        t.row_hits <- t.row_hits + 1;
        Telemetry.Metrics.incr m_row_hits
      end
      else begin
        t.row_misses <- t.row_misses + 1;
        Telemetry.Metrics.incr m_row_misses
      end;
      let activation = if hit then t.spec.Spec.t_row_hit else t.spec.Spec.t_row_miss in
      (* the bank opens the row (possibly overlapping an ongoing transfer),
         then the transfer serialises on the bus *)
      let bank_open = max t.now t.bank_ready.(bank) + activation in
      let transfer =
        max 1 (int_of_float (ceil (float_of_int r.bytes /. t.spec.Spec.dram_bandwidth_words)))
      in
      let start = max bank_open t.bus_free in
      let finish = start + transfer in
      t.open_rows.(bank) <- r.row;
      t.bank_ready.(bank) <- finish;
      t.bus_free <- finish;
      t.in_service <- { r; finish } :: t.in_service

let step t =
  t.now <- t.now + 1;
  t.done_now <- [];
  schedule t;
  let finished, remaining =
    List.partition (fun s -> s.finish <= t.now) t.in_service
  in
  t.in_service <- remaining;
  t.done_now <- List.map (fun s -> s.r.id) finished;
  if t.queue <> [] || t.in_service <> [] then t.busy_cycles <- t.busy_cycles + 1

let completed t = t.done_now
let busy t = t.queue <> [] || t.in_service <> []
let total_busy_cycles t = t.busy_cycles
let row_hit_count t = t.row_hits
let row_miss_count t = t.row_misses

let queue_length t = List.length t.queue + List.length t.in_service
