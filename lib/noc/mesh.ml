type source = Gb | Node of int

type flit = { pkt : Packet.t; dests : int list; tail : bool }

let n_ports = 6
let port_n = 0
let port_s = 1
let port_e = 2
let port_w = 3
let port_local = 4
let port_gb = 5

type router = {
  in_q : flit Queue.t array;
  route_set : int list array;  (** output ports held by the packet active on each input *)
  rem : int array;  (** body flits still to pass for the active packet per input *)
  out_lock : int array;  (** input index holding each output; -1 = free *)
  mutable rr : int;  (** round-robin start input for this router *)
}

type pending = { p : Packet.t; mutable sent : int }

type t = {
  spec : Spec.noc;
  mx : int;
  my : int;
  routers : router array;
  gb_queue : pending Queue.t;
  node_queues : pending Queue.t array;
  (* delivery assembly: (packet id, node) -> flits received *)
  assembly : (int * int, int) Hashtbl.t;
  mutable delivered_now : (source * Packet.t) list;
  mutable cycle : int;
  mutable hops : int;
  mutable inflight : int;
  (* flit conservation ledger, checked by the certification layer: once the
     mesh is idle, injected + forked = ejected must hold exactly *)
  mutable injected_flits : int;  (** flits that entered a router from a source queue *)
  mutable ejected_flits : int;  (** flits that left through a local/GB ejection port *)
  mutable forked_flits : int;  (** extra copies created by multicast tree branches *)
}

let create (spec : Spec.noc) =
  let n = spec.Spec.mesh_x * spec.Spec.mesh_y in
  let router _ =
    {
      in_q = Array.init n_ports (fun _ -> Queue.create ());
      route_set = Array.make n_ports [];
      rem = Array.make n_ports 0;
      out_lock = Array.make n_ports (-1);
      rr = 0;
    }
  in
  {
    spec;
    mx = spec.Spec.mesh_x;
    my = spec.Spec.mesh_y;
    routers = Array.init n router;
    gb_queue = Queue.create ();
    node_queues = Array.init n (fun _ -> Queue.create ());
    assembly = Hashtbl.create 64;
    delivered_now = [];
    cycle = 0;
    hops = 0;
    inflight = 0;
    injected_flits = 0;
    ejected_flits = 0;
    forked_flits = 0;
  }

let inject t src pkt =
  let push q (p : Packet.t) = Queue.push { p; sent = 0 } q in
  let q = match src with Gb -> t.gb_queue | Node i -> t.node_queues.(i) in
  if t.spec.Spec.multicast || List.length pkt.Packet.dests = 1 then push q pkt
  else
    (* no hardware multicast: replicate as unicasts *)
    List.iter
      (fun d -> push q { pkt with Packet.dests = [ d ] })
      pkt.Packet.dests

(* Output port toward destination [d] from router [r], X-Y routing. The
   global buffer (destination -1) sits behind router 0's GB port. *)
let route_port t r d =
  let x = r mod t.mx and y = r / t.mx in
  let dx, dy = if d < 0 then (0, 0) else (d mod t.mx, d / t.mx) in
  if d >= 0 && d = r then port_local
  else if d < 0 && r = 0 then port_gb
  else if dx > x then port_e
  else if dx < x then port_w
  else if dy > y then port_s
  else port_n

(* Partition a destination list by output port. *)
let route_ports t r dests =
  let ports = Array.make n_ports false in
  List.iter (fun d -> ports.(route_port t r d) <- true) dests;
  ports

let neighbor t r o =
  let x = r mod t.mx and y = r / t.mx in
  match () with
  | () when o = port_n -> if y > 0 then Some (r - t.mx, port_s) else None
  | () when o = port_s -> if y < t.my - 1 then Some (r + t.mx, port_n) else None
  | () when o = port_e -> if x < t.mx - 1 then Some (r + 1, port_w) else None
  | () when o = port_w -> if x > 0 then Some (r - 1, port_e) else None
  | () -> None

let record_delivery t (dst : source) (f : flit) =
  t.ejected_flits <- t.ejected_flits + 1;
  let node = match dst with Gb -> -1 | Node i -> i in
  let key = (f.pkt.Packet.id, node) in
  let got = (try Hashtbl.find t.assembly key with Not_found -> 0) + 1 in
  if got >= f.pkt.Packet.flits then begin
    Hashtbl.remove t.assembly key;
    t.delivered_now <- (dst, f.pkt) :: t.delivered_now
  end
  else Hashtbl.replace t.assembly key got

let step t =
  t.delivered_now <- [];
  let depth = t.spec.Spec.queue_depth in
  (* snapshot of free space per (router, input port), consumed as flits move *)
  let space =
    Array.map (fun rt -> Array.map (fun q -> depth - Queue.length q) rt.in_q) t.routers
  in
  let out_used = Array.map (fun _ -> Array.make n_ports false) t.routers in
  (* only flits present at cycle start may move this cycle (prevents a flit
     from traversing several routers in one cycle as the router loop runs) *)
  let eligible =
    Array.map (fun rt -> Array.map (fun q -> Queue.length q > 0) rt.in_q) t.routers
  in
  (* route flits already inside the mesh, one flit per output per cycle *)
  Array.iteri
    (fun ri rt ->
      let moved_inputs = ref [] in
      for k = 0 to n_ports - 1 do
        let ip = (rt.rr + k) mod n_ports in
        if eligible.(ri).(ip) && not (List.mem ip !moved_inputs)
           && not (Queue.is_empty rt.in_q.(ip)) then begin
          let f = Queue.peek rt.in_q.(ip) in
          let is_head = rt.rem.(ip) = 0 in
          let ports =
            if is_head then route_ports t ri f.dests
            else begin
              let p = Array.make n_ports false in
              List.iter (fun o -> p.(o) <- true) rt.route_set.(ip);
              p
            end
          in
          (* every needed output must be free for us and have downstream room *)
          let ok = ref true in
          for o = 0 to n_ports - 1 do
            if ports.(o) then begin
              if out_used.(ri).(o) then ok := false;
              if rt.out_lock.(o) <> -1 && rt.out_lock.(o) <> ip then ok := false;
              (match neighbor t ri o with
               | Some (nr, nport) -> if space.(nr).(nport) <= 0 then ok := false
               | None ->
                 (* ejection ports always sink; mesh-edge misroutes cannot
                    happen with X-Y routing *)
                 if o <> port_local && o <> port_gb then ok := false)
            end
          done;
          if !ok then begin
            let f = Queue.pop rt.in_q.(ip) in
            t.inflight <- t.inflight - 1;
            moved_inputs := ip :: !moved_inputs;
            (* every output beyond the first is a multicast-tree copy *)
            let nports = ref 0 in
            Array.iter (fun used -> if used then incr nports) ports;
            t.forked_flits <- t.forked_flits + !nports - 1;
            for o = 0 to n_ports - 1 do
              if ports.(o) then begin
                out_used.(ri).(o) <- true;
                t.hops <- t.hops + 1;
                match neighbor t ri o with
                | Some (nr, nport) ->
                  (* forward only the destinations that leave through o *)
                  let sub =
                    List.filter (fun d -> route_port t ri d = o) f.dests
                  in
                  Queue.push { f with dests = sub } t.routers.(nr).in_q.(nport);
                  t.inflight <- t.inflight + 1;
                  space.(nr).(nport) <- space.(nr).(nport) - 1
                | None ->
                  if o = port_local then record_delivery t (Node ri) f
                  else record_delivery t Gb f
              end
            done;
            if is_head then begin
              let held = ref [] in
              for o = 0 to n_ports - 1 do
                if ports.(o) then held := o :: !held
              done;
              if f.tail then
                (* single-flit packet: nothing to hold *)
                rt.route_set.(ip) <- []
              else begin
                rt.route_set.(ip) <- !held;
                List.iter (fun o -> rt.out_lock.(o) <- ip) !held;
                rt.rem.(ip) <- f.pkt.Packet.flits - 1
              end
            end
            else begin
              rt.rem.(ip) <- rt.rem.(ip) - 1;
              if f.tail then begin
                List.iter (fun o -> rt.out_lock.(o) <- -1) rt.route_set.(ip);
                rt.route_set.(ip) <- []
              end
            end
          end
        end
      done;
      rt.rr <- (rt.rr + 1) mod n_ports)
    t.routers;
  (* inject one flit per source into its router's input port *)
  let try_inject q ri ip =
    if not (Queue.is_empty q) then begin
      let pn = Queue.peek q in
      if space.(ri).(ip) > 0 then begin
        let tail = pn.sent = pn.p.Packet.flits - 1 in
        Queue.push
          { pkt = pn.p; dests = pn.p.Packet.dests; tail }
          t.routers.(ri).in_q.(ip);
        space.(ri).(ip) <- space.(ri).(ip) - 1;
        t.inflight <- t.inflight + 1;
        t.injected_flits <- t.injected_flits + 1;
        pn.sent <- pn.sent + 1;
        t.hops <- t.hops + 1;
        if tail then ignore (Queue.pop q)
      end
    end
  in
  try_inject t.gb_queue 0 port_gb;
  Array.iteri (fun i q -> try_inject q i port_local) t.node_queues;
  t.cycle <- t.cycle + 1

let delivered t = t.delivered_now

let idle t =
  Queue.is_empty t.gb_queue
  && Array.for_all Queue.is_empty t.node_queues
  && t.inflight = 0

let cycles t = t.cycle
let flit_hops t = t.hops
let flits_injected t = t.injected_flits
let flits_ejected t = t.ejected_flits
let flits_forked t = t.forked_flits

let queued_flits t =
  Array.fold_left
    (fun acc rt -> Array.fold_left (fun a q -> a + Queue.length q) acc rt.in_q)
    0 t.routers
