(** Small statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values (the paper reports geomean speedups). *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation. *)

val quantiles : float list -> float list -> float list
(** [quantiles ps xs] returns one value per requested percentile in [ps],
    sorting [xs] once (the data is shared across all requests, so asking
    for p50 and p95 together costs one sort, not two). Each element agrees
    exactly with [percentile p xs]. Raises [Invalid_argument] on empty
    [xs] or any [p] outside [\[0,100\]]. *)

val stddev : float list -> float

val minimum : float list -> float
val maximum : float list -> float

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> float list -> histogram
(** Equal-width histogram over the data range. *)

val render_histogram : ?width:int -> histogram -> string
(** ASCII rendering, one row per bin. *)
