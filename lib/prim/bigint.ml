(* Arbitrary-precision signed integers, pure OCaml (no zarith). Magnitudes
   are little-endian limb arrays in base 2^15, so every intermediate of the
   schoolbook routines fits comfortably in a native 63-bit int. Sizes here
   are tiny by bignum standards — certificates multiply a few hundred
   doubles — so simplicity beats asymptotics throughout (schoolbook
   multiplication, bit-by-bit division). *)

let base_bits = 15
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }
(* invariant: sign in {-1, 0, 1}; mag has no high zero limbs;
   sign = 0 iff mag = [||] *)

let zero = { sign = 0; mag = [||] }

let trim mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = trim mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* accumulate limbs from the negative side so [min_int] cannot
       overflow on negation *)
    let m = if n > 0 then -n else n in
    let rec limbs m acc = if m = 0 then acc else limbs (m / base) (-(m mod base) :: acc) in
    make sign (Array.of_list (List.rev (limbs m [])))
  end

let one = of_int 1

let sign t = t.sign
let is_zero t = t.sign = 0
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let t = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- t land limb_mask;
    carry := t lsr base_bits
  done;
  r.(n) <- !carry;
  r

(* precondition: a >= b as magnitudes *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let t = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if t < 0 then begin
      r.(i) <- t + base;
      borrow := 1
    end
    else begin
      r.(i) <- t;
      borrow := 0
    end
  done;
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> make a.sign (sub_mag a.mag b.mag)
    | _ -> make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr base_bits;
        incr k
      done
    end
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let shift_left t bits =
  if bits < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if t.sign = 0 || bits = 0 then t
  else begin
    let limb_shift = bits / base_bits and bit_shift = bits mod base_bits in
    let la = Array.length t.mag in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = t.mag.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr base_bits
    done;
    make t.sign r
  end

let bit_length_mag mag =
  let n = Array.length mag in
  if n = 0 then 0
  else begin
    let top = mag.(n - 1) in
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * base_bits) + width top
  end

let bit_of mag i =
  let limb = i / base_bits in
  if limb >= Array.length mag then 0 else (mag.(limb) lsr (i mod base_bits)) land 1

(* Magnitude division by bit-by-bit shift-subtract: O(bits * limbs), ample
   for certificate-sized numbers. Returns (quotient, remainder). *)
let divmod_mag a b =
  if compare_mag a b < 0 then ([||], a)
  else begin
    let nbits = bit_length_mag a in
    let q = Array.make (Array.length a) 0 in
    let r = ref [||] in
    for i = nbits - 1 downto 0 do
      let shifted = add_mag (add_mag !r !r) [| bit_of a i |] in
      let shifted = trim shifted in
      if compare_mag shifted b >= 0 then begin
        r := sub_mag shifted b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
      else r := shifted
    done;
    (trim q, trim !r)
  end

(* Truncated division (quotient toward zero, remainder has the dividend's
   sign), matching OCaml's [/] and [mod] on ints. *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let shift_right t bits =
  if bits < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if t.sign = 0 || bits = 0 then t
  else begin
    let limb_shift = bits / base_bits and bit_shift = bits mod base_bits in
    let n = Array.length t.mag - limb_shift in
    if n <= 0 then zero
    else begin
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = t.mag.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift > 0 && i + limb_shift + 1 < Array.length t.mag then
            (t.mag.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land limb_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
      make t.sign r
    end
  end

let trailing_zeros t =
  if t.sign = 0 then 0
  else begin
    let i = ref 0 in
    while t.mag.(!i) = 0 do
      incr i
    done;
    let limb = t.mag.(!i) in
    let b = ref 0 in
    while limb land (1 lsl !b) = 0 do
      incr b
    done;
    (!i * base_bits) + !b
  end

let is_power_of_two t =
  t.sign = 1
  &&
  let n = Array.length t.mag in
  let top = t.mag.(n - 1) in
  top land (top - 1) = 0
  &&
  let rec low_zero i = i >= n - 1 || (t.mag.(i) = 0 && low_zero (i + 1)) in
  low_zero 0

(* Binary (Stein) gcd: only shifts and subtractions, which are far cheaper
   here than the bit-by-bit division a Euclid loop would lean on. *)
let gcd a b =
  let a = abs a and b = abs b in
  if is_zero a then b
  else if is_zero b then a
  else begin
    let ka = trailing_zeros a and kb = trailing_zeros b in
    let common = Stdlib.min ka kb in
    let rec loop a b =
      (* both odd *)
      let c = compare_mag a.mag b.mag in
      if c = 0 then a
      else begin
        let hi, lo = if c > 0 then (a, b) else (b, a) in
        let d = sub hi lo in
        loop (shift_right d (trailing_zeros d)) lo
      end
    in
    shift_left (loop (shift_right a ka) (shift_right b kb)) common
  end

let to_float t =
  let v = ref 0. in
  for i = Array.length t.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !v

let to_int_opt t =
  (* a native int needs at most 5 limbs (63 bits); accumulate on the
     negative side, which (unlike the positive one) reaches min_int *)
  if Array.length t.mag > 5 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = Array.length t.mag - 1 downto 0 do
      (* v*base - limb underflows exactly when v < ceil((min_int+limb)/base);
         truncation toward zero IS that ceiling for a negative dividend *)
      let limit = (min_int + t.mag.(i)) / base in
      if !v < limit then ok := false else v := (!v * base) - t.mag.(i)
    done;
    if not !ok then None
    else if t.sign >= 0 then if !v = min_int then None else Some (- !v)
    else Some !v
  end

(* Divide a magnitude by a small positive int in place-free style; used by
   decimal printing only. *)
let divmod_small mag d =
  let n = Array.length mag in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r * base) + mag.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (trim q, !r)

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let mag = ref t.mag in
    while Array.length !mag > 0 do
      let q, r = divmod_small !mag 10_000 in
      chunks := r :: !chunks;
      mag := q
    done;
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end
