(** Arbitrary-precision signed integers, pure OCaml.

    Backing store for {!Ratio}'s exact rational arithmetic; implemented
    with base-2^15 limbs and schoolbook algorithms, which is ample for the
    certificate-sized numbers this repo manipulates. No external
    dependencies (deliberately: the container has no zarith). *)

type t

val zero : t
val one : t
val of_int : int -> t

val to_int_opt : t -> int option
(** [None] when the value does not fit a native [int]. *)

val sign : t -> int
(** [-1], [0], or [1]. *)

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: quotient toward zero, remainder carries the
    dividend's sign (as OCaml's [/] and [mod]). Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative; [gcd 0 0 = 0]. *)

val shift_left : t -> int -> t
(** Multiply by 2^bits. Raises [Invalid_argument] on a negative shift. *)

val shift_right : t -> int -> t
(** Divide the magnitude by 2^bits, truncating (sign preserved). Raises
    [Invalid_argument] on a negative shift. *)

val trailing_zeros : t -> int
(** Index of the lowest set bit of the magnitude; [0] for zero. *)

val is_power_of_two : t -> bool
(** True exactly for positive powers of two (including [one]). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_float : t -> float
(** Nearest double ([infinity] on overflow). *)

val to_string : t -> string
(** Decimal. *)
