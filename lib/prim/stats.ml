let check_nonempty name = function [] -> invalid_arg ("Stats." ^ name ^ ": empty list") | _ -> ()

let mean xs =
  check_nonempty "mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean xs =
  check_nonempty "geomean" xs;
  List.iter (fun x -> if x <= 0. then invalid_arg "Stats.geomean: non-positive value") xs;
  exp (mean (List.map log xs))

let sorted xs = List.sort compare xs

let interpolate a p =
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let pos = p /. 100. *. float_of_int (n - 1) in
    let i = int_of_float (floor pos) in
    let frac = pos -. float_of_int i in
    if i + 1 >= n then a.(n - 1) else (a.(i) *. (1. -. frac)) +. (a.(i + 1) *. frac)

let quantiles ps xs =
  check_nonempty "quantiles" xs;
  List.iter
    (fun p -> if p < 0. || p > 100. then invalid_arg "Stats.quantiles: p out of range")
    ps;
  let a = Array.of_list (sorted xs) in
  List.map (interpolate a) ps

let percentile p xs =
  check_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  interpolate (Array.of_list (sorted xs)) p

let median xs = percentile 50. xs

let stddev xs =
  check_nonempty "stddev" xs;
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
  sqrt var

let minimum xs = check_nonempty "minimum" xs; List.fold_left min infinity xs
let maximum xs = check_nonempty "maximum" xs; List.fold_left max neg_infinity xs

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  check_nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo = minimum xs and hi = maximum xs in
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bin_of x =
    if width = 0. then 0
    else min (bins - 1) (max 0 (int_of_float ((x -. lo) /. width)))
  in
  List.iter (fun x -> let b = bin_of x in counts.(b) <- counts.(b) + 1) xs;
  { lo; hi; counts }

let render_histogram ?(width = 50) { lo; hi; counts } =
  let bins = Array.length counts in
  let bin_width = (hi -. lo) /. float_of_int bins in
  let maxc = Array.fold_left max 1 counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let b_lo = lo +. (float_of_int i *. bin_width) in
      let bar = String.make (c * width / maxc) '#' in
      Buffer.add_string buf (Printf.sprintf "%12.4g | %-*s %d\n" b_lo width bar c))
    counts;
  Buffer.contents buf
