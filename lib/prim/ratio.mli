(** Exact normalized rationals (arbitrary precision, no external deps).

    The solution-certification layer ({!Certify} in [lib/certify]) replays
    floating-point solver output in this type. Every finite double is
    exactly a dyadic rational, so {!of_float} is lossless and sums and
    products of converted values incur no rounding at all — a residual of
    zero means the constraint holds {e exactly}, and a nonzero residual is
    the {e exact} violation amount.

    Invariants: the denominator is positive and coprime with the
    numerator; zero is represented as 0/1. *)

type t

val zero : t
val one : t

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints n d] is n/d. Raises [Invalid_argument] when [d = 0]. *)

val of_bigint : Bigint.t -> t

val of_float : float -> t
(** Exact conversion of a finite double. Raises [Invalid_argument] on
    NaN or infinities. *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den], normalized. Raises [Invalid_argument] when [den] is
    zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Normalized components: [den] is positive, [gcd (abs num) den = 1]. *)

val sign : t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

val to_float : t -> float
(** Nearest double (approximate for large components). *)

val to_string : t -> string
(** ["num/den"], or just ["num"] for integers. Exact. *)
