(* Exact normalized rationals over Bigint. The certification layer replays
   floating-point solver output in this type: every finite double is
   exactly a dyadic rational, so [of_float] is lossless and all subsequent
   +/-/* are exact. Invariant: den > 0 and gcd(|num|, den) = 1; zero is
   0/1. *)

type t = { num : Bigint.t; den : Bigint.t }

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }

let make num den =
  if Bigint.is_zero den then invalid_arg "Ratio.make: zero denominator";
  if Bigint.is_zero num then zero
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    if Bigint.equal den Bigint.one then { num; den }
    else if Bigint.is_power_of_two den then begin
      (* dyadic fast path — the certifier's whole workload: floats are
         dyadic and +/-/* keep denominators powers of two, so the gcd is
         2^k with k read straight off the trailing zeros *)
      let k = Stdlib.min (Bigint.trailing_zeros num) (Bigint.trailing_zeros den) in
      if k = 0 then { num; den }
      else { num = Bigint.shift_right num k; den = Bigint.shift_right den k }
    end
    else begin
      let g = Bigint.gcd num den in
      if Bigint.equal g Bigint.one then { num; den }
      else { num = Bigint.div num g; den = Bigint.div den g }
    end
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let num t = t.num
let den t = t.den

(* Exact: decompose the double as mantissa * 2^exponent. *)
let of_float f =
  if not (Float.is_finite f) then invalid_arg "Ratio.of_float: not finite";
  if f = 0. then zero
  else begin
    let m, e = Float.frexp f in
    let mant = int_of_float (Float.ldexp m 53) in
    let exp = e - 53 in
    if exp >= 0 then of_bigint (Bigint.shift_left (Bigint.of_int mant) exp)
    else make (Bigint.of_int mant) (Bigint.shift_left Bigint.one (-exp))
  end

let sign t = Bigint.sign t.num
let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let div a b =
  if Bigint.is_zero b.num then raise Division_by_zero;
  make (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)

let compare a b =
  (* denominators are positive, so cross-multiplication preserves order *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_integer t = Bigint.equal t.den Bigint.one

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den
