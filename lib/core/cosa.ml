type weights = Cosa_formulation.weights = { w_util : float; w_comp : float; w_traf : float }

let default_weights = Cosa_formulation.default_weights

(* Weight the traffic term by the architecture's NoC cycles-per-word so
   that traffic and compute are commensurable; the compute and utilisation
   weights come from a micro-benchmark sweep on the baseline architecture
   (Section III-D4's procedure; see the abl_weights bench). Double
   buffering hides transfers behind compute in this substrate, so compute
   cycles carry the larger weight. *)
let calibrate arch =
  let gb = arch.Spec.levels.(Spec.level_count arch - 2) in
  let words_per_cycle = gb.Spec.bandwidth_words /. float_of_int (Spec.num_pes arch) in
  let cycles_per_word = 1. /. Float.max 1e-9 words_per_cycle in
  { w_util = 0.5; w_comp = 4.; w_traf = Float.max 0.5 (Float.min 4. cycles_per_word) }

type objective_breakdown = Cosa_objective.t = {
  util : float;
  comp : float;
  traf : float;
  total : float;
}

type strategy = Auto | Joint | Two_stage | Heuristic

let strategy_to_string = function
  | Auto -> "auto"
  | Joint -> "joint"
  | Two_stage -> "two-stage"
  | Heuristic -> "heuristic"

(* Which rung of the degradation ladder produced the returned mapping. *)
type source = Milp_joint | Milp_two_stage | Heuristic_sampler | Trivial

let source_to_string = function
  | Milp_joint -> "joint MIP"
  | Milp_two_stage -> "two-stage MIP"
  | Heuristic_sampler -> "heuristic sampler"
  | Trivial -> "trivial fallback"

type certify_mode = Certify.Certificate.mode = Off | Warn | Strict

let certify_mode_to_string = Certify.Certificate.mode_to_string

(* Outcome of the exact-arithmetic certification stage for the returned
   mapping (Cert_skipped exactly when certification ran in [Off] mode). *)
type certification = Cert_skipped | Cert_ok | Cert_failed of string list

let certification_to_string = function
  | Cert_skipped -> "certification skipped"
  | Cert_ok -> "certified"
  | Cert_failed vs -> "certification FAILED: " ^ String.concat "; " vs

type result = {
  mapping : Mapping.t;
  objective : objective_breakdown;
  solver_status : Milp.Bb.status;
  solve_time : float;
  nodes : int;
  repaired : bool;
  used_joint : bool;
  source : source;
  certification : certification;
      (* exact-arithmetic verdict on the returned mapping (and, for MIP
         rungs, on the solver's claimed solution) *)
  fallback_chain : Robust.Failure.t list;
      (* why each failed rung fell through, in the order the ladder was
         descended; empty exactly when the answer came without a fallback *)
}

let breakdown_of_mapping ?weights arch m = Cosa_objective.of_mapping ?weights arch m

(* Telemetry: one span per ladder rung (category "cosa") carrying the
   strategy and the certification verdict, plus counters for which rung
   served and how certification went. *)
let m_schedules = Telemetry.Metrics.counter "cosa.schedules"
let m_src_joint = Telemetry.Metrics.counter "cosa.source.joint"
let m_src_two_stage = Telemetry.Metrics.counter "cosa.source.two_stage"
let m_src_heuristic = Telemetry.Metrics.counter "cosa.source.heuristic"
let m_src_trivial = Telemetry.Metrics.counter "cosa.source.trivial"
let m_cert_ok = Telemetry.Metrics.counter "cosa.cert.ok"
let m_cert_failed = Telemetry.Metrics.counter "cosa.cert.failed"
let m_fallbacks = Telemetry.Metrics.counter "cosa.fallback_steps"

let source_counter = function
  | Milp_joint -> m_src_joint
  | Milp_two_stage -> m_src_two_stage
  | Heuristic_sampler -> m_src_heuristic
  | Trivial -> m_src_trivial

let verdict_token = function
  | Cert_skipped -> "skipped"
  | Cert_ok -> "ok"
  | Cert_failed _ -> "failed"

let trivial_mapping arch layer =
  let nlev = Spec.level_count arch in
  let dram = Spec.dram_level arch in
  let levels =
    Array.init nlev (fun i ->
        if i = dram then
          { Mapping.temporal =
              List.filter_map
                (fun d ->
                  let b = Layer.padded_bound layer d in
                  if b > 1 then Some { Mapping.dim = d; bound = b } else None)
                Cosa_decode.canonical_inner_order;
            spatial = [] }
        else { Mapping.temporal = []; spatial = [] })
  in
  Mapping.make layer levels

let schedule_impl ?weights ?(strategy = Auto) ?(node_limit = 50_000) ?(time_limit = 4.)
    ?(deadline = Robust.Deadline.none) ?(heuristic_retries = 3) ?(certify = Warn)
    ?(warm_start = true) ?refactor_interval arch layer =
  (* [warm_start] here toggles LP warm starting (parent-basis dual simplex)
     inside B&B; the MIP-start incumbent below reuses the name locally. *)
  let warm_lp_enabled = warm_start in
  let weights = match weights with Some w -> w | None -> calibrate arch in
  let t0 = Robust.Deadline.now () in
  (* effective budget: the tighter of the per-call time limit and the
     caller's absolute deadline; threaded through B&B into the simplex *)
  let dl = Robust.Deadline.tighten (Robust.Deadline.after time_limit) deadline in
  let failures = ref [] in
  let push f = failures := f :: !failures in
  let chain () = Robust.Failure.dedup_consecutive (List.rev !failures) in
  let last_status = ref Milp.Bb.No_solution in
  let total_nodes = ref 0 in
  let solve_time () = Robust.Deadline.now () -. t0 in
  let finish ?(repaired = false) ~certification ~source mapping =
    let fallback_chain = chain () in
    Telemetry.Metrics.incr (source_counter source);
    Telemetry.Metrics.add m_fallbacks (List.length fallback_chain);
    (match certification with
     | Cert_ok -> Telemetry.Metrics.incr m_cert_ok
     | Cert_failed _ -> Telemetry.Metrics.incr m_cert_failed
     | Cert_skipped -> ());
    {
      mapping;
      objective = Cosa_objective.of_mapping ~weights arch mapping;
      solver_status = !last_status;
      solve_time = solve_time ();
      nodes = !total_nodes;
      repaired;
      used_joint = (source = Milp_joint);
      source;
      certification;
      fallback_chain;
    }
  in
  (* Certification stage, run on every rung's candidate before it is
     accepted: replay the solver's claimed LP solution (MIP rungs only)
     and independently recheck the decoded mapping, both in exact
     arithmetic. Returns the verdict to record plus, on violation, the
     typed failure that [Strict] mode pushes before descending a rung. *)
  let certify_candidate ?lp mapping =
    match certify with
    | Off -> (Cert_skipped, None)
    | Warn | Strict ->
      let lp_cert =
        match lp with
        | Some (model, obj, values) -> Certify.Lp_cert.check ~obj model values
        | None -> Certify.Certificate.Certified
      in
      let cert =
        Certify.Certificate.combine lp_cert (Certify.Mapping_cert.check arch mapping)
      in
      (match cert with
       | Certify.Certificate.Certified -> (Cert_ok, None)
       | Certify.Certificate.Violated vs ->
         ( Cert_failed (List.map Certify.Certificate.violation_to_string vs),
           Certify.Certificate.to_failure cert ))
  in
  (* In [Strict] mode a candidate with a failed certificate is rejected —
     the violation joins the fallback chain and the ladder descends (via
     [retry]); in [Warn] mode the candidate is kept with the verdict
     recorded on the result. *)
  let accept_certified ?lp mapping retry k =
    match certify_candidate ?lp mapping with
    | _, Some f when certify = Strict ->
      push f;
      retry ()
    | verdict, _ -> k verdict
  in
  (* Sample up to [n] valid mappings and keep the best by the CoSA
     objective, evaluating each candidate exactly once. Used both to seed
     the branch-and-bound with an incumbent (MIP start) and as the
     heuristic rung of the degradation ladder. *)
  let best_sampled ~seed ~n =
    let rng = Prim.Rng.create seed in
    let scored =
      List.filter_map
        (fun _ ->
          match Sampler.valid rng arch layer with
          | None -> None
          | Some c ->
            Some ((Cosa_objective.of_mapping ~weights arch c).Cosa_objective.total, c))
        (List.init n Fun.id)
    in
    match scored with
    | [] -> None
    | first :: rest ->
      Some
        (snd
           (List.fold_left
              (fun (bs, bm) (s, m) -> if s < bs then (s, m) else (bs, bm))
              first rest))
  in
  let warm =
    if Robust.Deadline.expired dl || Robust.Fault.fire "cosa.warm" then None
    else best_sampled ~seed:0x5eed ~n:8
  in
  (* Rung 1: one-shot constrained optimisation. A failed attempt records
     why (typed) and yields None instead of raising. Each attempt gets an
     explicit share of the remaining budget so that under [Auto] the joint
     solve cannot starve the two-stage one; [dl] still caps the total. *)
  let attempt ~budget joint =
    let sp =
      Telemetry.Trace.begin_span ~cat:"cosa"
        (if joint then "cosa.rung.joint" else "cosa.rung.two_stage")
    in
    let outcome =
    match Cosa_formulation.build ~weights ~joint_permutation:joint arch layer with
    | exception Robust.Failure.Error f ->
      push f;
      None
    | exception e ->
      push (Robust.Failure.Invalid_input (Printexc.to_string e));
      None
    | f ->
      let warm_start =
        match warm with
        | Some wm -> Cosa_formulation.mip_start f wm
        | None -> None
      in
      let res =
        Milp.Bb.solve ~node_limit ~time_limit:budget ~deadline:dl
          ~priority:f.Cosa_formulation.priority ~gap:0.05 ?warm_start
          ~warm_lp:warm_lp_enabled ?refactor_interval f.Cosa_formulation.lp
      in
      total_nodes := !total_nodes + res.Milp.Bb.nodes;
      last_status := res.Milp.Bb.status;
      let fail_with fallback =
        (* prefer the solver's own typed failures; fall back to a
           status-derived cause when it swallowed none *)
        (match List.sort_uniq compare res.Milp.Bb.failures with
         | [] -> push fallback
         | fs -> List.iter push fs);
        None
      in
      (match res.Milp.Bb.status with
       | Milp.Bb.Optimal | Milp.Bb.Feasible -> (
         match Cosa_decode.decode_r f res with
         | Error df ->
           push df;
           None
         | Ok m ->
           let m = if joint then m else Cosa_decode.best_noc_order ~weights arch m in
           let m, repaired = Cosa_decode.repair arch m in
           if Mapping.is_valid arch m then
             accept_certified
               ~lp:(f.Cosa_formulation.lp, res.Milp.Bb.obj, res.Milp.Bb.values)
               m
               (fun () -> None)
               (fun verdict -> Some (m, res, repaired, verdict))
           else (
             push Robust.Failure.Decode_failed;
             None))
       | Milp.Bb.Infeasible | Milp.Bb.Unbounded -> fail_with Robust.Failure.Infeasible
       | Milp.Bb.No_solution ->
         fail_with
           (if Robust.Deadline.expired dl then Robust.Failure.Deadline_exceeded
            else Robust.Failure.Iteration_limit))
    in
    Telemetry.Trace.end_span
      ~args:
        [ ("strategy", strategy_to_string strategy);
          ( "verdict",
            match outcome with
            | Some (_, _, _, v) -> verdict_token v
            | None -> "fell-through" ) ]
      sp;
    outcome
  in
  let milp_attempts =
    match strategy with
    | Joint -> [ true ]
    | Two_stage -> [ false ]
    | Auto -> [ true; false ]
    | Heuristic -> [] (* skip the MIP rungs entirely; start at the sampler *)
  in
  let n_attempts = List.length milp_attempts in
  let milp_results =
    List.filter_map Fun.id
    @@ List.mapi
      (fun i joint ->
        if Robust.Deadline.expired dl then begin
          push Robust.Failure.Deadline_exceeded;
          None
        end
        else
          (* even split of what is left over the attempts still to run *)
          let budget =
            Robust.Deadline.remaining dl /. float_of_int (n_attempts - i)
          in
          match attempt ~budget joint with
          | Some (m, res, repaired, verdict) -> Some (joint, m, res, repaired, verdict)
          | None -> None)
      milp_attempts
  in
  (* Arbitrate between the (at most two) one-shot candidates with a single
     analytical-model evaluation each — deterministic and closed-form, not
     iterative search (see DESIGN.md fidelity notes). *)
  let scored =
    List.map
      (fun ((_, m, _, _, _) as cand) -> ((Model.evaluate arch m).Model.latency, cand))
      milp_results
  in
  match List.sort (fun (a, _) (b, _) -> compare a b) scored with
  | (_, (joint, mapping, res, repaired, verdict)) :: _ ->
    last_status := res.Milp.Bb.status;
    finish ~repaired ~certification:verdict
      ~source:(if joint then Milp_joint else Milp_two_stage)
      mapping
  | [] -> (
    (* Rung 2: heuristic sampler with seed-perturbed retries. *)
    let rec heuristic k =
      if Robust.Deadline.expired dl then begin
        push Robust.Failure.Deadline_exceeded;
        None
      end
      else if k > heuristic_retries then begin
        push Robust.Failure.Infeasible;
        None
      end
      else
        match best_sampled ~seed:(0x5eed + (0x9e37 * k)) ~n:8 with
        | Some m ->
          accept_certified m (fun () -> heuristic (k + 1)) (fun verdict -> Some (m, verdict))
        | None -> heuristic (k + 1)
    in
    (* the warm-start incumbent, when it exists, is already rung-2 output,
       but it too must pass certification before being returned *)
    let sp = Telemetry.Trace.begin_span ~cat:"cosa" "cosa.rung.heuristic" in
    let heuristic_result =
      match warm with
      | Some m -> accept_certified m (fun () -> heuristic 0) (fun verdict -> Some (m, verdict))
      | None -> heuristic 0
    in
    Telemetry.Trace.end_span
      ~args:
        [ ( "verdict",
            match heuristic_result with
            | Some (_, v) -> verdict_token v
            | None -> "fell-through" ) ]
      sp;
    match heuristic_result with
    | Some (m, verdict) -> finish ~certification:verdict ~source:Heuristic_sampler m
    | None ->
      (* Rung 3: the all-DRAM schedule — always constructible, always
         valid, never worth returning unless everything above failed. There
         is no rung below it, so a strict-mode certification failure here
         is recorded on the result (and in the chain) rather than hidden. *)
      let sp = Telemetry.Trace.begin_span ~cat:"cosa" "cosa.rung.trivial" in
      let m = trivial_mapping arch layer in
      let verdict, failure = certify_candidate m in
      (match failure with Some f when certify = Strict -> push f | _ -> ());
      Telemetry.Trace.end_span ~args:[ ("verdict", verdict_token verdict) ] sp;
      finish ~certification:verdict ~source:Trivial m)

(* Public entry point: one "cosa.schedule" span per call, annotated with
   the layer, the serving rung, and the certification verdict. *)
let schedule ?weights ?strategy ?node_limit ?time_limit ?deadline ?heuristic_retries
    ?certify ?warm_start ?refactor_interval arch layer =
  Telemetry.Metrics.incr m_schedules;
  let sp = Telemetry.Trace.begin_span ~cat:"cosa" "cosa.schedule" in
  let r =
    schedule_impl ?weights ?strategy ?node_limit ?time_limit ?deadline
      ?heuristic_retries ?certify ?warm_start ?refactor_interval arch layer
  in
  Telemetry.Trace.end_span
    ~args:
      [ ("layer", layer.Layer.name); ("source", source_to_string r.source);
        ("verdict", verdict_token r.certification) ]
    sp;
  r
