let canonical_inner_order = Dims.[ N; K; C; S; R; Q; P ]

let pow_int base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

(* Legacy decoder: raises [Invalid_argument] on an empty solution. Prefer
   [decode_r], which returns a typed failure instead. *)
let decode (f : Cosa_formulation.t) (res : Milp.Bb.result) =
  if Array.length res.Milp.Bb.values = 0 then invalid_arg "Cosa_decode.decode: no solution";
  let arch = f.Cosa_formulation.arch in
  let nlev = Spec.level_count arch in
  let groups = f.Cosa_formulation.groups in
  let ng = Array.length groups in
  let count var = int_of_float (Float.round (Milp.Bb.value res var)) in
  (* per-(level, dim) bounds *)
  let tacc = Array.init nlev (fun _ -> Array.make 7 1) in
  let sacc = Array.init nlev (fun _ -> Array.make 7 1) in
  for gi = 0 to ng - 1 do
    let g = groups.(gi) in
    let di = Dims.dim_index g.Cosa_formulation.gdim in
    for i = 0 to nlev - 1 do
      let ct = count f.Cosa_formulation.x_t.(gi).(i) in
      tacc.(i).(di) <- tacc.(i).(di) * pow_int g.Cosa_formulation.prime ct;
      match f.Cosa_formulation.x_s.(gi).(i) with
      | Some v ->
        let cs = count v in
        sacc.(i).(di) <- sacc.(i).(di) * pow_int g.Cosa_formulation.prime cs
      | None -> ()
    done
  done;
  (* NoC-boundary order from the rank permutation matrix: slot 0 is the
     innermost loop, so the outermost-first order lists high slots first. *)
  let noc_order =
    if Array.for_all (fun r -> Array.length r = 0) f.Cosa_formulation.rank then
      canonical_inner_order
    else begin
      let slot_of_dim di =
        let row = f.Cosa_formulation.rank.(di) in
        let s = ref (-1) in
        Array.iteri (fun z v -> if count v = 1 then s := z) row;
        !s
      in
      List.map fst
        (List.sort
           (fun (_, a) (_, b) -> compare b a)
           (List.map (fun d -> (d, slot_of_dim (Dims.dim_index d))) Dims.all_dims))
    end
  in
  let noc_lvls = Cosa_formulation.noc_temporal_levels arch in
  let levels =
    Array.init nlev (fun i ->
        let order = if List.mem i noc_lvls then noc_order else canonical_inner_order in
        let temporal =
          List.filter_map
            (fun d ->
              let b = tacc.(i).(Dims.dim_index d) in
              if b > 1 then Some { Mapping.dim = d; bound = b } else None)
            order
        in
        let spatial =
          List.filter_map
            (fun d ->
              let b = sacc.(i).(Dims.dim_index d) in
              if b > 1 then Some { Mapping.dim = d; bound = b } else None)
            Dims.all_dims
        in
        { Mapping.temporal; spatial })
  in
  Mapping.make f.Cosa_formulation.layer levels

(* Result-returning decoder: no exception escapes. An empty solution vector
   or any decode-time exception becomes [Decode_failed]; the fault harness
   can force a failure here via the "decode.decode" site. *)
let decode_r (f : Cosa_formulation.t) (res : Milp.Bb.result) =
  match Robust.Fault.check "decode.decode" with
  | Error e -> Error e
  | Ok () ->
    if Array.length res.Milp.Bb.values = 0 then Error Robust.Failure.Decode_failed
    else (
      match decode f res with
      | m -> Ok m
      | exception _ -> Error Robust.Failure.Decode_failed)

(* Move one prime factor of a dimension relevant to the overflowing tensor
   from below the overflowing buffer to the overflow level itself (which
   shrinks that buffer's tile and no other level's). Spatial factors are
   demoted to temporal if no temporal factor is available. *)
let repair arch m =
  let changed = ref false in
  let current = ref m in
  let demote level_from spatial_from d target =
    let lv = !current.Mapping.levels in
    let lm = lv.(level_from) in
    let loops = if spatial_from then lm.Mapping.spatial else lm.Mapping.temporal in
    (* strip one prime off the first loop of dim d with bound > 1 *)
    let rec strip = function
      | [] -> None
      | (l : Mapping.loop) :: rest when l.Mapping.dim = d && l.Mapping.bound > 1 ->
        let p = List.hd (Prim.Factorize.prime_factors l.Mapping.bound) in
        let b = l.Mapping.bound / p in
        Some (p, if b > 1 then { l with Mapping.bound = b } :: rest else rest)
      | l :: rest ->
        (match strip rest with None -> None | Some (p, ls) -> Some (p, l :: ls))
    in
    match strip loops with
    | None -> false
    | Some (p, loops') ->
      begin
        let lv' = Array.copy lv in
        lv'.(level_from) <-
          (if spatial_from then { lm with Mapping.spatial = loops' }
           else { lm with Mapping.temporal = loops' });
        (* add the factor as a temporal loop at the target level, outermost *)
        let tgt = lv'.(target) in
        let merged =
          let rec add = function
            | [] -> [ { Mapping.dim = d; bound = p } ]
            | (l : Mapping.loop) :: rest when l.Mapping.dim = d ->
              { l with Mapping.bound = l.Mapping.bound * p } :: rest
            | l :: rest -> l :: add rest
          in
          add tgt.Mapping.temporal
        in
        lv'.(target) <- { tgt with Mapping.temporal = merged };
        current := Mapping.make !current.Mapping.layer lv';
        changed := true;
        true
      end
  in
  let attempts = ref 0 in
  let rec fix () =
    incr attempts;
    if !attempts > 500 then ()
    else
      match Mapping.validate arch !current with
      | [] -> ()
      | vs ->
        let overflow =
          List.find_map
            (function Mapping.Buffer_overflow (i, v, _, _) -> Some (i, v) | _ -> None)
            vs
        in
        (match overflow with
         | None -> () (* spatial/factorization problems are not repairable here *)
         | Some (lvl, v) ->
           (* try to demote a relevant temporal factor from the level just
              below, scanning downward, then spatial factors *)
           let dims_rel =
             List.filter (fun d -> Dims.model_relevant d v) Dims.all_dims
           in
           let moved = ref false in
           let try_levels spatial_from =
             let i = ref (lvl - 1) in
             while (not !moved) && !i >= 0 do
               List.iter
                 (fun d -> if not !moved then moved := demote !i spatial_from d lvl)
                 dims_rel;
               decr i
             done
           in
           try_levels false;
           if not !moved then try_levels true;
           if !moved then fix () else ())
  in
  fix ();
  (!current, !changed)

let best_noc_order ?weights arch m =
  let noc_lvls = Cosa_formulation.noc_temporal_levels arch in
  let present =
    List.sort_uniq compare
      (List.concat_map
         (fun i ->
           List.map (fun (l : Mapping.loop) -> l.Mapping.dim) m.Mapping.levels.(i).Mapping.temporal)
         noc_lvls)
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))
        l
  in
  let reorder order =
    let levels =
      Array.mapi
        (fun i lm ->
          if List.mem i noc_lvls then
            { lm with
              Mapping.temporal =
                List.filter_map
                  (fun d ->
                    List.find_opt (fun (l : Mapping.loop) -> l.Mapping.dim = d)
                      lm.Mapping.temporal)
                  order }
          else lm)
        m.Mapping.levels
    in
    Mapping.make m.Mapping.layer levels
  in
  let candidates = List.map reorder (permutations present) in
  let score c = (Cosa_objective.of_mapping ?weights arch c).Cosa_objective.total in
  match candidates with
  | [] -> m
  | first :: rest ->
    let best = ref first and best_score = ref (score first) in
    List.iter
      (fun c ->
        let s = score c in
        if s < !best_score then begin
          best := c;
          best_score := s
        end)
      rest;
    !best
