(** CoSA: one-shot DNN scheduling by constrained optimization.

    The public entry point of the library. {!schedule} formulates the
    layer/architecture pair as a MIP (Section III of the paper), solves it
    with the bundled branch-and-bound solver, and decodes the solution into
    a valid {!Mapping.t} — no iterative search, no simulation feedback. *)

type weights = Cosa_formulation.weights = { w_util : float; w_comp : float; w_traf : float }

val default_weights : weights

val calibrate : Spec.t -> weights
(** The paper's micro-benchmark procedure: weight the traffic objective by
    the architecture's cycles-per-word to cycles-per-MAC ratio so that
    [w_T * Traf] and [w_C * Comp] are commensurable (Section III-D4). *)

type objective_breakdown = Cosa_objective.t = {
  util : float;  (** Eq. 5 value (to be maximised) *)
  comp : float;  (** Eq. 6 value *)
  traf : float;  (** Eq. 11 value *)
  total : float;  (** Eq. 12 composite *)
}

type strategy =
  | Auto  (** joint MIP and two-stage decomposition, best Eq.-12 value wins *)
  | Joint  (** the paper's single joint MIP only *)
  | Two_stage  (** tiling/spatial MIP, then exact permutation sub-solve *)
  | Heuristic
      (** skip the MIP rungs entirely: serve the best valid sampled mapping
          (the degradation ladder's rung 2). The deadline-pressure strategy —
          a few milliseconds instead of a solve — used by the daemon's
          admission controller when the remaining SLO budget cannot fit a
          MIP rung. *)

val strategy_to_string : strategy -> string

type source =
  | Milp_joint  (** the paper's one-shot joint MIP *)
  | Milp_two_stage  (** tiling MIP + exact permutation sub-solve *)
  | Heuristic_sampler  (** random valid-mapping sampler, best-of-N *)
  | Trivial  (** the all-DRAM fallback schedule *)

val source_to_string : source -> string

type certify_mode = Certify.Certificate.mode =
  | Off  (** no certification; trust the float pipeline *)
  | Warn  (** certify and record the verdict, but keep the candidate *)
  | Strict  (** a failed certificate rejects the rung; the ladder descends *)

val certify_mode_to_string : certify_mode -> string

type certification =
  | Cert_skipped  (** certification mode was [Off] *)
  | Cert_ok  (** the returned schedule passed exact-arithmetic certification *)
  | Cert_failed of string list
      (** violated constraints (with exact residuals); only reachable in
          [Warn] mode, or in [Strict] mode on the bottom (trivial) rung *)

val certification_to_string : certification -> string

type result = {
  mapping : Mapping.t;
  objective : objective_breakdown;
  solver_status : Milp.Bb.status;
  solve_time : float;  (** seconds, formulation + solve + decode *)
  nodes : int;
  repaired : bool;  (** decode needed the capacity repair pass *)
  used_joint : bool;  (** the returned mapping came from the joint MIP *)
  source : source;  (** the degradation-ladder rung that produced [mapping] *)
  certification : certification;
      (** exact-arithmetic verdict on the returned schedule: the solver's
          claimed LP solution replayed against the model (MIP rungs) and an
          independent recheck of the decoded mapping (all rungs) *)
  fallback_chain : Robust.Failure.t list;
      (** why each failed rung fell through, in ladder order, with runs of
          identical causes collapsed. Empty exactly when no rung failed. *)
}

val schedule :
  ?weights:weights ->
  ?strategy:strategy ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?deadline:Robust.Deadline.t ->
  ?heuristic_retries:int ->
  ?certify:certify_mode ->
  ?warm_start:bool ->
  ?refactor_interval:int ->
  Spec.t ->
  Layer.t ->
  result
(** Produce a schedule in one shot. [schedule] never raises and the
    returned mapping is always valid on the architecture: on any typed
    failure (solver abort, blown deadline, decode failure, injected fault)
    it descends the degradation ladder

    {v MIP (joint and/or two-stage) -> heuristic sampler -> all-DRAM v}

    recording each rung's failure in [fallback_chain]. The wall-clock
    budget is the tighter of [time_limit] (relative, default 4 s, covering
    the whole call) and [deadline] (absolute); it is enforced down to the
    simplex pivot loop, so even a single LP solve cannot blow the budget.
    [heuristic_retries] (default 3) bounds the seed-perturbed sampler
    retries on the heuristic rung. [warm_start] (default [true]) toggles
    LP warm starting inside branch-and-bound: child nodes reoptimize from
    the parent's simplex basis with dual simplex instead of solving cold.
    It only changes how fast nodes solve, never which schedule wins — the
    escape hatch exists for benchmarking and bisection.
    [refactor_interval] pins a fixed simplex refactorization cadence
    (every [n] eta updates) in place of the solver's stability-triggered
    default; like [warm_start] it can only change wall time, and exists
    for deterministic A/B bisection of suspected numerical drift.

    Every rung's candidate additionally passes through the exact-arithmetic
    certification layer ({!Certify}) according to [certify] (default
    [Warn]): MIP solutions are replayed against the LP model and the
    decoded mapping is independently rechecked, both in rational
    arithmetic. Under [Strict] a candidate whose certificate fails is
    rejected — the violation joins [fallback_chain] as
    {!Robust.Failure.Certification_failed} and the ladder descends — so
    the returned schedule is certified valid whenever
    [result.certification = Cert_ok]. *)

val breakdown_of_mapping : ?weights:weights -> Spec.t -> Mapping.t -> objective_breakdown
(** Evaluate the paper's three objective terms on {e any} concrete mapping
    (used by the Fig. 8 experiment to compare schedulers in objective
    space). *)

val trivial_mapping : Spec.t -> Layer.t -> Mapping.t
(** The always-valid schedule that keeps every loop temporal at DRAM. *)
