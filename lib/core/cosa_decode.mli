(** Turn a MIP solution into a concrete {!Mapping.t}.

    Loop order at the NoC boundary comes from the solved rank variables
    (or, in two-stage mode, a brute-force scan of the orders of the dims
    actually present). Inner-level order uses a fixed weight-stationary
    canonical order. Because the MIP's input-activation capacity term
    follows the paper's A matrix (no sliding-window halo), a decoded
    mapping can marginally overflow a buffer; {!repair} demotes factors
    outward until the mapping validates, so CoSA always returns a valid
    schedule. *)

val canonical_inner_order : Dims.dim list
(** Outermost-to-innermost order used at non-NoC levels: N K C S R Q P. *)

val decode : Cosa_formulation.t -> Milp.Bb.result -> Mapping.t
(** Raw decode, before repair. Raises [Invalid_argument] if the result has
    no solution values. *)

val decode_r :
  Cosa_formulation.t -> Milp.Bb.result -> (Mapping.t, Robust.Failure.t) Stdlib.result
(** Like {!decode} but total: an empty solution vector or any decode-time
    exception comes back as [Error Decode_failed], and the fault-injection
    site ["decode.decode"] can force an [Injected] failure. *)

val repair : Spec.t -> Mapping.t -> Mapping.t * bool
(** [repair arch m] returns a valid mapping and whether any change was
    needed. Factors are moved outward (toward DRAM) from overflowing
    buffers; the all-DRAM mapping is always valid, so this terminates. *)

val best_noc_order : ?weights:Cosa_formulation.weights -> Spec.t -> Mapping.t -> Mapping.t
(** Two-stage mode: re-order the NoC-boundary temporal loops by exhaustive
    scan over permutations of the dims present, keeping the order with the
    lowest paper-objective value (Eq. 12 via {!Cosa_objective}); this is an
    exact solve of the permutation sub-problem, not simulator feedback. *)
