type entry = { layer : Layer.t; repeats : int }

type t = { nname : string; entries : entry list }

let entry name repeats = { layer = Zoo.find name; repeats }

let resnet50 =
  {
    nname = "ResNet-50";
    entries =
      [
        entry "7_112_3_64_2" 1;
        (* conv2_x: 3 bottlenecks *)
        entry "1_56_64_64_1" 1;
        entry "1_56_256_64_1" 2;
        entry "3_56_64_64_1" 3;
        entry "1_56_64_256_1" 4 (* includes the projection shortcut *);
        (* conv3_x: 4 bottlenecks *)
        entry "1_56_256_128_1" 1;
        entry "3_28_128_128_2" 1;
        entry "3_28_128_128_1" 3;
        entry "1_28_128_512_1" 4;
        entry "1_28_512_128_1" 3;
        entry "1_28_256_512_2" 1 (* projection shortcut *);
        (* conv4_x: 6 bottlenecks *)
        entry "1_28_512_256_1" 1;
        entry "3_14_256_256_2" 1;
        entry "3_14_256_256_1" 5;
        entry "1_14_256_1024_1" 6;
        entry "1_14_1024_256_1" 5;
        entry "1_14_512_1024_2" 1 (* projection shortcut *);
        (* conv5_x: 3 bottlenecks *)
        entry "1_14_1024_512_1" 1;
        entry "3_7_512_512_2" 1;
        entry "3_7_512_512_1" 2;
        entry "1_7_512_2048_1" 3;
        entry "1_7_2048_512_1" 2;
        entry "1_7_1024_2048_2" 1 (* projection shortcut *);
        entry "fc1000" 1;
      ];
  }

let resnext50 =
  {
    nname = "ResNeXt-50";
    entries =
      [
        entry "x7_112_3_64_2" 1;
        entry "1_56_64_128_1" 1;
        entry "g3_56_4_4_1" (3 * 32);
        entry "1_56_128_256_1" 4;
        entry "x1_56_256_128_1" 2;
        entry "1_56_256_256_1" 1;
        entry "g3_28_8_8_2" 32;
        entry "g3_28_8_8_1" (3 * 32);
        entry "1_28_256_512_1" 2;
        entry "x1_28_512_256_1" 3;
        entry "1_28_512_512_1" 4;
        entry "g3_14_16_16_2" 32;
        entry "g3_14_16_16_1" (5 * 32);
        entry "1_14_512_1024_1" 2;
        entry "x1_14_1024_512_1" 5;
        entry "1_14_1024_1024_1" 6;
        entry "g3_7_32_32_2" 32;
        entry "g3_7_32_32_1" (2 * 32);
        entry "1_7_1024_2048_1" 2;
        entry "1_7_2048_1024_1" 2;
        entry "fc1000x" 1;
      ];
  }

(* Fusion-candidate chains: short producer->consumer sequences whose entry
   order is the execution order, so [Fuse.Chain.derive] finds them whole.
   The stem is the ResNet-C deep stem (three 3x3 convolutions replacing the
   7x7); the block is the standard bottleneck from the zoo. *)

let resnet50_stem =
  let conv ?(stride = 1) ~name ~p ~c ~k () =
    { layer = Layer.create ~name ~stride ~r:3 ~s:3 ~p ~q:p ~c ~k ~n:1 (); repeats = 1 }
  in
  {
    nname = "ResNet-50-stem";
    entries =
      [
        conv ~stride:2 ~name:"stem_3_112_3_32_2" ~p:112 ~c:3 ~k:32 ();
        conv ~name:"stem_3_112_32_32_1" ~p:112 ~c:32 ~k:32 ();
        conv ~name:"stem_3_112_32_64_1" ~p:112 ~c:32 ~k:64 ();
      ];
  }

let resnet50_block =
  {
    nname = "ResNet-50-block";
    entries =
      [ entry "1_56_256_64_1" 1; entry "3_56_64_64_1" 1; entry "1_56_64_256_1" 1 ];
  }

let layer_count t = List.fold_left (fun acc e -> acc + e.repeats) 0 t.entries

(* Shape deduplication: entries whose layers have equal canonical shape
   keys collapse to the first occurrence with their repeats summed, so a
   scheduler solves each distinct shape exactly once and weights the result
   by the combined instance count. Order follows first occurrence. *)
let distinct t =
  let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      let k = Layer.key e.layer in
      match Hashtbl.find_opt tbl k with
      | Some r -> r := !r + e.repeats
      | None ->
        let r = ref e.repeats in
        Hashtbl.add tbl k r;
        order := (e, r) :: !order)
    t.entries;
  List.rev_map (fun (e, r) -> (e, !r)) !order

let distinct_count t = List.length (distinct t)

let total_macs t =
  List.fold_left
    (fun acc e -> acc +. (float_of_int e.repeats *. float_of_int (Layer.macs e.layer)))
    0. t.entries

let networks = [ resnet50; resnext50; resnet50_stem; resnet50_block ]

(* Lookup tolerant of the usual spellings: "resnet50", "ResNet-50", ... *)
let find name =
  let canon s =
    String.concat ""
      (List.filter_map
         (fun c ->
           match Char.lowercase_ascii c with
           | ('a' .. 'z' | '0' .. '9') as l -> Some (String.make 1 l)
           | _ -> None)
         (List.init (String.length s) (String.get s)))
  in
  List.find_opt (fun n -> canon n.nname = canon name) networks
