type t = {
  name : string;
  r : int;
  s : int;
  p : int;
  q : int;
  c : int;
  k : int;
  n : int;
  stride : int;
}

let label_of ~r ~p ~c ~k ~stride = Printf.sprintf "%d_%d_%d_%d_%d" r p c k stride

let create ?name ?(stride = 1) ~r ~s ~p ~q ~c ~k ~n () =
  List.iter
    (fun (v, what) ->
      if v < 1 then invalid_arg (Printf.sprintf "Layer.create: %s = %d < 1" what v))
    [ (r, "r"); (s, "s"); (p, "p"); (q, "q"); (c, "c"); (k, "k"); (n, "n"); (stride, "stride") ];
  let name = match name with Some n -> n | None -> label_of ~r ~p ~c ~k ~stride in
  { name; r; s; p; q; c; k; n; stride }

let gemm ?name ~m ~n ~k () =
  let name = match name with Some s -> s | None -> Printf.sprintf "gemm_%dx%dx%d" m n k in
  create ~name ~r:1 ~s:1 ~p:n ~q:1 ~c:k ~k:m ~n:1 ()

let bound t = function
  | Dims.R -> t.r
  | Dims.S -> t.s
  | Dims.P -> t.p
  | Dims.Q -> t.q
  | Dims.C -> t.c
  | Dims.K -> t.k
  | Dims.N -> t.n

let padded_bound t d = Prim.Factorize.pad_to_factorable (bound t d)

let macs t = t.r * t.s * t.p * t.q * t.c * t.k * t.n

let input_width t = ((t.p - 1) * t.stride) + t.r
let input_height t = ((t.q - 1) * t.stride) + t.s

let tensor_words t = function
  | Dims.W -> t.r * t.s * t.c * t.k
  | Dims.IA -> input_width t * input_height t * t.c * t.n
  | Dims.OA -> t.p * t.q * t.k * t.n

let factors t =
  List.concat_map
    (fun d ->
      List.map (fun p -> (d, p)) (Prim.Factorize.prime_factors (padded_bound t d)))
    Dims.all_dims

let factor_groups t =
  List.concat_map
    (fun d ->
      List.map (fun (p, m) -> (d, p, m)) (Prim.Factorize.grouped_factors (padded_bound t d)))
    Dims.all_dims

let key t =
  Printf.sprintf "r%d.s%d.p%d.q%d.c%d.k%d.n%d.st%d" t.r t.s t.p t.q t.c t.k t.n t.stride

let equal_shape a b = key a = key b

let label t = label_of ~r:t.r ~p:t.p ~c:t.c ~k:t.k ~stride:t.stride

let to_string t =
  Printf.sprintf "%s: R=%d S=%d P=%d Q=%d C=%d K=%d N=%d stride=%d" t.name t.r t.s t.p t.q
    t.c t.k t.n t.stride
