(** Whole-network workload descriptions: each distinct layer shape with its
    repetition count, so end-to-end network latency/energy can be computed
    from per-layer schedules (the per-layer figures in the paper weight
    every distinct shape equally; deployment cares about the weighted
    sum). *)

type entry = { layer : Layer.t; repeats : int }

type t = {
  nname : string;
  entries : entry list;
}

val resnet50 : t
(** ResNet-50 with the standard bottleneck repetition counts (3/4/6/3
    blocks); 53 convolutions + the FC layer in total. *)

val resnext50 : t
(** ResNeXt-50 32x4d; the grouped 3x3 entries carry an extra factor of 32
    in [repeats] (one schedule per group). *)

val layer_count : t -> int
(** Total layer instances (sum of repeats). *)

val distinct : t -> (entry * int) list
(** Shape-deduplicated entries: layers with equal {!Layer.key}s collapse to
    their first occurrence, repeats summed — the work-list a batch
    scheduler actually has to solve. First-occurrence order; the summed
    repeats of all groups add up to {!layer_count}. *)

val distinct_count : t -> int

val find : string -> t option
(** Case-, dash- and underscore-insensitive lookup in {!networks}
    (["resnet50"] finds ResNet-50). *)

val total_macs : t -> float

val networks : t list
