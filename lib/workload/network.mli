(** Whole-network workload descriptions: each distinct layer shape with its
    repetition count, so end-to-end network latency/energy can be computed
    from per-layer schedules (the per-layer figures in the paper weight
    every distinct shape equally; deployment cares about the weighted
    sum). *)

type entry = { layer : Layer.t; repeats : int }

type t = {
  nname : string;
  entries : entry list;
}

val resnet50 : t
(** ResNet-50 with the standard bottleneck repetition counts (3/4/6/3
    blocks); 53 convolutions + the FC layer in total. *)

val resnext50 : t
(** ResNeXt-50 32x4d; the grouped 3x3 entries carry an extra factor of 32
    in [repeats] (one schedule per group). *)

val resnet50_stem : t
(** Fusion-candidate chain: the ResNet-C deep stem (three 3x3 convolutions
    replacing the 7x7), entry order = execution order. *)

val resnet50_block : t
(** Fusion-candidate chain: one conv2_x bottleneck
    (1x1 256->64, 3x3 64->64, 1x1 64->256 at 56x56). *)

val layer_count : t -> int
(** Total layer instances (sum of repeats). *)

val distinct : t -> (entry * int) list
(** Shape-deduplicated entries: layers with equal {!Layer.key}s collapse to
    their first occurrence, repeats summed — the work-list a batch
    scheduler actually has to solve. First-occurrence order; the summed
    repeats of all groups add up to {!layer_count}. *)

val distinct_count : t -> int

val find : string -> t option
(** Case-, dash- and underscore-insensitive lookup in {!networks}
    (["resnet50"] finds ResNet-50). *)

val total_macs : t -> float

val networks : t list
