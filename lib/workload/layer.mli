(** A DNN layer as a 7-dimensional nested loop (the paper's target workload).

    Convolutions and matrix multiplications are both expressed this way:
    a GEMM is a convolution with [r = s = 1]. *)

type t = private {
  name : string;
  r : int;  (** filter width *)
  s : int;  (** filter height *)
  p : int;  (** output width *)
  q : int;  (** output height *)
  c : int;  (** input channels *)
  k : int;  (** output channels *)
  n : int;  (** batch size *)
  stride : int;
}

val create :
  ?name:string -> ?stride:int -> r:int -> s:int -> p:int -> q:int -> c:int -> k:int -> n:int ->
  unit -> t
(** Raises [Invalid_argument] on non-positive dimensions or stride. The
    default [name] follows the paper's [R_P_C_K_Stride] convention. *)

val gemm : ?name:string -> m:int -> n:int -> k:int -> unit -> t
(** [gemm ~m ~n ~k] is an [M x K @ K x N] matrix multiply: output channels
    [K_layer = m], spatial [p = n], reduction [c = k]. *)

val bound : t -> Dims.dim -> int
(** Loop bound of a dimension. *)

val padded_bound : t -> Dims.dim -> int
(** Loop bound after padding to a 7-smooth number (the paper pads loop
    bounds that are large primes before factorising). *)

val macs : t -> int
(** Total multiply-accumulates: r*s*p*q*c*k*n. *)

val tensor_words : t -> Dims.tensor -> int
(** Exact data-tensor footprint in elements. IA accounts for stride and the
    sliding window halo. *)

val input_width : t -> int
(** Input activation width [(p-1)*stride + r]. *)

val input_height : t -> int

val factors : t -> (Dims.dim * int) list
(** All prime factors of every padded loop bound, as (dim, prime) pairs,
    dims in index order, primes non-decreasing within a dim. Bounds of 1
    contribute nothing. *)

val factor_groups : t -> (Dims.dim * int * int) list
(** {!factors} grouped as (dim, prime, multiplicity). *)

val key : t -> string
(** Canonical shape key: all seven loop bounds plus the stride, with the
    display [name] deliberately excluded. Two layers with equal keys are
    interchangeable for scheduling — every mapper, the analytical model and
    the certifiers see only the dimensions — so the key is the layer's
    contribution to schedule-cache fingerprints and shape deduplication. *)

val equal_shape : t -> t -> bool
(** Structural equality on {!key} (name-blind). *)

val label : t -> string
(** The paper's x-axis label: [R_P_C_K_Stride]. *)

val to_string : t -> string
