type sense = Le | Ge | Eq

type var = { idx : int; vname : string }

type vinfo = { mutable lb : float; mutable ub : float; mutable integer : bool; v : var }

type constr = { terms : (int * float) array; csense : sense; rhs : float; cname : string }

type model = {
  mname : string;
  mutable vars : vinfo array;
  mutable nvars : int;
  mutable cons : constr array;
  mutable ncons : int;
  mutable obj : float array; (* resized alongside vars *)
  mutable obj_sense : [ `Minimize | `Maximize ];
  mutable obj_const : float;
}

let create ?(name = "model") () =
  { mname = name; vars = [||]; nvars = 0; cons = [||]; ncons = 0; obj = [||];
    obj_sense = `Minimize; obj_const = 0. }

let grow_vars m =
  let cap = Array.length m.vars in
  if m.nvars >= cap then begin
    let ncap = max 16 (2 * cap) in
    let dummy = { lb = 0.; ub = 0.; integer = false; v = { idx = -1; vname = "" } } in
    let nv = Array.make ncap dummy in
    Array.blit m.vars 0 nv 0 m.nvars;
    m.vars <- nv;
    let nobj = Array.make ncap 0. in
    Array.blit m.obj 0 nobj 0 m.nvars;
    m.obj <- nobj
  end

let add_var m ?(integer = false) ?(lb = 0.) ?(ub = infinity) name =
  if lb > ub then
    (* typed, not [Invalid_argument]: this is reachable from [Cosa.schedule]
       via formulation building, and the Result pipeline must be able to
       catch it as a [Robust.Failure.t] *)
    raise
      (Robust.Failure.Error
         (Robust.Failure.Invalid_input (Printf.sprintf "Lp.add_var %s: lb > ub" name)));
  grow_vars m;
  let v = { idx = m.nvars; vname = name } in
  m.vars.(m.nvars) <- { lb; ub; integer; v };
  m.obj.(m.nvars) <- 0.;
  m.nvars <- m.nvars + 1;
  v

let check_var m v =
  if v.idx < 0 || v.idx >= m.nvars then invalid_arg "Lp: variable from another model"

let normalize_terms m terms =
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (c, v) ->
      check_var m v;
      let cur = try Hashtbl.find tbl v.idx with Not_found -> 0. in
      Hashtbl.replace tbl v.idx (cur +. c))
    terms;
  let arr = Hashtbl.fold (fun i c acc -> if c <> 0. then (i, c) :: acc else acc) tbl [] in
  let arr = Array.of_list arr in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  arr

let add_constr m ?name terms sense rhs =
  let cname = match name with Some n -> n | None -> Printf.sprintf "c%d" m.ncons in
  let c = { terms = normalize_terms m terms; csense = sense; rhs; cname } in
  let cap = Array.length m.cons in
  if m.ncons >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nc = Array.make ncap c in
    Array.blit m.cons 0 nc 0 m.ncons;
    m.cons <- nc
  end;
  m.cons.(m.ncons) <- c;
  m.ncons <- m.ncons + 1

let set_objective m sense ?(constant = 0.) terms =
  Array.fill m.obj 0 m.nvars 0.;
  List.iter (fun (c, v) -> check_var m v; m.obj.(v.idx) <- m.obj.(v.idx) +. c) terms;
  m.obj_sense <- sense;
  m.obj_const <- constant

let name m = m.mname
let num_vars m = m.nvars
let num_constrs m = m.ncons
let var_index v = v.idx

let var_of_index m i =
  if i < 0 || i >= m.nvars then invalid_arg "Lp.var_of_index";
  m.vars.(i).v

let var_name m v = check_var m v; v.vname
let is_integer m v = check_var m v; m.vars.(v.idx).integer
let bounds m v = check_var m v; let i = m.vars.(v.idx) in (i.lb, i.ub)
let objective_sense m = m.obj_sense
let objective_constant m = m.obj_const
let objective_coeffs m = Array.sub m.obj 0 m.nvars

let constrs m =
  Array.init m.ncons (fun i ->
      let c = m.cons.(i) in
      (c.terms, c.csense, c.rhs))

let constr_name m i =
  if i < 0 || i >= m.ncons then invalid_arg "Lp.constr_name";
  m.cons.(i).cname

let eval_linexpr terms x =
  List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v.idx))) 0. terms

let sense_str = function Le -> "<=" | Ge -> ">=" | Eq -> "="

let to_string m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %s\n"
       m.mname
       (match m.obj_sense with `Minimize -> "minimize" | `Maximize -> "maximize"));
  Buffer.add_string buf "  obj:";
  for i = 0 to m.nvars - 1 do
    if m.obj.(i) <> 0. then
      Buffer.add_string buf (Printf.sprintf " %+g %s" m.obj.(i) m.vars.(i).v.vname)
  done;
  if m.obj_const <> 0. then Buffer.add_string buf (Printf.sprintf " %+g" m.obj_const);
  Buffer.add_char buf '\n';
  for ci = 0 to m.ncons - 1 do
    let c = m.cons.(ci) in
    Buffer.add_string buf (Printf.sprintf "  %s:" c.cname);
    Array.iter
      (fun (i, coeff) ->
        Buffer.add_string buf (Printf.sprintf " %+g %s" coeff m.vars.(i).v.vname))
      c.terms;
    Buffer.add_string buf (Printf.sprintf " %s %g\n" (sense_str c.csense) c.rhs)
  done;
  for i = 0 to m.nvars - 1 do
    let vi = m.vars.(i) in
    Buffer.add_string buf
      (Printf.sprintf "  %g <= %s <= %g%s\n" vi.lb vi.v.vname vi.ub
         (if vi.integer then " (int)" else ""))
  done;
  Buffer.contents buf
