(** Linear / mixed-integer program model builder.

    A thin, Gurobi-flavoured modelling layer: create variables with bounds
    and integrality, add linear constraints, set a linear objective. The
    model is solved by {!Simplex} (LP relaxation) and {!Bb} (MILP). *)

type model
type var

type sense = Le | Ge | Eq

val create : ?name:string -> unit -> model

val add_var : model -> ?integer:bool -> ?lb:float -> ?ub:float -> string -> var
(** New variable. Defaults: [lb = 0.], [ub = infinity], continuous.
    Raises [Robust.Failure.Error (Invalid_input _)] if [lb > ub], so model
    builders running inside the scheduling pipeline fail typed. *)

val add_constr : model -> ?name:string -> (float * var) list -> sense -> float -> unit
(** [add_constr m terms sense rhs] adds [sum terms (sense) rhs]. Repeated
    variables in [terms] are summed. *)

val set_objective : model -> [ `Minimize | `Maximize ] -> ?constant:float -> (float * var) list -> unit
(** Replaces the objective. Default objective is [`Minimize 0]. *)

(** {2 Introspection (used by solvers, tests, and debug dumps)} *)

val name : model -> string
val num_vars : model -> int
val num_constrs : model -> int
val var_index : var -> int
val var_of_index : model -> int -> var
val var_name : model -> var -> string
val is_integer : model -> var -> bool
val bounds : model -> var -> float * float
val objective_sense : model -> [ `Minimize | `Maximize ]
val objective_constant : model -> float
val objective_coeffs : model -> float array
(** Dense objective vector over variable indices, in the user's sense. *)

val constrs : model -> ((int * float) array * sense * float) array
(** Constraint rows as (sorted, deduplicated sparse terms, sense, rhs). *)

val constr_name : model -> int -> string
(** Name of the [i]-th constraint row (indices as in {!constrs}); used by
    the certifier to name violated rows. *)

val eval_linexpr : (float * var) list -> float array -> float
(** Evaluate a term list against a dense solution vector. *)

val to_string : model -> string
(** Human-readable LP-format-ish dump (for debugging and tests). *)
