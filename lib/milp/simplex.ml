type status = Optimal | Infeasible | Unbounded | Iteration_limit

(* Internal control-flow exception: aborts the current solve with a typed
   failure (singular basis, deadline, NaN corruption, injected fault).
   Never escapes [solve_r]; [solve] re-raises it as [Robust.Failure.Error]. *)
exception Lp_abort of Robust.Failure.t

type problem = {
  nrows : int;
  ncols : int;
  cols : (int array * float array) array;
  cost : float array;
  lb : float array;
  ub : float array;
  rhs : float array;
}

type result = { status : status; obj : float; x : float array; iterations : int }

(* The solver's numerical tolerances, exposed as one record so the exact-
   arithmetic certifier (lib/certify) checks against the very same values
   the pivot loop used — the checker and the solver cannot drift apart. *)
module Tolerances = struct
  type t = { feas_tol : float; opt_tol : float; pivot_tol : float }

  let default = { feas_tol = 1e-7; opt_tol = 1e-7; pivot_tol = 1e-9 }
end

let feas_tol = Tolerances.default.Tolerances.feas_tol
let opt_tol = Tolerances.default.Tolerances.opt_tol
let pivot_tol = Tolerances.default.Tolerances.pivot_tol
let refactor_every = 100

(* Telemetry: aggregate counters recorded once per solve (iterations) or
   per rare event (refactorization, Bland activation) — never per pivot,
   so the disabled-path cost is a handful of flag loads per LP. *)
let m_solves = Telemetry.Metrics.counter "simplex.solves"
let m_phase1 = Telemetry.Metrics.counter "simplex.phase1_iterations"
let m_phase2 = Telemetry.Metrics.counter "simplex.phase2_iterations"
let m_refactor = Telemetry.Metrics.counter "simplex.refactorizations"
let m_bland = Telemetry.Metrics.counter "simplex.bland_activations"

(* Location of a column: basic in some row, or nonbasic resting at a bound. *)
type location = Basic of int | At_lower | At_upper | Free_zero

type state = {
  p : problem;
  m : int;                       (* rows *)
  ntot : int;                    (* structural + artificial columns *)
  acols : (int array * float array) array; (* all columns incl. artificials *)
  alb : float array;
  aub : float array;
  loc : location array;
  basis : int array;             (* column basic in each row *)
  binv : float array array;      (* dense basis inverse, m x m *)
  xb : float array;              (* values of basic variables, by row *)
  xn : float array;              (* resting value of every column when nonbasic *)
  mutable degenerate_streak : int;
  mutable bland : bool;
  mutable iterations : int;
}

let nonbasic_rest_value lb ub =
  if lb > neg_infinity then lb else if ub < infinity then ub else 0.

(* Rebuild the dense basis inverse by Gauss-Jordan elimination and recompute
   basic values from scratch. Raises [Lp_abort Singular_basis] on a singular
   basis, which indicates an internal invariant violation. *)
let refactorize st =
  (match Robust.Fault.check "simplex.refactor" with
   | Ok () -> ()
   | Error f -> raise (Lp_abort f));
  Telemetry.Metrics.incr m_refactor;
  let m = st.m in
  let mat = Array.make_matrix m m 0. in
  for r = 0 to m - 1 do
    let rows, coeffs = st.acols.(st.basis.(r)) in
    Array.iteri (fun k row -> mat.(row).(r) <- coeffs.(k)) rows
  done;
  let inv = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1. else 0.)) in
  for col = 0 to m - 1 do
    (* partial pivoting *)
    let best = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs mat.(r).(col) > Float.abs mat.(!best).(col) then best := r
    done;
    if Float.abs mat.(!best).(col) < pivot_tol then
      raise (Lp_abort Robust.Failure.Singular_basis);
    if !best <> col then begin
      let t = mat.(col) in mat.(col) <- mat.(!best); mat.(!best) <- t;
      let t = inv.(col) in inv.(col) <- inv.(!best); inv.(!best) <- t
    end;
    let piv = mat.(col).(col) in
    for j = 0 to m - 1 do
      mat.(col).(j) <- mat.(col).(j) /. piv;
      inv.(col).(j) <- inv.(col).(j) /. piv
    done;
    for r = 0 to m - 1 do
      if r <> col then begin
        let f = mat.(r).(col) in
        if f <> 0. then
          for j = 0 to m - 1 do
            mat.(r).(j) <- mat.(r).(j) -. (f *. mat.(col).(j));
            inv.(r).(j) <- inv.(r).(j) -. (f *. inv.(col).(j))
          done
      end
    done
  done;
  for i = 0 to m - 1 do
    Array.blit inv.(i) 0 st.binv.(i) 0 m
  done;
  (* xb = binv * (rhs - sum_{nonbasic j} A_j * xn_j) *)
  let r = Array.copy st.p.rhs in
  for j = 0 to st.ntot - 1 do
    match st.loc.(j) with
    | Basic _ -> ()
    | At_lower | At_upper | Free_zero ->
      let v = st.xn.(j) in
      if v <> 0. then begin
        let rows, coeffs = st.acols.(j) in
        Array.iteri (fun k row -> r.(row) <- r.(row) -. (coeffs.(k) *. v)) rows
      end
  done;
  for i = 0 to m - 1 do
    let s = ref 0. in
    for k = 0 to m - 1 do
      s := !s +. (st.binv.(i).(k) *. r.(k))
    done;
    st.xb.(i) <- !s
  done

(* NaN/Inf anywhere in the basic values means the eta updates have silently
   corrupted the factorization; surface it as a typed failure instead of
   letting garbage propagate into branching decisions. *)
let check_health st =
  for i = 0 to st.m - 1 do
    if not (Float.is_finite st.xb.(i)) then
      raise (Lp_abort Robust.Failure.Numerical_instability)
  done

(* Reduced cost of column j given the dual vector y. *)
let reduced_cost st cost y j =
  let rows, coeffs = st.acols.(j) in
  let s = ref cost.(j) in
  Array.iteri (fun k row -> s := !s -. (y.(row) *. coeffs.(k))) rows;
  !s

let compute_duals st cost y =
  let m = st.m in
  for i = 0 to m - 1 do
    y.(i) <- 0.
  done;
  for r = 0 to m - 1 do
    let cb = cost.(st.basis.(r)) in
    if cb <> 0. then
      for i = 0 to m - 1 do
        y.(i) <- y.(i) +. (cb *. st.binv.(r).(i))
      done
  done

(* alpha = binv * column j *)
let ftran st j alpha =
  let m = st.m in
  let rows, coeffs = st.acols.(j) in
  for i = 0 to m - 1 do
    alpha.(i) <- 0.
  done;
  for i = 0 to m - 1 do
    let bi = st.binv.(i) in
    let s = ref 0. in
    Array.iteri (fun k row -> s := !s +. (bi.(row) *. coeffs.(k))) rows;
    alpha.(i) <- !s
  done

exception Lp_unbounded
exception Lp_iteration_limit

(* One phase of the simplex: minimize [cost] from the current basis.
   Mutates [st]; returns when no improving nonbasic column remains. The
   deadline is polled every [deadline_every] iterations — frequent enough
   that a single solve cannot overshoot its budget by more than a few
   pivots, rare enough that the clock read does not show up in profiles. *)
let deadline_every = 32

let optimize st cost max_iterations deadline =
  let m = st.m in
  let y = Array.make m 0. in
  let alpha = Array.make m 0. in
  let continue_ = ref true in
  while !continue_ do
    if st.iterations >= max_iterations then raise Lp_iteration_limit;
    (match Robust.Fault.check "simplex.pivot" with
     | Ok () -> ()
     | Error f -> raise (Lp_abort f));
    if st.iterations mod deadline_every = 0 then begin
      if Robust.Deadline.expired deadline then
        raise (Lp_abort Robust.Failure.Deadline_exceeded);
      check_health st
    end;
    if st.iterations mod refactor_every = 0 && st.iterations > 0 then refactorize st;
    compute_duals st cost y;
    (* Pricing: Dantzig rule normally, Bland's rule after a degenerate streak. *)
    let entering = ref (-1) in
    let entering_dir = ref 1. in
    let best_score = ref opt_tol in
    (try
       for j = 0 to st.ntot - 1 do
         match st.loc.(j) with
         | Basic _ -> ()
         | loc ->
           if st.aub.(j) -. st.alb.(j) > pivot_tol then begin
             let d = reduced_cost st cost y j in
             let dir =
               match loc with
               | At_lower | Free_zero -> if d < -.opt_tol then 1. else 0.
               | At_upper -> if d > opt_tol then -1. else 0.
               | Basic _ -> 0.
             in
             let dir =
               (* a free variable can also move down on positive reduced cost *)
               if dir = 0. && st.loc.(j) = Free_zero && d > opt_tol then -1. else dir
             in
             if dir <> 0. then
               if st.bland then begin
                 entering := j;
                 entering_dir := dir;
                 raise Exit
               end
               else if Float.abs d > !best_score then begin
                 best_score := Float.abs d;
                 entering := j;
                 entering_dir := dir
               end
           end
       done
     with Exit -> ());
    if !entering < 0 then continue_ := false
    else begin
      let j = !entering and dir = !entering_dir in
      ftran st j alpha;
      (* Ratio test: largest step t >= 0 keeping all basics inside their
         bounds; the entering variable may also be blocked by its own
         opposite bound (a bound flip, which needs no basis change). *)
      let own_limit = st.aub.(j) -. st.alb.(j) in
      let t = ref own_limit in
      let leaving = ref (-1) in
      let leaving_to_upper = ref false in
      for i = 0 to m - 1 do
        let rate = dir *. alpha.(i) in
        let bj = st.basis.(i) in
        if rate > pivot_tol then begin
          (* basic value decreases toward its lower bound *)
          if st.alb.(bj) > neg_infinity then begin
            let step = (st.xb.(i) -. st.alb.(bj)) /. rate in
            if step < !t -. pivot_tol || (step < !t +. pivot_tol && !leaving >= 0
                 && Float.abs alpha.(i) > Float.abs alpha.(!leaving)) then begin
              t := max 0. step;
              leaving := i;
              leaving_to_upper := false
            end
          end
        end
        else if rate < -.pivot_tol then begin
          (* basic value increases toward its upper bound *)
          if st.aub.(bj) < infinity then begin
            let step = (st.aub.(bj) -. st.xb.(i)) /. -.rate in
            if step < !t -. pivot_tol || (step < !t +. pivot_tol && !leaving >= 0
                 && Float.abs alpha.(i) > Float.abs alpha.(!leaving)) then begin
              t := max 0. step;
              leaving := i;
              leaving_to_upper := true
            end
          end
        end
      done;
      if !t = infinity then raise Lp_unbounded;
      let t = !t in
      if t < feas_tol then st.degenerate_streak <- st.degenerate_streak + 1
      else st.degenerate_streak <- 0;
      if (not st.bland) && st.degenerate_streak > 2 * (m + st.ntot) then begin
        st.bland <- true;
        Telemetry.Metrics.incr m_bland
      end;
      (* apply the step to basic values *)
      for i = 0 to m - 1 do
        st.xb.(i) <- st.xb.(i) -. (dir *. t *. alpha.(i))
      done;
      if !leaving < 0 then begin
        (* bound flip of the entering variable *)
        st.xn.(j) <- st.xn.(j) +. (dir *. t);
        st.loc.(j) <- (if dir > 0. then At_upper else At_lower)
      end
      else begin
        let r = !leaving in
        let old = st.basis.(r) in
        (* leaving variable rests at the bound it reached *)
        st.loc.(old) <- (if !leaving_to_upper then At_upper else At_lower);
        st.xn.(old) <- (if !leaving_to_upper then st.aub.(old) else st.alb.(old));
        (* entering variable becomes basic in row r *)
        st.basis.(r) <- j;
        st.loc.(j) <- Basic r;
        st.xb.(r) <- st.xn.(j) +. (dir *. t);
        (* eta update of the dense inverse *)
        let piv = alpha.(r) in
        let br = st.binv.(r) in
        for k = 0 to m - 1 do
          br.(k) <- br.(k) /. piv
        done;
        for i = 0 to m - 1 do
          if i <> r then begin
            let f = alpha.(i) in
            if Float.abs f > pivot_tol then begin
              let bi = st.binv.(i) in
              for k = 0 to m - 1 do
                bi.(k) <- bi.(k) -. (f *. br.(k))
              done
            end
          end
        done
      end;
      st.iterations <- st.iterations + 1
    end
  done

let extract_x st =
  let x = Array.make st.p.ncols 0. in
  for j = 0 to st.p.ncols - 1 do
    match st.loc.(j) with
    | Basic r -> x.(j) <- st.xb.(r)
    | At_lower | At_upper | Free_zero -> x.(j) <- st.xn.(j)
  done;
  x

let objective_value p x =
  let s = ref 0. in
  for j = 0 to p.ncols - 1 do
    s := !s +. (p.cost.(j) *. x.(j))
  done;
  !s

(* Result-returning entry point: all abnormal terminations (singular basis,
   blown deadline, NaN corruption, injected faults) come back as a typed
   [Error]; [Unbounded]/[Infeasible]/[Iteration_limit] remain ordinary
   statuses because branch-and-bound treats them as prunable outcomes. *)
let solve_r_impl ?max_iterations ?(deadline = Robust.Deadline.none) p =
  let m = p.nrows in
  let max_iterations =
    match max_iterations with
    | Some k -> k
    | None -> 2000 + (200 * (m + p.ncols))
  in
  if m = 0 then begin
    (* No constraints: each variable goes to its cost-minimising bound. *)
    let x = Array.make p.ncols 0. in
    let unbounded = ref false in
    for j = 0 to p.ncols - 1 do
      let v =
        if p.cost.(j) > 0. then p.lb.(j)
        else if p.cost.(j) < 0. then p.ub.(j)
        else nonbasic_rest_value p.lb.(j) p.ub.(j)
      in
      if Float.abs v = infinity then unbounded := true else x.(j) <- v
    done;
    if !unbounded then Ok { status = Unbounded; obj = neg_infinity; x; iterations = 0 }
    else Ok { status = Optimal; obj = objective_value p x; x; iterations = 0 }
  end
  else begin
    let ntot = p.ncols + m in
    let acols = Array.make ntot ([||], [||]) in
    Array.blit p.cols 0 acols 0 p.ncols;
    let alb = Array.make ntot 0. and aub = Array.make ntot infinity in
    Array.blit p.lb 0 alb 0 p.ncols;
    Array.blit p.ub 0 aub 0 p.ncols;
    let xn = Array.make ntot 0. in
    let loc = Array.make ntot At_lower in
    for j = 0 to p.ncols - 1 do
      let v = nonbasic_rest_value p.lb.(j) p.ub.(j) in
      xn.(j) <- v;
      loc.(j) <-
        (if p.lb.(j) > neg_infinity then At_lower
         else if p.ub.(j) < infinity then At_upper
         else Free_zero)
    done;
    (* residuals decide the sign of each artificial column *)
    let resid = Array.copy p.rhs in
    for j = 0 to p.ncols - 1 do
      if xn.(j) <> 0. then begin
        let rows, coeffs = p.cols.(j) in
        Array.iteri (fun k row -> resid.(row) <- resid.(row) -. (coeffs.(k) *. xn.(j))) rows
      end
    done;
    (* Crash basis: prefer a singleton (slack-like) column per row when the
       residual fits its bounds; fall back to an artificial otherwise. This
       usually makes phase 1 trivial for inequality-heavy models. *)
    let singleton_for_row = Array.make m (-1) in
    for j = p.ncols - 1 downto 0 do
      let rows, coeffs = p.cols.(j) in
      if Array.length rows = 1 && Float.abs coeffs.(0) > pivot_tol then
        singleton_for_row.(rows.(0)) <- j
    done;
    let basis = Array.make m 0 in
    let binv = Array.make_matrix m m 0. in
    let xb = Array.make m 0. in
    for i = 0 to m - 1 do
      let crashed =
        let j = singleton_for_row.(i) in
        if j >= 0 then begin
          let _, coeffs = p.cols.(j) in
          let a = coeffs.(0) in
          (* residual currently includes this column's resting contribution *)
          let v = (resid.(i) +. (a *. xn.(j))) /. a in
          if v >= p.lb.(j) -. feas_tol && v <= p.ub.(j) +. feas_tol then begin
            resid.(i) <- resid.(i) +. (a *. xn.(j));
            basis.(i) <- j;
            loc.(j) <- Basic i;
            binv.(i).(i) <- 1. /. a;
            xb.(i) <- v;
            (* the artificial for this row is never used: pin it to zero *)
            acols.(p.ncols + i) <- ([| i |], [| 1. |]);
            aub.(p.ncols + i) <- 0.;
            true
          end
          else false
        end
        else false
      in
      if not crashed then begin
        let sign = if resid.(i) >= 0. then 1. else -1. in
        acols.(p.ncols + i) <- ([| i |], [| sign |]);
        basis.(i) <- p.ncols + i;
        loc.(p.ncols + i) <- Basic i;
        binv.(i).(i) <- sign;
        xb.(i) <- Float.abs resid.(i)
      end
    done;
    let st =
      { p; m; ntot; acols; alb; aub; loc; basis; binv; xb; xn;
        degenerate_streak = 0; bland = false; iterations = 0 }
    in
    let phase1_cost = Array.make ntot 0. in
    for i = 0 to m - 1 do
      phase1_cost.(p.ncols + i) <- 1.
    done;
    let phase2_cost = Array.make ntot 0. in
    Array.blit p.cost 0 phase2_cost 0 p.ncols;
    try
      optimize st phase1_cost max_iterations deadline;
      Telemetry.Metrics.add m_phase1 st.iterations;
      let p1_iters = st.iterations in
      let infeas = ref 0. in
      for i = 0 to m - 1 do
        if st.basis.(i) >= p.ncols then infeas := !infeas +. st.xb.(i)
      done;
      for j = p.ncols to ntot - 1 do
        match st.loc.(j) with
        | At_upper -> infeas := !infeas +. st.xn.(j)
        | At_lower | Free_zero | Basic _ -> ()
      done;
      if !infeas > 1e-6 then
        Ok { status = Infeasible; obj = infinity; x = extract_x st; iterations = st.iterations }
      else begin
        (* lock artificials at zero for phase 2 *)
        for j = p.ncols to ntot - 1 do
          st.aub.(j) <- 0.;
          (match st.loc.(j) with
           | At_upper -> st.loc.(j) <- At_lower
           | At_lower | Free_zero | Basic _ -> ());
          st.xn.(j) <- 0.
        done;
        st.bland <- false;
        st.degenerate_streak <- 0;
        optimize st phase2_cost max_iterations deadline;
        Telemetry.Metrics.add m_phase2 (st.iterations - p1_iters);
        let x = extract_x st in
        if not (Float.is_finite (objective_value p x)) then
          Error Robust.Failure.Numerical_instability
        else
          Ok { status = Optimal; obj = objective_value p x; x; iterations = st.iterations }
      end
    with
    | Lp_unbounded ->
      Ok { status = Unbounded; obj = neg_infinity; x = extract_x st; iterations = st.iterations }
    | Lp_iteration_limit ->
      Ok { status = Iteration_limit; obj = nan; x = extract_x st; iterations = st.iterations }
    | Lp_abort f -> Error f
  end

(* Public entry point: one span (category "simplex") and one solve-count
   tick per LP; phase iteration counters are recorded inside the solve. *)
let solve_r ?max_iterations ?deadline p =
  Telemetry.Metrics.incr m_solves;
  Telemetry.Trace.with_span ~cat:"simplex" "simplex.solve" (fun () ->
      solve_r_impl ?max_iterations ?deadline p)

(* Legacy exception-raising wrapper: raises [Robust.Failure.Error] where
   [solve_r] would return [Error]. Prefer [solve_r] in new code. *)
let solve ?max_iterations p =
  match solve_r ?max_iterations p with
  | Ok r -> r
  | Error f -> raise (Robust.Failure.Error f)

let feasible ?(tol = 1e-6) p x =
  let ok = ref true in
  for j = 0 to p.ncols - 1 do
    if x.(j) < p.lb.(j) -. tol || x.(j) > p.ub.(j) +. tol then ok := false
  done;
  let lhs = Array.make p.nrows 0. in
  for j = 0 to p.ncols - 1 do
    let rows, coeffs = p.cols.(j) in
    Array.iteri (fun k row -> lhs.(row) <- lhs.(row) +. (coeffs.(k) *. x.(j))) rows
  done;
  for i = 0 to p.nrows - 1 do
    if Float.abs (lhs.(i) -. p.rhs.(i)) > tol *. (1. +. Float.abs p.rhs.(i)) then ok := false
  done;
  !ok
