type status = Optimal | Infeasible | Unbounded | Iteration_limit

(* Internal control-flow exception: aborts the current solve with a typed
   failure (singular basis, deadline, NaN corruption, injected fault).
   Never escapes [solve_r]; [solve] re-raises it as [Robust.Failure.Error]. *)
exception Lp_abort of Robust.Failure.t

type problem = {
  nrows : int;
  ncols : int;
  cols : (int array * float array) array;
  cost : float array;
  lb : float array;
  ub : float array;
  rhs : float array;
}

(* An explicit simplex basis: which column is basic in each row, plus the
   resting status of every column (structural first, then one logical per
   row). A basis returned from an optimal solve of a parent LP stays dual
   feasible after any bound change — reduced costs depend on the basis and
   costs only — so a child LP in branch-and-bound can reoptimize with a few
   dual pivots instead of a cold two-phase solve. *)
module Basis = struct
  type vstat = Vbasic | Vlower | Vupper | Vfree

  type t = {
    basic : int array;  (* column basic in row r, length nrows *)
    vstat : vstat array;  (* per-column status, length ncols + nrows *)
  }
end

(* A captured canonical basis factorization: the dense inverse of the basis
   matrix, tagged with the physical column array it was factorized from and
   the (sorted) basic set. Because the basis matrix depends only on the
   columns and the basic set — never on variable bounds — a factor captured
   at a parent node's canonical vertex is bit-valid for every child LP in
   branch-and-bound (children share [cols] physically and differ only in
   bounds), so a warm solve can load it instead of refactorizing. *)
module Factor = struct
  type t = {
    f_cols : (int array * float array) array;  (* physical identity tag *)
    f_nrows : int;
    f_key : int array;  (* cache key: the basic set, sorted ascending *)
    f_basis : int array;  (* basic column per row, in canonical slot order *)
    f_binv : float array array;  (* immutable snapshot of B⁻¹ *)
  }
end

type result = {
  status : status;
  obj : float;
  x : float array;
  iterations : int;
  warm : bool;  (* solved by dual reoptimization from a supplied basis *)
  basis : Basis.t option;  (* final basis when [status = Optimal] *)
  factor : Factor.t option;  (* canonical factorization of that basis *)
}

(* The solver's numerical tolerances, exposed as one record so the exact-
   arithmetic certifier (lib/certify) checks against the very same values
   the pivot loop used — the checker and the solver cannot drift apart. *)
module Tolerances = struct
  type t = { feas_tol : float; opt_tol : float; pivot_tol : float }

  let default = { feas_tol = 1e-7; opt_tol = 1e-7; pivot_tol = 1e-9 }
end

let feas_tol = Tolerances.default.Tolerances.feas_tol
let opt_tol = Tolerances.default.Tolerances.opt_tol
let pivot_tol = Tolerances.default.Tolerances.pivot_tol

(* Relative row-residual threshold: past this, accumulated eta roundoff in
   the incremental factorization is visibly corrupting the basic values and
   a refactorization is forced at the next checkpoint. *)
let residual_tol = 1e-6

(* Telemetry: aggregate counters recorded per solve, per refactorization,
   or per pivot (eta updates) — each a single atomic flag load when
   telemetry is disabled, invisible next to the O(m²) pivot itself. *)
let m_solves = Telemetry.Metrics.counter "simplex.solves"
let m_phase1 = Telemetry.Metrics.counter "simplex.phase1_iterations"
let m_phase2 = Telemetry.Metrics.counter "simplex.phase2_iterations"
let m_dual = Telemetry.Metrics.counter "simplex.dual_iterations"
let m_warm = Telemetry.Metrics.counter "simplex.warm_solves"
let m_cold = Telemetry.Metrics.counter "simplex.cold_solves"
let m_warm_fallback = Telemetry.Metrics.counter "simplex.warm_fallbacks"
let m_refactor = Telemetry.Metrics.counter "simplex.refactorizations"
let m_bland = Telemetry.Metrics.counter "simplex.bland_activations"
let m_eta = Telemetry.Metrics.counter "simplex.eta_updates"
let m_trig_chain = Telemetry.Metrics.counter "simplex.refactor_triggers.chain"
let m_trig_stability = Telemetry.Metrics.counter "simplex.refactor_triggers.stability"
let m_trig_residual = Telemetry.Metrics.counter "simplex.refactor_triggers.residual"
let m_factor_reuse = Telemetry.Metrics.counter "simplex.factor_reuses"
let m_factor_hit = Telemetry.Metrics.counter "simplex.factor_cache_hits"
let m_factor_ext = Telemetry.Metrics.counter "simplex.factor_extensions"

(* Location of a column: basic in some row, or nonbasic resting at a bound. *)
type location = Basic of int | At_lower | At_upper | Free_zero

type state = {
  p : problem;
  m : int;                       (* rows *)
  ntot : int;                    (* structural + artificial columns *)
  acols : (int array * float array) array; (* all columns incl. artificials *)
  alb : float array;
  aub : float array;
  loc : location array;
  basis : int array;             (* column basic in each row *)
  fac : Lu.t;                    (* incremental basis factorization engine *)
  xb : float array;              (* values of basic variables, by row *)
  xn : float array;              (* resting value of every column when nonbasic *)
  interval : int option;         (* pinned refactor cadence (--refactor-interval) *)
  mutable loaded : Factor.t option;  (* canonical factor this solve entered from *)
  mutable degenerate_streak : int;
  mutable bland : bool;
  mutable iterations : int;
}

(* Per-solve scratch, sized once in [solve_r]: the pivot loops, pricing,
   and refactorization all work out of these arrays, so the inner loops
   allocate nothing (the GC never runs mid-solve). Shared between a warm
   attempt and its cold fallback. *)
type workspace = {
  wy : float array;           (* dual vector *)
  walpha : float array;       (* ftran result column *)
  wmat : float array array;   (* refactorization scratch (basis matrix) *)
  wres : float array;         (* rhs/residual scratch *)
  wdev : float array;         (* devex reference weights, by row *)
}

let make_workspace m =
  let n = max 1 m in
  { wy = Array.make n 0.; walpha = Array.make n 0.;
    wmat = Array.make_matrix n n 0.; wres = Array.make n 0.;
    wdev = Array.make n 1. }

let nonbasic_rest_value lb ub =
  if lb > neg_infinity then lb else if ub < infinity then ub else 0.

(* ---- canonical factor cache -------------------------------------------- *)

let int_array_eq (a : int array) (b : int array) =
  Array.length a = Array.length b
  && (try
        Array.iteri (fun i v -> if v <> b.(i) then raise Exit) a;
        true
      with Exit -> false)

(* Per-domain direct-mapped cache of canonical factorizations, keyed by the
   physical column array and the sorted basic set (plus synthetic prefix
   keys — see [chain_build]). Entries hold bits that are a pure function of
   (columns, basic set), so a cache hit can never change a solve's answer —
   hit/miss patterns affect wall time only, which keeps the jobs=1 ≡ jobs=4
   determinism contract intact by construction. Domain-local storage avoids
   both locks and cross-domain sharing. *)
let cache_slots = 32749
let cache_max_rows = 200

let factor_cache_key : Factor.t option array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make cache_slots None)

let basis_slot m (key : int array) =
  let h = ref (m * 0x9E3779B1) in
  Array.iter (fun j -> h := ((!h * 0x01000193) lxor j) land max_int) key;
  !h mod cache_slots

let lookup_factor p m (key : int array) =
  if m > cache_max_rows then None
  else
    let cache = Domain.DLS.get factor_cache_key in
    match cache.(basis_slot m key) with
    | Some f
      when f.Factor.f_cols == p.cols && f.Factor.f_nrows = m
           && int_array_eq f.Factor.f_key key ->
      Some f
    | _ -> None

let store_factor (f : Factor.t) =
  if f.Factor.f_nrows <= cache_max_rows then begin
    let cache = Domain.DLS.get factor_cache_key in
    cache.(basis_slot f.Factor.f_nrows f.Factor.f_key) <- Some f
  end

let sorted_key basis =
  let key = Array.copy basis in
  Array.sort (fun (a : int) b -> compare a b) key;
  key

(* Second-touch filter for prefix memoization: most chain prefixes are
   computed exactly once and never looked up again, so snapshotting each
   one would waste an O(m²) copy per eta step. A prefix is materialized
   into the factor cache only when the chain re-derives it a second time
   (witnessed by a fingerprint table); storage policy affects wall time
   only, never bits, so this cannot perturb determinism. *)
let seen_fp_key : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make cache_slots 0)

let prefix_fp m (sset : int array) d =
  let h = ref (m * 0x9E3779B1) in
  for i = 0 to d - 1 do
    h := ((!h * 0x01000193) lxor sset.(i)) land max_int
  done;
  let fp = ((!h * 0x01000193) lxor d) land max_int in
  if fp = 0 then 1 else fp

let capture_factor st =
  let f =
    { Factor.f_cols = st.p.cols; f_nrows = st.m; f_key = sorted_key st.basis;
      f_basis = Array.copy st.basis; f_binv = Lu.snapshot st.fac }
  in
  store_factor f;
  f

(* ---- factorization ----------------------------------------------------- *)

(* Rebuild the basis inverse from scratch. Raises [Lp_abort Singular_basis]
   on a singular basis; in a cold solve that indicates an internal invariant
   violation, in a warm solve it rejects a stale parent basis. *)
let refactor_basis st ws =
  (match Robust.Fault.check "simplex.refactor" with
   | Ok () -> ()
   | Error f -> raise (Lp_abort f));
  Telemetry.Metrics.incr m_refactor;
  try Lu.refactor st.fac ~scratch:ws.wmat ~cols:st.acols ~basis:st.basis ~pivot_tol
  with Lu.Singular -> raise (Lp_abort Robust.Failure.Singular_basis)

(* xb = binv * (rhs - sum_{nonbasic j} A_j * xn_j) *)
let compute_xb st ws =
  let m = st.m in
  let r = ws.wres in
  Array.blit st.p.rhs 0 r 0 m;
  for j = 0 to st.ntot - 1 do
    match st.loc.(j) with
    | Basic _ -> ()
    | At_lower | At_upper | Free_zero ->
      let v = st.xn.(j) in
      if v <> 0. then begin
        let rows, coeffs = st.acols.(j) in
        Array.iteri (fun k row -> r.(row) <- r.(row) -. (coeffs.(k) *. v)) rows
      end
  done;
  Lu.apply st.fac r st.xb

let refactorize st ws =
  refactor_basis st ws;
  compute_xb st ws

(* Stability trigger, consulted once per pivot: refactorize when the eta
   chain is long or has absorbed a dangerously small pivot (or, with a
   pinned [--refactor-interval], on a fixed cadence). Returns whether a
   refactorization happened so the dual loop can reset its devex frame. *)
let maybe_refactor st ws =
  match Lu.trigger ?interval:st.interval st.fac with
  | Lu.No_refactor -> false
  | Lu.Chain ->
    Telemetry.Metrics.incr m_trig_chain;
    refactorize st ws;
    true
  | Lu.Stability ->
    Telemetry.Metrics.incr m_trig_stability;
    refactorize st ws;
    true

(* Row-residual audit, run at deadline checkpoints: ‖B xb + N xn − rhs‖∞
   relative to the rhs scale. Catches eta-chain drift that the per-pivot
   magnitude test missed. Skipped under a pinned interval (the cadence is
   then the experiment) and on a fresh factorization (nothing to fix). *)
let residual_excess st ws =
  let m = st.m in
  let r = ws.wres in
  Array.blit st.p.rhs 0 r 0 m;
  let scale = ref 1. in
  for i = 0 to m - 1 do
    let a = Float.abs r.(i) in
    if a > !scale then scale := a
  done;
  for j = 0 to st.ntot - 1 do
    let v =
      match st.loc.(j) with Basic i -> st.xb.(i) | At_lower | At_upper | Free_zero -> st.xn.(j)
    in
    if v <> 0. then begin
      let rows, coeffs = st.acols.(j) in
      Array.iteri (fun k row -> r.(row) <- r.(row) -. (coeffs.(k) *. v)) rows
    end
  done;
  let worst = ref 0. in
  for i = 0 to m - 1 do
    let a = Float.abs r.(i) in
    if a > !worst then worst := a
  done;
  !worst > residual_tol *. !scale

let audit_residual st ws =
  if st.interval = None && Lu.chain_length st.fac > 0 && residual_excess st ws
  then begin
    Telemetry.Metrics.incr m_trig_residual;
    refactorize st ws;
    true
  end
  else false

(* NaN/Inf anywhere in the basic values means the eta updates have silently
   corrupted the factorization; surface it as a typed failure instead of
   letting garbage propagate into branching decisions. *)
let check_health st =
  for i = 0 to st.m - 1 do
    if not (Float.is_finite st.xb.(i)) then
      raise (Lp_abort Robust.Failure.Numerical_instability)
  done

(* Reduced cost of column j given the dual vector y. *)
let reduced_cost st cost y j =
  let rows, coeffs = st.acols.(j) in
  let s = ref cost.(j) in
  Array.iteri (fun k row -> s := !s -. (y.(row) *. coeffs.(k))) rows;
  !s

(* y = c_B B⁻¹: btran over the cost of the basic columns, skipping zero
   cost rows — the cost vectors the solver builds are mostly zeros. *)
let compute_duals st cost y =
  let m = st.m in
  Array.fill y 0 m 0.;
  for r = 0 to m - 1 do
    let cb = cost.(st.basis.(r)) in
    if cb <> 0. then begin
      let br = Lu.row st.fac r in
      for i = 0 to m - 1 do
        y.(i) <- y.(i) +. (cb *. br.(i))
      done
    end
  done

(* alpha = binv * column j, sparse in the column's nonzero pattern *)
let ftran st j alpha = Lu.ftran st.fac st.acols.(j) alpha

(* Product-form eta update after [j] enters in row [r] with pivot column
   [alpha] (shared by the primal and dual pivot loops). *)
let eta_update st r alpha =
  Lu.update st.fac ~pivot_tol r alpha;
  Telemetry.Metrics.incr m_eta

exception Lp_unbounded
exception Lp_iteration_limit

(* One phase of the primal simplex: minimize [cost] from the current basis.
   Mutates [st]; returns when no improving nonbasic column remains. The
   deadline is polled every [deadline_every] iterations — frequent enough
   that a single solve cannot overshoot its budget by more than a few
   pivots, rare enough that the clock read does not show up in profiles. *)
let deadline_every = 32

let optimize st cost ws max_iterations deadline =
  let m = st.m in
  let y = ws.wy and alpha = ws.walpha in
  let continue_ = ref true in
  while !continue_ do
    if st.iterations >= max_iterations then raise Lp_iteration_limit;
    (match Robust.Fault.check "simplex.pivot" with
     | Ok () -> ()
     | Error f -> raise (Lp_abort f));
    if st.iterations mod deadline_every = 0 then begin
      if Robust.Deadline.expired deadline then
        raise (Lp_abort Robust.Failure.Deadline_exceeded);
      check_health st;
      ignore (audit_residual st ws)
    end;
    ignore (maybe_refactor st ws);
    compute_duals st cost y;
    (* Pricing: Dantzig rule normally, Bland's rule after a degenerate streak. *)
    let entering = ref (-1) in
    let entering_dir = ref 1. in
    let best_score = ref opt_tol in
    (try
       for j = 0 to st.ntot - 1 do
         match st.loc.(j) with
         | Basic _ -> ()
         | loc ->
           if st.aub.(j) -. st.alb.(j) > pivot_tol then begin
             let d = reduced_cost st cost y j in
             let dir =
               match loc with
               | At_lower | Free_zero -> if d < -.opt_tol then 1. else 0.
               | At_upper -> if d > opt_tol then -1. else 0.
               | Basic _ -> 0.
             in
             let dir =
               (* a free variable can also move down on positive reduced cost *)
               if dir = 0. && st.loc.(j) = Free_zero && d > opt_tol then -1. else dir
             in
             if dir <> 0. then
               if st.bland then begin
                 entering := j;
                 entering_dir := dir;
                 raise Exit
               end
               else if Float.abs d > !best_score then begin
                 best_score := Float.abs d;
                 entering := j;
                 entering_dir := dir
               end
           end
       done
     with Exit -> ());
    if !entering < 0 then continue_ := false
    else begin
      let j = !entering and dir = !entering_dir in
      ftran st j alpha;
      (* Ratio test: largest step t >= 0 keeping all basics inside their
         bounds; the entering variable may also be blocked by its own
         opposite bound (a bound flip, which needs no basis change). *)
      let own_limit = st.aub.(j) -. st.alb.(j) in
      let t = ref own_limit in
      let leaving = ref (-1) in
      let leaving_to_upper = ref false in
      for i = 0 to m - 1 do
        let rate = dir *. alpha.(i) in
        let bj = st.basis.(i) in
        if rate > pivot_tol then begin
          (* basic value decreases toward its lower bound *)
          if st.alb.(bj) > neg_infinity then begin
            let step = (st.xb.(i) -. st.alb.(bj)) /. rate in
            if step < !t -. pivot_tol || (step < !t +. pivot_tol && !leaving >= 0
                 && Float.abs alpha.(i) > Float.abs alpha.(!leaving)) then begin
              t := max 0. step;
              leaving := i;
              leaving_to_upper := false
            end
          end
        end
        else if rate < -.pivot_tol then begin
          (* basic value increases toward its upper bound *)
          if st.aub.(bj) < infinity then begin
            let step = (st.aub.(bj) -. st.xb.(i)) /. -.rate in
            if step < !t -. pivot_tol || (step < !t +. pivot_tol && !leaving >= 0
                 && Float.abs alpha.(i) > Float.abs alpha.(!leaving)) then begin
              t := max 0. step;
              leaving := i;
              leaving_to_upper := true
            end
          end
        end
      done;
      if !t = infinity then raise Lp_unbounded;
      let t = !t in
      if t < feas_tol then st.degenerate_streak <- st.degenerate_streak + 1
      else st.degenerate_streak <- 0;
      if (not st.bland) && st.degenerate_streak > 2 * (m + st.ntot) then begin
        st.bland <- true;
        Telemetry.Metrics.incr m_bland
      end;
      (* apply the step to basic values *)
      for i = 0 to m - 1 do
        st.xb.(i) <- st.xb.(i) -. (dir *. t *. alpha.(i))
      done;
      if !leaving < 0 then begin
        (* bound flip of the entering variable *)
        st.xn.(j) <- st.xn.(j) +. (dir *. t);
        st.loc.(j) <- (if dir > 0. then At_upper else At_lower)
      end
      else begin
        let r = !leaving in
        let old = st.basis.(r) in
        (* leaving variable rests at the bound it reached *)
        st.loc.(old) <- (if !leaving_to_upper then At_upper else At_lower);
        st.xn.(old) <- (if !leaving_to_upper then st.aub.(old) else st.alb.(old));
        (* entering variable becomes basic in row r *)
        st.basis.(r) <- j;
        st.loc.(j) <- Basic r;
        st.xb.(r) <- st.xn.(j) +. (dir *. t);
        eta_update st r alpha
      end;
      st.iterations <- st.iterations + 1
    end
  done

(* ---- dual simplex ------------------------------------------------------ *)

(* Dual unboundedness with a verified dual-feasible basis: the primal LP is
   infeasible. *)
exception Dual_infeasible

(* Numerical trouble (stalled pivot, cycling, budget) in the dual loop: the
   warm attempt retreats to the cold two-phase path, which preserves every
   existing robustness guarantee. *)
exception Dual_giveup

let dual_feasible st cost y =
  let tol = 10. *. opt_tol in
  try
    for j = 0 to st.ntot - 1 do
      match st.loc.(j) with
      | Basic _ -> ()
      | loc ->
        if st.aub.(j) -. st.alb.(j) > pivot_tol then begin
          let d = reduced_cost st cost y j in
          match loc with
          | At_lower -> if d < -.tol then raise Exit
          | At_upper -> if d > tol then raise Exit
          | Free_zero -> if Float.abs d > tol then raise Exit
          | Basic _ -> ()
        end
    done;
    true
  with Exit -> false

(* Bounded-variable dual simplex: from a dual-feasible basis, drive the
   primal infeasibilities (basic values outside their bounds) to zero.
   Leaving row: devex pricing — the largest violation²/weight over a
   reference-framework weight per row (weights start at 1, grow with the
   pivot column, reset at refactorization), which approximates steepest-
   edge row selection at Dantzig cost. Entering column: smallest dual
   ratio |d_j| / |alpha_rj| over sign-eligible nonbasic columns, which
   keeps every reduced cost on its feasible side. Raises [Dual_infeasible]
   when no column can absorb the violation (the classic infeasibility
   proof), [Dual_giveup] on a stalled pivot or when [cap] pivots were
   spent without reaching feasibility (cycling guard). *)
let dual_optimize st cost ws ~cap deadline =
  let m = st.m in
  let y = ws.wy and alpha = ws.walpha and dw = ws.wdev in
  Array.fill dw 0 m 1.;
  let start = st.iterations in
  Fun.protect
    ~finally:(fun () -> Telemetry.Metrics.add m_dual (st.iterations - start))
  @@ fun () ->
  let continue_ = ref true in
  while !continue_ do
    if st.iterations - start >= cap then raise Dual_giveup;
    (match Robust.Fault.check "simplex.pivot" with
     | Ok () -> ()
     | Error f -> raise (Lp_abort f));
    if st.iterations mod deadline_every = 0 then begin
      if Robust.Deadline.expired deadline then
        raise (Lp_abort Robust.Failure.Deadline_exceeded);
      check_health st;
      if audit_residual st ws then Array.fill dw 0 m 1.
    end;
    if maybe_refactor st ws then Array.fill dw 0 m 1.;
    (* leaving row: largest violation²/weight (devex) *)
    let r = ref (-1) in
    let best_score = ref 0. in
    let s = ref 1. in   (* +1: must decrease (above ub); -1: must increase *)
    for i = 0 to m - 1 do
      let b = st.basis.(i) in
      let below = st.alb.(b) -. st.xb.(i) in
      let above = st.xb.(i) -. st.aub.(b) in
      let viol = if below > above then below else above in
      if viol > feas_tol then begin
        let score = viol *. viol /. dw.(i) in
        if score > !best_score then begin
          best_score := score;
          r := i;
          s := (if below > above then -1. else 1.)
        end
      end
    done;
    if !r < 0 then continue_ := false   (* primal feasible: optimal *)
    else begin
      let r = !r and s = !s in
      compute_duals st cost y;
      let row = Lu.row st.fac r in
      (* entering column: min dual ratio; ties prefer the larger pivot for
         stability, or the smallest index once Bland's rule is active *)
      let enter = ref (-1) in
      let best_ratio = ref infinity in
      let best_alpha = ref 0. in
      for j = 0 to st.ntot - 1 do
        match st.loc.(j) with
        | Basic _ -> ()
        | loc ->
          if st.aub.(j) -. st.alb.(j) > pivot_tol then begin
            let rows, coeffs = st.acols.(j) in
            let a = ref 0. in
            Array.iteri (fun k rw -> a := !a +. (row.(rw) *. coeffs.(k))) rows;
            let a = !a in
            let eligible =
              match loc with
              | At_lower -> s *. a > pivot_tol
              | At_upper -> s *. a < -.pivot_tol
              | Free_zero -> Float.abs a > pivot_tol
              | Basic _ -> false
            in
            if eligible then begin
              let d = reduced_cost st cost y j in
              let ratio = Float.abs d /. Float.abs a in
              if ratio < !best_ratio -. 1e-12
                 || ((not st.bland) && ratio < !best_ratio +. 1e-12
                     && Float.abs a > Float.abs !best_alpha)
              then begin
                best_ratio := ratio;
                best_alpha := a;
                enter := j
              end
            end
          end
      done;
      if !enter < 0 then begin
        (* no column can absorb the violation: infeasible — but only claim
           it if the basis really is dual feasible, so a drifted basis can
           never prune a feasible child (it falls back to the cold path) *)
        if dual_feasible st cost y then raise Dual_infeasible else raise Dual_giveup
      end
      else begin
        let j = !enter in
        ftran st j alpha;
        if Float.abs alpha.(r) < pivot_tol then raise Dual_giveup;
        (* dual degeneracy (zero-ratio pivots) can cycle: same Bland ladder
           as the primal loop *)
        if !best_ratio < opt_tol then st.degenerate_streak <- st.degenerate_streak + 1
        else st.degenerate_streak <- 0;
        if (not st.bland) && st.degenerate_streak > 2 * (m + st.ntot) then begin
          st.bland <- true;
          Telemetry.Metrics.incr m_bland
        end;
        let b = st.basis.(r) in
        let target = if s > 0. then st.aub.(b) else st.alb.(b) in
        let t = (st.xb.(r) -. target) /. alpha.(r) in
        for i = 0 to m - 1 do
          if i <> r then st.xb.(i) <- st.xb.(i) -. (t *. alpha.(i))
        done;
        st.loc.(b) <- (if s > 0. then At_upper else At_lower);
        st.xn.(b) <- target;
        st.basis.(r) <- j;
        st.loc.(j) <- Basic r;
        st.xb.(r) <- st.xn.(j) +. t;
        (* devex reference-framework update from the pivot column *)
        let ar = alpha.(r) in
        let wr = dw.(r) in
        for i = 0 to m - 1 do
          if i <> r then begin
            let ai = alpha.(i) in
            if Float.abs ai > pivot_tol then begin
              let cand = ai /. ar *. (ai /. ar) *. wr in
              if cand > dw.(i) then dw.(i) <- cand
            end
          end
        done;
        dw.(r) <- Float.max 1. (wr /. (ar *. ar));
        eta_update st r alpha;
        st.iterations <- st.iterations + 1
      end
    end
  done

(* ---- vertex canonicalization ------------------------------------------- *)

(* The CoSA LPs are massively dual degenerate: the optimal face has many
   vertices, and which one a solve lands on depends on the pivot path — so
   a warm dual reoptimization and a cold two-phase solve of the same LP
   would return different (equally optimal) solutions, which would diverge
   the branch-and-bound trees of --warm-start=on and off runs. To keep the
   solution a function of the problem alone, every optimal solve finishes
   by minimizing a fixed generic secondary objective over the optimal face
   (entering columns restricted to zero reduced cost in the true
   objective, which preserves optimality exactly): a generic objective has
   a unique face optimum, so both paths converge to the same vertex. *)

(* Deterministic generic weight for column j in [1, 2) (splitmix64 hash):
   no two columns share a weight, making ties measure-zero. *)
let canonical_weight j =
  let h = Int64.of_int (j + 1) in
  let h = Int64.mul h 0x9E3779B97F4A7C15L in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  let h = Int64.mul h 0xBF58476D1CE4E5B9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 32) in
  1. +. (Int64.to_float (Int64.logand h 0xFFFFFFL) /. 16777216.)

let canonicalize st cost ws deadline =
  compute_duals st cost ws.wy;
  (* freeze every nonbasic column with a nonzero true reduced cost at its
     resting value: pricing then only ever enters face columns, so the true
     objective is invariant under the cleanup pivots *)
  let frozen_lb = Array.copy st.alb and frozen_ub = Array.copy st.aub in
  for j = 0 to st.ntot - 1 do
    match st.loc.(j) with
    | Basic _ -> ()
    | At_lower | At_upper | Free_zero ->
      if
        st.aub.(j) -. st.alb.(j) > pivot_tol
        && Float.abs (reduced_cost st cost ws.wy j) > opt_tol
      then begin
        st.alb.(j) <- st.xn.(j);
        st.aub.(j) <- st.xn.(j)
      end
  done;
  let xi = Array.init st.ntot canonical_weight in
  st.bland <- false;
  st.degenerate_streak <- 0;
  (* bounded effort: a cleanup that stalls or roams an unbounded face just
     keeps the vertex it reached — identity is gated empirically, never at
     the cost of a solve failing *)
  (try optimize st xi ws (st.iterations + 50 + (4 * st.m)) deadline
   with Lp_unbounded | Lp_iteration_limit -> ());
  Array.blit frozen_lb 0 st.alb 0 st.ntot;
  Array.blit frozen_ub 0 st.aub 0 st.ntot

(* The canonical vertex can still be degenerate — represented by several
   bases — and which one a path ends at leaks into the extracted floats at
   the ulp level (different B⁻¹, different roundoff), which is enough to
   eventually diverge branching. [rebase] re-derives the basis from the
   vertex itself: interior columns (strictly between their bounds) must be
   basic, and the rest of the basis is completed by greedy elimination in
   ascending column order — a function of (problem, vertex) only. The
   logical columns are unit vectors, so completion always succeeds. *)
let rebase st ws =
  let m = st.m in
  let x = Array.make st.ntot 0. in
  for j = 0 to st.ntot - 1 do
    match st.loc.(j) with
    | Basic r -> x.(j) <- st.xb.(r)
    | At_lower | At_upper | Free_zero -> x.(j) <- st.xn.(j)
  done;
  let interior j =
    let l = st.alb.(j) and u = st.aub.(j) in
    if l > neg_infinity || u < infinity then
      x.(j) > l +. feas_tol && x.(j) < u -. feas_tol
    else Float.abs x.(j) > feas_tol
  in
  (* incremental elimination: lcols holds each accepted column after
     elimination against its predecessors, pivrow its pivot row *)
  let lcols = ws.wmat and w = ws.wres in
  let pivrow = Array.make m (-1) in
  let pivoted = Array.make m false in
  let accepted = Array.make m (-1) in
  let count = ref 0 in
  let try_accept j =
    if !count < m then begin
      Array.fill w 0 m 0.;
      let rows, coeffs = st.acols.(j) in
      Array.iteri (fun k row -> w.(row) <- coeffs.(k)) rows;
      for t = 0 to !count - 1 do
        let f = w.(pivrow.(t)) /. lcols.(t).(pivrow.(t)) in
        if f <> 0. then
          for r = 0 to m - 1 do
            w.(r) <- w.(r) -. (f *. lcols.(t).(r))
          done
      done;
      let best = ref (-1) in
      for r = 0 to m - 1 do
        if (not pivoted.(r))
           && (!best < 0 || Float.abs w.(r) > Float.abs w.(!best))
        then best := r
      done;
      if !best >= 0 && Float.abs w.(!best) > 1e-7 then begin
        pivrow.(!count) <- !best;
        pivoted.(!best) <- true;
        Array.blit w 0 lcols.(!count) 0 m;
        accepted.(!count) <- j;
        incr count
      end
    end
  in
  for j = 0 to st.ntot - 1 do
    if interior j then try_accept j
  done;
  let interior_count = !count in
  for j = 0 to st.ntot - 1 do
    if not (interior j) then try_accept j
  done;
  if !count = m then begin
    let in_basis = Array.make st.ntot false in
    Array.iter (fun j -> in_basis.(j) <- true) accepted;
    for j = 0 to st.ntot - 1 do
      if in_basis.(j) then st.loc.(j) <- Basic 0 (* row fixed in [finalize] *)
      else begin
        let l = st.alb.(j) and u = st.aub.(j) in
        if l > neg_infinity && (u = infinity || x.(j) -. l <= u -. x.(j)) then begin
          st.loc.(j) <- At_lower;
          st.xn.(j) <- l
        end
        else if u < infinity then begin
          st.loc.(j) <- At_upper;
          st.xn.(j) <- u
        end
        else begin
          st.loc.(j) <- Free_zero;
          st.xn.(j) <- 0.
        end
      end
    done;
    Array.blit accepted 0 st.basis 0 m
  end
  else ignore interior_count
(* a failed completion (cannot happen while the logical columns span the
   row space) keeps the path-dependent basis: identity is gated
   empirically, never at the cost of a solve failing *)

(* Canonicalize the logical columns to the warm path's uniform +1 sign
   before the final factorization: the cold crash path may have built a
   −1-signed artificial, and the canonical factor must be a function of
   (problem, basis set) alone — never of the path that reached it — for
   the factor cache to be sound. Safe here: every logical is locked at
   zero by this point, so flipping a basic artificial's sign can only
   negate its own (zero) basic value, and [compute_xb] rebuilds xb from
   the factorization afterwards anyway. *)
let normalize_logicals st =
  for i = 0 to st.m - 1 do
    let _, coeffs = st.acols.(st.p.ncols + i) in
    if coeffs.(0) <> 1. then st.acols.(st.p.ncols + i) <- ([| i |], [| 1. |])
  done

(* Canonical extraction: install the canonical factorization of the final
   basic set, so the returned floats depend only on (problem, basis set) —
   never on which pivot path produced the basis or how rows happened to be
   assigned along the way. The canonical form (slot order and inverse
   bits) is the incremental chain of [chain_build], or the sorted-order
   from-scratch elimination when a chain pivot is untrustworthy — both
   functions of the set alone. Neither runs for a basis this domain has
   seen before: if the solve entered from this very factor (a no-pivot
   warm solve) or the per-domain cache holds it, the captured inverse is
   loaded instead — bit-identical to recomputation by construction.
   Returns the canonical factor for handoff to child nodes. *)
(* A brand-new canonical basis is almost never far from one already seen:
   on the bench sweep, 88% of distinct canonical bases differ from a
   previously finalized one in exactly one column (98% in at most two).
   [chain_build] exploits this by *defining* the canonical factorization
   constructively: starting from the identity (all-logical) basis, insert
   the sorted basis columns slot by slot — column [basis.(r)] enters at
   pivot row [r], an eta update — and memoize every intermediate prefix
   (itself a valid basis: [basis.(0..k-1)] completed by logicals) in the
   factor cache. A new basis then extends the deepest cached prefix with
   a handful of eta updates instead of an O(m³) from-scratch elimination.

   Determinism: the construction order and pivot rows are forced by the
   sorted basis alone, so the resulting bits are a function of
   (columns, basis set) — never of the pivot path, the cache contents, or
   which sibling built a shared prefix first. A cache hit merely skips
   re-deriving bits the chain would reproduce exactly. The forced pivot
   has no freedom to reject small elements, so a step whose pivot falls
   below [chain_floor] abandons the chain and the caller falls back to
   the pivoting from-scratch elimination — a predicate of (columns,
   basis) as well, keeping the fallback deterministic too. *)
let chain_floor = 1e-6

(* The chain build costs ~2x a from-scratch elimination when no prefix is
   cached (two O(m²) passes plus an O(m²) snapshot per column, against the
   single elimination), so it only wins where bases repeat heavily across
   a branch-and-bound tree — the small node LPs. Larger problems (the
   joint one-shot formulations) see each basis about once; they keep the
   plain elimination. The cutoff depends on the problem dimension alone,
   so which canonical form a basis gets stays path-independent. *)
let chain_max_rows = 32

(* [chain_build st ws]: called with [st.basis] holding the sorted basic
   set. On success, installs the chain factorization in [st.fac], rewrites
   [st.basis] into the chain's canonical slot order, and returns true; on
   failure leaves [st.basis] sorted and the engine trashed for the caller
   to rebuild from scratch.

   Construction: starting from the identity (all-logical) factorization,
   insert the set's structural columns in ascending column order; each
   insertion FTRANs the column and pivots at the largest-magnitude alpha
   over the still-unclaimed rows (ties to the smallest row), an eta
   update. Finally the set's own logical columns are swapped into the
   leftover rows (ascending to ascending). Every choice is forced by the
   (columns, basic set) pair, so the resulting bits — and the slot order —
   are path-independent, as the canonicalization contract requires.

   Each structural prefix is memoized in the factor cache under a
   synthetic key (the first d structurals, padded with -1, which no real
   basis can equal): sibling bases in a branch-and-bound tree differ from
   one another in one or two columns, so they share deep prefixes, and a
   brand-new basis usually costs a couple of eta extensions instead of an
   O(m³) elimination. Cache state affects only where rebuilding starts,
   never the bits: a cached prefix holds exactly the bits the chain would
   re-derive. *)
let chain_build st ws =
  let m = st.m and ncols = st.p.ncols in
  if m > chain_max_rows then false
  else begin
    let sset = st.basis in
    (* structural columns form the sorted set's prefix *)
    let nstr = ref 0 in
    while !nstr < m && sset.(!nstr) < ncols do incr nstr done;
    let k = !nstr in
    (* deepest cached structural prefix, probing top-down *)
    let key = Array.make m (-1) in
    Array.blit sset 0 key 0 k;
    let depth = ref k and seed = ref None in
    while !seed = None && !depth > 0 do
      (match lookup_factor st.p m key with
       | Some f -> seed := Some f
       | None ->
         decr depth;
         key.(!depth) <- -1)
    done;
    let b = Array.make m 0 in
    (match !seed with
     | Some f ->
       Lu.load st.fac f.Factor.f_binv;
       Array.blit f.Factor.f_basis 0 b 0 m
     | None ->
       let id = ws.wmat in
       for i = 0 to m - 1 do
         Array.fill id.(i) 0 m 0.;
         id.(i).(i) <- 1.
       done;
       Lu.load st.fac id;
       for r = 0 to m - 1 do
         b.(r) <- ncols + r
       done);
    let ok = ref true in
    let d = ref !depth in
    while !ok && !d < k do
      let j = sset.(!d) in
      Lu.ftran st.fac st.acols.(j) ws.walpha;
      let best = ref (-1) in
      for r = 0 to m - 1 do
        if b.(r) >= ncols
           && (!best < 0 || Float.abs ws.walpha.(r) > Float.abs ws.walpha.(!best))
        then best := r
      done;
      if !best < 0 || Float.abs ws.walpha.(!best) <= chain_floor then ok := false
      else begin
        Lu.update st.fac ~pivot_tol !best ws.walpha;
        Telemetry.Metrics.incr m_factor_ext;
        b.(!best) <- j;
        incr d;
        let fp = prefix_fp m sset !d in
        let seen = Domain.DLS.get seen_fp_key in
        let slot = fp mod cache_slots in
        if seen.(slot) = fp then begin
          let pk = Array.make m (-1) in
          Array.blit sset 0 pk 0 !d;
          store_factor
            { Factor.f_cols = st.p.cols; f_nrows = m; f_key = pk;
              f_basis = Array.copy b; f_binv = Lu.snapshot st.fac }
        end
        else seen.(slot) <- fp
      end
    done;
    (* swap the set's logicals into the leftover rows: a wanted logical
       whose own row is unclaimed is already in place; the rest pair with
       the claimed-over rows, ascending to ascending *)
    if !ok && k < m then begin
      let wanted = Array.make m false in
      for i = k to m - 1 do
        wanted.(sset.(i) - ncols) <- true
      done;
      let mrows = ref [] and mlogs = ref [] in
      for r = m - 1 downto 0 do
        if b.(r) >= ncols && not wanted.(r) then mrows := r :: !mrows
      done;
      for i = m - 1 downto k do
        let w = sset.(i) in
        if b.(w - ncols) < ncols then mlogs := w :: !mlogs
      done;
      List.iter2
        (fun r w ->
          if !ok then begin
            Lu.ftran st.fac st.acols.(w) ws.walpha;
            if Float.abs ws.walpha.(r) <= chain_floor then ok := false
            else begin
              Lu.update st.fac ~pivot_tol r ws.walpha;
              Telemetry.Metrics.incr m_factor_ext;
              b.(r) <- w
            end
          end)
        !mrows !mlogs
    end;
    if !ok then Array.blit b 0 st.basis 0 m;
    !ok
  end

let finalize st ws =
  Array.sort (fun (a : int) b -> compare a b) st.basis;
  normalize_logicals st;
  let install f =
    Telemetry.Metrics.incr m_factor_hit;
    Lu.load st.fac f.Factor.f_binv;
    Array.blit f.Factor.f_basis 0 st.basis 0 st.m;
    f
  in
  let fac =
    match st.loaded with
    | Some f when f.Factor.f_nrows = st.m && int_array_eq f.Factor.f_key st.basis ->
      install f
    | _ -> (
      match lookup_factor st.p st.m st.basis with
      | Some f -> install f
      | None ->
        if not (chain_build st ws) then refactor_basis st ws;
        capture_factor st)
  in
  Array.iteri (fun r c -> st.loc.(c) <- Basic r) st.basis;
  compute_xb st ws;
  check_health st;
  fac

let extract_x st =
  let x = Array.make st.p.ncols 0. in
  for j = 0 to st.p.ncols - 1 do
    match st.loc.(j) with
    | Basic r -> x.(j) <- st.xb.(r)
    | At_lower | At_upper | Free_zero -> x.(j) <- st.xn.(j)
  done;
  x

let objective_value p x =
  let s = ref 0. in
  for j = 0 to p.ncols - 1 do
    s := !s +. (p.cost.(j) *. x.(j))
  done;
  !s

let basis_of_state st =
  let vstat =
    Array.map
      (function
        | Basic _ -> Basis.Vbasic
        | At_lower -> Basis.Vlower
        | At_upper -> Basis.Vupper
        | Free_zero -> Basis.Vfree)
      st.loc
  in
  { Basis.basic = Array.copy st.basis; vstat }

(* ---- warm path --------------------------------------------------------- *)

(* A warm attempt that cannot proceed (stale/singular basis, dimension
   mismatch, dual stall) raises [Warm_reject]; the caller falls back to the
   cold two-phase solve, so warm starting can never make a solve fail that
   would have succeeded cold. *)
exception Warm_reject

let warm_attempt ~max_iterations ~deadline ~interval ws p (wb : Basis.t) wfac =
  let m = p.nrows in
  let ntot = p.ncols + m in
  if Array.length wb.Basis.basic <> m || Array.length wb.Basis.vstat <> ntot then
    raise Warm_reject;
  let acols = Array.make ntot ([||], [||]) in
  Array.blit p.cols 0 acols 0 p.ncols;
  (* logical columns are rebuilt with uniform +1 sign and locked at zero: a
     warm solve never needs phase-1 artificials, only a nonsingular square
     basis (a parent's sign-flipped artificial still yields one) *)
  let alb = Array.make ntot 0. and aub = Array.make ntot 0. in
  Array.blit p.lb 0 alb 0 p.ncols;
  Array.blit p.ub 0 aub 0 p.ncols;
  for i = 0 to m - 1 do
    acols.(p.ncols + i) <- ([| i |], [| 1. |])
  done;
  let xn = Array.make ntot 0. in
  let loc = Array.make ntot At_lower in
  for j = 0 to ntot - 1 do
    let l = alb.(j) and u = aub.(j) in
    match wb.Basis.vstat.(j) with
    | Basis.Vbasic -> ()   (* patched below from the basic set *)
    | Basis.Vlower ->
      if l > neg_infinity then begin loc.(j) <- At_lower; xn.(j) <- l end
      else if u < infinity then begin loc.(j) <- At_upper; xn.(j) <- u end
      else begin loc.(j) <- Free_zero; xn.(j) <- 0. end
    | Basis.Vupper ->
      if u < infinity then begin loc.(j) <- At_upper; xn.(j) <- u end
      else if l > neg_infinity then begin loc.(j) <- At_lower; xn.(j) <- l end
      else begin loc.(j) <- Free_zero; xn.(j) <- 0. end
    | Basis.Vfree ->
      (* a bound may have appeared since the parent (presolve tightening):
         snap to it; the primal cleanup absorbs any dual-sign mismatch *)
      if l > neg_infinity then begin loc.(j) <- At_lower; xn.(j) <- l end
      else if u < infinity then begin loc.(j) <- At_upper; xn.(j) <- u end
      else begin loc.(j) <- Free_zero; xn.(j) <- 0. end
  done;
  let basis = Array.copy wb.Basis.basic in
  let seen = Array.make ntot false in
  Array.iteri
    (fun r c ->
      if c < 0 || c >= ntot || seen.(c) || wb.Basis.vstat.(c) <> Basis.Vbasic then
        raise Warm_reject;
      seen.(c) <- true;
      loc.(c) <- Basic r)
    basis;
  for j = 0 to ntot - 1 do
    if wb.Basis.vstat.(j) = Basis.Vbasic && not seen.(j) then raise Warm_reject
  done;
  let st =
    { p; m; ntot; acols; alb; aub; loc; basis;
      fac = Lu.create m; xb = Array.make m 0.; xn;
      interval; loaded = None;
      degenerate_streak = 0; bland = false; iterations = 0 }
  in
  let phase2_cost = Array.make ntot 0. in
  Array.blit p.cost 0 phase2_cost 0 p.ncols;
  (* a handful of dual pivots is the expected case; a warm solve that needs
     more than this is cheaper to restart cold than to let cycle *)
  let dual_cap = 200 + (2 * (m + ntot)) in
  try
    (* Entry factorization: the parent's canonical factor (handed down
       explicitly or found in the per-domain cache) is bit-valid for this
       child — the basis matrix ignores bounds — so loading it replaces
       the O(m³) entry refactorization with an O(m²) copy. The fallback
       refactorizes and captures, feeding the cache for siblings. *)
    (let seeded =
       match wfac with
       | Some f
         when f.Factor.f_cols == p.cols && f.Factor.f_nrows = m
              && int_array_eq f.Factor.f_basis basis ->
         Some f
       | _ -> (
         (* the factor's slot order must match the warm basis exactly: a
            caller-supplied basis in a non-canonical order must not seed
            from a canonical-order cache entry *)
         match lookup_factor p m (sorted_key basis) with
         | Some f when int_array_eq f.Factor.f_basis basis -> Some f
         | _ -> None)
     in
     match seeded with
     | Some f ->
       Telemetry.Metrics.incr m_factor_reuse;
       Lu.load st.fac f.Factor.f_binv;
       compute_xb st ws;
       st.loaded <- Some f
     | None ->
       refactorize st ws;
       st.loaded <- Some (capture_factor st));
    check_health st;
    dual_optimize st phase2_cost ws ~cap:dual_cap deadline;
    let dual_iters = st.iterations in
    (* primal cleanup: absorbs any reduced-cost drift; from an already
       optimal warm basis this terminates without pivoting *)
    st.bland <- false;
    st.degenerate_streak <- 0;
    optimize st phase2_cost ws max_iterations deadline;
    canonicalize st phase2_cost ws deadline;
    rebase st ws;
    let fac = finalize st ws in
    Telemetry.Metrics.add m_phase2 (st.iterations - dual_iters);
    let x = extract_x st in
    if not (Float.is_finite (objective_value p x)) then raise Warm_reject
    else
      Ok { status = Optimal; obj = objective_value p x; x;
           iterations = st.iterations; warm = true;
           basis = Some (basis_of_state st);
           factor = (if m <= cache_max_rows then Some fac else None) }
  with
  | Dual_infeasible ->
    Ok { status = Infeasible; obj = infinity; x = extract_x st;
         iterations = st.iterations; warm = true; basis = None; factor = None }
  | Dual_giveup | Lp_unbounded | Lp_iteration_limit
  | Lp_abort Robust.Failure.Singular_basis
  | Lp_abort Robust.Failure.Numerical_instability ->
    (* anything numerically suspicious retreats to the cold path; only
       deadline expiry and injected faults surface as typed errors *)
    raise Warm_reject
  | Lp_abort f -> Error f

(* ---- cold path --------------------------------------------------------- *)

let cold_solve ~max_iterations ~deadline ~interval ws p =
  let m = p.nrows in
  let ntot = p.ncols + m in
  let acols = Array.make ntot ([||], [||]) in
  Array.blit p.cols 0 acols 0 p.ncols;
  let alb = Array.make ntot 0. and aub = Array.make ntot infinity in
  Array.blit p.lb 0 alb 0 p.ncols;
  Array.blit p.ub 0 aub 0 p.ncols;
  let xn = Array.make ntot 0. in
  let loc = Array.make ntot At_lower in
  for j = 0 to p.ncols - 1 do
    let v = nonbasic_rest_value p.lb.(j) p.ub.(j) in
    xn.(j) <- v;
    loc.(j) <-
      (if p.lb.(j) > neg_infinity then At_lower
       else if p.ub.(j) < infinity then At_upper
       else Free_zero)
  done;
  (* residuals decide the sign of each artificial column *)
  let resid = Array.copy p.rhs in
  for j = 0 to p.ncols - 1 do
    if xn.(j) <> 0. then begin
      let rows, coeffs = p.cols.(j) in
      Array.iteri (fun k row -> resid.(row) <- resid.(row) -. (coeffs.(k) *. xn.(j))) rows
    end
  done;
  (* Crash basis: prefer a singleton (slack-like) column per row when the
     residual fits its bounds; fall back to an artificial otherwise. This
     usually makes phase 1 trivial for inequality-heavy models. *)
  let singleton_for_row = Array.make m (-1) in
  for j = p.ncols - 1 downto 0 do
    let rows, coeffs = p.cols.(j) in
    if Array.length rows = 1 && Float.abs coeffs.(0) > pivot_tol then
      singleton_for_row.(rows.(0)) <- j
  done;
  let basis = Array.make m 0 in
  let binv = Array.make_matrix m m 0. in
  let xb = Array.make m 0. in
  for i = 0 to m - 1 do
    let crashed =
      let j = singleton_for_row.(i) in
      if j >= 0 then begin
        let _, coeffs = p.cols.(j) in
        let a = coeffs.(0) in
        (* residual currently includes this column's resting contribution *)
        let v = (resid.(i) +. (a *. xn.(j))) /. a in
        if v >= p.lb.(j) -. feas_tol && v <= p.ub.(j) +. feas_tol then begin
          resid.(i) <- resid.(i) +. (a *. xn.(j));
          basis.(i) <- j;
          loc.(j) <- Basic i;
          binv.(i).(i) <- 1. /. a;
          xb.(i) <- v;
          (* the artificial for this row is never used: pin it to zero *)
          acols.(p.ncols + i) <- ([| i |], [| 1. |]);
          aub.(p.ncols + i) <- 0.;
          true
        end
        else false
      end
      else false
    in
    if not crashed then begin
      let sign = if resid.(i) >= 0. then 1. else -1. in
      acols.(p.ncols + i) <- ([| i |], [| sign |]);
      basis.(i) <- p.ncols + i;
      loc.(p.ncols + i) <- Basic i;
      binv.(i).(i) <- sign;
      xb.(i) <- Float.abs resid.(i)
    end
  done;
  let st =
    { p; m; ntot; acols; alb; aub; loc; basis;
      fac = Lu.of_matrix m binv; xb; xn;
      interval; loaded = None;
      degenerate_streak = 0; bland = false; iterations = 0 }
  in
  let phase1_cost = Array.make ntot 0. in
  for i = 0 to m - 1 do
    phase1_cost.(p.ncols + i) <- 1.
  done;
  let phase2_cost = Array.make ntot 0. in
  Array.blit p.cost 0 phase2_cost 0 p.ncols;
  try
    optimize st phase1_cost ws max_iterations deadline;
    Telemetry.Metrics.add m_phase1 st.iterations;
    let p1_iters = st.iterations in
    let infeas = ref 0. in
    for i = 0 to m - 1 do
      if st.basis.(i) >= p.ncols then infeas := !infeas +. st.xb.(i)
    done;
    for j = p.ncols to ntot - 1 do
      match st.loc.(j) with
      | At_upper -> infeas := !infeas +. st.xn.(j)
      | At_lower | Free_zero | Basic _ -> ()
    done;
    if !infeas > 1e-6 then
      Ok { status = Infeasible; obj = infinity; x = extract_x st;
           iterations = st.iterations; warm = false; basis = None;
           factor = None }
    else begin
      (* lock artificials at zero for phase 2 *)
      for j = p.ncols to ntot - 1 do
        st.aub.(j) <- 0.;
        (match st.loc.(j) with
         | At_upper -> st.loc.(j) <- At_lower
         | At_lower | Free_zero | Basic _ -> ());
        st.xn.(j) <- 0.
      done;
      st.bland <- false;
      st.degenerate_streak <- 0;
      optimize st phase2_cost ws max_iterations deadline;
      canonicalize st phase2_cost ws deadline;
      rebase st ws;
      let fac = finalize st ws in
      Telemetry.Metrics.add m_phase2 (st.iterations - p1_iters);
      let x = extract_x st in
      if not (Float.is_finite (objective_value p x)) then
        Error Robust.Failure.Numerical_instability
      else
        Ok { status = Optimal; obj = objective_value p x; x;
             iterations = st.iterations; warm = false;
             basis = Some (basis_of_state st);
             factor = (if m <= cache_max_rows then Some fac else None) }
    end
  with
  | Lp_unbounded ->
    Ok { status = Unbounded; obj = neg_infinity; x = extract_x st;
         iterations = st.iterations; warm = false; basis = None; factor = None }
  | Lp_iteration_limit ->
    Ok { status = Iteration_limit; obj = nan; x = extract_x st;
         iterations = st.iterations; warm = false; basis = None; factor = None }
  | Lp_abort f -> Error f

(* Result-returning entry point: all abnormal terminations (singular basis,
   blown deadline, NaN corruption, injected faults) come back as a typed
   [Error]; [Unbounded]/[Infeasible]/[Iteration_limit] remain ordinary
   statuses because branch-and-bound treats them as prunable outcomes. *)
let solve_r_impl ?max_iterations ?(deadline = Robust.Deadline.none) ?warm
    ?warm_factor ?refactor_interval p =
  let m = p.nrows in
  let max_iterations =
    match max_iterations with
    | Some k -> k
    | None -> 2000 + (200 * (m + p.ncols))
  in
  if m = 0 then begin
    (* No constraints: each variable goes to its cost-minimising bound. *)
    let x = Array.make p.ncols 0. in
    let unbounded = ref false in
    for j = 0 to p.ncols - 1 do
      let v =
        if p.cost.(j) > 0. then p.lb.(j)
        else if p.cost.(j) < 0. then p.ub.(j)
        else nonbasic_rest_value p.lb.(j) p.ub.(j)
      in
      if Float.abs v = infinity then unbounded := true else x.(j) <- v
    done;
    if !unbounded then
      Ok { status = Unbounded; obj = neg_infinity; x; iterations = 0;
           warm = false; basis = None; factor = None }
    else
      Ok { status = Optimal; obj = objective_value p x; x; iterations = 0;
           warm = false; basis = None; factor = None }
  end
  else begin
    let ws = make_workspace m in
    let warm_res =
      match warm with
      | None -> None
      | Some wb ->
        (match
           warm_attempt ~max_iterations ~deadline ~interval:refactor_interval
             ws p wb warm_factor
         with
         | res ->
           Telemetry.Metrics.incr m_warm;
           Some res
         | exception Warm_reject ->
           Telemetry.Metrics.incr m_warm_fallback;
           None)
    in
    match warm_res with
    | Some res -> res
    | None ->
      Telemetry.Metrics.incr m_cold;
      cold_solve ~max_iterations ~deadline ~interval:refactor_interval ws p
  end

(* Public entry point: one span (category "simplex") and one solve-count
   tick per LP; phase iteration counters are recorded inside the solve. *)
let solve_r ?max_iterations ?deadline ?warm ?warm_factor ?refactor_interval p =
  Telemetry.Metrics.incr m_solves;
  Telemetry.Trace.with_span ~cat:"simplex" "simplex.solve" (fun () ->
      solve_r_impl ?max_iterations ?deadline ?warm ?warm_factor
        ?refactor_interval p)

(* Legacy exception-raising wrapper: raises [Robust.Failure.Error] where
   [solve_r] would return [Error]. Prefer [solve_r] in new code. *)
let solve ?max_iterations p =
  match solve_r ?max_iterations p with
  | Ok r -> r
  | Error f -> raise (Robust.Failure.Error f)

let feasible ?(tol = 1e-6) p x =
  let ok = ref true in
  for j = 0 to p.ncols - 1 do
    if x.(j) < p.lb.(j) -. tol || x.(j) > p.ub.(j) +. tol then ok := false
  done;
  let lhs = Array.make p.nrows 0. in
  for j = 0 to p.ncols - 1 do
    let rows, coeffs = p.cols.(j) in
    Array.iteri (fun k row -> lhs.(row) <- lhs.(row) +. (coeffs.(k) *. x.(j))) rows
  done;
  for i = 0 to p.nrows - 1 do
    if Float.abs (lhs.(i) -. p.rhs.(i)) > tol *. (1. +. Float.abs p.rhs.(i)) then ok := false
  done;
  !ok
