type status = Optimal | Infeasible | Unbounded | Iteration_limit

(* Internal control-flow exception: aborts the current solve with a typed
   failure (singular basis, deadline, NaN corruption, injected fault).
   Never escapes [solve_r]; [solve] re-raises it as [Robust.Failure.Error]. *)
exception Lp_abort of Robust.Failure.t

type problem = {
  nrows : int;
  ncols : int;
  cols : (int array * float array) array;
  cost : float array;
  lb : float array;
  ub : float array;
  rhs : float array;
}

(* An explicit simplex basis: which column is basic in each row, plus the
   resting status of every column (structural first, then one logical per
   row). A basis returned from an optimal solve of a parent LP stays dual
   feasible after any bound change — reduced costs depend on the basis and
   costs only — so a child LP in branch-and-bound can reoptimize with a few
   dual pivots instead of a cold two-phase solve. *)
module Basis = struct
  type vstat = Vbasic | Vlower | Vupper | Vfree

  type t = {
    basic : int array;  (* column basic in row r, length nrows *)
    vstat : vstat array;  (* per-column status, length ncols + nrows *)
  }
end

type result = {
  status : status;
  obj : float;
  x : float array;
  iterations : int;
  warm : bool;  (* solved by dual reoptimization from a supplied basis *)
  basis : Basis.t option;  (* final basis when [status = Optimal] *)
}

(* The solver's numerical tolerances, exposed as one record so the exact-
   arithmetic certifier (lib/certify) checks against the very same values
   the pivot loop used — the checker and the solver cannot drift apart. *)
module Tolerances = struct
  type t = { feas_tol : float; opt_tol : float; pivot_tol : float }

  let default = { feas_tol = 1e-7; opt_tol = 1e-7; pivot_tol = 1e-9 }
end

let feas_tol = Tolerances.default.Tolerances.feas_tol
let opt_tol = Tolerances.default.Tolerances.opt_tol
let pivot_tol = Tolerances.default.Tolerances.pivot_tol
let refactor_every = 100

(* Telemetry: aggregate counters recorded once per solve (iterations) or
   per rare event (refactorization, Bland activation) — never per pivot,
   so the disabled-path cost is a handful of flag loads per LP. *)
let m_solves = Telemetry.Metrics.counter "simplex.solves"
let m_phase1 = Telemetry.Metrics.counter "simplex.phase1_iterations"
let m_phase2 = Telemetry.Metrics.counter "simplex.phase2_iterations"
let m_dual = Telemetry.Metrics.counter "simplex.dual_iterations"
let m_warm = Telemetry.Metrics.counter "simplex.warm_solves"
let m_cold = Telemetry.Metrics.counter "simplex.cold_solves"
let m_warm_fallback = Telemetry.Metrics.counter "simplex.warm_fallbacks"
let m_refactor = Telemetry.Metrics.counter "simplex.refactorizations"
let m_bland = Telemetry.Metrics.counter "simplex.bland_activations"

(* Location of a column: basic in some row, or nonbasic resting at a bound. *)
type location = Basic of int | At_lower | At_upper | Free_zero

type state = {
  p : problem;
  m : int;                       (* rows *)
  ntot : int;                    (* structural + artificial columns *)
  acols : (int array * float array) array; (* all columns incl. artificials *)
  alb : float array;
  aub : float array;
  loc : location array;
  basis : int array;             (* column basic in each row *)
  binv : float array array;      (* dense basis inverse, m x m *)
  xb : float array;              (* values of basic variables, by row *)
  xn : float array;              (* resting value of every column when nonbasic *)
  mutable degenerate_streak : int;
  mutable bland : bool;
  mutable iterations : int;
}

(* Per-solve scratch, sized once in [solve_r]: the pivot loops, pricing,
   and refactorization all work out of these arrays, so the inner loops
   allocate nothing (the GC never runs mid-solve). Shared between a warm
   attempt and its cold fallback. *)
type workspace = {
  wy : float array;           (* dual vector *)
  walpha : float array;       (* ftran result column *)
  wmat : float array array;   (* refactorization scratch (basis matrix) *)
  wres : float array;         (* rhs/residual scratch *)
}

let make_workspace m =
  let n = max 1 m in
  { wy = Array.make n 0.; walpha = Array.make n 0.;
    wmat = Array.make_matrix n n 0.; wres = Array.make n 0. }

let nonbasic_rest_value lb ub =
  if lb > neg_infinity then lb else if ub < infinity then ub else 0.

(* Rebuild the dense basis inverse by Gauss-Jordan elimination and recompute
   basic values from scratch. Raises [Lp_abort Singular_basis] on a singular
   basis; in a cold solve that indicates an internal invariant violation,
   in a warm solve it rejects a stale parent basis. *)
let refactorize st ws =
  (match Robust.Fault.check "simplex.refactor" with
   | Ok () -> ()
   | Error f -> raise (Lp_abort f));
  Telemetry.Metrics.incr m_refactor;
  let m = st.m in
  let mat = ws.wmat in
  for i = 0 to m - 1 do
    Array.fill mat.(i) 0 m 0.
  done;
  for r = 0 to m - 1 do
    let rows, coeffs = st.acols.(st.basis.(r)) in
    Array.iteri (fun k row -> mat.(row).(r) <- coeffs.(k)) rows
  done;
  (* the inverse is eliminated in place in st.binv, from the identity *)
  let inv = st.binv in
  for i = 0 to m - 1 do
    Array.fill inv.(i) 0 m 0.;
    inv.(i).(i) <- 1.
  done;
  for col = 0 to m - 1 do
    (* partial pivoting *)
    let best = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs mat.(r).(col) > Float.abs mat.(!best).(col) then best := r
    done;
    if Float.abs mat.(!best).(col) < pivot_tol then
      raise (Lp_abort Robust.Failure.Singular_basis);
    if !best <> col then begin
      let t = mat.(col) in mat.(col) <- mat.(!best); mat.(!best) <- t;
      let t = inv.(col) in inv.(col) <- inv.(!best); inv.(!best) <- t
    end;
    let piv = mat.(col).(col) in
    for j = 0 to m - 1 do
      mat.(col).(j) <- mat.(col).(j) /. piv;
      inv.(col).(j) <- inv.(col).(j) /. piv
    done;
    for r = 0 to m - 1 do
      if r <> col then begin
        let f = mat.(r).(col) in
        if f <> 0. then
          for j = 0 to m - 1 do
            mat.(r).(j) <- mat.(r).(j) -. (f *. mat.(col).(j));
            inv.(r).(j) <- inv.(r).(j) -. (f *. inv.(col).(j))
          done
      end
    done
  done;
  (* xb = binv * (rhs - sum_{nonbasic j} A_j * xn_j) *)
  let r = ws.wres in
  Array.blit st.p.rhs 0 r 0 m;
  for j = 0 to st.ntot - 1 do
    match st.loc.(j) with
    | Basic _ -> ()
    | At_lower | At_upper | Free_zero ->
      let v = st.xn.(j) in
      if v <> 0. then begin
        let rows, coeffs = st.acols.(j) in
        Array.iteri (fun k row -> r.(row) <- r.(row) -. (coeffs.(k) *. v)) rows
      end
  done;
  for i = 0 to m - 1 do
    let s = ref 0. in
    for k = 0 to m - 1 do
      s := !s +. (st.binv.(i).(k) *. r.(k))
    done;
    st.xb.(i) <- !s
  done

(* NaN/Inf anywhere in the basic values means the eta updates have silently
   corrupted the factorization; surface it as a typed failure instead of
   letting garbage propagate into branching decisions. *)
let check_health st =
  for i = 0 to st.m - 1 do
    if not (Float.is_finite st.xb.(i)) then
      raise (Lp_abort Robust.Failure.Numerical_instability)
  done

(* Reduced cost of column j given the dual vector y. *)
let reduced_cost st cost y j =
  let rows, coeffs = st.acols.(j) in
  let s = ref cost.(j) in
  Array.iteri (fun k row -> s := !s -. (y.(row) *. coeffs.(k))) rows;
  !s

let compute_duals st cost y =
  let m = st.m in
  for i = 0 to m - 1 do
    y.(i) <- 0.
  done;
  for r = 0 to m - 1 do
    let cb = cost.(st.basis.(r)) in
    if cb <> 0. then
      for i = 0 to m - 1 do
        y.(i) <- y.(i) +. (cb *. st.binv.(r).(i))
      done
  done

(* alpha = binv * column j *)
let ftran st j alpha =
  let m = st.m in
  let rows, coeffs = st.acols.(j) in
  for i = 0 to m - 1 do
    let bi = st.binv.(i) in
    let s = ref 0. in
    Array.iteri (fun k row -> s := !s +. (bi.(row) *. coeffs.(k))) rows;
    alpha.(i) <- !s
  done

(* Product-form update of the dense inverse after [j] enters in row [r]
   with pivot column [alpha] (shared by the primal and dual pivot loops). *)
let eta_update st r alpha =
  let m = st.m in
  let piv = alpha.(r) in
  let br = st.binv.(r) in
  for k = 0 to m - 1 do
    br.(k) <- br.(k) /. piv
  done;
  for i = 0 to m - 1 do
    if i <> r then begin
      let f = alpha.(i) in
      if Float.abs f > pivot_tol then begin
        let bi = st.binv.(i) in
        for k = 0 to m - 1 do
          bi.(k) <- bi.(k) -. (f *. br.(k))
        done
      end
    end
  done

exception Lp_unbounded
exception Lp_iteration_limit

(* One phase of the primal simplex: minimize [cost] from the current basis.
   Mutates [st]; returns when no improving nonbasic column remains. The
   deadline is polled every [deadline_every] iterations — frequent enough
   that a single solve cannot overshoot its budget by more than a few
   pivots, rare enough that the clock read does not show up in profiles. *)
let deadline_every = 32

let optimize st cost ws max_iterations deadline =
  let m = st.m in
  let y = ws.wy and alpha = ws.walpha in
  let continue_ = ref true in
  while !continue_ do
    if st.iterations >= max_iterations then raise Lp_iteration_limit;
    (match Robust.Fault.check "simplex.pivot" with
     | Ok () -> ()
     | Error f -> raise (Lp_abort f));
    if st.iterations mod deadline_every = 0 then begin
      if Robust.Deadline.expired deadline then
        raise (Lp_abort Robust.Failure.Deadline_exceeded);
      check_health st
    end;
    if st.iterations mod refactor_every = 0 && st.iterations > 0 then refactorize st ws;
    compute_duals st cost y;
    (* Pricing: Dantzig rule normally, Bland's rule after a degenerate streak. *)
    let entering = ref (-1) in
    let entering_dir = ref 1. in
    let best_score = ref opt_tol in
    (try
       for j = 0 to st.ntot - 1 do
         match st.loc.(j) with
         | Basic _ -> ()
         | loc ->
           if st.aub.(j) -. st.alb.(j) > pivot_tol then begin
             let d = reduced_cost st cost y j in
             let dir =
               match loc with
               | At_lower | Free_zero -> if d < -.opt_tol then 1. else 0.
               | At_upper -> if d > opt_tol then -1. else 0.
               | Basic _ -> 0.
             in
             let dir =
               (* a free variable can also move down on positive reduced cost *)
               if dir = 0. && st.loc.(j) = Free_zero && d > opt_tol then -1. else dir
             in
             if dir <> 0. then
               if st.bland then begin
                 entering := j;
                 entering_dir := dir;
                 raise Exit
               end
               else if Float.abs d > !best_score then begin
                 best_score := Float.abs d;
                 entering := j;
                 entering_dir := dir
               end
           end
       done
     with Exit -> ());
    if !entering < 0 then continue_ := false
    else begin
      let j = !entering and dir = !entering_dir in
      ftran st j alpha;
      (* Ratio test: largest step t >= 0 keeping all basics inside their
         bounds; the entering variable may also be blocked by its own
         opposite bound (a bound flip, which needs no basis change). *)
      let own_limit = st.aub.(j) -. st.alb.(j) in
      let t = ref own_limit in
      let leaving = ref (-1) in
      let leaving_to_upper = ref false in
      for i = 0 to m - 1 do
        let rate = dir *. alpha.(i) in
        let bj = st.basis.(i) in
        if rate > pivot_tol then begin
          (* basic value decreases toward its lower bound *)
          if st.alb.(bj) > neg_infinity then begin
            let step = (st.xb.(i) -. st.alb.(bj)) /. rate in
            if step < !t -. pivot_tol || (step < !t +. pivot_tol && !leaving >= 0
                 && Float.abs alpha.(i) > Float.abs alpha.(!leaving)) then begin
              t := max 0. step;
              leaving := i;
              leaving_to_upper := false
            end
          end
        end
        else if rate < -.pivot_tol then begin
          (* basic value increases toward its upper bound *)
          if st.aub.(bj) < infinity then begin
            let step = (st.aub.(bj) -. st.xb.(i)) /. -.rate in
            if step < !t -. pivot_tol || (step < !t +. pivot_tol && !leaving >= 0
                 && Float.abs alpha.(i) > Float.abs alpha.(!leaving)) then begin
              t := max 0. step;
              leaving := i;
              leaving_to_upper := true
            end
          end
        end
      done;
      if !t = infinity then raise Lp_unbounded;
      let t = !t in
      if t < feas_tol then st.degenerate_streak <- st.degenerate_streak + 1
      else st.degenerate_streak <- 0;
      if (not st.bland) && st.degenerate_streak > 2 * (m + st.ntot) then begin
        st.bland <- true;
        Telemetry.Metrics.incr m_bland
      end;
      (* apply the step to basic values *)
      for i = 0 to m - 1 do
        st.xb.(i) <- st.xb.(i) -. (dir *. t *. alpha.(i))
      done;
      if !leaving < 0 then begin
        (* bound flip of the entering variable *)
        st.xn.(j) <- st.xn.(j) +. (dir *. t);
        st.loc.(j) <- (if dir > 0. then At_upper else At_lower)
      end
      else begin
        let r = !leaving in
        let old = st.basis.(r) in
        (* leaving variable rests at the bound it reached *)
        st.loc.(old) <- (if !leaving_to_upper then At_upper else At_lower);
        st.xn.(old) <- (if !leaving_to_upper then st.aub.(old) else st.alb.(old));
        (* entering variable becomes basic in row r *)
        st.basis.(r) <- j;
        st.loc.(j) <- Basic r;
        st.xb.(r) <- st.xn.(j) +. (dir *. t);
        eta_update st r alpha
      end;
      st.iterations <- st.iterations + 1
    end
  done

(* ---- dual simplex ------------------------------------------------------ *)

(* Dual unboundedness with a verified dual-feasible basis: the primal LP is
   infeasible. *)
exception Dual_infeasible

(* Numerical trouble (stalled pivot, cycling, budget) in the dual loop: the
   warm attempt retreats to the cold two-phase path, which preserves every
   existing robustness guarantee. *)
exception Dual_giveup

let dual_feasible st cost y =
  let tol = 10. *. opt_tol in
  try
    for j = 0 to st.ntot - 1 do
      match st.loc.(j) with
      | Basic _ -> ()
      | loc ->
        if st.aub.(j) -. st.alb.(j) > pivot_tol then begin
          let d = reduced_cost st cost y j in
          match loc with
          | At_lower -> if d < -.tol then raise Exit
          | At_upper -> if d > tol then raise Exit
          | Free_zero -> if Float.abs d > tol then raise Exit
          | Basic _ -> ()
        end
    done;
    true
  with Exit -> false

(* Bounded-variable dual simplex: from a dual-feasible basis, drive the
   primal infeasibilities (basic values outside their bounds) to zero.
   Leaving row: largest bound violation. Entering column: smallest dual
   ratio |d_j| / |alpha_rj| over sign-eligible nonbasic columns, which
   keeps every reduced cost on its feasible side. Raises [Dual_infeasible]
   when no column can absorb the violation (the classic infeasibility
   proof), [Dual_giveup] on a stalled pivot or when [cap] pivots were
   spent without reaching feasibility (cycling guard). *)
let dual_optimize st cost ws ~cap deadline =
  let m = st.m in
  let y = ws.wy and alpha = ws.walpha in
  let start = st.iterations in
  Fun.protect
    ~finally:(fun () -> Telemetry.Metrics.add m_dual (st.iterations - start))
  @@ fun () ->
  let continue_ = ref true in
  while !continue_ do
    if st.iterations - start >= cap then raise Dual_giveup;
    (match Robust.Fault.check "simplex.pivot" with
     | Ok () -> ()
     | Error f -> raise (Lp_abort f));
    if st.iterations mod deadline_every = 0 then begin
      if Robust.Deadline.expired deadline then
        raise (Lp_abort Robust.Failure.Deadline_exceeded);
      check_health st
    end;
    if st.iterations mod refactor_every = 0 && st.iterations > 0 then refactorize st ws;
    (* leaving row: the basic variable violating its bounds the most *)
    let r = ref (-1) in
    let viol = ref feas_tol in
    let s = ref 1. in   (* +1: must decrease (above ub); -1: must increase *)
    for i = 0 to m - 1 do
      let b = st.basis.(i) in
      let below = st.alb.(b) -. st.xb.(i) in
      let above = st.xb.(i) -. st.aub.(b) in
      if below > !viol then begin viol := below; r := i; s := -1. end
      else if above > !viol then begin viol := above; r := i; s := 1. end
    done;
    if !r < 0 then continue_ := false   (* primal feasible: optimal *)
    else begin
      let r = !r and s = !s in
      compute_duals st cost y;
      let row = st.binv.(r) in
      (* entering column: min dual ratio; ties prefer the larger pivot for
         stability, or the smallest index once Bland's rule is active *)
      let enter = ref (-1) in
      let best_ratio = ref infinity in
      let best_alpha = ref 0. in
      for j = 0 to st.ntot - 1 do
        match st.loc.(j) with
        | Basic _ -> ()
        | loc ->
          if st.aub.(j) -. st.alb.(j) > pivot_tol then begin
            let rows, coeffs = st.acols.(j) in
            let a = ref 0. in
            Array.iteri (fun k rw -> a := !a +. (row.(rw) *. coeffs.(k))) rows;
            let a = !a in
            let eligible =
              match loc with
              | At_lower -> s *. a > pivot_tol
              | At_upper -> s *. a < -.pivot_tol
              | Free_zero -> Float.abs a > pivot_tol
              | Basic _ -> false
            in
            if eligible then begin
              let d = reduced_cost st cost y j in
              let ratio = Float.abs d /. Float.abs a in
              if ratio < !best_ratio -. 1e-12
                 || ((not st.bland) && ratio < !best_ratio +. 1e-12
                     && Float.abs a > Float.abs !best_alpha)
              then begin
                best_ratio := ratio;
                best_alpha := a;
                enter := j
              end
            end
          end
      done;
      if !enter < 0 then begin
        (* no column can absorb the violation: infeasible — but only claim
           it if the basis really is dual feasible, so a drifted basis can
           never prune a feasible child (it falls back to the cold path) *)
        if dual_feasible st cost y then raise Dual_infeasible else raise Dual_giveup
      end
      else begin
        let j = !enter in
        ftran st j alpha;
        if Float.abs alpha.(r) < pivot_tol then raise Dual_giveup;
        (* dual degeneracy (zero-ratio pivots) can cycle: same Bland ladder
           as the primal loop *)
        if !best_ratio < opt_tol then st.degenerate_streak <- st.degenerate_streak + 1
        else st.degenerate_streak <- 0;
        if (not st.bland) && st.degenerate_streak > 2 * (m + st.ntot) then begin
          st.bland <- true;
          Telemetry.Metrics.incr m_bland
        end;
        let b = st.basis.(r) in
        let target = if s > 0. then st.aub.(b) else st.alb.(b) in
        let t = (st.xb.(r) -. target) /. alpha.(r) in
        for i = 0 to m - 1 do
          if i <> r then st.xb.(i) <- st.xb.(i) -. (t *. alpha.(i))
        done;
        st.loc.(b) <- (if s > 0. then At_upper else At_lower);
        st.xn.(b) <- target;
        st.basis.(r) <- j;
        st.loc.(j) <- Basic r;
        st.xb.(r) <- st.xn.(j) +. t;
        eta_update st r alpha;
        st.iterations <- st.iterations + 1
      end
    end
  done

(* ---- vertex canonicalization ------------------------------------------- *)

(* The CoSA LPs are massively dual degenerate: the optimal face has many
   vertices, and which one a solve lands on depends on the pivot path — so
   a warm dual reoptimization and a cold two-phase solve of the same LP
   would return different (equally optimal) solutions, which would diverge
   the branch-and-bound trees of --warm-start=on and off runs. To keep the
   solution a function of the problem alone, every optimal solve finishes
   by minimizing a fixed generic secondary objective over the optimal face
   (entering columns restricted to zero reduced cost in the true
   objective, which preserves optimality exactly): a generic objective has
   a unique face optimum, so both paths converge to the same vertex. *)

(* Deterministic generic weight for column j in [1, 2) (splitmix64 hash):
   no two columns share a weight, making ties measure-zero. *)
let canonical_weight j =
  let h = Int64.of_int (j + 1) in
  let h = Int64.mul h 0x9E3779B97F4A7C15L in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  let h = Int64.mul h 0xBF58476D1CE4E5B9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 32) in
  1. +. (Int64.to_float (Int64.logand h 0xFFFFFFL) /. 16777216.)

let canonicalize st cost ws deadline =
  compute_duals st cost ws.wy;
  (* freeze every nonbasic column with a nonzero true reduced cost at its
     resting value: pricing then only ever enters face columns, so the true
     objective is invariant under the cleanup pivots *)
  let frozen_lb = Array.copy st.alb and frozen_ub = Array.copy st.aub in
  for j = 0 to st.ntot - 1 do
    match st.loc.(j) with
    | Basic _ -> ()
    | At_lower | At_upper | Free_zero ->
      if
        st.aub.(j) -. st.alb.(j) > pivot_tol
        && Float.abs (reduced_cost st cost ws.wy j) > opt_tol
      then begin
        st.alb.(j) <- st.xn.(j);
        st.aub.(j) <- st.xn.(j)
      end
  done;
  let xi = Array.init st.ntot canonical_weight in
  st.bland <- false;
  st.degenerate_streak <- 0;
  (* bounded effort: a cleanup that stalls or roams an unbounded face just
     keeps the vertex it reached — identity is gated empirically, never at
     the cost of a solve failing *)
  (try optimize st xi ws (st.iterations + 50 + (4 * st.m)) deadline
   with Lp_unbounded | Lp_iteration_limit -> ());
  Array.blit frozen_lb 0 st.alb 0 st.ntot;
  Array.blit frozen_ub 0 st.aub 0 st.ntot

(* The canonical vertex can still be degenerate — represented by several
   bases — and which one a path ends at leaks into the extracted floats at
   the ulp level (different B⁻¹, different roundoff), which is enough to
   eventually diverge branching. [rebase] re-derives the basis from the
   vertex itself: interior columns (strictly between their bounds) must be
   basic, and the rest of the basis is completed by greedy elimination in
   ascending column order — a function of (problem, vertex) only. The
   logical columns are unit vectors, so completion always succeeds. *)
let rebase st ws =
  let m = st.m in
  let x = Array.make st.ntot 0. in
  for j = 0 to st.ntot - 1 do
    match st.loc.(j) with
    | Basic r -> x.(j) <- st.xb.(r)
    | At_lower | At_upper | Free_zero -> x.(j) <- st.xn.(j)
  done;
  let interior j =
    let l = st.alb.(j) and u = st.aub.(j) in
    if l > neg_infinity || u < infinity then
      x.(j) > l +. feas_tol && x.(j) < u -. feas_tol
    else Float.abs x.(j) > feas_tol
  in
  (* incremental elimination: lcols holds each accepted column after
     elimination against its predecessors, pivrow its pivot row *)
  let lcols = ws.wmat and w = ws.wres in
  let pivrow = Array.make m (-1) in
  let pivoted = Array.make m false in
  let accepted = Array.make m (-1) in
  let count = ref 0 in
  let try_accept j =
    if !count < m then begin
      Array.fill w 0 m 0.;
      let rows, coeffs = st.acols.(j) in
      Array.iteri (fun k row -> w.(row) <- coeffs.(k)) rows;
      for t = 0 to !count - 1 do
        let f = w.(pivrow.(t)) /. lcols.(t).(pivrow.(t)) in
        if f <> 0. then
          for r = 0 to m - 1 do
            w.(r) <- w.(r) -. (f *. lcols.(t).(r))
          done
      done;
      let best = ref (-1) in
      for r = 0 to m - 1 do
        if (not pivoted.(r))
           && (!best < 0 || Float.abs w.(r) > Float.abs w.(!best))
        then best := r
      done;
      if !best >= 0 && Float.abs w.(!best) > 1e-7 then begin
        pivrow.(!count) <- !best;
        pivoted.(!best) <- true;
        Array.blit w 0 lcols.(!count) 0 m;
        accepted.(!count) <- j;
        incr count
      end
    end
  in
  for j = 0 to st.ntot - 1 do
    if interior j then try_accept j
  done;
  let interior_count = !count in
  for j = 0 to st.ntot - 1 do
    if not (interior j) then try_accept j
  done;
  if !count = m then begin
    let in_basis = Array.make st.ntot false in
    Array.iter (fun j -> in_basis.(j) <- true) accepted;
    for j = 0 to st.ntot - 1 do
      if in_basis.(j) then st.loc.(j) <- Basic 0 (* row fixed in [finalize] *)
      else begin
        let l = st.alb.(j) and u = st.aub.(j) in
        if l > neg_infinity && (u = infinity || x.(j) -. l <= u -. x.(j)) then begin
          st.loc.(j) <- At_lower;
          st.xn.(j) <- l
        end
        else if u < infinity then begin
          st.loc.(j) <- At_upper;
          st.xn.(j) <- u
        end
        else begin
          st.loc.(j) <- Free_zero;
          st.xn.(j) <- 0.
        end
      end
    done;
    Array.blit accepted 0 st.basis 0 m
  end
  else ignore interior_count
(* a failed completion (cannot happen while the logical columns span the
   row space) keeps the path-dependent basis: identity is gated
   empirically, never at the cost of a solve failing *)

(* Canonical extraction: order the basic set ascending and rebuild the
   inverse from scratch, so the returned floats depend only on (problem,
   basis set) — never on which pivot path produced the basis or how rows
   happened to be assigned along the way. *)
let finalize st ws =
  Array.sort (fun (a : int) b -> compare a b) st.basis;
  Array.iteri (fun r c -> st.loc.(c) <- Basic r) st.basis;
  refactorize st ws;
  check_health st

let extract_x st =
  let x = Array.make st.p.ncols 0. in
  for j = 0 to st.p.ncols - 1 do
    match st.loc.(j) with
    | Basic r -> x.(j) <- st.xb.(r)
    | At_lower | At_upper | Free_zero -> x.(j) <- st.xn.(j)
  done;
  x

let objective_value p x =
  let s = ref 0. in
  for j = 0 to p.ncols - 1 do
    s := !s +. (p.cost.(j) *. x.(j))
  done;
  !s

let basis_of_state st =
  let vstat =
    Array.map
      (function
        | Basic _ -> Basis.Vbasic
        | At_lower -> Basis.Vlower
        | At_upper -> Basis.Vupper
        | Free_zero -> Basis.Vfree)
      st.loc
  in
  { Basis.basic = Array.copy st.basis; vstat }

(* ---- warm path --------------------------------------------------------- *)

(* A warm attempt that cannot proceed (stale/singular basis, dimension
   mismatch, dual stall) raises [Warm_reject]; the caller falls back to the
   cold two-phase solve, so warm starting can never make a solve fail that
   would have succeeded cold. *)
exception Warm_reject

let warm_attempt ~max_iterations ~deadline ws p (wb : Basis.t) =
  let m = p.nrows in
  let ntot = p.ncols + m in
  if Array.length wb.Basis.basic <> m || Array.length wb.Basis.vstat <> ntot then
    raise Warm_reject;
  let acols = Array.make ntot ([||], [||]) in
  Array.blit p.cols 0 acols 0 p.ncols;
  (* logical columns are rebuilt with uniform +1 sign and locked at zero: a
     warm solve never needs phase-1 artificials, only a nonsingular square
     basis (a parent's sign-flipped artificial still yields one) *)
  let alb = Array.make ntot 0. and aub = Array.make ntot 0. in
  Array.blit p.lb 0 alb 0 p.ncols;
  Array.blit p.ub 0 aub 0 p.ncols;
  for i = 0 to m - 1 do
    acols.(p.ncols + i) <- ([| i |], [| 1. |])
  done;
  let xn = Array.make ntot 0. in
  let loc = Array.make ntot At_lower in
  for j = 0 to ntot - 1 do
    let l = alb.(j) and u = aub.(j) in
    match wb.Basis.vstat.(j) with
    | Basis.Vbasic -> ()   (* patched below from the basic set *)
    | Basis.Vlower ->
      if l > neg_infinity then begin loc.(j) <- At_lower; xn.(j) <- l end
      else if u < infinity then begin loc.(j) <- At_upper; xn.(j) <- u end
      else begin loc.(j) <- Free_zero; xn.(j) <- 0. end
    | Basis.Vupper ->
      if u < infinity then begin loc.(j) <- At_upper; xn.(j) <- u end
      else if l > neg_infinity then begin loc.(j) <- At_lower; xn.(j) <- l end
      else begin loc.(j) <- Free_zero; xn.(j) <- 0. end
    | Basis.Vfree ->
      (* a bound may have appeared since the parent (presolve tightening):
         snap to it; the primal cleanup absorbs any dual-sign mismatch *)
      if l > neg_infinity then begin loc.(j) <- At_lower; xn.(j) <- l end
      else if u < infinity then begin loc.(j) <- At_upper; xn.(j) <- u end
      else begin loc.(j) <- Free_zero; xn.(j) <- 0. end
  done;
  let basis = Array.copy wb.Basis.basic in
  let seen = Array.make ntot false in
  Array.iteri
    (fun r c ->
      if c < 0 || c >= ntot || seen.(c) || wb.Basis.vstat.(c) <> Basis.Vbasic then
        raise Warm_reject;
      seen.(c) <- true;
      loc.(c) <- Basic r)
    basis;
  for j = 0 to ntot - 1 do
    if wb.Basis.vstat.(j) = Basis.Vbasic && not seen.(j) then raise Warm_reject
  done;
  let st =
    { p; m; ntot; acols; alb; aub; loc; basis;
      binv = Array.make_matrix m m 0.; xb = Array.make m 0.; xn;
      degenerate_streak = 0; bland = false; iterations = 0 }
  in
  let phase2_cost = Array.make ntot 0. in
  Array.blit p.cost 0 phase2_cost 0 p.ncols;
  (* a handful of dual pivots is the expected case; a warm solve that needs
     more than this is cheaper to restart cold than to let cycle *)
  let dual_cap = 200 + (2 * (m + ntot)) in
  try
    refactorize st ws;
    check_health st;
    dual_optimize st phase2_cost ws ~cap:dual_cap deadline;
    let dual_iters = st.iterations in
    (* primal cleanup: absorbs any reduced-cost drift; from an already
       optimal warm basis this terminates without pivoting *)
    st.bland <- false;
    st.degenerate_streak <- 0;
    optimize st phase2_cost ws max_iterations deadline;
    canonicalize st phase2_cost ws deadline;
    rebase st ws;
    finalize st ws;
    Telemetry.Metrics.add m_phase2 (st.iterations - dual_iters);
    let x = extract_x st in
    if not (Float.is_finite (objective_value p x)) then raise Warm_reject
    else
      Ok { status = Optimal; obj = objective_value p x; x;
           iterations = st.iterations; warm = true;
           basis = Some (basis_of_state st) }
  with
  | Dual_infeasible ->
    Ok { status = Infeasible; obj = infinity; x = extract_x st;
         iterations = st.iterations; warm = true; basis = None }
  | Dual_giveup | Lp_unbounded | Lp_iteration_limit
  | Lp_abort Robust.Failure.Singular_basis
  | Lp_abort Robust.Failure.Numerical_instability ->
    (* anything numerically suspicious retreats to the cold path; only
       deadline expiry and injected faults surface as typed errors *)
    raise Warm_reject
  | Lp_abort f -> Error f

(* ---- cold path --------------------------------------------------------- *)

let cold_solve ~max_iterations ~deadline ws p =
  let m = p.nrows in
  let ntot = p.ncols + m in
  let acols = Array.make ntot ([||], [||]) in
  Array.blit p.cols 0 acols 0 p.ncols;
  let alb = Array.make ntot 0. and aub = Array.make ntot infinity in
  Array.blit p.lb 0 alb 0 p.ncols;
  Array.blit p.ub 0 aub 0 p.ncols;
  let xn = Array.make ntot 0. in
  let loc = Array.make ntot At_lower in
  for j = 0 to p.ncols - 1 do
    let v = nonbasic_rest_value p.lb.(j) p.ub.(j) in
    xn.(j) <- v;
    loc.(j) <-
      (if p.lb.(j) > neg_infinity then At_lower
       else if p.ub.(j) < infinity then At_upper
       else Free_zero)
  done;
  (* residuals decide the sign of each artificial column *)
  let resid = Array.copy p.rhs in
  for j = 0 to p.ncols - 1 do
    if xn.(j) <> 0. then begin
      let rows, coeffs = p.cols.(j) in
      Array.iteri (fun k row -> resid.(row) <- resid.(row) -. (coeffs.(k) *. xn.(j))) rows
    end
  done;
  (* Crash basis: prefer a singleton (slack-like) column per row when the
     residual fits its bounds; fall back to an artificial otherwise. This
     usually makes phase 1 trivial for inequality-heavy models. *)
  let singleton_for_row = Array.make m (-1) in
  for j = p.ncols - 1 downto 0 do
    let rows, coeffs = p.cols.(j) in
    if Array.length rows = 1 && Float.abs coeffs.(0) > pivot_tol then
      singleton_for_row.(rows.(0)) <- j
  done;
  let basis = Array.make m 0 in
  let binv = Array.make_matrix m m 0. in
  let xb = Array.make m 0. in
  for i = 0 to m - 1 do
    let crashed =
      let j = singleton_for_row.(i) in
      if j >= 0 then begin
        let _, coeffs = p.cols.(j) in
        let a = coeffs.(0) in
        (* residual currently includes this column's resting contribution *)
        let v = (resid.(i) +. (a *. xn.(j))) /. a in
        if v >= p.lb.(j) -. feas_tol && v <= p.ub.(j) +. feas_tol then begin
          resid.(i) <- resid.(i) +. (a *. xn.(j));
          basis.(i) <- j;
          loc.(j) <- Basic i;
          binv.(i).(i) <- 1. /. a;
          xb.(i) <- v;
          (* the artificial for this row is never used: pin it to zero *)
          acols.(p.ncols + i) <- ([| i |], [| 1. |]);
          aub.(p.ncols + i) <- 0.;
          true
        end
        else false
      end
      else false
    in
    if not crashed then begin
      let sign = if resid.(i) >= 0. then 1. else -1. in
      acols.(p.ncols + i) <- ([| i |], [| sign |]);
      basis.(i) <- p.ncols + i;
      loc.(p.ncols + i) <- Basic i;
      binv.(i).(i) <- sign;
      xb.(i) <- Float.abs resid.(i)
    end
  done;
  let st =
    { p; m; ntot; acols; alb; aub; loc; basis; binv; xb; xn;
      degenerate_streak = 0; bland = false; iterations = 0 }
  in
  let phase1_cost = Array.make ntot 0. in
  for i = 0 to m - 1 do
    phase1_cost.(p.ncols + i) <- 1.
  done;
  let phase2_cost = Array.make ntot 0. in
  Array.blit p.cost 0 phase2_cost 0 p.ncols;
  try
    optimize st phase1_cost ws max_iterations deadline;
    Telemetry.Metrics.add m_phase1 st.iterations;
    let p1_iters = st.iterations in
    let infeas = ref 0. in
    for i = 0 to m - 1 do
      if st.basis.(i) >= p.ncols then infeas := !infeas +. st.xb.(i)
    done;
    for j = p.ncols to ntot - 1 do
      match st.loc.(j) with
      | At_upper -> infeas := !infeas +. st.xn.(j)
      | At_lower | Free_zero | Basic _ -> ()
    done;
    if !infeas > 1e-6 then
      Ok { status = Infeasible; obj = infinity; x = extract_x st;
           iterations = st.iterations; warm = false; basis = None }
    else begin
      (* lock artificials at zero for phase 2 *)
      for j = p.ncols to ntot - 1 do
        st.aub.(j) <- 0.;
        (match st.loc.(j) with
         | At_upper -> st.loc.(j) <- At_lower
         | At_lower | Free_zero | Basic _ -> ());
        st.xn.(j) <- 0.
      done;
      st.bland <- false;
      st.degenerate_streak <- 0;
      optimize st phase2_cost ws max_iterations deadline;
      canonicalize st phase2_cost ws deadline;
      rebase st ws;
      finalize st ws;
      Telemetry.Metrics.add m_phase2 (st.iterations - p1_iters);
      let x = extract_x st in
      if not (Float.is_finite (objective_value p x)) then
        Error Robust.Failure.Numerical_instability
      else
        Ok { status = Optimal; obj = objective_value p x; x;
             iterations = st.iterations; warm = false;
             basis = Some (basis_of_state st) }
    end
  with
  | Lp_unbounded ->
    Ok { status = Unbounded; obj = neg_infinity; x = extract_x st;
         iterations = st.iterations; warm = false; basis = None }
  | Lp_iteration_limit ->
    Ok { status = Iteration_limit; obj = nan; x = extract_x st;
         iterations = st.iterations; warm = false; basis = None }
  | Lp_abort f -> Error f

(* Result-returning entry point: all abnormal terminations (singular basis,
   blown deadline, NaN corruption, injected faults) come back as a typed
   [Error]; [Unbounded]/[Infeasible]/[Iteration_limit] remain ordinary
   statuses because branch-and-bound treats them as prunable outcomes. *)
let solve_r_impl ?max_iterations ?(deadline = Robust.Deadline.none) ?warm p =
  let m = p.nrows in
  let max_iterations =
    match max_iterations with
    | Some k -> k
    | None -> 2000 + (200 * (m + p.ncols))
  in
  if m = 0 then begin
    (* No constraints: each variable goes to its cost-minimising bound. *)
    let x = Array.make p.ncols 0. in
    let unbounded = ref false in
    for j = 0 to p.ncols - 1 do
      let v =
        if p.cost.(j) > 0. then p.lb.(j)
        else if p.cost.(j) < 0. then p.ub.(j)
        else nonbasic_rest_value p.lb.(j) p.ub.(j)
      in
      if Float.abs v = infinity then unbounded := true else x.(j) <- v
    done;
    if !unbounded then
      Ok { status = Unbounded; obj = neg_infinity; x; iterations = 0;
           warm = false; basis = None }
    else
      Ok { status = Optimal; obj = objective_value p x; x; iterations = 0;
           warm = false; basis = None }
  end
  else begin
    let ws = make_workspace m in
    let warm_res =
      match warm with
      | None -> None
      | Some wb ->
        (match warm_attempt ~max_iterations ~deadline ws p wb with
         | res ->
           Telemetry.Metrics.incr m_warm;
           Some res
         | exception Warm_reject ->
           Telemetry.Metrics.incr m_warm_fallback;
           None)
    in
    match warm_res with
    | Some res -> res
    | None ->
      Telemetry.Metrics.incr m_cold;
      cold_solve ~max_iterations ~deadline ws p
  end

(* Public entry point: one span (category "simplex") and one solve-count
   tick per LP; phase iteration counters are recorded inside the solve. *)
let solve_r ?max_iterations ?deadline ?warm p =
  Telemetry.Metrics.incr m_solves;
  Telemetry.Trace.with_span ~cat:"simplex" "simplex.solve" (fun () ->
      solve_r_impl ?max_iterations ?deadline ?warm p)

(* Legacy exception-raising wrapper: raises [Robust.Failure.Error] where
   [solve_r] would return [Error]. Prefer [solve_r] in new code. *)
let solve ?max_iterations p =
  match solve_r ?max_iterations p with
  | Ok r -> r
  | Error f -> raise (Robust.Failure.Error f)

let feasible ?(tol = 1e-6) p x =
  let ok = ref true in
  for j = 0 to p.ncols - 1 do
    if x.(j) < p.lb.(j) -. tol || x.(j) > p.ub.(j) +. tol then ok := false
  done;
  let lhs = Array.make p.nrows 0. in
  for j = 0 to p.ncols - 1 do
    let rows, coeffs = p.cols.(j) in
    Array.iteri (fun k row -> lhs.(row) <- lhs.(row) +. (coeffs.(k) *. x.(j))) rows
  done;
  for i = 0 to p.nrows - 1 do
    if Float.abs (lhs.(i) -. p.rhs.(i)) > tol *. (1. +. Float.abs p.rhs.(i)) then ok := false
  done;
  !ok
