(** Branch-and-bound MILP solver over {!Simplex} LP relaxations.

    Best-first search ordered by the LP bound. Branching is on the most
    fractional integer variable. Node and time limits make the solver
    anytime: the best incumbent found so far is always returned. *)

type status =
  | Optimal        (** proved optimal within tolerance *)
  | Feasible       (** limit hit with an incumbent in hand *)
  | Infeasible
  | Unbounded
  | No_solution    (** limit hit before any incumbent was found *)

type result = {
  status : status;
  obj : float;             (** objective in the model's own sense *)
  values : float array;    (** one value per model variable *)
  bound : float;           (** best proven bound on the optimum *)
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  failures : Robust.Failure.t list;
      (** typed failures swallowed during the search (node LPs that aborted
          on a singular basis, NaN corruption, injected faults, or the
          deadline), oldest first, capped at 64 entries. Empty on a clean
          run. When non-empty the search skipped subtrees, so an [Optimal]
          claim is downgraded to [Feasible]. *)
}

val solve :
  ?node_limit:int ->
  ?time_limit:float ->
  ?deadline:Robust.Deadline.t ->
  ?integrality_tol:float ->
  ?priority:float array ->
  ?gap:float ->
  ?warm_start:float array ->
  ?warm_lp:bool ->
  ?refactor_interval:int ->
  Lp.model ->
  result
(** Defaults: [node_limit = 200_000], [time_limit = 60.] seconds,
    [integrality_tol = 1e-6], [gap = 0.]. The effective wall-clock budget
    is the tighter of [time_limit] (relative) and [deadline] (absolute);
    it is propagated into every node's simplex solve, so a single long LP
    cannot blow the budget. [solve] never raises: node LPs that fail with
    a typed error are pruned and reported via [failures]. [priority]
    (indexed by variable) biases the branching rule: among fractional
    integer variables the highest priority wins, most-fractional breaking
    ties. [gap] is an absolute optimality tolerance: nodes whose LP bound
    is within [gap] of the incumbent are pruned (the returned solution is
    then optimal within [gap]). [warm_start], when feasible for the model,
    seeds the incumbent so the search starts with an upper bound (a MIP
    start). [warm_lp] (default [true]) reoptimizes each child node's LP
    with dual simplex from its parent's optimal basis instead of solving
    cold (the parent's canonical factorization is handed down alongside,
    so the warm entry loads the inverse instead of refactorizing it);
    thanks to vertex canonicalization in the solver this is exactly
    behaviour-preserving — same tree, same node counts, bit-identical
    schedules — so the toggle exists only for benchmarking.
    [refactor_interval] pins a fixed eta-chain refactorization cadence in
    every node LP in place of the solver's stability triggers — a
    deterministic A/B knob for bisecting suspected numerical drift. *)

val check_feasible : ?tol:float -> Lp.model -> float array -> bool
(** Whether an assignment satisfies all bounds, integrality, and
    constraints of the model (used for warm starts and in tests). *)

val value : result -> Lp.var -> float
(** Convenience accessor into [values]. *)

val relax : Lp.model -> Simplex.problem
(** The LP relaxation in equality standard form (slack variables appended
    after the structural ones). Exposed for tests. *)
