(** Primal and dual simplex for linear programs with bounded variables.

    Solves [minimize c.x  s.t.  A x = b,  lb <= x <= ub] (all rows are
    equalities; {!Bb.relax} adds slacks for inequality rows). The cold path
    is two-phase primal: phase 1 drives artificial variables to zero from
    an all-artificial starting basis; phase 2 optimises the true objective.
    The warm path reoptimizes from an explicit parent {!Basis.t} with a
    bounded-variable dual simplex: after a bound change the parent's
    optimal basis stays dual feasible, so a child LP in branch-and-bound
    typically resolves in a handful of dual pivots. Any numerical trouble
    on the warm path (stale or singular basis, dual stall, cycling) falls
    back to the cold path, so warm starting never makes a solve fail that
    would have succeeded cold.

    The basis inverse is maintained incrementally by an eta-update engine
    ({!Lu}): each pivot applies one product-form eta transformation
    (O(m²)) instead of rebuilding the factorization, and from-scratch
    refactorization only runs when a stability trigger demands it — the
    eta chain hit its length cap, a pivot magnitude fell below the
    stability floor, or a row-residual audit at a deadline checkpoint
    detected drift (or on a fixed cadence when [refactor_interval] pins
    one for A/B bisection). Across solves, canonical factorizations are
    reused rather than recomputed: an optimal solve returns its
    {!Factor.t}, which a child LP accepts via [warm_factor] (the basis
    matrix does not depend on variable bounds, so the parent's inverse is
    bit-valid for the child), and a per-domain cache short-circuits the
    canonicalization epilogue's refactorization for bases the domain has
    already factorized. Bases not yet cached are built by canonical
    prefix-chain factorization — eta-extending the deepest cached prefix
    of the basis set, inserting structural columns in a canonically
    determined order — so small node-LP bases almost never pay a
    from-scratch factorization at all. The canonical factor of a basis is
    a function of the basis set alone, and all reuse paths load inverses
    that are bit-identical to recomputation, so warm/cold byte-identity
    and cross-worker determinism are preserved by construction; cache
    state moves wall time only. The dual pivot loop prices leaving rows
    with devex reference-framework weights. *)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

(** Numerical tolerances of the pivot loop, exposed as one record so the
    exact-arithmetic certifier ([lib/certify]) and the solver share a
    single source of truth. *)
module Tolerances : sig
  type t = {
    feas_tol : float;  (** bound/row feasibility slack *)
    opt_tol : float;  (** reduced-cost optimality threshold *)
    pivot_tol : float;  (** smallest usable pivot magnitude *)
  }

  val default : t
  (** The values the solver itself runs with. *)
end

type problem = {
  nrows : int;
  ncols : int;
  cols : (int array * float array) array;  (** sparse column: row indices, coefficients *)
  cost : float array;
  lb : float array;   (** may be [neg_infinity] *)
  ub : float array;   (** may be [infinity] *)
  rhs : float array;
}

(** An explicit simplex basis, the warm-start currency of branch-and-bound:
    the basic column of every row plus the resting status of every column
    (structural columns first, then one logical column per row). A basis
    taken from an optimal solve remains dual feasible under any variable
    bound change, because reduced costs depend only on the basis and the
    costs — this is the invariant that makes parent-basis reuse sound. *)
module Basis : sig
  type vstat =
    | Vbasic  (** basic in some row *)
    | Vlower  (** nonbasic at its lower bound *)
    | Vupper  (** nonbasic at its upper bound *)
    | Vfree  (** nonbasic free (no finite bound), resting at zero *)

  type t = {
    basic : int array;  (** column basic in row [r], length [nrows] *)
    vstat : vstat array;  (** per-column status, length [ncols + nrows] *)
  }
end

(** A captured canonical basis factorization — the warm-start currency
    that rides along with {!Basis.t}. Opaque: produced by an optimal solve
    ([result.factor]) and consumed by [solve_r ~warm_factor]. A factor is
    tagged with the physical column array it was factorized from; it is
    bit-valid for any problem sharing that array (branch-and-bound
    children differ only in bounds, which the basis matrix ignores), and
    the solver validates the tag and the basic set before trusting it, so
    a stale factor degrades to an ordinary refactorization rather than a
    wrong answer. *)
module Factor : sig
  type t
end

type result = {
  status : status;
  obj : float;          (** meaningful when [status = Optimal] *)
  x : float array;      (** primal values for all columns *)
  iterations : int;
  warm : bool;
      (** the solve was served by dual reoptimization from the supplied
          basis (false for cold solves and warm attempts that fell back) *)
  basis : Basis.t option;
      (** the final basis when [status = Optimal]; reuse it as [?warm] for
          a nearby problem (same matrix, tightened bounds) *)
  factor : Factor.t option;
      (** canonical factorization of that basis, for [?warm_factor]; [None]
          for non-optimal results and very large bases *)
}

val solve_r :
  ?max_iterations:int ->
  ?deadline:Robust.Deadline.t ->
  ?warm:Basis.t ->
  ?warm_factor:Factor.t ->
  ?refactor_interval:int ->
  problem ->
  (result, Robust.Failure.t) Stdlib.result
(** Result-returning entry point. Defaults to a generous iteration cap
    scaled with problem size and no deadline. The deadline is polled every
    few dozen pivots, so a solve never overruns its budget by more than a
    handful of iterations.

    [warm], when given, must come from an optimal solve of a problem with
    the same constraint matrix (only [lb]/[ub] may differ — exactly the
    branch-and-bound child situation). The solver then installs the parent
    basis and runs dual simplex; on success [result.warm] is [true].
    A warm attempt that cannot proceed (dimension mismatch, singular or
    stale basis, dual stall or cycling) silently falls back to the cold
    two-phase primal path, so passing [warm] never changes which statuses
    are reachable. A warm [Infeasible] claim is only made after the basis
    is re-verified dual feasible, so warm starting cannot prune a feasible
    child on drifted numerics.

    [warm_factor] additionally hands the parent's canonical factorization
    down so the warm entry loads it (O(m²)) instead of refactorizing
    (O(m³)). It is validated against the problem and [warm] basis and is
    bit-identical to recomputation, so supplying it never changes any
    result — only wall time. Ignored without [warm].

    [refactor_interval] pins a fixed refactorization cadence (every [n]
    eta updates) in place of the default stability triggers — a
    deterministic knob for A/B bisection of suspected instability.

    [Error] covers abnormal terminations only — [Singular_basis] (cold
    path), [Deadline_exceeded], [Numerical_instability] (NaN/Inf detected
    in the tableau or objective), and [Injected] faults from
    {!Robust.Fault}; infeasible, unbounded, and iteration-limited solves
    remain ordinary [Ok] statuses. *)

val solve : ?max_iterations:int -> problem -> result
(** Legacy wrapper around {!solve_r} without a deadline; raises
    [Robust.Failure.Error] where [solve_r] would return [Error]. *)

val feasible : ?tol:float -> problem -> float array -> bool
(** [feasible p x] checks bounds and row equalities within [tol] (default
    [1e-6]); used by tests to validate solver output independently. *)
