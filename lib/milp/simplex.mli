(** Primal simplex for linear programs with bounded variables.

    Solves [minimize c.x  s.t.  A x = b,  lb <= x <= ub] (all rows are
    equalities; {!Bb.relax} adds slacks for inequality rows). Two-phase:
    phase 1 drives artificial variables to zero from an all-artificial
    starting basis; phase 2 optimises the true objective. The basis inverse
    is kept dense and refactorised periodically, which is ample for the
    problem sizes the CoSA formulation produces (hundreds of rows). *)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

(** Numerical tolerances of the pivot loop, exposed as one record so the
    exact-arithmetic certifier ([lib/certify]) and the solver share a
    single source of truth. *)
module Tolerances : sig
  type t = {
    feas_tol : float;  (** bound/row feasibility slack *)
    opt_tol : float;  (** reduced-cost optimality threshold *)
    pivot_tol : float;  (** smallest usable pivot magnitude *)
  }

  val default : t
  (** The values the solver itself runs with. *)
end

type problem = {
  nrows : int;
  ncols : int;
  cols : (int array * float array) array;  (** sparse column: row indices, coefficients *)
  cost : float array;
  lb : float array;   (** may be [neg_infinity] *)
  ub : float array;   (** may be [infinity] *)
  rhs : float array;
}

type result = {
  status : status;
  obj : float;          (** meaningful when [status = Optimal] *)
  x : float array;      (** primal values for all columns *)
  iterations : int;
}

val solve_r :
  ?max_iterations:int ->
  ?deadline:Robust.Deadline.t ->
  problem ->
  (result, Robust.Failure.t) Stdlib.result
(** Result-returning entry point. Defaults to a generous iteration cap
    scaled with problem size and no deadline. The deadline is polled every
    few dozen pivots, so a solve never overruns its budget by more than a
    handful of iterations. [Error] covers abnormal terminations only —
    [Singular_basis], [Deadline_exceeded], [Numerical_instability] (NaN/Inf
    detected in the tableau or objective), and [Injected] faults from
    {!Robust.Fault}; infeasible, unbounded, and iteration-limited solves
    remain ordinary [Ok] statuses. *)

val solve : ?max_iterations:int -> problem -> result
(** Legacy wrapper around {!solve_r} without a deadline; raises
    [Robust.Failure.Error] where [solve_r] would return [Error]. *)

val feasible : ?tol:float -> problem -> float array -> bool
(** [feasible p x] checks bounds and row equalities within [tol] (default
    [1e-6]); used by tests to validate solver output independently. *)
