type status = Optimal | Feasible | Infeasible | Unbounded | No_solution

type result = {
  status : status;
  obj : float;
  values : float array;
  bound : float;
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  failures : Robust.Failure.t list;
      (* typed failures swallowed during the search (pruned nodes whose LP
         aborted, expired deadline, injected faults), oldest first *)
}

let value r v = r.values.(Lp.var_index v)

(* Telemetry: one span per search plus one per evaluated node (category
   "bb"), a per-reason prune breakdown, and an instant event on every
   incumbent update so a trace shows the gap closing over time. *)
let m_nodes = Telemetry.Metrics.counter "bb.nodes"
let m_prune_bound = Telemetry.Metrics.counter "bb.prune.bound"
let m_prune_infeasible = Telemetry.Metrics.counter "bb.prune.infeasible"
let m_prune_gap = Telemetry.Metrics.counter "bb.prune.gap"
let m_prune_integral = Telemetry.Metrics.counter "bb.prune.integral"
let m_prune_aborted = Telemetry.Metrics.counter "bb.prune.aborted"
let m_incumbents = Telemetry.Metrics.counter "bb.incumbents"
let m_warm_nodes = Telemetry.Metrics.counter "bb.warm_nodes"
let m_cold_nodes = Telemetry.Metrics.counter "bb.cold_nodes"
let g_warm_rate = Telemetry.Metrics.gauge "bb.warm_start_rate"

(* Min-heap of B&B nodes keyed by LP bound. *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = [||]; size = 0 }
  let is_empty h = h.size = 0

  let push h key v =
    if h.size >= Array.length h.data then begin
      let ncap = max 16 (2 * Array.length h.data) in
      let nd = Array.make ncap (0., v) in
      Array.blit h.data 0 nd 0 h.size;
      h.data <- nd
    end;
    h.data.(h.size) <- (key, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      let p = (!i - 1) / 2 in
      let t = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- t;
      i := p
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let t = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- t;
        i := !smallest
      end
    done;
    top
end

(* Convert the model into equality standard form: one slack per inequality
   row. Structural columns keep their indices; slacks follow. *)
let relax model =
  let nv = Lp.num_vars model in
  let rows = Lp.constrs model in
  let m = Array.length rows in
  let nslack = Array.fold_left (fun acc (_, s, _) -> match s with Lp.Eq -> acc | Lp.Le | Lp.Ge -> acc + 1) 0 rows in
  let ncols = nv + nslack in
  let col_entries = Array.make ncols [] in
  let rhs = Array.make m 0. in
  let lb = Array.make ncols 0. and ub = Array.make ncols infinity in
  for j = 0 to nv - 1 do
    let l, u = Lp.bounds model (Lp.var_of_index model j) in
    lb.(j) <- l;
    ub.(j) <- u
  done;
  let next_slack = ref nv in
  Array.iteri
    (fun i (terms, sense, b) ->
      rhs.(i) <- b;
      Array.iter (fun (j, c) -> col_entries.(j) <- (i, c) :: col_entries.(j)) terms;
      (match sense with
       | Lp.Eq -> ()
       | Lp.Le ->
         col_entries.(!next_slack) <- [ (i, 1.) ];
         lb.(!next_slack) <- 0.;
         ub.(!next_slack) <- infinity;
         incr next_slack
       | Lp.Ge ->
         col_entries.(!next_slack) <- [ (i, -1.) ];
         lb.(!next_slack) <- 0.;
         ub.(!next_slack) <- infinity;
         incr next_slack))
    rows;
  let cols =
    Array.map
      (fun entries ->
        let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
        (Array.of_list (List.map fst entries), Array.of_list (List.map snd entries)))
      col_entries
  in
  let cost = Array.make ncols 0. in
  let obj = Lp.objective_coeffs model in
  let sign = match Lp.objective_sense model with `Minimize -> 1. | `Maximize -> -1. in
  Array.iteri (fun j c -> cost.(j) <- sign *. c) obj;
  { Simplex.nrows = m; ncols; cols; cost; lb; ub; rhs }

(* A search node: bound deltas against the base relaxation, plus the
   parent's optimal LP basis and its canonical factorization. Both values
   are shared (never mutated) between the two children, so carrying them
   costs two pointers per node; the factor lets a child's warm solve load
   the parent's basis inverse instead of refactorizing it. *)
type node = {
  nlb : (int * float) list;
  nub : (int * float) list;
  depth : int;
  nbasis : Simplex.Basis.t option;
  nfactor : Simplex.Factor.t option;
}

(* Check a candidate assignment against the model's own constraints/bounds. *)
let check_feasible ?(tol = 1e-6) model x =
  let nv = Lp.num_vars model in
  Array.length x = nv
  && (let ok = ref true in
      for j = 0 to nv - 1 do
        let l, u = Lp.bounds model (Lp.var_of_index model j) in
        if x.(j) < l -. tol || x.(j) > u +. tol then ok := false;
        if Lp.is_integer model (Lp.var_of_index model j)
           && Float.abs (x.(j) -. Float.round x.(j)) > tol
        then ok := false
      done;
      Array.iter
        (fun (terms, sense, rhs) ->
          let lhs = Array.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0. terms in
          let scale = 1. +. Float.abs rhs in
          (match sense with
           | Lp.Le -> if lhs > rhs +. (tol *. scale) then ok := false
           | Lp.Ge -> if lhs < rhs -. (tol *. scale) then ok := false
           | Lp.Eq -> if Float.abs (lhs -. rhs) > tol *. scale then ok := false))
        (Lp.constrs model);
      !ok)

let solve_impl ?(node_limit = 200_000) ?(time_limit = 60.) ?(deadline = Robust.Deadline.none)
    ?(integrality_tol = 1e-6) ?priority ?(gap = 0.) ?warm_start ?(warm_lp = true)
    ?refactor_interval model =
  let t0 = Robust.Deadline.now () in
  (* the effective budget is the tighter of the relative time limit and the
     caller's absolute deadline; both propagate into every node's simplex *)
  let dl = Robust.Deadline.tighten (Robust.Deadline.after time_limit) deadline in
  let failures = ref [] in
  let nfailures = ref 0 in
  let record_failure f =
    (* cap the log so a fault storm cannot grow the result without bound *)
    if !nfailures < 64 then begin
      failures := f :: !failures;
      incr nfailures
    end
  in
  (* set when the search is cut short (budget, deadline, or aborted node
     LPs): the incumbent can then no longer be certified optimal *)
  let explored_all = ref true in
  let base = relax model in
  let nv = Lp.num_vars model in
  let int_vars =
    List.filter
      (fun j -> Lp.is_integer model (Lp.var_of_index model j))
      (List.init nv Fun.id)
  in
  let sign = match Lp.objective_sense model with `Minimize -> 1. | `Maximize -> -1. in
  let obj_const = Lp.objective_constant model in
  let user_obj internal = (sign *. internal) +. obj_const in
  let nodes = ref 0 and simplex_iterations = ref 0 in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in (* internal (minimisation) sense *)
  (match warm_start with
   | Some x when check_feasible ~tol:integrality_tol model x ->
     let obj = Lp.objective_coeffs model in
     let v = ref 0. in
     Array.iteri (fun j c -> v := !v +. (c *. x.(j))) obj;
     incumbent := Some (Array.copy x);
     incumbent_obj := sign *. !v
   | Some _ | None -> ());
  let heap = Heap.create () in
  let rows = Presolve.rows_of base in
  let integer_cols =
    let a = Array.make base.ncols false in
    List.iter (fun j -> a.(j) <- true) int_vars;
    a
  in
  (* Node bound arrays are blitted into two scratch buffers allocated once
     per search instead of freshly copied per node: the simplex reads them
     only during its own setup, so reuse across (sequential) node solves is
     safe and removes two ncols-sized allocations from every node. Heap
     siblings carry only their bound-delta lists — no arrays are copied on
     branch. *)
  let scratch_lb = Array.make base.ncols 0. in
  let scratch_ub = Array.make base.ncols 0. in
  let lp_warm = ref 0 and lp_cold = ref 0 in
  let solve_node node =
    Array.blit base.lb 0 scratch_lb 0 base.ncols;
    Array.blit base.ub 0 scratch_ub 0 base.ncols;
    let lb = scratch_lb and ub = scratch_ub in
    List.iter (fun (j, v) -> lb.(j) <- max lb.(j) v) node.nlb;
    List.iter (fun (j, v) -> ub.(j) <- min ub.(j) v) node.nub;
    let conflict = ref false in
    List.iter (fun (j, _) -> if lb.(j) > ub.(j) +. 1e-12 then conflict := true) node.nlb;
    List.iter (fun (j, _) -> if lb.(j) > ub.(j) +. 1e-12 then conflict := true) node.nub;
    if !conflict then
      Ok { Simplex.status = Simplex.Infeasible; obj = infinity; x = [||];
           iterations = 0; warm = false; basis = None; factor = None }
    else begin
      (* propagate the branching decisions through the equality rows; this
         often fixes sibling variables or proves the node infeasible
         before any simplex work *)
      let pre = Presolve.tighten ~integer:integer_cols base rows lb ub in
      if not pre.Presolve.feasible then
        Ok { Simplex.status = Simplex.Infeasible; obj = infinity; x = [||];
             iterations = 0; warm = false; basis = None; factor = None }
      else begin
        (* a bound change keeps the parent basis dual feasible, so child
           LPs reoptimize with a few dual pivots instead of a cold solve;
           the parent's canonical factor rides along so the warm entry
           loads the inverse instead of refactorizing it *)
        let warm = if warm_lp then node.nbasis else None in
        let warm_factor = if warm_lp then node.nfactor else None in
        let res =
          Simplex.solve_r ?warm ?warm_factor ?refactor_interval ~deadline:dl
            { base with lb; ub }
        in
        (match res with
         | Ok r when node.depth > 0 ->
           if r.Simplex.warm then begin
             incr lp_warm;
             Telemetry.Metrics.incr m_warm_nodes
           end
           else begin
             incr lp_cold;
             Telemetry.Metrics.incr m_cold_nodes
           end
         | Ok _ | Error _ -> ());
        res
      end
    end
  in
  let prio j = match priority with Some p -> p.(j) | None -> 0. in
  let fractional x =
    (* branch on the highest-priority fractional integer variable,
       most-fractional within a priority class *)
    let best = ref (-1) and best_score = ref (neg_infinity, 0.) in
    List.iter
      (fun j ->
        let f = x.(j) -. floor x.(j) in
        let score = Float.min f (1. -. f) in
        if score > integrality_tol && (prio j, score) > !best_score then begin
          best := j;
          best_score := (prio j, score)
        end)
      int_vars;
    !best
  in
  let root = { nlb = []; nub = []; depth = 0; nbasis = None; nfactor = None } in
  let unbounded = ref false in
  (* Evaluate one node. Returns the preferred child to plunge into (the one
     matching the LP value's rounding) after queueing its sibling. *)
  let process node parent_bound =
    if parent_bound >= !incumbent_obj -. gap -. 1e-9 then begin
      Telemetry.Metrics.incr m_prune_bound;
      None
    end
    else begin
      incr nodes;
      Telemetry.Metrics.incr m_nodes;
      Telemetry.Trace.with_span ~cat:"bb" "bb.node" @@ fun () ->
      match
        match Robust.Fault.check "bb.node" with
        | Error f -> Error f
        | Ok () -> solve_node node
      with
      | Error f ->
        (* a node LP that aborts (singular basis, NaN, deadline, injected
           fault) is pruned, but the search can no longer claim optimality *)
        record_failure f;
        explored_all := false;
        Telemetry.Metrics.incr m_prune_aborted;
        None
      | Ok res ->
      simplex_iterations := !simplex_iterations + res.Simplex.iterations;
      match res.Simplex.status with
      | Simplex.Infeasible | Simplex.Iteration_limit ->
        Telemetry.Metrics.incr m_prune_infeasible;
        None
      | Simplex.Unbounded ->
        if node.depth = 0 then unbounded := true;
        Telemetry.Metrics.incr m_prune_infeasible;
        None
      | Simplex.Optimal ->
        if res.Simplex.obj >= !incumbent_obj -. gap -. 1e-9 then begin
          Telemetry.Metrics.incr m_prune_gap;
          None
        end
        else begin
          let bv = fractional res.Simplex.x in
          if bv < 0 then begin
            (* integral: new incumbent; snap integer values exactly *)
            let x = Array.sub res.Simplex.x 0 nv in
            List.iter (fun j -> x.(j) <- Float.round x.(j)) int_vars;
            incumbent := Some x;
            incumbent_obj := res.Simplex.obj;
            Telemetry.Metrics.incr m_prune_integral;
            Telemetry.Metrics.incr m_incumbents;
            Telemetry.Trace.instant ~cat:"bb" "bb.incumbent"
              ~args:
                [ ("obj", Printf.sprintf "%.6g" (user_obj res.Simplex.obj));
                  ("nodes", string_of_int !nodes) ];
            None
          end
          else begin
            let fv = res.Simplex.x.(bv) in
            (* both children start from this node's optimal basis (shared,
               immutable) — the branch only tightens one bound, so the
               basis stays dual feasible for either side *)
            let down =
              { node with nub = (bv, floor fv) :: node.nub;
                depth = node.depth + 1; nbasis = res.Simplex.basis;
                nfactor = res.Simplex.factor }
            in
            let up =
              { node with nlb = (bv, ceil fv) :: node.nlb;
                depth = node.depth + 1; nbasis = res.Simplex.basis;
                nfactor = res.Simplex.factor }
            in
            let first, second = if fv -. floor fv <= 0.5 then (down, up) else (up, down) in
            Heap.push heap res.Simplex.obj second;
            Some (res.Simplex.obj, first)
          end
        end
    end
  in
  (* Depth-first plunge from a node until it prunes, then resume best-first
     from the heap. Plunging finds integral incumbents quickly, which best-
     first search alone postpones indefinitely. *)
  let out_of_budget () = !nodes >= node_limit || Robust.Deadline.expired dl in
  let rec plunge node bound =
    if out_of_budget () then explored_all := false
    else
      match process node bound with
      | Some (b, child) -> plunge child b
      | None -> ()
  in
  plunge root neg_infinity;
  let best_open_bound = ref neg_infinity in
  (try
     while not (Heap.is_empty heap) do
       if out_of_budget () then begin
         (* record the tightest outstanding bound before bailing *)
         let b, _ = Heap.pop heap in
         best_open_bound := b;
         explored_all := false;
         raise Exit
       end;
       let bound, node = Heap.pop heap in
       plunge node bound
     done
   with Exit -> ());
  let elapsed = Robust.Deadline.now () -. t0 in
  (* fraction of non-root node LPs served by warm-started dual simplex *)
  (if !lp_warm + !lp_cold > 0 then
     Telemetry.Metrics.set_gauge g_warm_rate
       (float_of_int !lp_warm /. float_of_int (!lp_warm + !lp_cold)));
  if Robust.Deadline.expired dl
     && not !explored_all
     && not (List.exists (Robust.Failure.equal Robust.Failure.Deadline_exceeded) !failures)
  then failures := Robust.Failure.Deadline_exceeded :: !failures;
  let failures = List.rev !failures in
  let limit_hit = not !explored_all in
  match !incumbent with
  | Some x ->
    let internal_bound =
      if limit_hit && !best_open_bound > neg_infinity then !best_open_bound
      else !incumbent_obj
    in
    { status = (if limit_hit then Feasible else Optimal);
      obj = user_obj !incumbent_obj;
      values = x;
      bound = user_obj internal_bound;
      nodes = !nodes;
      simplex_iterations = !simplex_iterations;
      elapsed;
      failures }
  | None ->
    if !unbounded then
      { status = Unbounded; obj = (match Lp.objective_sense model with
          | `Minimize -> neg_infinity | `Maximize -> infinity);
        values = Array.make nv 0.; bound = nan; nodes = !nodes;
        simplex_iterations = !simplex_iterations; elapsed; failures }
    else if limit_hit then
      { status = No_solution; obj = nan; values = Array.make nv 0.; bound = nan;
        nodes = !nodes; simplex_iterations = !simplex_iterations; elapsed; failures }
    else
      { status = Infeasible; obj = nan; values = Array.make nv 0.; bound = nan;
        nodes = !nodes; simplex_iterations = !simplex_iterations; elapsed; failures }

(* Public entry point: one "bb.solve" span covers the whole search. *)
let solve ?node_limit ?time_limit ?deadline ?integrality_tol ?priority ?gap ?warm_start
    ?warm_lp ?refactor_interval model =
  Telemetry.Trace.with_span ~cat:"bb" "bb.solve" (fun () ->
      solve_impl ?node_limit ?time_limit ?deadline ?integrality_tol ?priority ?gap
        ?warm_start ?warm_lp ?refactor_interval model)
