(** Incremental basis factorization engine for the simplex solver.

    Maintains a dense representation of the basis inverse B⁻¹ across pivots
    using product-form eta updates: each pivot multiplies the inverse by one
    elementary eta matrix (an O(m²) row update) instead of rebuilding the
    whole factorization (O(m³) Gauss-Jordan). The engine keeps two pieces of
    bookkeeping the solver uses to decide when the eta chain has grown
    stale: the chain length since the last refactorization and the smallest
    pivot magnitude absorbed into the chain. {!trigger} turns those into a
    refactorize-now decision — either stability-driven (the default: chain
    cap plus a pivot-magnitude floor) or pinned to a fixed cadence when the
    caller wants deterministic A/B bisection.

    The kernels ([ftran], [btran], [apply]) perform exactly the same
    floating-point operations in the same order as the historical in-solver
    loops they replaced, so factorizations produced here are bit-compatible
    with the solver's canonical-vertex contract. *)

exception Singular
(** Raised by {!refactor} when elimination meets a pivot below the supplied
    tolerance: the basis matrix is (numerically) singular. *)

type t
(** A basis factorization of fixed dimension [m]: the dense inverse plus
    eta-chain bookkeeping. Not thread-safe; one engine per in-flight solve. *)

val create : int -> t
(** [create m] is an engine of dimension [m >= 1] holding the zero matrix;
    call {!refactor} or {!load} before using the kernels. *)

val of_matrix : int -> float array array -> t
(** [of_matrix m binv] wraps an existing [m x m] inverse without copying;
    the engine takes ownership of the array. Used by the cold-start crash
    basis, whose inverse is diagonal and built directly. *)

val dim : t -> int

val row : t -> int -> float array
(** [row t r] is row [r] of the inverse, borrowed — callers must treat it as
    read-only and must not hold it across a {!refactor} (partial pivoting
    swaps row arrays in place). *)

val refactor :
  t ->
  scratch:float array array ->
  cols:(int array * float array) array ->
  basis:int array ->
  pivot_tol:float ->
  unit
(** Rebuild the inverse from scratch by Gauss-Jordan elimination with
    partial pivoting on the basis matrix (columns [cols.(basis.(r))]),
    using [scratch] (an [m x m] matrix) as elimination workspace. Resets
    the eta chain. Raises {!Singular} when a pivot magnitude falls below
    [pivot_tol]. *)

val load : t -> float array array -> unit
(** [load t binv] copies a previously captured inverse into the engine and
    resets the eta chain — the O(m²) alternative to {!refactor} when a
    bit-exact factorization of the target basis is already known. *)

val snapshot : t -> float array array
(** A deep copy of the current inverse, safe to cache and [load] later. *)

val ftran : t -> int array * float array -> float array -> unit
(** [ftran t (rows, coeffs) alpha] computes [alpha = B⁻¹ a] for a sparse
    column [a], exploiting the column's nonzero pattern: O(m · nnz). *)

val btran : t -> float array -> float array -> unit
(** [btran t c y] computes [y = c B⁻¹] for a dense row-indexed vector [c],
    skipping zero entries of [c]: O(nnz(c) · m). *)

val apply : t -> float array -> float array -> unit
(** [apply t v out] computes [out = B⁻¹ v] for a dense [v]: O(m²). *)

val update : t -> pivot_tol:float -> int -> float array -> unit
(** [update t ~pivot_tol r alpha] absorbs one pivot into the inverse: column
    [alpha = B⁻¹ a_enter] replaces the basic column of row [r]. Product-form
    eta update — O(m) rows touched, entries of [alpha] below [pivot_tol]
    skipped — and records the pivot magnitude for {!trigger}. *)

val chain_length : t -> int
(** Eta updates absorbed since the last {!refactor}/{!load}. *)

val min_pivot : t -> float
(** Smallest [|alpha.(r)|] absorbed since the last refactorization
    ([infinity] for a fresh factorization). *)

(** Why a refactorization is (or is not) due. *)
type trigger =
  | No_refactor
  | Chain  (** eta chain reached the length cap (or the pinned interval) *)
  | Stability  (** an absorbed pivot fell below the stability floor *)

val trigger : ?interval:int -> t -> trigger
(** Refactorization policy. With [interval = Some n] the decision is purely
    cadence: [Chain] after every [max 1 n] eta updates, stability heuristics
    off — the deterministic pin for A/B bisection. With no interval
    (default): [Stability] as soon as any absorbed pivot magnitude is below
    {!stability_pivot_floor}, else [Chain] once the chain reaches
    {!eta_chain_cap}. *)

val eta_chain_cap : int
(** Default chain-length cap (64): past this, accumulated eta roundoff
    outweighs the O(m³) cost of a fresh factorization. *)

val stability_pivot_floor : float
(** Pivot magnitudes below this (1e-7) mark the chain numerically suspect
    even when short. *)
