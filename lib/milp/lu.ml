(* Incremental basis factorization: dense inverse + product-form eta
   updates, with the bookkeeping (chain length, worst pivot magnitude) that
   drives stability-triggered refactorization. The elimination and kernel
   loops are verbatim transplants of the historical in-solver code — same
   operations, same order — so the bits they produce are unchanged. *)

exception Singular

type t = {
  m : int;
  binv : float array array;  (* dense basis inverse, m x m *)
  mutable etas : int;        (* eta updates since last refactor/load *)
  mutable min_pivot : float; (* smallest |pivot| absorbed since then *)
}

type trigger = No_refactor | Chain | Stability

let eta_chain_cap = 64
let stability_pivot_floor = 1e-7

let of_matrix m binv = { m; binv; etas = 0; min_pivot = infinity }
let create m = of_matrix m (Array.make_matrix m m 0.)
let dim t = t.m
let row t r = t.binv.(r)
let chain_length t = t.etas
let min_pivot t = t.min_pivot

let reset t =
  t.etas <- 0;
  t.min_pivot <- infinity

let refactor t ~scratch ~cols ~basis ~pivot_tol =
  let m = t.m in
  let mat = scratch in
  for i = 0 to m - 1 do
    Array.fill mat.(i) 0 m 0.
  done;
  for r = 0 to m - 1 do
    let rows, coeffs = cols.(basis.(r)) in
    Array.iteri (fun k row -> mat.(row).(r) <- coeffs.(k)) rows
  done;
  (* the inverse is eliminated in place, from the identity *)
  let inv = t.binv in
  for i = 0 to m - 1 do
    Array.fill inv.(i) 0 m 0.;
    inv.(i).(i) <- 1.
  done;
  for col = 0 to m - 1 do
    (* partial pivoting *)
    let best = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs mat.(r).(col) > Float.abs mat.(!best).(col) then best := r
    done;
    if Float.abs mat.(!best).(col) < pivot_tol then raise Singular;
    if !best <> col then begin
      let t = mat.(col) in mat.(col) <- mat.(!best); mat.(!best) <- t;
      let t = inv.(col) in inv.(col) <- inv.(!best); inv.(!best) <- t
    end;
    let piv = mat.(col).(col) in
    for j = 0 to m - 1 do
      mat.(col).(j) <- mat.(col).(j) /. piv;
      inv.(col).(j) <- inv.(col).(j) /. piv
    done;
    for r = 0 to m - 1 do
      if r <> col then begin
        let f = mat.(r).(col) in
        if f <> 0. then
          for j = 0 to m - 1 do
            mat.(r).(j) <- mat.(r).(j) -. (f *. mat.(col).(j));
            inv.(r).(j) <- inv.(r).(j) -. (f *. inv.(col).(j))
          done
      end
    done
  done;
  reset t

let load t src =
  for i = 0 to t.m - 1 do
    Array.blit src.(i) 0 t.binv.(i) 0 t.m
  done;
  reset t

let snapshot t = Array.init t.m (fun i -> Array.copy t.binv.(i))

(* alpha = B⁻¹ a for a sparse column a: each output row dots the column's
   nonzeros against the corresponding inverse entries. *)
let ftran t (rows, coeffs) alpha =
  let m = t.m in
  for i = 0 to m - 1 do
    let bi = t.binv.(i) in
    let s = ref 0. in
    Array.iteri (fun k row -> s := !s +. (bi.(row) *. coeffs.(k))) rows;
    alpha.(i) <- !s
  done

(* y = c B⁻¹ for a dense row-indexed c, skipping zero entries of c — the
   dual vectors the solver builds are cost vectors with few basic nonzeros. *)
let btran t c y =
  let m = t.m in
  Array.fill y 0 m 0.;
  for r = 0 to m - 1 do
    let cr = c.(r) in
    if cr <> 0. then begin
      let br = t.binv.(r) in
      for i = 0 to m - 1 do
        y.(i) <- y.(i) +. (cr *. br.(i))
      done
    end
  done

let apply t v out =
  let m = t.m in
  for i = 0 to m - 1 do
    let bi = t.binv.(i) in
    let s = ref 0. in
    for k = 0 to m - 1 do
      s := !s +. (bi.(k) *. v.(k))
    done;
    out.(i) <- !s
  done

(* Product-form eta update after the column with FTRAN image [alpha] enters
   the basis in row [r]. *)
let update t ~pivot_tol r alpha =
  let m = t.m in
  let piv = alpha.(r) in
  let br = t.binv.(r) in
  for k = 0 to m - 1 do
    br.(k) <- br.(k) /. piv
  done;
  for i = 0 to m - 1 do
    if i <> r then begin
      let f = alpha.(i) in
      if Float.abs f > pivot_tol then begin
        let bi = t.binv.(i) in
        for k = 0 to m - 1 do
          bi.(k) <- bi.(k) -. (f *. br.(k))
        done
      end
    end
  done;
  t.etas <- t.etas + 1;
  let ap = Float.abs piv in
  if ap < t.min_pivot then t.min_pivot <- ap

let trigger ?interval t =
  match interval with
  | Some n -> if t.etas >= max 1 n then Chain else No_refactor
  | None ->
    if t.etas > 0 && t.min_pivot < stability_pivot_floor then Stability
    else if t.etas >= eta_chain_cap then Chain
    else No_refactor
