type spec = {
  gname : string;
  cores : int;
  sm_count : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  shared_bytes : int;
  reg_words_per_thread : int;
  gmem_words_per_cycle : float;
  l2_bytes : int;
}

let k80 =
  {
    gname = "K80";
    cores = 2496;
    sm_count = 13;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    shared_bytes = 48 * 1024;
    reg_words_per_thread = 32;
    gmem_words_per_cycle = 120.;
    l2_bytes = 1536 * 1024;
  }

type gemm = { m : int; n : int; k : int }

let gemm_of_layer (l : Layer.t) =
  {
    m = l.Layer.k;
    n = l.Layer.p * l.Layer.q * l.Layer.n;
    k = l.Layer.c * l.Layer.r * l.Layer.s;
  }

type tiling = { block_m : int; block_n : int; block_k : int; thread_m : int; thread_n : int }

let fi = float_of_int

let valid spec g t =
  let pos = t.block_m >= 1 && t.block_n >= 1 && t.block_k >= 1 && t.thread_m >= 1 && t.thread_n >= 1 in
  pos
  && t.thread_m <= t.block_m
  && t.thread_n <= t.block_n
  && t.block_m mod t.thread_m = 0
  && t.block_n mod t.thread_n = 0
  && t.block_m <= g.m && t.block_n <= g.n && t.block_k <= g.k
  && (let threads = t.block_m / t.thread_m * (t.block_n / t.thread_n) in
      threads >= 1 && threads <= spec.max_threads_per_block)
  && (* shared memory: A and B tiles, 4-byte words *)
  ((t.block_m * t.block_k) + (t.block_k * t.block_n)) * 4 <= spec.shared_bytes
  && (* register tile per thread *)
  t.thread_m * t.thread_n + t.thread_m + t.thread_n <= spec.reg_words_per_thread

let ceil_div a b = (a + b - 1) / b

let latency spec g t =
  if not (valid spec g t) then infinity
  else begin
    let blocks = ceil_div g.m t.block_m * ceil_div g.n t.block_n in
    let threads_per_block = t.block_m / t.thread_m * (t.block_n / t.thread_n) in
    (* occupancy: how many resident blocks an SM can hold *)
    let blocks_per_sm_smem =
      max 1 (spec.shared_bytes / (((t.block_m * t.block_k) + (t.block_k * t.block_n)) * 4))
    in
    let blocks_per_sm_threads = max 1 (spec.max_threads_per_sm / threads_per_block) in
    let resident = min blocks_per_sm_smem blocks_per_sm_threads in
    let active_threads =
      min (blocks * threads_per_block)
        (spec.sm_count * min spec.max_threads_per_sm (resident * threads_per_block))
    in
    let occupancy = Float.min 1. (fi active_threads /. fi spec.cores) in
    let total_fmas = fi g.m *. fi g.n *. fi g.k in
    let compute = total_fmas /. (fi spec.cores *. Float.max 0.05 occupancy) in
    (* global memory: each block streams its A and B panels per K chunk *)
    let k_chunks = fi (ceil_div g.k t.block_k) in
    let traffic =
      (fi blocks *. k_chunks
       *. fi ((t.block_m * t.block_k) + (t.block_k * t.block_n)))
      +. (fi g.m *. fi g.n)
    in
    let mem = traffic /. spec.gmem_words_per_cycle in
    Float.max compute mem
  end

type result = { tiling : tiling; latency : float; solve_time : float; evaluations : int }

(* One-shot CoSA-style MIP: allocate the prime-factor counts of M and N to
   (register/thread, block, grid) and of K to (chunk, rest); maximise
   log(threads) + log(block tiles) under log-capacity constraints. *)
let cosa_schedule spec g =
  let t0 = Robust.Deadline.now () in
  let lp = Milp.Lp.create ~name:"cosa_gpu" () in
  let pad = Prim.Factorize.pad_to_factorable in
  let groups dim_n = Prim.Factorize.grouped_factors (pad dim_n) in
  (* one integer count var per (prime, level) *)
  let alloc name n levels =
    List.map
      (fun (p, mult) ->
        let vars =
          List.map
            (fun lvl ->
              Milp.Lp.add_var lp ~integer:true ~lb:0. ~ub:(fi mult)
                (Printf.sprintf "%s_p%d_%s" name p lvl))
            levels
        in
        Milp.Lp.add_constr lp (List.map (fun v -> (1., v)) vars) Milp.Lp.Eq (fi mult);
        (p, vars))
      (groups n)
  in
  (* M = reg x par x grid: [reg] is the per-thread register tile, [par] the
     threads along that axis within a block, [grid] the thread blocks. *)
  let m_vars = alloc "m" g.m [ "reg"; "par"; "grid" ] in
  let n_vars = alloc "n" g.n [ "reg"; "par"; "grid" ] in
  let k_vars = alloc "k" g.k [ "chunk"; "rest" ] in
  let logp p = log (fi p) in
  let pick i vars = List.map (fun (p, vs) -> (logp p, List.nth vs i)) vars in
  let threads = pick 1 m_vars @ pick 1 n_vars in
  (* block tile = register tile x thread parallelism *)
  let blk_m = pick 0 m_vars @ pick 1 m_vars in
  let blk_n = pick 0 n_vars @ pick 1 n_vars in
  let chunk_k = pick 0 k_vars in
  (* threads per block within [warp-efficiency floor, hardware limit] *)
  Milp.Lp.add_constr lp threads Milp.Lp.Le (log (fi spec.max_threads_per_block));
  Milp.Lp.add_constr lp threads Milp.Lp.Ge (log (Float.min 64. (fi (g.m * g.n))));
  (* register tile per thread (thread_m * thread_n <= regs) *)
  Milp.Lp.add_constr lp (pick 0 m_vars @ pick 0 n_vars) Milp.Lp.Le
    (log (fi spec.reg_words_per_thread /. 2.));
  (* shared memory per tile, halved per tensor as in the accelerator B matrix *)
  let smem_words = fi spec.shared_bytes /. 4. /. 2. in
  Milp.Lp.add_constr lp (blk_m @ chunk_k) Milp.Lp.Le (log smem_words);
  Milp.Lp.add_constr lp (blk_n @ chunk_k) Milp.Lp.Le (log smem_words);
  (* enough thread blocks to occupy every SM *)
  let grid = pick 2 m_vars @ pick 2 n_vars in
  Milp.Lp.add_constr lp grid Milp.Lp.Ge
    (log (Float.min (fi spec.sm_count) (fi (g.m * g.n) /. 64.)));
  (* keep every CUDA core busy: total threads across the grid must cover
     the core count whenever the problem is large enough *)
  Milp.Lp.add_constr lp (grid @ threads) Milp.Lp.Ge
    (log (Float.min (fi spec.cores) (fi (g.m * g.n))));
  (* objective: global-memory traffic is MNK (1/block_m + 1/block_n), which
     is governed by the SMALLER block tile, so maximise the minimum of the
     two (maximin via an auxiliary variable), plus thread parallelism and
     shared-memory chunk depth for pipelining *)
  let z = Milp.Lp.add_var lp ~lb:0. ~ub:(log (fi (max g.m g.n))) "min_blk" in
  Milp.Lp.add_constr lp ((-1., z) :: blk_m) Milp.Lp.Ge 0.;
  Milp.Lp.add_constr lp ((-1., z) :: blk_n) Milp.Lp.Ge 0.;
  let objective =
    ((4., z) :: List.map (fun (c, v) -> (0.5 *. c, v)) (blk_m @ blk_n))
    @ threads
    @ List.map (fun (c, v) -> (0.25 *. c, v)) chunk_k
  in
  Milp.Lp.set_objective lp `Maximize objective;
  let res = Milp.Bb.solve ~node_limit:20_000 ~time_limit:5. lp in
  let ok = match res.Milp.Bb.status with Milp.Bb.Optimal | Milp.Bb.Feasible -> true | _ -> false in
  let value_of vars i =
    List.fold_left
      (fun acc (p, vs) ->
        let c = int_of_float (Float.round (Milp.Bb.value res (List.nth vs i))) in
        let rec pw acc k = if k = 0 then acc else pw (acc * p) (k - 1) in
        pw acc c)
      1 vars
  in
  let tiling =
    if ok then
      let thr_m = value_of m_vars 0 and thr_n = value_of n_vars 0 in
      { block_m = thr_m * value_of m_vars 1;
        block_n = thr_n * value_of n_vars 1;
        block_k = value_of k_vars 0;
        thread_m = thr_m;
        thread_n = thr_n }
    else { block_m = 1; block_n = 1; block_k = 1; thread_m = 1; thread_n = 1 }
  in
  (* Repair by stripping prime factors (preserves divisibility): shrink the
     offending quantity until every hardware constraint holds. *)
  let shrink x = if x <= 1 then 1 else x / List.hd (Prim.Factorize.prime_factors x) in
  (* shrink a block tile while keeping it a multiple of its thread tile *)
  let shrink_block b t = t * shrink (b / t) in
  let rec repair t fuel =
    if fuel = 0 || valid spec g t then t
    else begin
      let threads = t.block_m / t.thread_m * (t.block_n / t.thread_n) in
      let smem = ((t.block_m * t.block_k) + (t.block_k * t.block_n)) * 4 in
      let t' =
        if t.thread_m * t.thread_n + t.thread_m + t.thread_n > spec.reg_words_per_thread
        then
          if t.thread_m >= t.thread_n then { t with thread_m = shrink t.thread_m }
          else { t with thread_n = shrink t.thread_n }
        else if threads > spec.max_threads_per_block then
          if t.block_m / t.thread_m >= t.block_n / t.thread_n then
            { t with block_m = shrink_block t.block_m t.thread_m }
          else { t with block_n = shrink_block t.block_n t.thread_n }
        else if smem > spec.shared_bytes then
          if t.block_k > 1 then { t with block_k = shrink t.block_k }
          else if t.block_m >= t.block_n then
            { t with block_m = shrink_block t.block_m t.thread_m }
          else { t with block_n = shrink_block t.block_n t.thread_n }
        else if t.block_m > g.m then
          { t with block_m = shrink_block t.block_m t.thread_m;
            thread_m = min t.thread_m (shrink_block t.block_m t.thread_m) }
        else if t.block_n > g.n then
          { t with block_n = shrink_block t.block_n t.thread_n;
            thread_n = min t.thread_n (shrink_block t.block_n t.thread_n) }
        else if t.block_k > g.k then { t with block_k = shrink t.block_k }
        else if t.block_m mod t.thread_m <> 0 then { t with thread_m = shrink t.thread_m }
        else if t.block_n mod t.thread_n <> 0 then { t with thread_n = shrink t.thread_n }
        else { block_m = 1; block_n = 1; block_k = 1; thread_m = 1; thread_n = 1 }
      in
      repair t' (fuel - 1)
    end
  in
  let tiling = repair tiling 64 in
  { tiling; latency = latency spec g tiling; solve_time = Robust.Deadline.now () -. t0;
    evaluations = 1 }

let divisors_capped n cap = List.filter (fun d -> d <= cap) (Prim.Factorize.divisors n)

let tvm_search ?(trials = 50) rng spec g =
  let t0 = Robust.Deadline.now () in
  let pad = Prim.Factorize.pad_to_factorable in
  let m = pad g.m and n = pad g.n and k = pad g.k in
  let dm = divisors_capped m 256 and dn = divisors_capped n 256 and dk = divisors_capped k 64 in
  let random_tiling () =
    let bm = Prim.Rng.pick rng dm and bn = Prim.Rng.pick rng dn in
    let bk = Prim.Rng.pick rng dk in
    let tm = Prim.Rng.pick rng (List.filter (fun d -> bm mod d = 0) (divisors_capped bm 16)) in
    let tn = Prim.Rng.pick rng (List.filter (fun d -> bn mod d = 0) (divisors_capped bn 16)) in
    { block_m = bm; block_n = bn; block_k = bk; thread_m = tm; thread_n = tn }
  in
  let mutate t =
    let tweak v choices =
      if Prim.Rng.bool rng then v
      else Prim.Rng.pick rng (List.filter (fun d -> d <= 2 * v && d * 2 >= v) choices)
    in
    {
      block_m = tweak t.block_m dm;
      block_n = tweak t.block_n dn;
      block_k = tweak t.block_k dk;
      thread_m = tweak t.thread_m (divisors_capped 16 16);
      thread_n = tweak t.thread_n (divisors_capped 16 16);
    }
  in
  let best = ref (random_tiling ()) in
  let best_lat = ref (latency spec g !best) in
  let evals = ref 1 in
  for trial = 2 to trials do
    let cand =
      if trial <= trials / 2 || !best_lat = infinity then random_tiling () else mutate !best
    in
    incr evals;
    let l = latency spec g cand in
    if l < !best_lat then begin
      best := cand;
      best_lat := l
    end
  done;
  (* guarantee a valid fallback *)
  if !best_lat = infinity then begin
    let t = { block_m = 1; block_n = 1; block_k = 1; thread_m = 1; thread_n = 1 } in
    best := t;
    best_lat := latency spec g t
  end;
  { tiling = !best; latency = !best_lat; solve_time = Robust.Deadline.now () -. t0;
    evaluations = !evals }
