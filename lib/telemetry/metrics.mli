(** Named counters, gauges, and fixed-bucket histograms on atomics.

    Instruments register metrics once at module-init time (find-or-create
    by name, mutex-protected) and record through lock-free atomic
    operations, so [Serve.Pool] domains can record concurrently without
    contention on anything but the cache line of the metric itself.
    Recording is a no-op while {!Sink.enabled} is false.

    Values accumulate monotonically until {!reset}; {!snapshot} is a
    consistent-enough read for reporting (each value is read atomically,
    the set is not a cross-metric transaction). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find or register the counter named [name]. Safe from any domain;
    idempotent. *)

val gauge : string -> gauge

val histogram : ?buckets:float array -> string -> histogram
(** Find or register a histogram with the given ascending bucket upper
    bounds (default {!duration_buckets}); one implicit overflow bucket is
    appended. Buckets are fixed at first registration. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record one sample: bump the first bucket whose upper bound is >= the
    value (or the overflow bucket), the sample count, and the sum. *)

(** Common bucket layouts. *)

val duration_buckets : float array
(** Log-spaced seconds, 100us .. 30s. *)

val linear_buckets : lo:float -> step:float -> count:int -> float array
val exponential_buckets : lo:float -> ratio:float -> count:int -> float array

(** {2 Snapshot / reset} *)

type hist_snapshot = {
  bounds : float array;  (** upper bounds; the overflow bucket has bound [infinity] *)
  counts : int array;  (** same length as [bounds] *)
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Safe to take concurrently with recorders. Per-metric guarantees:
    counters and the histogram [count] are monotone across consecutive
    snapshots, and each histogram satisfies
    [Array.fold_left (+) 0 counts >= count] (the snapshot reads the
    count before the buckets, and [observe] writes them in the opposite
    order). The set of metrics is not a cross-metric transaction. *)

val reset : unit -> unit
(** Zero every registered metric. Registrations (names, bucket layouts)
    survive; only the recorded values are cleared. *)

val counter_value : snapshot -> string -> int
(** 0 when the counter was never registered. *)

val hist_quantile : hist_snapshot -> float -> float
(** [hist_quantile h q] with [q] in [0,1]: the upper bound of the bucket
    containing the [q]-th sample (an upper estimate; exact only up to
    bucket resolution). 0 on an empty histogram. *)

val report : unit -> string
(** ASCII tables (via [Prim.Texttab]) of all non-zero metrics. *)

val report_of : snapshot -> string
