(* Structured JSONL event log. Disabled is the steady state: every entry
   point is gated on one atomic load before any allocation, clock read or
   lock, so instrumented daemon paths cost nothing unless an operator
   arms the log. When armed, emission takes a mutex around the output
   channel (lines from concurrent domains/threads never interleave) and
   a per-event token bucket bounds the rate of any one event name. *)

type level = Debug | Info | Warn | Error
type output = Null | Stderr | File of string | Memory

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let enabled_flag = Atomic.make false
let min_rank = Atomic.make (level_rank Info)

let mu = Mutex.create ()

(* Everything below [mu]: the active output, its channel, the memory
   capture, and the rate-limit buckets. *)
let out = ref Null
let chan : out_channel option ref = ref None
let memory : string list ref = ref []

(* Token bucket per event name: [burst] tokens, refilled at [per_s]
   tokens per second. An event arriving with no token is dropped and
   counted; the next emitted line for that event carries the count in a
   ["suppressed"] field so droppage is visible in the stream. *)
type bucket = { mutable tokens : float; mutable last : float; mutable dropped : int }

let rl_burst = ref 20.
let rl_per_s = ref 50.
let buckets : (string, bucket) Hashtbl.t = Hashtbl.create 32
let suppressed_count = Atomic.make 0

let close_chan () =
  match !chan with
  | Some oc ->
    (try close_out oc with Sys_error _ -> ());
    chan := None
  | None -> ()

let set ?(level = Info) ?rate_limit output =
  Atomic.set min_rank (level_rank level);
  Mutex.protect mu (fun () ->
      close_chan ();
      (match rate_limit with
       | Some (burst, per_s) ->
         rl_burst := float_of_int (max 1 burst);
         rl_per_s := Float.max 0.1 per_s
       | None -> ());
      (match output with
       | File path -> chan := Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
       | Null | Stderr | Memory -> ());
      out := output;
      memory := [];
      Hashtbl.reset buckets;
      Atomic.set suppressed_count 0);
  Atomic.set enabled_flag (output <> Null)

let enabled () = Atomic.get enabled_flag

(* Called under [mu]. Returns the dropped-line count to surface on this
   line (0 = nothing was suppressed since the last emitted line). *)
let take_token event now =
  let b =
    match Hashtbl.find_opt buckets event with
    | Some b -> b
    | None ->
      let b = { tokens = !rl_burst; last = now; dropped = 0 } in
      Hashtbl.add buckets event b;
      b
  in
  b.tokens <- Float.min !rl_burst (b.tokens +. ((now -. b.last) *. !rl_per_s));
  b.last <- now;
  if b.tokens >= 1. then begin
    b.tokens <- b.tokens -. 1.;
    let d = b.dropped in
    b.dropped <- 0;
    Some d
  end
  else begin
    b.dropped <- b.dropped + 1;
    ignore (Atomic.fetch_and_add suppressed_count 1);
    None
  end

let render ~ts ~lvl ~event ~req ~hop ~dropped fields =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\"" ts
       (level_name lvl) (Trace.json_escape event));
  (match req with
   | Some id ->
     Buffer.add_string buf
       (Printf.sprintf ",\"req\":\"%s\"" (Trace.request_id_hex id));
     if hop > 0 then Buffer.add_string buf (Printf.sprintf ",\"hop\":%d" hop)
   | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":\"%s\"" (Trace.json_escape k) (Trace.json_escape v)))
    fields;
  if dropped > 0 then Buffer.add_string buf (Printf.sprintf ",\"suppressed\":%d" dropped);
  Buffer.add_char buf '}';
  Buffer.contents buf

let emit lvl ?req event fields =
  if Atomic.get enabled_flag && level_rank lvl >= Atomic.get min_rank then begin
    let req, hop =
      match req with
      | Some id -> (Some id, 0)
      | None ->
        (match Trace.current_request () with
         | Some (id, h) -> (Some id, h)
         | None -> (None, 0))
    in
    let now = Robust.Deadline.now () in
    Mutex.protect mu (fun () ->
        match take_token event now with
        | None -> ()
        | Some dropped ->
          let line = render ~ts:now ~lvl ~event ~req ~hop ~dropped fields in
          (match !out with
           | Null -> ()
           | Memory -> memory := line :: !memory
           | Stderr ->
             prerr_string line;
             prerr_newline ()
           | File _ ->
             (match !chan with
              | Some oc ->
                output_string oc line;
                output_char oc '\n';
                flush oc
              | None -> ())))
  end

let debug ?req event fields = emit Debug ?req event fields
let info ?req event fields = emit Info ?req event fields
let warn ?req event fields = emit Warn ?req event fields
let error ?req event fields = emit Error ?req event fields

let captured () = Mutex.protect mu (fun () -> List.rev !memory)
let suppressed_total () = Atomic.get suppressed_count
