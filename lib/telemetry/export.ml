(* Text expositions of a [Metrics.snapshot]: Prometheus 0.0.4 text
   format for scrapers, and a compact JSON object for the daemon Stats
   frame / BENCH_results.json. Both work on an immutable snapshot, so
   they are safe to call while recorders run. *)

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our registry uses
   dotted names ("bb.nodes", "cache.hit-rate"); dots and dashes become
   underscores, anything else non-conforming becomes '_' too. *)
let mangle name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || c = '_' || c = ':'
        || (i > 0 && c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let le_label bound =
  if bound = infinity then "+Inf" else Printf.sprintf "%g" bound

let prometheus ?(prefix = "cosa") (snap : Metrics.snapshot) =
  let buf = Buffer.create 2048 in
  let name n = prefix ^ "_" ^ mangle n in
  List.iter
    (fun (n, v) ->
      let m = name n in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m v))
    snap.Metrics.counters;
  List.iter
    (fun (n, v) ->
      if Float.is_finite v then
        let m = name n in
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" m m (prom_float v)))
    snap.Metrics.gauges;
  List.iter
    (fun (n, (h : Metrics.hist_snapshot)) ->
      let m = name n in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
      (* Prometheus buckets are cumulative counts of samples <= le. *)
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m (le_label h.Metrics.bounds.(i))
               !cum))
        h.Metrics.counts;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n%s_count %d\n" m (prom_float h.Metrics.sum) m
           h.Metrics.count))
    snap.Metrics.histograms;
  Buffer.contents buf

(* ---- JSON --------------------------------------------------------------- *)

let json_float v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let metrics_json (snap : Metrics.snapshot) =
  let buf = Buffer.create 2048 in
  let sep = ref false in
  let comma () = if !sep then Buffer.add_char buf ',' else sep := true in
  Buffer.add_string buf "{\"counters\":{";
  List.iter
    (fun (n, v) ->
      comma ();
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (Trace.json_escape n) v))
    snap.Metrics.counters;
  Buffer.add_string buf "},\"gauges\":{";
  sep := false;
  List.iter
    (fun (n, v) ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (Trace.json_escape n) (json_float v)))
    snap.Metrics.gauges;
  Buffer.add_string buf "},\"histograms\":{";
  sep := false;
  List.iter
    (fun (n, (h : Metrics.hist_snapshot)) ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s}"
           (Trace.json_escape n) h.Metrics.count (json_float h.Metrics.sum)
           (json_float (Metrics.hist_quantile h 0.5))
           (json_float (Metrics.hist_quantile h 0.95))))
    snap.Metrics.histograms;
  Buffer.add_string buf "}}";
  Buffer.contents buf
