(** Hierarchical spans and instant events in an in-memory ring buffer.

    Timestamps come from [Robust.Deadline.now] (the pipeline's shared
    monotonic clock), relative to the trace epoch set by {!reset}. Spans
    are recorded as Chrome [trace_event] complete events ([ph:"X"]) when
    they end, so an exported trace is balanced by construction; each
    OCaml domain appears as its own pid/tid. The ring holds the most
    recent [capacity] events; a separate per-span-name aggregate table
    (count, total duration) survives ring overwrite and feeds the
    [--profile] summary.

    Every entry point is a no-op while {!Sink.enabled} is false:
    {!begin_span} returns a static disabled token without reading the
    clock or allocating. *)

type span

val begin_span : ?cat:string -> string -> span
(** Start a span in category [cat] (default ["app"]). *)

val end_span : ?args:(string * string) list -> span -> unit
(** Finish a span, recording one complete event with optional string
    args. Ending a disabled or already-ended span is a no-op. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span ends even if [f]
    raises. When telemetry is disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a point event (Chrome [ph:"i"]). *)

type event = {
  name : string;
  cat : string;
  ts : float;  (** seconds since the trace epoch *)
  dur : float;  (** seconds; 0 for instants *)
  complete : bool;  (** true for spans, false for instants *)
  pid : int;  (** OCaml domain id *)
  args : (string * string) list;
}

val events : unit -> event list
(** The ring's current contents, oldest first (at most [capacity]). *)

val recorded : unit -> int
(** Events recorded since the last {!reset}, including any the ring has
    overwritten. *)

val set_capacity : int -> unit
(** Resize the ring (clamped to >= 1024) and clear it. Call before
    enabling collection; not safe concurrently with recorders. *)

val reset : unit -> unit
(** Clear the ring and the profile aggregates and re-arm the epoch. *)

val export_chrome : unit -> string
(** The ring as a Chrome [trace_event] JSON object
    ([{"traceEvents":[...]}], ts/dur in microseconds) loadable in
    [chrome://tracing] and Perfetto. *)

val export_jsonl : unit -> string
(** One event object per line, same fields as the Chrome export. *)

val write_file : string -> unit
(** Write the Chrome export to a path. *)

val flush : unit -> unit
(** If the sink is [File p], {!write_file} [p]; otherwise nothing. *)

val profile_entries : unit -> (string * int * float) list
(** [(name, count, total_seconds)] per span name, sorted by descending
    total; immune to ring overwrite. *)

val profile_summary : unit -> string
(** ASCII per-span wall-time table (the [--profile] report). *)
