(** Hierarchical spans and instant events in an in-memory ring buffer.

    Timestamps come from [Robust.Deadline.now] (the pipeline's shared
    monotonic clock), relative to the trace epoch set by {!reset}. Spans
    are recorded as Chrome [trace_event] complete events ([ph:"X"]) when
    they end, so an exported trace is balanced by construction; each
    OCaml domain appears as its own pid/tid.

    {b Overwrite semantics.} The ring holds the most recent
    [Sink.ring_capacity ()] events (default 65536, configurable via
    [Sink.set ~ring_capacity] or the CLI [--trace-ring] flag). Appends
    never block and never fail: once the ring is full each new event
    replaces the oldest slot, so a long run exports a sliding window of
    the tail, not the whole history. {!recorded} keeps counting past the
    capacity, so [recorded () > capacity] tells you events were dropped.
    A separate per-span-name aggregate table (count, total duration)
    survives ring overwrite and feeds the [--profile] summary.

    Every entry point is a no-op while {!Sink.enabled} is false:
    {!begin_span} returns a static disabled token without reading the
    clock or allocating. *)

type span

val begin_span : ?cat:string -> string -> span
(** Start a span in category [cat] (default ["app"]). *)

val end_span : ?args:(string * string) list -> span -> unit
(** Finish a span, recording one complete event with optional string
    args. Ending a disabled or already-ended span is a no-op. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span ends even if [f]
    raises. When telemetry is disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a point event (Chrome [ph:"i"]). *)

val with_request : id:int64 -> hop:int -> (unit -> 'a) -> 'a
(** Bind a request id (and origin hop count) to the calling systhread
    for the duration of [f]. Every event the thread records meanwhile is
    tagged with [("req", "%016Lx")] (and [("hop", n)] when [hop > 0]),
    and {!current_request} returns the binding — that is how the daemon
    threads one wire request id through solver spans, cache instants and
    outbound peer probes. Nests: the previous binding is restored when
    [f] returns or raises. Works with the sink disabled (propagation is
    not a telemetry feature); only event tagging depends on the sink. *)

val current_request : unit -> (int64 * int) option
(** The calling thread's [(request id, hop)] binding, if inside
    {!with_request}. *)

val request_id_hex : int64 -> string
(** Canonical 16-digit lower-case hex rendering of a request id, as used
    in event tags, log lines and the flight recorder. *)

type event = {
  name : string;
  cat : string;
  ts : float;  (** seconds since the trace epoch *)
  dur : float;  (** seconds; 0 for instants *)
  complete : bool;  (** true for spans, false for instants *)
  pid : int;  (** OCaml domain id *)
  args : (string * string) list;
}

val events : unit -> event list
(** The ring's current contents, oldest first (at most [capacity]). *)

val recorded : unit -> int
(** Events recorded since the last {!reset}, including any the ring has
    overwritten. *)

val set_capacity : int -> unit
(** Resize the ring (clamped to >= 1024, recorded in
    [Sink.set_ring_capacity]) and clear it. Call before enabling
    collection; not safe concurrently with recorders. *)

val reset : unit -> unit
(** Clear the ring and the profile aggregates and re-arm the epoch. *)

val export_chrome : unit -> string
(** The ring as a Chrome [trace_event] JSON object
    ([{"traceEvents":[...]}], ts/dur in microseconds) loadable in
    [chrome://tracing] and Perfetto. *)

val export_jsonl : unit -> string
(** One event object per line, same fields as the Chrome export. *)

val write_file : string -> unit
(** Write the Chrome export to a path. *)

val flush : unit -> unit
(** If the sink is [File p], {!write_file} [p]; otherwise nothing. *)

val profile_entries : unit -> (string * int * float) list
(** [(name, count, total_seconds)] per span name, sorted by descending
    total; immune to ring overwrite. *)

val profile_summary : unit -> string
(** ASCII per-span wall-time table (the [--profile] report). *)

val json_escape : string -> string
(** JSON string-body escaping shared by the exporters (and by
    [Telemetry.Log] / [Telemetry.Export]). *)
