(** Text expositions of a [Metrics.snapshot].

    Pure functions of an immutable snapshot — safe to call while
    recorders are running, and deterministic for a given snapshot. *)

val prometheus : ?prefix:string -> Metrics.snapshot -> string
(** Prometheus text exposition (format 0.0.4). Metric names are mangled
    to the Prometheus charset ([.]/[-] become [_]) and prefixed
    ([cosa_] by default); histograms expose cumulative
    [_bucket{le="..."}] series plus [_sum] / [_count], counters and
    gauges get a [# TYPE] header each. *)

val metrics_json : Metrics.snapshot -> string
(** The snapshot as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,p50,p95}}}].
    Histogram quantiles are bucket-upper-bound estimates
    (see [Metrics.hist_quantile]). *)

val mangle : string -> string
(** The name mangling used by {!prometheus}. *)
