type t = Null | Memory | File of string

(* The enabled flag is read on every instrumentation site, from every
   domain; it is a separate atomic (rather than [get () <> Null]) so the
   hot-path check is a single load with no match. *)
let current = Atomic.make Null
let enabled_flag = Atomic.make false

let set s =
  Atomic.set current s;
  Atomic.set enabled_flag (s <> Null)

let get () = Atomic.get current
let enabled () = Atomic.get enabled_flag
