type t = Null | Memory | File of string

(* The enabled flag is read on every instrumentation site, from every
   domain; it is a separate atomic (rather than [get () <> Null]) so the
   hot-path check is a single load with no match. *)
let current = Atomic.make Null
let enabled_flag = Atomic.make false

(* Trace ring size, read by [Trace.ensure_ring] the first time an event
   is recorded after a resize. Lives here (not in Trace) so a process can
   configure the ring before any recording module is touched. *)
let default_ring_capacity = 65_536
let ring_capacity_v = Atomic.make default_ring_capacity

let set ?ring_capacity s =
  (match ring_capacity with
   | Some n -> Atomic.set ring_capacity_v (max 1024 n)
   | None -> ());
  Atomic.set current s;
  Atomic.set enabled_flag (s <> Null)

let get () = Atomic.get current
let enabled () = Atomic.get enabled_flag
let ring_capacity () = Atomic.get ring_capacity_v
let set_ring_capacity n = Atomic.set ring_capacity_v (max 1024 n)
