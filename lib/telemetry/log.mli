(** Structured, leveled, rate-limited JSONL event log.

    The daemon tier's operational narrative — accepts, drains, peer
    ejections, cache recoveries, shed requests — as one JSON object per
    line:

    {v
    {"ts":1754700000.123456,"level":"info","event":"daemon.accept",
     "req":"00a3f2...","peer":"127.0.0.1:7401"}
    v}

    Disabled ([Null], the default) is the steady state: each entry point
    is a single atomic load and a branch, with no allocation, clock read
    or lock, so call sites stay on hot paths unconditionally. This gate
    is separate from [Sink.enabled] — an operator can arm the event log
    without paying for span tracing, and vice versa.

    When armed, lines are written under a mutex (concurrent domains and
    systhreads never interleave bytes) and each event name is
    rate-limited by a token bucket; dropped lines are counted and the
    count is attached to the next emitted line for that event as a
    ["suppressed"] field, so a log storm degrades into a summary instead
    of an unbounded file.

    Calls made inside [Trace.with_request] are tagged with the bound
    request id (["req"], 16-hex-digit) and hop count automatically. *)

type level = Debug | Info | Warn | Error
type output = Null | Stderr | File of string | Memory

val set : ?level:level -> ?rate_limit:int * float -> output -> unit
(** Install an output and arm/disarm the log. [level] (default [Info])
    is the minimum emitted level. [rate_limit] is [(burst, per_second)]
    per event name (default [20, 50.]). [File p] appends, creating the
    file if needed; [Memory] captures lines for {!captured} (tests).
    Resets the memory capture, rate-limit state and {!suppressed_total}. *)

val enabled : unit -> bool
(** One atomic load; true iff the output is not [Null]. *)

val debug : ?req:int64 -> string -> (string * string) list -> unit
val info : ?req:int64 -> string -> (string * string) list -> unit
val warn : ?req:int64 -> string -> (string * string) list -> unit

val error : ?req:int64 -> string -> (string * string) list -> unit
(** [info event fields] emits one line. [event] is a dotted name
    (["daemon.accept"], ["cluster.peer_eject"]) that doubles as the
    rate-limit key; [fields] become string-valued JSON members. [req]
    overrides the ambient [Trace.current_request] binding. *)

val level_name : level -> string
val level_of_string : string -> level option

val captured : unit -> string list
(** Lines captured by the [Memory] output since the last {!set}, oldest
    first. *)

val suppressed_total : unit -> int
(** Lines dropped by the rate limiter since the last {!set}. *)
