(* Atomics-based metrics registry. Registration (find-or-create by name)
   takes a mutex; recording is lock-free — counters and bucket counts are
   [Atomic.fetch_and_add], the histogram sum is a CAS loop. Recording
   checks [Sink.enabled] first and does nothing (no allocation, no clock
   read) while telemetry is off. *)

type counter = { cname : string; cv : int Atomic.t }
type gauge = { gname : string; gv : float Atomic.t }

type histogram = {
  hname : string;
  bounds : float array;  (* ascending upper bounds; buckets has one extra overflow slot *)
  buckets : int Atomic.t array;
  hcount : int Atomic.t;
  hsum : float Atomic.t;
}

let mu = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let duration_buckets =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 0.01; 0.03; 0.1; 0.3; 1.; 3.; 10.; 30. |]

let linear_buckets ~lo ~step ~count =
  Array.init count (fun i -> lo +. (step *. float_of_int i))

let exponential_buckets ~lo ~ratio ~count =
  Array.init count (fun i -> lo *. (ratio ** float_of_int i))

let find_or_create tbl name create =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
        let m = create () in
        Hashtbl.add tbl name m;
        m)

let counter name =
  find_or_create counters name (fun () -> { cname = name; cv = Atomic.make 0 })

let gauge name =
  find_or_create gauges name (fun () -> { gname = name; gv = Atomic.make 0. })

let histogram ?(buckets = duration_buckets) name =
  find_or_create histograms name (fun () ->
      {
        hname = name;
        bounds = Array.copy buckets;
        buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
        hcount = Atomic.make 0;
        hsum = Atomic.make 0.;
      })

let incr c = if Sink.enabled () then ignore (Atomic.fetch_and_add c.cv 1)
let add c n = if Sink.enabled () then ignore (Atomic.fetch_and_add c.cv n)
let set_gauge g v = if Sink.enabled () then Atomic.set g.gv v

let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

let observe h v =
  if Sink.enabled () then begin
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do
      Stdlib.incr i
    done;
    ignore (Atomic.fetch_and_add h.buckets.(!i) 1);
    ignore (Atomic.fetch_and_add h.hcount 1);
    atomic_add_float h.hsum v
  end

(* ---- snapshot / reset -------------------------------------------------- *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let sorted_of_tbl tbl f =
  Mutex.protect mu (fun () -> Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  {
    counters = sorted_of_tbl counters (fun c -> Atomic.get c.cv);
    gauges = sorted_of_tbl gauges (fun g -> Atomic.get g.gv);
    histograms =
      sorted_of_tbl histograms (fun h ->
          (* Read order matters under concurrent [observe]: the writer
             bumps its bucket first, then [hcount]. Reading the count
             before the bucket array therefore guarantees
             sum-of-buckets >= count in every snapshot — a sample can
             appear in a bucket without being counted yet, never the
             other way around (no "torn" histogram). *)
          let count = Atomic.get h.hcount in
          let sum = Atomic.get h.hsum in
          let counts = Array.map Atomic.get h.buckets in
          { bounds = Array.append h.bounds [| infinity |]; counts; count; sum });
  }

let reset () =
  Mutex.protect mu (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cv 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.gv 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.hcount 0;
          Atomic.set h.hsum 0.)
        histograms)

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let hist_quantile (h : hist_snapshot) q =
  if h.count = 0 then 0.
  else begin
    let rank = Float.max 1. (Float.round (q *. float_of_int h.count)) in
    let acc = ref 0 and res = ref h.bounds.(Array.length h.bounds - 1) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if float_of_int !acc >= rank then begin
             res := h.bounds.(i);
             raise Exit
           end)
         h.counts
     with Exit -> ());
    !res
  end

let report_of snap =
  let buf = Buffer.create 1024 in
  let nonzero_counters = List.filter (fun (_, v) -> v <> 0) snap.counters in
  if nonzero_counters <> [] then begin
    let tab = Prim.Texttab.create [ "counter"; "value" ] in
    List.iter
      (fun (n, v) -> Prim.Texttab.add_row tab [ n; string_of_int v ])
      nonzero_counters;
    Buffer.add_string buf (Prim.Texttab.render tab)
  end;
  let nonzero_gauges = List.filter (fun (_, v) -> v <> 0.) snap.gauges in
  if nonzero_gauges <> [] then begin
    let tab = Prim.Texttab.create [ "gauge"; "value" ] in
    List.iter
      (fun (n, v) -> Prim.Texttab.add_row tab [ n; Prim.Texttab.cell_f v ])
      nonzero_gauges;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Prim.Texttab.render tab)
  end;
  let live_hists = List.filter (fun (_, h) -> h.count > 0) snap.histograms in
  if live_hists <> [] then begin
    let tab =
      Prim.Texttab.create [ "histogram"; "count"; "mean"; "~p50"; "~p95"; "max<=" ]
    in
    List.iter
      (fun (n, h) ->
        let maxb =
          (* upper bound of the highest non-empty bucket *)
          let r = ref 0. in
          Array.iteri (fun i c -> if c > 0 then r := h.bounds.(i)) h.counts;
          !r
        in
        Prim.Texttab.add_row tab
          [ n; string_of_int h.count;
            Prim.Texttab.cell_f (h.sum /. float_of_int h.count);
            Prim.Texttab.cell_f (hist_quantile h 0.5);
            Prim.Texttab.cell_f (hist_quantile h 0.95); Prim.Texttab.cell_f maxb ])
      live_hists;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Prim.Texttab.render tab)
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf

let report () = report_of (snapshot ())
