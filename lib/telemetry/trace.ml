(* Span ring buffer. Appends are a single [Atomic.fetch_and_add] on the
   write position plus one slot store; concurrent writers that lap the
   ring overwrite the oldest slots (a slot store is one pointer write of
   an immutable record, so a racy overwrite yields one of the two events,
   never a torn one). Readers ([events], exports) run after the workload
   settles, on the coordinating domain. *)

type event = {
  name : string;
  cat : string;
  ts : float;
  dur : float;
  complete : bool;
  pid : int;
  args : (string * string) list;
}

type span = { sname : string; scat : string; t0 : float; live : bool }

let disabled_span = { sname = ""; scat = ""; t0 = 0.; live = false }

let mu = Mutex.create ()
let slots : event option array ref = ref [||]
let pos = Atomic.make 0
let epoch = Atomic.make 0.

(* Aggregates per span name, robust to ring overwrite: the --profile
   summary must account for every span even when the ring only retains
   the last N. *)
type agg = { acount : int Atomic.t; atotal : float Atomic.t }

let profile : (string, agg) Hashtbl.t = Hashtbl.create 32

let agg_for name =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt profile name with
      | Some a -> a
      | None ->
        let a = { acount = Atomic.make 0; atotal = Atomic.make 0. } in
        Hashtbl.add profile name a;
        a)

let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

let ensure_ring () =
  let want = Sink.ring_capacity () in
  if Array.length !slots <> want then
    Mutex.protect mu (fun () ->
        if Array.length !slots <> want then begin
          slots := Array.make want None;
          Atomic.set pos 0
        end)

let set_capacity n =
  Sink.set_ring_capacity n;
  Mutex.protect mu (fun () ->
      slots := Array.make (Sink.ring_capacity ()) None;
      Atomic.set pos 0)

let reset () =
  Mutex.protect mu (fun () ->
      let s = !slots in
      Array.fill s 0 (Array.length s) None;
      Atomic.set pos 0;
      Hashtbl.iter
        (fun _ a ->
          Atomic.set a.acount 0;
          Atomic.set a.atotal 0.)
        profile);
  Atomic.set epoch (Robust.Deadline.now ())

(* ---- request context --------------------------------------------------- *)

(* Per-systhread request binding. The daemon runs every connection on its
   own thread inside one domain, so Domain-local storage cannot tell two
   in-flight requests apart; the context is keyed by [Thread.id] instead.
   The binding is independent of the sink — wire propagation (peer probes
   reading [current_request]) must work even with tracing off — but only
   [record] pays the lookup, and only when a sink is armed. *)

let req_mu = Mutex.create ()
let req_tbl : (int, int64 * int) Hashtbl.t = Hashtbl.create 16

let current_request () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.protect req_mu (fun () -> Hashtbl.find_opt req_tbl tid)

let with_request ~id ~hop f =
  let tid = Thread.id (Thread.self ()) in
  let prev =
    Mutex.protect req_mu (fun () ->
        let prev = Hashtbl.find_opt req_tbl tid in
        Hashtbl.replace req_tbl tid (id, hop);
        prev)
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect req_mu (fun () ->
          match prev with
          | Some p -> Hashtbl.replace req_tbl tid p
          | None -> Hashtbl.remove req_tbl tid))
    f

let request_id_hex id = Printf.sprintf "%016Lx" id

let tag_request args =
  match current_request () with
  | None -> args
  | Some _ when List.mem_assoc "req" args -> args
  | Some (id, hop) ->
    let tagged = ("req", request_id_hex id) :: args in
    if hop > 0 then ("hop", string_of_int hop) :: tagged else tagged

let record ev =
  ensure_ring ();
  let ev = { ev with args = tag_request ev.args } in
  let s = !slots in
  let i = Atomic.fetch_and_add pos 1 in
  s.(i mod Array.length s) <- Some ev

let domain_id () = (Domain.self () :> int)

let begin_span ?(cat = "app") name =
  if not (Sink.enabled ()) then disabled_span
  else { sname = name; scat = cat; t0 = Robust.Deadline.now (); live = true }

let end_span ?(args = []) sp =
  if sp.live && Sink.enabled () then begin
    let t1 = Robust.Deadline.now () in
    let dur = Float.max 0. (t1 -. sp.t0) in
    record
      {
        name = sp.sname;
        cat = sp.scat;
        ts = sp.t0 -. Atomic.get epoch;
        dur;
        complete = true;
        pid = domain_id ();
        args;
      };
    let a = agg_for sp.sname in
    ignore (Atomic.fetch_and_add a.acount 1);
    atomic_add_float a.atotal dur
  end

let with_span ?cat name f =
  if not (Sink.enabled ()) then f ()
  else begin
    let sp = begin_span ?cat name in
    Fun.protect ~finally:(fun () -> end_span sp) f
  end

let instant ?(cat = "app") ?(args = []) name =
  if Sink.enabled () then
    record
      {
        name;
        cat;
        ts = Robust.Deadline.now () -. Atomic.get epoch;
        dur = 0.;
        complete = false;
        pid = domain_id ();
        args;
      }

let recorded () = Atomic.get pos

let events () =
  let s = !slots in
  let n = Atomic.get pos in
  let len = Array.length s in
  if n = 0 || len = 0 then []
  else begin
    let first = if n <= len then 0 else n - len in
    let out = ref [] in
    for i = n - 1 downto first do
      match s.(i mod len) with Some ev -> out := ev :: !out | None -> ()
    done;
    !out
  end

(* ---- JSON export ------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_json ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,%s\"pid\":%d,\"tid\":%d"
       (json_escape ev.name) (json_escape ev.cat)
       (if ev.complete then "X" else "i")
       (ev.ts *. 1e6)
       (if ev.complete then Printf.sprintf "\"dur\":%.3f," (ev.dur *. 1e6) else "")
       ev.pid ev.pid);
  (match ev.args with
   | [] -> ()
   | args ->
     Buffer.add_string buf ",\"args\":{";
     List.iteri
       (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_string buf
           (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
       args;
     Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

let export_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      Buffer.add_string buf (event_json ev))
    (events ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let export_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_json ev);
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_chrome ()))

let flush () = match Sink.get () with Sink.File p -> write_file p | Sink.Null | Sink.Memory -> ()

(* ---- profile summary --------------------------------------------------- *)

let profile_entries () =
  Mutex.protect mu (fun () ->
      Hashtbl.fold
        (fun name a acc -> (name, Atomic.get a.acount, Atomic.get a.atotal) :: acc)
        profile [])
  |> List.filter (fun (_, c, _) -> c > 0)
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let profile_summary () =
  match profile_entries () with
  | [] -> "(no spans recorded)\n"
  | entries ->
    let tab = Prim.Texttab.create [ "span"; "count"; "total (s)"; "mean (ms)" ] in
    List.iter
      (fun (name, count, total) ->
        Prim.Texttab.add_row tab
          [ name; string_of_int count; Printf.sprintf "%.4f" total;
            Printf.sprintf "%.4f" (1e3 *. total /. float_of_int count) ])
      entries;
    Prim.Texttab.render tab
