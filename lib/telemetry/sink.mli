(** Telemetry output destination and the master collection switch.

    The sink doubles as the global enable flag for every recording
    primitive in [Metrics] and [Trace]: with the default [Null] sink,
    counters, histograms, and spans are no-ops that perform no allocation
    — one atomic flag load and a branch — so instrumented hot paths cost
    nothing in production unless observability is asked for. *)

type t =
  | Null  (** discard everything; recording primitives are no-ops (default) *)
  | Memory  (** collect in memory only; read back via snapshot/export calls *)
  | File of string  (** collect in memory and write the Chrome trace here on flush *)

val set : t -> unit
(** Install a sink. Any sink other than [Null] turns collection on. *)

val get : unit -> t

val enabled : unit -> bool
(** One atomic load; checked by every recording primitive before any
    allocation or clock read. *)
