(** Telemetry output destination and the master collection switch.

    The sink doubles as the global enable flag for every recording
    primitive in [Metrics] and [Trace]: with the default [Null] sink,
    counters, histograms, and spans are no-ops that perform no allocation
    — one atomic flag load and a branch — so instrumented hot paths cost
    nothing in production unless observability is asked for. *)

type t =
  | Null  (** discard everything; recording primitives are no-ops (default) *)
  | Memory  (** collect in memory only; read back via snapshot/export calls *)
  | File of string  (** collect in memory and write the Chrome trace here on flush *)

val set : ?ring_capacity:int -> t -> unit
(** Install a sink. Any sink other than [Null] turns collection on.
    [ring_capacity] configures the [Trace] event ring (clamped to
    >= 1024, default 65536); the new size takes effect the next time the
    ring is (re)allocated — call {!Trace.set_capacity} or [Trace.reset]
    after changing it mid-run. *)

val get : unit -> t

val default_ring_capacity : int

val ring_capacity : unit -> int
(** The configured trace-ring size. When the ring fills, each new event
    overwrites the oldest slot; see [Trace]. *)

val set_ring_capacity : int -> unit
(** Change the configured ring size (clamped to >= 1024) without
    touching the sink. [Trace] picks it up on its next (re)allocation. *)

val enabled : unit -> bool
(** One atomic load; checked by every recording primitive before any
    allocation or clock read. *)
