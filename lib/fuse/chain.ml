(* Chain derivation: expand the entry list into the instance sequence,
   find maximal runs of fusable adjacent instances, cut runs into groups of
   at most [max_group], and deduplicate shape-identical groups. *)

type group = {
  members : Layer.t list;
  count : int;
}

let adjacent (a : Layer.t) (b : Layer.t) =
  a.Layer.k = b.Layer.c && a.Layer.n = b.Layer.n
  && a.Layer.p = b.Layer.p * b.Layer.stride
  && a.Layer.q = b.Layer.q * b.Layer.stride

(* The network's instance sequence: each entry repeated [repeats] times in
   entry order (the data structure's stated execution order). *)
let instances (net : Network.t) =
  List.concat_map
    (fun (e : Network.entry) ->
      List.init e.Network.repeats (fun _ -> e.Network.layer))
    net.Network.entries

(* Split one maximal fusable run into member lists of [2, max_group]. *)
let cut_run max_group run =
  let rec go acc = function
    | [] -> List.rev acc
    | [ _ ] -> List.rev acc  (* a leftover single is not a group *)
    | rest ->
      let seg, rest' =
        let rec take n xs =
          match (n, xs) with
          | 0, _ | _, [] -> ([], xs)
          | n, x :: tl ->
            let s, r = take (n - 1) tl in
            (x :: s, r)
        in
        take max_group rest
      in
      go (seg :: acc) rest'
  in
  go [] run

let derive ?(max_group = 3) (net : Network.t) =
  let max_group = max 2 max_group in
  (* maximal runs of consecutive fusable instances *)
  let runs =
    let flush cur acc = match cur with [] | [ _ ] -> acc | c -> List.rev c :: acc in
    let rec go cur acc = function
      | [] -> List.rev (flush cur acc)
      | l :: tl ->
        (match cur with
         | prev :: _ when adjacent prev l -> go (l :: cur) acc tl
         | _ -> go [ l ] (flush cur acc) tl)
    in
    go [] [] (instances net)
  in
  let segs = List.concat_map (cut_run max_group) runs in
  (* dedup shape-identical member sequences, keeping first-seen order *)
  let keys seg = String.concat ";" (List.map Layer.key seg) in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun seg ->
      let k = keys seg in
      match Hashtbl.find_opt tbl k with
      | Some (members, n) -> Hashtbl.replace tbl k (members, n + 1)
      | None ->
        Hashtbl.add tbl k (seg, 1);
        order := k :: !order)
    segs;
  List.rev_map
    (fun k ->
      let members, count = Hashtbl.find tbl k in
      { members; count })
    !order

let grouped_instances groups =
  List.fold_left (fun acc g -> acc + (List.length g.members * g.count)) 0 groups

let group_key arch g =
  Printf.sprintf "arch=%s|chain=%s" (Spec.key arch)
    (String.concat ";" (List.map Layer.key g.members))

(* FNV-1a 64, the same stable digest the schedule cache uses for its file
   stems (see Serve.Fingerprint). *)
let fnv1a_64 s =
  let prime = 1099511628211L in
  let h = ref (-3750763034362895579L) (* 14695981039346656037 *) in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) prime)
    s;
  Printf.sprintf "%016Lx" !h

let group_hash arch g = fnv1a_64 (group_key arch g)

let group_to_string g =
  Printf.sprintf "%dx [%s]" g.count
    (String.concat " -> " (List.map (fun (l : Layer.t) -> l.Layer.name) g.members))
