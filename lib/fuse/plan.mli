(** The fusion planner: second-stage optimization over derived chains.

    For each fusion group the planner enumerates candidate band counts
    (row-band tilings of the chain's final output), and for each candidate
    solves a small buffer-allocation / tensor-replacement MIP with
    {!Milp.Bb}: binary [keep] per intermediate edge (resident in the
    global buffer vs spilled to DRAM) and binary [wres] per member
    (weights pinned on chip vs refetched per band), minimizing total
    off-chip words subject to the global-buffer ledger and the aggregate
    weight-capacity budget. The best candidate's exact integer accounting
    becomes a {!Certify.Fuse_cert.claim}; only a claim the certifier
    accepts is served as fused. Anything else — injected fault, solver
    failure, certification failure, or (in [Auto] mode) a fusion that
    does not actually beat the independent baseline — degrades the group
    to the certified per-layer answer, provenance-tagged with the typed
    failures that caused the descent. *)

type mode =
  | Chains  (** fuse every derived chain whose plan certifies *)
  | Auto  (** additionally require the fused plan to strictly beat the
              independent per-layer baseline *)

val mode_to_string : mode -> string

type fused = {
  f_bands : int;
  f_keep : bool list;  (** per intermediate edge, producer order *)
  f_wres : bool list;  (** per member *)
  f_gb_reserve_bytes : int;
  f_peak_gb_bytes : int;
  f_dram_words : int;  (** exact off-chip words for one pass of the group *)
}

type outcome =
  | Fused of fused  (** certified in exact arithmetic — never served otherwise *)
  | Independent of Robust.Failure.t list
      (** group falls back to per-layer scheduling; the list is the typed
          provenance of the degradation (empty when [Auto] found fusion
          simply not beneficial) *)

type group_plan = {
  g_group : Chain.group;
  g_key : string;
  g_hash : string;
  g_independent_words : int;
      (** per-layer baseline for one pass: every tensor of every member
          touched once in DRAM (the most charitable independent schedule) *)
  g_outcome : outcome;
}

type network_plan = {
  p_network : string;
  p_mode : mode;
  p_max_group : int;
  p_groups : group_plan list;
  p_grouped_instances : int;  (** layer instances covered by some group *)
  p_instances : int;  (** total layer instances in the network *)
  p_independent_dram_words : int;  (** whole network, all layers independent *)
  p_fused_dram_words : int;
      (** whole network with fused groups applied (ungrouped and degraded
          layers at the independent baseline) *)
}

val independent_words : Layer.t -> int
(** W + IA + OA footprints, each touched once ({!Layer.tensor_words}). *)

val plan_group :
  ?node_limit:int ->
  ?time_limit:float ->
  ?deadline:Robust.Deadline.t ->
  ?gb_reserve_bytes:int ->
  Spec.t ->
  Chain.group ->
  group_plan
(** Never raises. [gb_reserve_bytes] defaults to half the global buffer
    (left to the per-layer working tiles); [node_limit] defaults to 10_000
    per candidate MIP, [time_limit] to 2 s. *)

val plan_network :
  ?mode:mode ->
  ?max_group:int ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?deadline:Robust.Deadline.t ->
  ?gb_reserve_bytes:int ->
  Spec.t ->
  Network.t ->
  network_plan
(** Derives groups ({!Chain.derive}), plans each distinct group once, and
    rolls up network totals. Wrapped in a ["fuse.plan"] telemetry span;
    ticks [fuse.*] counters. Default [mode] is [Chains]. *)

val group_savings : group_plan -> int
(** Off-chip words saved per pass by this group's outcome (0 when
    independent; never negative). *)

(** {2 DRAM access traces}

    Transfer-level renderings of the two executions, for replay through
    {!Dram_model} (the cycle-level banked DRAM simulator in [lib/noc]):
    one entry per contiguous DRAM touch, in execution order. Regions
    number the distinct tensors (group input, each intermediate edge, the
    final output, each member's weights) so the simulator sees realistic
    row-locality structure. *)

type transfer = {
  t_region : int;  (** tensor region id, dense from 0 *)
  t_words : int;
  t_write : bool;
}

val fused_trace : Chain.group -> fused -> transfer list
(** The fused execution: per band, the group input read, spilled-edge
    writes/reads, the output-band write; then the weight fetches. *)

val independent_trace : Chain.group -> transfer list
(** The per-layer baseline: each member reads its input and weights and
    writes its output, every tensor touched once. *)

val network_plan_to_string : network_plan -> string
