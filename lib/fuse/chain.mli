(** Producer→consumer chain derivation over a network.

    A network's entry list is its execution order. Two consecutive layer
    instances are fusable when the first's output tensor is exactly the
    second's input tensor: output channels match input channels, batch
    matches, and the spatial extents match through the consumer's stride.
    Maximal runs of fusable instances are cut into fusion groups of at
    most [max_group] members, and shape-identical groups are deduplicated
    with occurrence counts — the fusion planner solves each distinct group
    once, exactly as the batch service solves each distinct layer once. *)

type group = {
  members : Layer.t list;  (** chain order, producer first; length >= 2 *)
  count : int;  (** occurrences of this exact member sequence in the network *)
}

val adjacent : Layer.t -> Layer.t -> bool
(** [adjacent producer consumer]: can [consumer] run depth-first on
    [producer]'s output? *)

val derive : ?max_group:int -> Network.t -> group list
(** Distinct fusion groups in order of first appearance. [max_group]
    (default 3) caps members per group; leftover single instances are not
    grouped. Raises nothing; a network with no fusable pair yields []. *)

val grouped_instances : group list -> int
(** Total layer instances covered by the groups (members x count, summed). *)

val group_key : Spec.t -> group -> string
(** Canonical content key for a group: the architecture key plus each
    member's shape key in chain order. Name-blind, like
    {!Layer.key}/{!Spec.key} — equal keys mean the same fusion problem. *)

val group_hash : Spec.t -> group -> string
(** 16-hex-character FNV-1a digest of {!group_key}, stable across OCaml
    versions and machines; the group's content address in telemetry and
    bench output. *)

val group_to_string : group -> string
(** Compact human-readable rendering, e.g.
    ["3x [1_56_256_64_1 -> 3_56_64_64_1 -> 1_56_64_256_1]"]. *)
