(* The fusion planner.

   Per group: enumerate band counts, solve a small keep/wres MIP per
   candidate with Milp.Bb, recompute the winner's cost in exact integer
   arithmetic, and submit the result to Certify.Fuse_cert. The exact
   accounting here is the planner's own — the certifier replays the same
   physics from the claim alone (over Prim.Bigint, in lib/certify) so the
   two implementations check each other.

   All word counts in this file fit native ints comfortably: the largest
   per-band edge is p*q*k*n of a single layer, and network totals stay far
   below 2^62 for anything in the model zoo. *)

let m_groups = Telemetry.Metrics.counter "fuse.groups"
let m_fused = Telemetry.Metrics.counter "fuse.fused"
let m_degraded = Telemetry.Metrics.counter "fuse.degraded"
let m_not_beneficial = Telemetry.Metrics.counter "fuse.not_beneficial"
let m_cert_failures = Telemetry.Metrics.counter "fuse.cert_failures"
let m_mip_solves = Telemetry.Metrics.counter "fuse.mip_solves"

type mode = Chains | Auto

let mode_to_string = function Chains -> "chains" | Auto -> "auto"

type fused = {
  f_bands : int;
  f_keep : bool list;
  f_wres : bool list;
  f_gb_reserve_bytes : int;
  f_peak_gb_bytes : int;
  f_dram_words : int;
}

type outcome = Fused of fused | Independent of Robust.Failure.t list

type group_plan = {
  g_group : Chain.group;
  g_key : string;
  g_hash : string;
  g_independent_words : int;
  g_outcome : outcome;
}

type network_plan = {
  p_network : string;
  p_mode : mode;
  p_max_group : int;
  p_groups : group_plan list;
  p_grouped_instances : int;
  p_instances : int;
  p_independent_dram_words : int;
  p_fused_dram_words : int;
}

let independent_words (l : Layer.t) =
  Layer.tensor_words l Dims.W + Layer.tensor_words l Dims.IA
  + Layer.tensor_words l Dims.OA

(* ---- architecture budgets (planner's view; the certifier re-derives
   these independently in lib/certify/fuse_cert.ml) --------------------- *)

let instances_at (arch : Spec.t) i =
  let n = ref 1 in
  for j = i to Array.length arch.Spec.levels - 1 do
    n := !n * arch.Spec.levels.(j).Spec.fanout
  done;
  !n

let gb_capacity_bytes (arch : Spec.t) =
  arch.Spec.levels.(Spec.dram_level arch - 1).Spec.capacity_bytes

let weight_budget_bytes (arch : Spec.t) =
  let best = ref 0 in
  for i = 0 to Spec.dram_level arch - 1 do
    let lvl = arch.Spec.levels.(i) in
    if List.mem Dims.W lvl.Spec.stores then begin
      let share = lvl.Spec.capacity_bytes / List.length lvl.Spec.stores in
      let agg = share * instances_at arch i in
      if agg > !best then best := agg
    end
  done;
  !best

let bytes_of_words (arch : Spec.t) tensor words =
  (words * arch.Spec.precision_bits tensor + 7) / 8

(* ---- exact accounting for a concrete (bands, keep, wres) choice ------- *)

(* Rows of band [t] (balanced split, extras first — matches Fuse_cert). *)
let band_rows ~total ~bands t =
  (total / bands) + (if t < total mod bands then 1 else 0)

type accounting = {
  a_dram_words : int;
  a_peak_bytes : int;
  a_ledger_ok : bool;  (* every (band, member) occupancy within budget *)
}

let account (arch : Spec.t) (members : Layer.t array) ~keep ~wres ~bands
    ~gb_reserve_bytes =
  let nm = Array.length members in
  let q_last = members.(nm - 1).Layer.q in
  let gb_budget = gb_capacity_bytes arch - gb_reserve_bytes in
  let n_batch = members.(0).Layer.n in
  let edge_words i need = need * members.(i).Layer.p * members.(i).Layer.k * n_batch in
  let dram = ref 0 and peak = ref 0 and ok = ref true in
  for t = 0 to bands - 1 do
    let need = Array.make nm 0 in
    need.(nm - 1) <- band_rows ~total:q_last ~bands t;
    for j = nm - 1 downto 1 do
      let l = members.(j) in
      need.(j - 1) <-
        min members.(j - 1).Layer.q (((need.(j) - 1) * l.Layer.stride) + l.Layer.s)
    done;
    let l0 = members.(0) in
    let in_rows = ((need.(0) - 1) * l0.Layer.stride) + l0.Layer.s in
    dram := !dram + (in_rows * Layer.input_width l0 * l0.Layer.c * n_batch);
    for j = 0 to nm - 1 do
      let occ = ref 0 in
      if j > 0 && keep.(j - 1) then
        occ := !occ + bytes_of_words arch Dims.IA (edge_words (j - 1) need.(j - 1));
      if j < nm - 1 && keep.(j) then
        occ := !occ + bytes_of_words arch Dims.IA (edge_words j need.(j));
      if !occ > gb_budget then ok := false;
      if !occ > !peak then peak := !occ
    done;
    for j = 0 to nm - 2 do
      if not keep.(j) then dram := !dram + (2 * edge_words j need.(j))
    done;
    dram := !dram + edge_words (nm - 1) need.(nm - 1)
  done;
  for j = 0 to nm - 1 do
    let w =
      members.(j).Layer.r * members.(j).Layer.s * members.(j).Layer.c
      * members.(j).Layer.k
    in
    dram := !dram + (if wres.(j) then w else w * bands)
  done;
  { a_dram_words = !dram; a_peak_bytes = !peak; a_ledger_ok = !ok }

(* ---- per-candidate MIP ------------------------------------------------ *)

(* Candidate band counts: powers of two up to the final output height,
   plus the height itself (one row per band at the extreme). *)
let band_candidates q_last =
  let rec pows acc t = if t > q_last then List.rev acc else pows (t :: acc) (t * 2) in
  let cands = pows [] 1 @ [ q_last ] in
  List.sort_uniq compare (List.filter (fun t -> t >= 1 && t <= q_last) cands)

(* Build and solve the keep/wres MIP for one band count. Occupancy
   constraints only need band 0: the balanced split puts the extra rows
   first, so band 0 dominates every other band's needs. *)
let solve_candidate ~node_limit ~time_limit ~deadline (arch : Spec.t)
    (members : Layer.t array) ~bands ~gb_reserve_bytes =
  let nm = Array.length members in
  let q_last = members.(nm - 1).Layer.q in
  let n_batch = members.(0).Layer.n in
  let gb_budget = gb_capacity_bytes arch - gb_reserve_bytes in
  let edge_words i need = need * members.(i).Layer.p * members.(i).Layer.k * n_batch in
  (* band-0 needs *)
  let need0 = Array.make nm 0 in
  need0.(nm - 1) <- band_rows ~total:q_last ~bands 0;
  for j = nm - 1 downto 1 do
    let l = members.(j) in
    need0.(j - 1) <-
      min members.(j - 1).Layer.q (((need0.(j) - 1) * l.Layer.stride) + l.Layer.s)
  done;
  (* spill cost of edge i across all bands (written + read back) *)
  let spill = Array.make (nm - 1) 0 in
  for t = 0 to bands - 1 do
    let need = Array.make nm 0 in
    need.(nm - 1) <- band_rows ~total:q_last ~bands t;
    for j = nm - 1 downto 1 do
      let l = members.(j) in
      need.(j - 1) <-
        min members.(j - 1).Layer.q (((need.(j) - 1) * l.Layer.stride) + l.Layer.s)
    done;
    for i = 0 to nm - 2 do
      spill.(i) <- spill.(i) + (2 * edge_words i need.(i))
    done
  done;
  let m = Milp.Lp.create ~name:(Printf.sprintf "fuse_T%d" bands) () in
  let keep =
    Array.init (nm - 1) (fun i ->
        Milp.Lp.add_var m ~integer:true ~lb:0. ~ub:1. (Printf.sprintf "keep_%d" i))
  in
  let wres =
    Array.init nm (fun j ->
        Milp.Lp.add_var m ~integer:true ~lb:0. ~ub:1. (Printf.sprintf "wres_%d" j))
  in
  (* minimize off-chip words: savings enter with negative coefficients *)
  let wwords j =
    members.(j).Layer.r * members.(j).Layer.s * members.(j).Layer.c
    * members.(j).Layer.k
  in
  let obj =
    Array.to_list (Array.mapi (fun i v -> (-.float_of_int spill.(i), v)) keep)
    @ Array.to_list
        (Array.mapi
           (fun j v -> (-.float_of_int ((bands - 1) * wwords j), v))
           wres)
  in
  Milp.Lp.set_objective m `Minimize obj;
  (* global-buffer ledger at band 0, one row per member step *)
  for j = 0 to nm - 1 do
    let terms = ref [] in
    if j > 0 then
      terms :=
        ( float_of_int (bytes_of_words arch Dims.IA (edge_words (j - 1) need0.(j - 1))),
          keep.(j - 1) )
        :: !terms;
    if j < nm - 1 then
      terms :=
        (float_of_int (bytes_of_words arch Dims.IA (edge_words j need0.(j))), keep.(j))
        :: !terms;
    if !terms <> [] then
      Milp.Lp.add_constr m ~name:(Printf.sprintf "gb_member_%d" j) !terms Milp.Lp.Le
        (float_of_int gb_budget)
  done;
  (* aggregate on-chip weight capacity *)
  Milp.Lp.add_constr m ~name:"weight_capacity"
    (Array.to_list
       (Array.mapi
          (fun j v -> (float_of_int (bytes_of_words arch Dims.W (wwords j)), v))
          wres))
    Milp.Lp.Le
    (float_of_int (weight_budget_bytes arch));
  Telemetry.Metrics.incr m_mip_solves;
  let r = Milp.Bb.solve ~node_limit ~time_limit ~deadline m in
  match r.Milp.Bb.status with
  | Milp.Bb.Optimal | Milp.Bb.Feasible ->
    let keep_b = Array.map (fun v -> Milp.Bb.value r v > 0.5) keep in
    let wres_b = Array.map (fun v -> Milp.Bb.value r v > 0.5) wres in
    Ok (keep_b, wres_b)
  | Milp.Bb.Infeasible -> Error [ Robust.Failure.Infeasible ]
  | Milp.Bb.Unbounded -> Error [ Robust.Failure.Numerical_instability ]
  | Milp.Bb.No_solution ->
    Error
      (if r.Milp.Bb.failures <> [] then r.Milp.Bb.failures
       else [ Robust.Failure.Iteration_limit ])

(* ---- group planning --------------------------------------------------- *)

let plan_group ?(node_limit = 10_000) ?(time_limit = 2.)
    ?(deadline = Robust.Deadline.none) ?gb_reserve_bytes (arch : Spec.t)
    (group : Chain.group) =
  Telemetry.Metrics.incr m_groups;
  let members = Array.of_list group.Chain.members in
  let g_independent_words =
    List.fold_left (fun acc l -> acc + independent_words l) 0 group.Chain.members
  in
  let base =
    {
      g_group = group;
      g_key = Chain.group_key arch group;
      g_hash = Chain.group_hash arch group;
      g_independent_words;
      g_outcome = Independent [];
    }
  in
  let degrade failures =
    Telemetry.Metrics.incr m_degraded;
    { base with g_outcome = Independent failures }
  in
  match Robust.Fault.check "fuse.plan" with
  | Error f -> degrade [ f ]
  | Ok () ->
    let gb_reserve_bytes =
      match gb_reserve_bytes with
      | Some r -> max 0 (min r (gb_capacity_bytes arch))
      | None -> gb_capacity_bytes arch / 2
    in
    let q_last = members.(Array.length members - 1).Layer.q in
    (* evaluate every candidate band count; keep the exact-integer best *)
    let best = ref None and failures = ref [] in
    List.iter
      (fun bands ->
        match
          solve_candidate ~node_limit ~time_limit ~deadline arch members ~bands
            ~gb_reserve_bytes
        with
        | Error fs -> failures := !failures @ fs
        | Ok (keep, wres) ->
          let a = account arch members ~keep ~wres ~bands ~gb_reserve_bytes in
          if a.a_ledger_ok then
            let better =
              match !best with
              | None -> true
              | Some (_, _, _, prev) ->
                a.a_dram_words < prev.a_dram_words
            in
            if better then best := Some (bands, keep, wres, a))
      (band_candidates q_last);
    (match !best with
     | None ->
       degrade
         (if !failures = [] then [ Robust.Failure.Infeasible ]
          else Robust.Failure.dedup_consecutive !failures)
     | Some (bands, keep, wres, a) ->
       let claim =
         {
           Certify.Fuse_cert.f_arch = arch;
           f_members =
             List.mapi
               (fun j l ->
                 {
                   Certify.Fuse_cert.m_layer = l;
                   m_keep_output = j < Array.length members - 1 && keep.(j);
                   m_weights_resident = wres.(j);
                 })
               group.Chain.members;
           f_bands = bands;
           f_gb_reserve_bytes = gb_reserve_bytes;
           f_peak_gb_bytes = a.a_peak_bytes;
           f_dram_words = a.a_dram_words;
         }
       in
       (match Certify.Fuse_cert.check claim with
        | Certify.Certificate.Certified ->
          Telemetry.Metrics.incr m_fused;
          {
            base with
            g_outcome =
              Fused
                {
                  f_bands = bands;
                  f_keep = Array.to_list keep;
                  f_wres = Array.to_list wres;
                  f_gb_reserve_bytes = gb_reserve_bytes;
                  f_peak_gb_bytes = a.a_peak_bytes;
                  f_dram_words = a.a_dram_words;
                };
          }
        | Certify.Certificate.Violated _ as cert ->
          (* an uncertified fused schedule never serves *)
          Telemetry.Metrics.incr m_cert_failures;
          degrade
            (match Certify.Certificate.to_failure cert with
             | Some f -> [ f ]
             | None -> [ Robust.Failure.Certification_failed "fuse: unknown" ])))

let group_savings gp =
  match gp.g_outcome with
  | Independent _ -> 0
  | Fused f -> max 0 (gp.g_independent_words - f.f_dram_words)

let plan_network ?(mode = Chains) ?(max_group = 3) ?node_limit ?time_limit
    ?deadline ?gb_reserve_bytes (arch : Spec.t) (net : Network.t) =
  let sp = Telemetry.Trace.begin_span ~cat:"fuse" "fuse.plan" in
  let groups = Chain.derive ~max_group net in
  let plans =
    List.map
      (fun g ->
        let gp = plan_group ?node_limit ?time_limit ?deadline ?gb_reserve_bytes arch g in
        match (mode, gp.g_outcome) with
        | Auto, Fused f when f.f_dram_words >= gp.g_independent_words ->
          (* certified but not beneficial: Auto serves the baseline *)
          Telemetry.Metrics.incr m_not_beneficial;
          { gp with g_outcome = Independent [] }
        | _ -> gp)
      groups
  in
  let instances_total = Network.layer_count net in
  let independent_total =
    List.fold_left
      (fun acc (e : Network.entry) ->
        acc + (e.Network.repeats * independent_words e.Network.layer))
      0 net.Network.entries
  in
  let saved =
    List.fold_left
      (fun acc gp -> acc + (gp.g_group.Chain.count * group_savings gp))
      0 plans
  in
  let r =
    {
      p_network = net.Network.nname;
      p_mode = mode;
      p_max_group = max_group;
      p_groups = plans;
      p_grouped_instances = Chain.grouped_instances groups;
      p_instances = instances_total;
      p_independent_dram_words = independent_total;
      p_fused_dram_words = independent_total - saved;
    }
  in
  Telemetry.Trace.end_span
    ~args:
      [ ("network", net.Network.nname);
        ("groups", string_of_int (List.length plans));
        ("fused",
         string_of_int
           (List.length
              (List.filter
                 (fun gp -> match gp.g_outcome with Fused _ -> true | _ -> false)
                 plans)));
        ("saved_words", string_of_int saved) ]
    sp;
  r

let network_plan_to_string p =
  let buf = Buffer.create 1024 in
  let tab =
    Prim.Texttab.create
      [ "group"; "x"; "outcome"; "bands"; "peak GB (B)"; "dram (words)";
        "indep (words)"; "saved" ]
  in
  List.iter
    (fun gp ->
      let chain =
        String.concat "->"
          (List.map (fun (l : Layer.t) -> l.Layer.name) gp.g_group.Chain.members)
      in
      match gp.g_outcome with
      | Fused f ->
        let saved = gp.g_independent_words - f.f_dram_words in
        Prim.Texttab.add_row tab
          [ chain; string_of_int gp.g_group.Chain.count; "fused";
            string_of_int f.f_bands; string_of_int f.f_peak_gb_bytes;
            string_of_int f.f_dram_words; string_of_int gp.g_independent_words;
            Printf.sprintf "%.1f%%"
              (100. *. float_of_int saved /. float_of_int gp.g_independent_words) ]
      | Independent [] ->
        Prim.Texttab.add_row tab
          [ chain; string_of_int gp.g_group.Chain.count; "independent"; "-"; "-";
            string_of_int gp.g_independent_words;
            string_of_int gp.g_independent_words; "0.0%" ]
      | Independent fs ->
        Prim.Texttab.add_row tab
          [ chain; string_of_int gp.g_group.Chain.count;
            "degraded: " ^ Robust.Failure.to_string (List.hd fs); "-"; "-";
            string_of_int gp.g_independent_words;
            string_of_int gp.g_independent_words; "0.0%" ])
    p.p_groups;
  Buffer.add_string buf (Prim.Texttab.render tab);
  let saved = p.p_independent_dram_words - p.p_fused_dram_words in
  Buffer.add_string buf
    (Printf.sprintf
       "fusion (%s, max group %d): %d groups over %d/%d instances\n\
        off-chip words: independent %d, fused %d (saved %d, %.1f%%)\n"
       (mode_to_string p.p_mode) p.p_max_group (List.length p.p_groups)
       p.p_grouped_instances p.p_instances p.p_independent_dram_words
       p.p_fused_dram_words saved
       (if p.p_independent_dram_words = 0 then 0.
        else 100. *. float_of_int saved /. float_of_int p.p_independent_dram_words));
  Buffer.contents buf

(* ---- DRAM access traces (for the cycle-level DRAM-model validation) --- *)

type transfer = {
  t_region : int;
  t_words : int;
  t_write : bool;
}

(* Region numbering shared by both traces: 0 = group input, 1..nm-1 = edge
   i (output of member i-1, i.e. region i = edge index i-1 + 1), nm = final
   output, nm+1+j = member j's weights. *)
let fused_trace (group : Chain.group) (f : fused) =
  let members = Array.of_list group.Chain.members in
  let nm = Array.length members in
  let keep = Array.of_list f.f_keep and wres = Array.of_list f.f_wres in
  let q_last = members.(nm - 1).Layer.q in
  let n_batch = members.(0).Layer.n in
  let edge_words i need = need * members.(i).Layer.p * members.(i).Layer.k * n_batch in
  let out = ref [] in
  let emit region words write =
    if words > 0 then out := { t_region = region; t_words = words; t_write = write } :: !out
  in
  for t = 0 to f.f_bands - 1 do
    let need = Array.make nm 0 in
    need.(nm - 1) <- band_rows ~total:q_last ~bands:f.f_bands t;
    for j = nm - 1 downto 1 do
      let l = members.(j) in
      need.(j - 1) <-
        min members.(j - 1).Layer.q (((need.(j) - 1) * l.Layer.stride) + l.Layer.s)
    done;
    let l0 = members.(0) in
    let in_rows = ((need.(0) - 1) * l0.Layer.stride) + l0.Layer.s in
    emit 0 (in_rows * Layer.input_width l0 * l0.Layer.c * n_batch) false;
    for j = 0 to nm - 2 do
      if not keep.(j) then begin
        emit (j + 1) (edge_words j need.(j)) true;
        emit (j + 1) (edge_words j need.(j)) false
      end
    done;
    emit nm (edge_words (nm - 1) need.(nm - 1)) true
  done;
  for j = 0 to nm - 1 do
    let w =
      members.(j).Layer.r * members.(j).Layer.s * members.(j).Layer.c
      * members.(j).Layer.k
    in
    emit (nm + 1 + j) (if wres.(j) then w else w * f.f_bands) false
  done;
  List.rev !out

let independent_trace (group : Chain.group) =
  let members = Array.of_list group.Chain.members in
  let nm = Array.length members in
  let out = ref [] in
  let emit region words write =
    if words > 0 then out := { t_region = region; t_words = words; t_write = write } :: !out
  in
  for j = 0 to nm - 1 do
    let l = members.(j) in
    emit j (Layer.tensor_words l Dims.IA) false;
    emit (nm + 1 + j) (Layer.tensor_words l Dims.W) false;
    emit (j + 1) (Layer.tensor_words l Dims.OA) true
  done;
  List.rev !out
