(** SLO-aware admission control: queue bound, per-client token-bucket
    quotas, overload shedding, and deadline-aware degradation-ladder rung
    selection.

    The controller estimates each request's serve cost per ladder rung as
    [probe + (1 - p_hit) * solve_p95(rung)] — cache-hit probability from
    the schedule cache, p95 solve cost from a sliding window of this
    daemon's own recent serves (pessimistic priors until warm) — and
    admits at the highest rung fitting [safety * remaining_budget], where
    the remaining budget discounts the estimated queue delay. Requests no
    rung can serve in time are rejected up front with
    {!Protocol.Deadline_unmeetable}, before any solver work is spent.

    Not thread-safe on its own: the server serialises all calls under its
    state lock. *)

type config = {
  queue_capacity : int;  (** bounded request queue; at capacity → [Queue_full] *)
  quota_rate : float;  (** tokens/second/client; [<= 0] disables quotas *)
  quota_burst : float;  (** token-bucket capacity *)
  shed_delay_s : float;  (** estimated queue delay beyond this → [Shedding] *)
  safety : float;  (** fraction of remaining budget a rung may claim *)
  min_samples : int;  (** window samples before telemetry overrides priors *)
  priors : (Robust.Ladder.rung * float) list;  (** cold-start cost estimates *)
}

val default_config :
  ?queue_capacity:int ->
  ?quota_rate:float ->
  ?quota_burst:float ->
  ?shed_delay_s:float ->
  ?safety:float ->
  ?min_samples:int ->
  ?time_limit:float ->
  unit ->
  config
(** Priors scale with [time_limit] (default 4 s): a joint solve is assumed
    to cost the full limit until observed otherwise. Quotas default off. *)

type t

val create : config -> t
val config : t -> config

val observe : t -> Robust.Ladder.rung -> float -> unit
(** Feed the observed serve cost of a completed request back into the
    rung's sliding window. *)

val rung_cost : t -> Robust.Ladder.rung -> float
(** Current cost estimate for one rung: window p95, or the prior while
    fewer than [min_samples] observations exist. *)

val estimates : t -> hit_rate:float -> Robust.Ladder.estimate list
(** Per-rung expected serve cost at the given cache-hit probability. *)

val introspect : t -> (Robust.Ladder.rung * int * float) list
(** Read-only view for the daemon's Stats frame: per rung,
    [(rung, window samples, current cost estimate)]. Never mutates
    windows or quota buckets — introspection cannot shift admission
    decisions. Call under the same lock as {!observe}/{!decide}. *)

val decide :
  t ->
  now:float ->
  client:string ->
  budget_s:float ->
  queue_depth:int ->
  queue_delay_s:float ->
  hit_rate:float ->
  (Robust.Ladder.rung, Protocol.reject_reason) result
(** The admission decision, in rejection-priority order: queue bound,
    client quota (consumes a token only if the bucket has one), overload
    shed, then rung selection against the post-queue-delay budget. *)
