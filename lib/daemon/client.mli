(** Blocking client for the daemon's wire protocol. *)

type t

val connect : ?timeout_s:float -> string -> (t, string) result
(** Connect to the daemon's Unix-domain socket. [timeout_s > 0] arms
    send/receive timeouts so a wedged server yields [Error], not a hang. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One request/response exchange. The connection stays usable for
    further requests after [Ok]; after [Error] it should be closed. *)

val close : t -> unit

val one_shot :
  ?timeout_s:float -> string -> Protocol.request -> (Protocol.response, string) result
(** Connect, exchange one request, close. *)
