(** Blocking client for the daemon's wire protocol, with bounded-retry
    multi-endpoint failover for cluster deployments. *)

type t

type endpoint =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val endpoint_of_string : string -> endpoint
(** ["host:port"] with a numeric port and no ['/'] parses as {!Tcp};
    anything else is a {!Unix_path}. *)

val endpoint_to_string : endpoint -> string

val connect : ?timeout_s:float -> string -> (t, string) result
(** Connect to the daemon's Unix-domain socket. [timeout_s > 0] bounds
    the connect itself (non-blocking connect + select, so a black-holed
    peer costs at most the budget, not the kernel's ~minutes timeout)
    and arms send/receive timeouts so a wedged server yields [Error],
    not a hang. *)

val connect_ep : ?timeout_s:float -> endpoint -> (t, string) result
(** Connect to either endpoint kind (TCP connections set TCP_NODELAY). *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One request/response exchange. The connection stays usable for
    further requests after [Ok]; after [Error] it should be closed. *)

val close : t -> unit

val one_shot :
  ?timeout_s:float -> string -> Protocol.request -> (Protocol.response, string) result
(** Connect, exchange one request, close. *)

val one_shot_ep :
  ?timeout_s:float -> endpoint -> Protocol.request -> (Protocol.response, string) result

val stats : t -> Protocol.stats_scope -> (string, string) result
(** One stats query on an open connection: the payload is the snapshot
    JSON ([Stats_full]), the flight-recorder JSON array ([Stats_flight])
    or Prometheus text ([Stats_prometheus]). The server answers inline —
    a stats query is never queued, counted or admission-priced. *)

val stats_ep :
  ?timeout_s:float -> endpoint -> Protocol.stats_scope -> (string, string) result
(** Connect, run one stats query, close — the ops CLI's path. *)

val request_failover :
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_max_s:float ->
  ?jitter:float ->
  ?seed:int ->
  ?timeout_s:float ->
  endpoints:endpoint list ->
  Protocol.request ->
  (Protocol.response, string) result
(** Try each endpoint in order; on transport failure move to the next
    ([cluster.failovers]), and when every endpoint failed sleep an
    exponentially growing backoff with deterministic jitter from [seed]
    and start over, up to [retries] extra attempts ([cluster.client_retries]).

    Any *decoded* response — [Scheduled], [Rejected], [Failed] — is a
    terminal outcome from a live server and is returned without retrying:
    retrying a typed rejection would defeat the server's calibrated
    backpressure. A response frame that fails to decode (protocol
    version/magic mismatch, deterministic corruption) is equally
    terminal — it is a permanent property of the peer, so it is returned
    as [Error] immediately instead of burning retries and backoff. Only
    transport failures (refused/reset/timed-out connections, torn
    frames, read timeouts) are retried. [Error] carries the concatenated
    per-endpoint transport errors of every attempt. *)
