(** Length-prefixed binary wire protocol for the scheduling daemon.

    A frame is a 4-byte big-endian payload length followed by a payload
    opening with magic and version bytes, a message tag, and fixed-width
    big-endian fields (floats as IEEE-754 bit patterns, strings
    length-prefixed). Decoding is total: malformed input yields [Error],
    never an exception, and announced frame lengths beyond {!max_frame}
    are refused before allocation. *)

val magic : int
val version : int

val max_frame : int
(** Hard cap on payload size, both written and accepted. *)

type target =
  | Layer of string  (** one layer by zoo name — the interactive request *)
  | Network of string  (** a whole network by name — the batch request *)

type request = {
  client : string;  (** quota identity; [""] shares the anonymous bucket *)
  budget_s : float;  (** SLO budget from arrival (seconds); [<= 0] = server default *)
  arch : string;  (** architecture name (e.g. ["baseline"]) *)
  target : target;
  cache_only : bool;
      (** peer cache probe: serve from the local cache or answer a typed
          rejection — never solve, never cascade to further peers *)
  req_id : int64;
      (** request-scoped trace id, rendered as 16 hex digits everywhere
          ([Telemetry.Trace.request_id_hex]). [0L] = unassigned: the
          server mints one on arrival. Peer probes forward the
          originating id, so one id stitches client → daemon → peer into
          a single causal chain across trace, log and flight recorder. *)
  hop : int;
      (** origin hop count: 0 at the client, +1 per daemon-to-peer hop
          (wire range 0..255) *)
}

(** Why a request was refused. Every overload path answers with one of
    these — the daemon never drops a request silently. *)
type reject_reason =
  | Queue_full  (** the bounded request queue is at capacity *)
  | Quota_exceeded  (** the client's token bucket is empty *)
  | Shedding  (** overload shedding or server draining *)
  | Deadline_unmeetable
      (** no degradation-ladder rung fits the remaining SLO budget (also:
          a cache-only probe that missed) *)

val reject_reason_to_string : reject_reason -> string

type served_layer = {
  name : string;
  repeats : int;
  origin : string;  (** cache(mem) / cache(disk) / ladder-rung name *)
  verdict : string;  (** certification verdict token *)
  record : string;
      (** full [Mapping_io] provenance record: clients can parse it back
          and re-certify the schedule in exact arithmetic *)
}

type scheduled = {
  rung : Robust.Ladder.rung;  (** the rung admission selected *)
  layers : served_layer list;
  total_latency : float;  (** repetition-weighted model cycles *)
  total_energy_pj : float;
  queue_wait_s : float;
  serve_s : float;  (** admission to response, server-side *)
}

type response =
  | Scheduled of scheduled
  | Rejected of reject_reason
  | Failed of string  (** typed failure text; never a silent drop *)
  | Stats of string
      (** introspection payload (JSON snapshot or Prometheus text),
          answered inline on the connection thread — never queued *)

(** What a stats query asks the daemon for. *)
type stats_scope =
  | Stats_full  (** the versioned JSON snapshot (metrics, admission,
                    shards, peers, flight recorder) *)
  | Stats_flight  (** just the flight-recorder ring, as JSON *)
  | Stats_prometheus  (** metrics-only Prometheus text exposition *)

(** A server-side frame: a scheduling request or a stats query. *)
type incoming = Req of request | Stats_query of stats_scope

val encode_request : request -> bytes
val decode_request : bytes -> (request, string) result
val encode_stats_request : stats_scope -> bytes
val decode_incoming : bytes -> (incoming, string) result
val encode_response : response -> bytes
val decode_response : bytes -> (response, string) result

val write_frame : Unix.file_descr -> bytes -> unit
(** Write one length-prefixed frame, retrying short writes. Raises
    [Unix.Unix_error] on a dead peer (callers handle/ignore EPIPE). *)

val read_frame : Unix.file_descr -> (bytes option, string) result
(** Read one frame. [Ok None] is a clean EOF at a frame boundary;
    [Error _] covers mid-frame EOF, oversized announcements, and read
    failures. *)

val read_frame_timeout :
  Unix.file_descr -> [ `Frame of bytes | `Eof | `Idle | `Error of string ]
(** Like {!read_frame} on a descriptor carrying a receive timeout
    (SO_RCVTIMEO). A timeout at a frame boundary (zero header bytes read)
    is [`Idle] — benign, the caller chooses to wait more or reap the
    connection. A timeout mid-frame is a hard [`Error]: the peer stalled
    inside a frame (torn write, wedged client) and the connection is
    poisoned. *)

val write_torn_frame : Unix.file_descr -> bytes -> unit
(** Fault-injection helper: write a frame header promising the full
    payload, then only the first half of the bytes — the torn write a peer
    crash mid-response produces. *)
