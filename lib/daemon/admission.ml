(* SLO-aware admission control.

   Admission decides, at arrival time, whether a request can meet its
   deadline at all — and at which degradation-ladder rung — instead of
   letting a doomed solve discover the deadline mid-pivot. The decision
   chain is:

     queue bound -> per-client token bucket -> overload shed -> rung fit

   Rung fit estimates this request's serve cost per rung as

     cost(rung) = probe_cost + (1 - p_hit) * solve_cost_p95(rung)

   where [p_hit] is the schedule cache's observed hit rate and
   [solve_cost_p95] comes from a sliding window of this daemon's own
   recent serve times at that rung (cold-start priors until enough
   samples accumulate). [Robust.Ladder.select] then picks the highest
   rung whose estimated cost fits within [safety * remaining_budget],
   where the remaining budget already discounts the estimated queue
   delay ahead of this request. A request no rung can serve in time is
   rejected up front — typed, before any work is spent on it. *)

type config = {
  queue_capacity : int;  (* bounded request queue; at capacity -> Queue_full *)
  quota_rate : float;  (* tokens/second/client; <= 0 disables quotas *)
  quota_burst : float;  (* bucket capacity *)
  shed_delay_s : float;  (* estimated queue delay beyond this -> Shedding *)
  safety : float;  (* fraction of remaining budget a rung may claim *)
  min_samples : int;  (* window samples before telemetry overrides priors *)
  priors : (Robust.Ladder.rung * float) list;  (* cold-start cost estimates *)
}

(* Priors are deliberately pessimistic multiples of the configured solve
   budget: until the daemon has seen real solves, admission assumes a MIP
   rung costs its full time limit. *)
let default_config ?(queue_capacity = 64) ?(quota_rate = 0.) ?(quota_burst = 8.)
    ?(shed_delay_s = 30.) ?(safety = 0.8) ?(min_samples = 8) ?(time_limit = 4.) () =
  {
    queue_capacity;
    quota_rate;
    quota_burst;
    shed_delay_s;
    safety;
    min_samples;
    priors =
      [ (Robust.Ladder.Joint, time_limit);
        (Robust.Ladder.Two_stage, 0.5 *. time_limit);
        (Robust.Ladder.Heuristic, 0.05);
        (Robust.Ladder.Cache_probe, 0.005) ];
  }

(* Sliding window of recent serve costs for one rung. *)
type window = { samples : float array; mutable n : int; mutable next : int }

let window_size = 64

type bucket = { mutable tokens : float; mutable last : float }

type t = {
  cfg : config;
  windows : (Robust.Ladder.rung * window) list;
  buckets : (string, bucket) Hashtbl.t;
}

let create cfg =
  {
    cfg;
    windows =
      List.map
        (fun r -> (r, { samples = Array.make window_size 0.; n = 0; next = 0 }))
        Robust.Ladder.all;
    buckets = Hashtbl.create 16;
  }

let config t = t.cfg

(* Record the observed serve cost of a completed request at [rung]. *)
let observe t rung cost_s =
  match List.assoc_opt rung t.windows with
  | None -> ()
  | Some w ->
    w.samples.(w.next) <- cost_s;
    w.next <- (w.next + 1) mod window_size;
    if w.n < window_size then w.n <- w.n + 1

let prior t rung = try List.assoc rung t.cfg.priors with Not_found -> infinity

(* p95 of the rung's recent serve costs; the prior until the window holds
   [min_samples] points (and never below the floor the window itself
   justifies — a handful of lucky fast solves must not talk admission
   into optimism the prior contradicts). *)
let rung_cost t rung =
  match List.assoc_opt rung t.windows with
  | None -> prior t rung
  | Some w ->
    if w.n < t.cfg.min_samples then prior t rung
    else
      Prim.Stats.percentile 95. (Array.to_list (Array.sub w.samples 0 w.n))

(* Read-only view for the daemon's Stats frame: per rung, how many
   window samples back the estimate and what the current cost is. Never
   touches the windows or buckets, so introspection cannot shift
   admission decisions. *)
let introspect t =
  List.map
    (fun (rung, w) -> (rung, w.n, rung_cost t rung))
    t.windows

(* Estimated serve cost per rung for one request, given the cache-hit
   probability: every rung pays the probe, and pays its solve cost only
   on a miss. [Cache_probe] is pure probe — its "miss cost" is rejection,
   priced at zero here and answered typed downstream. *)
let estimates t ~hit_rate =
  let p_hit = Float.max 0. (Float.min 1. hit_rate) in
  let probe = rung_cost t Robust.Ladder.Cache_probe in
  List.map
    (fun rung ->
      let cost_s =
        if Robust.Ladder.equal rung Robust.Ladder.Cache_probe then probe
        else probe +. ((1. -. p_hit) *. rung_cost t rung)
      in
      { Robust.Ladder.rung; cost_s })
    Robust.Ladder.all

(* Token bucket, refilled lazily at [quota_rate] tokens/second up to
   [quota_burst]. One token per request. *)
let quota_ok t ~now client =
  if t.cfg.quota_rate <= 0. then true
  else begin
    let b =
      match Hashtbl.find_opt t.buckets client with
      | Some b -> b
      | None ->
        let b = { tokens = t.cfg.quota_burst; last = now } in
        Hashtbl.add t.buckets client b;
        b
    in
    b.tokens <-
      Float.min t.cfg.quota_burst (b.tokens +. ((now -. b.last) *. t.cfg.quota_rate));
    b.last <- now;
    if b.tokens >= 1. then begin
      b.tokens <- b.tokens -. 1.;
      true
    end
    else false
  end

(* The admission decision. [queue_delay_s] is the estimated cost of the
   work already queued ahead of this request; the rung must fit in what
   is left of the budget after waiting it out. *)
let decide t ~now ~client ~budget_s ~queue_depth ~queue_delay_s ~hit_rate =
  if queue_depth >= t.cfg.queue_capacity then Error Protocol.Queue_full
  else if not (quota_ok t ~now client) then Error Protocol.Quota_exceeded
  else if queue_delay_s > t.cfg.shed_delay_s then Error Protocol.Shedding
  else begin
    let remaining = budget_s -. queue_delay_s in
    let budget = t.cfg.safety *. remaining in
    match Robust.Ladder.select ~budget (estimates t ~hit_rate) with
    | Some rung -> Ok rung
    | None -> Error Protocol.Deadline_unmeetable
  end
