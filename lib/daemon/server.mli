(** The persistent scheduling daemon: a Unix-domain-socket (plus optional
    TCP) server with a bounded request queue, SLO-aware admission
    ({!Admission}), typed backpressure, graceful drain, and crash-safe
    cache persistence.

    Threading: systhreads on one OCaml domain — an accept loop (which also
    ticks injected housekeeping such as peer health probes), one thread
    per connection, and a single solver thread. By default the server owns
    a plain schedule cache confined to the solver thread; injecting a
    thread-safe {!Serve.Service.cache_tier} (the sharded cluster cache)
    additionally unlocks the cache fast path, where connection threads
    answer pure cache hits inline and only misses reach the solver
    thread. Parallelism inside a solve comes from {!Serve.Service}'s
    domain pool, driven by the solver thread. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (** additional TCP listener (bind host, port) speaking the same
          protocol — the multi-host transport *)
  service : Serve.Service.config;
      (** base architecture/strategy/budgets; per-request deadlines and
          rung overrides are applied on top *)
  admission : Admission.config;
  cache_dir : string option;  (** enables the persistent disk tier *)
  cache_capacity : int;
  default_budget_s : float;  (** budget for requests that carry none *)
  tier : Serve.Service.cache_tier option;
      (** injected thread-safe cache tier; absent = own plain cache,
          solver-thread confined (the single-box daemon) *)
  remote_probe :
    (arch:Spec.t ->
    layer:Layer.t ->
    Serve.Fingerprint.t ->
    Serve.Schedule_cache.entry option)
      option;
      (** warm-peer lookup composed behind local misses on the solver
          path. Contract: implementations re-certify every record in
          exact arithmetic before returning it; verified entries are
          stored back into the local tier and served as [Cache_peer]. *)
  housekeeping : (unit -> unit) option;
      (** ticked by the accept loop every select round (~50ms); cluster
          deployments drive peer health checks from here *)
  read_deadline_s : float;
      (** per-connection receive deadline; a peer stalling mid-frame this
          long poisons the connection. [<= 0] disables. *)
  write_deadline_s : float;
      (** per-connection send deadline (SO_SNDTIMEO): a client that stops
          reading makes the response write fail after this long and the
          connection is treated as dead, instead of pinning its thread
          (and the drain) in a blocked write. [<= 0] disables. *)
  drain_deadline_s : float;
      (** graceful-drain backstop: if the drain has not quiesced after
          this long, still-busy connections are force-shutdown (re-armed
          per interval) so SIGTERM cannot hang on a wedged client.
          [<= 0] waits indefinitely. *)
  idle_timeout_s : float;
      (** reap connections idle (no frame) this long; [<= 0] disables *)
  tmp_sweep_age_s : float;
      (** stale temp-file sweep age threshold for the server-owned cache
          ([0.] = sweep all, the historical behavior) *)
  fault_crash_exit : bool;
      (** honor the [net.peer_crash] fault site with a process exit(42)
          mid-response — chaos harnesses only *)
  flight_capacity : int;
      (** flight-recorder ring size: the last N per-request records
          readable through the Stats frame (min 16; always on, not gated
          on the telemetry sink) *)
  stats_extra : (string * (unit -> string)) list;
      (** extra named JSON sections appended to the [Stats_full]
          snapshot; cluster wiring injects ["shards"] and ["peers"]
          here. Thunks must return valid JSON and be safe to call from a
          connection thread. *)
}

val config :
  ?admission:Admission.config ->
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?default_budget_s:float ->
  ?tcp:string * int ->
  ?tier:Serve.Service.cache_tier ->
  ?remote_probe:
    (arch:Spec.t ->
    layer:Layer.t ->
    Serve.Fingerprint.t ->
    Serve.Schedule_cache.entry option) ->
  ?housekeeping:(unit -> unit) ->
  ?read_deadline_s:float ->
  ?write_deadline_s:float ->
  ?drain_deadline_s:float ->
  ?idle_timeout_s:float ->
  ?tmp_sweep_age_s:float ->
  ?fault_crash_exit:bool ->
  ?flight_capacity:int ->
  ?stats_extra:(string * (unit -> string)) list ->
  socket_path:string ->
  Serve.Service.config ->
  config
(** Defaults: no TCP listener, no injected tier/peers/housekeeping,
    [read_deadline_s 30.], [write_deadline_s 30.], [drain_deadline_s 30.],
    [idle_timeout_s 300.], [tmp_sweep_age_s 0.],
    [fault_crash_exit false], [flight_capacity 256], no extra stats
    sections. *)

type stats = {
  mutable received : int;
  mutable admitted : int;
  mutable served : int;
  mutable failed : int;
  mutable rejected_queue_full : int;
  mutable rejected_quota : int;
  mutable rejected_shedding : int;
  mutable rejected_deadline : int;
      (** unmeetable at admission, plus admitted requests whose budget
          the queue wait consumed (re-checked at dequeue), plus
          cache-only probes that missed *)
  mutable max_queue_depth : int;
  mutable fastpath_served : int;
      (** cache hits answered inline on connection threads (requires an
          injected thread-safe tier) *)
  mutable reaped : int;  (** idle connections closed by the reaper *)
  mutable persisted : int;  (** cache records written by the drain *)
}

type t

val create : config -> t

val run : t -> unit
(** Serve on the calling thread until {!shutdown}, then drain: stop
    accepting, answer everything queued or in flight, persist the
    schedule cache (crash-safe writes), close connections, return. *)

val start : t -> Thread.t
(** [run] on a background thread; {!shutdown} then [Thread.join] the
    result to stop. *)

val shutdown : t -> unit
(** Request a graceful drain. One atomic store — safe from a signal
    handler; the accept loop notices within one select tick. *)

val draining : t -> bool

val wait_ready : t -> unit
(** Block until the listening sockets are bound (at most once per [t]). *)

val stats : t -> stats
(** A consistent snapshot. *)

val tier : t -> Serve.Service.cache_tier
(** The server's local cache tier (injected or its own plain cache) —
    exposed for drain/restart tests. *)

val process_request : t -> Protocol.request -> Protocol.response
(** The full admission + serve path, bypassing the socket — what a
    connection thread runs per frame. Exposed for in-process harnesses
    (the soak bench drives overload through it without socket limits);
    requires {!run}/{!start} to be active so the solver thread exists.
    Mints a request id when the request carries [0L], binds it to the
    calling thread ([Telemetry.Trace.with_request]) for the duration,
    and writes a flight-recorder record on every outcome. *)

val stats_payload : t -> Protocol.stats_scope -> string
(** The Stats frame payload: the versioned JSON snapshot
    ([Stats_full]), the flight-recorder ring as a JSON array
    ([Stats_flight]), or Prometheus text ([Stats_prometheus]).
    Strictly read-only — consults the cache tier only through
    [tier_stats]/[tier_hit_rate] (never find/peek, so no miss is
    booked), copies the stats mirrors under the lock, and never touches
    the solver thread; answering a stats query cannot perturb admission
    pricing or hit-rate accounting. *)
