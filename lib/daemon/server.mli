(** The persistent scheduling daemon: a Unix-domain-socket server with a
    bounded request queue, SLO-aware admission ({!Admission}), typed
    backpressure, graceful drain, and crash-safe cache persistence.

    Threading: systhreads on one OCaml domain — an accept loop, one
    thread per connection, and a single solver thread that owns all
    schedule-cache traffic (the cache is not domain-safe). Parallelism
    comes from the solve fan-out inside {!Serve.Service}, whose domain
    pool the solver thread drives. *)

type config = {
  socket_path : string;
  service : Serve.Service.config;
      (** base architecture/strategy/budgets; per-request deadlines and
          rung overrides are applied on top *)
  admission : Admission.config;
  cache_dir : string option;  (** enables the persistent disk tier *)
  cache_capacity : int;
  default_budget_s : float;  (** budget for requests that carry none *)
}

val config :
  ?admission:Admission.config ->
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?default_budget_s:float ->
  socket_path:string ->
  Serve.Service.config ->
  config

type stats = {
  mutable received : int;
  mutable admitted : int;
  mutable served : int;
  mutable failed : int;
  mutable rejected_queue_full : int;
  mutable rejected_quota : int;
  mutable rejected_shedding : int;
  mutable rejected_deadline : int;
      (** unmeetable at admission, plus admitted requests whose budget
          the queue wait consumed (re-checked at dequeue) *)
  mutable max_queue_depth : int;
  mutable persisted : int;  (** cache records written by the drain *)
}

type t

val create : config -> t

val run : t -> unit
(** Serve on the calling thread until {!shutdown}, then drain: stop
    accepting, answer everything queued or in flight, persist the
    schedule cache (crash-safe writes), close connections, return. *)

val start : t -> Thread.t
(** [run] on a background thread; {!shutdown} then [Thread.join] the
    result to stop. *)

val shutdown : t -> unit
(** Request a graceful drain. One atomic store — safe from a signal
    handler; the accept loop notices within one select tick. *)

val draining : t -> bool

val wait_ready : t -> unit
(** Block until the listening socket is bound (at most once per [t]). *)

val stats : t -> stats
(** A consistent snapshot. *)

val cache : t -> Serve.Schedule_cache.t
(** The server's schedule cache — exposed for drain/restart tests. *)

val process_request : t -> Protocol.request -> Protocol.response
(** The full admission + serve path, bypassing the socket — what a
    connection thread runs per frame. Exposed for in-process harnesses
    (the soak bench drives overload through it without socket limits);
    requires {!run}/{!start} to be active so the solver thread exists. *)
