(* Client side of the daemon protocol: connect, exchange one frame per
   request, close. Blocking, with an optional receive timeout so a hung
   server surfaces as a typed error rather than a wedged client. *)

type t = { fd : Unix.file_descr }

let connect ?(timeout_s = 0.) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    if timeout_s > 0. then begin
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
       with Unix.Unix_error _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
       with Unix.Unix_error _ -> ())
    end;
    Ok { fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req =
  match Protocol.write_frame t.fd (Protocol.encode_request req) with
  | () ->
    (match Protocol.read_frame t.fd with
     | Ok (Some payload) -> Protocol.decode_response payload
     | Ok None -> Error "server closed the connection"
     | Error msg -> Error msg
     | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* Connect, send one request, close — the CLI's path. *)
let one_shot ?timeout_s path req =
  match connect ?timeout_s:(Option.map Fun.id timeout_s) path with
  | Error _ as e -> e
  | Ok t ->
    let r = request t req in
    close t;
    r
