(* Client side of the daemon protocol: connect, exchange one frame per
   request, close. Blocking, with an optional receive timeout so a hung
   server surfaces as a typed error rather than a wedged client.

   [request_failover] is the cluster-aware entry point: bounded retries
   with exponential backoff + deterministic jitter across a list of
   endpoints. The retry discipline is strict about what a "failure" is —
   any decoded response (Scheduled, Rejected, Failed) is a *terminal*
   outcome from a live server and is returned as-is, and so is a
   response that decodes to a protocol error (a version/magic mismatch
   is permanent, not transient); only transport failures (connect
   refused/timed out, reset, torn frame, read timeout) burn a retry and
   move to the next endpoint. Retrying a typed rejection would turn the
   server's calibrated backpressure into an accidental DoS. *)

let m_retries = Telemetry.Metrics.counter "cluster.client_retries"
let m_failovers = Telemetry.Metrics.counter "cluster.failovers"

type endpoint = Unix_path of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* "host:port" with a numeric port and no '/' parses as TCP; anything else
   is a Unix socket path (paths may legitimately contain ':', but then
   they contain '/' too in practice). *)
let endpoint_of_string s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 && not (String.contains s '/') ->
    (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
     | Some port when port > 0 && port < 65536 -> Tcp (String.sub s 0 i, port)
     | _ -> Unix_path s)
  | _ -> Unix_path s

type t = { fd : Unix.file_descr }

let addr_of_endpoint = function
  | Unix_path path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
    (match Unix.inet_addr_of_string host with
     | a -> Ok (Unix.ADDR_INET (a, port))
     | exception Failure _ ->
       (match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Error (Printf.sprintf "cannot resolve host %S" host)
        | he -> Ok (Unix.ADDR_INET (he.Unix.h_addr_list.(0), port))))

(* Bounded connect. [Unix.connect] on a blocking socket is bounded only
   by the kernel's own timeout (~minutes for a black-holed TCP peer),
   which would let one dead peer stall whatever thread is probing it —
   the daemon's accept loop for health ticks, the solver thread for
   cache probes. So under a timeout the socket goes non-blocking for the
   connect itself (EINPROGRESS, then select bounded by the remaining
   budget, then the pending SO_ERROR), and back to blocking for the
   exchange. *)
let connect_bounded fd addr timeout_s =
  Unix.set_nonblock fd;
  let connected () =
    Unix.clear_nonblock fd;
    Ok ()
  in
  match Unix.connect fd addr with
  | () -> connected ()
  | exception
      Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
    let deadline = Robust.Deadline.now () +. timeout_s in
    let rec wait () =
      let remaining = deadline -. Robust.Deadline.now () in
      if remaining <= 0. then Error Unix.ETIMEDOUT
      else
        match Unix.select [] [ fd ] [ fd ] remaining with
        | [], [], [] -> Error Unix.ETIMEDOUT
        | _ ->
          (match Unix.getsockopt_error fd with
           | None -> connected ()
           | Some e -> Error e)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    wait ()
  | exception Unix.Unix_error (e, _, _) -> Error e

let connect_ep ?(timeout_s = 0.) ep =
  match addr_of_endpoint ep with
  | Error _ as e -> e
  | Ok addr ->
    let domain = match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    let connected =
      if timeout_s > 0. then connect_bounded fd addr timeout_s
      else
        match Unix.connect fd addr with
        | () -> Ok ()
        | exception Unix.Unix_error (e, _, _) -> Error e
    in
    (match connected with
     | Ok () ->
       (match addr with
        | Unix.ADDR_INET _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
        | _ -> ());
       if timeout_s > 0. then begin
         (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
          with Unix.Unix_error _ -> ());
         (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
          with Unix.Unix_error _ -> ())
       end;
       Ok { fd }
     | Error e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Error
         (Printf.sprintf "connect %s: %s" (endpoint_to_string ep) (Unix.error_message e)))

let connect ?timeout_s path = connect_ep ?timeout_s (Unix_path path)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* The retry discipline needs to know *why* an exchange failed. A
   [Transport] failure (refused/reset connection, torn frame, read
   timeout) may be a transient network event and is worth a retry or a
   failover. A [Protocol_error] — a complete, well-framed payload that
   does not decode, which is how a version/magic mismatch between
   deployments surfaces — is a permanent property of the peer: every
   retry against every endpoint of that deployment would fail the same
   way, so it must be returned immediately as terminal. *)
type wire_error = Transport of string | Protocol_error of string

let wire_error_message = function Transport m | Protocol_error m -> m

let request_wire t req =
  match Protocol.write_frame t.fd (Protocol.encode_request req) with
  | () ->
    (match Protocol.read_frame t.fd with
     | Ok (Some payload) ->
       (match Protocol.decode_response payload with
        | Ok resp -> Ok resp
        | Error msg -> Error (Protocol_error msg))
     | Ok None -> Error (Transport "server closed the connection")
     | Error msg -> Error (Transport msg)
     | exception Unix.Unix_error (e, _, _) -> Error (Transport (Unix.error_message e)))
  | exception Unix.Unix_error (e, _, _) -> Error (Transport (Unix.error_message e))

let request t req = Result.map_error wire_error_message (request_wire t req)

let one_shot_wire ?timeout_s ep req =
  match connect_ep ?timeout_s ep with
  | Error msg -> Error (Transport msg)
  | Ok t ->
    let r = request_wire t req in
    close t;
    r

let one_shot_ep ?timeout_s ep req =
  Result.map_error wire_error_message (one_shot_wire ?timeout_s ep req)

(* Connect, send one request, close — the CLI's path. *)
let one_shot ?timeout_s path req = one_shot_ep ?timeout_s (Unix_path path) req

(* Stats queries ride the same framing as requests; the server answers
   inline on the connection thread without queueing or counting them. *)
let stats_wire t scope =
  match Protocol.write_frame t.fd (Protocol.encode_stats_request scope) with
  | () ->
    (match Protocol.read_frame t.fd with
     | Ok (Some payload) ->
       (match Protocol.decode_response payload with
        | Ok (Protocol.Stats s) -> Ok s
        | Ok _ -> Error (Protocol_error "expected a stats response")
        | Error msg -> Error (Protocol_error msg))
     | Ok None -> Error (Transport "server closed the connection")
     | Error msg -> Error (Transport msg)
     | exception Unix.Unix_error (e, _, _) -> Error (Transport (Unix.error_message e)))
  | exception Unix.Unix_error (e, _, _) -> Error (Transport (Unix.error_message e))

let stats t scope = Result.map_error wire_error_message (stats_wire t scope)

let stats_ep ?timeout_s ep scope =
  match connect_ep ?timeout_s ep with
  | Error msg -> Error msg
  | Ok t ->
    let r = stats t scope in
    close t;
    r

(* Bounded retry with exponential backoff + jitter over an endpoint list.
   Endpoints are tried round-robin starting from the head; backoff doubles
   per full *attempt* (not per endpoint) and carries deterministic jitter
   from [seed] so tests replay exactly. [retries] counts extra attempts
   beyond the first, each attempt walking every endpoint once. *)
let request_failover ?(retries = 2) ?(backoff_s = 0.05) ?(backoff_max_s = 2.)
    ?(jitter = 0.5) ?(seed = 0) ?timeout_s ~endpoints req =
  if endpoints = [] then Error "request_failover: no endpoints"
  else begin
    let rng = Prim.Rng.create (seed lxor 0x5eed_c11e) in
    let errs = ref [] in
    let note ep msg =
      errs := Printf.sprintf "%s: %s" (endpoint_to_string ep) msg :: !errs
    in
    let rec attempt k backoff =
      let rec walk = function
        | [] -> `All_failed
        | ep :: rest ->
          (match one_shot_wire ?timeout_s ep req with
           | Ok resp -> `Done resp
           | Error (Protocol_error msg) ->
             (* a well-framed response that does not decode: the peer
                speaks a different protocol (version/magic mismatch) or
                is corrupting frames deterministically. Retrying cannot
                help — surface it now instead of burning every retry and
                backoff against every endpoint. *)
             `Terminal
               (Printf.sprintf "%s: protocol error (not retried): %s"
                  (endpoint_to_string ep) msg)
           | Error (Transport msg) ->
             note ep msg;
             (* moving on to another endpoint after a transport failure *)
             if rest <> [] then Telemetry.Metrics.incr m_failovers;
             walk rest)
      in
      match walk endpoints with
      | `Done resp -> Ok resp
      | `Terminal msg -> Error msg
      | `All_failed ->
        if k >= retries then
          Error
            (Printf.sprintf "all endpoints failed after %d attempts: %s" (k + 1)
               (String.concat "; " (List.rev !errs)))
        else begin
          Telemetry.Metrics.incr m_retries;
          let sleep = backoff *. (1. +. (jitter *. Prim.Rng.float rng 1.)) in
          if sleep > 0. then Thread.delay sleep;
          attempt (k + 1) (Float.min backoff_max_s (backoff *. 2.))
        end
    in
    attempt 0 backoff_s
  end
