(* The persistent scheduling daemon.

   One process, listening sockets (a Unix-domain socket, plus an optional
   TCP listener for multi-host deployments speaking the same protocol),
   and three kinds of thread sharing a single OCaml domain:

   - the accept loop ([run]'s own thread), which also ticks housekeeping
     (drain detection, idle-connection reaping, injected cluster chores
     such as peer health probes) on a short select timeout;
   - one connection thread per client, reading length-prefixed request
     frames, running admission, and writing responses — connections are
     cheap because they spend their lives blocked in [read];
   - one solver thread, the only toucher of non-thread-safe cache state.
     Solve fan-out inside a network request still uses the domain pool,
     spawned from the solver thread.

   Cache tiers: by default the server owns a plain [Schedule_cache] and
   confines all its traffic to the solver thread, exactly as before. A
   deployment can instead inject a thread-safe [Serve.Service.cache_tier]
   (the sharded cluster cache): that unlocks the cache fast path, where a
   connection thread answers a pure cache probe inline — cache traffic no
   longer serializes through the solver thread, which only ever sees
   misses. An injected [remote_probe] composes a warm-peer lookup behind
   local misses on the solver path; the prober owns re-certification, so
   a peer can cost a counted miss but never a wrong serve.

   All shared state (queue, admission, stats, connection registry) lives
   under one mutex. Overload never goes silent: every path out of
   admission is a typed [Rejected] frame, and a request that was
   admitted but starved in the queue past its deadline is re-checked at
   dequeue and answered [Deadline_unmeetable] rather than started
   doomed.

   Graceful drain ([shutdown], wired to SIGTERM/SIGINT by the CLI): stop
   accepting, answer queued and in-flight requests, persist the schedule
   cache to disk (crash-safe writes), then close connections and return
   from [run]. A later cold start serves the drained schedules from the
   disk tier after exact-arithmetic re-verification — the crash-recovery
   path and the clean-restart path are the same code. [shutdown] only
   flips an atomic flag, so it is safe to call from a signal handler;
   the accept loop notices within one select tick and does the actual
   teardown from normal thread context. *)

(* Telemetry: the daemon's observable surface. Counters for admission
   verdicts and the rung distribution, a gauge for queue depth, and
   end-to-end latency histograms. Zero-cost while the sink is off. *)
let m_received = Telemetry.Metrics.counter "daemon.received"
let m_admitted = Telemetry.Metrics.counter "daemon.admitted"
let m_rej_queue = Telemetry.Metrics.counter "daemon.rejected.queue_full"
let m_rej_quota = Telemetry.Metrics.counter "daemon.rejected.quota"
let m_rej_shed = Telemetry.Metrics.counter "daemon.rejected.shedding"
let m_rej_deadline = Telemetry.Metrics.counter "daemon.rejected.deadline"
let m_failed = Telemetry.Metrics.counter "daemon.failed"
let m_fastpath = Telemetry.Metrics.counter "daemon.fastpath_served"
let m_reaped = Telemetry.Metrics.counter "daemon.conns_reaped"
let g_queue_depth = Telemetry.Metrics.gauge "daemon.queue_depth"

let h_e2e =
  Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.duration_buckets "daemon.e2e_s"

let h_queue_wait =
  Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.duration_buckets
    "daemon.queue_wait_s"

let rung_counter = function
  | Robust.Ladder.Joint -> Telemetry.Metrics.counter "daemon.rung.joint"
  | Robust.Ladder.Two_stage -> Telemetry.Metrics.counter "daemon.rung.two_stage"
  | Robust.Ladder.Heuristic -> Telemetry.Metrics.counter "daemon.rung.heuristic"
  | Robust.Ladder.Cache_probe -> Telemetry.Metrics.counter "daemon.rung.cache_probe"

type config = {
  socket_path : string;
  tcp : (string * int) option;  (* extra TCP listener: (bind host, port) *)
  service : Serve.Service.config;  (* base arch/strategy/budgets/pool width *)
  admission : Admission.config;
  cache_dir : string option;
  cache_capacity : int;
  default_budget_s : float;  (* for requests that carry no budget *)
  tier : Serve.Service.cache_tier option;
      (* injected thread-safe cache tier (sharded). Enables the conn-thread
         cache fast path. Absent: the server owns a plain cache confined
         to the solver thread, as in the single-box daemon. *)
  remote_probe :
    (arch:Spec.t -> layer:Layer.t -> Serve.Fingerprint.t -> Serve.Schedule_cache.entry option)
      option;
      (* warm-peer lookup composed behind local misses on the solver path;
         the prober must re-certify before returning an entry *)
  housekeeping : (unit -> unit) option;  (* ticked by the accept loop *)
  read_deadline_s : float;  (* per-connection receive deadline; <= 0 = none *)
  write_deadline_s : float;
      (* per-connection send deadline (SO_SNDTIMEO); <= 0 = none. A client
         that stops reading blocks its connection thread in the response
         write with [busy] set; without a bound the drain loop would wait
         on it forever. A timed-out write is a dead connection. *)
  drain_deadline_s : float;
      (* graceful-drain backstop: after this long without quiescing,
         force-shutdown still-busy connections so their threads fail out
         of blocked writes; <= 0 = wait indefinitely *)
  idle_timeout_s : float;  (* reap connections idle this long; <= 0 = never *)
  tmp_sweep_age_s : float;  (* stale-temp-file sweep threshold for the own cache *)
  fault_crash_exit : bool;
      (* honor the net.peer_crash fault site with a process exit — only
         ever set by chaos harnesses, so an ordinary --fault-seed run
         cannot kill the daemon *)
}

let config ?(admission = Admission.default_config ()) ?cache_dir
    ?(cache_capacity = 256) ?(default_budget_s = 30.) ?tcp ?tier ?remote_probe
    ?housekeeping ?(read_deadline_s = 30.) ?(write_deadline_s = 30.)
    ?(drain_deadline_s = 30.) ?(idle_timeout_s = 300.)
    ?(tmp_sweep_age_s = 0.) ?(fault_crash_exit = false) ~socket_path service =
  {
    socket_path;
    tcp;
    service;
    admission;
    cache_dir;
    cache_capacity;
    default_budget_s;
    tier;
    remote_probe;
    housekeeping;
    read_deadline_s;
    write_deadline_s;
    drain_deadline_s;
    idle_timeout_s;
    tmp_sweep_age_s;
    fault_crash_exit;
  }

(* Plain mirrors of the telemetry counters: the metrics sink is off by
   default, and tests and the drain report need the numbers regardless. *)
type stats = {
  mutable received : int;
  mutable admitted : int;
  mutable served : int;
  mutable failed : int;
  mutable rejected_queue_full : int;
  mutable rejected_quota : int;
  mutable rejected_shedding : int;
  mutable rejected_deadline : int;
  mutable max_queue_depth : int;
  mutable fastpath_served : int;  (* cache hits answered on the conn thread *)
  mutable reaped : int;  (* idle connections closed by the reaper *)
  mutable persisted : int;  (* cache records written at drain *)
}

(* Single-assignment reply slot a connection thread blocks on while the
   solver works its job. *)
type reply = {
  rm : Mutex.t;
  rc : Condition.t;
  mutable resp : Protocol.response option;
}

type job = {
  net : Network.t;
  service : Serve.Service.config;  (* arch-resolved; budget applied at dequeue *)
  rung : Robust.Ladder.rung;  (* admission-time selection (upper bound) *)
  deadline : Robust.Deadline.t;  (* absolute: arrival + budget *)
  arrival : float;
  est_cost : float;  (* admission estimate, for queue-delay accounting *)
  reply : reply;
}

type conn = { fd : Unix.file_descr; mutable busy : bool; mutable last : float }

type t = {
  cfg : config;
  local_tier : Serve.Service.cache_tier;  (* injected, or over the own cache *)
  full_tier : Serve.Service.cache_tier;  (* local + warm-peer fall-through *)
  fast_ok : bool;  (* tier is thread-safe: conn threads may probe inline *)
  adm : Admission.t;
  lock : Mutex.t;
  qc : Condition.t;  (* wakes the solver: work queued or draining *)
  queue : job Queue.t;
  mutable pending_cost : float;  (* summed est_cost of queued jobs *)
  mutable running_until : float;  (* est. completion of the in-solve job *)
  stop : bool Atomic.t;  (* the only field a signal handler touches *)
  conns : (int, conn) Hashtbl.t;
  mutable conn_seq : int;
  stats : stats;
  ready : Semaphore.Binary.t;  (* posted once the sockets are listening *)
}

(* Warm-peer composition: a local miss falls through to the remote probe;
   a verified remote record is stored back into the local tier (write-
   through, so it survives a crash) and served as [Cache_peer]. The remote
   prober owns verification — by contract it only ever returns records it
   has re-certified in exact arithmetic. *)
let compose_remote (local : Serve.Service.cache_tier) remote =
  {
    local with
    Serve.Service.tier_find =
      (fun ~arch ~layer fp ->
        match local.Serve.Service.tier_find ~arch ~layer fp with
        | Some _ as hit -> hit
        | None ->
          (match remote ~arch ~layer fp with
           | Some entry ->
             local.Serve.Service.tier_store fp entry;
             Some (entry, Serve.Service.Cache_peer)
           | None -> None));
  }

let create cfg =
  let local_tier, fast_ok =
    match cfg.tier with
    | Some tier -> (tier, true)
    | None ->
      ( Serve.Service.tier_of_cache
          (Serve.Schedule_cache.create ?dir:cfg.cache_dir
             ~tmp_sweep_age_s:cfg.tmp_sweep_age_s ~capacity:cfg.cache_capacity ()),
        false )
  in
  let full_tier =
    match cfg.remote_probe with
    | Some remote -> compose_remote local_tier remote
    | None -> local_tier
  in
  {
    cfg;
    local_tier;
    full_tier;
    fast_ok;
    adm = Admission.create cfg.admission;
    lock = Mutex.create ();
    qc = Condition.create ();
    queue = Queue.create ();
    pending_cost = 0.;
    running_until = 0.;
    stop = Atomic.make false;
    conns = Hashtbl.create 16;
    conn_seq = 0;
    stats =
      {
        received = 0;
        admitted = 0;
        served = 0;
        failed = 0;
        rejected_queue_full = 0;
        rejected_quota = 0;
        rejected_shedding = 0;
        rejected_deadline = 0;
        max_queue_depth = 0;
        fastpath_served = 0;
        reaped = 0;
        persisted = 0;
      };
    ready = Semaphore.Binary.make false;
  }

let stats t = Mutex.protect t.lock (fun () -> { t.stats with served = t.stats.served })
let tier t = t.local_tier

(* Async-signal-safe: one atomic store, no locks. *)
let shutdown t = Atomic.set t.stop true
let draining t = Atomic.get t.stop

(* Block until the listening sockets are bound — spares tests and the soak
   harness a connect-retry loop against a server thread still starting. *)
let wait_ready t = Semaphore.Binary.acquire t.ready

(* ---- request resolution ----------------------------------------------- *)

let resolve t (req : Protocol.request) =
  match List.assoc_opt req.Protocol.arch Spec.variants with
  | None -> Error ("unknown architecture " ^ req.Protocol.arch)
  | Some arch ->
    let base = t.cfg.service in
    let service =
      if arch.Spec.aname = base.Serve.Service.arch.Spec.aname then base
      else { base with Serve.Service.arch; weights = Cosa.calibrate arch }
    in
    (match req.Protocol.target with
     | Protocol.Layer name ->
       (match Zoo.find name with
        | l ->
          Ok
            ( service,
              { Network.nname = name;
                entries = [ { Network.layer = l; repeats = 1 } ] } )
        | exception Not_found -> Error ("unknown layer " ^ name))
     | Protocol.Network name ->
       (match Network.find name with
        | Some n -> Ok (service, n)
        | None -> Error ("unknown network " ^ name)))

(* The fingerprint single-layer requests resolve to — per-shard admission
   statistics route by it; whole-network requests use the aggregate. *)
let fp_hint (service : Serve.Service.config) (net : Network.t) =
  match net.Network.entries with
  | [ { Network.layer; _ } ] -> Some (Serve.Service.request_fingerprint service layer)
  | _ -> None

(* ---- solver thread ---------------------------------------------------- *)

(* Callers hold [t.lock]. *)
let reject_stat t (reason : Protocol.reject_reason) =
  (match reason with
   | Protocol.Queue_full ->
     t.stats.rejected_queue_full <- t.stats.rejected_queue_full + 1;
     Telemetry.Metrics.incr m_rej_queue
   | Protocol.Quota_exceeded ->
     t.stats.rejected_quota <- t.stats.rejected_quota + 1;
     Telemetry.Metrics.incr m_rej_quota
   | Protocol.Shedding ->
     t.stats.rejected_shedding <- t.stats.rejected_shedding + 1;
     Telemetry.Metrics.incr m_rej_shed
   | Protocol.Deadline_unmeetable ->
     t.stats.rejected_deadline <- t.stats.rejected_deadline + 1;
     Telemetry.Metrics.incr m_rej_deadline);
  Protocol.Rejected reason

let layer_payload (service : Serve.Service.config)
    (lr : Serve.Service.layer_report) =
  match lr.Serve.Service.served with
  | Error _ -> None
  | Ok s ->
    let meta =
      {
        Mapping_io.weights =
          Some
            ( service.Serve.Service.weights.Cosa.w_util,
              service.Serve.Service.weights.Cosa.w_comp,
              service.Serve.Service.weights.Cosa.w_traf );
        strategy = Cosa.strategy_to_string service.Serve.Service.strategy;
        source = Serve.Service.origin_to_string s.Serve.Service.origin;
        verdict = s.Serve.Service.verdict;
        objective =
          Some
            ( s.Serve.Service.objective.Cosa.util,
              s.Serve.Service.objective.Cosa.comp,
              s.Serve.Service.objective.Cosa.traf,
              s.Serve.Service.objective.Cosa.total );
        solve_time = s.Serve.Service.solve_time;
      }
    in
    Some
      {
        Protocol.name = lr.Serve.Service.layer.Layer.name;
        repeats = lr.Serve.Service.repeats;
        origin = Serve.Service.origin_to_string s.Serve.Service.origin;
        verdict = s.Serve.Service.verdict;
        record = Mapping_io.record_to_string meta s.Serve.Service.mapping;
      }

let scheduled_of_report ~rung ~arrival ~queue_wait (service : Serve.Service.config)
    (report : Serve.Service.report) =
  Protocol.Scheduled
    {
      Protocol.rung;
      layers = List.filter_map (layer_payload service) report.Serve.Service.layers;
      total_latency = report.Serve.Service.total_latency;
      total_energy_pj = report.Serve.Service.total_energy_pj;
      queue_wait_s = queue_wait;
      serve_s = Robust.Deadline.now () -. arrival;
    }

let serve_job t (job : job) =
  let start = Robust.Deadline.now () in
  let queue_wait = start -. job.arrival in
  Telemetry.Metrics.observe h_queue_wait queue_wait;
  let remaining = Robust.Deadline.remaining job.deadline in
  (* Re-select at dequeue: the wait may have eaten the budget. The
     admission rung is an upper bound — dequeue can only degrade further
     (monotonic backpressure), never upgrade. *)
  let reselected =
    Mutex.protect t.lock (fun () ->
        let hit_rate = t.local_tier.Serve.Service.tier_hit_rate None in
        let budget = (Admission.config t.adm).Admission.safety *. remaining in
        match Robust.Ladder.select ~budget (Admission.estimates t.adm ~hit_rate) with
        | None -> None
        | Some r ->
          Some
            (if Robust.Ladder.rank r < Robust.Ladder.rank job.rung then r
             else job.rung))
  in
  match reselected with
  | None -> Mutex.protect t.lock (fun () -> reject_stat t Protocol.Deadline_unmeetable)
  | Some rung ->
    Telemetry.Metrics.incr (rung_counter rung);
    (* The request deadline caps the serve; the server's configured
       per-layer limit still applies — a generous SLO must not talk a
       joint solve into grinding for the whole budget. *)
    let service =
      { job.service with
        Serve.Service.deadline = job.deadline;
        time_limit = Float.min job.service.Serve.Service.time_limit remaining }
    in
    let report =
      Serve.Service.schedule_network ~tier:t.full_tier ~rung service job.net
    in
    let dt = Robust.Deadline.now () -. start in
    (* Feed the estimator the cost of what actually ran: a live solve is
       evidence about the rung; an all-cache serve is probe-cost
       evidence, whatever rung was nominally selected. *)
    let live_solves =
      report.Serve.Service.distinct - report.Serve.Service.served_from_cache
      - report.Serve.Service.failed
    in
    Mutex.protect t.lock (fun () ->
        Admission.observe t.adm
          (if live_solves > 0 then rung else Robust.Ladder.Cache_probe)
          dt;
        if report.Serve.Service.failed > 0 then
          match rung with
          | Robust.Ladder.Cache_probe ->
            (* cache-only probe missed: certified answer or typed no *)
            reject_stat t Protocol.Deadline_unmeetable
          | _ ->
            t.stats.failed <- t.stats.failed + 1;
            Telemetry.Metrics.incr m_failed;
            let first_failure =
              List.find_map
                (fun (lr : Serve.Service.layer_report) ->
                  match lr.Serve.Service.served with
                  | Error f -> Some (Robust.Failure.to_string f)
                  | Ok _ -> None)
                report.Serve.Service.layers
            in
            Protocol.Failed (Option.value first_failure ~default:"layer failure")
        else begin
          t.stats.served <- t.stats.served + 1;
          scheduled_of_report ~rung ~arrival:job.arrival ~queue_wait service report
        end)

let solver_loop t =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not (Atomic.get t.stop) do
      Condition.wait t.qc t.lock
    done;
    if Queue.is_empty t.queue then
      (* draining and nothing left: exit *)
      Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      t.pending_cost <- Float.max 0. (t.pending_cost -. job.est_cost);
      t.running_until <- Robust.Deadline.now () +. job.est_cost;
      Telemetry.Metrics.set_gauge g_queue_depth (float_of_int (Queue.length t.queue));
      Mutex.unlock t.lock;
      let resp =
        try serve_job t job
        with e ->
          Mutex.protect t.lock (fun () ->
              t.stats.failed <- t.stats.failed + 1;
              Telemetry.Metrics.incr m_failed);
          Protocol.Failed ("internal error: " ^ Printexc.to_string e)
      in
      Mutex.protect t.lock (fun () -> t.running_until <- 0.);
      Telemetry.Metrics.observe h_e2e (Robust.Deadline.now () -. job.arrival);
      Mutex.protect job.reply.rm (fun () ->
          job.reply.resp <- Some resp;
          Condition.signal job.reply.rc);
      next ()
    end
  in
  next ()

(* ---- connection handling ---------------------------------------------- *)

(* Cache fast path: a pure local cache probe on the calling (connection)
   thread. Only legal when the tier is thread-safe ([fast_ok]); never
   consults peers (a [cache_only] request from a peer must not cascade)
   and never solves. Probes go through [tier_peek]: a fast-path miss on
   an ordinary request is re-probed by the solver path, so booking it
   here too would count two (or, across the rung-key walk, more) misses
   per request and deflate the hit rate admission prices against. A
   missed [cache_only] peer probe books no miss at all — it is answered
   with a typed rejection without reaching the solver path, and peer
   traffic should not skew the window that prices *local* admission.
   Fast-path hits always count. *)
let try_fast_path t (service : Serve.Service.config) net ~arrival ~budget =
  if not t.fast_ok then None
  else begin
    let scfg =
      { service with Serve.Service.deadline = Robust.Deadline.at (arrival +. budget) }
    in
    let peek_tier =
      { t.local_tier with
        Serve.Service.tier_find = t.local_tier.Serve.Service.tier_peek }
    in
    let report =
      Serve.Service.schedule_network ~tier:peek_tier
        ~rung:Robust.Ladder.Cache_probe scfg net
    in
    if report.Serve.Service.failed > 0 then None
    else begin
      let dt = Robust.Deadline.now () -. arrival in
      Mutex.protect t.lock (fun () ->
          t.stats.served <- t.stats.served + 1;
          t.stats.fastpath_served <- t.stats.fastpath_served + 1;
          Admission.observe t.adm Robust.Ladder.Cache_probe dt);
      Telemetry.Metrics.incr m_fastpath;
      Telemetry.Metrics.incr (rung_counter Robust.Ladder.Cache_probe);
      Telemetry.Metrics.observe h_e2e dt;
      Some
        (scheduled_of_report ~rung:Robust.Ladder.Cache_probe ~arrival
           ~queue_wait:0. scfg report)
    end
  end

(* Either answered inline (fast-path cache hit / rejection / resolution
   failure) or admitted — in which case the connection thread parks on
   the reply slot. *)
let process_request t (req : Protocol.request) =
  let arrival = Robust.Deadline.now () in
  Mutex.protect t.lock (fun () ->
      t.stats.received <- t.stats.received + 1;
      Telemetry.Metrics.incr m_received);
  match resolve t req with
  | Error msg -> Protocol.Failed msg
  | Ok (service, net) ->
    let budget =
      if req.Protocol.budget_s > 0. && Float.is_finite req.Protocol.budget_s then
        req.Protocol.budget_s
      else t.cfg.default_budget_s
    in
    (* A cached answer is correct even while draining, so the fast path
       runs before the shedding check. *)
    (match try_fast_path t service net ~arrival ~budget with
     | Some resp -> resp
     | None when req.Protocol.cache_only && t.fast_ok ->
       (* peer probe missed the thread-safe tier: typed miss, no queueing *)
       Mutex.protect t.lock (fun () -> reject_stat t Protocol.Deadline_unmeetable)
     | None ->
       let admitted =
         Mutex.protect t.lock (fun () ->
             if Atomic.get t.stop then `Done (reject_stat t Protocol.Shedding)
             else begin
               let queue_delay =
                 t.pending_cost +. Float.max 0. (t.running_until -. arrival)
               in
               let hit_rate =
                 t.local_tier.Serve.Service.tier_hit_rate (fp_hint service net)
               in
               match
                 Admission.decide t.adm ~now:arrival ~client:req.Protocol.client
                   ~budget_s:budget ~queue_depth:(Queue.length t.queue)
                   ~queue_delay_s:queue_delay ~hit_rate
               with
               | Error reason -> `Done (reject_stat t reason)
               | Ok selected ->
                 (* a cache-only request on a solver-confined cache still
                    goes through the queue, but pinned to the probe rung *)
                 let rung =
                   if req.Protocol.cache_only then Robust.Ladder.Cache_probe
                   else selected
                 in
                 let est_cost =
                   List.fold_left
                     (fun acc (e : Robust.Ladder.estimate) ->
                       if Robust.Ladder.equal e.Robust.Ladder.rung rung then
                         e.Robust.Ladder.cost_s
                       else acc)
                     0.
                     (Admission.estimates t.adm ~hit_rate)
                 in
                 let job =
                   {
                     net;
                     service;
                     rung;
                     deadline = Robust.Deadline.at (arrival +. budget);
                     arrival;
                     est_cost;
                     reply =
                       { rm = Mutex.create (); rc = Condition.create (); resp = None };
                   }
                 in
                 Queue.push job t.queue;
                 t.pending_cost <- t.pending_cost +. est_cost;
                 t.stats.admitted <- t.stats.admitted + 1;
                 Telemetry.Metrics.incr m_admitted;
                 let depth = Queue.length t.queue in
                 if depth > t.stats.max_queue_depth then
                   t.stats.max_queue_depth <- depth;
                 Telemetry.Metrics.set_gauge g_queue_depth (float_of_int depth);
                 Condition.signal t.qc;
                 `Admitted job
             end)
       in
       (match admitted with
        | `Done resp -> resp
        | `Admitted job ->
          Mutex.protect job.reply.rm (fun () ->
              while job.reply.resp = None do
                Condition.wait job.reply.rc job.reply.rm
              done;
              Option.get job.reply.resp)))

(* Response write with the network fault plane. Sites fire only when a
   chaos harness armed them (and [net.peer_crash] additionally requires
   the config opt-in), so production writes cost four disarmed checks. *)
let write_response t fd resp =
  let payload = Protocol.encode_response resp in
  if Robust.Fault.fire "net.slow_peer" then Thread.delay 0.25;
  if Robust.Fault.fire "net.conn_reset" then begin
    (* cut the connection instead of answering: the client sees EOF/reset *)
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    false
  end
  else if t.cfg.fault_crash_exit && Robust.Fault.fire "net.peer_crash" then begin
    (* torn frame, then the whole process dies mid-response *)
    (try Protocol.write_torn_frame fd payload with Unix.Unix_error _ -> ());
    Stdlib.exit 42
  end
  else if Robust.Fault.fire "net.partial_frame" then begin
    (* header promises the full frame; half the payload arrives, then the
       connection stalls and closes — the classic torn write *)
    (try Protocol.write_torn_frame fd payload with Unix.Unix_error _ -> ());
    Thread.delay 0.05;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    false
  end
  else
    try
      Protocol.write_frame fd payload;
      true
    with Unix.Unix_error _ -> false

let conn_loop t id conn =
  (* The receive deadline makes [read_frame_timeout] surface idleness at
     frame boundaries (for the reaper) and stalls mid-frame (poisoned
     connection) without a watchdog thread. *)
  if t.cfg.read_deadline_s > 0. then
    (try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO t.cfg.read_deadline_s
     with Unix.Unix_error _ | Invalid_argument _ -> ());
  (* The send deadline bounds response writes: a client that stops
     reading makes the write raise EAGAIN after the deadline, which
     [write_response] reports as a dead connection. Without it the
     connection thread would block in [write_frame] with [busy] set and
     the drain loop could never quiesce. *)
  if t.cfg.write_deadline_s > 0. then
    (try Unix.setsockopt_float conn.fd Unix.SO_SNDTIMEO t.cfg.write_deadline_s
     with Unix.Unix_error _ | Invalid_argument _ -> ());
  let rec loop () =
    let event =
      if t.cfg.read_deadline_s > 0. then Protocol.read_frame_timeout conn.fd
      else
        match Protocol.read_frame conn.fd with
        | Ok (Some payload) -> `Frame payload
        | Ok None -> `Eof
        | Error msg -> `Error msg
    in
    match event with
    | `Eof | `Error _ -> ()  (* clean close or dead/hostile/stalled peer *)
    | `Idle ->
      if
        t.cfg.idle_timeout_s > 0.
        && Robust.Deadline.now () -. conn.last > t.cfg.idle_timeout_s
      then begin
        Mutex.protect t.lock (fun () -> t.stats.reaped <- t.stats.reaped + 1);
        Telemetry.Metrics.incr m_reaped
      end
      else loop ()
    | `Frame payload ->
      conn.last <- Robust.Deadline.now ();
      conn.busy <- true;
      let resp =
        match Protocol.decode_request payload with
        | Error msg -> Protocol.Failed ("malformed request: " ^ msg)
        | Ok req -> process_request t req
      in
      let alive = write_response t conn.fd resp in
      conn.busy <- false;
      if alive then loop ()
  in
  (try loop () with _ -> ());
  conn.busy <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.lock (fun () -> Hashtbl.remove t.conns id)

(* ---- lifecycle -------------------------------------------------------- *)

let tcp_listener host port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt sock Unix.SO_REUSEADDR true with Unix.Unix_error _ -> ());
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ ->
      (match Unix.gethostbyname host with
       | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
         Unix.inet_addr_loopback
       | he -> he.Unix.h_addr_list.(0))
  in
  Unix.bind sock (Unix.ADDR_INET (addr, port));
  Unix.listen sock 64;
  sock

(* Run the daemon on the calling thread until a drain completes. Binds
   the sockets (replacing any stale file), serves until [shutdown], then
   drains: stop accepting, answer everything queued or in flight,
   persist the cache, close connections, return. *)
let run t =
  (* A client vanishing mid-response must cost one failed write, not the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX t.cfg.socket_path);
  Unix.listen sock 64;
  let tcp_sock = Option.map (fun (h, p) -> tcp_listener h p) t.cfg.tcp in
  let socks = sock :: Option.to_list tcp_sock in
  let solver = Thread.create solver_loop t in
  Semaphore.Binary.release t.ready;
  let accept_from s =
    match Unix.accept s with
    | fd, _ ->
      let conn = { fd; busy = false; last = Robust.Deadline.now () } in
      let id =
        Mutex.protect t.lock (fun () ->
            t.conn_seq <- t.conn_seq + 1;
            Hashtbl.replace t.conns t.conn_seq conn;
            t.conn_seq)
      in
      ignore (Thread.create (conn_loop t id) conn)
    | exception Unix.Unix_error _ -> ()  (* incl. EINTR: retry next tick *)
  in
  let accept_one () =
    match Unix.select socks [] [] 0.05 with
    | [], _, _ -> ()
    | ready, _, _ -> List.iter accept_from ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  while not (Atomic.get t.stop) do
    (try accept_one () with Unix.Unix_error _ -> ());
    match t.cfg.housekeeping with
    | Some tick -> ( try tick () with _ -> ())
    | None -> ()
  done;
  (* Drain: no new connections; existing connections get [Shedding] for
     new requests (admission checks the flag); queued and in-flight work
     still gets answered. A connection stays [busy] from frame read to
     response write, so "queue empty and nobody busy" means every
     admitted request has been answered. *)
  List.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) socks;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  (* Drain backstop: a connection can stay [busy] past any reasonable
     bound only when its client stopped reading (the response write is
     additionally bounded by SO_SNDTIMEO) or its reply is stuck behind a
     wedged solve. After [drain_deadline_s] without quiescing,
     force-shutdown the busy connections' sockets: their blocked writes
     fail immediately, the threads clear [busy] and deregister, and the
     drain completes instead of hanging SIGTERM forever. Re-armed per
     interval in case a connection goes busy after the first sweep. *)
  let drain_start = Robust.Deadline.now () in
  let next_force = ref (drain_start +. t.cfg.drain_deadline_s) in
  let rec drain () =
    let quiesced =
      Mutex.protect t.lock (fun () ->
          Condition.broadcast t.qc;
          Queue.is_empty t.queue
          && Hashtbl.fold (fun _ c acc -> acc && not c.busy) t.conns true)
    in
    if not quiesced then begin
      if t.cfg.drain_deadline_s > 0. && Robust.Deadline.now () >= !next_force then begin
        next_force := Robust.Deadline.now () +. t.cfg.drain_deadline_s;
        let stuck =
          Mutex.protect t.lock (fun () ->
              Hashtbl.fold (fun _ c acc -> if c.busy then c.fd :: acc else acc)
                t.conns [])
        in
        List.iter
          (fun fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          stuck
      end;
      Thread.delay 0.01;
      drain ()
    end
  in
  drain ();
  Thread.join solver;
  let written = t.local_tier.Serve.Service.tier_persist () in
  Mutex.protect t.lock (fun () -> t.stats.persisted <- written);
  (* Idle connections: shut them down; their threads wake from [read]
     with EOF and deregister themselves. *)
  let fds =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns [])
  in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds

(* Run on a background thread; [shutdown] + [Thread.join] to stop. *)
let start t = Thread.create run t
