(* The persistent scheduling daemon.

   One process, listening sockets (a Unix-domain socket, plus an optional
   TCP listener for multi-host deployments speaking the same protocol),
   and three kinds of thread sharing a single OCaml domain:

   - the accept loop ([run]'s own thread), which also ticks housekeeping
     (drain detection, idle-connection reaping, injected cluster chores
     such as peer health probes) on a short select timeout;
   - one connection thread per client, reading length-prefixed request
     frames, running admission, and writing responses — connections are
     cheap because they spend their lives blocked in [read];
   - one solver thread, the only toucher of non-thread-safe cache state.
     Solve fan-out inside a network request still uses the domain pool,
     spawned from the solver thread.

   Cache tiers: by default the server owns a plain [Schedule_cache] and
   confines all its traffic to the solver thread, exactly as before. A
   deployment can instead inject a thread-safe [Serve.Service.cache_tier]
   (the sharded cluster cache): that unlocks the cache fast path, where a
   connection thread answers a pure cache probe inline — cache traffic no
   longer serializes through the solver thread, which only ever sees
   misses. An injected [remote_probe] composes a warm-peer lookup behind
   local misses on the solver path; the prober owns re-certification, so
   a peer can cost a counted miss but never a wrong serve.

   All shared state (queue, admission, stats, connection registry) lives
   under one mutex. Overload never goes silent: every path out of
   admission is a typed [Rejected] frame, and a request that was
   admitted but starved in the queue past its deadline is re-checked at
   dequeue and answered [Deadline_unmeetable] rather than started
   doomed.

   Graceful drain ([shutdown], wired to SIGTERM/SIGINT by the CLI): stop
   accepting, answer queued and in-flight requests, persist the schedule
   cache to disk (crash-safe writes), then close connections and return
   from [run]. A later cold start serves the drained schedules from the
   disk tier after exact-arithmetic re-verification — the crash-recovery
   path and the clean-restart path are the same code. [shutdown] only
   flips an atomic flag, so it is safe to call from a signal handler;
   the accept loop notices within one select tick and does the actual
   teardown from normal thread context. *)

(* Telemetry: the daemon's observable surface. Counters for admission
   verdicts and the rung distribution, a gauge for queue depth, and
   end-to-end latency histograms. Zero-cost while the sink is off. *)
let m_received = Telemetry.Metrics.counter "daemon.received"
let m_admitted = Telemetry.Metrics.counter "daemon.admitted"
let m_rej_queue = Telemetry.Metrics.counter "daemon.rejected.queue_full"
let m_rej_quota = Telemetry.Metrics.counter "daemon.rejected.quota"
let m_rej_shed = Telemetry.Metrics.counter "daemon.rejected.shedding"
let m_rej_deadline = Telemetry.Metrics.counter "daemon.rejected.deadline"
let m_failed = Telemetry.Metrics.counter "daemon.failed"
let m_fastpath = Telemetry.Metrics.counter "daemon.fastpath_served"
let m_reaped = Telemetry.Metrics.counter "daemon.conns_reaped"
let g_queue_depth = Telemetry.Metrics.gauge "daemon.queue_depth"

let h_e2e =
  Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.duration_buckets "daemon.e2e_s"

let h_queue_wait =
  Telemetry.Metrics.histogram ~buckets:Telemetry.Metrics.duration_buckets
    "daemon.queue_wait_s"

let rung_counter = function
  | Robust.Ladder.Joint -> Telemetry.Metrics.counter "daemon.rung.joint"
  | Robust.Ladder.Two_stage -> Telemetry.Metrics.counter "daemon.rung.two_stage"
  | Robust.Ladder.Heuristic -> Telemetry.Metrics.counter "daemon.rung.heuristic"
  | Robust.Ladder.Cache_probe -> Telemetry.Metrics.counter "daemon.rung.cache_probe"

type config = {
  socket_path : string;
  tcp : (string * int) option;  (* extra TCP listener: (bind host, port) *)
  service : Serve.Service.config;  (* base arch/strategy/budgets/pool width *)
  admission : Admission.config;
  cache_dir : string option;
  cache_capacity : int;
  default_budget_s : float;  (* for requests that carry no budget *)
  tier : Serve.Service.cache_tier option;
      (* injected thread-safe cache tier (sharded). Enables the conn-thread
         cache fast path. Absent: the server owns a plain cache confined
         to the solver thread, as in the single-box daemon. *)
  remote_probe :
    (arch:Spec.t -> layer:Layer.t -> Serve.Fingerprint.t -> Serve.Schedule_cache.entry option)
      option;
      (* warm-peer lookup composed behind local misses on the solver path;
         the prober must re-certify before returning an entry *)
  housekeeping : (unit -> unit) option;  (* ticked by the accept loop *)
  read_deadline_s : float;  (* per-connection receive deadline; <= 0 = none *)
  write_deadline_s : float;
      (* per-connection send deadline (SO_SNDTIMEO); <= 0 = none. A client
         that stops reading blocks its connection thread in the response
         write with [busy] set; without a bound the drain loop would wait
         on it forever. A timed-out write is a dead connection. *)
  drain_deadline_s : float;
      (* graceful-drain backstop: after this long without quiescing,
         force-shutdown still-busy connections so their threads fail out
         of blocked writes; <= 0 = wait indefinitely *)
  idle_timeout_s : float;  (* reap connections idle this long; <= 0 = never *)
  tmp_sweep_age_s : float;  (* stale-temp-file sweep threshold for the own cache *)
  fault_crash_exit : bool;
      (* honor the net.peer_crash fault site with a process exit — only
         ever set by chaos harnesses, so an ordinary --fault-seed run
         cannot kill the daemon *)
  flight_capacity : int;  (* flight-recorder ring: last N request records *)
  stats_extra : (string * (unit -> string)) list;
      (* extra named JSON sections for the Stats frame (cluster wiring
         injects "shards" / "peers" here); each thunk must return valid
         JSON and be safe to call from a connection thread *)
}

let config ?(admission = Admission.default_config ()) ?cache_dir
    ?(cache_capacity = 256) ?(default_budget_s = 30.) ?tcp ?tier ?remote_probe
    ?housekeeping ?(read_deadline_s = 30.) ?(write_deadline_s = 30.)
    ?(drain_deadline_s = 30.) ?(idle_timeout_s = 300.)
    ?(tmp_sweep_age_s = 0.) ?(fault_crash_exit = false)
    ?(flight_capacity = 256) ?(stats_extra = []) ~socket_path service =
  {
    socket_path;
    tcp;
    service;
    admission;
    cache_dir;
    cache_capacity;
    default_budget_s;
    tier;
    remote_probe;
    housekeeping;
    read_deadline_s;
    write_deadline_s;
    drain_deadline_s;
    idle_timeout_s;
    tmp_sweep_age_s;
    fault_crash_exit;
    flight_capacity = max 16 flight_capacity;
    stats_extra;
  }

(* Plain mirrors of the telemetry counters: the metrics sink is off by
   default, and tests and the drain report need the numbers regardless. *)
type stats = {
  mutable received : int;
  mutable admitted : int;
  mutable served : int;
  mutable failed : int;
  mutable rejected_queue_full : int;
  mutable rejected_quota : int;
  mutable rejected_shedding : int;
  mutable rejected_deadline : int;
  mutable max_queue_depth : int;
  mutable fastpath_served : int;  (* cache hits answered on the conn thread *)
  mutable reaped : int;  (* idle connections closed by the reaper *)
  mutable persisted : int;  (* cache records written at drain *)
}

(* Single-assignment reply slot a connection thread blocks on while the
   solver works its job. *)
type reply = {
  rm : Mutex.t;
  rc : Condition.t;
  mutable resp : Protocol.response option;
}

type job = {
  net : Network.t;
  service : Serve.Service.config;  (* arch-resolved; budget applied at dequeue *)
  rung : Robust.Ladder.rung;  (* admission-time selection (upper bound) *)
  deadline : Robust.Deadline.t;  (* absolute: arrival + budget *)
  arrival : float;
  est_cost : float;  (* admission estimate, for queue-delay accounting *)
  req_id : int64;  (* rebound on the solver thread: the request context is
                      per-systhread, and the peer probe runs over there *)
  hop : int;
  reply : reply;
}

type conn = { fd : Unix.file_descr; mutable busy : bool; mutable last : float }

(* One flight-recorder record: the per-request story an operator reads
   back through the Stats frame. Always on — unlike trace/metrics it is
   not gated on the telemetry sink, because the ring is fixed-size and a
   record is a handful of immutable fields written under the lock the
   request already holds for its stats updates. *)
type flight_entry = {
  f_id : int64;
  f_hop : int;
  f_client : string;
  f_target : string;  (* "layer:NAME" / "network:NAME" *)
  f_cache_only : bool;
  f_rung_admitted : string;  (* admission-time rung; "" if never admitted *)
  f_rung_served : string;  (* rung actually served; "" unless Scheduled *)
  f_origin : string;  (* first served layer's origin; "" otherwise *)
  f_verdict : string;  (* scheduled / rejected:<reason> / failed *)
  f_queue_wait_s : float;
  f_serve_s : float;
  f_ts : float;  (* arrival, epoch seconds *)
}

type t = {
  cfg : config;
  local_tier : Serve.Service.cache_tier;  (* injected, or over the own cache *)
  full_tier : Serve.Service.cache_tier;  (* local + warm-peer fall-through *)
  fast_ok : bool;  (* tier is thread-safe: conn threads may probe inline *)
  adm : Admission.t;
  lock : Mutex.t;
  qc : Condition.t;  (* wakes the solver: work queued or draining *)
  queue : job Queue.t;
  mutable pending_cost : float;  (* summed est_cost of queued jobs *)
  mutable running_until : float;  (* est. completion of the in-solve job *)
  stop : bool Atomic.t;  (* the only field a signal handler touches *)
  conns : (int, conn) Hashtbl.t;
  mutable conn_seq : int;
  stats : stats;
  flight : flight_entry option array;  (* ring, guarded by [lock] *)
  mutable flight_pos : int;  (* total records; next slot = pos mod len *)
  ready : Semaphore.Binary.t;  (* posted once the sockets are listening *)
}

(* Warm-peer composition: a local miss falls through to the remote probe;
   a verified remote record is stored back into the local tier (write-
   through, so it survives a crash) and served as [Cache_peer]. The remote
   prober owns verification — by contract it only ever returns records it
   has re-certified in exact arithmetic. *)
let compose_remote (local : Serve.Service.cache_tier) remote =
  {
    local with
    Serve.Service.tier_find =
      (fun ~arch ~layer fp ->
        match local.Serve.Service.tier_find ~arch ~layer fp with
        | Some _ as hit -> hit
        | None ->
          (match remote ~arch ~layer fp with
           | Some entry ->
             local.Serve.Service.tier_store fp entry;
             Some (entry, Serve.Service.Cache_peer)
           | None -> None));
  }

let create cfg =
  let local_tier, fast_ok =
    match cfg.tier with
    | Some tier -> (tier, true)
    | None ->
      ( Serve.Service.tier_of_cache
          (Serve.Schedule_cache.create ?dir:cfg.cache_dir
             ~tmp_sweep_age_s:cfg.tmp_sweep_age_s ~capacity:cfg.cache_capacity ()),
        false )
  in
  let full_tier =
    match cfg.remote_probe with
    | Some remote -> compose_remote local_tier remote
    | None -> local_tier
  in
  {
    cfg;
    local_tier;
    full_tier;
    fast_ok;
    adm = Admission.create cfg.admission;
    lock = Mutex.create ();
    qc = Condition.create ();
    queue = Queue.create ();
    pending_cost = 0.;
    running_until = 0.;
    stop = Atomic.make false;
    conns = Hashtbl.create 16;
    conn_seq = 0;
    stats =
      {
        received = 0;
        admitted = 0;
        served = 0;
        failed = 0;
        rejected_queue_full = 0;
        rejected_quota = 0;
        rejected_shedding = 0;
        rejected_deadline = 0;
        max_queue_depth = 0;
        fastpath_served = 0;
        reaped = 0;
        persisted = 0;
      };
    flight = Array.make (max 16 cfg.flight_capacity) None;
    flight_pos = 0;
    ready = Semaphore.Binary.make false;
  }

let stats t = Mutex.protect t.lock (fun () -> { t.stats with served = t.stats.served })
let tier t = t.local_tier

(* Async-signal-safe: one atomic store, no locks. *)
let shutdown t = Atomic.set t.stop true
let draining t = Atomic.get t.stop

(* Block until the listening sockets are bound — spares tests and the soak
   harness a connect-retry loop against a server thread still starting. *)
let wait_ready t = Semaphore.Binary.acquire t.ready

(* ---- request resolution ----------------------------------------------- *)

let resolve t (req : Protocol.request) =
  match List.assoc_opt req.Protocol.arch Spec.variants with
  | None -> Error ("unknown architecture " ^ req.Protocol.arch)
  | Some arch ->
    let base = t.cfg.service in
    let service =
      if arch.Spec.aname = base.Serve.Service.arch.Spec.aname then base
      else { base with Serve.Service.arch; weights = Cosa.calibrate arch }
    in
    (match req.Protocol.target with
     | Protocol.Layer name ->
       (match Zoo.find name with
        | l ->
          Ok
            ( service,
              { Network.nname = name;
                entries = [ { Network.layer = l; repeats = 1 } ] } )
        | exception Not_found -> Error ("unknown layer " ^ name))
     | Protocol.Network name ->
       (match Network.find name with
        | Some n -> Ok (service, n)
        | None -> Error ("unknown network " ^ name)))

(* The fingerprint single-layer requests resolve to — per-shard admission
   statistics route by it; whole-network requests use the aggregate. *)
let fp_hint (service : Serve.Service.config) (net : Network.t) =
  match net.Network.entries with
  | [ { Network.layer; _ } ] -> Some (Serve.Service.request_fingerprint service layer)
  | _ -> None

(* ---- solver thread ---------------------------------------------------- *)

(* Callers hold [t.lock]. *)
let reject_stat t (reason : Protocol.reject_reason) =
  (match reason with
   | Protocol.Queue_full ->
     t.stats.rejected_queue_full <- t.stats.rejected_queue_full + 1;
     Telemetry.Metrics.incr m_rej_queue
   | Protocol.Quota_exceeded ->
     t.stats.rejected_quota <- t.stats.rejected_quota + 1;
     Telemetry.Metrics.incr m_rej_quota
   | Protocol.Shedding ->
     t.stats.rejected_shedding <- t.stats.rejected_shedding + 1;
     Telemetry.Metrics.incr m_rej_shed
   | Protocol.Deadline_unmeetable ->
     t.stats.rejected_deadline <- t.stats.rejected_deadline + 1;
     Telemetry.Metrics.incr m_rej_deadline);
  Protocol.Rejected reason

let layer_payload (service : Serve.Service.config)
    (lr : Serve.Service.layer_report) =
  match lr.Serve.Service.served with
  | Error _ -> None
  | Ok s ->
    let meta =
      {
        Mapping_io.weights =
          Some
            ( service.Serve.Service.weights.Cosa.w_util,
              service.Serve.Service.weights.Cosa.w_comp,
              service.Serve.Service.weights.Cosa.w_traf );
        strategy = Cosa.strategy_to_string service.Serve.Service.strategy;
        source = Serve.Service.origin_to_string s.Serve.Service.origin;
        verdict = s.Serve.Service.verdict;
        objective =
          Some
            ( s.Serve.Service.objective.Cosa.util,
              s.Serve.Service.objective.Cosa.comp,
              s.Serve.Service.objective.Cosa.traf,
              s.Serve.Service.objective.Cosa.total );
        solve_time = s.Serve.Service.solve_time;
      }
    in
    Some
      {
        Protocol.name = lr.Serve.Service.layer.Layer.name;
        repeats = lr.Serve.Service.repeats;
        origin = Serve.Service.origin_to_string s.Serve.Service.origin;
        verdict = s.Serve.Service.verdict;
        record = Mapping_io.record_to_string meta s.Serve.Service.mapping;
      }

let scheduled_of_report ~rung ~arrival ~queue_wait (service : Serve.Service.config)
    (report : Serve.Service.report) =
  Protocol.Scheduled
    {
      Protocol.rung;
      layers = List.filter_map (layer_payload service) report.Serve.Service.layers;
      total_latency = report.Serve.Service.total_latency;
      total_energy_pj = report.Serve.Service.total_energy_pj;
      queue_wait_s = queue_wait;
      serve_s = Robust.Deadline.now () -. arrival;
    }

let serve_job t (job : job) =
  let start = Robust.Deadline.now () in
  let queue_wait = start -. job.arrival in
  Telemetry.Metrics.observe h_queue_wait queue_wait;
  let remaining = Robust.Deadline.remaining job.deadline in
  (* Re-select at dequeue: the wait may have eaten the budget. The
     admission rung is an upper bound — dequeue can only degrade further
     (monotonic backpressure), never upgrade. *)
  let reselected =
    Mutex.protect t.lock (fun () ->
        let hit_rate = t.local_tier.Serve.Service.tier_hit_rate None in
        let budget = (Admission.config t.adm).Admission.safety *. remaining in
        match Robust.Ladder.select ~budget (Admission.estimates t.adm ~hit_rate) with
        | None -> None
        | Some r ->
          Some
            (if Robust.Ladder.rank r < Robust.Ladder.rank job.rung then r
             else job.rung))
  in
  match reselected with
  | None -> Mutex.protect t.lock (fun () -> reject_stat t Protocol.Deadline_unmeetable)
  | Some rung ->
    Telemetry.Metrics.incr (rung_counter rung);
    (* The request deadline caps the serve; the server's configured
       per-layer limit still applies — a generous SLO must not talk a
       joint solve into grinding for the whole budget. *)
    let service =
      { job.service with
        Serve.Service.deadline = job.deadline;
        time_limit = Float.min job.service.Serve.Service.time_limit remaining }
    in
    let report =
      Serve.Service.schedule_network ~tier:t.full_tier ~rung service job.net
    in
    let dt = Robust.Deadline.now () -. start in
    (* Feed the estimator the cost of what actually ran: a live solve is
       evidence about the rung; an all-cache serve is probe-cost
       evidence, whatever rung was nominally selected. *)
    let live_solves =
      report.Serve.Service.distinct - report.Serve.Service.served_from_cache
      - report.Serve.Service.failed
    in
    Mutex.protect t.lock (fun () ->
        Admission.observe t.adm
          (if live_solves > 0 then rung else Robust.Ladder.Cache_probe)
          dt;
        if report.Serve.Service.failed > 0 then
          match rung with
          | Robust.Ladder.Cache_probe ->
            (* cache-only probe missed: certified answer or typed no *)
            reject_stat t Protocol.Deadline_unmeetable
          | _ ->
            t.stats.failed <- t.stats.failed + 1;
            Telemetry.Metrics.incr m_failed;
            let first_failure =
              List.find_map
                (fun (lr : Serve.Service.layer_report) ->
                  match lr.Serve.Service.served with
                  | Error f -> Some (Robust.Failure.to_string f)
                  | Ok _ -> None)
                report.Serve.Service.layers
            in
            Protocol.Failed (Option.value first_failure ~default:"layer failure")
        else begin
          t.stats.served <- t.stats.served + 1;
          scheduled_of_report ~rung ~arrival:job.arrival ~queue_wait service report
        end)

let solver_loop t =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not (Atomic.get t.stop) do
      Condition.wait t.qc t.lock
    done;
    if Queue.is_empty t.queue then
      (* draining and nothing left: exit *)
      Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      t.pending_cost <- Float.max 0. (t.pending_cost -. job.est_cost);
      t.running_until <- Robust.Deadline.now () +. job.est_cost;
      Telemetry.Metrics.set_gauge g_queue_depth (float_of_int (Queue.length t.queue));
      Mutex.unlock t.lock;
      let resp =
        (* re-bind the request context here: the connection thread's
           binding does not follow the job across threads, and the solver
           path is where spans, log lines and outbound peer probes live *)
        try
          Telemetry.Trace.with_request ~id:job.req_id ~hop:job.hop (fun () ->
              serve_job t job)
        with e ->
          Mutex.protect t.lock (fun () ->
              t.stats.failed <- t.stats.failed + 1;
              Telemetry.Metrics.incr m_failed);
          Protocol.Failed ("internal error: " ^ Printexc.to_string e)
      in
      Mutex.protect t.lock (fun () -> t.running_until <- 0.);
      Telemetry.Metrics.observe h_e2e (Robust.Deadline.now () -. job.arrival);
      Mutex.protect job.reply.rm (fun () ->
          job.reply.resp <- Some resp;
          Condition.signal job.reply.rc);
      next ()
    end
  in
  next ()

(* ---- connection handling ---------------------------------------------- *)

(* Cache fast path: a pure local cache probe on the calling (connection)
   thread. Only legal when the tier is thread-safe ([fast_ok]); never
   consults peers (a [cache_only] request from a peer must not cascade)
   and never solves. Probes go through [tier_peek]: a fast-path miss on
   an ordinary request is re-probed by the solver path, so booking it
   here too would count two (or, across the rung-key walk, more) misses
   per request and deflate the hit rate admission prices against. A
   missed [cache_only] peer probe books no miss at all — it is answered
   with a typed rejection without reaching the solver path, and peer
   traffic should not skew the window that prices *local* admission.
   Fast-path hits always count. *)
let try_fast_path t (service : Serve.Service.config) net ~arrival ~budget =
  if not t.fast_ok then None
  else begin
    let scfg =
      { service with Serve.Service.deadline = Robust.Deadline.at (arrival +. budget) }
    in
    let peek_tier =
      { t.local_tier with
        Serve.Service.tier_find = t.local_tier.Serve.Service.tier_peek }
    in
    let report =
      Serve.Service.schedule_network ~tier:peek_tier
        ~rung:Robust.Ladder.Cache_probe scfg net
    in
    if report.Serve.Service.failed > 0 then None
    else begin
      let dt = Robust.Deadline.now () -. arrival in
      Mutex.protect t.lock (fun () ->
          t.stats.served <- t.stats.served + 1;
          t.stats.fastpath_served <- t.stats.fastpath_served + 1;
          Admission.observe t.adm Robust.Ladder.Cache_probe dt);
      Telemetry.Metrics.incr m_fastpath;
      Telemetry.Metrics.incr (rung_counter Robust.Ladder.Cache_probe);
      Telemetry.Metrics.observe h_e2e dt;
      Some
        (scheduled_of_report ~rung:Robust.Ladder.Cache_probe ~arrival
           ~queue_wait:0. scfg report)
    end
  end

(* Either answered inline (fast-path cache hit / rejection / resolution
   failure) or admitted — in which case the connection thread parks on
   the reply slot. [admitted_rung] reports the admission-time rung back
   to the flight recorder. *)
let handle_request t (admitted_rung : string ref) (req : Protocol.request) =
  let arrival = Robust.Deadline.now () in
  Mutex.protect t.lock (fun () ->
      t.stats.received <- t.stats.received + 1;
      Telemetry.Metrics.incr m_received);
  match resolve t req with
  | Error msg -> Protocol.Failed msg
  | Ok (service, net) ->
    let budget =
      if req.Protocol.budget_s > 0. && Float.is_finite req.Protocol.budget_s then
        req.Protocol.budget_s
      else t.cfg.default_budget_s
    in
    (* A cached answer is correct even while draining, so the fast path
       runs before the shedding check. *)
    (match try_fast_path t service net ~arrival ~budget with
     | Some resp ->
       admitted_rung := Robust.Ladder.to_string Robust.Ladder.Cache_probe;
       resp
     | None when req.Protocol.cache_only && t.fast_ok ->
       (* peer probe missed the thread-safe tier: typed miss, no queueing *)
       Mutex.protect t.lock (fun () -> reject_stat t Protocol.Deadline_unmeetable)
     | None ->
       let admitted =
         Mutex.protect t.lock (fun () ->
             if Atomic.get t.stop then `Done (reject_stat t Protocol.Shedding)
             else begin
               let queue_delay =
                 t.pending_cost +. Float.max 0. (t.running_until -. arrival)
               in
               let hit_rate =
                 t.local_tier.Serve.Service.tier_hit_rate (fp_hint service net)
               in
               match
                 Admission.decide t.adm ~now:arrival ~client:req.Protocol.client
                   ~budget_s:budget ~queue_depth:(Queue.length t.queue)
                   ~queue_delay_s:queue_delay ~hit_rate
               with
               | Error reason -> `Done (reject_stat t reason)
               | Ok selected ->
                 (* a cache-only request on a solver-confined cache still
                    goes through the queue, but pinned to the probe rung *)
                 let rung =
                   if req.Protocol.cache_only then Robust.Ladder.Cache_probe
                   else selected
                 in
                 admitted_rung := Robust.Ladder.to_string rung;
                 let est_cost =
                   List.fold_left
                     (fun acc (e : Robust.Ladder.estimate) ->
                       if Robust.Ladder.equal e.Robust.Ladder.rung rung then
                         e.Robust.Ladder.cost_s
                       else acc)
                     0.
                     (Admission.estimates t.adm ~hit_rate)
                 in
                 let job =
                   {
                     net;
                     service;
                     rung;
                     deadline = Robust.Deadline.at (arrival +. budget);
                     arrival;
                     est_cost;
                     req_id = req.Protocol.req_id;
                     hop = req.Protocol.hop;
                     reply =
                       { rm = Mutex.create (); rc = Condition.create (); resp = None };
                   }
                 in
                 Queue.push job t.queue;
                 t.pending_cost <- t.pending_cost +. est_cost;
                 t.stats.admitted <- t.stats.admitted + 1;
                 Telemetry.Metrics.incr m_admitted;
                 let depth = Queue.length t.queue in
                 if depth > t.stats.max_queue_depth then
                   t.stats.max_queue_depth <- depth;
                 Telemetry.Metrics.set_gauge g_queue_depth (float_of_int depth);
                 Condition.signal t.qc;
                 `Admitted job
             end)
       in
       (match admitted with
        | `Done resp -> resp
        | `Admitted job ->
          Mutex.protect job.reply.rm (fun () ->
              while job.reply.resp = None do
                Condition.wait job.reply.rc job.reply.rm
              done;
              Option.get job.reply.resp)))

(* ---- request ids and the flight recorder ------------------------------- *)

(* Minting for requests that arrive with id 0 ("server assigns").
   Uniqueness across processes and restarts comes from mixing the pid,
   the arrival clock and a process-local counter through a 64-bit
   finalizer — no RNG, so deterministic harnesses stay deterministic. *)
let req_seq = Atomic.make 1

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mint_req_id () =
  let c = Atomic.fetch_and_add req_seq 1 in
  let t_us = Int64.of_float (Robust.Deadline.now () *. 1e6) in
  let id = mix64 (Int64.logxor t_us (Int64.of_int ((Unix.getpid () lsl 24) lxor c))) in
  if id = 0L then 1L else id

let target_string = function
  | Protocol.Layer n -> "layer:" ^ n
  | Protocol.Network n -> "network:" ^ n

let flight_of_response (req : Protocol.request) ~arrival ~admitted resp =
  let verdict, rung_served, origin, queue_wait, serve_s =
    match resp with
    | Protocol.Scheduled s ->
      let origin =
        match s.Protocol.layers with
        | (l : Protocol.served_layer) :: _ -> l.Protocol.origin
        | [] -> ""
      in
      ( "scheduled", Robust.Ladder.to_string s.Protocol.rung, origin,
        s.Protocol.queue_wait_s, s.Protocol.serve_s )
    | Protocol.Rejected r ->
      ( "rejected:" ^ Protocol.reject_reason_to_string r, "", "", 0.,
        Robust.Deadline.now () -. arrival )
    | Protocol.Failed _ -> ("failed", "", "", 0., Robust.Deadline.now () -. arrival)
    | Protocol.Stats _ -> ("stats", "", "", 0., 0.)  (* never reaches the recorder *)
  in
  {
    f_id = req.Protocol.req_id;
    f_hop = req.Protocol.hop;
    f_client = req.Protocol.client;
    f_target = target_string req.Protocol.target;
    f_cache_only = req.Protocol.cache_only;
    f_rung_admitted = admitted;
    f_rung_served = rung_served;
    f_origin = origin;
    f_verdict = verdict;
    f_queue_wait_s = queue_wait;
    f_serve_s = serve_s;
    f_ts = arrival;
  }

let record_flight t entry =
  Mutex.protect t.lock (fun () ->
      t.flight.(t.flight_pos mod Array.length t.flight) <- Some entry;
      t.flight_pos <- t.flight_pos + 1)

(* The full per-request path: mint an id if the client did not, bind it
   to this thread for the duration (so every span, counter instant, log
   line and outbound peer probe below carries it), serve, then write the
   flight-recorder record and the structured serve/reject/fail event. *)
let process_request t (req : Protocol.request) =
  let req =
    if req.Protocol.req_id = 0L then { req with Protocol.req_id = mint_req_id () }
    else req
  in
  let arrival = Robust.Deadline.now () in
  Telemetry.Trace.with_request ~id:req.Protocol.req_id ~hop:req.Protocol.hop
    (fun () ->
      let admitted_rung = ref "" in
      let resp = handle_request t admitted_rung req in
      let entry = flight_of_response req ~arrival ~admitted:!admitted_rung resp in
      record_flight t entry;
      (match resp with
       | Protocol.Scheduled _ ->
         Telemetry.Log.info "daemon.serve"
           [ ("target", entry.f_target); ("rung", entry.f_rung_served);
             ("origin", entry.f_origin);
             ("serve_s", Printf.sprintf "%.6f" entry.f_serve_s) ]
       | Protocol.Rejected r ->
         Telemetry.Log.warn "daemon.reject"
           [ ("target", entry.f_target);
             ("reason", Protocol.reject_reason_to_string r) ]
       | Protocol.Failed msg ->
         Telemetry.Log.error "daemon.fail"
           [ ("target", entry.f_target); ("error", msg) ]
       | Protocol.Stats _ -> ());
      resp)

(* ---- the Stats frame ---------------------------------------------------- *)

let flight_entries t =
  Mutex.protect t.lock (fun () ->
      let len = Array.length t.flight in
      let n = t.flight_pos in
      let first = if n <= len then 0 else n - len in
      let out = ref [] in
      for i = n - 1 downto first do
        match t.flight.(i mod len) with Some e -> out := e :: !out | None -> ()
      done;
      !out)

let flight_json t =
  let esc = Telemetry.Trace.json_escape in
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":\"%s\",\"hop\":%d,\"client\":\"%s\",\"target\":\"%s\",\
            \"cache_only\":%b,\"rung_admitted\":\"%s\",\"rung_served\":\"%s\",\
            \"origin\":\"%s\",\"verdict\":\"%s\",\"queue_wait_s\":%.6f,\
            \"serve_s\":%.6f,\"ts\":%.6f}"
           (Telemetry.Trace.request_id_hex e.f_id)
           e.f_hop (esc e.f_client) (esc e.f_target) e.f_cache_only
           (esc e.f_rung_admitted) (esc e.f_rung_served) (esc e.f_origin)
           (esc e.f_verdict) e.f_queue_wait_s e.f_serve_s e.f_ts))
    (flight_entries t);
  Buffer.add_char buf ']';
  Buffer.contents buf

(* Versioned JSON snapshot for [Stats_full]. Strictly read-only: the
   stats mirrors are copied under the lock, the cache tier is consulted
   through [tier_stats]/[tier_hit_rate] only (never find/peek, so no
   miss is ever booked), the admission estimator is introspected without
   touching its windows, and nothing signals the solver thread. A stats
   query therefore cannot perturb admission pricing, hit-rate accounting
   or the queue — asserted by test. *)
let stats_payload t scope =
  match scope with
  | Protocol.Stats_prometheus ->
    (* The registry only records while the span sink is armed; the
       always-on stats mirror is authoritative for the daemon's own
       counters. Splice it over the registry values so a scrape of an
       untraced daemon still carries the operational numbers. *)
    let st, queue_depth, conns =
      Mutex.protect t.lock (fun () ->
          ( { t.stats with served = t.stats.served },
            Queue.length t.queue,
            Hashtbl.length t.conns ))
    in
    let snap = Telemetry.Metrics.snapshot () in
    let live_counters =
      [ ("daemon.received", st.received); ("daemon.admitted", st.admitted);
        ("daemon.served", st.served); ("daemon.failed", st.failed);
        ("daemon.rejected.queue_full", st.rejected_queue_full);
        ("daemon.rejected.quota", st.rejected_quota);
        ("daemon.rejected.shedding", st.rejected_shedding);
        ("daemon.rejected.deadline", st.rejected_deadline);
        ("daemon.fastpath_served", st.fastpath_served);
        ("daemon.conns_reaped", st.reaped);
        ("daemon.persisted", st.persisted) ]
    in
    let live_gauges =
      [ ("daemon.queue_depth", float_of_int queue_depth);
        ("daemon.connections", float_of_int conns);
        ("daemon.max_queue_depth", float_of_int st.max_queue_depth);
        ("cache.hit_rate", t.local_tier.Serve.Service.tier_hit_rate None) ]
    in
    let merge live registry =
      List.sort compare
        (live @ List.filter (fun (n, _) -> not (List.mem_assoc n live)) registry)
    in
    Telemetry.Export.prometheus
      {
        snap with
        Telemetry.Metrics.counters = merge live_counters snap.Telemetry.Metrics.counters;
        gauges = merge live_gauges snap.Telemetry.Metrics.gauges;
      }
  | Protocol.Stats_flight -> flight_json t
  | Protocol.Stats_full ->
    let st, queue_depth, conns, flight_total, admission =
      Mutex.protect t.lock (fun () ->
          ( { t.stats with served = t.stats.served },
            Queue.length t.queue,
            Hashtbl.length t.conns,
            t.flight_pos,
            Admission.introspect t.adm ))
    in
    let hit_rate = t.local_tier.Serve.Service.tier_hit_rate None in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"snapshot_version\":1,\"protocol_version\":%d,\"now\":%.6f,\
          \"pid\":%d,\"draining\":%b"
         Protocol.version (Robust.Deadline.now ()) (Unix.getpid ())
         (Atomic.get t.stop));
    Buffer.add_string buf
      (Printf.sprintf
         ",\"daemon\":{\"received\":%d,\"admitted\":%d,\"served\":%d,\
          \"failed\":%d,\"rejected\":{\"queue_full\":%d,\"quota\":%d,\
          \"shedding\":%d,\"deadline\":%d},\"max_queue_depth\":%d,\
          \"fastpath_served\":%d,\"reaped\":%d,\"persisted\":%d,\
          \"queue_depth\":%d,\"connections\":%d}"
         st.received st.admitted st.served st.failed st.rejected_queue_full
         st.rejected_quota st.rejected_shedding st.rejected_deadline
         st.max_queue_depth st.fastpath_served st.reaped st.persisted
         queue_depth conns);
    Buffer.add_string buf ",\"admission\":[";
    List.iteri
      (fun i (rung, samples, cost_s) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "{\"rung\":\"%s\",\"samples\":%d,\"cost_s\":%.6f}"
             (Robust.Ladder.to_string rung) samples cost_s))
      admission;
    Buffer.add_char buf ']';
    Buffer.add_string buf (Printf.sprintf ",\"cache\":{\"hit_rate\":%.6f" hit_rate);
    (match t.local_tier.Serve.Service.tier_stats () with
     | Some (cs : Serve.Schedule_cache.stats) ->
       Buffer.add_string buf
         (Printf.sprintf
            ",\"hits\":%d,\"disk_hits\":%d,\"misses\":%d,\"disk_rejects\":%d,\
             \"evictions\":%d,\"stores\":%d"
            cs.Serve.Schedule_cache.hits cs.Serve.Schedule_cache.disk_hits
            cs.Serve.Schedule_cache.misses cs.Serve.Schedule_cache.disk_rejects
            cs.Serve.Schedule_cache.evictions cs.Serve.Schedule_cache.stores)
     | None -> ());
    Buffer.add_char buf '}';
    List.iter
      (fun (name, thunk) ->
        let payload = try thunk () with _ -> "null" in
        Buffer.add_string buf
          (Printf.sprintf ",\"%s\":%s" (Telemetry.Trace.json_escape name) payload))
      t.cfg.stats_extra;
    Buffer.add_string buf
      (Printf.sprintf ",\"metrics\":%s"
         (Telemetry.Export.metrics_json (Telemetry.Metrics.snapshot ())));
    Buffer.add_string buf
      (Printf.sprintf ",\"flight_total\":%d,\"flight\":%s" flight_total
         (flight_json t));
    Buffer.add_char buf '}';
    Buffer.contents buf

(* Response write with the network fault plane. Sites fire only when a
   chaos harness armed them (and [net.peer_crash] additionally requires
   the config opt-in), so production writes cost four disarmed checks. *)
let write_response t fd resp =
  let payload = Protocol.encode_response resp in
  if Robust.Fault.fire "net.slow_peer" then Thread.delay 0.25;
  if Robust.Fault.fire "net.conn_reset" then begin
    (* cut the connection instead of answering: the client sees EOF/reset *)
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    false
  end
  else if t.cfg.fault_crash_exit && Robust.Fault.fire "net.peer_crash" then begin
    (* torn frame, then the whole process dies mid-response *)
    (try Protocol.write_torn_frame fd payload with Unix.Unix_error _ -> ());
    Stdlib.exit 42
  end
  else if Robust.Fault.fire "net.partial_frame" then begin
    (* header promises the full frame; half the payload arrives, then the
       connection stalls and closes — the classic torn write *)
    (try Protocol.write_torn_frame fd payload with Unix.Unix_error _ -> ());
    Thread.delay 0.05;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    false
  end
  else
    try
      Protocol.write_frame fd payload;
      true
    with Unix.Unix_error _ -> false

let conn_loop t id conn =
  (* The receive deadline makes [read_frame_timeout] surface idleness at
     frame boundaries (for the reaper) and stalls mid-frame (poisoned
     connection) without a watchdog thread. *)
  if t.cfg.read_deadline_s > 0. then
    (try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO t.cfg.read_deadline_s
     with Unix.Unix_error _ | Invalid_argument _ -> ());
  (* The send deadline bounds response writes: a client that stops
     reading makes the write raise EAGAIN after the deadline, which
     [write_response] reports as a dead connection. Without it the
     connection thread would block in [write_frame] with [busy] set and
     the drain loop could never quiesce. *)
  if t.cfg.write_deadline_s > 0. then
    (try Unix.setsockopt_float conn.fd Unix.SO_SNDTIMEO t.cfg.write_deadline_s
     with Unix.Unix_error _ | Invalid_argument _ -> ());
  let rec loop () =
    let event =
      if t.cfg.read_deadline_s > 0. then Protocol.read_frame_timeout conn.fd
      else
        match Protocol.read_frame conn.fd with
        | Ok (Some payload) -> `Frame payload
        | Ok None -> `Eof
        | Error msg -> `Error msg
    in
    match event with
    | `Eof | `Error _ -> ()  (* clean close or dead/hostile/stalled peer *)
    | `Idle ->
      if
        t.cfg.idle_timeout_s > 0.
        && Robust.Deadline.now () -. conn.last > t.cfg.idle_timeout_s
      then begin
        Mutex.protect t.lock (fun () -> t.stats.reaped <- t.stats.reaped + 1);
        Telemetry.Metrics.incr m_reaped;
        Telemetry.Log.info "daemon.reap"
          [ ("idle_s", Printf.sprintf "%.1f" (Robust.Deadline.now () -. conn.last)) ]
      end
      else loop ()
    | `Frame payload ->
      conn.last <- Robust.Deadline.now ();
      conn.busy <- true;
      let resp =
        match Protocol.decode_incoming payload with
        | Error msg ->
          Telemetry.Log.warn "daemon.malformed" [ ("error", msg) ];
          Protocol.Failed ("malformed request: " ^ msg)
        | Ok (Protocol.Stats_query scope) ->
          (* answered inline on this connection thread: read-only, never
             queued, never counted as a request *)
          Protocol.Stats (stats_payload t scope)
        | Ok (Protocol.Req req) -> process_request t req
      in
      let alive = write_response t conn.fd resp in
      conn.busy <- false;
      if alive then loop ()
  in
  (try loop () with _ -> ());
  conn.busy <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.lock (fun () -> Hashtbl.remove t.conns id)

(* ---- lifecycle -------------------------------------------------------- *)

let tcp_listener host port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt sock Unix.SO_REUSEADDR true with Unix.Unix_error _ -> ());
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ ->
      (match Unix.gethostbyname host with
       | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
         Unix.inet_addr_loopback
       | he -> he.Unix.h_addr_list.(0))
  in
  Unix.bind sock (Unix.ADDR_INET (addr, port));
  Unix.listen sock 64;
  sock

(* Run the daemon on the calling thread until a drain completes. Binds
   the sockets (replacing any stale file), serves until [shutdown], then
   drains: stop accepting, answer everything queued or in flight,
   persist the cache, close connections, return. *)
let run t =
  (* A client vanishing mid-response must cost one failed write, not the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX t.cfg.socket_path);
  Unix.listen sock 64;
  let tcp_sock = Option.map (fun (h, p) -> tcp_listener h p) t.cfg.tcp in
  let socks = sock :: Option.to_list tcp_sock in
  let solver = Thread.create solver_loop t in
  Semaphore.Binary.release t.ready;
  Telemetry.Log.info "daemon.start"
    (("socket", t.cfg.socket_path)
     ::
     (match t.cfg.tcp with
      | Some (h, p) -> [ ("tcp", Printf.sprintf "%s:%d" h p) ]
      | None -> []));
  let accept_from s =
    match Unix.accept s with
    | fd, _ ->
      let conn = { fd; busy = false; last = Robust.Deadline.now () } in
      let id =
        Mutex.protect t.lock (fun () ->
            t.conn_seq <- t.conn_seq + 1;
            Hashtbl.replace t.conns t.conn_seq conn;
            t.conn_seq)
      in
      ignore (Thread.create (conn_loop t id) conn)
    | exception Unix.Unix_error _ -> ()  (* incl. EINTR: retry next tick *)
  in
  let accept_one () =
    match Unix.select socks [] [] 0.05 with
    | [], _, _ -> ()
    | ready, _, _ -> List.iter accept_from ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  while not (Atomic.get t.stop) do
    (try accept_one () with Unix.Unix_error _ -> ());
    match t.cfg.housekeeping with
    | Some tick -> ( try tick () with _ -> ())
    | None -> ()
  done;
  (* Drain: no new connections; existing connections get [Shedding] for
     new requests (admission checks the flag); queued and in-flight work
     still gets answered. A connection stays [busy] from frame read to
     response write, so "queue empty and nobody busy" means every
     admitted request has been answered. *)
  List.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) socks;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  Telemetry.Log.info "daemon.drain"
    [ ("queued", string_of_int (Mutex.protect t.lock (fun () -> Queue.length t.queue))) ];
  (* Drain backstop: a connection can stay [busy] past any reasonable
     bound only when its client stopped reading (the response write is
     additionally bounded by SO_SNDTIMEO) or its reply is stuck behind a
     wedged solve. After [drain_deadline_s] without quiescing,
     force-shutdown the busy connections' sockets: their blocked writes
     fail immediately, the threads clear [busy] and deregister, and the
     drain completes instead of hanging SIGTERM forever. Re-armed per
     interval in case a connection goes busy after the first sweep. *)
  let drain_start = Robust.Deadline.now () in
  let next_force = ref (drain_start +. t.cfg.drain_deadline_s) in
  let rec drain () =
    let quiesced =
      Mutex.protect t.lock (fun () ->
          Condition.broadcast t.qc;
          Queue.is_empty t.queue
          && Hashtbl.fold (fun _ c acc -> acc && not c.busy) t.conns true)
    in
    if not quiesced then begin
      if t.cfg.drain_deadline_s > 0. && Robust.Deadline.now () >= !next_force then begin
        next_force := Robust.Deadline.now () +. t.cfg.drain_deadline_s;
        let stuck =
          Mutex.protect t.lock (fun () ->
              Hashtbl.fold (fun _ c acc -> if c.busy then c.fd :: acc else acc)
                t.conns [])
        in
        List.iter
          (fun fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          stuck
      end;
      Thread.delay 0.01;
      drain ()
    end
  in
  drain ();
  Thread.join solver;
  let written = t.local_tier.Serve.Service.tier_persist () in
  Mutex.protect t.lock (fun () -> t.stats.persisted <- written);
  Telemetry.Log.info "daemon.drained"
    [ ("served", string_of_int t.stats.served);
      ("failed", string_of_int t.stats.failed);
      ("persisted", string_of_int written) ];
  (* Idle connections: shut them down; their threads wake from [read]
     with EOF and deregister themselves. *)
  let fds =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns [])
  in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds

(* Run on a background thread; [shutdown] + [Thread.join] to stop. *)
let start t = Thread.create run t
