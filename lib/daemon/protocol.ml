(* Length-prefixed binary wire protocol for the scheduling daemon.

   A frame is a 4-byte big-endian payload length followed by the payload;
   the payload opens with a magic byte and a version byte, then a message
   tag and tagged fields. Scalars are fixed-width big-endian (floats as
   IEEE-754 bit patterns via [Int64.bits_of_float], so budgets and
   latencies round-trip bit-exactly); strings are a 4-byte length followed
   by raw bytes. Decoding is total: every read is bounds-checked and any
   malformed frame comes back as [Error], never an exception — a confused
   or adversarial client can cost the server one typed protocol error,
   never a crash.

   The frame length is capped: a client that announces a multi-gigabyte
   frame is refused at the header, before any allocation. *)

let magic = 0xC5

(* v2 (the cluster tier) added a request flags byte carrying [cache_only].
   v3 (the observability tier) appends a 64-bit request id and an origin
   hop count to requests, and adds the stats-query/stats frame pair for
   live introspection. Version mismatches are answered with a typed
   expected-vs-got error so a mixed-version deployment fails loudly and
   legibly, not as "garbage". *)
let version = 3

(* Generous for schedules (a full network response is ~100 KiB), tight
   enough that a hostile length field cannot balloon memory. *)
let max_frame = 16 * 1024 * 1024

type target = Layer of string | Network of string

type request = {
  client : string;  (* quota identity; empty = anonymous shared bucket *)
  budget_s : float;  (* SLO budget from arrival, seconds; <= 0 = server default *)
  arch : string;  (* architecture name, e.g. "baseline" *)
  target : target;
  cache_only : bool;
      (* peer cache probe: serve from the local cache or answer a typed
         rejection — never solve, never cascade to further peers *)
  req_id : int64;
      (* request-scoped trace id; 0 = unassigned, the server mints one.
         A peer probe forwards the originating request's id so one id
         stitches the whole causal chain across hosts. *)
  hop : int;  (* 0 at the originating client; +1 per daemon-to-peer hop *)
}

type reject_reason = Queue_full | Quota_exceeded | Shedding | Deadline_unmeetable

let reject_reason_to_string = function
  | Queue_full -> "queue-full"
  | Quota_exceeded -> "quota-exceeded"
  | Shedding -> "shedding"
  | Deadline_unmeetable -> "deadline-unmeetable"

type served_layer = {
  name : string;
  repeats : int;
  origin : string;  (* cache(mem) / cache(disk) / a ladder-rung name *)
  verdict : string;  (* certification verdict token *)
  record : string;  (* Mapping_io provenance record — re-certifiable *)
}

type scheduled = {
  rung : Robust.Ladder.rung;  (* the rung the request was served at *)
  layers : served_layer list;
  total_latency : float;  (* repetition-weighted model cycles *)
  total_energy_pj : float;
  queue_wait_s : float;
  serve_s : float;  (* admission to response, server-side *)
}

type response =
  | Scheduled of scheduled
  | Rejected of reject_reason
  | Failed of string  (* typed failure text (solver/protocol), never silent *)
  | Stats of string  (* introspection payload: JSON or Prometheus text *)

(* What a stats query asks for. [Full] is the versioned JSON snapshot;
   [Flight] is just the flight-recorder ring (the trace-dump view);
   [Prometheus] is metrics-only text exposition for scrapers. *)
type stats_scope = Stats_full | Stats_flight | Stats_prometheus

type incoming = Req of request | Stats_query of stats_scope

(* ---- encoding --------------------------------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Protocol.put_u32";
  put_u8 buf (v lsr 24);
  put_u8 buf (v lsr 16);
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_i64 buf (v : int64) =
  for i = 7 downto 0 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let put_f64 buf v = put_i64 buf (Int64.bits_of_float v)

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let header buf tag =
  put_u8 buf magic;
  put_u8 buf version;
  put_u8 buf tag

let tag_request = 0x01
let tag_scheduled = 0x02
let tag_rejected = 0x03
let tag_failed = 0x04
let tag_stats_request = 0x05
let tag_stats = 0x06

let encode_request (r : request) =
  let buf = Buffer.create 128 in
  header buf tag_request;
  put_str buf r.client;
  put_f64 buf r.budget_s;
  put_str buf r.arch;
  (match r.target with
   | Layer name ->
     put_u8 buf 0;
     put_str buf name
   | Network name ->
     put_u8 buf 1;
     put_str buf name);
  put_u8 buf (if r.cache_only then 1 else 0);
  put_i64 buf r.req_id;
  put_u8 buf r.hop;
  Buffer.to_bytes buf

let stats_scope_code = function
  | Stats_full -> 0
  | Stats_flight -> 1
  | Stats_prometheus -> 2

let encode_stats_request scope =
  let buf = Buffer.create 8 in
  header buf tag_stats_request;
  put_u8 buf (stats_scope_code scope);
  Buffer.to_bytes buf

let reject_code = function
  | Queue_full -> 0
  | Quota_exceeded -> 1
  | Shedding -> 2
  | Deadline_unmeetable -> 3

let encode_response (resp : response) =
  let buf = Buffer.create 256 in
  (match resp with
   | Scheduled s ->
     header buf tag_scheduled;
     put_str buf (Robust.Ladder.to_string s.rung);
     put_u32 buf (List.length s.layers);
     List.iter
       (fun (l : served_layer) ->
         put_str buf l.name;
         put_u32 buf l.repeats;
         put_str buf l.origin;
         put_str buf l.verdict;
         put_str buf l.record)
       s.layers;
     put_f64 buf s.total_latency;
     put_f64 buf s.total_energy_pj;
     put_f64 buf s.queue_wait_s;
     put_f64 buf s.serve_s
   | Rejected reason ->
     header buf tag_rejected;
     put_u8 buf (reject_code reason)
   | Failed msg ->
     header buf tag_failed;
     put_str buf msg
   | Stats payload ->
     header buf tag_stats;
     put_str buf payload);
  Buffer.to_bytes buf

(* ---- decoding --------------------------------------------------------- *)

exception Malformed of string

let decode f (b : bytes) =
  let pos = ref 0 in
  let len = Bytes.length b in
  let need n what =
    if !pos + n > len then raise (Malformed (Printf.sprintf "truncated %s" what))
  in
  let u8 what =
    need 1 what;
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let u32 what =
    need 4 what;
    let v =
      (Char.code (Bytes.get b !pos) lsl 24)
      lor (Char.code (Bytes.get b (!pos + 1)) lsl 16)
      lor (Char.code (Bytes.get b (!pos + 2)) lsl 8)
      lor Char.code (Bytes.get b (!pos + 3))
    in
    pos := !pos + 4;
    v
  in
  let f64 what =
    need 8 what;
    let v = ref 0L in
    for _ = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b !pos)));
      incr pos
    done;
    Int64.float_of_bits !v
  in
  let str what =
    let n = u32 (what ^ " length") in
    need n what;
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    s
  in
  match
    let m = u8 "magic" in
    if m <> magic then
      raise (Malformed (Printf.sprintf "magic mismatch: expected 0x%02x, got 0x%02x" magic m));
    let v = u8 "version" in
    if v <> version then
      raise (Malformed (Printf.sprintf "version mismatch: expected v%d, got v%d" version v));
    let r = f ~u8 ~u32 ~f64 ~str in
    if !pos <> len then raise (Malformed "trailing bytes");
    r
  with
  | r -> Ok r
  | exception Malformed msg -> Error msg

let decode_request_fields ~u8 ~f64 ~str =
  let client = str "client" in
  let budget_s = f64 "budget" in
  let arch = str "arch" in
  let target =
    match u8 "target tag" with
    | 0 -> Layer (str "layer name")
    | 1 -> Network (str "network name")
    | t -> raise (Malformed (Printf.sprintf "unknown target tag %d" t))
  in
  let flags = u8 "flags" in
  if flags land lnot 0x01 <> 0 then
    raise (Malformed (Printf.sprintf "unknown request flags 0x%02x" flags));
  let req_id = ref 0L in
  for _ = 0 to 7 do
    req_id := Int64.logor (Int64.shift_left !req_id 8) (Int64.of_int (u8 "request id"))
  done;
  let hop = u8 "hop count" in
  { client; budget_s; arch; target; cache_only = flags land 0x01 = 1;
    req_id = !req_id; hop }

let decode_stats_scope ~u8 =
  match u8 "stats scope" with
  | 0 -> Stats_full
  | 1 -> Stats_flight
  | 2 -> Stats_prometheus
  | s -> raise (Malformed (Printf.sprintf "unknown stats scope %d" s))

let decode_request b =
  decode
    (fun ~u8 ~u32:_ ~f64 ~str ->
      let tag = u8 "tag" in
      if tag <> tag_request then raise (Malformed (Printf.sprintf "tag 0x%02x is not a request" tag));
      decode_request_fields ~u8 ~f64 ~str)
    b

(* A server-side frame may be a scheduling request or a stats query; the
   two arrive over the same socket, distinguished only by tag. *)
let decode_incoming b =
  decode
    (fun ~u8 ~u32:_ ~f64 ~str ->
      match u8 "tag" with
      | t when t = tag_request -> Req (decode_request_fields ~u8 ~f64 ~str)
      | t when t = tag_stats_request -> Stats_query (decode_stats_scope ~u8)
      | t -> raise (Malformed (Printf.sprintf "tag 0x%02x is not a request" t)))
    b

let decode_response b =
  decode
    (fun ~u8 ~u32 ~f64 ~str ->
      match u8 "tag" with
      | t when t = tag_scheduled ->
        let rung_s = str "rung" in
        let rung =
          match Robust.Ladder.of_string rung_s with
          | Some r -> r
          | None -> raise (Malformed (Printf.sprintf "unknown rung %S" rung_s))
        in
        let n = u32 "layer count" in
        if n > 100_000 then raise (Malformed "absurd layer count");
        let layers =
          List.init n (fun _ ->
              let name = str "layer name" in
              let repeats = u32 "repeats" in
              let origin = str "origin" in
              let verdict = str "verdict" in
              let record = str "record" in
              { name; repeats; origin; verdict; record })
        in
        let total_latency = f64 "total latency" in
        let total_energy_pj = f64 "total energy" in
        let queue_wait_s = f64 "queue wait" in
        let serve_s = f64 "serve time" in
        Scheduled { rung; layers; total_latency; total_energy_pj; queue_wait_s; serve_s }
      | t when t = tag_rejected ->
        (match u8 "reject reason" with
         | 0 -> Rejected Queue_full
         | 1 -> Rejected Quota_exceeded
         | 2 -> Rejected Shedding
         | 3 -> Rejected Deadline_unmeetable
         | r -> raise (Malformed (Printf.sprintf "unknown reject reason %d" r)))
      | t when t = tag_failed -> Failed (str "failure text")
      | t when t = tag_stats -> Stats (str "stats payload")
      | t -> raise (Malformed (Printf.sprintf "unknown response tag 0x%02x" t)))
    b

(* ---- framing ---------------------------------------------------------- *)

(* Retry short reads/writes; EINTR restarts. EOF mid-frame is an error,
   EOF at a frame boundary is a clean close ([Ok None] on read). *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = try Unix.write fd b off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd payload =
  let n = Bytes.length payload in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  write_all fd hdr 0 4;
  write_all fd payload 0 n

let read_exact fd buf len =
  let rec go off =
    if off >= len then `Ok
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then `Eof else `Truncated
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 4 with
  | `Eof -> Ok None
  | `Truncated -> Error "truncated frame header"
  | `Ok ->
    let n =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if n > max_frame then Error (Printf.sprintf "frame of %d bytes exceeds limit" n)
    else begin
      let payload = Bytes.create n in
      match read_exact fd payload n with
      | `Ok -> Ok (Some payload)
      | `Eof | `Truncated -> Error "truncated frame payload"
    end

(* Deadline-aware framing for connections carrying SO_RCVTIMEO. A receive
   timeout at a frame *boundary* (no header byte read yet) is benign
   idleness — the caller decides whether to keep waiting or reap the
   connection. A timeout *inside* a frame means the peer stalled mid-write
   (the partial-frame fault, a wedged client) and is a hard read-deadline
   error: the connection is poisoned and must be closed. *)
let read_exact_timeout fd buf len =
  let rec go off =
    if off >= len then `Ok off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then `Eof else `Truncated
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Timeout off
  in
  go 0

let read_frame_timeout fd =
  let hdr = Bytes.create 4 in
  match read_exact_timeout fd hdr 4 with
  | `Eof -> `Eof
  | `Truncated -> `Error "truncated frame header"
  | `Timeout 0 -> `Idle
  | `Timeout _ -> `Error "read deadline exceeded mid-header"
  | `Ok _ ->
    let n =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if n > max_frame then `Error (Printf.sprintf "frame of %d bytes exceeds limit" n)
    else begin
      let payload = Bytes.create n in
      match read_exact_timeout fd payload n with
      | `Ok _ -> `Frame payload
      | `Eof | `Truncated -> `Error "truncated frame payload"
      | `Timeout _ -> `Error "read deadline exceeded mid-frame"
    end

(* Fault-injection helper: a frame header promising [length payload] bytes
   followed by only the first half of them — the torn write a peer crash
   or a cut connection produces. Receivers must treat it as a transport
   error (mid-frame stall/EOF), never as a short valid frame. *)
let write_torn_frame fd payload =
  let n = Bytes.length payload in
  if n > max_frame then invalid_arg "Protocol.write_torn_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  write_all fd hdr 0 4;
  write_all fd payload 0 (min n (max 1 (n / 2)))
