(* Ablations over the design decisions called out in DESIGN.md §4. *)

let subset () =
  (* a representative slice: heavy 3x3, pointwise, grouped, GEMM *)
  List.map Zoo.find
    [ "3_7_512_512_1"; "3_14_256_256_1"; "1_56_256_64_1"; "1_14_256_1024_1";
      "g3_28_8_8_1"; "ocr_35_700_2048" ]

(* DESIGN §4.2: solver strategy — joint MIP vs two-stage decomposition. *)
let strategy () =
  let arch = Spec.baseline in
  let buf = Buffer.create 2048 in
  Common.section buf "Ablation: joint MIP vs two-stage decomposition vs auto";
  let tab =
    Prim.Texttab.create [ "strategy"; "geomean latency"; "geomean Eq.12"; "avg time (s)" ]
  in
  List.iter
    (fun (name, strategy) ->
      let lat = ref [] and obj = ref [] and time = ref 0. in
      List.iter
        (fun layer ->
          let r = Cosa.schedule ~strategy arch layer in
          lat := Common.latency arch r.Cosa.mapping :: !lat;
          obj := exp r.Cosa.objective.Cosa.total :: !obj;
          time := !time +. r.Cosa.solve_time)
        (subset ());
      Prim.Texttab.add_row tab
        [ name;
          Prim.Texttab.cell_f (Prim.Stats.geomean !lat);
          Printf.sprintf "%.3g" (Prim.Stats.geomean !obj);
          Printf.sprintf "%.2f" (!time /. float_of_int (List.length (subset ()))) ])
    [ ("joint", Cosa.Joint); ("two-stage", Cosa.Two_stage); ("auto", Cosa.Auto) ];
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.contents buf

(* DESIGN §4.2: objective-weight sweep (each term zeroed in turn). *)
let weights () =
  let arch = Spec.baseline in
  let base = Cosa.calibrate arch in
  let buf = Buffer.create 2048 in
  Common.section buf "Ablation: objective weights (geomean model latency, lower is better)";
  let tab = Prim.Texttab.create [ "weights"; "geomean latency"; "vs calibrated" ] in
  let run weights =
    Prim.Stats.geomean
      (List.map
         (fun layer -> Common.latency arch (Cosa.schedule ~weights arch layer).Cosa.mapping)
         (subset ()))
  in
  let calibrated = run base in
  List.iter
    (fun (name, w) ->
      let g = run w in
      Prim.Texttab.add_row tab
        [ name; Prim.Texttab.cell_f g; Prim.Texttab.cell_fx (g /. calibrated) ])
    [ ("calibrated", base);
      ("wU=0", { base with Cosa.w_util = 0. });
      ("wC=0", { base with Cosa.w_comp = 0. });
      ("wT=0", { base with Cosa.w_traf = 0. }) ];
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.contents buf

(* DESIGN §4.3: anytime behaviour vs branch-and-bound node budget. *)
let node_budget () =
  let arch = Spec.baseline in
  let buf = Buffer.create 2048 in
  Common.section buf "Ablation: schedule quality vs branch-and-bound node budget (joint MIP)";
  let tab = Prim.Texttab.create [ "node limit"; "geomean latency"; "avg time (s)" ] in
  List.iter
    (fun nodes ->
      let lat = ref [] and time = ref 0. in
      List.iter
        (fun layer ->
          let r = Cosa.schedule ~strategy:Cosa.Joint ~node_limit:nodes arch layer in
          lat := Common.latency arch r.Cosa.mapping :: !lat;
          time := !time +. r.Cosa.solve_time)
        (subset ());
      Prim.Texttab.add_row tab
        [ string_of_int nodes;
          Prim.Texttab.cell_f (Prim.Stats.geomean !lat);
          Printf.sprintf "%.2f" (!time /. float_of_int (List.length (subset ()))) ])
    [ 50; 500; 5_000; 50_000 ];
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.contents buf

(* DESIGN §4.1: symmetry grouping of identical prime factors. *)
let grouping () =
  let arch = Spec.baseline in
  let buf = Buffer.create 2048 in
  Common.section buf "Ablation: grouped-count encoding vs per-factor binaries (MIP size & solve)";
  let tab =
    Prim.Texttab.create
      [ "encoding"; "avg vars"; "avg constrs"; "avg solve (s)"; "geomean Eq.12" ]
  in
  List.iter
    (fun (name, grouped) ->
      let vars = ref 0 and cons = ref 0 and time = ref 0. and obj = ref [] in
      List.iter
        (fun layer ->
          let weights = Cosa.calibrate arch in
          let f =
            Cosa_formulation.build ~weights ~joint_permutation:false
              ~symmetry_grouping:grouped arch layer
          in
          vars := !vars + Milp.Lp.num_vars f.Cosa_formulation.lp;
          cons := !cons + Milp.Lp.num_constrs f.Cosa_formulation.lp;
          let t0 = Unix.gettimeofday () in
          let res =
            Milp.Bb.solve ~node_limit:50_000 ~time_limit:8.
              ~priority:f.Cosa_formulation.priority f.Cosa_formulation.lp
          in
          time := !time +. (Unix.gettimeofday () -. t0);
          (match res.Milp.Bb.status with
           | Milp.Bb.Optimal | Milp.Bb.Feasible ->
             let m = Cosa_decode.decode f res in
             let m = Cosa_decode.best_noc_order ~weights arch m in
             let m, _ = Cosa_decode.repair arch m in
             obj := exp (Cosa.breakdown_of_mapping ~weights arch m).Cosa.total :: !obj
           | _ -> ()))
        (subset ());
      let n = float_of_int (List.length (subset ())) in
      Prim.Texttab.add_row tab
        [ name;
          Printf.sprintf "%.0f" (float_of_int !vars /. n);
          Printf.sprintf "%.0f" (float_of_int !cons /. n);
          Printf.sprintf "%.2f" (!time /. n);
          (if !obj = [] then "-" else Printf.sprintf "%.3g" (Prim.Stats.geomean !obj)) ])
    [ ("grouped counts", true); ("per-factor binaries", false) ];
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.contents buf

(* DESIGN §4.4: hardware multicast on/off, NoC simulator. *)
let multicast () =
  let base = Spec.baseline in
  let no_mc = { base with Spec.aname = "simba-4x4-nomc";
                noc = { base.Spec.noc with Spec.multicast = false } } in
  let buf = Buffer.create 2048 in
  Common.section buf "Ablation: NoC hardware multicast on vs off (cycle-level simulator)";
  let tab = Prim.Texttab.create [ "layer"; "multicast on"; "multicast off"; "off/on" ] in
  let ratios = ref [] in
  List.iter
    (fun layer ->
      let m = (Cosa.schedule base layer).Cosa.mapping in
      let on = (Noc_sim.simulate ~max_steps:24 base m).Noc_sim.latency in
      let off = (Noc_sim.simulate ~max_steps:24 no_mc m).Noc_sim.latency in
      ratios := (off /. on) :: !ratios;
      Prim.Texttab.add_row tab
        [ layer.Layer.name; Prim.Texttab.cell_f on; Prim.Texttab.cell_f off;
          Prim.Texttab.cell_fx (off /. on) ])
    (subset ());
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.add_string buf
    (Printf.sprintf "geomean slowdown without multicast: %.2fx\n"
       (Prim.Stats.geomean !ratios));
  Buffer.contents buf

(* Section III-E extension: objective-hyperparameter tuning around the
   one-shot solver. *)
let tuner () =
  let arch = Spec.baseline in
  let buf = Buffer.create 2048 in
  Common.section buf
    "Extension (Sec. III-E): weight-hyperparameter search around one-shot CoSA";
  let tab =
    Prim.Texttab.create [ "layer"; "CoSA latency"; "tuned latency"; "gain"; "solves" ]
  in
  let gains = ref [] in
  List.iter
    (fun layer ->
      let plain = Cosa.schedule ~time_limit:2. arch layer in
      let plain_lat = Common.latency arch plain.Cosa.mapping in
      let tuned = Cosa_tuner.tune ~time_limit:2. arch layer in
      let tuned_lat = Common.latency arch tuned.Cosa_tuner.best.Cosa.mapping in
      gains := (plain_lat /. tuned_lat) :: !gains;
      Prim.Texttab.add_row tab
        [ layer.Layer.name;
          Prim.Texttab.cell_f plain_lat;
          Prim.Texttab.cell_f tuned_lat;
          Prim.Texttab.cell_fx (plain_lat /. tuned_lat);
          string_of_int tuned.Cosa_tuner.tried ])
    (subset ());
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.add_string buf
    (Printf.sprintf "geomean gain from tuning: %.2fx (9 one-shot solves per layer)\n"
       (Prim.Stats.geomean !gains));
  Buffer.contents buf

(* Extended baseline comparison: the two extra feedback-driven schedulers
   (simulated annealing, GAMMA-style genetic) alongside the paper's three. *)
let searchers () =
  let arch = Spec.baseline in
  let buf = Buffer.create 2048 in
  Common.section buf
    "Extension: five-scheduler comparison (latency, lower is better)";
  let tab =
    Prim.Texttab.create
      [ "layer"; "CoSA"; "Random"; "TL-Hybrid"; "Anneal"; "Genetic" ]
  in
  let ratios = Hashtbl.create 4 in
  let note k r = Hashtbl.replace ratios k (r :: (try Hashtbl.find ratios k with Not_found -> [])) in
  List.iter
    (fun layer ->
      let seed = Hashtbl.hash layer.Layer.name land 0xFFFFFF in
      let cosa = Common.latency arch (Common.schedule arch layer Common.Cosa_s).Common.mapping in
      let of_outcome (o : Baseline.outcome) =
        match o.Baseline.best with
        | Some m -> Common.latency arch m
        | None -> infinity
      in
      let random = of_outcome (Random_mapper.search (Prim.Rng.create seed) arch layer) in
      let hybrid = of_outcome (Hybrid_mapper.search (Prim.Rng.create seed) arch layer) in
      let anneal = of_outcome (Anneal_mapper.search (Prim.Rng.create seed) arch layer) in
      let genetic = of_outcome (Genetic_mapper.search (Prim.Rng.create seed) arch layer) in
      note "random" (random /. cosa);
      note "hybrid" (hybrid /. cosa);
      note "anneal" (anneal /. cosa);
      note "genetic" (genetic /. cosa);
      Prim.Texttab.add_row tab
        [ layer.Layer.name; Prim.Texttab.cell_f cosa; Prim.Texttab.cell_f random;
          Prim.Texttab.cell_f hybrid; Prim.Texttab.cell_f anneal;
          Prim.Texttab.cell_f genetic ])
    (subset ());
  Buffer.add_string buf (Prim.Texttab.render tab);
  let geo k = Prim.Stats.geomean (Hashtbl.find ratios k) in
  Buffer.add_string buf
    (Printf.sprintf
       "geomean CoSA speedup: vs Random %.2fx, vs Hybrid %.2fx, vs Anneal %.2fx, vs Genetic %.2fx\n"
       (geo "random") (geo "hybrid") (geo "anneal") (geo "genetic"));
  Buffer.contents buf

(* End-to-end network totals: per-layer schedules weighted by each shape's
   repetition count. *)
let network () =
  let arch = Spec.baseline in
  let buf = Buffer.create 2048 in
  Common.section buf
    "Extension: end-to-end network latency/energy (repetition-weighted)";
  let tab =
    Prim.Texttab.create
      [ "network"; "scheduler"; "total latency (Mcycles)"; "total energy (mJ)";
        "vs Random" ]
  in
  List.iter
    (fun (net : Network.t) ->
      let totals =
        List.map
          (fun sched ->
            let lat = ref 0. and en = ref 0. in
            (* schedule each distinct shape once; weight by summed repeats *)
            List.iter
              (fun ((e : Network.entry), repeats) ->
                let m = (Common.schedule arch e.Network.layer sched).Common.mapping in
                let ev = Model.evaluate arch m in
                let k = float_of_int repeats in
                lat := !lat +. (k *. ev.Model.latency);
                en := !en +. (k *. ev.Model.energy_pj))
              (Network.distinct net);
            (sched, !lat, !en))
          Common.[ Cosa_s; Random_s; Hybrid_s ]
      in
      let random_lat =
        match List.find_opt (fun (s, _, _) -> s = Common.Random_s) totals with
        | Some (_, l, _) -> l
        | None -> nan
      in
      List.iter
        (fun (sched, lat, en) ->
          Prim.Texttab.add_row tab
            [ net.Network.nname;
              Common.scheduler_name sched;
              Printf.sprintf "%.1f" (lat /. 1e6);
              Printf.sprintf "%.2f" (en /. 1e9);
              Prim.Texttab.cell_fx (random_lat /. lat) ])
        totals)
    Network.networks;
  Buffer.add_string buf (Prim.Texttab.render tab);
  Buffer.contents buf
