(* Fig. 10: cycle-level NoC-simulator evaluation. *)

let sim_latency arch m =
  match Noc_sim.simulate_r ~max_steps:24 ~max_cycles:30_000_000 arch m with
  | Ok s -> s.Noc_sim.latency
  | Error _ -> infinity

let fig10 () =
  let arch = Spec.baseline in
  let schedulers = Common.[ Cosa_s; Random_s; Hybrid_s ] in
  let buf = Buffer.create 8192 in
  Common.section buf "Fig. 10: NoC-simulator speedup vs Random search (baseline 4x4 arch)";
  let tab =
    Prim.Texttab.create [ "suite"; "layer"; "CoSA/Random"; "Hybrid/Random"; "CoSA/Hybrid" ]
  in
  let ratios = ref [] in
  List.iter
    (fun (suite, layer) ->
      let v s = sim_latency arch (Common.schedule arch layer s).Common.mapping in
      let values = List.map (fun s -> (s, v s)) schedulers in
      let get s = List.assoc s values in
      let cosa = get Common.Cosa_s and rand = get Common.Random_s and hyb = get Common.Hybrid_s in
      if cosa < infinity && rand < infinity && hyb < infinity then begin
        ratios := (suite, (rand /. cosa, rand /. hyb, hyb /. cosa)) :: !ratios;
        Prim.Texttab.add_row tab
          [ suite; layer.Layer.name;
            Prim.Texttab.cell_fx (rand /. cosa);
            Prim.Texttab.cell_fx (rand /. hyb);
            Prim.Texttab.cell_fx (hyb /. cosa) ]
      end
      else
        Prim.Texttab.add_row tab [ suite; layer.Layer.name; "-"; "-"; "-" ])
    (Common.suite_layers ());
  Buffer.add_string buf (Prim.Texttab.render tab);
  let all = List.rev !ratios in
  let geo f rows = Prim.Stats.geomean (List.map f rows) in
  let gtab =
    Prim.Texttab.create [ "scope"; "CoSA vs Random"; "Hybrid vs Random"; "CoSA vs Hybrid" ]
  in
  List.iter
    (fun suite ->
      let rows = List.filter (fun (s, _) -> s = suite) all in
      if rows <> [] then
        Prim.Texttab.add_row gtab
          [ suite;
            Prim.Texttab.cell_fx (geo (fun (_, (a, _, _)) -> a) rows);
            Prim.Texttab.cell_fx (geo (fun (_, (_, b, _)) -> b) rows);
            Prim.Texttab.cell_fx (geo (fun (_, (_, _, c)) -> c) rows) ])
    (List.sort_uniq compare (List.map fst all));
  if all <> [] then
    Prim.Texttab.add_row gtab
      [ "ALL";
        Prim.Texttab.cell_fx (geo (fun (_, (a, _, _)) -> a) all);
        Prim.Texttab.cell_fx (geo (fun (_, (_, b, _)) -> b) all);
        Prim.Texttab.cell_fx (geo (fun (_, (_, _, c)) -> c) all) ];
  Buffer.add_string buf "\nGeomean speedups (NoC simulator):\n";
  Buffer.add_string buf (Prim.Texttab.render gtab);
  Buffer.contents buf
