type scheduler = Cosa_s | Random_s | Hybrid_s

let scheduler_name = function
  | Cosa_s -> "CoSA"
  | Random_s -> "Random"
  | Hybrid_s -> "TL-Hybrid"

type scheduled = {
  mapping : Mapping.t;
  runtime : float;
  samples : int;
  evaluations : int;
}

let cache : (string, scheduled) Hashtbl.t = Hashtbl.create 256

let seed_of_string s = Hashtbl.hash s land 0xFFFFFF

let schedule ?(metric = `Latency) arch layer sched =
  let metric_name = match metric with `Latency -> "lat" | `Energy -> "en" in
  (* keyed by canonical shape, not display name: shape-equal layers (e.g.
     the ResNet-50 stem reappearing in ResNeXt-50 under another name) are
     solved once per (arch, scheduler, metric) across every experiment *)
  let key =
    Printf.sprintf "%s/%s/%s/%s" arch.Spec.aname (Layer.key layer)
      (scheduler_name sched)
      (match sched with Cosa_s -> "-" | Random_s | Hybrid_s -> metric_name)
  in
  match Hashtbl.find_opt cache key with
  | Some s -> s
  | None ->
    let base_metric =
      match metric with `Latency -> Baseline.latency_metric | `Energy -> Baseline.energy_metric
    in
    let result =
      match sched with
      | Cosa_s ->
        let r = Cosa.schedule arch layer in
        { mapping = r.Cosa.mapping; runtime = r.Cosa.solve_time; samples = 1; evaluations = 1 }
      | Random_s ->
        let rng = Prim.Rng.create (seed_of_string key) in
        let o = Random_mapper.search ~metric:base_metric rng arch layer in
        let mapping =
          match o.Baseline.best with
          | Some m -> m
          | None -> Cosa.trivial_mapping arch layer
        in
        { mapping; runtime = o.Baseline.elapsed; samples = o.Baseline.samples;
          evaluations = o.Baseline.valid }
      | Hybrid_s ->
        let rng = Prim.Rng.create (seed_of_string key) in
        let o = Hybrid_mapper.search ~metric:base_metric rng arch layer in
        let mapping =
          match o.Baseline.best with
          | Some m -> m
          | None -> Cosa.trivial_mapping arch layer
        in
        { mapping; runtime = o.Baseline.elapsed; samples = o.Baseline.samples;
          evaluations = o.Baseline.valid }
    in
    Hashtbl.replace cache key result;
    result

let latency arch m = (Model.evaluate arch m).Model.latency
let energy arch m = (Model.evaluate arch m).Model.energy_pj
let noc_energy arch m = (Model.evaluate arch m).Model.noc_energy_pj

let suite_layers () =
  List.concat_map (fun (suite, layers) -> List.map (fun l -> (suite, l)) layers) Zoo.suites

let geomean_speedups base other =
  List.filter_map
    (fun (k, b) ->
      match List.assoc_opt k other with
      | Some o when o > 0. -> Some (k, b /. o)
      | Some _ | None -> None)
    base

let section buf title =
  Buffer.add_string buf (Printf.sprintf "\n%s\n%s\n" title (String.make (String.length title) '='))
