(** Shared infrastructure for the paper-reproduction experiments: the three
    schedulers under test, a process-wide schedule cache so each
    (architecture, layer, scheduler, metric) pair is scheduled exactly
    once across all tables and figures, and small report helpers. *)

type scheduler = Cosa_s | Random_s | Hybrid_s

val scheduler_name : scheduler -> string

type scheduled = {
  mapping : Mapping.t;
  runtime : float;  (** scheduler wall-clock seconds *)
  samples : int;  (** configurations drawn (1 for CoSA) *)
  evaluations : int;  (** cost-model evaluations (1 for CoSA) *)
}

val schedule :
  ?metric:[ `Latency | `Energy ] -> Spec.t -> Layer.t -> scheduler -> scheduled
(** Cached by canonical layer shape ({!Layer.key}), so shape-equal layers
    are scheduled once per (arch, scheduler, metric) across all tables and
    figures regardless of display name. The metric selects what Random /
    Hybrid optimise for (CoSA's mapping does not depend on it).
    Search-based schedulers use a seed derived from the cache key, so
    results are reproducible. *)

val latency : Spec.t -> Mapping.t -> float
val energy : Spec.t -> Mapping.t -> float
val noc_energy : Spec.t -> Mapping.t -> float

val suite_layers : unit -> (string * Layer.t) list
(** All (suite name, layer) pairs in paper order. *)

val geomean_speedups :
  (string * float) list -> (string * float) list -> (string * float) list
(** Pair two metric lists by key and return per-key baseline/other ratios. *)

val section : Buffer.t -> string -> unit
(** Append an underlined section heading. *)
