type tensor_counts = { tile : float; fills : float; reads : float; updates : float }

type tensor_traffic = { tile_words : float; steps : float; distinct : int; multicast : int }

type t = {
  counts : tensor_counts array array;
  compute_cycles : float;
  transfer_cycles : float array;
  latency : float;
  energy_pj : float;
  energy_breakdown : (string * float) list;
  noc_energy_pj : float;
  macs : float;
  pe_utilization : float;
  traffic : (Dims.tensor * tensor_traffic) list;
}

let fi = float_of_int

(* Storage chain of tensor v: ascending level indices where v is buffered. *)
let storage_chain arch v =
  List.filter (fun i -> Spec.stores arch i v) (List.init (Spec.level_count arch) Fun.id)

(* Flattened temporal loops at levels >= lo, outermost first. *)
let flat_temporal (m : Mapping.t) ~lo =
  let acc = ref [] in
  for i = lo to Array.length m.Mapping.levels - 1 do
    (* prepend levels from inner to outer so the outermost level ends up first *)
    acc := m.Mapping.levels.(i).Mapping.temporal @ !acc
  done;
  !acc

(* Number of times the tile of [v] held at level [lo] is replaced over the
   whole execution: the product of all flattened temporal loop bounds from
   the outermost loop down to (and including) the innermost loop relevant
   to [v]. Irrelevant loops nested inside the innermost relevant loop rescan
   the resident tile and are free. *)
let refills m v ~lo =
  let loops = flat_temporal m ~lo in
  let rec innermost_relevant idx best = function
    | [] -> best
    | (l : Mapping.loop) :: rest ->
      let best =
        if l.Mapping.bound > 1 && Dims.model_relevant l.Mapping.dim v then idx else best
      in
      innermost_relevant (idx + 1) best rest
  in
  let cut = innermost_relevant 0 (-1) loops in
  let prod = ref 1. in
  List.iteri (fun idx (l : Mapping.loop) -> if idx <= cut then prod := !prod *. fi l.Mapping.bound) loops;
  !prod

(* Spatial bound products over levels in [lo, hi), split by relevance. *)
let spatial_split m v ~lo ~hi =
  let rel = ref 1 and irrel = ref 1 in
  for i = lo to hi - 1 do
    List.iter
      (fun (l : Mapping.loop) ->
        if Dims.model_relevant l.Mapping.dim v then rel := !rel * l.Mapping.bound
        else irrel := !irrel * l.Mapping.bound)
      m.Mapping.levels.(i).Mapping.spatial
  done;
  (!rel, !irrel)

let instances m ~lo =
  let acc = ref 1 in
  for i = lo to Array.length m.Mapping.levels - 1 do
    acc := !acc * List.fold_left (fun a (l : Mapping.loop) -> a * l.Mapping.bound) 1
             m.Mapping.levels.(i).Mapping.spatial
  done;
  !acc

(* Any temporal reduction loop (irrelevant to OA) with bound > 1 at levels
   >= lo forces read-modify-write accumulation at that storage level. *)
let reduction_above m ~lo =
  List.exists
    (fun (l : Mapping.loop) ->
      l.Mapping.bound > 1 && not (Dims.model_relevant l.Mapping.dim Dims.OA))
    (flat_temporal m ~lo)

(* Evaluations happen everywhere — objective scoring, heuristic sampling,
   report expansion — so the counter is the cheapest proxy for total
   analytical-model work a run performed. *)
let m_evaluations = Telemetry.Metrics.counter "model.evaluations"

let evaluate arch (m : Mapping.t) =
  Telemetry.Metrics.incr m_evaluations;
  let nlev = Spec.level_count arch in
  let counts =
    Array.init nlev (fun i ->
        Array.map
          (fun v -> { tile = Mapping.tile_words arch m i v; fills = 0.; reads = 0.; updates = 0. })
          (Array.of_list Dims.all_tensors))
  in
  let add_fills i v x =
    let vi = Dims.tensor_index v in
    counts.(i).(vi) <- { (counts.(i).(vi)) with fills = counts.(i).(vi).fills +. x }
  in
  let add_reads i v x =
    let vi = Dims.tensor_index v in
    counts.(i).(vi) <- { (counts.(i).(vi)) with reads = counts.(i).(vi).reads +. x }
  in
  let add_updates i v x =
    let vi = Dims.tensor_index v in
    counts.(i).(vi) <- { (counts.(i).(vi)) with updates = counts.(i).(vi).updates +. x }
  in
  let noc_traffic = ref [] in
  (* Inputs and weights flow downward through their storage chains. *)
  List.iter
    (fun v ->
      let chain = storage_chain arch v in
      let rec walk = function
        | child :: (parent :: _ as rest) ->
          let tile = Mapping.tile_words arch m child v in
          let refill = refills m v ~lo:child in
          let inst_child = instances m ~lo:child in
          let rel, irrel = spatial_split m v ~lo:child ~hi:parent in
          let total_fills = refill *. tile *. fi inst_child in
          add_fills child v total_fills;
          let inst_parent = instances m ~lo:parent in
          let multicast_ok =
            if parent > arch.Spec.noc_level && child <= arch.Spec.noc_level then
              arch.Spec.noc.Spec.multicast
            else true (* intra-PE distribution busses broadcast *)
          in
          let parent_reads =
            if multicast_ok then refill *. tile *. fi rel *. fi inst_parent
            else refill *. tile *. fi rel *. fi irrel *. fi inst_parent
          in
          add_reads parent v parent_reads;
          if child <= arch.Spec.noc_level && parent > arch.Spec.noc_level then
            noc_traffic :=
              (v, { tile_words = tile; steps = refill; distinct = rel; multicast = irrel })
              :: !noc_traffic;
          walk rest
        | [ _ ] | [] -> ()
      in
      walk chain)
    [ Dims.W; Dims.IA ];
  (* Outputs drain upward with in-network / in-PE reduction across spatial
     factors irrelevant to OA, and read-modify-write accumulation when a
     temporal reduction loop survives above the parent. *)
  let v = Dims.OA in
  let chain = storage_chain arch v in
  let rec walk = function
    | child :: (parent :: _ as rest) ->
      let tile = Mapping.tile_words arch m child v in
      let refill = refills m v ~lo:child in
      let inst_child = instances m ~lo:child in
      let rel, irrel = spatial_split m v ~lo:child ~hi:parent in
      let drains = refill *. tile *. fi inst_child in
      (* child is read once per drain to push partial sums up *)
      add_reads child v drains;
      let inst_parent = instances m ~lo:parent in
      (* reduction collapses the spatially-irrelevant copies before the write *)
      let parent_writes = refill *. tile *. fi rel *. fi inst_parent in
      add_updates parent v parent_writes;
      if reduction_above m ~lo:parent then add_reads parent v parent_writes;
      if child <= arch.Spec.noc_level && parent > arch.Spec.noc_level then
        noc_traffic :=
          (v, { tile_words = tile; steps = refill; distinct = rel; multicast = irrel })
          :: !noc_traffic;
      walk rest
    | [ _ ] | [] -> ()
  in
  walk chain;
  (* compute *)
  let compute_cycles =
    Array.fold_left
      (fun acc lm ->
        List.fold_left (fun a (l : Mapping.loop) -> a *. fi l.Mapping.bound) acc
          lm.Mapping.temporal)
      1. m.Mapping.levels
  in
  let spatial_all = fi (instances m ~lo:0) in
  let macs = compute_cycles *. spatial_all in
  let avail =
    Array.fold_left (fun acc (l : Spec.level) -> acc * l.Spec.fanout) 1 arch.Spec.levels
  in
  let pe_utilization = spatial_all /. fi avail in
  (* Per-level transfer cycles: each buffer instance serves its own
     sub-tree in parallel, so the served word count is normalised by the
     instance count before dividing by the per-instance port bandwidth. *)
  let transfer_cycles =
    Array.init nlev (fun i ->
        let words =
          Array.fold_left (fun acc c -> acc +. c.reads +. c.updates) 0. counts.(i)
        in
        let bw =
          if i = Spec.dram_level arch then arch.Spec.dram.Spec.dram_bandwidth_words
          else arch.Spec.levels.(i).Spec.bandwidth_words
        in
        words /. fi (instances m ~lo:i) /. bw)
  in
  let latency = Array.fold_left max compute_cycles transfer_cycles in
  (* energy *)
  let level_energy =
    Array.to_list
      (Array.mapi
         (fun i per_tensor ->
           let acc =
             Array.fold_left (fun a c -> a +. c.fills +. c.reads +. c.updates) 0. per_tensor
           in
           (arch.Spec.levels.(i).Spec.lname, acc *. arch.Spec.levels.(i).Spec.energy_pj))
         counts)
  in
  let mac_energy = macs *. arch.Spec.mac_energy_pj in
  let nocspec = arch.Spec.noc in
  let avg_hops = fi (nocspec.Spec.mesh_x + nocspec.Spec.mesh_y) /. 2. in
  let noc_energy =
    List.fold_left
      (fun acc (v, tr) ->
        let bits = fi (arch.Spec.precision_bits v) in
        let flits_per_tile = Float.max 1. (Float.round (tr.tile_words *. bits /. fi nocspec.Spec.flit_bits)) in
        let links_per_group =
          if nocspec.Spec.multicast then avg_hops +. fi (tr.multicast - 1)
          else avg_hops *. fi tr.multicast
        in
        acc +. (tr.steps *. fi tr.distinct *. flits_per_tile *. links_per_group
                *. nocspec.Spec.hop_energy_pj))
      0. !noc_traffic
  in
  let energy_breakdown = level_energy @ [ ("MAC", mac_energy); ("NoC", noc_energy) ] in
  let energy_pj = List.fold_left (fun a (_, e) -> a +. e) 0. energy_breakdown in
  {
    counts;
    compute_cycles;
    transfer_cycles;
    latency;
    energy_pj;
    energy_breakdown;
    noc_energy_pj = noc_energy;
    macs;
    pe_utilization;
    traffic = !noc_traffic;
  }

let edp t = t.energy_pj *. t.latency

let summary arch t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "latency=%.0f cycles (compute=%.0f) energy=%.3g pJ util=%.2f%%\n"
       t.latency t.compute_cycles t.energy_pj (100. *. t.pe_utilization));
  Array.iteri
    (fun i per_tensor ->
      Buffer.add_string buf (Printf.sprintf "  %-10s" arch.Spec.levels.(i).Spec.lname);
      Array.iteri
        (fun vi c ->
          Buffer.add_string buf
            (Printf.sprintf " %s[tile=%.0f fill=%.3g read=%.3g upd=%.3g]"
               (Dims.tensor_name (Dims.tensor_of_index vi))
               c.tile c.fills c.reads c.updates))
        per_tensor;
      Buffer.add_char buf '\n')
    t.counts;
  List.iter
    (fun (name, e) -> Buffer.add_string buf (Printf.sprintf "  E %-10s %.4g pJ\n" name e))
    t.energy_breakdown;
  Buffer.contents buf
