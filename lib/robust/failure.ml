(* Typed error taxonomy for the scheduling pipeline. Every way a stage can
   fail is a constructor here, so callers can match on *why* a rung of the
   degradation ladder fell through instead of parsing exception strings.
   [Error] is the only exception the legacy (non-[Result]) entry points are
   allowed to raise. *)

type t =
  | Singular_basis        (* simplex basis matrix not invertible *)
  | Iteration_limit       (* pivot/cycle budget exhausted *)
  | Deadline_exceeded     (* wall-clock budget exhausted *)
  | Numerical_instability (* NaN/Inf detected in solver state *)
  | Infeasible            (* stage proved, or could find, no valid schedule *)
  | Decode_failed         (* MILP solution could not be decoded/repaired *)
  | Invalid_input of string
  | Injected of string    (* fault-injection harness fired at this site *)
  | Certification_failed of string
      (* exact-arithmetic certification rejected a claimed solution; the
         payload names the violated constraint and the exact residual *)

exception Error of t

let to_string = function
  | Singular_basis -> "singular basis"
  | Iteration_limit -> "iteration limit"
  | Deadline_exceeded -> "deadline exceeded"
  | Numerical_instability -> "numerical instability"
  | Infeasible -> "infeasible"
  | Decode_failed -> "decode failed"
  | Invalid_input s -> "invalid input: " ^ s
  | Injected site -> "injected fault at " ^ site
  | Certification_failed what -> "certification failed: " ^ what

let pp fmt f = Format.pp_print_string fmt (to_string f)

let equal (a : t) (b : t) = a = b

let is_injected = function Injected _ -> true | _ -> false

(* Collapse runs of identical failures: a ladder that skips three rungs on
   one expired deadline reports the cause once, not three times. *)
let dedup_consecutive l =
  List.rev
    (List.fold_left
       (fun acc f -> match acc with g :: _ when equal f g -> acc | _ -> f :: acc)
       [] l)

let () =
  Printexc.register_printer (function
    | Error f -> Some ("Robust.Failure.Error: " ^ to_string f)
    | _ -> None)
