(* Wall-clock deadlines threaded from [Cosa.schedule] down into the simplex
   pivot loop. A deadline latches once it trips: even if the system clock
   steps backwards, [expired] never un-expires, so budget checks behave
   monotonically. [none] never expires and costs one float compare per
   check, so inner loops can test unconditionally. *)

type t = { expires_at : float; mutable tripped : bool }

let none = { expires_at = infinity; tripped = false }

(* A deadline [seconds] from now; negative budgets expire immediately. *)
let after seconds =
  { expires_at = Unix.gettimeofday () +. Float.max 0. seconds; tripped = false }

let at expires_at = { expires_at; tripped = false }

let expired t =
  t.tripped
  || (t.expires_at < infinity
      && Unix.gettimeofday () >= t.expires_at
      && (t.tripped <- true;
          true))

let remaining t =
  if t.tripped then 0.
  else if t.expires_at = infinity then infinity
  else Float.max 0. (t.expires_at -. Unix.gettimeofday ())

let is_finite t = t.expires_at < infinity

(* The earlier of two deadlines. *)
let tighten a b = if a.expires_at <= b.expires_at then a else b

let check t = if expired t then Error Failure.Deadline_exceeded else Ok ()
