(* Wall-clock deadlines threaded from [Cosa.schedule] down into the simplex
   pivot loop. A deadline latches once it trips: even if the system clock
   steps backwards, [expired] never un-expires, so budget checks behave
   monotonically. [none] never expires and costs one float compare per
   check, so inner loops can test unconditionally. *)

(* Monotonic-safe clock shared by every deadline check and solve-time
   measurement in the pipeline: wall-clock readings are latched through an
   atomic high-water mark, so a system clock stepping backwards (NTP
   adjustment, VM migration) can never make an elapsed-time delta negative,
   un-expire a budget, or skew cache-warm latency numbers. The latch is
   shared across domains, which also gives concurrent solvers a consistent
   notion of "now". *)
let high_water = Atomic.make 0.

let now () =
  let t = Unix.gettimeofday () in
  let rec latch () =
    let prev = Atomic.get high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set high_water prev t then t
    else latch ()
  in
  latch ()

type t = { expires_at : float; mutable tripped : bool }

let none = { expires_at = infinity; tripped = false }

(* A deadline [seconds] from now; negative budgets expire immediately. *)
let after seconds = { expires_at = now () +. Float.max 0. seconds; tripped = false }

let at expires_at = { expires_at; tripped = false }

let expired t =
  t.tripped
  || (t.expires_at < infinity
      && now () >= t.expires_at
      && (t.tripped <- true;
          true))

let remaining t =
  if t.tripped then 0.
  else if t.expires_at = infinity then infinity
  else Float.max 0. (t.expires_at -. now ())

let is_finite t = t.expires_at < infinity

(* The earlier of two deadlines. *)
let tighten a b = if a.expires_at <= b.expires_at then a else b

let check t = if expired t then Error Failure.Deadline_exceeded else Ok ()
