(* Deterministic, seed-driven fault injection. Production code is sprinkled
   with named injection points ([check "simplex.pivot"] etc.); when the
   harness is disarmed — the default — a point is a single ref dereference
   and match, so the instrumentation is effectively free. When armed with a
   seed and a rate, each visit to a site draws from a per-site SplitMix64
   stream derived from (seed, site), so a given seed always fires the same
   faults at the same visit counts regardless of wall-clock timing.

   The plan is shared process state mutated from every domain that visits
   an injection point — the service pool solves layers on spawned domains
   with the same plan armed — so all plan mutation ([streams], [visits],
   [log] and the RNG draws inside the site streams) happens under the
   plan's mutex. The disarmed fast path stays a single ref load: the lock
   is only ever touched while armed. Per-site visit counts remain
   deterministic for a given seed; which *task* observes a given visit of
   a shared site depends on domain interleaving, as any shared counter
   must. *)

type plan = {
  seed : int;
  rate : float;
  only : string list; (* restrict to these sites; [] = all sites *)
  streams : (string, Prim.Rng.t) Hashtbl.t;
  visits : (string, int) Hashtbl.t;
  mutable log : (string * int) list; (* (site, visit index) of fired faults, newest first *)
  lock : Mutex.t;
}

let state : plan option ref = ref None

let arm ?(rate = 0.05) ?(only = []) seed =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg "Robust.Fault.arm: rate must be in [0, 1]";
  state :=
    Some
      {
        seed;
        rate;
        only;
        streams = Hashtbl.create 16;
        visits = Hashtbl.create 16;
        log = [];
        lock = Mutex.create ();
      }

let disarm () = state := None

let armed () = !state <> None

(* Visit the injection point [site]; true means the fault fires. *)
let fire site =
  match !state with
  | None -> false
  | Some p ->
    if p.only <> [] && not (List.mem site p.only) then false
    else
      Mutex.protect p.lock (fun () ->
          let n = try Hashtbl.find p.visits site with Not_found -> 0 in
          Hashtbl.replace p.visits site (n + 1);
          let rng =
            try Hashtbl.find p.streams site
            with Not_found ->
              let r = Prim.Rng.create (p.seed lxor Hashtbl.hash site) in
              Hashtbl.add p.streams site r;
              r
          in
          let hit = Prim.Rng.float rng 1. < p.rate in
          if hit then p.log <- (site, n) :: p.log;
          hit)

let check site = if fire site then Error (Failure.Injected site) else Ok ()

(* Network fault sites consulted by the daemon's response-write path and
   the cluster soak. Listed here so harnesses can arm exactly the network
   plane (or exclude it) without stringly-typed drift:
   - net.conn_reset: abruptly shut the connection down instead of replying
   - net.partial_frame: write the frame header plus a truncated payload,
     stall, then close (the classic torn-write / half-open failure)
   - net.slow_peer: delay the response past a peer's probe timeout
   - net.peer_crash: tear the frame and exit the whole server process
     mid-response (only honored by servers opted into crash exits) *)
let net_sites =
  [ "net.conn_reset"; "net.partial_frame"; "net.slow_peer"; "net.peer_crash" ]

(* Chronological (site, visit index) list of faults fired since arming. *)
let fired () =
  match !state with
  | None -> []
  | Some p -> Mutex.protect p.lock (fun () -> List.rev p.log)

let fired_count () =
  match !state with
  | None -> 0
  | Some p -> Mutex.protect p.lock (fun () -> List.length p.log)

(* Run [f] with faults armed, disarming afterwards even on exceptions. *)
let with_faults ?rate ?only seed f =
  arm ?rate ?only seed;
  Fun.protect ~finally:disarm f
