(* Budget-aware degradation-ladder rung selection.

   The scheduling pipeline degrades through a fixed ladder of rungs, from
   the paper's joint MIP down to a cache-only probe. [Cosa.schedule]
   descends the ladder *reactively* — it starts at the top and falls
   through on typed failures. A deadline-aware server cannot afford that:
   a request arriving with 50 ms of budget left must not start a doomed
   joint solve and discover the deadline mid-pivot. [select] is the
   ahead-of-time counterpart: given cost estimates per rung, pick the
   highest-quality rung whose estimated cost still fits the remaining
   budget, or report that none does (the caller rejects the request up
   front instead of timing out mid-solve).

   The function is pure — estimates come from the caller (telemetry
   percentiles, cold-start priors, cache hit probabilities) — so its two
   contracts are directly testable:

   - feasibility: the selected rung's estimated cost never exceeds the
     budget;
   - monotonicity: for fixed estimates, a larger budget never selects a
     lower-quality rung (the feasible set only grows). *)

type rung =
  | Joint        (* the paper's one-shot joint MIP *)
  | Two_stage    (* tiling MIP + exact permutation sub-solve *)
  | Heuristic    (* seed-perturbed valid-mapping sampler, best-of-N *)
  | Cache_probe  (* serve a certified cached schedule or nothing at all *)

(* Quality order: higher rank = higher rung. *)
let rank = function Joint -> 3 | Two_stage -> 2 | Heuristic -> 1 | Cache_probe -> 0

(* Descending quality, the order the ladder is descended. *)
let all = [ Joint; Two_stage; Heuristic; Cache_probe ]

let to_string = function
  | Joint -> "joint"
  | Two_stage -> "two-stage"
  | Heuristic -> "heuristic"
  | Cache_probe -> "cache-probe"

let of_string = function
  | "joint" -> Some Joint
  | "two-stage" -> Some Two_stage
  | "heuristic" -> Some Heuristic
  | "cache-probe" -> Some Cache_probe
  | _ -> None

let equal (a : rung) (b : rung) = a = b

type estimate = { rung : rung; cost_s : float }

(* Highest-quality rung whose estimated cost fits [budget]. NaN costs and
   NaN budgets never fit (the comparison is false), so a poisoned estimate
   degrades to rejection, not to an accidental admit. *)
let select ~budget estimates =
  List.fold_left
    (fun best (e : estimate) ->
      if e.cost_s <= budget then
        match best with
        | Some b when rank b.rung >= rank e.rung -> best
        | _ -> Some e
      else best)
    None estimates
  |> Option.map (fun e -> e.rung)
