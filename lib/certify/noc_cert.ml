(* Flit-conservation certificate over a completed NoC simulation.

   The mesh keeps a conservation ledger (Mesh.flits_injected / _ejected /
   _forked); once the simulation drains, every flit that entered the mesh
   plus every multicast-tree copy must have left through an ejection port:
   injected + forked = ejected, exactly. A mismatch means the simulator
   lost or duplicated traffic — a result whose latency cannot be trusted. *)

let check (s : Noc_sim.stats) =
  let violations = ref [] in
  let push ~constraint_name ~residual ~detail =
    violations := Certificate.violation ~constraint_name ~residual ~detail :: !violations
  in
  let balance = s.Noc_sim.flits_injected + s.Noc_sim.flits_forked - s.Noc_sim.flits_ejected in
  if balance <> 0 then
    push ~constraint_name:"flit conservation" ~residual:(string_of_int balance)
      ~detail:
        (Printf.sprintf "injected %d + forked %d <> ejected %d" s.Noc_sim.flits_injected
           s.Noc_sim.flits_forked s.Noc_sim.flits_ejected);
  if s.Noc_sim.flits_injected < 0 || s.Noc_sim.flits_ejected < 0 || s.Noc_sim.flits_forked < 0
  then
    push ~constraint_name:"flit counters" ~residual:"0"
      ~detail:
        (Printf.sprintf "negative counter: injected %d, ejected %d, forked %d"
           s.Noc_sim.flits_injected s.Noc_sim.flits_ejected s.Noc_sim.flits_forked);
  (* every ejected flit traversed at least one link, so hops bound ejections *)
  if s.Noc_sim.flit_hops < s.Noc_sim.flits_ejected then
    push ~constraint_name:"flit hops"
      ~residual:(string_of_int (s.Noc_sim.flits_ejected - s.Noc_sim.flit_hops))
      ~detail:
        (Printf.sprintf "%d ejected flits but only %d link traversals"
           s.Noc_sim.flits_ejected s.Noc_sim.flit_hops);
  match List.rev !violations with
  | [] -> Certificate.Certified
  | vs -> Certificate.Violated vs
