(* Exact-arithmetic replay of a claimed LP/MIP solution against the model.

   Production solvers (Gurobi's solution checker, for one) re-verify every
   answer outside the numerical kernel, because a floating-point simplex
   can return near-feasible garbage while reporting Optimal. This module is
   that independent checker: every coefficient, bound, and solution value
   is converted losslessly to Prim.Ratio (finite doubles are dyadic
   rationals), rows and bounds are re-evaluated with zero rounding error,
   and the result is compared against the solver's own declared tolerances
   (Milp.Simplex.Tolerances — shared, so checker and solver cannot drift).

   Tolerance semantics mirror Bb.check_feasible: bounds within feas_tol,
   rows within feas_tol * (1 + |rhs|), integrality within int_tol, and the
   reported objective within opt_tol * (1 + |reported|). *)

module R = Prim.Ratio

let r = R.of_float

(* Scaled feasibility slack for a row with right-hand side [rhs]. *)
let row_slack feas rhs = R.mul feas (R.add R.one (R.abs rhs))

let check ?(tol = Milp.Simplex.Tolerances.default) ?(int_tol = 1e-6) ?obj model x =
  match Robust.Fault.check "certify.lp" with
  | Error f ->
    Certificate.Violated
      [ Certificate.violation ~constraint_name:"certify.lp" ~residual:"0"
          ~detail:(Robust.Failure.to_string f) ]
  | Ok () ->
    let nv = Milp.Lp.num_vars model in
    if Array.length x <> nv then
      Certificate.Violated
        [ Certificate.violation ~constraint_name:"solution vector"
            ~residual:(string_of_int (Array.length x - nv))
            ~detail:
              (Printf.sprintf "length %d, model has %d variables" (Array.length x) nv) ]
    else begin
      let feas = r tol.Milp.Simplex.Tolerances.feas_tol in
      let opt = r tol.Milp.Simplex.Tolerances.opt_tol in
      let itol = r int_tol in
      let violations = ref [] in
      let bad ~constraint_name ~residual ~detail =
        violations :=
          Certificate.violation ~constraint_name ~residual:(R.to_string residual) ~detail
          :: !violations
      in
      (* variable bounds and integrality *)
      for j = 0 to nv - 1 do
        let v = Milp.Lp.var_of_index model j in
        let vname = Milp.Lp.var_name model v in
        let lb, ub = Milp.Lp.bounds model v in
        let xj = r x.(j) in
        if Float.is_finite lb then begin
          let below = R.sub (r lb) xj in
          if R.compare below feas > 0 then
            bad
              ~constraint_name:(Printf.sprintf "var %s lower bound" vname)
              ~residual:below
              ~detail:(Printf.sprintf "%g < lb %g" x.(j) lb)
        end;
        if Float.is_finite ub then begin
          let above = R.sub xj (r ub) in
          if R.compare above feas > 0 then
            bad
              ~constraint_name:(Printf.sprintf "var %s upper bound" vname)
              ~residual:above
              ~detail:(Printf.sprintf "%g > ub %g" x.(j) ub)
        end;
        if Milp.Lp.is_integer model v && Float.is_finite x.(j) then begin
          let frac = R.abs (R.sub xj (r (Float.round x.(j)))) in
          if R.compare frac itol > 0 then
            bad
              ~constraint_name:(Printf.sprintf "var %s integrality" vname)
              ~residual:frac
              ~detail:(Printf.sprintf "%g is not integral" x.(j))
        end;
        if not (Float.is_finite x.(j)) then
          bad
            ~constraint_name:(Printf.sprintf "var %s value" vname)
            ~residual:R.zero
            ~detail:(Printf.sprintf "non-finite value %g" x.(j))
      done;
      (* constraint rows, exactly *)
      Array.iteri
        (fun i (terms, sense, rhs) ->
          let lhs =
            Array.fold_left
              (fun acc (j, c) -> R.add acc (R.mul (r c) (r x.(j))))
              R.zero terms
          in
          let rrhs = r rhs in
          let slack = row_slack feas rrhs in
          let name = Milp.Lp.constr_name model i in
          let report residual rel =
            bad
              ~constraint_name:(Printf.sprintf "row %s" name)
              ~residual
              ~detail:
                (Printf.sprintf "lhs %g %s rhs %g beyond tolerance" (R.to_float lhs) rel
                   rhs)
          in
          match sense with
          | Milp.Lp.Le ->
            let over = R.sub lhs rrhs in
            if R.compare over slack > 0 then report over ">"
          | Milp.Lp.Ge ->
            let under = R.sub rrhs lhs in
            if R.compare under slack > 0 then report under "<"
          | Milp.Lp.Eq ->
            let dev = R.abs (R.sub lhs rrhs) in
            if R.compare dev slack > 0 then report dev "<>")
        (Milp.Lp.constrs model);
      (* reported objective vs exact recomputation (user sense) *)
      (match obj with
       | Some reported when Float.is_finite reported ->
         let coeffs = Milp.Lp.objective_coeffs model in
         let exact = ref (r (Milp.Lp.objective_constant model)) in
         Array.iteri (fun j c -> if c <> 0. then exact := R.add !exact (R.mul (r c) (r x.(j)))) coeffs;
         let dev = R.abs (R.sub !exact (r reported)) in
         let slack = R.mul opt (R.add R.one (R.abs (r reported))) in
         if R.compare dev slack > 0 then
           bad ~constraint_name:"objective value" ~residual:dev
             ~detail:
               (Printf.sprintf "reported %g, exact recomputation %g" reported
                  (R.to_float !exact))
       | Some reported ->
         bad ~constraint_name:"objective value" ~residual:R.zero
           ~detail:(Printf.sprintf "reported objective %g is not finite" reported)
       | None -> ());
      match List.rev !violations with
      | [] -> Certificate.Certified
      | vs -> Certificate.Violated vs
    end
