(** Certificates: the result vocabulary of the exact-arithmetic checkers.

    A certificate is {!Certified} or a list of {!violation}s. Residuals are
    computed in {!Prim.Ratio} and rendered exactly, so a violation's
    [residual] string is the precise amount by which the constraint is
    broken — not a float approximation of it. *)

type violation = {
  constraint_name : string;  (** which constraint, e.g. ["row cap_l0_W"] *)
  residual : string;  (** exact rational violation amount *)
  detail : string;  (** human-readable elaboration *)
}

type t = Certified | Violated of violation list

(** Reaction of [Cosa.schedule] to a failed certificate: [Off] skips
    checking, [Warn] records the violation but keeps the result, [Strict]
    rejects the rung and descends the degradation ladder. *)
type mode = Off | Warn | Strict

val mode_to_string : mode -> string

val violation : constraint_name:string -> residual:string -> detail:string -> violation
val violation_to_string : violation -> string
val to_string : t -> string
val is_certified : t -> bool
val violations : t -> violation list

val combine : t -> t -> t
(** Certified only when both parts are; violations concatenate. *)

val to_failure : t -> Robust.Failure.t option
(** [Certification_failed] carrying the first violated constraint and its
    exact residual; [None] for {!Certified}. *)
