(** Flit-conservation certificate for completed NoC simulations.

    Certifies that flits injected into the mesh (plus multicast-tree
    copies) exactly equal flits drained at ejection ports — the
    end-of-run invariant of {!Mesh}'s conservation ledger. A violation
    means the simulator lost or duplicated traffic and its latency figure
    cannot be trusted. *)

val check : Noc_sim.stats -> Certificate.t
