(** Independent exact certification of a concrete mapping.

    Rechecks — from first principles, in integer/rational arithmetic and
    sharing no code with [Cosa_decode] or [Mapping.validate] — that:

    - every per-dimension tiling product equals the padded layer bound;
    - every per-level tile footprint (including the input-activation
      sliding-window halo) fits the level's buffer capacity;
    - spatial factors fit each level's fanout, and the NoC-boundary
      spatial factors fit the physical mesh.

    Violations carry exact residuals (words over capacity, factor excess),
    so a failed certificate names precisely what is broken and by how
    much. *)

val check : Spec.t -> Mapping.t -> Certificate.t
(** The fault-injection site ["certify.mapping"] can force a violation,
    for chaos-testing the strict-mode ladder descent. *)
