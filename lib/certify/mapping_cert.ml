(* Independent exact recheck of a decoded mapping.

   Deliberately shares no code with Cosa_decode or Mapping.validate: tile
   footprints and factorization products are recomputed here from first
   principles in integer arithmetic (capacities, which the architecture
   stores as floats, are compared exactly via Prim.Ratio). A schedule that
   passes this check satisfies the paper's hard constraints — tiling
   factors multiply to the padded layer dimensions, per-level tile
   footprints fit the buffers, spatial factors fit the fanout and the NoC
   mesh — regardless of what the float pipeline believed. *)

module R = Prim.Ratio

let bad ~constraint_name ~residual ~detail =
  Certificate.violation ~constraint_name ~residual ~detail

(* Product over levels [0, upto) of the temporal and spatial bounds of
   dimension [d]. *)
let dim_product (m : Mapping.t) ~upto d =
  let acc = ref 1 in
  for i = 0 to min (upto - 1) (Array.length m.Mapping.levels - 1) do
    let lm = m.Mapping.levels.(i) in
    List.iter
      (fun (l : Mapping.loop) -> if l.Mapping.dim = d then acc := !acc * l.Mapping.bound)
      (lm.Mapping.temporal @ lm.Mapping.spatial)
  done;
  !acc

(* Exact integer tile footprint of tensor [v] held at level [i]; the
   input-activation halo uses the sliding-window extent. *)
let tile_words (m : Mapping.t) i v =
  let d = dim_product m ~upto:i in
  let stride = m.Mapping.layer.Layer.stride in
  match v with
  | Dims.W -> d Dims.R * d Dims.S * d Dims.C * d Dims.K
  | Dims.OA -> d Dims.P * d Dims.Q * d Dims.K * d Dims.N
  | Dims.IA ->
    let w = ((d Dims.P - 1) * stride) + d Dims.R in
    let h = ((d Dims.Q - 1) * stride) + d Dims.S in
    w * h * d Dims.C * d Dims.N

let check arch (m : Mapping.t) =
  match Robust.Fault.check "certify.mapping" with
  | Error f ->
    Certificate.Violated
      [ bad ~constraint_name:"certify.mapping" ~residual:"0"
          ~detail:(Robust.Failure.to_string f) ]
  | Ok () ->
    let nlev = Array.length m.Mapping.levels in
    if nlev <> Spec.level_count arch then
      Certificate.Violated
        [ bad ~constraint_name:"level count"
            ~residual:(string_of_int (nlev - Spec.level_count arch))
            ~detail:
              (Printf.sprintf "mapping has %d levels, architecture %d" nlev
                 (Spec.level_count arch)) ]
    else begin
      let violations = ref [] in
      let push v = violations := v :: !violations in
      (* all loop bounds positive *)
      Array.iteri
        (fun i lm ->
          List.iter
            (fun (l : Mapping.loop) ->
              if l.Mapping.bound < 1 then
                push
                  (bad
                     ~constraint_name:
                       (Printf.sprintf "level %d loop %s bound" i
                          (Dims.dim_name l.Mapping.dim))
                     ~residual:(string_of_int (1 - l.Mapping.bound))
                     ~detail:(Printf.sprintf "bound %d < 1" l.Mapping.bound)))
            (lm.Mapping.temporal @ lm.Mapping.spatial))
        m.Mapping.levels;
      (* tiling factors multiply to the padded layer dimensions *)
      List.iter
        (fun d ->
          let prod = dim_product m ~upto:nlev d in
          let expect = Layer.padded_bound m.Mapping.layer d in
          if prod <> expect then
            push
              (bad
                 ~constraint_name:(Printf.sprintf "dim %s factorization" (Dims.dim_name d))
                 ~residual:(string_of_int (prod - expect))
                 ~detail:
                   (Printf.sprintf "factors multiply to %d, padded bound is %d" prod
                      expect)))
        Dims.all_dims;
      (* spatial factors fit each level's fanout *)
      for i = 0 to nlev - 1 do
        let used =
          List.fold_left
            (fun a (l : Mapping.loop) -> a * l.Mapping.bound)
            1 m.Mapping.levels.(i).Mapping.spatial
        in
        let fanout = arch.Spec.levels.(i).Spec.fanout in
        if used > fanout then
          push
            (bad
               ~constraint_name:(Printf.sprintf "level %d spatial fanout" i)
               ~residual:(string_of_int (used - fanout))
               ~detail:(Printf.sprintf "spatial product %d exceeds fanout %d" used fanout));
        (* the NoC-boundary spatial factors must also fit the physical mesh *)
        if i = arch.Spec.noc_level then begin
          let mesh = arch.Spec.noc.Spec.mesh_x * arch.Spec.noc.Spec.mesh_y in
          if used > mesh then
            push
              (bad ~constraint_name:"NoC mesh fanout"
                 ~residual:(string_of_int (used - mesh))
                 ~detail:
                   (Printf.sprintf "spatial product %d exceeds the %dx%d mesh" used
                      arch.Spec.noc.Spec.mesh_x arch.Spec.noc.Spec.mesh_y))
        end
      done;
      (* tile footprints fit the buffers (exact words vs capacity) *)
      for i = 0 to nlev - 1 do
        if i <> Spec.dram_level arch then
          List.iter
            (fun v ->
              if Spec.stores arch i v then begin
                let words = tile_words m i v in
                let cap = Spec.capacity_words arch i v in
                if Float.is_finite cap
                   && R.compare (R.of_int words) (R.of_float cap) > 0
                then
                  push
                    (bad
                       ~constraint_name:
                         (Printf.sprintf "level %d %s capacity" i (Dims.tensor_name v))
                       ~residual:
                         (R.to_string (R.sub (R.of_int words) (R.of_float cap)))
                       ~detail:
                         (Printf.sprintf "tile of %d words exceeds capacity %g words"
                            words cap))
              end)
            Dims.all_tensors
      done;
      match List.rev !violations with
      | [] -> Certificate.Certified
      | vs -> Certificate.Violated vs
    end
