(** Exact-arithmetic certification of LP/MIP solutions.

    Replays a claimed solution vector against the {!Milp.Lp} model with
    {!Prim.Ratio} arithmetic: variable bounds, integrality of integer
    variables, every constraint row, and (optionally) the reported
    objective value. All conversions from double are lossless, so residuals
    in the returned violations are exact.

    This is the trust-but-verify layer production MIP solvers ship as
    independent solution checkers: it shares no code with the simplex or
    the branch-and-bound. *)

val check :
  ?tol:Milp.Simplex.Tolerances.t ->
  ?int_tol:float ->
  ?obj:float ->
  Milp.Lp.model ->
  float array ->
  Certificate.t
(** [check model x] certifies [x] against [model]. [tol] defaults to
    {!Milp.Simplex.Tolerances.default} — the same record the solver runs
    with. [int_tol] (default [1e-6]) matches {!Milp.Bb.solve}'s default
    integrality tolerance. When [obj] is given, the reported objective is
    compared against an exact recomputation within
    [opt_tol * (1 + |obj|)]. Row feasibility uses the same
    [feas_tol * (1 + |rhs|)] scaling as [Bb]'s incumbent check.

    The fault-injection site ["certify.lp"] can force a violation, for
    chaos-testing the strict-mode ladder descent. *)
