(** Exact certification of fused (cross-layer) schedules.

    A fused schedule executes a producer→consumer chain of layers
    depth-first over row bands of the final output: each band is pushed
    through the whole chain before the next band starts, so an
    intermediate tensor marked "kept" only ever materializes one band at a
    time in the global buffer and never touches DRAM. The planner in
    [lib/fuse] claims a band count, a buffer-occupancy peak, and a total
    off-chip word count for the group; this module replays that claim from
    first principles in exact integer arithmetic ({!Prim.Bigint}, no
    floats anywhere) and accepts it only when every number checks out.

    The replay shares no code with the planner. It re-derives, per band:
    the backward tile propagation (how many rows of each intermediate a
    band needs, [(rows - 1) * stride + s] per step, clipped to the
    producer's real output height), the global-buffer occupancy ledger
    while each member computes (kept input edge + kept output edge, at IA
    precision, against capacity minus the declared reserve), the aggregate
    weight-buffer residency budget, and the full DRAM accounting: first
    input read per band (halo re-reads counted), spilled edges written and
    re-read, the final output written once, and weights fetched once if
    resident or once per band if not. The recomputed peak and total must
    {e equal} the claimed ones — a claim that understates either is
    rejected, not rounded. *)

type member = {
  m_layer : Layer.t;
  m_keep_output : bool;
      (** this member's output stays resident in the global buffer (band by
          band) instead of spilling to DRAM; must be [false] for the last
          member, whose output is the group's result *)
  m_weights_resident : bool;
      (** weights pinned in the weight buffers across all bands (fetched
          once) rather than refetched per band *)
}

type claim = {
  f_arch : Spec.t;
  f_members : member list;  (** chain order, producer first; length >= 2 *)
  f_bands : int;  (** row bands over the last member's output height [q] *)
  f_gb_reserve_bytes : int;
      (** global-buffer bytes set aside for the per-layer working tiles;
          resident intermediates must fit in what remains *)
  f_peak_gb_bytes : int;  (** claimed peak resident-intermediate occupancy *)
  f_dram_words : int;  (** claimed total off-chip words for one group pass *)
}

val band_rows : total:int -> bands:int -> int -> int
(** [band_rows ~total ~bands t] is the row count of band [t] under the
    balanced split the replay uses: [total / bands] everywhere plus one
    extra row in each of the first [total mod bands] bands. Exposed so
    tests can build hand-computed claims. *)

val check : claim -> Certificate.t
(** Never raises. Violations carry the exact integer residual (words or
    bytes) by which a constraint is broken. *)
