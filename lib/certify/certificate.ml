(* Common vocabulary of the certification layer: a certificate is either a
   pass or a list of violations, each naming the violated constraint and
   carrying the *exact* residual (computed in Prim.Ratio, so zero means the
   constraint holds exactly and a nonzero value is the precise violation
   amount, not a float approximation). *)

type violation = {
  constraint_name : string;  (* e.g. "row cap_l0_W", "var x_3 upper bound" *)
  residual : string;         (* exact rational amount of the violation *)
  detail : string;           (* human-readable elaboration *)
}

type t = Certified | Violated of violation list

(* How Cosa.schedule reacts to a failed certificate. *)
type mode = Off | Warn | Strict

let mode_to_string = function Off -> "off" | Warn -> "warn" | Strict -> "strict"

let violation ~constraint_name ~residual ~detail = { constraint_name; residual; detail }

let violation_to_string v =
  Printf.sprintf "%s: %s (residual %s)" v.constraint_name v.detail v.residual

let to_string = function
  | Certified -> "certified"
  | Violated vs ->
    Printf.sprintf "NOT certified: %s"
      (String.concat "; " (List.map violation_to_string vs))

let is_certified = function Certified -> true | Violated _ -> false

let violations = function Certified -> [] | Violated vs -> vs

(* Merge: certified only when every part is. *)
let combine a b =
  match (a, b) with
  | Certified, c | c, Certified -> c
  | Violated va, Violated vb -> Violated (va @ vb)

(* The Robust.Failure payload for one failed certificate: the first
   violated constraint with its exact residual (the full list is in the
   certificate itself; the fallback chain wants one line per rung). *)
let to_failure = function
  | Certified -> None
  | Violated [] -> None
  | Violated (v :: _) ->
    Some
      (Robust.Failure.Certification_failed
         (Printf.sprintf "%s (residual %s)" v.constraint_name v.residual))
