(* Exact replay of a fused-schedule claim.

   Everything here is integer arithmetic over Prim.Bigint: band row counts,
   backward tile propagation, buffer occupancies, and the DRAM word ledger
   are all recomputed from the layer shapes and the architecture and
   compared exactly against the claim. The planner in lib/fuse has its own
   implementation of the same accounting; this one is deliberately separate
   (plain nested loops, no incremental tricks) so a planner bug cannot
   certify itself. *)

module B = Prim.Bigint

type member = {
  m_layer : Layer.t;
  m_keep_output : bool;
  m_weights_resident : bool;
}

type claim = {
  f_arch : Spec.t;
  f_members : member list;
  f_bands : int;
  f_gb_reserve_bytes : int;
  f_peak_gb_bytes : int;
  f_dram_words : int;
}

let band_rows ~total ~bands t =
  let base = total / bands and extra = total mod bands in
  base + (if t < extra then 1 else 0)

(* ---- architecture budgets ---------------------------------------------- *)

(* Spatial instances of level [i]: the product of fanouts of level [i] and
   every level above it (a level's fanout multiplies the copies of the whole
   subtree from that level down, itself included). *)
let instances (arch : Spec.t) i =
  let n = ref 1 in
  for j = i to Array.length arch.Spec.levels - 1 do
    n := !n * arch.Spec.levels.(j).Spec.fanout
  done;
  !n

(* Global buffer = the outermost on-chip level (directly below DRAM). *)
let gb_level (arch : Spec.t) = Spec.dram_level arch - 1
let gb_capacity_bytes (arch : Spec.t) =
  arch.Spec.levels.(gb_level arch).Spec.capacity_bytes

(* Aggregate on-chip weight capacity: the best (largest) W-storing level,
   capacity shared evenly among the tensors it stores, times its instance
   count. For the baseline this is the 32 KB per-PE weight buffer times 16
   PEs; the tiny W-sharing register file never wins. *)
let weight_budget_bytes (arch : Spec.t) =
  let best = ref 0 in
  for i = 0 to Spec.dram_level arch - 1 do
    let lvl = arch.Spec.levels.(i) in
    if List.mem Dims.W lvl.Spec.stores then begin
      let share = lvl.Spec.capacity_bytes / List.length lvl.Spec.stores in
      let agg = share * instances arch i in
      if agg > !best then best := agg
    end
  done;
  !best

(* ---- per-layer word counts --------------------------------------------- *)

let weight_words (l : Layer.t) = l.Layer.r * l.Layer.s * l.Layer.c * l.Layer.k

let bytes_of_words (arch : Spec.t) tensor words =
  (* precisions in this repo are whole bytes or divide 8 evenly; round up
     to be safe against exotic bit widths *)
  let bits = B.mul words (B.of_int (arch.Spec.precision_bits tensor)) in
  let q, r = B.divmod bits (B.of_int 8) in
  if B.is_zero r then q else B.add q B.one

(* ---- the replay -------------------------------------------------------- *)

let check (c : claim) : Certificate.t =
  let viol name residual detail =
    Certificate.violation ~constraint_name:name ~residual ~detail
  in
  let members = Array.of_list c.f_members in
  let nm = Array.length members in
  if nm < 2 then
    Certificate.Violated
      [ viol "fuse group size" (string_of_int (2 - nm))
          "a fusion group needs at least two members" ]
  else begin
    let layer i = members.(i).m_layer in
    let structural = ref [] in
    let push v = structural := v :: !structural in
    (* 1. chain adjacency: member i's output must be exactly member i+1's
       input tensor (channels, batch, and strided spatial extents). *)
    for i = 0 to nm - 2 do
      let a = layer i and b = layer (i + 1) in
      let bad fmtname lhs rhs =
        push
          (viol
             (Printf.sprintf "fuse adjacency %d->%d (%s)" i (i + 1) fmtname)
             (string_of_int (lhs - rhs))
             (Printf.sprintf "%s=%d of %s vs %d required by %s" fmtname lhs
                a.Layer.name rhs b.Layer.name))
      in
      if a.Layer.k <> b.Layer.c then bad "k=c" a.Layer.k b.Layer.c;
      if a.Layer.n <> b.Layer.n then bad "n" a.Layer.n b.Layer.n;
      if a.Layer.p <> b.Layer.p * b.Layer.stride then
        bad "p" a.Layer.p (b.Layer.p * b.Layer.stride);
      if a.Layer.q <> b.Layer.q * b.Layer.stride then
        bad "q" a.Layer.q (b.Layer.q * b.Layer.stride)
    done;
    (* 2. the last member's output is the group result; it must go to DRAM *)
    if members.(nm - 1).m_keep_output then
      push
        (viol "fuse last output spilled" "1"
           "the final member's output must be written to DRAM, not kept");
    let q_last = (layer (nm - 1)).Layer.q in
    if c.f_bands < 1 || c.f_bands > q_last then
      push
        (viol "fuse band count"
           (string_of_int
              (if c.f_bands < 1 then 1 - c.f_bands else c.f_bands - q_last))
           (Printf.sprintf "bands=%d must lie in [1, q_last=%d]" c.f_bands q_last));
    let gb_cap = gb_capacity_bytes c.f_arch in
    if c.f_gb_reserve_bytes < 0 || c.f_gb_reserve_bytes > gb_cap then
      push
        (viol "fuse gb reserve"
           (string_of_int
              (if c.f_gb_reserve_bytes < 0 then -c.f_gb_reserve_bytes
               else c.f_gb_reserve_bytes - gb_cap))
           (Printf.sprintf "reserve=%d B outside [0, %d B]" c.f_gb_reserve_bytes
              gb_cap));
    match List.rev !structural with
    | _ :: _ as vs ->
      (* tile propagation and the ledgers are meaningless on a broken
         chain; report the structural violations alone *)
      Certificate.Violated vs
    | [] ->
      let vs = ref [] in
      let push v = vs := v :: !vs in
      let n_batch = (layer 0).Layer.n in
      (* Edge words per band: kept or spilled, intermediate i (the output
         of member i) occupies need_i(t) rows of a p_i x k_i x n image. *)
      let edge_words i need =
        B.of_int (need * (layer i).Layer.p * (layer i).Layer.k * n_batch)
      in
      let gb_budget = gb_cap - c.f_gb_reserve_bytes in
      let peak = ref B.zero in
      let dram = ref B.zero in
      let add_dram w = dram := B.add !dram w in
      (* per-band replay *)
      for t = 0 to c.f_bands - 1 do
        (* backward tile propagation: rows of each member's output this
           band needs, clipped to what the member actually produces *)
        let need = Array.make nm 0 in
        need.(nm - 1) <- band_rows ~total:q_last ~bands:c.f_bands t;
        for j = nm - 1 downto 1 do
          let l = layer j in
          let want = ((need.(j) - 1) * l.Layer.stride) + l.Layer.s in
          need.(j - 1) <- min (layer (j - 1)).Layer.q want
        done;
        (* the group's first input comes from DRAM every band (halo rows at
           band seams are re-read: full recompute, no halo cache) *)
        let l0 = layer 0 in
        let in_rows = ((need.(0) - 1) * l0.Layer.stride) + l0.Layer.s in
        add_dram
          (B.of_int (in_rows * Layer.input_width l0 * l0.Layer.c * n_batch));
        (* walk the chain: while member j computes, the global buffer holds
           the kept slice of its input edge plus the kept slice of the
           output edge it is producing *)
        for j = 0 to nm - 1 do
          let occ = ref B.zero in
          if j > 0 && members.(j - 1).m_keep_output then
            occ :=
              B.add !occ
                (bytes_of_words c.f_arch Dims.IA (edge_words (j - 1) need.(j - 1)));
          if j < nm - 1 && members.(j).m_keep_output then
            occ :=
              B.add !occ (bytes_of_words c.f_arch Dims.IA (edge_words j need.(j)));
          if B.compare !occ (B.of_int gb_budget) > 0 then
            push
              (viol
                 (Printf.sprintf "fuse gb ledger (band %d, member %d)" t j)
                 (B.to_string (B.sub !occ (B.of_int gb_budget)))
                 (Printf.sprintf
                    "resident intermediates need %s B but only %d B remain \
                     beside the %d B reserve"
                    (B.to_string !occ) gb_budget c.f_gb_reserve_bytes));
          if B.compare !occ !peak > 0 then peak := !occ
        done;
        (* spilled intermediate edges cross DRAM twice per band: written by
           the producer, read back by the consumer *)
        for j = 0 to nm - 2 do
          if not members.(j).m_keep_output then
            add_dram (B.mul (B.of_int 2) (edge_words j need.(j)))
        done;
        (* the final output is written exactly once: bands partition q *)
        add_dram (edge_words (nm - 1) need.(nm - 1))
      done;
      (* weights: fetched once when pinned on chip, once per band when not *)
      let wres_bytes = ref B.zero in
      for j = 0 to nm - 1 do
        let w = B.of_int (weight_words (layer j)) in
        if members.(j).m_weights_resident then begin
          wres_bytes := B.add !wres_bytes (bytes_of_words c.f_arch Dims.W w);
          add_dram w
        end
        else add_dram (B.mul w (B.of_int c.f_bands))
      done;
      let wbudget = B.of_int (weight_budget_bytes c.f_arch) in
      if B.compare !wres_bytes wbudget > 0 then
        push
          (viol "fuse weight residency" (B.to_string (B.sub !wres_bytes wbudget))
             (Printf.sprintf
                "resident weights need %s B against an aggregate on-chip \
                 weight budget of %s B"
                (B.to_string !wres_bytes) (B.to_string wbudget)));
      if not (B.equal !peak (B.of_int c.f_peak_gb_bytes)) then
        push
          (viol "fuse gb peak" (B.to_string (B.sub !peak (B.of_int c.f_peak_gb_bytes)))
             (Printf.sprintf "claimed peak %d B, exact replay gives %s B"
                c.f_peak_gb_bytes (B.to_string !peak)));
      if not (B.equal !dram (B.of_int c.f_dram_words)) then
        push
          (viol "fuse dram accounting"
             (B.to_string (B.sub !dram (B.of_int c.f_dram_words)))
             (Printf.sprintf "claimed %d off-chip words, exact replay gives %s"
                c.f_dram_words (B.to_string !dram)));
      match List.rev !vs with
      | [] -> Certificate.Certified
      | vs -> Certificate.Violated vs
  end
