(* Tests for the scheduling daemon: wire protocol totality and roundtrips,
   SLO-aware admission (budget-band rung selection, quotas, shedding,
   queue bounds — table-driven and property-based), and a live
   socket-level end-to-end exchange with graceful drain. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

module P = Daemon.Protocol
module A = Daemon.Admission
module L = Robust.Ladder

(* ---- protocol --------------------------------------------------------- *)

let sample_request =
  { P.client = "tenant-a"; budget_s = 0.75; arch = "baseline";
    target = P.Layer "3_56_64_64_1"; cache_only = false;
    req_id = 0x0123_4567_89ab_cdefL; hop = 2 }

let test_request_roundtrip () =
  match P.decode_request (P.encode_request sample_request) with
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)
  | Ok r ->
    check_string "client" sample_request.P.client r.P.client;
    check_bool "budget bit-exact" true (r.P.budget_s = sample_request.P.budget_s);
    check_string "arch" "baseline" r.P.arch;
    check_bool "target" true (r.P.target = P.Layer "3_56_64_64_1");
    check_bool "request id" true (r.P.req_id = sample_request.P.req_id);
    check_int "hop" 2 r.P.hop

let sample_scheduled =
  P.Scheduled
    {
      P.rung = L.Two_stage;
      layers =
        [ { P.name = "l0"; repeats = 3; origin = "two-stage MIP"; verdict = "ok";
            record = "record body\nwith newline" } ];
      total_latency = 123456.;
      total_energy_pj = 7.5e9;
      queue_wait_s = 0.002;
      serve_s = 0.4;
    }

let test_response_roundtrips () =
  List.iter
    (fun resp ->
      match P.decode_response (P.encode_response resp) with
      | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)
      | Ok r -> check_bool "response roundtrips" true (r = resp))
    [ sample_scheduled; P.Rejected P.Queue_full; P.Rejected P.Quota_exceeded;
      P.Rejected P.Shedding; P.Rejected P.Deadline_unmeetable;
      P.Failed "solver blew up" ]

(* Decoding is total: every truncation of a valid frame is a typed error,
   never an exception. *)
let test_decode_total_on_truncation () =
  let full = P.encode_request sample_request in
  for n = 0 to Bytes.length full - 1 do
    match P.decode_request (Bytes.sub full 0 n) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncation to %d bytes decoded" n)
  done;
  let resp = P.encode_response sample_scheduled in
  for n = 0 to Bytes.length resp - 1 do
    match P.decode_response (Bytes.sub resp 0 n) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncation to %d bytes decoded" n)
  done

let test_decode_rejects_garbage () =
  check_bool "bad magic" true
    (Result.is_error (P.decode_request (Bytes.of_string "\x00\x01\x01")));
  check_bool "bad version" true
    (Result.is_error (P.decode_request (Bytes.of_string "\xc5\x63\x01")));
  check_bool "trailing bytes" true
    (Result.is_error
       (P.decode_request
          (Bytes.cat (P.encode_request sample_request) (Bytes.of_string "x"))));
  check_bool "response tag is not a request" true
    (Result.is_error (P.decode_request (P.encode_response (P.Failed "x"))));
  check_bool "empty" true (Result.is_error (P.decode_response Bytes.empty))

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A frame from a different protocol generation names both sides of the
   disagreement — mixed-version deployments fail legibly. *)
let test_version_magic_mismatch () =
  let frame = P.encode_request sample_request in
  let mutated i v =
    let b = Bytes.copy frame in
    Bytes.set b i v;
    b
  in
  (* byte 0 is the magic, byte 1 the version *)
  (match P.decode_request (mutated 1 '\x01') with
   | Ok _ -> Alcotest.fail "v1 frame decoded as current version"
   | Error e ->
     check_bool "names the expected version" true
       (contains e (Printf.sprintf "expected v%d" P.version));
     check_bool "names the received version" true (contains e "got v1"));
  match P.decode_request (mutated 0 '\x7f') with
  | Ok _ -> Alcotest.fail "wrong-magic frame decoded"
  | Error e -> check_bool "names the magic" true (contains e "magic mismatch")

(* Fuzz totality: random byte mutations and truncations of valid frames
   always come back [Ok]/[Error], never an exception. *)
let qcheck_decoder_total_fuzz =
  let base_req = P.encode_request sample_request in
  let base_resp = P.encode_response sample_scheduled in
  let gen =
    QCheck.Gen.(
      let* use_resp = bool in
      let base = if use_resp then base_resp else base_req in
      let len = Bytes.length base in
      let* keep = int_bound len in
      let* muts =
        list_size (int_bound 8)
          (pair (int_bound (max 0 (len - 1))) (int_bound 255))
      in
      return (use_resp, keep, muts))
  in
  QCheck.Test.make ~name:"decoders total under mutation and truncation"
    ~count:1000 (QCheck.make gen)
    (fun (use_resp, keep, muts) ->
      let base = if use_resp then base_resp else base_req in
      let b = Bytes.sub base 0 keep in
      List.iter
        (fun (i, v) -> if i < Bytes.length b then Bytes.set b i (Char.chr v))
        muts;
      match
        if use_resp then Result.map ignore (P.decode_response b)
        else Result.map ignore (P.decode_request b)
      with
      | Ok () | Error _ -> true)

let qcheck_protocol_roundtrip =
  let gen =
    QCheck.Gen.(
      let str = string_size ~gen:printable (int_bound 40) in
      let* client = str in
      let* budget = float_bound_inclusive 100. in
      let* arch = str in
      let* is_layer = bool in
      let* name = str in
      let* cache_only = bool in
      let* req_lo = int_bound 0xffff in
      let* req_hi = int_bound 0xffff in
      let* hop = int_bound 255 in
      return
        { P.client; budget_s = budget; arch;
          target = (if is_layer then P.Layer name else P.Network name);
          cache_only;
          req_id =
            Int64.logor
              (Int64.shift_left (Int64.of_int req_hi) 48)
              (Int64.of_int req_lo);
          hop })
  in
  QCheck.Test.make ~name:"protocol request roundtrip" ~count:200 (QCheck.make gen)
    (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok r -> r = req
      | Error _ -> false)

(* ---- admission: table-driven budget bands ----------------------------- *)

(* Fixed pessimistic priors, min_samples high so they stay binding:
   cost(J)=4.005, cost(T)=2.005, cost(H)=0.055, cost(C)=0.005 at p_hit=0. *)
let adm_cfg =
  {
    A.queue_capacity = 4;
    quota_rate = 0.;
    quota_burst = 8.;
    shed_delay_s = 8.;
    safety = 0.8;
    min_samples = 1000;
    priors =
      [ (L.Joint, 4.0); (L.Two_stage, 2.0); (L.Heuristic, 0.05);
        (L.Cache_probe, 0.005) ];
  }

let decide ?(cfg = adm_cfg) ?(depth = 0) ?(delay = 0.) ?(hit = 0.) budget =
  A.decide (A.create cfg) ~now:0. ~client:"" ~budget_s:budget ~queue_depth:depth
    ~queue_delay_s:delay ~hit_rate:hit

let test_admission_budget_bands () =
  let expect name budget want =
    check_bool name true (decide budget = want)
  in
  expect "generous -> Joint" 10. (Ok L.Joint);
  expect "mid -> Two_stage" 4. (Ok L.Two_stage);
  expect "tight -> Heuristic" 0.5 (Ok L.Heuristic);
  expect "very tight -> Cache_probe" 0.02 (Ok L.Cache_probe);
  expect "unmeetable -> typed rejection" 0.004 (Error P.Deadline_unmeetable);
  (* a hot cache discounts the solve cost: Joint fits a tiny budget *)
  check_bool "hot cache upgrades the rung" true
    (decide ~hit:1. 0.02 = Ok L.Joint);
  (* queue delay eats the budget before rung fit *)
  check_bool "queue delay degrades" true (decide ~delay:6. 10. = Ok L.Two_stage);
  check_bool "queue full rejects first" true
    (decide ~depth:4 10. = Error P.Queue_full);
  check_bool "estimated overload sheds" true
    (decide ~delay:9. 20. = Error P.Shedding)

let test_admission_quota () =
  let cfg = { adm_cfg with A.quota_rate = 1.; quota_burst = 2. } in
  let t = A.create cfg in
  let d ~now client =
    A.decide t ~now ~client ~budget_s:10. ~queue_depth:0 ~queue_delay_s:0.
      ~hit_rate:0.
  in
  check_bool "burst token 1" true (d ~now:0. "a" = Ok L.Joint);
  check_bool "burst token 2" true (d ~now:0. "a" = Ok L.Joint);
  check_bool "bucket empty" true (d ~now:0. "a" = Error P.Quota_exceeded);
  (* per-client isolation: b has its own bucket *)
  check_bool "other client unaffected" true (d ~now:0. "b" = Ok L.Joint);
  (* lazy refill at 1 token/s *)
  check_bool "refilled after 1.5s" true (d ~now:1.5 "a" = Ok L.Joint);
  check_bool "only one token refilled" true (d ~now:1.5 "a" = Error P.Quota_exceeded)

let test_admission_observe_overrides_priors () =
  let cfg = { adm_cfg with A.min_samples = 4 } in
  let t = A.create cfg in
  (* prior says Joint costs 4s; feed fast observations until they bind *)
  check_bool "prior binds cold" true (A.rung_cost t L.Joint = 4.0);
  for _ = 1 to 8 do
    A.observe t L.Joint 0.1
  done;
  check_bool "window p95 replaces prior" true (A.rung_cost t L.Joint <= 0.1 +. 1e-9);
  (* and a 1s budget now clears the Joint rung *)
  let d =
    A.decide t ~now:0. ~client:"" ~budget_s:1. ~queue_depth:0 ~queue_delay_s:0.
      ~hit_rate:0.
  in
  check_bool "warm estimator admits Joint at 1s" true (d = Ok L.Joint)

(* ---- admission: properties -------------------------------------------- *)

(* Feasibility: an admitted rung's estimated cost fits the discounted
   budget. *)
let qcheck_admission_feasible =
  QCheck.Test.make ~name:"admitted rung cost fits safety * budget" ~count:500
    (QCheck.make
       QCheck.Gen.(pair (float_bound_inclusive 12.) (float_bound_inclusive 1.)))
    (fun (budget, hit) ->
      let t = A.create adm_cfg in
      match
        A.decide t ~now:0. ~client:"" ~budget_s:budget ~queue_depth:0
          ~queue_delay_s:0. ~hit_rate:hit
      with
      | Error _ -> true
      | Ok rung ->
        let cost =
          List.find_map
            (fun (e : L.estimate) -> if L.equal e.L.rung rung then Some e.L.cost_s else None)
            (A.estimates t ~hit_rate:hit)
        in
        (match cost with
         | None -> false
         | Some c -> c <= (adm_cfg.A.safety *. budget) +. 1e-9))

(* Monotonicity: a larger budget never selects a lower rung. *)
let qcheck_admission_monotone =
  QCheck.Test.make ~name:"larger budget never lowers the rung" ~count:500
    (QCheck.make
       QCheck.Gen.(
         triple (float_bound_inclusive 12.) (float_bound_inclusive 12.)
           (float_bound_inclusive 1.)))
    (fun (b1, b2, hit) ->
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      let d b =
        A.decide (A.create adm_cfg) ~now:0. ~client:"" ~budget_s:b ~queue_depth:0
          ~queue_delay_s:0. ~hit_rate:hit
      in
      match (d lo, d hi) with
      | Error _, _ -> true  (* lo unmeetable says nothing about hi *)
      | Ok _, Error _ -> false  (* hi unmeetable while lo fit: not monotone *)
      | Ok rl, Ok rh -> L.rank rh >= L.rank rl)

(* Ladder.select directly: never picks an unaffordable rung, and never
   passes over a higher rung that fits. *)
let qcheck_ladder_select =
  QCheck.Test.make ~name:"ladder select is max-rank-affordable" ~count:500
    (QCheck.make
       QCheck.Gen.(
         pair (float_bound_inclusive 5.)
           (list_size (int_bound 6) (pair (int_bound 3) (float_bound_inclusive 5.)))))
    (fun (budget, raw) ->
      let rungs = [| L.Cache_probe; L.Heuristic; L.Two_stage; L.Joint |] in
      let ests = List.map (fun (i, c) -> { L.rung = rungs.(i); cost_s = c }) raw in
      match L.select ~budget ests with
      | None -> not (List.exists (fun (e : L.estimate) -> e.L.cost_s <= budget) ests)
      | Some r ->
        List.exists
          (fun (e : L.estimate) -> L.equal e.L.rung r && e.L.cost_s <= budget)
          ests
        && not
             (List.exists
                (fun (e : L.estimate) -> e.L.cost_s <= budget && L.rank e.L.rung > L.rank r)
                ests))

(* ---- live daemon: socket e2e, typed rejection, graceful drain --------- *)

let with_temp_daemon ?(cache_dir = None) f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cosa_test_%d_%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let service =
    Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:2_000 ~time_limit:0.6
      Spec.baseline
  in
  let admission = A.default_config ~queue_capacity:4 ~time_limit:0.6 () in
  let server =
    Daemon.Server.create
      (Daemon.Server.config ~admission ?cache_dir ~default_budget_s:10.
         ~socket_path:sock service)
  in
  let thread = Daemon.Server.start server in
  Daemon.Server.wait_ready server;
  Fun.protect
    ~finally:(fun () ->
      Daemon.Server.shutdown server;
      Thread.join thread)
    (fun () -> f server sock)

let request ?(budget = 10.) ?(arch = "baseline") ?(req_id = 0L) sock name =
  Daemon.Client.one_shot sock
    { P.client = ""; budget_s = budget; arch; target = P.Layer name;
      cache_only = false; req_id; hop = 0 }

let test_daemon_e2e () =
  with_temp_daemon (fun server sock ->
      (* generous budget: full-quality schedule, certified *)
      (match request sock "3_56_64_64_1" with
       | Ok (P.Scheduled s) ->
         check_bool "full-quality rung" true (s.P.rung = L.Joint);
         (match s.P.layers with
          | [ l ] ->
            check_string "verdict" "ok" l.P.verdict;
            (match Mapping_io.record_of_string l.P.record with
             | Error e -> Alcotest.fail ("record unparseable: " ^ e)
             | Ok (_, m) ->
               check_bool "client-side re-certification" true
                 (Certify.Mapping_cert.check Spec.baseline m
                 = Certify.Certificate.Certified))
          | _ -> Alcotest.fail "expected one layer");
         check_bool "latency positive" true (s.P.total_latency > 0.)
       | Ok _ -> Alcotest.fail "expected Scheduled"
       | Error e -> Alcotest.fail e);
      (* second request: served from the in-memory cache *)
      (match request sock "3_56_64_64_1" with
       | Ok (P.Scheduled s) ->
         (match s.P.layers with
          | [ l ] -> check_string "cache origin" "cache(mem)" l.P.origin
          | _ -> Alcotest.fail "expected one layer")
       | _ -> Alcotest.fail "expected Scheduled from cache");
      (* hopeless deadline: typed up-front rejection, no solve *)
      (match request ~budget:0.0001 sock "1_56_64_256_1" with
       | Ok (P.Rejected P.Deadline_unmeetable) -> ()
       | _ -> Alcotest.fail "expected Deadline_unmeetable");
      (* unknown names: typed failures *)
      (match request sock "no_such_layer" with
       | Ok (P.Failed _) -> ()
       | _ -> Alcotest.fail "expected Failed for unknown layer");
      (match request ~arch:"no_such_arch" sock "3_56_64_64_1" with
       | Ok (P.Failed _) -> ()
       | _ -> Alcotest.fail "expected Failed for unknown arch");
      let s = Daemon.Server.stats server in
      check_int "received" 5 s.Daemon.Server.received;
      check_int "served" 2 s.Daemon.Server.served;
      check_int "rejected deadline" 1 s.Daemon.Server.rejected_deadline)

(* A malformed frame costs the client a typed error, never the server. *)
let test_daemon_survives_garbage () =
  with_temp_daemon (fun _server sock ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      P.write_frame fd (Bytes.of_string "\xde\xad\xbe\xef");
      (match P.read_frame fd with
       | Ok (Some payload) ->
         (match P.decode_response payload with
          | Ok (P.Failed msg) ->
            check_bool "typed protocol error" true
              (String.length msg > 0
              && String.sub msg 0 9 = "malformed")
          | _ -> Alcotest.fail "expected Failed response")
       | _ -> Alcotest.fail "expected a response frame");
      Unix.close fd;
      (* and the server still serves *)
      match request sock "3_56_64_64_1" with
      | Ok (P.Scheduled _) -> ()
      | _ -> Alcotest.fail "server wedged after garbage frame")

(* A frame carrying the wrong protocol version gets a typed [Failed]
   naming expected-vs-got, not a dropped connection. *)
let test_daemon_rejects_version_mismatch () =
  with_temp_daemon (fun _server sock ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX sock);
          let payload = P.encode_request sample_request in
          Bytes.set payload 1 '\x01';
          P.write_frame fd payload;
          match P.read_frame fd with
          | Ok (Some resp) ->
            (match P.decode_response resp with
             | Ok (P.Failed msg) ->
               check_bool "typed failure names both versions" true
                 (contains msg "version mismatch"
                 && contains msg (Printf.sprintf "expected v%d" P.version)
                 && contains msg "got v1")
             | _ -> Alcotest.fail "expected a typed Failed response")
          | _ -> Alcotest.fail "expected a response frame"))

(* ---- TCP transport and client failover -------------------------------- *)

let alloc_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let with_tcp_daemon f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cosa_tcp_%d_%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let port = alloc_port () in
  let service =
    Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:2_000 ~time_limit:0.6
      Spec.baseline
  in
  let admission = A.default_config ~queue_capacity:4 ~time_limit:0.6 () in
  let server =
    Daemon.Server.create
      (Daemon.Server.config ~admission ~default_budget_s:10.
         ~tcp:("127.0.0.1", port) ~socket_path:sock service)
  in
  let thread = Daemon.Server.start server in
  Daemon.Server.wait_ready server;
  Fun.protect
    ~finally:(fun () ->
      Daemon.Server.shutdown server;
      Thread.join thread)
    (fun () -> f server port)

let test_daemon_tcp_failover () =
  with_tcp_daemon (fun server port ->
      let live = Daemon.Client.Tcp ("127.0.0.1", port) in
      let dead = Daemon.Client.Tcp ("127.0.0.1", alloc_port ()) in
      let req ?(budget = 10.) name =
        { P.client = ""; budget_s = budget; arch = "baseline";
          target = P.Layer name; cache_only = false; req_id = 0L; hop = 0 }
      in
      (* plain exchange over the TCP listener *)
      (match Daemon.Client.one_shot_ep live (req "3_56_64_64_1") with
       | Ok (P.Scheduled _) -> ()
       | Ok _ -> Alcotest.fail "expected Scheduled over TCP"
       | Error e -> Alcotest.fail ("TCP exchange failed: " ^ e));
      (* failover: the dead endpoint is skipped, the live one answers *)
      (match
         Daemon.Client.request_failover ~retries:1 ~backoff_s:0.01
           ~endpoints:[ dead; live ] (req "3_56_64_64_1")
       with
       | Ok (P.Scheduled s) ->
         (match s.P.layers with
          | [ l ] -> check_string "failover hits the warm cache" "cache(mem)" l.P.origin
          | _ -> Alcotest.fail "expected one layer")
       | _ -> Alcotest.fail "failover never reached the live endpoint");
      (* a typed rejection is terminal: a retried one would show up as
         extra received requests on the server *)
      let before = (Daemon.Server.stats server).Daemon.Server.received in
      (match
         Daemon.Client.request_failover ~retries:3 ~backoff_s:0.01
           ~endpoints:[ live ] (req ~budget:0.0001 "1_56_64_256_1")
       with
       | Ok (P.Rejected P.Deadline_unmeetable) -> ()
       | _ -> Alcotest.fail "expected a typed rejection through failover");
      let after = (Daemon.Server.stats server).Daemon.Server.received in
      check_int "typed rejection not retried" 1 (after - before))

(* Drain persists the cache; a warm restart serves from disk after
   re-verification. *)
let test_daemon_drain_and_restart () =
  let dir = Filename.temp_file "cosa_daemon" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      with_temp_daemon ~cache_dir:(Some dir) (fun _ sock ->
          match request sock "3_56_64_64_1" with
          | Ok (P.Scheduled _) -> ()
          | _ -> Alcotest.fail "seed solve failed");
      (* with_temp_daemon's finally drained the server: cache on disk *)
      check_bool "drain wrote records" true (Array.length (Sys.readdir dir) > 0);
      check_bool "no temp litter after drain" true
        (Array.for_all
           (fun n -> Filename.check_suffix n ".cosa")
           (Sys.readdir dir));
      with_temp_daemon ~cache_dir:(Some dir) (fun server sock ->
          (match request sock "3_56_64_64_1" with
           | Ok (P.Scheduled s) ->
             (match s.P.layers with
              | [ l ] -> check_string "restart hits disk" "cache(disk)" l.P.origin
              | _ -> Alcotest.fail "expected one layer")
           | _ -> Alcotest.fail "restart request failed");
          let s = Daemon.Server.stats server in
          check_int "no live solve needed" 1 s.Daemon.Server.served))

(* ---- live introspection: the Stats frame ------------------------------ *)

(* A stats query against a live daemon returns the versioned snapshot
   (with the request ids of served traffic in the flight recorder) and is
   strictly read-only: request/admission counters and cache hit/miss
   accounting must be byte-for-byte what they were before the query. *)
let test_stats_frame () =
  with_temp_daemon (fun server sock ->
      let id = 0xfeed_face_1234_5678L in
      (match request ~req_id:id sock "3_56_64_64_1" with
       | Ok (P.Scheduled _) -> ()
       | _ -> Alcotest.fail "seed solve failed");
      (match request sock "3_56_64_64_1" with
       | Ok (P.Scheduled _) -> ()
       | _ -> Alcotest.fail "cache-hit request failed");
      let counters () =
        let s = Daemon.Server.stats server in
        let c =
          match (Daemon.Server.tier server).Serve.Service.tier_stats () with
          | Some (cs : Serve.Schedule_cache.stats) ->
            (cs.Serve.Schedule_cache.hits, cs.Serve.Schedule_cache.misses)
          | None -> (0, 0)
        in
        (s.Daemon.Server.received, s.Daemon.Server.served, c)
      in
      let before = counters () in
      let ep = Daemon.Client.Unix_path sock in
      let full =
        match Daemon.Client.stats_ep ep P.Stats_full with
        | Ok s -> s
        | Error e -> Alcotest.fail ("stats query failed: " ^ e)
      in
      check_bool "versioned snapshot" true (contains full "\"snapshot_version\":1");
      check_bool "names the protocol version" true
        (contains full (Printf.sprintf "\"protocol_version\":%d" P.version));
      check_bool "daemon counters present" true (contains full "\"received\":2");
      check_bool "admission windows present" true (contains full "\"admission\":[");
      check_bool "metrics embedded" true (contains full "\"metrics\":");
      let hex = Telemetry.Trace.request_id_hex id in
      check_bool "flight recorder carries the request id" true (contains full hex);
      let flight =
        match Daemon.Client.stats_ep ep P.Stats_flight with
        | Ok s -> s
        | Error e -> Alcotest.fail ("trace-dump query failed: " ^ e)
      in
      check_bool "flight dump carries the request id" true (contains flight hex);
      check_bool "flight dump records the outcome" true
        (contains flight "\"verdict\":\"scheduled\"");
      let prom =
        match Daemon.Client.stats_ep ep P.Stats_prometheus with
        | Ok s -> s
        | Error e -> Alcotest.fail ("prometheus query failed: " ^ e)
      in
      check_bool "prometheus exposition typed" true (contains prom "# TYPE");
      check_bool "prometheus metrics prefixed" true (contains prom "cosa_daemon_");
      (* the queries above must not have moved a single counter *)
      check_bool "stats queries perturb nothing" true (counters () = before);
      check_bool "stats queries not counted as requests" true
        (contains
           (Daemon.Server.stats_payload server P.Stats_full)
           "\"received\":2"))

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "daemon",
    [
      Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
      Alcotest.test_case "response roundtrips" `Quick test_response_roundtrips;
      Alcotest.test_case "decode total on truncation" `Quick
        test_decode_total_on_truncation;
      Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects_garbage;
      Alcotest.test_case "version/magic mismatch is named" `Quick
        test_version_magic_mismatch;
      qc qcheck_decoder_total_fuzz;
      qc qcheck_protocol_roundtrip;
      Alcotest.test_case "admission budget bands" `Quick test_admission_budget_bands;
      Alcotest.test_case "admission quota" `Quick test_admission_quota;
      Alcotest.test_case "admission observe" `Quick
        test_admission_observe_overrides_priors;
      qc qcheck_admission_feasible;
      qc qcheck_admission_monotone;
      qc qcheck_ladder_select;
      Alcotest.test_case "daemon e2e" `Slow test_daemon_e2e;
      Alcotest.test_case "daemon survives garbage" `Slow test_daemon_survives_garbage;
      Alcotest.test_case "daemon rejects version mismatch" `Slow
        test_daemon_rejects_version_mismatch;
      Alcotest.test_case "daemon tcp + failover" `Slow test_daemon_tcp_failover;
      Alcotest.test_case "daemon drain+restart" `Slow test_daemon_drain_and_restart;
      Alcotest.test_case "stats frame: live + read-only" `Slow test_stats_frame;
    ] )
