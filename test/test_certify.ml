(* Tests for the exact-arithmetic certification layer: LP solution replay,
   independent mapping recheck, NoC flit conservation, and the strict-mode
   degradation-ladder descent in Cosa.schedule. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arch = Spec.baseline

let certified what = function
  | Certify.Certificate.Certified -> ()
  | Certify.Certificate.Violated _ as c ->
    Alcotest.failf "%s: expected certified, got %s" what (Certify.Certificate.to_string c)

(* a violation whose constraint name mentions [frag] must be present *)
let violated_on what frag cert =
  match cert with
  | Certify.Certificate.Certified -> Alcotest.failf "%s: expected a violation" what
  | Certify.Certificate.Violated vs ->
    let mentions (v : Certify.Certificate.violation) =
      let name = v.Certify.Certificate.constraint_name in
      let n = String.length name and m = String.length frag in
      let rec go i = i + m <= n && (String.sub name i m = frag || go (i + 1)) in
      go 0
    in
    check_bool
      (Printf.sprintf "%s: some violation names %S (got: %s)" what frag
         (String.concat "; "
            (List.map (fun v -> v.Certify.Certificate.constraint_name) vs)))
      true
      (List.exists mentions vs)

(* --- LP certificates --- *)

(* max 3x + 2y  st  x + y <= 4 (row "cap"), x integer in [0, 10] *)
let small_model () =
  let m = Milp.Lp.create ~name:"cert_test" () in
  let x = Milp.Lp.add_var m ~integer:true ~lb:0. ~ub:10. "x" in
  let y = Milp.Lp.add_var m ~lb:0. ~ub:10. "y" in
  Milp.Lp.add_constr m ~name:"cap" [ (1., x); (1., y) ] Milp.Lp.Le 4.;
  Milp.Lp.set_objective m `Maximize [ (3., x); (2., y) ];
  m

let test_lp_cert_accepts_solver_answer () =
  let m = small_model () in
  let res = Milp.Bb.solve ~node_limit:1000 ~time_limit:10. m in
  check_bool "solved" true (res.Milp.Bb.status = Milp.Bb.Optimal);
  certified "genuine B&B solution"
    (Certify.Lp_cert.check ~obj:res.Milp.Bb.obj m res.Milp.Bb.values)

let test_lp_cert_rejects_corruption () =
  let m = small_model () in
  (* row violation: 5 + 0 > 4 *)
  violated_on "row violation" "cap" (Certify.Lp_cert.check m [| 5.; 0. |]);
  (* bound violation: x = 11 > ub 10 *)
  violated_on "upper bound" "x upper bound" (Certify.Lp_cert.check m [| 11.; 0. |]);
  (* integrality violation on x *)
  violated_on "integrality" "x integrality" (Certify.Lp_cert.check m [| 1.5; 1. |]);
  (* lying about the objective: claims 100, exact is 3*2 + 2*1 = 8 *)
  violated_on "objective lie" "objective" (Certify.Lp_cert.check ~obj:100. m [| 2.; 1. |]);
  (* wrong solution-vector length *)
  violated_on "bad length" "solution vector" (Certify.Lp_cert.check m [| 1. |]);
  (* exact arithmetic keeps sub-tolerance float noise acceptable *)
  certified "within tolerance" (Certify.Lp_cert.check m [| 3.; 1. +. 1e-9 |])

(* --- mapping certificates --- *)

let test_mapping_cert_accepts_valid () =
  let layer = Zoo.find "3_56_64_64_1" in
  certified "trivial mapping" (Certify.Mapping_cert.check arch (Cosa.trivial_mapping arch layer));
  let rng = Prim.Rng.create 17 in
  match Sampler.valid rng arch layer with
  | None -> Alcotest.fail "sampler produced nothing"
  | Some m ->
    check_bool "sampler mapping valid" true (Mapping.is_valid arch m);
    certified "sampler mapping" (Certify.Mapping_cert.check arch m)

(* corrupting one tiling factor must be caught, named, and quantified *)
let test_mapping_cert_rejects_bad_factorization () =
  let layer = Zoo.find "3_56_64_64_1" in
  let m = Cosa.trivial_mapping arch layer in
  let dram = Spec.dram_level arch in
  let corrupt =
    { m with
      Mapping.levels =
        Array.mapi
          (fun i (lm : Mapping.level_map) ->
            if i <> dram then lm
            else
              { lm with
                Mapping.temporal =
                  List.map
                    (fun (l : Mapping.loop) ->
                      if l.Mapping.dim = Dims.K then { l with Mapping.bound = l.Mapping.bound * 2 }
                      else l)
                    lm.Mapping.temporal })
          m.Mapping.levels }
  in
  violated_on "doubled K factor" "K factorization" (Certify.Mapping_cert.check arch corrupt)

let test_mapping_cert_rejects_capacity_overflow () =
  let layer = Zoo.find "3_56_64_64_1" in
  let m = Cosa.trivial_mapping arch layer in
  let dram = Spec.dram_level arch in
  (* move the whole loop nest innermost: every on-chip tile becomes the
     full layer, which cannot fit any buffer *)
  let corrupt =
    { m with
      Mapping.levels =
        Array.mapi
          (fun i (lm : Mapping.level_map) ->
            if i = 0 then { lm with Mapping.temporal = m.Mapping.levels.(dram).Mapping.temporal }
            else if i = dram then { lm with Mapping.temporal = [] }
            else lm)
          m.Mapping.levels }
  in
  violated_on "whole layer innermost" "capacity" (Certify.Mapping_cert.check arch corrupt)

let test_mapping_cert_rejects_spatial_overflow () =
  let layer = Zoo.find "3_56_64_64_1" in
  let m = Cosa.trivial_mapping arch layer in
  let corrupt =
    { m with
      Mapping.levels =
        Array.mapi
          (fun i (lm : Mapping.level_map) ->
            if i = 0 then
              { lm with Mapping.spatial = [ { Mapping.dim = Dims.K; bound = 1024 } ] }
            else lm)
          m.Mapping.levels }
  in
  violated_on "oversubscribed fanout" "fanout" (Certify.Mapping_cert.check arch corrupt)

(* --- NoC flit conservation --- *)

let test_noc_cert_on_real_simulation () =
  let layer = Zoo.find "3_56_64_64_1" in
  let m = (Cosa.schedule ~time_limit:2. arch layer).Cosa.mapping in
  match Noc_sim.simulate_r arch m with
  | Error f -> Alcotest.failf "simulation failed: %s" (Robust.Failure.to_string f)
  | Ok s ->
    check_bool "traffic flowed" true (s.Noc_sim.flits_injected > 0);
    certified "flit conservation" (Certify.Noc_cert.check s)

let test_noc_cert_rejects_imbalance () =
  let layer = Zoo.find "3_56_64_64_1" in
  let m = Cosa.trivial_mapping arch layer in
  match Noc_sim.simulate_r arch m with
  | Error f -> Alcotest.failf "simulation failed: %s" (Robust.Failure.to_string f)
  | Ok s ->
    (* fabricate a lost flit *)
    violated_on "lost flit" "flit conservation"
      (Certify.Noc_cert.check { s with Noc_sim.flits_ejected = s.Noc_sim.flits_ejected - 1 })

(* --- typed exception surface (no Invalid_argument leaks) --- *)

let test_validate_level_mismatch_typed () =
  let layer = Zoo.find "3_56_64_64_1" in
  let m = Cosa.trivial_mapping arch layer in
  let short = { m with Mapping.levels = Array.sub m.Mapping.levels 0 2 } in
  Alcotest.check_raises "level mismatch is typed"
    (Robust.Failure.Error
       (Robust.Failure.Invalid_input "Mapping.validate: level count mismatch with architecture"))
    (fun () -> ignore (Mapping.validate arch short))

(* --- the certification stage inside Cosa.schedule --- *)

let has_cert_failure r =
  List.exists
    (function Robust.Failure.Certification_failed _ -> true | _ -> false)
    r.Cosa.fallback_chain

let test_schedule_off_skips () =
  let layer = Zoo.find "3_56_64_64_1" in
  let r = Cosa.schedule ~time_limit:1. ~certify:Cosa.Off arch layer in
  check_bool "skipped" true (r.Cosa.certification = Cosa.Cert_skipped)

let test_schedule_default_certifies () =
  let layer = Zoo.find "3_56_64_64_1" in
  let r = Cosa.schedule ~time_limit:1.5 arch layer in
  check_bool "default warn mode certifies" true (r.Cosa.certification = Cosa.Cert_ok);
  check_bool "mapping valid" true (Mapping.is_valid arch r.Cosa.mapping)

let test_schedule_strict_certified () =
  let layer = Zoo.find "1_56_64_64_1" in
  let r = Cosa.schedule ~time_limit:1.5 ~certify:Cosa.Strict arch layer in
  check_bool "strict result certified" true (r.Cosa.certification = Cosa.Cert_ok);
  check_bool "no cert failures in chain" false (has_cert_failure r)

(* a fault on the "certify.lp" site fails certification of every MIP rung;
   Strict must descend to a certifying non-MIP rung and still return a
   certified schedule, recording why in the fallback chain *)
let test_schedule_strict_falls_through () =
  let layer = Zoo.find "3_56_64_64_1" in
  let r =
    Robust.Fault.with_faults ~rate:1. ~only:[ "certify.lp" ] 42 (fun () ->
        Cosa.schedule ~time_limit:1.5 ~certify:Cosa.Strict arch layer)
  in
  check_bool "descended below the MIP rungs" true
    (match r.Cosa.source with
     | Cosa.Heuristic_sampler | Cosa.Trivial -> true
     | Cosa.Milp_joint | Cosa.Milp_two_stage -> false);
  check_bool "chain records the certification failure" true (has_cert_failure r);
  check_bool "returned schedule is certified" true (r.Cosa.certification = Cosa.Cert_ok);
  check_bool "mapping valid" true (Mapping.is_valid arch r.Cosa.mapping)

(* the same fault under Warn keeps the MIP answer, with the verdict
   recorded on the result instead of a ladder descent *)
let test_schedule_warn_keeps_candidate () =
  let layer = Zoo.find "3_56_64_64_1" in
  let r =
    Robust.Fault.with_faults ~rate:1. ~only:[ "certify.lp" ] 42 (fun () ->
        Cosa.schedule ~time_limit:1.5 ~certify:Cosa.Warn arch layer)
  in
  check_bool "stayed on a MIP rung" true
    (match r.Cosa.source with
     | Cosa.Milp_joint | Cosa.Milp_two_stage -> true
     | Cosa.Heuristic_sampler | Cosa.Trivial -> false);
  check_bool "verdict recorded" true
    (match r.Cosa.certification with Cosa.Cert_failed _ -> true | _ -> false);
  check_bool "no descent on warn" false (has_cert_failure r)

(* every-rung chaos: when every certifier call is faulted, Strict bottoms
   out on the trivial rung with the failure recorded, never raising *)
let test_schedule_strict_bottoms_out () =
  let layer = Zoo.find "3_56_64_64_1" in
  let r =
    Robust.Fault.with_faults ~rate:1. ~only:[ "certify.lp"; "certify.mapping" ] 7 (fun () ->
        Cosa.schedule ~time_limit:1.5 ~certify:Cosa.Strict arch layer)
  in
  check_bool "bottoms out on trivial" true (r.Cosa.source = Cosa.Trivial);
  check_bool "verdict recorded" true
    (match r.Cosa.certification with Cosa.Cert_failed _ -> true | _ -> false);
  check_bool "mapping still valid" true (Mapping.is_valid arch r.Cosa.mapping)

(* 5-seed soak: strict certification across fault seeds must always return
   a valid mapping, and a certified one whenever certification passed *)
let test_strict_soak () =
  let layer = Zoo.find "1_28_128_512_1" in
  List.iter
    (fun seed ->
      let r =
        Robust.Fault.with_faults ~rate:0.05 seed (fun () ->
            Cosa.schedule ~time_limit:1. ~certify:Cosa.Strict arch layer)
      in
      check_bool
        (Printf.sprintf "seed %d returns a valid mapping" seed)
        true
        (Mapping.is_valid arch r.Cosa.mapping);
      match r.Cosa.certification with
      | Cosa.Cert_ok | Cosa.Cert_failed _ -> ()
      | Cosa.Cert_skipped -> Alcotest.failf "seed %d: certification did not run" seed)
    [ 1; 2; 3; 4; 5 ]

let test_certification_to_string () =
  check_bool "ok" true (Cosa.certification_to_string Cosa.Cert_ok = "certified");
  check_int "mode names" 3
    (List.length
       (List.sort_uniq compare
          (List.map Cosa.certify_mode_to_string [ Cosa.Off; Cosa.Warn; Cosa.Strict ])))

let suite =
  ( "certify",
    [
      Alcotest.test_case "lp cert accepts solver answer" `Quick test_lp_cert_accepts_solver_answer;
      Alcotest.test_case "lp cert rejects corruption" `Quick test_lp_cert_rejects_corruption;
      Alcotest.test_case "mapping cert accepts valid" `Quick test_mapping_cert_accepts_valid;
      Alcotest.test_case "mapping cert rejects bad factorization" `Quick
        test_mapping_cert_rejects_bad_factorization;
      Alcotest.test_case "mapping cert rejects capacity overflow" `Quick
        test_mapping_cert_rejects_capacity_overflow;
      Alcotest.test_case "mapping cert rejects spatial overflow" `Quick
        test_mapping_cert_rejects_spatial_overflow;
      Alcotest.test_case "noc cert on real simulation" `Slow test_noc_cert_on_real_simulation;
      Alcotest.test_case "noc cert rejects imbalance" `Quick test_noc_cert_rejects_imbalance;
      Alcotest.test_case "validate level mismatch typed" `Quick test_validate_level_mismatch_typed;
      Alcotest.test_case "schedule certify:off skips" `Quick test_schedule_off_skips;
      Alcotest.test_case "schedule default certifies" `Quick test_schedule_default_certifies;
      Alcotest.test_case "schedule strict certified" `Quick test_schedule_strict_certified;
      Alcotest.test_case "strict falls through on cert failure" `Quick
        test_schedule_strict_falls_through;
      Alcotest.test_case "warn keeps candidate" `Quick test_schedule_warn_keeps_candidate;
      Alcotest.test_case "strict bottoms out" `Quick test_schedule_strict_bottoms_out;
      Alcotest.test_case "strict 5-seed soak" `Slow test_strict_soak;
      Alcotest.test_case "certification strings" `Quick test_certification_to_string;
    ] )
