(* Unit and property tests for the prim library. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Factorize --- *)

let test_is_prime () =
  List.iter
    (fun (n, expect) -> check_bool (Printf.sprintf "is_prime %d" n) expect (Prim.Factorize.is_prime n))
    [ (-3, false); (0, false); (1, false); (2, true); (3, true); (4, false); (17, true);
      (25, false); (97, true); (561, false); (7919, true) ]

let test_prime_factors () =
  Alcotest.(check (list int)) "12" [ 2; 2; 3 ] (Prim.Factorize.prime_factors 12);
  Alcotest.(check (list int)) "1" [] (Prim.Factorize.prime_factors 1);
  Alcotest.(check (list int)) "97" [ 97 ] (Prim.Factorize.prime_factors 97);
  Alcotest.(check (list int)) "1024" (List.init 10 (fun _ -> 2))
    (Prim.Factorize.prime_factors 1024);
  Alcotest.check_raises "0 rejected" (Invalid_argument "Factorize.prime_factors: n < 1")
    (fun () -> ignore (Prim.Factorize.prime_factors 0))

let test_grouped_factors () =
  Alcotest.(check (list (pair int int))) "360" [ (2, 3); (3, 2); (5, 1) ]
    (Prim.Factorize.grouped_factors 360)

let test_pad () =
  check_int "smooth stays" 56 (Prim.Factorize.pad_to_factorable 56);
  check_int "1000 smooth" 1000 (Prim.Factorize.pad_to_factorable 1000);
  (* 11 is not 7-smooth; next smooth number is 12 *)
  check_int "11 -> 12" 12 (Prim.Factorize.pad_to_factorable 11);
  check_int "13 -> 14" 14 (Prim.Factorize.pad_to_factorable 13);
  check_int "max_prime=2" 16 (Prim.Factorize.pad_to_factorable ~max_prime:2 9)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Prim.Factorize.divisors 12);
  Alcotest.(check (list int)) "49" [ 1; 7; 49 ] (Prim.Factorize.divisors 49);
  Alcotest.(check (list int)) "1" [ 1 ] (Prim.Factorize.divisors 1)

let prop_factor_product =
  QCheck.Test.make ~name:"prime_factors multiply back" ~count:500
    QCheck.(int_range 1 100_000)
    (fun n -> Prim.Factorize.product (Prim.Factorize.prime_factors n) = n)

let prop_factors_prime =
  QCheck.Test.make ~name:"prime_factors are prime" ~count:300
    QCheck.(int_range 2 50_000)
    (fun n -> List.for_all Prim.Factorize.is_prime (Prim.Factorize.prime_factors n))

let prop_pad_smooth =
  QCheck.Test.make ~name:"pad_to_factorable is 7-smooth and >= n" ~count:300
    QCheck.(int_range 1 20_000)
    (fun n ->
      let m = Prim.Factorize.pad_to_factorable n in
      m >= n && List.for_all (fun p -> p <= 7) (Prim.Factorize.prime_factors m))

let prop_divisors_divide =
  QCheck.Test.make ~name:"divisors divide n" ~count:200
    QCheck.(int_range 1 10_000)
    (fun n -> List.for_all (fun d -> n mod d = 0) (Prim.Factorize.divisors n))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Prim.Rng.create 42 and b = Prim.Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prim.Rng.int a 1_000_000) (Prim.Rng.int b 1_000_000)
  done

let test_rng_bounds () =
  let r = Prim.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Prim.Rng.int r 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Prim.Rng.int r 0))

let test_rng_shuffle_permutes () =
  let r = Prim.Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Prim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let r = Prim.Rng.create 1 in
  let s = Prim.Rng.split r in
  let x = Prim.Rng.int r 1000 and y = Prim.Rng.int s 1000 in
  (* streams should not be identical step-by-step *)
  let differs = ref (x <> y) in
  for _ = 1 to 20 do
    if Prim.Rng.int r 1000 <> Prim.Rng.int s 1000 then differs := true
  done;
  check_bool "split diverges" true !differs

let test_rng_float_bounds () =
  let r = Prim.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Prim.Rng.float r 2.5 in
    check_bool "float in range" true (v >= 0. && v < 2.5)
  done

(* --- Stats --- *)

let test_stats_basic () =
  check_float "mean" 2. (Prim.Stats.mean [ 1.; 2.; 3. ]);
  check_float "geomean" 2. (Prim.Stats.geomean [ 1.; 2.; 4. ]);
  check_float "median odd" 3. (Prim.Stats.median [ 5.; 1.; 3. ]);
  check_float "median even" 2.5 (Prim.Stats.median [ 1.; 2.; 3.; 4. ]);
  check_float "p0" 1. (Prim.Stats.percentile 0. [ 1.; 2.; 3. ]);
  check_float "p100" 3. (Prim.Stats.percentile 100. [ 1.; 2.; 3. ]);
  check_float "min" 1. (Prim.Stats.minimum [ 3.; 1.; 2. ]);
  check_float "max" 3. (Prim.Stats.maximum [ 3.; 1.; 2. ]);
  check_float "stddev" 0. (Prim.Stats.stddev [ 4.; 4.; 4. ])

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Prim.Stats.mean []));
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Prim.Stats.geomean [ 1.; 0. ]))

let test_histogram () =
  let h = Prim.Stats.histogram ~bins:4 [ 0.; 1.; 2.; 3.; 4. ] in
  check_int "bins" 4 (Array.length h.Prim.Stats.counts);
  check_int "total count" 5 (Array.fold_left ( + ) 0 h.Prim.Stats.counts);
  let rendered = Prim.Stats.render_histogram h in
  check_bool "renders rows" true (String.length rendered > 0)

let prop_geomean_bounded =
  QCheck.Test.make ~name:"geomean between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.001 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let g = Prim.Stats.geomean xs in
      g >= Prim.Stats.minimum xs -. 1e-9 && g <= Prim.Stats.maximum xs +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 2 20) (float_range 0. 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Prim.Stats.percentile lo xs <= Prim.Stats.percentile hi xs +. 1e-9)

let test_quantiles () =
  Alcotest.(check (list (float 1e-9)))
    "p50/p95 pair" [ 2.5; 3.85 ]
    (Prim.Stats.quantiles [ 50.; 95. ] [ 4.; 2.; 1.; 3. ]);
  Alcotest.(check (list (float 1e-9))) "empty request" [] (Prim.Stats.quantiles [] [ 1. ]);
  Alcotest.check_raises "empty data" (Invalid_argument "Stats.quantiles: empty list")
    (fun () -> ignore (Prim.Stats.quantiles [ 50. ] []));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.quantiles: p out of range") (fun () ->
      ignore (Prim.Stats.quantiles [ 101. ] [ 1. ]))

let prop_quantiles_agree_percentile =
  QCheck.Test.make ~name:"quantiles [p] xs = [percentile p xs]" ~count:300
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_range (-50.) 50.)) (float_range 0. 100.))
    (fun (xs, p) ->
      QCheck.assume (xs <> []);
      Prim.Stats.quantiles [ p ] xs = [ Prim.Stats.percentile p xs ])

(* --- Bigint / Ratio (exact arithmetic backing the certifier) --- *)

module B = Prim.Bigint
module R = Prim.Ratio

let test_bigint_basics () =
  check_int "of_int/to_int" 12345 (Option.get (B.to_int_opt (B.of_int 12345)));
  check_int "neg" (-7) (Option.get (B.to_int_opt (B.neg (B.of_int 7))));
  Alcotest.(check string) "to_string" "-12345" (B.to_string (B.of_int (-12345)));
  check_int "min_int roundtrips" min_int (Option.get (B.to_int_opt (B.of_int min_int)));
  (* 2^200 has no int representation but survives arithmetic *)
  let big = B.shift_left B.one 200 in
  check_bool "2^200 too big for int" true (B.to_int_opt big = None);
  let q, r = B.divmod big (B.of_int 1_000_003) in
  check_bool "divmod reconstructs" true
    B.(equal big (add (mul q (B.of_int 1_000_003)) r));
  check_int "gcd" 6 (Option.get (B.to_int_opt (B.gcd (B.of_int 54) (B.of_int (-24)))))

let test_ratio_basics () =
  let half = R.of_ints 1 2 and third = R.of_ints 1 3 in
  Alcotest.(check string) "1/2 + 1/3" "5/6" (R.to_string (R.add half third));
  Alcotest.(check string) "normalized" "-2/3" (R.to_string (R.of_ints 4 (-6)));
  check_bool "0.1 is not 1/10 exactly" false (R.equal (R.of_float 0.1) (R.of_ints 1 10));
  check_bool "0.5 is exactly 1/2" true (R.equal (R.of_float 0.5) half);
  check_bool "is_integer" true (R.is_integer (R.of_int 42));
  check_float "to_float" 0.75 (R.to_float (R.of_ints 3 4))

let ratio_gen =
  QCheck.Gen.(
    map (fun (n, d) -> R.of_ints n d) (pair (int_range (-1000) 1000) (int_range 1 1000)))

let ratio_arb = QCheck.make ~print:R.to_string ratio_gen

let prop_ratio_ring =
  QCheck.Test.make ~name:"ratio ring axioms (exact)" ~count:300
    (QCheck.triple ratio_arb ratio_arb ratio_arb)
    (fun (a, b, c) ->
      R.equal (R.add a b) (R.add b a)
      && R.equal (R.mul a b) (R.mul b a)
      && R.equal (R.add (R.add a b) c) (R.add a (R.add b c))
      && R.equal (R.mul (R.mul a b) c) (R.mul a (R.mul b c))
      && R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c))
      && R.equal (R.add a (R.of_int 0)) a
      && R.equal (R.mul a (R.of_int 1)) a
      && R.equal (R.sub a a) (R.of_int 0))

let prop_ratio_normalized =
  QCheck.Test.make ~name:"ratio stays normalized" ~count:300
    (QCheck.pair ratio_arb ratio_arb)
    (fun (a, b) ->
      List.for_all
        (fun r ->
          B.sign (R.den r) = 1
          && B.equal (B.gcd (R.num r) (R.den r)) B.one)
        [ R.add a b; R.sub a b; R.mul a b ])

let prop_ratio_compare_float =
  (* on small integer-pair rationals the float images are exact, so exact
     comparison must agree with the float reference *)
  QCheck.Test.make ~name:"ratio compare agrees with float reference" ~count:300
    QCheck.(pair (pair (int_range (-100) 100) (int_range 1 50))
              (pair (int_range (-100) 100) (int_range 1 50)))
    (fun ((n1, d1), (n2, d2)) ->
      let a = R.of_ints n1 d1 and b = R.of_ints n2 d2 in
      let fa = float_of_int n1 /. float_of_int d1
      and fb = float_of_int n2 /. float_of_int d2 in
      if Float.abs (fa -. fb) > 1e-9 then compare fa fb = R.compare a b else true)

let prop_ratio_of_float_exact =
  (* of_float is the exact dyadic decomposition: converting back must be
     the identity, and exact sums of dyadics replay float sums *)
  QCheck.Test.make ~name:"of_float exact roundtrip" ~count:300
    QCheck.(float_range (-1e6) 1e6)
    (fun f -> Float.equal (R.to_float (R.of_float f)) f)

(* --- Texttab --- *)

let test_texttab () =
  let t = Prim.Texttab.create [ "a"; "bb" ] in
  Prim.Texttab.add_row t [ "x"; "y"; "z" ];
  Prim.Texttab.add_row t [ "long-cell" ];
  let s = Prim.Texttab.render t in
  check_bool "has header" true (String.length s > 0);
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "x present" true (contains "x");
  check_bool "long-cell present" true (contains "long-cell");
  Alcotest.(check string) "cell_fx" "2.50x" (Prim.Texttab.cell_fx 2.5);
  Alcotest.(check string) "cell_f int-like" "42" (Prim.Texttab.cell_f 42.)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "prim",
    [
      Alcotest.test_case "is_prime" `Quick test_is_prime;
      Alcotest.test_case "prime_factors" `Quick test_prime_factors;
      Alcotest.test_case "grouped_factors" `Quick test_grouped_factors;
      Alcotest.test_case "pad_to_factorable" `Quick test_pad;
      Alcotest.test_case "divisors" `Quick test_divisors;
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng float" `Quick test_rng_float_bounds;
      Alcotest.test_case "stats basics" `Quick test_stats_basic;
      Alcotest.test_case "stats errors" `Quick test_stats_errors;
      Alcotest.test_case "quantiles" `Quick test_quantiles;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "bigint basics" `Quick test_bigint_basics;
      Alcotest.test_case "ratio basics" `Quick test_ratio_basics;
      Alcotest.test_case "texttab" `Quick test_texttab;
      qc prop_factor_product;
      qc prop_factors_prime;
      qc prop_pad_smooth;
      qc prop_divisors_divide;
      qc prop_geomean_bounded;
      qc prop_percentile_monotone;
      qc prop_quantiles_agree_percentile;
      qc prop_ratio_ring;
      qc prop_ratio_normalized;
      qc prop_ratio_compare_float;
      qc prop_ratio_of_float_exact;
    ] )
