(* Property tests for warm-started dual simplex: for random bounded LPs and
   random single-bound tightenings (the branch-and-bound child situation),
   dual reoptimization from the parent basis and a cold primal solve must
   agree on status and objective to Tolerances precision — and the
   exact-arithmetic certifier must accept both solutions. *)

open Milp

let opt_tol = Simplex.Tolerances.default.Simplex.Tolerances.opt_tol

(* A random feasible bounded LP as an Lp model: equality-constrained with
   rhs = A x0 for an interior point x0, so feasibility holds by
   construction. Returns the model plus a random single-bound tightening
   (variable index, new-bound kind and value). *)
let random_warm_case_gen =
  let open QCheck.Gen in
  int_range 2 6 >>= fun nvars ->
  int_range 1 4 >>= fun nrows ->
  list_size (return (nvars * nrows)) (int_range (-3) 3) >>= fun coeffs ->
  list_size (return nvars) (int_range (-4) 4) >>= fun cost ->
  list_size (return nvars) (int_range 1 4) >>= fun x0 ->
  int_range 0 (nvars - 1) >>= fun tighten_var ->
  bool >>= fun tighten_upper ->
  int_range 0 3 >>= fun new_bound ->
  return (nvars, nrows, coeffs, cost, x0, tighten_var, tighten_upper, new_bound)

let build_model (nvars, nrows, coeffs, cost, x0, _, _, _) =
  let m = Lp.create ~name:"warm-prop" () in
  let vars =
    List.init nvars (fun i -> Lp.add_var m ~ub:6. (Printf.sprintf "v%d" i))
  in
  let coeffs = Array.of_list coeffs in
  let x0 = Array.of_list x0 in
  for r = 0 to nrows - 1 do
    let terms =
      List.filteri (fun j _ -> coeffs.((r * nvars) + j) <> 0) vars
      |> List.map (fun v ->
             let j = Lp.var_index v in
             (float_of_int coeffs.((r * nvars) + j), v))
    in
    if terms <> [] then begin
      let rhs =
        List.fold_left
          (fun acc (c, v) -> acc +. (c *. float_of_int x0.(Lp.var_index v)))
          0. terms
      in
      Lp.add_constr m terms Lp.Eq rhs
    end
  done;
  Lp.set_objective m `Minimize
    (List.map2 (fun c v -> (float_of_int c, v)) cost vars);
  m

let certified model x =
  match Certify.Lp_cert.check model x with
  | Certify.Certificate.Certified -> true
  | Certify.Certificate.Violated _ -> false

let prop_warm_matches_cold =
  QCheck.Test.make ~name:"warm dual reopt agrees with cold primal" ~count:200
    (QCheck.make random_warm_case_gen)
    (fun ((nvars, _, _, _, _, tighten_var, tighten_upper, new_bound) as case) ->
      let model = build_model case in
      let parent = Bb.relax model in
      match Simplex.solve_r parent with
      | Error _ -> QCheck.assume_fail ()
      | Ok { Simplex.status = Simplex.Optimal; basis = Some basis; x = px; _ } ->
        (* parent solution certifies against the model (structural prefix) *)
        if not (certified model (Array.sub px 0 nvars)) then false
        else begin
          let lb = Array.copy parent.Simplex.lb in
          let ub = Array.copy parent.Simplex.ub in
          let b = float_of_int new_bound in
          if tighten_upper then ub.(tighten_var) <- min ub.(tighten_var) b
          else lb.(tighten_var) <- max lb.(tighten_var) b;
          if lb.(tighten_var) > ub.(tighten_var) then QCheck.assume_fail ()
          else begin
            let child = { parent with Simplex.lb; ub } in
            match (Simplex.solve_r ~warm:basis child, Simplex.solve_r child) with
            | Ok w, Ok c ->
              if w.Simplex.status <> c.Simplex.status then
                QCheck.Test.fail_reportf "status mismatch: warm vs cold"
              else if w.Simplex.status = Simplex.Optimal then
                (* objectives agree to solver precision... *)
                Float.abs (w.Simplex.obj -. c.Simplex.obj)
                <= opt_tol *. (1. +. Float.abs c.Simplex.obj)
                (* ...both are feasible for the child LP... *)
                && Simplex.feasible child w.Simplex.x
                && Simplex.feasible child c.Simplex.x
                (* ...and both certify against the original model (the
                   child only tightened bounds, so its solutions satisfy
                   the parent's rows and looser bounds) *)
                && certified model (Array.sub w.Simplex.x 0 nvars)
                && certified model (Array.sub c.Simplex.x 0 nvars)
                (* vertex canonicalization: the solves are bit-identical *)
                && w.Simplex.x = c.Simplex.x
              else true
            | Error _, _ | _, Error _ -> QCheck.assume_fail ()
          end
        end
      | Ok _ -> QCheck.assume_fail ())

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ("warm", [ qc prop_warm_matches_cold ])
