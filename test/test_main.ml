(* Test entry point: every module suite, unit and property tests. *)

let () =
  Alcotest.run "cosa"
    [
      Test_prim.suite;
      Test_milp.suite;
      Test_simplex.suite;
      Test_lu.suite;
      Test_warm.suite;
      Test_presolve.suite;
      Test_workload.suite;
      Test_arch.suite;
      Test_mapping.suite;
      Test_mapping_io.suite;
      Test_mapspace_network.suite;
      Test_model.suite;
      Test_model_counts.suite;
      Test_noc.suite;
      Test_robust.suite;
      Test_mesh_wormhole.suite;
      Test_cosa.suite;
      Test_certify.suite;
      Test_decode.suite;
      Test_objective.suite;
      Test_mappers.suite;
      Test_search_mappers.suite;
      Test_gpu.suite;
      Test_exp.suite;
      Test_exp_common.suite;
      Test_serve.suite;
      Test_daemon.suite;
      Test_cluster.suite;
      Test_telemetry.suite;
      Test_fuse.suite;
      Test_integration.suite;
      Test_crossval.suite;
    ]
