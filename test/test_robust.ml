(* Robustness layer: typed failures, deadline propagation, deterministic
   fault injection, and the Cosa degradation ladder — including the
   ResNet-50 fault-injection soak. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let failure = Alcotest.testable Robust.Failure.pp Robust.Failure.equal

let arch = Spec.baseline
let tiny = Layer.create ~name:"rob_tiny" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 ()

(* --- Deadline --- *)

let test_deadline_none () =
  check_bool "never expires" false (Robust.Deadline.expired Robust.Deadline.none);
  check_bool "infinite remaining" true
    (Robust.Deadline.remaining Robust.Deadline.none = infinity);
  check_bool "not finite" false (Robust.Deadline.is_finite Robust.Deadline.none)

let test_deadline_zero () =
  let d = Robust.Deadline.after 0. in
  check_bool "expired immediately" true (Robust.Deadline.expired d);
  Alcotest.(check (float 0.)) "no time remaining" 0. (Robust.Deadline.remaining d);
  (match Robust.Deadline.check d with
   | Error f -> Alcotest.check failure "typed" Robust.Failure.Deadline_exceeded f
   | Ok () -> Alcotest.fail "expected expiry");
  (* negative budgets clamp to an immediate expiry, not the past *)
  check_bool "negative expires" true (Robust.Deadline.expired (Robust.Deadline.after (-5.)))

let test_deadline_future () =
  let d = Robust.Deadline.after 60. in
  check_bool "not yet expired" false (Robust.Deadline.expired d);
  let r = Robust.Deadline.remaining d in
  check_bool "remaining in (0, 60]" true (r > 0. && r <= 60.);
  check_bool "tighten picks earlier" true
    (Robust.Deadline.expired
       (Robust.Deadline.tighten d (Robust.Deadline.after 0.)));
  check_bool "tighten vs none keeps finite" true
    (Robust.Deadline.is_finite (Robust.Deadline.tighten Robust.Deadline.none d))

(* --- Fault injection --- *)

let test_fault_disarmed () =
  Robust.Fault.disarm ();
  check_bool "disarmed" false (Robust.Fault.armed ());
  for _ = 1 to 100 do
    check_bool "never fires" false (Robust.Fault.fire "anywhere")
  done

let test_fault_rates () =
  Robust.Fault.with_faults ~rate:0. 7 (fun () ->
      for _ = 1 to 100 do
        check_bool "rate 0 never fires" false (Robust.Fault.fire "site")
      done);
  Robust.Fault.with_faults ~rate:1. 7 (fun () ->
      for _ = 1 to 100 do
        check_bool "rate 1 always fires" true (Robust.Fault.fire "site")
      done;
      check_int "all logged" 100 (Robust.Fault.fired_count ()))

let test_fault_deterministic () =
  let run () =
    Robust.Fault.with_faults ~rate:0.3 42 (fun () ->
        for _ = 1 to 200 do
          ignore (Robust.Fault.fire "a");
          ignore (Robust.Fault.fire "b")
        done;
        Robust.Fault.fired ())
  in
  let first = run () in
  check_bool "some faults fired" true (List.length first > 0);
  check_bool "replay identical" true (first = run ());
  (* a different seed gives a different schedule *)
  let other =
    Robust.Fault.with_faults ~rate:0.3 43 (fun () ->
        for _ = 1 to 200 do
          ignore (Robust.Fault.fire "a");
          ignore (Robust.Fault.fire "b")
        done;
        Robust.Fault.fired ())
  in
  check_bool "seed changes schedule" true (first <> other)

let test_fault_only_filter () =
  Robust.Fault.with_faults ~rate:1. ~only:[ "a" ] 9 (fun () ->
      check_bool "selected site fires" true (Robust.Fault.fire "a");
      check_bool "other site quiet" false (Robust.Fault.fire "b"))

let test_fault_disarms_on_exception () =
  (try
     Robust.Fault.with_faults ~rate:1. 3 (fun () -> failwith "boom")
   with Failure _ -> ());
  check_bool "disarmed after raise" false (Robust.Fault.armed ())

(* --- Simplex typed entry point --- *)

(* min x  s.t.  x = 1,  0 <= x <= 10 *)
let tiny_lp () =
  {
    Milp.Simplex.nrows = 1;
    ncols = 1;
    cols = [| ([| 0 |], [| 1. |]) |];
    cost = [| 1. |];
    lb = [| 0. |];
    ub = [| 10. |];
    rhs = [| 1. |];
  }

let test_simplex_deadline () =
  match Milp.Simplex.solve_r ~deadline:(Robust.Deadline.after 0.) (tiny_lp ()) with
  | Error f -> Alcotest.check failure "deadline" Robust.Failure.Deadline_exceeded f
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded"

let test_simplex_injected () =
  Robust.Fault.with_faults ~rate:1. ~only:[ "simplex.pivot" ] 1 (fun () ->
      match Milp.Simplex.solve_r (tiny_lp ()) with
      | Error f ->
        Alcotest.check failure "injected" (Robust.Failure.Injected "simplex.pivot") f
      | Ok _ -> Alcotest.fail "expected injected fault");
  (* the legacy wrapper surfaces the same failure as a typed exception *)
  Robust.Fault.with_faults ~rate:1. ~only:[ "simplex.pivot" ] 1 (fun () ->
      Alcotest.check_raises "legacy raises"
        (Robust.Failure.Error (Robust.Failure.Injected "simplex.pivot"))
        (fun () -> ignore (Milp.Simplex.solve (tiny_lp ()))))

let test_simplex_clean_solve_matches () =
  match Milp.Simplex.solve_r (tiny_lp ()) with
  | Error f -> Alcotest.fail (Robust.Failure.to_string f)
  | Ok r ->
    check_bool "optimal" true (r.Milp.Simplex.status = Milp.Simplex.Optimal);
    Alcotest.(check (float 1e-9)) "x = 1" 1. r.Milp.Simplex.x.(0)

(* --- Branch and bound --- *)

let test_bb_infeasible_clean () =
  (* x integer in [0, 1] with x = 3: proved infeasible, no typed failures *)
  let m = Milp.Lp.create () in
  let x = Milp.Lp.add_var m ~integer:true ~lb:0. ~ub:1. "x" in
  Milp.Lp.add_constr m [ (1., x) ] Milp.Lp.Eq 3.;
  let r = Milp.Bb.solve m in
  check_bool "infeasible" true (r.Milp.Bb.status = Milp.Bb.Infeasible);
  check_int "no failures swallowed" 0 (List.length r.Milp.Bb.failures)

let feasible_model () =
  (* max x + y, x,y integer in [0, 3], x + y <= 4 *)
  let m = Milp.Lp.create () in
  let x = Milp.Lp.add_var m ~integer:true ~lb:0. ~ub:3. "x" in
  let y = Milp.Lp.add_var m ~integer:true ~lb:0. ~ub:3. "y" in
  Milp.Lp.add_constr m [ (1., x); (1., y) ] Milp.Lp.Le 4.;
  Milp.Lp.set_objective m `Maximize [ (1., x); (1., y) ];
  m

let test_bb_deadline_reported () =
  let r = Milp.Bb.solve ~deadline:(Robust.Deadline.after 0.) (feasible_model ()) in
  check_bool "no solution" true (r.Milp.Bb.status = Milp.Bb.No_solution);
  check_bool "deadline recorded" true
    (List.exists
       (Robust.Failure.equal Robust.Failure.Deadline_exceeded)
       r.Milp.Bb.failures)

let test_bb_faulted_nodes_recorded () =
  Robust.Fault.with_faults ~rate:1. ~only:[ "bb.node" ] 5 (fun () ->
      let r = Milp.Bb.solve (feasible_model ()) in
      check_bool "no solution when every node faults" true
        (r.Milp.Bb.status = Milp.Bb.No_solution);
      check_bool "injected failures recorded" true
        (List.exists Robust.Failure.is_injected r.Milp.Bb.failures));
  (* a warm start survives a total node blackout: anytime behaviour *)
  Robust.Fault.with_faults ~rate:1. ~only:[ "bb.node" ] 5 (fun () ->
      let r = Milp.Bb.solve ~warm_start:[| 1.; 2. |] (feasible_model ()) in
      check_bool "warm incumbent kept" true (r.Milp.Bb.status = Milp.Bb.Feasible);
      Alcotest.(check (float 1e-9)) "warm objective" 3. r.Milp.Bb.obj)

(* --- Decode --- *)

let test_decode_r_empty () =
  let f = Cosa_formulation.build arch tiny in
  let empty =
    { Milp.Bb.status = Milp.Bb.No_solution; obj = nan; values = [||]; bound = nan;
      nodes = 0; simplex_iterations = 0; elapsed = 0.; failures = [] }
  in
  (match Cosa_decode.decode_r f empty with
   | Error f -> Alcotest.check failure "typed" Robust.Failure.Decode_failed f
   | Ok _ -> Alcotest.fail "expected Decode_failed")

(* --- Degradation ladder --- *)

let test_ladder_happy_path () =
  let r = Cosa.schedule ~time_limit:2. arch tiny in
  check_bool "valid" true (Mapping.is_valid arch r.Cosa.mapping);
  check_int "no fallbacks on the happy path" 0 (List.length r.Cosa.fallback_chain);
  check_bool "MILP produced it" true
    (match r.Cosa.source with
     | Cosa.Milp_joint | Cosa.Milp_two_stage -> true
     | Cosa.Heuristic_sampler | Cosa.Trivial -> false)

let test_ladder_zero_budget () =
  let r = Cosa.schedule ~time_limit:0. arch tiny in
  check_bool "valid even at 0s budget" true (Mapping.is_valid arch r.Cosa.mapping);
  check_bool "trivial rung" true (r.Cosa.source = Cosa.Trivial);
  check_bool "no solution" true (r.Cosa.solver_status = Milp.Bb.No_solution);
  Alcotest.(check (list failure)) "chain is the deadline"
    [ Robust.Failure.Deadline_exceeded ] r.Cosa.fallback_chain

let test_ladder_decode_fault () =
  Robust.Fault.with_faults ~rate:1. ~only:[ "decode.decode" ] 11 (fun () ->
      let r = Cosa.schedule ~time_limit:2. arch tiny in
      check_bool "valid" true (Mapping.is_valid arch r.Cosa.mapping);
      check_bool "heuristic rung" true (r.Cosa.source = Cosa.Heuristic_sampler);
      check_bool "decode fault in chain" true
        (List.exists
           (Robust.Failure.equal (Robust.Failure.Injected "decode.decode"))
           r.Cosa.fallback_chain))

let test_ladder_walks_to_trivial () =
  (* kill the MIP start, every LP, and the sampler: only the trivial rung
     can answer, and the chain explains each dead rung *)
  Robust.Fault.with_faults ~rate:1.
    ~only:[ "cosa.warm"; "simplex.pivot"; "sampler.valid" ] 13 (fun () ->
      let r = Cosa.schedule ~time_limit:2. arch tiny in
      check_bool "valid" true (Mapping.is_valid arch r.Cosa.mapping);
      check_bool "trivial rung" true (r.Cosa.source = Cosa.Trivial);
      check_bool "injected failure recorded" true
        (List.exists Robust.Failure.is_injected r.Cosa.fallback_chain);
      check_bool "sampler exhaustion recorded" true
        (List.exists
           (Robust.Failure.equal Robust.Failure.Infeasible)
           r.Cosa.fallback_chain))

let test_schedule_never_exceeds_budget () =
  let layer = Zoo.find "3_14_256_256_1" in
  let r = Cosa.schedule ~time_limit:0.5 arch layer in
  check_bool "valid" true (Mapping.is_valid arch r.Cosa.mapping);
  check_bool "within 20% slack of the budget" true (r.Cosa.solve_time <= 0.6)

(* --- Fault-injection soak: all ResNet-50 layers, several seeds --- *)

let test_resnet_fault_soak () =
  let layers = List.assoc "ResNet-50" Zoo.suites in
  let budget = 2.0 in
  let fellback = ref 0 in
  List.iter
    (fun seed ->
      Robust.Fault.with_faults ~rate:0.02 seed (fun () ->
          List.iter
            (fun (layer : Layer.t) ->
              let r = Cosa.schedule ~node_limit:2_000 ~time_limit:budget arch layer in
              let tag = Printf.sprintf "seed %d %s" seed layer.Layer.name in
              check_bool (tag ^ " valid") true (Mapping.is_valid arch r.Cosa.mapping);
              check_bool
                (Printf.sprintf "%s within deadline (%.2fs)" tag r.Cosa.solve_time)
                true
                (r.Cosa.solve_time <= budget *. 1.2);
              if r.Cosa.fallback_chain <> [] then incr fellback)
            layers))
    [ 1; 2; 3; 4; 5 ];
  (* at a 2% per-visit rate the pivot loop is hit constantly, so a healthy
     harness must actually have exercised the ladder *)
  check_bool "faults actually degraded some solves" true (!fellback > 0)

(* --- Domain-parallel armed soak: the fault plan is process-global and
   the service pool solves on spawned domains, so every domain mutates
   the plan's streams/visits/log concurrently. This is the regression
   test for the plan's internal mutex: under tsan-like interleaving a
   race corrupts the visit hashtables or drops log entries. --- *)

let test_fault_armed_domain_parallel () =
  let layers =
    [ Layer.create ~name:"dp_a" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 ();
      Layer.create ~name:"dp_b" ~r:3 ~s:3 ~p:4 ~q:4 ~c:4 ~k:8 ~n:1 ();
      Layer.create ~name:"dp_c" ~r:1 ~s:1 ~p:8 ~q:8 ~c:4 ~k:4 ~n:1 ();
      Layer.create ~name:"dp_d" ~r:3 ~s:3 ~p:2 ~q:2 ~c:8 ~k:4 ~n:1 () ]
  in
  let net =
    { Network.nname = "dp";
      entries = List.map (fun l -> { Network.layer = l; repeats = 1 }) layers }
  in
  let total_fired = ref 0 in
  List.iter
    (fun seed ->
      Robust.Fault.with_faults ~rate:0.05 seed (fun () ->
          let cfg =
            Serve.Service.config ~strategy:Cosa.Auto ~node_limit:2_000
              ~time_limit:2. ~jobs:4 arch
          in
          let report = Serve.Service.schedule_network cfg net in
          check_int
            (Printf.sprintf "seed %d: all layers served" seed)
            0 report.Serve.Service.failed;
          List.iter
            (fun (lr : Serve.Service.layer_report) ->
              match lr.Serve.Service.served with
              | Ok s ->
                check_bool "mapping valid under armed faults" true
                  (Mapping.is_valid arch s.Serve.Service.mapping)
              | Error f -> Alcotest.fail (Robust.Failure.to_string f))
            report.Serve.Service.layers;
          (* the log must be coherent: every entry names a known site with
             a sane visit index (a racy harness tears these) *)
          List.iter
            (fun (site, visit) ->
              check_bool "fired site is non-empty" true (String.length site > 0);
              check_bool "visit index sane" true (visit >= 0))
            (Robust.Fault.fired ());
          total_fired := !total_fired + Robust.Fault.fired_count ()))
    [ 7; 8; 9 ];
  check_bool "armed domain-parallel soak actually fired faults" true
    (!total_fired > 0)

let suite =
  ( "robust",
    [
      Alcotest.test_case "deadline none" `Quick test_deadline_none;
      Alcotest.test_case "deadline zero" `Quick test_deadline_zero;
      Alcotest.test_case "deadline future" `Quick test_deadline_future;
      Alcotest.test_case "fault disarmed" `Quick test_fault_disarmed;
      Alcotest.test_case "fault rates" `Quick test_fault_rates;
      Alcotest.test_case "fault deterministic" `Quick test_fault_deterministic;
      Alcotest.test_case "fault only filter" `Quick test_fault_only_filter;
      Alcotest.test_case "fault disarms on raise" `Quick test_fault_disarms_on_exception;
      Alcotest.test_case "simplex deadline" `Quick test_simplex_deadline;
      Alcotest.test_case "simplex injected" `Quick test_simplex_injected;
      Alcotest.test_case "simplex clean" `Quick test_simplex_clean_solve_matches;
      Alcotest.test_case "bb infeasible clean" `Quick test_bb_infeasible_clean;
      Alcotest.test_case "bb deadline" `Quick test_bb_deadline_reported;
      Alcotest.test_case "bb faulted nodes" `Quick test_bb_faulted_nodes_recorded;
      Alcotest.test_case "decode_r empty" `Quick test_decode_r_empty;
      Alcotest.test_case "ladder happy path" `Quick test_ladder_happy_path;
      Alcotest.test_case "ladder zero budget" `Quick test_ladder_zero_budget;
      Alcotest.test_case "ladder decode fault" `Quick test_ladder_decode_fault;
      Alcotest.test_case "ladder to trivial" `Quick test_ladder_walks_to_trivial;
      Alcotest.test_case "budget respected" `Quick test_schedule_never_exceeds_budget;
      Alcotest.test_case "resnet fault soak" `Slow test_resnet_fault_soak;
      Alcotest.test_case "fault armed jobs=4" `Quick test_fault_armed_domain_parallel;
    ] )
