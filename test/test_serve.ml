(* Tests for the batch scheduling service: fingerprints, the certified
   LRU schedule cache (memory + trust-but-verify disk tier), the domain
   pool, and the end-to-end service counters. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let arch = Spec.baseline
let weights = Cosa.calibrate arch

(* Small layers so every live solve in this suite is fast; node-bound
   two-stage solves are also deterministic (see the bench). *)
let layer_a = Layer.create ~name:"srv_a" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 ()
let layer_b = Layer.create ~name:"srv_b" ~r:3 ~s:3 ~p:4 ~q:4 ~c:4 ~k:8 ~n:1 ()
let layer_c = Layer.create ~name:"srv_c" ~r:1 ~s:1 ~p:8 ~q:8 ~c:4 ~k:4 ~n:1 ()

let fp ?(weights = weights) ?(strategy = Cosa.Two_stage) ?(certify = Cosa.Warn) layer =
  Serve.Fingerprint.make ~weights ~strategy ~certify arch layer

let entry_of layer =
  { Serve.Schedule_cache.meta = Mapping_io.default_meta;
    mapping = Cosa.trivial_mapping arch layer }

let fast_config ?jobs () =
  Serve.Service.config ~strategy:Cosa.Two_stage ~node_limit:2_000 ~time_limit:60.
    ?jobs arch

let net_of ~name entries =
  { Network.nname = name;
    entries = List.map (fun (l, repeats) -> { Network.layer = l; repeats }) entries }

(* ---- fingerprints ----------------------------------------------------- *)

let test_fingerprint () =
  (* name-blind: same shape under a different name is the same request *)
  let renamed = Layer.create ~name:"other" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 () in
  check_bool "name-blind equal" true (Serve.Fingerprint.equal (fp layer_a) (fp renamed));
  check_bool "hash agrees" true
    (Serve.Fingerprint.hash (fp layer_a) = Serve.Fingerprint.hash (fp renamed));
  (* every input the answer depends on separates requests *)
  check_bool "layers differ" false (Serve.Fingerprint.equal (fp layer_a) (fp layer_b));
  check_bool "weights differ" false
    (Serve.Fingerprint.equal (fp layer_a)
       (fp ~weights:{ weights with Cosa.w_util = weights.Cosa.w_util +. 1. } layer_a));
  check_bool "strategy differs" false
    (Serve.Fingerprint.equal (fp layer_a) (fp ~strategy:Cosa.Joint layer_a));
  check_bool "certify differs" false
    (Serve.Fingerprint.equal (fp layer_a) (fp ~certify:Cosa.Strict layer_a));
  check_int "hash is 16 hex chars" 16 (String.length (Serve.Fingerprint.hash (fp layer_a)))

(* ---- LRU memory tier -------------------------------------------------- *)

let test_lru_eviction () =
  let c = Serve.Schedule_cache.create ~capacity:2 () in
  let fa = fp layer_a and fb = fp layer_b and fc = fp layer_c in
  Serve.Schedule_cache.store c fa (entry_of layer_a);
  Serve.Schedule_cache.store c fb (entry_of layer_b);
  Alcotest.(check (list string))
    "most recent first"
    [ Serve.Fingerprint.hash fb; Serve.Fingerprint.hash fa ]
    (Serve.Schedule_cache.lru_keys c);
  (* a hit promotes a to the front, so b becomes the eviction victim *)
  check_bool "memory hit" true
    (match Serve.Schedule_cache.find c ~arch ~layer:layer_a fa with
     | Some (_, Serve.Schedule_cache.Memory) -> true
     | _ -> false);
  Serve.Schedule_cache.store c fc (entry_of layer_c);
  Alcotest.(check (list string))
    "b evicted at capacity"
    [ Serve.Fingerprint.hash fc; Serve.Fingerprint.hash fa ]
    (Serve.Schedule_cache.lru_keys c);
  check_int "length at capacity" 2 (Serve.Schedule_cache.length c);
  check_bool "evicted entry misses" true
    (Serve.Schedule_cache.find c ~arch ~layer:layer_b fb = None);
  let s = Serve.Schedule_cache.stats c in
  check_int "one eviction" 1 s.Serve.Schedule_cache.evictions;
  check_int "one hit" 1 s.Serve.Schedule_cache.hits;
  check_int "one miss" 1 s.Serve.Schedule_cache.misses;
  check_bool "capacity < 1 rejected" true
    (match Serve.Schedule_cache.create ~capacity:0 () with
     | exception Robust.Failure.Error (Robust.Failure.Invalid_input _) -> true
     | _ -> false)

(* ---- disk tier: trust-but-verify -------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "cosa_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* A mapping that parses fine but cannot certify: a stray extra factor of
   2 on C breaks the exact factorization product. *)
let uncertifiable_mapping layer =
  let m = Cosa.trivial_mapping arch layer in
  let levels = Array.copy m.Mapping.levels in
  let d = Array.length levels - 1 in
  levels.(d) <-
    { levels.(d) with
      Mapping.temporal =
        { Mapping.dim = Dims.C; bound = 2 } :: levels.(d).Mapping.temporal };
  Mapping.make layer levels

let overwrite_record dir f text =
  let path = Filename.concat dir (Serve.Fingerprint.hash f ^ ".cosa") in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let framed f meta mapping =
  "key " ^ Serve.Fingerprint.canon f ^ "\n" ^ Mapping_io.record_to_string meta mapping

let test_disk_verify () =
  with_temp_dir (fun dir ->
      let f = fp layer_a in
      let good =
        let r = Cosa.schedule ~strategy:Cosa.Two_stage ~node_limit:2_000 arch layer_a in
        { Serve.Schedule_cache.meta = Mapping_io.default_meta; mapping = r.Cosa.mapping }
      in
      let fresh () = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      let c1 = fresh () in
      Serve.Schedule_cache.store c1 f good;
      (* a new process (fresh memory) verifies the record and promotes it *)
      let c2 = fresh () in
      (match Serve.Schedule_cache.find c2 ~arch ~layer:layer_a f with
       | Some (e, Serve.Schedule_cache.Disk) ->
         Alcotest.(check string)
           "disk mapping intact"
           (Mapping.fingerprint good.Serve.Schedule_cache.mapping)
           (Mapping.fingerprint e.Serve.Schedule_cache.mapping)
       | _ -> Alcotest.fail "expected a verified disk hit");
      check_bool "promoted to memory" true
        (match Serve.Schedule_cache.find c2 ~arch ~layer:layer_a f with
         | Some (_, Serve.Schedule_cache.Memory) -> true
         | _ -> false);
      (* corrupted: right key, uncertifiable mapping -> reject, no crash *)
      overwrite_record dir f
        (framed f Mapping_io.default_meta (uncertifiable_mapping layer_a));
      let c3 = fresh () in
      check_bool "uncertifiable record misses" true
        (Serve.Schedule_cache.find c3 ~arch ~layer:layer_a f = None);
      check_int "counted as disk reject" 1
        (Serve.Schedule_cache.stats c3).Serve.Schedule_cache.disk_rejects;
      (* stale: the file holds a different layer's schedule under our name *)
      overwrite_record dir f
        (framed f Mapping_io.default_meta (Cosa.trivial_mapping arch layer_b));
      check_bool "stale shape misses" true
        (Serve.Schedule_cache.find (fresh ()) ~arch ~layer:layer_a f = None);
      (* mismatched fingerprint frame (hash collision / moved file) *)
      overwrite_record dir f
        ("key somebody-else\n"
         ^ Mapping_io.record_to_string Mapping_io.default_meta
             good.Serve.Schedule_cache.mapping);
      check_bool "foreign key misses" true
        (Serve.Schedule_cache.find (fresh ()) ~arch ~layer:layer_a f = None);
      (* outright garbage *)
      overwrite_record dir f "key ";
      check_bool "garbage misses" true
        (Serve.Schedule_cache.find (fresh ()) ~arch ~layer:layer_a f = None))

(* A corrupted disk entry must fall through to a live solve — and the
   service then repairs the directory with the fresh result. *)
let test_disk_reject_falls_through () =
  with_temp_dir (fun dir ->
      let cfg = fast_config () in
      let f =
        Serve.Fingerprint.make ~weights:cfg.Serve.Service.weights
          ~strategy:cfg.Serve.Service.strategy ~certify:cfg.Serve.Service.certify arch
          layer_a
      in
      overwrite_record dir f
        (framed f Mapping_io.default_meta (uncertifiable_mapping layer_a));
      let cache = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      let net = net_of ~name:"one" [ (layer_a, 1) ] in
      let report = Serve.Service.schedule_network ~cache cfg net in
      check_int "no failures" 0 report.Serve.Service.failed;
      check_int "not served from cache" 0 report.Serve.Service.served_from_cache;
      (match report.Serve.Service.layers with
       | [ lr ] ->
         check_bool "served by a live solve" true
           (match lr.Serve.Service.served with
            | Ok { Serve.Service.origin = Serve.Service.Solved _; _ } -> true
            | _ -> false)
       | _ -> Alcotest.fail "expected one layer report");
      (* the bad record was overwritten by the store-back: next process hits *)
      let c2 = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      check_bool "directory repaired" true
        (match Serve.Schedule_cache.find c2 ~arch ~layer:layer_a f with
         | Some (_, Serve.Schedule_cache.Disk) -> true
         | _ -> false))

(* ---- domain pool ------------------------------------------------------ *)

let test_pool_ordering_and_isolation () =
  let items = List.init 20 Fun.id in
  let sq = List.map (fun i -> Ok (i * i)) items in
  Alcotest.(check bool) "jobs=1 in order" true (Serve.Pool.run ~jobs:1 (fun i -> i * i) items = sq);
  Alcotest.(check bool) "jobs=4 in order" true (Serve.Pool.run ~jobs:4 (fun i -> i * i) items = sq);
  (* one failing task yields a typed Error in its slot, siblings unharmed *)
  let f i =
    if i = 7 then raise (Robust.Failure.Error Robust.Failure.Deadline_exceeded)
    else if i = 11 then failwith "plain exn"
    else i
  in
  let results = Serve.Pool.run ~jobs:4 f items in
  check_int "all slots present" 20 (List.length results);
  List.iteri
    (fun i r ->
      match (i, r) with
      | 7, Error Robust.Failure.Deadline_exceeded -> ()
      | 7, _ -> Alcotest.fail "slot 7 should carry its typed failure"
      | 11, Error (Robust.Failure.Invalid_input _) -> ()
      | 11, _ -> Alcotest.fail "slot 11 should wrap the stray exception"
      | _, Ok v -> check_int "slot value" i v
      | _, Error _ -> Alcotest.fail "healthy slot failed")
    results

(* jobs=1 and jobs=4 must produce byte-identical schedules when solves
   terminate on the (deterministic) node budget, not the wall clock. *)
let test_pool_determinism () =
  let net = net_of ~name:"det" [ (layer_a, 2); (layer_b, 1); (layer_c, 3) ] in
  let run jobs = Serve.Service.schedule_network (fast_config ~jobs ()) net in
  let render report =
    List.map
      (fun (lr : Serve.Service.layer_report) ->
        match lr.Serve.Service.served with
        | Ok s -> Mapping_io.to_string s.Serve.Service.mapping
        | Error f -> Robust.Failure.to_string f)
      report.Serve.Service.layers
  in
  let one = run 1 and four = run 4 in
  Alcotest.(check (list string)) "schedules byte-identical" (render one) (render four);
  check_bool "latency identical" true
    (one.Serve.Service.total_latency = four.Serve.Service.total_latency);
  check_bool "energy identical" true
    (one.Serve.Service.total_energy_pj = four.Serve.Service.total_energy_pj)

(* ---- service counters and dedup --------------------------------------- *)

let test_service_counters () =
  (* two entries share layer_a's shape under different names *)
  let alias = Layer.create ~name:"srv_a_alias" ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 () in
  let net = net_of ~name:"ctr" [ (layer_a, 2); (alias, 3); (layer_b, 1) ] in
  let cache = Serve.Schedule_cache.create ~capacity:16 () in
  let cfg = fast_config () in
  let r1 = Serve.Service.schedule_network ~cache cfg net in
  check_int "instances" 6 r1.Serve.Service.instances;
  check_int "distinct shapes" 2 r1.Serve.Service.distinct;
  check_int "cold run misses everything" 0 r1.Serve.Service.served_from_cache;
  check_int "no failures" 0 r1.Serve.Service.failed;
  (* aliased entry collapsed into layer_a's report with summed repeats *)
  (match r1.Serve.Service.layers with
   | [ first; second ] ->
     check_int "summed repeats" 5 first.Serve.Service.repeats;
     check_int "other repeats" 1 second.Serve.Service.repeats
   | _ -> Alcotest.fail "expected two distinct layer reports");
  check_bool "weighted latency positive" true (r1.Serve.Service.total_latency > 0.);
  let r2 = Serve.Service.schedule_network ~cache cfg net in
  check_int "warm run all from cache" 2 r2.Serve.Service.served_from_cache;
  check_bool "warm totals identical" true
    (r1.Serve.Service.total_latency = r2.Serve.Service.total_latency
    && r1.Serve.Service.total_energy_pj = r2.Serve.Service.total_energy_pj);
  let s = Serve.Schedule_cache.stats cache in
  check_int "memory hits" 2 s.Serve.Schedule_cache.hits;
  check_int "stores" 2 s.Serve.Schedule_cache.stores;
  check_bool "hit rate is half" true (Serve.Schedule_cache.hit_rate cache = 0.5)

(* ---- crash-safe disk writes ------------------------------------------- *)

(* A record truncated mid-frame (a crashed writer without the temp-file
   protocol, or torn storage) must behave as a miss, never a crash — and
   the cache must repair it on the next store. *)
let test_truncated_record_recovers () =
  with_temp_dir (fun dir ->
      let f = fp layer_a in
      let c1 = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      Serve.Schedule_cache.store c1 f (entry_of layer_a);
      let path = Filename.concat dir (Serve.Fingerprint.hash f ^ ".cosa") in
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2)));
      let c2 = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      check_bool "truncated record misses" true
        (Serve.Schedule_cache.find c2 ~arch ~layer:layer_a f = None);
      check_int "counted as disk reject" 1
        (Serve.Schedule_cache.stats c2).Serve.Schedule_cache.disk_rejects;
      (* store-back repairs the file: a fresh process gets a full record *)
      Serve.Schedule_cache.store c2 f (entry_of layer_a);
      let c3 = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      check_bool "repaired record hits" true
        (match Serve.Schedule_cache.find c3 ~arch ~layer:layer_a f with
         | Some (_, Serve.Schedule_cache.Disk) -> true
         | _ -> false))

(* Stale temp files from crashed writers are swept at create; completed
   writes never leave a .tmp behind. *)
let test_stale_tmp_sweep () =
  with_temp_dir (fun dir ->
      let litter = Filename.concat dir "deadbeef.cosa.12345.0.tmp" in
      Out_channel.with_open_bin litter (fun oc ->
          Out_channel.output_string oc "half a frame");
      let c = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      check_bool "stale tmp swept on create" true (not (Sys.file_exists litter));
      Serve.Schedule_cache.store c (fp layer_a) (entry_of layer_a);
      check_bool "no tmp litter after store" true
        (Array.for_all
           (fun n -> Filename.check_suffix n ".cosa")
           (Sys.readdir dir)))

(* [persist] rewrites every in-memory entry — the daemon's drain hook. *)
let test_persist_rewrites_memory () =
  with_temp_dir (fun dir ->
      let c = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      List.iter (fun l -> Serve.Schedule_cache.store c (fp l) (entry_of l))
        [ layer_a; layer_b; layer_c ];
      (* simulate a lost/corrupted directory *)
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      check_int "persist rewrites all entries" 3 (Serve.Schedule_cache.persist c);
      check_int "records back on disk" 3 (Array.length (Sys.readdir dir));
      let c2 = Serve.Schedule_cache.create ~dir ~capacity:8 () in
      check_bool "persisted record verifies" true
        (Serve.Schedule_cache.find c2 ~arch ~layer:layer_b (fp layer_b) <> None));
  (* no disk tier: persist is a no-op, not an error *)
  let mem = Serve.Schedule_cache.create ~capacity:8 () in
  Serve.Schedule_cache.store mem (fp layer_a) (entry_of layer_a);
  check_int "persist without dir" 0 (Serve.Schedule_cache.persist mem)

(* ---- percentile edge case --------------------------------------------- *)

(* All-cache-hit (or all-failed) reports have no live solves: the solve
   percentiles must be 0, not a crash or a cache-probe artifact. *)
let test_all_cache_hit_percentiles () =
  let net = net_of ~name:"pct" [ (layer_a, 1); (layer_b, 1) ] in
  let cache = Serve.Schedule_cache.create ~capacity:8 () in
  let cfg = fast_config () in
  let cold = Serve.Service.schedule_network ~cache cfg net in
  check_bool "cold run has live percentiles" true (cold.Serve.Service.solve_p95 > 0.);
  let warm = Serve.Service.schedule_network ~cache cfg net in
  check_int "warm run all from cache" 2 warm.Serve.Service.served_from_cache;
  check_bool "warm p50 is exactly 0" true (warm.Serve.Service.solve_p50 = 0.);
  check_bool "warm p95 is exactly 0" true (warm.Serve.Service.solve_p95 = 0.)

(* ---- per-request rung overrides --------------------------------------- *)

let test_rung_override () =
  let net = net_of ~name:"rung" [ (layer_a, 1) ] in
  let cache = Serve.Schedule_cache.create ~capacity:8 () in
  let cfg = fast_config () in
  (* Cache_probe on a cold cache: typed deadline failure, no solve *)
  let probe =
    Serve.Service.schedule_network ~cache ~rung:Robust.Ladder.Cache_probe cfg net
  in
  check_int "cache-only probe fails typed" 1 probe.Serve.Service.failed;
  (match probe.Serve.Service.layers with
   | [ { Serve.Service.served = Error Robust.Failure.Deadline_exceeded; _ } ] -> ()
   | _ -> Alcotest.fail "expected Deadline_exceeded from a cache-only miss");
  (* Heuristic rung: sampler-only solve, stored under its own key *)
  let heur =
    Serve.Service.schedule_network ~cache ~rung:Robust.Ladder.Heuristic cfg net
  in
  check_int "heuristic rung serves" 0 heur.Serve.Service.failed;
  (* full-quality solve fills the base key... *)
  let full = Serve.Service.schedule_network ~cache cfg net in
  check_int "base solve ok" 0 full.Serve.Service.failed;
  (* ...and any degraded request now prefers the cached base answer *)
  let probe2 =
    Serve.Service.schedule_network ~cache ~rung:Robust.Ladder.Cache_probe cfg net
  in
  check_int "probe hits after base solve" 1 probe2.Serve.Service.served_from_cache;
  (match probe2.Serve.Service.layers with
   | [ { Serve.Service.served = Ok s; _ } ] ->
     check_bool "served from cache" true
       (match s.Serve.Service.origin with
        | Serve.Service.Cache_memory | Serve.Service.Cache_disk
        | Serve.Service.Cache_peer -> true
        | Serve.Service.Solved _ -> false)
   | _ -> Alcotest.fail "expected a cache hit")

let suite =
  ( "serve",
    [
      Alcotest.test_case "fingerprint" `Quick test_fingerprint;
      Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
      Alcotest.test_case "disk trust-but-verify" `Quick test_disk_verify;
      Alcotest.test_case "disk reject falls through" `Quick test_disk_reject_falls_through;
      Alcotest.test_case "truncated record recovers" `Quick test_truncated_record_recovers;
      Alcotest.test_case "stale tmp sweep" `Quick test_stale_tmp_sweep;
      Alcotest.test_case "persist rewrites memory" `Quick test_persist_rewrites_memory;
      Alcotest.test_case "all-cache-hit percentiles" `Quick test_all_cache_hit_percentiles;
      Alcotest.test_case "rung override" `Quick test_rung_override;
      Alcotest.test_case "pool ordering and isolation" `Quick test_pool_ordering_and_isolation;
      Alcotest.test_case "pool determinism" `Quick test_pool_determinism;
      Alcotest.test_case "service counters" `Quick test_service_counters;
    ] )
