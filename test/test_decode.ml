(* Round-trip and structural tests for the MIP decoder. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arch = Spec.baseline
let layer = Layer.create ~name:"dec_t" ~r:3 ~s:3 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 ()

let solve_formulation f =
  Milp.Bb.solve ~node_limit:30_000 ~time_limit:5. ~priority:f.Cosa_formulation.priority
    f.Cosa_formulation.lp

let test_decode_factorizes () =
  let f = Cosa_formulation.build ~joint_permutation:false arch layer in
  let res = solve_formulation f in
  check_bool "solved" true
    (match res.Milp.Bb.status with Milp.Bb.Optimal | Milp.Bb.Feasible -> true | _ -> false);
  let m = Cosa_decode.decode f res in
  List.iter
    (fun d ->
      check_int (Dims.dim_name d)
        (Layer.padded_bound layer d)
        (Mapping.dim_product m ~upto:(Spec.level_count arch) d))
    Dims.all_dims

let test_decode_spatial_levels_only () =
  let f = Cosa_formulation.build ~joint_permutation:false arch layer in
  let m = Cosa_decode.decode f (solve_formulation f) in
  Array.iteri
    (fun i lm ->
      if arch.Spec.levels.(i).Spec.fanout = 1 then
        check_int
          (Printf.sprintf "no spatial at level %d" i)
          0
          (List.length lm.Mapping.spatial))
    m.Mapping.levels

let test_mip_start_roundtrip () =
  (* decode (mip_start m) must reproduce m's per-level per-dim bounds *)
  let rng = Prim.Rng.create 42 in
  match Sampler.valid rng arch layer with
  | None -> Alcotest.fail "sampler failed"
  | Some m ->
    let f = Cosa_formulation.build arch layer in
    (match Cosa_formulation.mip_start f m with
     | None -> Alcotest.fail "mip_start failed on a valid mapping"
     | Some x ->
       let fake =
         { Milp.Bb.status = Milp.Bb.Optimal; obj = 0.; values = x; bound = 0.; nodes = 0;
           simplex_iterations = 0; elapsed = 0.; failures = [] }
       in
       let m' = Cosa_decode.decode f fake in
       for i = 0 to Spec.level_count arch - 1 do
         List.iter
           (fun d ->
             let bound_in lm =
               List.fold_left
                 (fun acc (l : Mapping.loop) ->
                   if l.Mapping.dim = d then acc * l.Mapping.bound else acc)
                 1 lm
             in
             let a = m.Mapping.levels.(i) and b = m'.Mapping.levels.(i) in
             check_int
               (Printf.sprintf "L%d %s temporal" i (Dims.dim_name d))
               (bound_in a.Mapping.temporal) (bound_in b.Mapping.temporal);
             check_int
               (Printf.sprintf "L%d %s spatial" i (Dims.dim_name d))
               (bound_in a.Mapping.spatial) (bound_in b.Mapping.spatial))
           Dims.all_dims
       done)

let test_best_noc_order_improves () =
  let f = Cosa_formulation.build ~joint_permutation:false arch layer in
  let m = Cosa_decode.decode f (solve_formulation f) in
  let better = Cosa_decode.best_noc_order arch m in
  let w = Cosa_formulation.default_weights in
  let score x = (Cosa_objective.of_mapping ~weights:w arch x).Cosa_objective.total in
  check_bool "order scan does not regress" true (score better <= score m +. 1e-9)

let test_canonical_order () =
  Alcotest.(check int) "seven dims" 7 (List.length Cosa_decode.canonical_inner_order);
  check_bool "P innermost" true
    (List.nth Cosa_decode.canonical_inner_order 6 = Dims.P)

let test_repair_terminates_on_hopeless () =
  (* spatial overflow is not repairable: repair must return unchanged-ish
     rather than loop forever *)
  let lp dim bound = { Mapping.dim; bound } in
  let l = Layer.create ~name:"hopeless" ~r:1 ~s:1 ~p:1 ~q:1 ~c:32 ~k:1 ~n:1 () in
  let broken =
    Mapping.make l
      [|
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [ lp Dims.C 32 ] };
        { Mapping.temporal = []; spatial = [] };
        { Mapping.temporal = []; spatial = [] };
      |]
  in
  let fixed, _ = Cosa_decode.repair arch broken in
  (* 32 > 16 PEs cannot be fixed by demotion to temporal-at-same-level in
     the current repair (it only fixes capacity), so it must just return *)
  check_bool "returns" true (Array.length fixed.Mapping.levels = 6)

let suite =
  ( "decode",
    [
      Alcotest.test_case "decode factorizes" `Quick test_decode_factorizes;
      Alcotest.test_case "spatial levels only" `Quick test_decode_spatial_levels_only;
      Alcotest.test_case "mip_start roundtrip" `Quick test_mip_start_roundtrip;
      Alcotest.test_case "order scan improves" `Quick test_best_noc_order_improves;
      Alcotest.test_case "canonical order" `Quick test_canonical_order;
      Alcotest.test_case "repair terminates" `Quick test_repair_terminates_on_hopeless;
    ] )
