(* Tests for dims, layers, and the workload zoo. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_dim_indices () =
  List.iter
    (fun d -> check_bool "roundtrip" true (Dims.dim_of_index (Dims.dim_index d) = d))
    Dims.all_dims;
  List.iter
    (fun v ->
      check_bool "tensor roundtrip" true (Dims.tensor_of_index (Dims.tensor_index v) = v))
    Dims.all_tensors;
  Alcotest.check_raises "bad index" (Invalid_argument "Dims.dim_of_index: 7") (fun () ->
      ignore (Dims.dim_of_index 7))

let test_a_matrix () =
  (* Table IV: W ~ {R,S,C,K}; IA ~ {P,Q,C,N}; OA ~ {P,Q,K,N} *)
  let expect = function
    | Dims.W -> Dims.[ R; S; C; K ]
    | Dims.IA -> Dims.[ P; Q; C; N ]
    | Dims.OA -> Dims.[ P; Q; K; N ]
  in
  List.iter
    (fun v ->
      List.iter
        (fun d ->
          check_bool
            (Printf.sprintf "A[%s][%s]" (Dims.dim_name d) (Dims.tensor_name v))
            (List.mem d (expect v)) (Dims.relevant d v))
        Dims.all_dims)
    Dims.all_tensors

let test_model_relevance () =
  (* only difference: IA also depends on R and S *)
  check_bool "IA~R" true (Dims.model_relevant Dims.R Dims.IA);
  check_bool "IA~S" true (Dims.model_relevant Dims.S Dims.IA);
  check_bool "paper IA!~R" false (Dims.relevant Dims.R Dims.IA);
  List.iter
    (fun v ->
      List.iter
        (fun d ->
          if not (v = Dims.IA && (d = Dims.R || d = Dims.S)) then
            check_bool "agree elsewhere" (Dims.relevant d v) (Dims.model_relevant d v))
        Dims.all_dims)
    Dims.all_tensors

let test_layer_create () =
  let l = Layer.create ~r:3 ~s:3 ~p:14 ~q:14 ~c:256 ~k:256 ~n:1 () in
  check_int "R" 3 (Layer.bound l Dims.R);
  check_int "P" 14 (Layer.bound l Dims.P);
  check_int "macs" (3 * 3 * 14 * 14 * 256 * 256) (Layer.macs l);
  Alcotest.(check string) "default name" "3_14_256_256_1" l.Layer.name;
  Alcotest.check_raises "bad dim" (Invalid_argument "Layer.create: c = 0 < 1") (fun () ->
      ignore (Layer.create ~r:1 ~s:1 ~p:1 ~q:1 ~c:0 ~k:1 ~n:1 ()))

let test_layer_gemm () =
  let g = Layer.gemm ~m:512 ~n:700 ~k:2048 () in
  check_int "output channels = M" 512 (Layer.bound g Dims.K);
  check_int "spatial = N" 700 (Layer.bound g Dims.P);
  check_int "reduction = K" 2048 (Layer.bound g Dims.C);
  check_int "unit filter" 1 (Layer.bound g Dims.R);
  check_int "gemm macs" (512 * 700 * 2048) (Layer.macs g)

let test_layer_halo () =
  let l = Layer.create ~r:3 ~s:3 ~p:14 ~q:14 ~c:8 ~k:8 ~n:1 ~stride:2 () in
  check_int "input width" ((14 - 1) * 2 + 3) (Layer.input_width l);
  check_int "IA words" (29 * 29 * 8) (Layer.tensor_words l Dims.IA);
  check_int "W words" (3 * 3 * 8 * 8) (Layer.tensor_words l Dims.W);
  check_int "OA words" (14 * 14 * 8) (Layer.tensor_words l Dims.OA)

let test_layer_factors () =
  let l = Layer.create ~r:1 ~s:1 ~p:1 ~q:1 ~c:12 ~k:1 ~n:1 () in
  Alcotest.(check (list (pair string int)))
    "C factors"
    [ ("C", 2); ("C", 2); ("C", 3) ]
    (List.map (fun (d, p) -> (Dims.dim_name d, p)) (Layer.factors l));
  let groups = Layer.factor_groups l in
  Alcotest.(check int) "two groups" 2 (List.length groups)

let test_padded_bound () =
  let l = Layer.create ~r:1 ~s:1 ~p:1 ~q:1 ~c:11 ~k:1000 ~n:1 () in
  check_int "11 padded to 12" 12 (Layer.padded_bound l Dims.C);
  check_int "1000 unchanged" 1000 (Layer.padded_bound l Dims.K)

let test_zoo () =
  List.iter
    (fun (name, layers) ->
      check_bool (name ^ " non-empty") true (List.length layers >= 5))
    Zoo.suites;
  check_int "four suites" 4 (List.length Zoo.suites);
  (* all names unique across suites *)
  let names = List.map (fun (l : Layer.t) -> l.Layer.name) (List.concat_map snd Zoo.suites) in
  check_int "unique names" (List.length names) (List.length (List.sort_uniq compare names));
  (* find works and fails as documented *)
  let l = Zoo.find "3_7_512_512_1" in
  check_int "found layer K" 512 (Layer.bound l Dims.K);
  check_bool "missing raises" true
    (match Zoo.find "nope" with exception Not_found -> true | _ -> false)

let test_resnet_shapes () =
  (* spot-check canonical ResNet-50 facts *)
  let stem = Zoo.find "7_112_3_64_2" in
  check_int "stem stride" 2 stem.Layer.stride;
  let fig1 = Zoo.find "3_14_256_256_1" in
  check_int "fig1 P" 14 (Layer.bound fig1 Dims.P)

let test_network_distinct () =
  (* ResNet-50: 53 convolutions + FC = 54 instances over 24 entries, every
     entry already a distinct shape *)
  let net = Network.resnet50 in
  check_int "resnet50 instances" 54 (Network.layer_count net);
  check_int "resnet50 entries" 24 (List.length net.Network.entries);
  check_int "resnet50 distinct shapes" 24 (Network.distinct_count net);
  let d = Network.distinct net in
  check_int "summed repeats cover all instances" (Network.layer_count net)
    (List.fold_left (fun acc (_, reps) -> acc + reps) 0 d);
  (* same invariant on ResNeXt-50 *)
  check_int "resnext50 repeats conserved" (Network.layer_count Network.resnext50)
    (List.fold_left (fun acc (_, reps) -> acc + reps) 0
       (Network.distinct Network.resnext50));
  (* shape-equal entries under different names merge, first occurrence
     wins, repeats sum *)
  let shape name = Layer.create ~name ~r:1 ~s:1 ~p:4 ~q:4 ~c:8 ~k:8 ~n:1 () in
  let other = Layer.create ~name:"other" ~r:3 ~s:3 ~p:4 ~q:4 ~c:4 ~k:4 ~n:1 () in
  let dup =
    { Network.nname = "dup";
      entries =
        [ { Network.layer = shape "first"; repeats = 2 };
          { Network.layer = other; repeats = 1 };
          { Network.layer = shape "second"; repeats = 3 } ] }
  in
  check_int "duplicates collapse" 2 (Network.distinct_count dup);
  (match Network.distinct dup with
   | [ (e1, r1); (e2, r2) ] ->
     Alcotest.(check string) "first occurrence kept" "first" e1.Network.layer.Layer.name;
     check_int "repeats summed" 5 r1;
     Alcotest.(check string) "order preserved" "other" e2.Network.layer.Layer.name;
     check_int "singleton repeats" 1 r2
   | _ -> Alcotest.fail "expected two distinct groups");
  (* find is case/dash/underscore-insensitive *)
  check_bool "find resnet50" true
    (match Network.find "ResNet-50" with
     | Some n -> n.Network.nname = Network.resnet50.Network.nname
     | None -> false);
  check_bool "find unknown" true (Network.find "vgg" = None)

let prop_factors_multiply_to_padded =
  QCheck.Test.make ~name:"layer factors multiply to padded bounds" ~count:100
    QCheck.(quad (int_range 1 7) (int_range 1 64) (int_range 1 512) (int_range 1 512))
    (fun (r, p, c, k) ->
      let l = Layer.create ~r ~s:r ~p ~q:p ~c ~k ~n:1 () in
      List.for_all
        (fun d ->
          let prod =
            List.fold_left
              (fun acc (d', prime) -> if d' = d then acc * prime else acc)
              1 (Layer.factors l)
          in
          prod = Layer.padded_bound l d)
        Dims.all_dims)

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  ( "workload",
    [
      Alcotest.test_case "dim indices" `Quick test_dim_indices;
      Alcotest.test_case "A matrix (Table IV)" `Quick test_a_matrix;
      Alcotest.test_case "model relevance" `Quick test_model_relevance;
      Alcotest.test_case "layer create" `Quick test_layer_create;
      Alcotest.test_case "gemm lowering" `Quick test_layer_gemm;
      Alcotest.test_case "IA halo" `Quick test_layer_halo;
      Alcotest.test_case "factors" `Quick test_layer_factors;
      Alcotest.test_case "padded bounds" `Quick test_padded_bound;
      Alcotest.test_case "zoo suites" `Quick test_zoo;
      Alcotest.test_case "resnet shapes" `Quick test_resnet_shapes;
      Alcotest.test_case "network distinct" `Quick test_network_distinct;
      qc prop_factors_multiply_to_padded;
    ] )
